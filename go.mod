module ion

go 1.22
