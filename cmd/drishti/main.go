// Command drishti runs the reimplemented Drishti trigger analyzer over
// a Darshan trace: the threshold-based baseline tool ION is evaluated
// against. Thresholds are exposed as flags so the paper's §2 argument
// (fixed thresholds mislead on boundary workloads) can be explored.
//
// Usage:
//
//	drishti -log trace.darshan
//	drishti -log trace.darshan -small-size 4194304 -small-pct 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"ion/internal/drishti"
	"ion/internal/extractor"
)

func main() {
	cfg := drishti.DefaultConfig()
	var (
		logPath = flag.String("log", "", "Darshan log to analyze")
		csvDir  = flag.String("csv", "", "analyze an already-extracted CSV directory instead of a log")
		workdir = flag.String("workdir", "", "extraction directory (default: <log>.csv)")
	)
	flag.Int64Var(&cfg.SmallRequestSize, "small-size", cfg.SmallRequestSize, "small-request threshold in bytes")
	flag.Float64Var(&cfg.SmallRequestsPercent, "small-pct", cfg.SmallRequestsPercent, "small-request share trigger")
	flag.Int64Var(&cfg.SmallRequestsCount, "small-count", cfg.SmallRequestsCount, "small-request absolute count floor")
	flag.Float64Var(&cfg.MisalignedPercent, "misaligned-pct", cfg.MisalignedPercent, "misaligned share trigger")
	flag.Float64Var(&cfg.RandomOpsPercent, "random-pct", cfg.RandomOpsPercent, "random-operation share trigger")
	flag.Float64Var(&cfg.ImbalancePercent, "imbalance-pct", cfg.ImbalancePercent, "load-imbalance trigger")
	flag.Float64Var(&cfg.MetadataTimeSeconds, "meta-seconds", cfg.MetadataTimeSeconds, "metadata time trigger (seconds)")
	flag.Parse()

	var (
		out *extractor.Output
		err error
	)
	switch {
	case *csvDir != "":
		out, err = extractor.LoadDir(*csvDir)
	case *logPath != "":
		dir := *workdir
		if dir == "" {
			dir = *logPath + ".csv"
		}
		out, err = extractor.ExtractFile(*logPath, dir)
	default:
		fmt.Fprintln(os.Stderr, "drishti: need -log or -csv")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	rep, err := drishti.Analyze(out, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drishti:", err)
	os.Exit(1)
}
