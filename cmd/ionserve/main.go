// Command ionserve runs the ION diagnosis service: Darshan traces are
// uploaded as analysis jobs, queued onto a bounded worker pool, run
// through the ion pipeline, and served through the paper's web front
// end (Figure 1) — a report page with per-issue modals and interactive
// message window per job, plus a JSON API for job lifecycle and
// service stats.
//
// Usage:
//
//	ionserve -addr :8080                      # empty service, POST traces to /api/jobs
//	ionserve -log trace.darshan -addr :8080   # one-shot: submit, wait, serve
//	ionserve -report saved.json               # serve a previously saved report
//	ionserve -log trace.darshan -html out.html  # render the report page and exit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
	"ion/internal/obs/flight"
	"ion/internal/obs/prof"
	"ion/internal/obs/series"
	"ion/internal/quality"
	"ion/internal/semcache"
	"ion/internal/webui"
)

func main() {
	var (
		logPath      = flag.String("log", "", "Darshan log to submit as the first job")
		reportPath   = flag.String("report", "", "serve a previously saved report JSON instead of running the service")
		dataDir      = flag.String("data", "", "service data directory for jobs, traces, and reports (default: <log>.ionserve or ./ionserve-data)")
		workdir      = flag.String("workdir", "", "deprecated alias for -data")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		htmlOut      = flag.String("html", "", "write the report page to this file and exit (no server)")
		workers      = flag.Int("workers", 2, "analysis worker pool size")
		queueDepth   = flag.Int("queue", 16, "queued-job bound; submissions beyond it get HTTP 429")
		parseWorkers = flag.Int("parse-workers", 0, "trace-parse shard pool size (0 = GOMAXPROCS)")
		streamMaxBuf = flag.Int64("stream-max-buffer", 256<<20, "total bytes buffered across in-flight streaming uploads before 429 (negative = unlimited)")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "per-attempt analysis timeout")
		retries      = flag.Int("retries", 3, "max analysis attempts per job (first run included)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (separate listener, never the public one)")
		scrapeInt    = flag.Duration("scrape-interval", 5*time.Second, "self-observation scrape cadence (0 disables the series store, dashboard, and alerting)")
		retention    = flag.Duration("retention", 15*time.Minute, "how much series history the in-process store keeps")
		rulesPath    = flag.String("rules", "", "JSON alert-rules file (default: built-in SLO rules)")
		incDir       = flag.String("incident-dir", "", "directory for flight-recorder incident bundles (default: <data>/incidents; \"none\" disables the recorder)")
		incKeep      = flag.Int("incident-retention", 16, "incident bundles kept on disk (oldest deleted first)")
		captureCPU   = flag.Int("capture-cpu-seconds", 5, "CPU-profile length inside an incident capture (0 skips the CPU profile)")

		profInterval  = flag.Duration("prof-interval", time.Minute, "continuous-profiler duty cycle: one CPU window plus heap/goroutine snapshots per interval (0 disables)")
		profWindow    = flag.Duration("prof-window", 10*time.Second, "CPU-profile length inside each continuous-profiler cycle (clamped to half the interval)")
		profRetention = flag.Duration("prof-retention", 2*time.Hour, "how long decoded profile windows are retained in <data>/prof")

		ledgerPath = flag.String("ledger", "", "LLM audit-ledger journal (default: <data>/llm/ledger.jsonl; \"none\" disables)")
		ledgerText = flag.Bool("ledger-capture-text", false, "store raw prompt/response text in the ledger (default: prompt hashes and accounting only)")
		priceTable = flag.String("llm-price-table", "", "JSON per-model price table overriding the built-in rates (USD per 1M tokens)")

		semCache      = flag.Bool("sem-cache", true, "semantic diagnosis cache: reuse prior diagnoses of similar traces")
		semReuse      = flag.Float64("sem-reuse-threshold", 0.995, "signature similarity at or above which a prior diagnosis is served verbatim (>1 disables the verbatim tier)")
		semCondition  = flag.Float64("sem-condition-threshold", 0.90, "signature similarity at or above which the analysis is conditioned on a prior diagnosis (>1 disables conditioning)")
		semMaxEntries = flag.Int("sem-max-entries", semcache.DefaultMaxEntries, "semantic-cache entry bound (LRU eviction beyond it; negative disables)")
		semMaxBytes   = flag.Int64("sem-max-bytes", semcache.DefaultMaxBytes, "semantic-cache journal byte bound (LRU eviction beyond it; negative disables)")

		qualityOn  = flag.Bool("quality", true, "diagnosis quality observatory: score LLM verdicts against deterministic triggers, journal scorecards, and feed the drift alerts")
		shadowRate = flag.Float64("shadow-sample-rate", 0.05, "fraction of semcache-reused/conditioned jobs re-run in the background to measure verdict flips (0 disables)")

		showVersion = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(obs.GetBuildInfo().String())
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	reg := obs.NewRegistry()
	// Process health lands in the same registry (and therefore the same
	// series store) as the application metrics.
	obs.RegisterRuntimeMetrics(reg)
	// ion_build_info joins every scrape, profile window, and incident
	// bundle to the binary that produced it.
	obs.RegisterBuildInfo(reg)
	// Instrument the client at the edge, so both the analysis workers
	// and the chat sessions report into the same registry. The service
	// path recomposes this below with the audit ledger in the middle.
	base := expertsim.New()
	client := llm.Instrument(base, reg)

	if *debugAddr != "" {
		serveDebug(*debugAddr, logger)
	}

	// -report keeps its original single-report behavior.
	if *reportPath != "" {
		rep, err := ion.LoadJSON(*reportPath)
		if err != nil {
			fatal(err)
		}
		srv, err := webui.New(client, rep)
		if err != nil {
			fatal(err)
		}
		if *htmlOut != "" {
			renderHTML(srv.Handler(), *htmlOut)
			return
		}
		fmt.Printf("ionserve: report %s ready — http://%s\n", rep.Trace, *addr)
		serve(*addr, srv.Handler(), nil)
		return
	}

	dir := *dataDir
	if dir == "" {
		dir = *workdir
	}
	if dir == "" {
		if *logPath != "" {
			dir = *logPath + ".ionserve"
		} else {
			dir = "ionserve-data"
		}
	}

	// One CPU-profile guard is shared by the continuous profiler and the
	// flight recorder: runtime/pprof allows a single active CPU profile,
	// and incident captures preempt the rolling window.
	cpuGuard := obs.NewCPUProfileGuard()

	// Flight recorder: always-on rings (logs, slow spans, metric
	// snapshots), snapshotted into a tar.gz incident bundle when an
	// alert fires or /api/debug/capture is hit. The recorder's log tee
	// becomes the root logger, so every component below records into the
	// incident ring — including debug-level lines stderr drops.
	var rec *flight.Recorder
	if *incDir != "none" {
		bundleDir := *incDir
		if bundleDir == "" {
			bundleDir = filepath.Join(dir, "incidents")
		}
		rec, err = flight.New(flight.Options{
			Dir:        bundleDir,
			CPUProfile: time.Duration(*captureCPU) * time.Second,
			CPUGuard:   cpuGuard,
			MaxBundles: *incKeep,
			Registry:   reg,
			Config:     flagConfig(),
			Logger:     logger,
		})
		if err != nil {
			fatal(err)
		}
		logger = slog.New(rec.LogHandler(logger.Handler()))
		rec.Start()
		defer rec.Stop()
	}

	// Continuous profiler: a rolling CPU window plus heap/goroutine
	// snapshots every cycle, decoded in-process and journaled under
	// <data>/prof so "what was hot before the restart" survives. Windows
	// feed the ion_prof_* gauges the HotFunctionRegression rule watches.
	var profiler *prof.Profiler
	if *profInterval > 0 {
		profStore, err := prof.OpenStore(prof.StoreOptions{
			Path:      filepath.Join(dir, "prof", "windows.jsonl"),
			Retention: *profRetention,
		})
		if err != nil {
			fatal(err)
		}
		defer profStore.Close()
		profiler, err = prof.New(prof.Options{
			Window:   *profWindow,
			Interval: *profInterval,
			Store:    profStore,
			Registry: reg,
			Guard:    cpuGuard,
			Logger:   logger,
		})
		if err != nil {
			fatal(err)
		}
		profiler.Start()
		defer profiler.Stop()
		if rec != nil {
			// Incident bundles carry the recent profile windows, so a
			// capture answers "what was the CPU doing" without waiting for
			// its own profile.
			rec.SetProfileWindowsFn(func() any { return profStore.Windows("", 12) })
		}
	}

	// LLM audit ledger: one journaled entry per completion (prompt hash,
	// tokens, latency, outcome, estimated cost), replayed across
	// restarts like the other journals. The recording wrapper sits
	// between the backend and the instrumentation so the telemetry
	// measures ledger overhead too; it also maintains the rolling
	// per-backend health score the LLMBackendDegraded rule watches.
	var ledgerStore *ledger.Store
	var ledgerClient *ledger.Client
	if *ledgerPath != "none" {
		path := *ledgerPath
		if path == "" {
			path = filepath.Join(dir, "llm", "ledger.jsonl")
		}
		prices := ledger.DefaultPrices()
		if *priceTable != "" {
			data, err := os.ReadFile(*priceTable)
			if err != nil {
				fatal(err)
			}
			if prices, err = ledger.ParsePriceTable(data); err != nil {
				fatal(err)
			}
		}
		ledgerStore, err = ledger.Open(ledger.StoreOptions{Path: path})
		if err != nil {
			fatal(err)
		}
		defer ledgerStore.Close()
		ledgerClient = ledger.Wrap(base, ledgerStore, ledger.WrapOptions{
			Prices:      prices,
			CaptureText: *ledgerText,
			Registry:    reg,
		})
		client = llm.Instrument(ledgerClient, reg)
		if rec != nil {
			// Incident bundles carry the recent LLM calls — hashes and
			// accounting only, so the bundle stays shareable.
			rec.SetLedgerTailFn(func() any { return ledgerStore.Tail(50) })
		}
	}

	// Semantic diagnosis cache: one journaled signature entry per
	// completed diagnosis, consulted before every fresh analysis. Opened
	// under the data dir so it survives restarts with the job store.
	var sem *semcache.Store
	if *semCache {
		sem, err = semcache.Open(semcache.Options{
			Path:       filepath.Join(dir, "semcache.jsonl"),
			MaxEntries: *semMaxEntries,
			MaxBytes:   *semMaxBytes,
		})
		if err != nil {
			fatal(err)
		}
		defer sem.Close()
	}

	// Diagnosis quality observatory: one journaled scorecard per
	// successful diagnosis (LLM verdicts vs deterministic triggers), a
	// sampled shadow re-run of reused diagnoses to catch cache decay, and
	// the agreement/flip gauges the drift rules watch.
	var qstore *quality.Store
	if *qualityOn {
		qstore, err = quality.Open(quality.Options{
			Path: filepath.Join(dir, "quality.jsonl"),
		})
		if err != nil {
			fatal(err)
		}
		defer qstore.Close()
		if rec != nil {
			// Drift incidents carry the recent scorecards, so the bundle
			// shows which issues disagreed without a live service.
			rec.SetQualityScorecardsFn(func() any { return qstore.Tail(50) })
		}
	}

	jobsCfg := jobs.Config{
		Dir:                   dir,
		Client:                client,
		Workers:               *workers,
		QueueDepth:            *queueDepth,
		ParseWorkers:          *parseWorkers,
		StreamMaxBuffer:       *streamMaxBuf,
		JobTimeout:            *jobTimeout,
		MaxAttempts:           *retries,
		Obs:                   reg,
		Logger:                logger,
		SemCache:              sem,
		SemReuseThreshold:     *semReuse,
		SemConditionThreshold: *semCondition,
		Ledger:                ledgerStore,
		Quality:               qstore,
		ShadowSampleRate:      *shadowRate,
	}
	if rec != nil {
		// Completed job timelines feed the recorder's tail-sampler, so
		// the slowest runs per stage are in memory when a capture fires.
		jobsCfg.OnTimeline = rec.OfferTimeline
	}
	svc, err := jobs.Open(jobsCfg)
	if err != nil {
		fatal(err)
	}

	home := "/"
	if *logPath != "" {
		// One-shot mode: submit the trace as a job and wait for it, so
		// the classic `ionserve -log trace.darshan` flow still comes up
		// with the diagnosis ready.
		trace, err := os.ReadFile(*logPath)
		if err != nil {
			fatal(err)
		}
		job, dedup, err := svc.Submit(*logPath, trace)
		if err != nil {
			fatal(err)
		}
		if dedup {
			fmt.Printf("ionserve: %s already analyzed (job %s)\n", *logPath, job.ID)
		}
		final, err := svc.Wait(context.Background(), job.ID)
		if err != nil {
			fatal(err)
		}
		if !final.State.Succeeded() {
			fatal(fmt.Errorf("analyzing %s: %s", *logPath, final.Error))
		}
		if *htmlOut != "" {
			rep, err := svc.Report(final.ID)
			if err != nil {
				fatal(err)
			}
			single, err := webui.New(client, rep)
			if err != nil {
				fatal(err)
			}
			renderHTML(single.Handler(), *htmlOut)
			closeService(svc)
			return
		}
		home = "/jobs/" + final.ID
		fmt.Printf("ionserve: diagnosis of %s ready — http://%s%s\n", *logPath, *addr, home)
	} else {
		fmt.Printf("ionserve: service ready — http://%s (POST traces to /api/jobs)\n", *addr)
	}

	js, err := webui.NewJobServer(client, svc)
	if err != nil {
		fatal(err)
	}
	js.WithObs(reg, logger)
	if rec != nil {
		js.WithFlight(rec)
	}
	if ledgerClient != nil {
		js.WithLLMLedger(ledgerClient)
		fmt.Printf("ionserve: LLM audit ledger at http://%s/dashboard/llm\n", *addr)
	}
	if profiler != nil {
		js.WithProf(profiler)
		fmt.Printf("ionserve: continuous profiling at http://%s/dashboard/profile (%s window every %s)\n",
			*addr, profiler.Window(), profiler.Interval())
	}
	if qstore != nil {
		js.WithQuality(qstore)
		fmt.Printf("ionserve: diagnosis quality at http://%s/dashboard/quality (shadow sample rate %.2f)\n",
			*addr, *shadowRate)
	}

	if *scrapeInt > 0 {
		rules := series.DefaultRules()
		if *rulesPath != "" {
			data, err := os.ReadFile(*rulesPath)
			if err != nil {
				fatal(err)
			}
			if rules, err = series.ParseRules(data); err != nil {
				fatal(err)
			}
		}
		opts := series.Options{
			Interval:  *scrapeInt,
			Retention: *retention,
			Rules:     rules,
			Logger:    logger,
		}
		if rec != nil {
			// A rule entering firing is the moment evidence still exists:
			// capture in a goroutine so the (up to 5s) CPU profile never
			// stalls the scrape loop. The recorder singleflights and
			// rate-limits, so alert storms cost one bundle, not a pile.
			opts.OnTransition = func(tr series.RuleTransition) {
				if tr.To != series.StateFiring {
					return
				}
				go func() {
					if _, err := rec.Capture("alert:" + tr.Rule); err != nil {
						logger.Debug("incident capture skipped", "rule", tr.Rule, "err", err)
					}
				}()
			}
		}
		store := series.New(reg, opts)
		if rec != nil {
			rec.SetAlertsFunc(func() any { return store.Alerts() })
		}
		store.Start()
		defer store.Stop()
		js.WithSeries(store)
		fmt.Printf("ionserve: dashboard at http://%s/dashboard (scrape %s, retention %s, %d rules)\n",
			*addr, *scrapeInt, *retention, len(rules))
	}
	serve(*addr, js.Handler(), svc)
}

// flagConfig snapshots every flag's effective value for the incident
// bundle's config.json (the recorder redacts secret-looking keys).
func flagConfig() map[string]string {
	cfg := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { cfg[f.Name] = f.Value.String() })
	return cfg
}

// serveDebug exposes net/http/pprof on its own listener and mux so
// profiling endpoints are never reachable through the public address.
// (The pprof import also registers on http.DefaultServeMux, but no
// listener here serves that mux.)
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	server := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("debug listener up", "addr", addr, "endpoints", "/debug/pprof/")
	go func() {
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug listener failed", "addr", addr, "err", err)
		}
	}()
}

// serve runs a configured http.Server and shuts it down gracefully on
// SIGINT/SIGTERM, draining the job service (when present) afterwards.
func serve(addr string, handler http.Handler, svc *jobs.Service) {
	server := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "ionserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "ionserve: shutdown:", err)
		}
	}
	if svc != nil {
		closeService(svc)
	}
}

func closeService(svc *jobs.Service) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ionserve: draining jobs:", err)
	}
}

// renderHTML writes the handler's index page to a file (the -html
// render-and-exit mode).
func renderHTML(h http.Handler, path string) {
	req, _ := http.NewRequest(http.MethodGet, "/", nil)
	var page strings.Builder
	rec := &fileResponse{w: &page, header: http.Header{}}
	h.ServeHTTP(rec, req)
	if err := os.WriteFile(path, []byte(page.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("ionserve: wrote %s\n", path)
}

// fileResponse adapts a writer into an http.ResponseWriter for the
// -html render-to-file mode.
type fileResponse struct {
	w      *strings.Builder
	header http.Header
}

func (r *fileResponse) Header() http.Header         { return r.header }
func (r *fileResponse) WriteHeader(int)             {}
func (r *fileResponse) Write(p []byte) (int, error) { return r.w.Write(p) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ionserve:", err)
	os.Exit(1)
}
