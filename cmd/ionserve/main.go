// Command ionserve analyzes a Darshan trace and serves the diagnosis
// through the paper's web front end (Figure 1): the report page with
// per-issue modals plus the interactive message window, backed by a
// JSON chat API.
//
// Usage:
//
//	ionserve -log trace.darshan -addr :8080
//	# then open http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/webui"
)

func main() {
	var (
		logPath    = flag.String("log", "", "Darshan log to analyze and serve")
		reportPath = flag.String("report", "", "serve a previously saved report JSON instead of analyzing a log")
		workdir    = flag.String("workdir", "", "directory for extracted CSVs (default: <log>.csv)")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		htmlOut    = flag.String("html", "", "write the report page to this file and exit (no server)")
	)
	flag.Parse()
	if *logPath == "" && *reportPath == "" {
		fmt.Fprintln(os.Stderr, "ionserve: -log or -report is required")
		flag.Usage()
		os.Exit(2)
	}

	client := expertsim.New()
	var (
		rep *ion.Report
		err error
	)
	if *reportPath != "" {
		rep, err = ion.LoadJSON(*reportPath)
	} else {
		dir := *workdir
		if dir == "" {
			dir = *logPath + ".csv"
		}
		var fw *ion.Framework
		fw, err = ion.New(ion.Config{Client: client})
		if err == nil {
			rep, err = fw.AnalyzeFile(context.Background(), *logPath, dir)
		}
	}
	if err != nil {
		fatal(err)
	}

	srv, err := webui.New(client, rep)
	if err != nil {
		fatal(err)
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		req, _ := http.NewRequest(http.MethodGet, "/", nil)
		rec := &fileResponse{f: f, header: http.Header{}}
		srv.Handler().ServeHTTP(rec, req)
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("ionserve: wrote %s\n", *htmlOut)
		return
	}

	fmt.Printf("ionserve: diagnosis of %s ready — http://%s\n", rep.Trace, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// fileResponse adapts an os.File into an http.ResponseWriter for the
// -html render-to-file mode.
type fileResponse struct {
	f      *os.File
	header http.Header
}

func (r *fileResponse) Header() http.Header         { return r.header }
func (r *fileResponse) WriteHeader(int)             {}
func (r *fileResponse) Write(p []byte) (int, error) { return r.f.Write(p) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ionserve:", err)
	os.Exit(1)
}
