// Command ion analyzes a Darshan trace with the ION framework: it
// extracts the log into per-module CSVs, fans per-issue diagnosis
// prompts out to the configured language-model backend, prints the
// diagnosis report with its chain-of-thought steps and generated
// analysis code, and optionally opens the interactive Q&A interface.
//
// Usage:
//
//	ion -log trace.darshan
//	ion -log trace.darshan -interactive
//	ion -log trace.darshan -backend openai -base-url http://localhost:8000/v1
//	ion -log trace.darshan -ledger calls.jsonl -ledger-capture-text
//	ion -log trace.darshan -replay-ledger calls.jsonl
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ion/internal/advisor"
	"ion/internal/consistency"
	"ion/internal/darshan"
	"ion/internal/dxtexplore"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
	"ion/internal/rag"
	"ion/internal/report"
)

func main() {
	var (
		logPath     = flag.String("log", "", "Darshan log to analyze (binary container or parser text)")
		workdir     = flag.String("workdir", "", "directory for extracted CSVs (default: <log>.csv)")
		issuesFlag  = flag.String("issues", "", "comma-separated issue subset (default: all)")
		backend     = flag.String("backend", "expertsim", "LLM backend: expertsim or openai")
		baseURL     = flag.String("base-url", "https://api.openai.com/v1", "OpenAI-compatible endpoint (backend=openai)")
		apiKey      = flag.String("api-key", os.Getenv("OPENAI_API_KEY"), "API key (backend=openai)")
		model       = flag.String("model", "gpt-4-1106-preview", "model name (backend=openai)")
		record      = flag.String("record", "", "record completions into this directory")
		replay      = flag.String("replay", "", "replay completions from this directory")
		ledgerPath  = flag.String("ledger", "", "append every LLM call to this audit-ledger journal (JSONL)")
		ledgerText  = flag.Bool("ledger-capture-text", false, "store raw prompt/response text in the ledger (default: prompt hashes and accounting only)")
		priceTable  = flag.String("llm-price-table", "", "JSON per-model price table overriding the built-in rates (USD per 1M tokens)")
		replayLed   = flag.String("replay-ledger", "", "re-run the recorded prompt set from this ledger journal deterministically (needs -ledger-capture-text at record time); overrides -backend")
		interactive = flag.Bool("interactive", false, "open the Q&A interface after the diagnosis")
		showCode    = flag.Bool("code", false, "show the generated analysis code")
		hideSteps   = flag.Bool("no-steps", false, "hide the chain-of-thought steps")
		color       = flag.Bool("color", false, "ANSI colors")
		everything  = flag.Bool("verbose", false, "include issues with a clear verdict")
		summary     = flag.Bool("summary", true, "include the global diagnosis summary")
		verify      = flag.Bool("verify", false, "run the consistency checker over the diagnosis")
		useRAG      = flag.Bool("rag", false, "use retrieval-augmented context in interactive mode")
		explore     = flag.Bool("explore", false, "print DXT visualizations before the diagnosis")
		advise      = flag.Bool("advise", false, "print the ranked optimization plan after the diagnosis")
		saveReport  = flag.String("save-report", "", "save the diagnosis as JSON to this path")
		kbDir       = flag.String("kb", "", "directory of JSON knowledge-context overrides")
		traceOut    = flag.String("trace-out", "", "write the pipeline span timeline as JSON to this path")
		logLevel    = flag.String("log-level", "warn", "structured log level: debug, info, warn, or error")
		showVersion = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(obs.GetBuildInfo().String())
		return
	}
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "ion: -log is required")
		flag.Usage()
		os.Exit(2)
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	client, err := buildClient(*backend, *baseURL, *apiKey, *model, *record, *replay)
	if err != nil {
		fatal(err)
	}
	if *replayLed != "" {
		// Deterministic re-run: every prompt must resolve from the
		// recorded set — no fallback, so drift fails loudly instead of
		// silently burning tokens.
		rp, err := ledger.NewReplay(*replayLed, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ion: replaying %d recorded completion(s) from %s\n", rp.Len(), *replayLed)
		client = rp
	}
	if *ledgerPath != "" {
		prices := ledger.DefaultPrices()
		if *priceTable != "" {
			data, err := os.ReadFile(*priceTable)
			if err != nil {
				fatal(err)
			}
			if prices, err = ledger.ParsePriceTable(data); err != nil {
				fatal(err)
			}
		}
		lst, err := ledger.Open(ledger.StoreOptions{Path: *ledgerPath})
		if err != nil {
			fatal(err)
		}
		defer lst.Close()
		client = ledger.Wrap(client, lst, ledger.WrapOptions{
			Prices:      prices,
			CaptureText: *ledgerText,
			Registry:    reg,
		})
	}
	// Instrument outermost, after record/replay/ledger composition, so
	// the telemetry measures what the pipeline actually waited on.
	client = llm.Instrument(client, reg)

	var issues []issue.ID
	if *issuesFlag != "" {
		for _, s := range strings.Split(*issuesFlag, ",") {
			issues = append(issues, issue.ID(strings.TrimSpace(s)))
		}
	}

	var kb *knowledge.Base
	if *kbDir != "" {
		kb = knowledge.NewBase(knowledge.DefaultHyperparams())
		n, err := kb.LoadOverrides(*kbDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ion: loaded %d knowledge override(s) from %s\n", n, *kbDir)
	}

	fw, err := ion.New(ion.Config{Client: client, KB: kb, Issues: issues, SkipSummary: !*summary})
	if err != nil {
		fatal(err)
	}
	dir := *workdir
	if dir == "" {
		dir = *logPath + ".csv"
	}

	ctx := obs.WithLogger(context.Background(), logger)
	var tracer *obs.Tracer
	var root *obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		ctx, root = obs.StartSpan(ctx, "pipeline", obs.L("trace", *logPath))
	}
	start := time.Now()
	rep, err := fw.AnalyzeFile(ctx, *logPath, dir)
	if err != nil {
		fatal(err)
	}
	logger.Info("diagnosis complete", "trace", *logPath, "issues", len(rep.Diagnoses),
		"elapsed", time.Since(start).Round(time.Millisecond).String())

	if tracer != nil {
		root.End()
		tl := tracer.Timeline()
		tl.Trace = *logPath
		data, err := json.MarshalIndent(tl, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ion: span timeline (%d spans) written to %s\n", len(tl.Spans), *traceOut)
	}

	if *saveReport != "" {
		if err := rep.SaveJSON(*saveReport); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ion: report saved to %s\n", *saveReport)
	}

	if *explore {
		traceLog, err := darshan.Load(*logPath)
		if err != nil {
			fatal(err)
		}
		fmt.Println(dxtexplore.Explore(traceLog, dxtexplore.Options{Width: 72, MaxRows: 12}))
	}

	opts := report.Options{
		Color:        *color,
		ShowCode:     *showCode,
		ShowSteps:    !*hideSteps,
		OnlyFindings: !*everything,
	}
	if err := report.WriteReport(os.Stdout, rep, opts); err != nil {
		fatal(err)
	}

	if *advise {
		out, err := extractor.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		plan, err := advisor.Recommend(rep, out)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(plan.Render())
	}

	if *verify {
		out, err := extractor.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		res, err := consistency.Check(rep, out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nconsistency: %d rules checked, %d violation(s)\n", res.RulesChecked, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  [%s] %s: %s\n", v.Severity, v.Rule, v.Detail)
		}
		if !res.Consistent() {
			fmt.Println("consistency: ERROR-level violations found — treat this diagnosis with suspicion")
		}
	}

	if *interactive {
		if err := repl(client, rep, *useRAG); err != nil {
			fatal(err)
		}
	}
}

func buildClient(backend, baseURL, apiKey, model, record, replay string) (llm.Client, error) {
	var client llm.Client
	switch backend {
	case "expertsim":
		client = expertsim.New()
	case "openai":
		c, err := llm.NewOpenAI(llm.OpenAIConfig{BaseURL: baseURL, APIKey: apiKey, Model: model})
		if err != nil {
			return nil, err
		}
		client = c
	default:
		return nil, fmt.Errorf("ion: unknown backend %q", backend)
	}
	if record != "" {
		rec, err := llm.NewRecorder(client, record)
		if err != nil {
			return nil, err
		}
		client = rec
	}
	if replay != "" {
		rp, err := llm.NewReplay(replay, client)
		if err != nil {
			return nil, err
		}
		client = rp
	}
	return client, nil
}

func repl(client llm.Client, rep *ion.Report, useRAG bool) error {
	session, err := ion.NewSession(client, rep)
	if err != nil {
		return err
	}
	if useRAG {
		provider, err := rag.ContextProvider(rep, knowledge.NewBase(knowledge.DefaultHyperparams()), 4)
		if err != nil {
			return err
		}
		session.SetContextProvider(provider)
	}
	fmt.Println("\nInteractive mode — ask about the diagnosis (empty line or 'exit' to quit).")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("ion> ")
		if !sc.Scan() {
			break
		}
		q := strings.TrimSpace(sc.Text())
		if q == "" || q == "exit" || q == "quit" {
			break
		}
		answer, err := session.Ask(context.Background(), q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ion:", err)
			continue
		}
		fmt.Println(answer)
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ion:", err)
	os.Exit(1)
}
