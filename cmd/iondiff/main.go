// Command iondiff diagnoses two Darshan traces of the same application
// (before and after a change) and reports which I/O issues the change
// fixed, which persist, and which regressed.
//
// Usage:
//
//	iondiff -before baseline.darshan -after optimized.darshan
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ion/internal/diffreport"
	"ion/internal/expertsim"
	"ion/internal/ion"
)

func main() {
	var (
		before  = flag.String("before", "", "baseline Darshan log")
		after   = flag.String("after", "", "changed-run Darshan log")
		workdir = flag.String("workdir", "", "directory for extracted CSVs (default: temp)")
	)
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "iondiff: -before and -after are required")
		flag.Usage()
		os.Exit(2)
	}
	dir := *workdir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "iondiff-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		fatal(err)
	}
	repBefore, err := fw.AnalyzeFile(context.Background(), *before, filepath.Join(dir, "before"))
	if err != nil {
		fatal(err)
	}
	repAfter, err := fw.AnalyzeFile(context.Background(), *after, filepath.Join(dir, "after"))
	if err != nil {
		fatal(err)
	}
	d, err := diffreport.Compare(repBefore, repAfter)
	if err != nil {
		fatal(err)
	}
	fmt.Print(d.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iondiff:", err)
	os.Exit(1)
}
