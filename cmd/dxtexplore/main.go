// Command dxtexplore renders a Darshan trace's DXT data as terminal
// visualizations (the DXT-Explorer analogue): a rank×time activity
// heatmap, the busiest file's rank×offset map, the access-size
// histogram, and a per-rank load table.
//
// Usage:
//
//	dxtexplore -log trace.darshan
//	dxtexplore -log trace.darshan -view timeline -op write -width 100
package main

import (
	"flag"
	"fmt"
	"os"

	"ion/internal/darshan"
	"ion/internal/dxtexplore"
)

func main() {
	var (
		logPath = flag.String("log", "", "Darshan log to visualize")
		view    = flag.String("view", "all", "view: all, timeline, offsets, sizes, ranks, osts")
		op      = flag.String("op", "", "filter events: read, write, or empty for both")
		width   = flag.Int("width", 80, "plot width in characters")
		rows    = flag.Int("rows", 16, "maximum rank rows (ranks band together beyond this)")
		fileArg = flag.String("file", "", "file path for the offsets view (default: busiest file)")
	)
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "dxtexplore: -log is required")
		flag.Usage()
		os.Exit(2)
	}
	log, err := darshan.Load(*logPath)
	if err != nil {
		fatal(err)
	}
	opts := dxtexplore.Options{Width: *width, MaxRows: *rows, Op: *op}
	switch *view {
	case "all":
		fmt.Print(dxtexplore.Explore(log, opts))
	case "timeline":
		fmt.Print(dxtexplore.Timeline(log, opts))
	case "sizes":
		fmt.Print(dxtexplore.SizeHistogram(log, opts))
	case "ranks":
		fmt.Print(dxtexplore.RankSummary(log, opts))
	case "osts":
		fmt.Print(dxtexplore.OSTLoad(log, opts))
	case "offsets":
		id, err := resolveFile(log, *fileArg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(dxtexplore.OffsetMap(log, id, opts))
	default:
		fatal(fmt.Errorf("unknown view %q", *view))
	}
}

func resolveFile(log *darshan.Log, path string) (uint64, error) {
	if path == "" {
		var busiest uint64
		most := -1
		for _, tr := range log.DXT {
			if len(tr.Events) > most {
				most = len(tr.Events)
				busiest = tr.FileID
			}
		}
		if most < 0 {
			return 0, fmt.Errorf("trace has no DXT data")
		}
		return busiest, nil
	}
	for id, name := range log.Names {
		if name == path {
			return id, nil
		}
	}
	return 0, fmt.Errorf("file %q not found in trace", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dxtexplore:", err)
	os.Exit(1)
}
