// Command iongen generates the evaluation's synthetic Darshan traces:
// the six IO500-derived workloads of Figure 2 and the OpenPMD / E2E
// application traces of Figure 3, each executed on the Lustre-like
// simulator and written as a Darshan log (binary container by default,
// darshan-parser text on request).
//
// Usage:
//
//	iongen -list
//	iongen -workload ior-hard -out traces/
//	iongen -all -out traces/ -format text
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ion/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "", "workload to generate (see -list)")
		all      = flag.Bool("all", false, "generate every workload")
		out      = flag.String("out", ".", "output directory")
		format   = flag.String("format", "binary", "log format: binary (.darshan) or text (.darshan.txt)")
		withDXT  = flag.Bool("dxt", true, "include the DXT text section in text output")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-22s %s\n", w.Name, w.Description)
		}
		return
	}

	var targets []workloads.Workload
	switch {
	case *all:
		targets = workloads.All()
	case *workload != "":
		w, err := workloads.ByName(*workload)
		if err != nil {
			fatal(err)
		}
		targets = []workloads.Workload{w}
	default:
		fmt.Fprintln(os.Stderr, "iongen: need -workload <name>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, w := range targets {
		log, stats, err := w.GenerateWithStats()
		if err != nil {
			fatal(err)
		}
		var path string
		switch *format {
		case "binary":
			path = filepath.Join(*out, w.Name+".darshan")
			if err := log.WriteFile(path); err != nil {
				fatal(err)
			}
		case "text":
			path = filepath.Join(*out, w.Name+".darshan.txt")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := log.WriteText(f); err != nil {
				fatal(err)
			}
			if *withDXT {
				if err := log.WriteDXTText(f); err != nil {
					fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("iongen: unknown format %q", *format))
		}
		fmt.Printf("%-22s -> %s (%d ranks, %d ops, %.3fs simulated, %d lock conflicts)\n",
			w.Name, path, w.NProcs, stats.TotalOps, stats.Makespan, stats.LockConflicts)
		for _, e := range w.Truth {
			fmt.Printf("    ground truth: %-20s %-12s %s\n", e.Issue, e.Want, e.Note)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iongen:", err)
	os.Exit(1)
}
