// Command ionbench regenerates the paper's evaluation artifacts:
//
//	ionbench -figure 2     reproduce Figure 2 (ION vs ground truth, IO500)
//	ionbench -figure 3     reproduce Figure 3 (ION vs Drishti, OpenPMD+E2E)
//	ionbench -pitfalls     reproduce the §2 threshold-pitfall analysis
//	ionbench -all          everything, plus the aggregate scoreboard
//
// Output is deterministic: the default backend is the simulated expert
// model, so the tables regenerate bit-identically across runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"ion/internal/eval"
	"ion/internal/expertsim"
	"ion/internal/obs"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to reproduce: 2 or 3")
		pitfalls = flag.Bool("pitfalls", false, "run the §2 threshold-pitfall sweep")
		sweep    = flag.Bool("sweep", false, "run the transfer-size sweep")
		scale    = flag.Bool("scale", false, "run the rank-scaling contention sweep")
		all      = flag.Bool("all", false, "run every experiment")
		stages   = flag.Bool("stages", false, "print the per-stage latency summary (p50/p95/p99) after the run")
		workdir  = flag.String("workdir", "", "directory for extracted CSVs (default: temp)")
		benchOut = flag.String("bench-out", "", "run the ingestion stage benchmarks (parse, extract, analyze e2e) and write the JSON trajectory to this file, e.g. BENCH_3.json")
		version  = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.GetBuildInfo().String())
		return
	}
	if *benchOut != "" {
		if err := runBenchOut(*benchOut); err != nil {
			fatal(err)
		}
		if *figure == 0 && !*pitfalls && !*sweep && !*scale && !*all {
			return
		}
	}
	if *figure == 0 && !*pitfalls && !*sweep && !*scale && !*all {
		flag.Usage()
		os.Exit(2)
	}

	runner := &eval.Runner{Client: expertsim.New(), WorkDir: *workdir, SkipSummary: true}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *stages {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}

	var fig2, fig3 []*eval.Result
	if *all || *figure == 2 {
		text, results, err := runner.Figure2(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		fig2 = results
	}
	if *all || *figure == 3 {
		text, results, err := runner.Figure3(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		fig3 = results
	}
	if *all || *sweep {
		text, _, err := runner.TransferSweep(ctx, []int64{2 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 8 << 20})
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *all || *scale {
		text, _, err := runner.ScaleSweep(ctx, []int{2, 4, 8, 16, 32})
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *all || *pitfalls {
		text, _, err := runner.ThresholdPitfall(ctx, []int64{256 << 10, 1 << 20, 4 << 20})
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}
	if *all {
		scoreboard(append(fig2, fig3...))
	}
	if *stages {
		printStages(tracer.Timeline())
	}
}

// printStages renders the per-stage latency distribution of everything
// the run executed, so the evaluation artifacts can track where the
// pipeline spends its time, not just end-to-end totals.
func printStages(tl obs.Timeline) {
	stats := obs.Summarize(tl)
	if len(stats) == 0 {
		fmt.Println("\nPer-stage latency: no spans recorded")
		return
	}
	fmt.Println("\nPer-stage latency")
	fmt.Println("=================")
	fmt.Printf("%-16s %6s %12s %10s %10s %10s %10s\n",
		"stage", "count", "total", "p50", "p95", "p99", "max")
	for _, st := range stats {
		fmt.Printf("%-16s %6d %11.3fs %9.3fms %9.3fms %9.3fms %9.3fms\n",
			st.Stage, st.Count, st.TotalSeconds,
			1e3*st.P50, 1e3*st.P95, 1e3*st.P99, 1e3*st.Max)
	}
}

func scoreboard(results []*eval.Result) {
	fmt.Println("Aggregate scoreboard")
	fmt.Println("====================")
	fmt.Printf("%-22s %-28s %-28s\n", "workload", "ION (verdict accuracy)", "Drishti (flag accuracy)")
	var ionHit, ionTotal, ionFP, dHit, dTotal, dFP int
	for _, r := range results {
		fmt.Printf("%-22s %-28s %-28s\n", r.Workload.Name, r.IONScore.String(), r.DrishtiScore.String())
		ionHit += r.IONScore.Matched
		ionTotal += r.IONScore.Expected
		ionFP += len(r.IONScore.FalsePositives)
		dHit += r.DrishtiScore.Matched
		dTotal += r.DrishtiScore.Expected
		dFP += len(r.DrishtiScore.FalsePositives)
	}
	fmt.Printf("%-22s %d/%d matched, %d FP         %d/%d matched, %d FP\n",
		"TOTAL", ionHit, ionTotal, ionFP, dHit, dTotal, dFP)
	fmt.Println("\nPer-issue detail of mismatches:")
	for _, r := range results {
		for _, m := range r.IONScore.Mismatches {
			fmt.Printf("  ION     %-22s %-20s want=%s got=%s\n", r.Workload.Name, m.Issue, m.Want, m.Got)
		}
		for _, m := range r.DrishtiScore.Mismatches {
			fmt.Printf("  Drishti %-22s %-20s want=%s got=%s\n", r.Workload.Name, m.Issue, m.Want, m.Got)
		}
		for _, id := range r.IONScore.FalsePositives {
			fmt.Printf("  ION     %-22s %-20s false positive\n", r.Workload.Name, id)
		}
		for _, id := range r.DrishtiScore.FalsePositives {
			fmt.Printf("  Drishti %-22s %-20s false positive\n", r.Workload.Name, id)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ionbench:", err)
	os.Exit(1)
}
