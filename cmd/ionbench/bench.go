package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ion/internal/darshan"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/testutil"
)

// benchSchema versions the -bench-out JSON so future PRs can diff
// BENCH_*.json files against each other. v2 adds the parse_workers
// sweep and the stream_ingest stage.
const benchSchema = "ionbench/stages/v2"

// stageResult is one stage benchmark in the trajectory file.
type stageResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// ParseWorkers is set on parse_sharded stages: the shard pool size
	// that stage ran with.
	ParseWorkers int `json:"parse_workers,omitempty"`
}

// benchFile is the on-disk shape of BENCH_<n>.json.
type benchFile struct {
	Schema   string        `json:"schema"`
	Go       string        `json:"go"`
	Workload string        `json:"workload"`
	Stages   []stageResult `json:"stages"`
}

// tileTrace repeats a rendered trace until it reaches minBytes, so the
// sharded parser has enough input to cut real shards.
func tileTrace(text []byte, minBytes int) []byte {
	big := make([]byte, 0, minBytes+len(text))
	for len(big) < minBytes {
		big = append(big, text...)
	}
	return big
}

// workerSweep returns the deduplicated shard-pool sizes the trajectory
// file records: 1, 2, 4, and whatever GOMAXPROCS is here.
func workerSweep() []int {
	sweep := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := sweep[:0]
	for _, w := range sweep {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// streamOnce pushes the body through a StreamParser in 64 KiB writes,
// the same cadence the HTTP handler reads a chunked upload at.
func streamOnce(body []byte) error {
	sp := darshan.NewStreamParser(darshan.StreamOptions{})
	for off := 0; off < len(body); off += 64 << 10 {
		end := off + 64<<10
		if end > len(body) {
			end = len(body)
		}
		if _, err := sp.Write(body[off:end]); err != nil {
			break
		}
	}
	_, _, err := sp.Finish()
	return err
}

// runBenchOut measures the ingestion stages — text parse, in-memory
// extract, and the analyze pipeline end to end — and writes the JSON
// trajectory file future PRs diff against.
func runBenchOut(path string) error {
	const workload = "openpmd-baseline"
	log, err := testutil.Log(workload)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	var text bytes.Buffer
	if err := log.WriteText(&text); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := log.WriteDXTText(&text); err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	out := benchFile{Schema: benchSchema, Go: runtime.Version(), Workload: workload}
	record := func(name string, withBytes int64, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "ionbench: measuring %s...\n", name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if withBytes > 0 {
				b.SetBytes(withBytes)
			}
			fn(b)
		})
		st := stageResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if withBytes > 0 && r.T > 0 {
			st.MBPerS = float64(withBytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		out.Stages = append(out.Stages, st)
	}

	record("parse", int64(text.Len()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := darshan.ParseText(bytes.NewReader(text.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The sharded sweep and the streaming stage need a body big enough
	// to cut several shards; tile the rendered trace past 8 MiB
	// (repeated counter lines overwrite, DXT events accumulate — still
	// a valid log, and identical work for every worker count).
	big := tileTrace(text.Bytes(), 8<<20)
	record("parse_seq_8mb", int64(len(big)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := darshan.ParseText(bytes.NewReader(big)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range workerSweep() {
		w := workers
		record(fmt.Sprintf("parse_sharded_w%d", w), int64(len(big)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := darshan.ParseTextParallel(big, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		out.Stages[len(out.Stages)-1].ParseWorkers = w
	}
	record("stream_ingest", int64(len(big)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := streamOnce(big); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("extract", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extractor.Extract(log); err != nil {
				b.Fatal(err)
			}
		}
	})

	fw, err := ion.New(ion.Config{Client: expertsim.New()})
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	workDir, err := os.MkdirTemp("", "ionbench-*")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(workDir)
	ctx := context.Background()
	record("analyze_e2e", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fw.AnalyzeLog(ctx, log, workload, workDir); err != nil {
				b.Fatal(err)
			}
		}
	})

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	fmt.Printf("wrote %s\n", path)
	for _, st := range out.Stages {
		fmt.Printf("  %-12s %12d ns/op %12d B/op %9d allocs/op", st.Name, st.NsPerOp, st.BytesPerOp, st.AllocsPerOp)
		if st.MBPerS > 0 {
			fmt.Printf(" %8.2f MB/s", st.MBPerS)
		}
		fmt.Println()
	}
	return nil
}
