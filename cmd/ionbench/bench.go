package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ion/internal/darshan"
	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/testutil"
)

// benchSchema versions the -bench-out JSON so future PRs can diff
// BENCH_*.json files against each other.
const benchSchema = "ionbench/stages/v1"

// stageResult is one stage benchmark in the trajectory file.
type stageResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// benchFile is the on-disk shape of BENCH_<n>.json.
type benchFile struct {
	Schema   string        `json:"schema"`
	Go       string        `json:"go"`
	Workload string        `json:"workload"`
	Stages   []stageResult `json:"stages"`
}

// runBenchOut measures the ingestion stages — text parse, in-memory
// extract, and the analyze pipeline end to end — and writes the JSON
// trajectory file future PRs diff against.
func runBenchOut(path string) error {
	const workload = "openpmd-baseline"
	log, err := testutil.Log(workload)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	var text bytes.Buffer
	if err := log.WriteText(&text); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := log.WriteDXTText(&text); err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	out := benchFile{Schema: benchSchema, Go: runtime.Version(), Workload: workload}
	record := func(name string, withBytes int64, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "ionbench: measuring %s...\n", name)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if withBytes > 0 {
				b.SetBytes(withBytes)
			}
			fn(b)
		})
		st := stageResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if withBytes > 0 && r.T > 0 {
			st.MBPerS = float64(withBytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		out.Stages = append(out.Stages, st)
	}

	record("parse", int64(text.Len()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := darshan.ParseText(bytes.NewReader(text.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("extract", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := extractor.Extract(log); err != nil {
				b.Fatal(err)
			}
		}
	})

	fw, err := ion.New(ion.Config{Client: expertsim.New()})
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	workDir, err := os.MkdirTemp("", "ionbench-*")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(workDir)
	ctx := context.Background()
	record("analyze_e2e", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fw.AnalyzeLog(ctx, log, workload, workDir); err != nil {
				b.Fatal(err)
			}
		}
	})

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	fmt.Printf("wrote %s\n", path)
	for _, st := range out.Stages {
		fmt.Printf("  %-12s %12d ns/op %12d B/op %9d allocs/op", st.Name, st.NsPerOp, st.BytesPerOp, st.AllocsPerOp)
		if st.MBPerS > 0 {
			fmt.Printf(" %8.2f MB/s", st.MBPerS)
		}
		fmt.Println()
	}
	return nil
}
