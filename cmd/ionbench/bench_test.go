package main

import (
	"bytes"
	"fmt"
	"testing"

	"ion/internal/darshan"
	"ion/internal/testutil"
)

// benchBody renders the bench workload as text and tiles it past
// minBytes so the sharded paths cut several real shards.
func benchBody(tb testing.TB, minBytes int) []byte {
	tb.Helper()
	log, err := testutil.Log("openpmd-baseline")
	if err != nil {
		tb.Fatal(err)
	}
	var text bytes.Buffer
	if err := log.WriteText(&text); err != nil {
		tb.Fatal(err)
	}
	if err := log.WriteDXTText(&text); err != nil {
		tb.Fatal(err)
	}
	return tileTrace(text.Bytes(), minBytes)
}

// BenchmarkParseTextParallel sweeps the shard pool size over an ~8 MiB
// body; workers=1 is the sequential baseline on the same input.
func BenchmarkParseTextParallel(b *testing.B) {
	body := benchBody(b, 8<<20)
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := darshan.ParseTextParallel(body, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamIngest measures the full streaming path — 64 KiB
// writes, incremental sharding, merge — as the HTTP handler drives it.
func BenchmarkStreamIngest(b *testing.B) {
	body := benchBody(b, 8<<20)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := streamOnce(body); err != nil {
			b.Fatal(err)
		}
	}
}
