package jobs

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/llm"
	"ion/internal/prompt"
	"ion/internal/semcache"
	"ion/internal/testutil"
)

// countingClient wraps a backend and counts Complete calls — the probe
// that proves the reuse ladder actually skips LLM work.
type countingClient struct {
	llm.Client
	calls       atomic.Int64
	conditioned atomic.Int64
}

func (c *countingClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	c.calls.Add(1)
	if req.Metadata[prompt.MetaConditioned] == "1" {
		c.conditioned.Add(1)
	}
	return c.Client.Complete(ctx, req)
}

func openSemStore(t *testing.T, opts semcache.Options) *semcache.Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "semcache.jsonl")
	}
	st, err := semcache.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// workloadSim returns the quantized-signature cosine similarity of two
// workloads, so tests can bracket thresholds around measured reality
// instead of hard-coding assumptions about the signature extractor.
func workloadSim(t *testing.T, a, b string) float64 {
	t.Helper()
	oa, _, err := testutil.Extracted(a)
	if err != nil {
		t.Fatal(err)
	}
	ob, _, err := testutil.Extracted(b)
	if err != nil {
		t.Fatal(err)
	}
	return semcache.Cosine(semcache.Extract(oa).Quantize(0), semcache.Extract(ob).Quantize(0))
}

// TestSemanticReuseLadder walks all four rungs: exact-hash hit,
// semantic hit, conditioned run, and full fan-out, counting LLM calls
// at each rung.
func TestSemanticReuseLadder(t *testing.T) {
	crossSim := workloadSim(t, "ior-hard", "stdio-postprocess")
	if crossSim >= 0.99 {
		t.Fatalf("signature extractor cannot separate ior-hard from stdio-postprocess (cosine %.4f)", crossSim)
	}
	// Bracket the conditioning band around the measured cross-workload
	// similarity: a perturbed ior-hard (similarity 1.0) lands above the
	// reuse threshold, stdio-postprocess lands below the conditioning
	// threshold.
	condThreshold := crossSim + (1-crossSim)/2

	client := &countingClient{Client: expertsim.New()}
	sem := openSemStore(t, semcache.Options{})
	svc := openService(t, Config{
		Workers:               1,
		Client:                client,
		SemCache:              sem,
		SemReuseThreshold:     0.995,
		SemConditionThreshold: condThreshold,
	})

	// Rung 0: cold run pays full fan-out.
	j1, _, err := svc.Submit("ior-hard-v1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j1.ID); got.State != StateDone {
		t.Fatalf("cold job state = %s (%s)", got.State, got.Error)
	}
	coldCalls := client.calls.Load()
	if coldCalls == 0 {
		t.Fatal("cold run made no LLM calls")
	}
	if sem.Len() != 1 {
		t.Fatalf("cold run indexed %d entries, want 1", sem.Len())
	}

	// Rung 1: byte-identical resubmission is an exact-hash hit.
	dup, dedup, err := svc.Submit("ior-hard-v1-again", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !dedup || dup.ID != j1.ID {
		t.Fatalf("identical trace not deduped: dedup=%v id=%s", dedup, dup.ID)
	}
	if client.calls.Load() != coldCalls {
		t.Fatal("exact-hash hit made LLM calls")
	}

	// Rung 2: perturbed trace (new bytes, same workload) is a semantic
	// hit with zero LLM calls and full provenance.
	j2, dedup, err := svc.Submit("ior-hard-v2", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	if dedup {
		t.Fatal("perturbed trace answered by exact-hash dedup")
	}
	got2 := waitDone(t, svc, j2.ID)
	if got2.State != StateReused {
		t.Fatalf("perturbed job state = %s (%s), want reused", got2.State, got2.Error)
	}
	if client.calls.Load() != coldCalls {
		t.Fatalf("semantic hit made LLM calls: %d -> %d", coldCalls, client.calls.Load())
	}
	if got2.ReusedFrom == nil || got2.ReusedFrom.Mode != ReuseSemanticHit ||
		got2.ReusedFrom.From != j1.ID || got2.ReusedFrom.Similarity < 0.995 {
		t.Fatalf("provenance wrong: %+v", got2.ReusedFrom)
	}
	rep, err := svc.Report(j2.ID)
	if err != nil {
		t.Fatalf("reused job has no readable report: %v", err)
	}
	if rep.Trace != "ior-hard-v2" {
		t.Errorf("reused report not relabeled: %q", rep.Trace)
	}

	// Rung 3: dissimilar workload runs full fan-out and is indexed.
	before := client.calls.Load()
	j3, _, err := svc.Submit("stdio-pp", textTrace(t, "stdio-postprocess", 1))
	if err != nil {
		t.Fatal(err)
	}
	got3 := waitDone(t, svc, j3.ID)
	if got3.State != StateDone {
		t.Fatalf("dissimilar job state = %s (%s)", got3.State, got3.Error)
	}
	if got3.ReusedFrom != nil {
		t.Fatalf("dissimilar job carries reuse provenance: %+v", got3.ReusedFrom)
	}
	if client.calls.Load() == before {
		t.Fatal("dissimilar workload made no LLM calls")
	}
	if sem.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2 (semantic hit must not re-index)", sem.Len())
	}

	st := svc.Stats()
	if st.SemanticHits != 1 {
		t.Errorf("stats.SemanticHits = %d, want 1", st.SemanticHits)
	}
	ss := sem.Stats()
	if ss.Hits != 1 || ss.Misses < 2 {
		t.Errorf("store stats = %+v, want 1 hit and >=2 misses", ss)
	}
}

// TestConditionedRun forces the middle band by disabling the verbatim
// tier: a perturbed trace (similarity 1.0) must run conditioned — the
// neighbor's clean verdicts adopted, retrieved context injected, and
// strictly fewer LLM calls than the cold run.
func TestConditionedRun(t *testing.T) {
	client := &countingClient{Client: expertsim.New()}
	sem := openSemStore(t, semcache.Options{})
	svc := openService(t, Config{
		Workers:               1,
		Client:                client,
		SemCache:              sem,
		SemReuseThreshold:     1.01, // cosine never exceeds 1: verbatim tier off
		SemConditionThreshold: 0.90,
	})

	j1, _, err := svc.Submit("openpmd-v1", textTrace(t, "openpmd-baseline", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j1.ID); got.State != StateDone {
		t.Fatalf("cold job: %s (%s)", got.State, got.Error)
	}
	coldCalls := client.calls.Load()

	j2, _, err := svc.Submit("openpmd-v2", textTrace(t, "openpmd-baseline", 2))
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitDone(t, svc, j2.ID)
	if got2.State != StateDone {
		t.Fatalf("conditioned job: %s (%s)", got2.State, got2.Error)
	}
	condCalls := client.calls.Load() - coldCalls
	if condCalls >= coldCalls {
		t.Fatalf("conditioned run made %d calls, cold run %d — no savings", condCalls, coldCalls)
	}
	if condCalls == 0 {
		t.Fatal("conditioned run made no LLM calls at all (should have confirmed detected issues)")
	}
	if client.conditioned.Load() == 0 {
		t.Fatal("no prompt carried retrieved context")
	}
	if got2.ReusedFrom == nil || got2.ReusedFrom.Mode != ReuseConditioned || got2.ReusedFrom.From != j1.ID {
		t.Fatalf("conditioned provenance wrong: %+v", got2.ReusedFrom)
	}
	// The conditioned report must still cover every issue: adopted
	// verdicts fill the gaps the skipped LLM calls left.
	rep, err := svc.Report(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := svc.Report(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != len(rep1.Diagnoses) {
		t.Fatalf("conditioned report has %d diagnoses, cold has %d", len(rep.Diagnoses), len(rep1.Diagnoses))
	}
	if sem.Stats().Conditioned != 1 {
		t.Errorf("store conditioned counter = %d, want 1", sem.Stats().Conditioned)
	}
	if st := svc.Stats(); st.Conditioned != 1 || st.AdoptedVerdicts == 0 {
		t.Errorf("service stats conditioned=%d adopted_verdicts=%d, want 1 and >0", st.Conditioned, st.AdoptedVerdicts)
	}
}

// TestSublinearity is the acceptance-criteria end-to-end: N
// near-duplicate traces cost exactly one cold run's worth of LLM
// calls; every subsequent submission is free and carries provenance.
func TestSublinearity(t *testing.T) {
	const n = 5
	client := &countingClient{Client: expertsim.New()}
	sem := openSemStore(t, semcache.Options{})
	svc := openService(t, Config{Workers: 2, Client: client, SemCache: sem})

	j1, _, err := svc.Submit("near-dup-1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j1.ID); got.State != StateDone {
		t.Fatalf("cold job: %s (%s)", got.State, got.Error)
	}
	coldCalls := client.calls.Load()

	for i := 2; i <= n; i++ {
		j, dedup, err := svc.Submit("near-dup", textTrace(t, "ior-hard", i))
		if err != nil {
			t.Fatal(err)
		}
		if dedup {
			t.Fatalf("variant %d hit the exact-hash cache", i)
		}
		got := waitDone(t, svc, j.ID)
		if got.State != StateReused {
			t.Fatalf("variant %d state = %s (%s), want reused", i, got.State, got.Error)
		}
		if got.ReusedFrom == nil || got.ReusedFrom.From != j1.ID {
			t.Fatalf("variant %d provenance: %+v", i, got.ReusedFrom)
		}
	}
	if total := client.calls.Load(); total != coldCalls {
		t.Fatalf("LLM calls grew with traffic: cold=%d total=%d", coldCalls, total)
	}
	if st := svc.Stats(); st.SemanticHits != n-1 {
		t.Fatalf("SemanticHits = %d, want %d", st.SemanticHits, n-1)
	}
}

// TestSemanticStoreSurvivesServiceRestart proves the paper-trail
// requirement: a restarted service reloads the store from -data and
// keeps answering semantically.
func TestSemanticStoreSurvivesServiceRestart(t *testing.T) {
	dir := t.TempDir()
	semPath := filepath.Join(dir, "semcache.jsonl")

	sem1, err := semcache.Open(semcache.Options{Path: semPath})
	if err != nil {
		t.Fatal(err)
	}
	svc1 := openService(t, Config{Dir: dir, Workers: 1, SemCache: sem1})
	j1, _, err := svc1.Submit("gen1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc1, j1.ID); got.State != StateDone {
		t.Fatalf("cold job: %s (%s)", got.State, got.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	svc1.Close(ctx)
	cancel()
	sem1.Close()

	sem2, err := semcache.Open(semcache.Options{Path: semPath})
	if err != nil {
		t.Fatal(err)
	}
	if sem2.Len() != 1 {
		t.Fatalf("restarted store holds %d entries, want 1", sem2.Len())
	}
	client := &countingClient{Client: expertsim.New()}
	svc2 := openService(t, Config{Dir: dir, Workers: 1, Client: client, SemCache: sem2})
	j2, _, err := svc2.Submit("gen2", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc2, j2.ID)
	if got.State != StateReused {
		t.Fatalf("post-restart state = %s (%s), want reused", got.State, got.Error)
	}
	if got.ReusedFrom == nil || got.ReusedFrom.From != j1.ID {
		t.Fatalf("post-restart provenance: %+v", got.ReusedFrom)
	}
	if client.calls.Load() != 0 {
		t.Fatalf("post-restart semantic hit made %d LLM calls", client.calls.Load())
	}
}

// TestConcurrentSubmitLookupEvict hammers the semantic path from many
// goroutines against a store small enough to evict constantly; run
// with -race.
func TestConcurrentSubmitLookupEvict(t *testing.T) {
	sem := openSemStore(t, semcache.Options{MaxEntries: 2})
	svc := openService(t, Config{Workers: 4, QueueDepth: 64, SemCache: sem})

	workloads := []string{"ior-hard", "stdio-postprocess", "healthy-checkpoint"}
	// Pre-render traces outside the goroutines: textTrace shares the
	// testutil cache.
	traces := make([][]byte, 0, 12)
	for i := 0; i < 4; i++ {
		for _, w := range workloads {
			traces = append(traces, textTrace(t, w, i))
		}
	}

	var wg sync.WaitGroup
	ids := make(chan string, len(traces))
	for i, data := range traces {
		i, data := i, data
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, dedup, err := svc.Submit("", data)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if !dedup {
				ids <- j.ID
			}
			sem.Lookup(semcache.Signature{0.5, 0.5})
			sem.Stats()
			sem.Entries()
		}()
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		j := waitDone(t, svc, id)
		if j.State != StateDone && j.State != StateReused {
			t.Fatalf("job %s ended %s (%s)", id, j.State, j.Error)
		}
	}
	if sem.Len() > 2 {
		t.Fatalf("eviction bound breached: %d entries", sem.Len())
	}
}
