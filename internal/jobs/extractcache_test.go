package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/obs"
	"ion/internal/table"
)

// fakeOutput builds a synthetic extraction output of roughly n cells,
// big enough that outputBytes scales with n.
func fakeOutput(t *testing.T, n int) *extractor.Output {
	t.Helper()
	tb := table.New("POSIX", []string{"file_id", "v"})
	for i := 0; i < n; i++ {
		if err := tb.Append([]string{strconv.Itoa(i), "0123456789abcdef"}); err != nil {
			t.Fatal(err)
		}
	}
	return &extractor.Output{Tables: map[string]*table.Table{"POSIX": tb}, Paths: map[string]string{}}
}

func TestExtractCacheLRUEviction(t *testing.T) {
	out := fakeOutput(t, 100)
	size := outputBytes(out)
	c := newExtractCache(2*size + size/2) // room for two entries, not three

	c.put("a", out)
	c.put("b", fakeOutput(t, 100))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted while under budget")
	}
	// a was just refreshed, so inserting c evicts b.
	c.put("c", fakeOutput(t, 100))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; LRU order not honored")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted instead of least-recently-used b")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing right after insert")
	}
	if got := c.len(); got != 2 {
		t.Errorf("entries = %d, want 2", got)
	}
	if c.bytes() > 2*size+size/2 {
		t.Errorf("bytes = %d exceeds budget", c.bytes())
	}

	// An output larger than the whole budget is not cached.
	huge := fakeOutput(t, 100000)
	c.put("huge", huge)
	if _, ok := c.get("huge"); ok {
		t.Error("over-budget output was cached")
	}
}

func TestExtractCacheDisabledAndNilSafe(t *testing.T) {
	var c *extractCache // disabled
	c.put("k", fakeOutput(t, 1))
	if _, ok := c.get("k"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.hitCount() != 0 || c.missCount() != 0 || c.bytes() != 0 || c.len() != 0 {
		t.Error("nil cache reported nonzero stats")
	}
	if newExtractCache(-1) != nil {
		t.Error("negative budget should disable the cache")
	}
}

func TestExtractCacheConcurrentAccess(t *testing.T) {
	c := newExtractCache(1 << 20)
	outs := make([]*extractor.Output, 8)
	for i := range outs {
		outs[i] = fakeOutput(t, 50)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := strconv.Itoa((g + i) % len(outs))
				if out, ok := c.get(key); ok {
					// Shared read of a cached output, as concurrent jobs do.
					if out.Tables["POSIX"].NumRows() == 0 {
						t.Error("cached output lost its rows")
						return
					}
				} else {
					c.put(key, outs[(g+i)%len(outs)])
				}
			}
		}()
	}
	wg.Wait()
	if c.hitCount()+c.missCount() == 0 {
		t.Error("no cache traffic recorded")
	}
}

// spanNames collects the distinct span names of a job's persisted
// timeline.
func spanNames(t *testing.T, svc *Service, id string) map[string]bool {
	t.Helper()
	raw, err := svc.Store().Timeline(id)
	if err != nil {
		t.Fatalf("timeline for %s: %v", id, err)
	}
	var tl obs.Timeline
	if err := json.Unmarshal(raw, &tl); err != nil {
		t.Fatalf("decoding timeline: %v", err)
	}
	names := map[string]bool{}
	for _, sp := range tl.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestExtractCacheHitSkipsParseExtract drives the acceptance scenario:
// a job fails analysis (so its hash leaves the dedup map), and the
// resubmission of the identical trace runs again — this time answered
// by the extract cache, with no parse or extract spans in its trace
// and a hit recorded in /metrics.
func TestExtractCacheHitSkipsParseExtract(t *testing.T) {
	flaky := &flakyClient{Client: expertsim.New()}
	flaky.remaining.Store(1) // exactly the first completion fails
	reg := obs.NewRegistry()
	svc := openService(t, Config{
		Workers:     1,
		Client:      flaky,
		MaxAttempts: 1,
		Obs:         reg,
	})
	data := traceBytes(t, "ior-hard")

	j1, _, err := svc.Submit("first", data)
	if err != nil {
		t.Fatal(err)
	}
	if final := waitDone(t, svc, j1.ID); final.State != StateFailed {
		t.Fatalf("first job state = %s, want failed", final.State)
	}
	names1 := spanNames(t, svc, j1.ID)
	if !names1["parse"] || !names1["extract"] || !names1["extract_module"] {
		t.Fatalf("first run spans = %v, want parse+extract present", names1)
	}

	j2, dedup, err := svc.Submit("second", data)
	if err != nil {
		t.Fatal(err)
	}
	if dedup || j2.ID == j1.ID {
		t.Fatalf("resubmission did not create a fresh job: dedup=%v", dedup)
	}
	if final := waitDone(t, svc, j2.ID); final.State != StateDone {
		t.Fatalf("second job state = %s (error %q), want done", final.State, final.Error)
	}
	names2 := spanNames(t, svc, j2.ID)
	if names2["parse"] || names2["extract"] || names2["extract_module"] {
		t.Errorf("cache-hit run spans = %v, want no parse/extract", names2)
	}
	if !names2["attempt"] {
		t.Errorf("cache-hit run spans = %v, want analysis attempt present", names2)
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("ion_extract_cache_hits_total 1")) {
		t.Errorf("metrics missing extract-cache hit:\n%s", metrics)
	}
	if !bytes.Contains(buf.Bytes(), []byte("ion_extract_cache_misses_total 1")) {
		t.Errorf("metrics missing extract-cache miss:\n%s", metrics)
	}
}

// TestExtractCacheConcurrentServiceHits runs repeated concurrent
// cache-hit jobs through the service (exercised under -race in CI):
// two distinct traces fail analysis over and over, and every rerun
// reads the shared cached extraction concurrently with the other.
func TestExtractCacheConcurrentServiceHits(t *testing.T) {
	flaky := &flakyClient{Client: expertsim.New()}
	flaky.remaining.Store(1 << 30) // analysis always fails; runs stay cheap
	svc := openService(t, Config{
		Workers:     4,
		Client:      flaky,
		MaxAttempts: 1,
		QueueDepth:  32,
	})
	traces := [][]byte{
		textTrace(t, "ior-hard", 1),
		textTrace(t, "ior-hard", 2),
	}
	for round := 0; round < 5; round++ {
		var ids []string
		for i, data := range traces {
			j, dedup, err := svc.Submit(fmt.Sprintf("t%d-r%d", i, round), data)
			if err != nil {
				t.Fatal(err)
			}
			if dedup {
				t.Fatalf("round %d trace %d deduped; failed jobs must not dedup", round, i)
			}
			ids = append(ids, j.ID)
		}
		for _, id := range ids {
			if final := waitDone(t, svc, id); final.State != StateFailed {
				t.Fatalf("job %s state = %s, want failed", id, final.State)
			}
		}
	}
	if hits := svc.cache.hitCount(); hits < 8 {
		t.Errorf("cache hits = %d, want ≥ 8 (2 traces × 4 rerun rounds)", hits)
	}
}
