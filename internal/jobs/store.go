package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ion/internal/ion"
	"ion/internal/obs"
)

// Store persists job records, uploaded trace bytes, and finished
// reports as plain files under a data directory:
//
//	<dir>/jobs/<id>.json             job record
//	<dir>/traces/<id>.darshan        submitted trace bytes
//	<dir>/reports/<id>.json          finished report (ion versioned envelope)
//	<dir>/reports/<id>.trace.json    span timeline of the analysis run
//	<dir>/work/<id>/                 per-job CSV extraction workspace
//
// Writes go through a temp-file + rename so a crash mid-write never
// leaves a torn record, and a fresh Store over an existing directory
// recovers every job that was queued or in flight.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens the data directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: store directory is required")
	}
	for _, sub := range []string{"jobs", "traces", "reports", "work"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// WorkDir returns the per-job CSV extraction directory.
func (s *Store) WorkDir(id string) string {
	return filepath.Join(s.dir, "work", id)
}

// PutJob persists a job record atomically.
func (s *Store) PutJob(j *Job) error {
	if err := validID(j.ID); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: marshaling job %s: %w", j.ID, err)
	}
	return writeAtomic(filepath.Join(s.dir, "jobs", j.ID+".json"), data)
}

// GetJob loads one job record.
func (s *Store) GetJob(id string) (*Job, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "jobs", id+".json"))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading job %s: %w", id, err)
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("jobs: parsing job %s: %w", id, err)
	}
	return &j, nil
}

// Jobs loads every job record in the store. Records that fail to parse
// are skipped rather than poisoning recovery.
func (s *Store) Jobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("jobs: listing store: %w", err)
	}
	var out []*Job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		j, err := s.GetJob(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue
		}
		if j.ID == "" || !j.State.Valid() {
			continue
		}
		out = append(out, j)
	}
	return out, nil
}

// PutTrace persists the submitted trace bytes for a job.
func (s *Store) PutTrace(id string, data []byte) error {
	if err := validID(id); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.dir, "traces", id+".darshan"), data)
}

// Trace reads back the submitted trace bytes for a job.
func (s *Store) Trace(id string) ([]byte, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "traces", id+".darshan"))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading trace for %s: %w", id, err)
	}
	return data, nil
}

// PutReport persists a finished report atomically.
func (s *Store) PutReport(id string, rep *ion.Report) error {
	if err := validID(id); err != nil {
		return err
	}
	var b strings.Builder
	if err := rep.EncodeJSON(&b); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.dir, "reports", id+".json"), []byte(b.String()))
}

// Report reads back the report for a completed job.
func (s *Store) Report(id string) (*ion.Report, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(s.dir, "reports", id+".json"))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading report for %s: %w", id, err)
	}
	defer f.Close()
	rep, err := ion.DecodeJSON(f)
	if err != nil {
		return nil, fmt.Errorf("jobs: report for %s: %w", id, err)
	}
	return rep, nil
}

// PutTimeline persists the span timeline of a job's analysis run next
// to its report, atomically.
func (s *Store) PutTimeline(id string, tl obs.Timeline) error {
	if err := validID(id); err != nil {
		return err
	}
	data, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: marshaling timeline for %s: %w", id, err)
	}
	return writeAtomic(filepath.Join(s.dir, "reports", id+".trace.json"), data)
}

// Timeline reads back the raw timeline JSON for a job, for the HTTP
// layer to serve verbatim.
func (s *Store) Timeline(id string) ([]byte, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "reports", id+".trace.json"))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: reading timeline for %s: %w", id, err)
	}
	return data, nil
}

// writeAtomic writes data to path via a temp file + rename so readers
// never observe a partial record.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: writing %s: %w", path, err)
	}
	return nil
}

// validID guards file-name construction: ids are generated internally,
// but recovery reads names off disk and the HTTP layer passes ids from
// URLs, so reject anything that could escape the store layout.
func validID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("jobs: invalid job id %q", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return fmt.Errorf("jobs: invalid job id %q", id)
		}
	}
	return nil
}
