package jobs

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	mathrand "math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
	"ion/internal/quality"
	"ion/internal/semcache"
)

// Config assembles a Service.
type Config struct {
	// Dir is the data directory for the persistent store (required).
	Dir string
	// Client is the language-model backend analyses run against
	// (required).
	Client llm.Client
	// Framework optionally overrides the analysis pipeline; nil builds
	// a default ion.Framework over Client.
	Framework *ion.Framework
	// Workers is the worker-pool size; 0 or negative means the default
	// (2). A paused pool for tests is requested explicitly via Paused.
	Workers int
	// Paused starts the service with no workers: jobs queue and persist
	// but never run. Used by tests and by recovery drills.
	Paused bool
	// QueueDepth bounds queued-but-unstarted jobs; Submit returns
	// ErrQueueFull beyond it. 0 or negative means the default (16).
	QueueDepth int
	// JobTimeout bounds one analysis attempt; 0 means the default (5m).
	JobTimeout time.Duration
	// MaxAttempts bounds analysis attempts per job, counting the first;
	// 0 means the default (3).
	MaxAttempts int
	// RetryDelay is the base backoff before the second attempt, doubled
	// per retry with ±50% jitter; 0 means the default (500ms).
	RetryDelay time.Duration
	// MaxRetryDelay caps the backoff; 0 means the default (10s).
	MaxRetryDelay time.Duration
	// ParseWorkers bounds the shard count when parsing trace text in
	// parallel (both the whole-body and streaming paths); 0 or negative
	// means GOMAXPROCS.
	ParseWorkers int
	// StreamMaxBuffer bounds the total bytes buffered across all
	// in-flight streaming uploads; SubmitStream sheds load with
	// ErrStreamBusy beyond it. 0 means the default (256 MiB).
	StreamMaxBuffer int64
	// ExtractCacheBytes bounds the LRU cache of extraction outputs
	// keyed by trace content hash; a re-submitted or re-queued trace
	// whose extraction is cached skips parse+extract entirely. 0 means
	// the default (64 MiB); negative disables the cache.
	ExtractCacheBytes int64
	// SemCache, when non-nil, enables semantic reuse: after the
	// exact-hash dedup misses, a completed diagnosis whose counter
	// signature is similar enough to the new trace's is served
	// verbatim (above SemReuseThreshold) or injected into the LLM
	// prompts as retrieved context (above SemConditionThreshold).
	// Completed full runs are indexed back into the store.
	SemCache *semcache.Store
	// SemReuseThreshold is the cosine similarity at or above which a
	// neighbor's report is served verbatim; 0 means the default
	// (0.995). Set above 1 to disable the verbatim tier.
	SemReuseThreshold float64
	// SemConditionThreshold is the cosine similarity at or above which
	// a neighbor's conclusions condition the LLM prompts; 0 means the
	// default (0.90). Set above 1 to disable the conditioning tier.
	SemConditionThreshold float64
	// Quality, when non-nil, enables the diagnosis-quality observatory:
	// every successful diagnosis is scored against the deterministic
	// Drishti triggers (and iongen ground-truth labels when the trace
	// name identifies a generated workload), the scorecard is journaled
	// in this store, and the agreement/flip gauges are refreshed.
	Quality *quality.Store
	// ShadowSampleRate is the fraction of semcache-reused and
	// conditioned jobs whose diagnosis is re-run through full fan-out
	// in the background to measure verdict flips. 0 disables shadow
	// re-runs; values above 1 shadow everything.
	ShadowSampleRate float64
	// ShadowConcurrency bounds concurrent shadow re-runs; further
	// candidates are skipped, not queued. 0 means the default (1).
	ShadowConcurrency int
	// QualityMinSamples is the per-issue sample count below which the
	// ion_verdict_agreement_ratio gauge self-gates to 1.0 (same policy
	// as the semcache hit-ratio gauge), keeping the drift alert quiet
	// until there is enough traffic to judge. 0 means the default (20).
	QualityMinSamples int
	// Ledger, when non-nil, is the LLM audit ledger the service reads
	// for per-job cost attribution (Job.Cost) and cumulative LLM totals
	// in Stats. The ledger is written by the ledger.Wrap client, which
	// must wrap the same Client analyses run against.
	Ledger *ledger.Store
	// Obs receives the service's metrics: queue/worker gauges, outcome
	// counters, and per-stage pipeline latency histograms. nil uses a
	// private registry (instrumentation always runs, nothing is
	// exported). The gauges read the same fields Stats reports, so
	// /metrics and /api/stats cannot disagree.
	Obs *obs.Registry
	// OnTimeline, when set, receives every completed job's span timeline
	// (after it is persisted), with Timeline.Trace set to the job id.
	// The flight recorder's tail-sampler hangs off this hook. Called
	// from worker goroutines; must be cheap and concurrency-safe.
	OnTimeline func(obs.Timeline)
	// Logger receives structured job-lifecycle logs with job id, trace
	// hash, and attempt attributes. nil discards.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Paused {
		c.Workers = 0
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 500 * time.Millisecond
	}
	if c.MaxRetryDelay <= 0 {
		c.MaxRetryDelay = 10 * time.Second
	}
	if c.ParseWorkers <= 0 {
		c.ParseWorkers = runtime.GOMAXPROCS(0)
	}
	if c.StreamMaxBuffer == 0 {
		c.StreamMaxBuffer = defaultStreamMaxBuffer
	}
	if c.ExtractCacheBytes == 0 {
		c.ExtractCacheBytes = defaultExtractCacheBytes
	}
	if c.SemReuseThreshold == 0 {
		c.SemReuseThreshold = defaultSemReuseThreshold
	}
	if c.SemConditionThreshold == 0 {
		c.SemConditionThreshold = defaultSemConditionThreshold
	}
	if c.ShadowConcurrency <= 0 {
		c.ShadowConcurrency = 1
	}
	if c.QualityMinSamples <= 0 {
		c.QualityMinSamples = qualityMinSamples
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
}

// Service is the asynchronous analysis engine: a persistent job store,
// a bounded queue, and a pool of workers running the ion pipeline.
type Service struct {
	cfg   Config
	store *Store
	fw    *ion.Framework
	obs   *obs.Registry
	log   *slog.Logger
	cache *extractCache   // nil when disabled
	sem   *semcache.Store // nil when semantic reuse is disabled
	// ledger is the LLM audit store cost attribution reads from (nil
	// when no ledger is configured).
	ledger *ledger.Store
	// semSim observes the best-match cosine similarity of every
	// semantic lookup (nil when semantic reuse is disabled).
	semSim *obs.Histogram
	// qual persists per-job scorecards (nil when quality tracking is
	// disabled).
	qual *quality.Store

	baseCtx context.Context // canceled to abort in-flight analyses
	abort   context.CancelFunc
	stop    chan struct{} // closed to tell idle workers to exit
	queue   chan string   // job ids awaiting a worker
	wg      sync.WaitGroup

	// Shadow re-run machinery: a non-blocking semaphore bounds
	// concurrency, a dedicated context cancels in-flight shadows at
	// Close (they are best-effort), and the WaitGroup lets Close drain
	// them before the caller closes the stores they write to.
	shadowSem    chan struct{}
	shadowCtx    context.Context
	shadowCancel context.CancelFunc
	shadowWG     sync.WaitGroup
	shadowSkips  *obs.Counter

	// Parse/stream instrumentation (see registerMetrics).
	parseShards    *obs.Counter
	parseMBps      *obs.Gauge
	streamSubs     *obs.Counter
	streamBytes    *obs.Counter
	streamStalls   *obs.Counter
	streamRejected *obs.Counter
	streamInflight atomic.Int64 // bytes reserved by in-flight streams

	mu     sync.Mutex
	jobs   map[string]*Job
	done   map[string]chan struct{} // closed when the job reaches a terminal state
	byHash map[string]string        // trace hash → job id (dedup cache)
	closed bool
	busy   int

	// preParsed hands logs parsed during streamed ingestion to the
	// worker that runs the job, so the parse that overlapped the upload
	// is not repeated. Bounded FIFO keyed by trace hash.
	preParsed      map[string]*darshan.Log
	preParsedOrder []string

	submitted, completed, failed, retried, cacheHits, recovered int64
	semHits, semConditioned, semAdopted                         int64
}

// defaultStreamMaxBuffer bounds in-flight streaming-upload memory.
const defaultStreamMaxBuffer = 256 << 20

// maxPreParsed bounds how many streamed parses wait for their worker.
const maxPreParsed = 8

// Open starts a Service over cfg.Dir, recovering any jobs a previous
// process left queued or in flight (they restart as queued).
func Open(cfg Config) (*Service, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("jobs: Config.Client is required")
	}
	cfg.applyDefaults()
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	fw := cfg.Framework
	if fw == nil {
		fw, err = ion.New(ion.Config{Client: cfg.Client})
		if err != nil {
			return nil, err
		}
	}

	existing, err := store.Jobs()
	if err != nil {
		return nil, err
	}
	var pending []*Job
	for _, j := range existing {
		if !j.State.Terminal() {
			pending = append(pending, j)
		}
	}
	// Oldest first, so recovered work keeps its submission order.
	sort.Slice(pending, func(i, k int) bool {
		return pending[i].SubmittedAt.Before(pending[k].SubmittedAt)
	})

	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		store:   store,
		fw:      fw,
		obs:     cfg.Obs,
		log:     cfg.Logger,
		cache:   newExtractCache(cfg.ExtractCacheBytes),
		sem:     cfg.SemCache,
		ledger:  cfg.Ledger,
		qual:    cfg.Quality,
		baseCtx: ctx,
		abort:   cancel,
		stop:    make(chan struct{}),
		// Recovered jobs must all fit alongside a full queue.
		queue:     make(chan string, cfg.QueueDepth+len(pending)),
		jobs:      make(map[string]*Job, len(existing)),
		done:      make(map[string]chan struct{}, len(existing)),
		byHash:    make(map[string]string, len(existing)),
		preParsed: make(map[string]*darshan.Log),
	}
	s.shadowCtx, s.shadowCancel = context.WithCancel(ctx)
	s.shadowSem = make(chan struct{}, cfg.ShadowConcurrency)
	for _, j := range existing {
		s.jobs[j.ID] = j
		ch := make(chan struct{})
		if j.State.Terminal() {
			close(ch)
		}
		s.done[j.ID] = ch
		// Completed jobs seed the dedup cache; non-terminal jobs join it
		// too so a resubmission coalesces onto the recovered job.
		if j.State != StateFailed && j.Hash != "" {
			s.byHash[j.Hash] = j.ID
		}
	}
	for _, j := range pending {
		j.State = StateQueued
		j.Error = ""
		if err := store.PutJob(j); err != nil {
			cancel()
			return nil, err
		}
		s.queue <- j.ID
		s.recovered++
	}

	if s.recovered > 0 {
		s.log.Info("recovered interrupted jobs", "count", s.recovered)
	}
	s.registerMetrics()
	// The replayed scorecard journal already carries agreement and flip
	// history; publish it so the gauges are correct from the first
	// scrape after a restart.
	s.refreshQualityMetrics()
	s.log.Info("job service open", "dir", cfg.Dir, "workers", cfg.Workers,
		"queue_capacity", cfg.QueueDepth, "jobs", len(existing))

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics exposes the service state through the registry as
// callbacks, so /metrics always reflects the same fields Stats returns.
// The callbacks run at exposition time and take s.mu via Stats; nothing
// in the service calls the registry while holding s.mu, so there is no
// lock cycle.
func (s *Service) registerMetrics() {
	stat := func(get func(Stats) float64) func() float64 {
		return func() float64 { return get(s.Stats()) }
	}
	s.obs.GaugeFunc("ion_jobs_queue_depth", "Jobs queued but not yet running.",
		stat(func(st Stats) float64 { return float64(st.QueueDepth) }))
	s.obs.GaugeFunc("ion_jobs_queue_capacity", "Queue bound beyond which submissions shed load.",
		stat(func(st Stats) float64 { return float64(st.QueueCapacity) }))
	s.obs.GaugeFunc("ion_jobs_busy_workers", "Workers currently running a job.",
		stat(func(st Stats) float64 { return float64(st.Busy) }))
	s.obs.GaugeFunc("ion_jobs_workers", "Configured worker-pool size.",
		stat(func(st Stats) float64 { return float64(st.Workers) }))
	s.obs.CounterFunc("ion_jobs_submitted_total", "Accepted submissions, dedup hits included.",
		stat(func(st Stats) float64 { return float64(st.Submitted) }))
	s.obs.CounterFunc("ion_jobs_completed_total", "Jobs finished successfully.",
		stat(func(st Stats) float64 { return float64(st.Completed) }))
	s.obs.CounterFunc("ion_jobs_failed_total", "Jobs that exhausted their attempts.",
		stat(func(st Stats) float64 { return float64(st.Failed) }))
	s.obs.CounterFunc("ion_jobs_retries_total", "Analysis retry attempts.",
		stat(func(st Stats) float64 { return float64(st.Retried) }))
	s.obs.CounterFunc("ion_jobs_cache_hits_total", "Submissions answered from the dedup cache.",
		stat(func(st Stats) float64 { return float64(st.CacheHits) }))
	s.obs.CounterFunc("ion_jobs_recovered_total", "Jobs re-queued from disk at startup.",
		stat(func(st Stats) float64 { return float64(st.Recovered) }))
	// Derived SLO gauges: exported as ready-made ratios so the alert
	// rules and the dashboard need no division of their own, and every
	// consumer computes them from the same Stats methods.
	s.obs.GaugeFunc("ion_jobs_failure_ratio", "Failed / (Completed+Failed): fraction of finished jobs that failed.",
		stat(func(st Stats) float64 { return st.FailureRatio() }))
	s.obs.GaugeFunc("ion_jobs_utilization", "Busy / Workers: fraction of the worker pool in use.",
		stat(func(st Stats) float64 { return st.Utilization() }))
	s.obs.GaugeFunc("ion_jobs_queue_utilization", "QueueDepth / QueueCapacity: how close submissions are to shedding load.",
		stat(func(st Stats) float64 { return st.QueueUtilization() }))
	s.obs.GaugeFunc("ion_extract_cache_hit_ratio", "Extract-cache hits / (hits+misses) since start.",
		func() float64 {
			h, m := float64(s.cache.hitCount()), float64(s.cache.missCount())
			if h+m == 0 {
				return 0
			}
			return h / (h + m)
		})
	s.obs.CounterFunc("ion_extract_cache_hits_total", "Job runs that skipped parse+extract via the extract cache.",
		func() float64 { return float64(s.cache.hitCount()) })
	s.obs.CounterFunc("ion_extract_cache_misses_total", "Job runs that had to parse and extract their trace.",
		func() float64 { return float64(s.cache.missCount()) })
	s.obs.GaugeFunc("ion_extract_cache_bytes", "Estimated bytes retained by the extract cache.",
		func() float64 { return float64(s.cache.bytes()) })
	s.obs.GaugeFunc("ion_extract_cache_entries", "Extraction outputs currently cached.",
		func() float64 { return float64(s.cache.len()) })

	s.parseShards = s.obs.Counter("ion_parse_shards_total",
		"Trace-parse shards dispatched to the parallel parser.")
	s.parseMBps = s.obs.Gauge("ion_parse_mb_per_s",
		"Throughput of the most recent trace parse, in MB/s.")
	s.obs.GaugeFunc("ion_parse_workers", "Configured parse-shard concurrency bound.",
		func() float64 { return float64(s.cfg.ParseWorkers) })
	s.streamSubs = s.obs.Counter("ion_stream_submissions_total",
		"Streaming uploads accepted for incremental parsing.")
	s.streamBytes = s.obs.Counter("ion_stream_bytes_total",
		"Body bytes received over the streaming ingestion path.")
	s.streamStalls = s.obs.Counter("ion_stream_backpressure_total",
		"Times a streaming upload blocked waiting for a parse worker.")
	s.streamRejected = s.obs.Counter("ion_stream_rejected_total",
		"Streaming uploads shed because the buffer budget was exhausted.")
	s.obs.GaugeFunc("ion_stream_inflight_bytes", "Bytes currently reserved by in-flight streaming uploads.",
		func() float64 { return float64(s.streamInflight.Load()) })

	if s.sem != nil {
		s.obs.CounterFunc("ion_semcache_hits_total", "Jobs served verbatim from the semantic cache (zero LLM calls).",
			func() float64 { return float64(s.sem.Stats().Hits) })
		s.obs.CounterFunc("ion_semcache_conditioned_total", "Jobs whose prompts were conditioned on a similar prior diagnosis.",
			func() float64 { return float64(s.sem.Stats().Conditioned) })
		s.obs.CounterFunc("ion_semcache_misses_total", "Jobs that found no usable semantic neighbor and ran full fan-out.",
			func() float64 { return float64(s.sem.Stats().Misses) })
		s.obs.GaugeFunc("ion_semcache_entries", "Diagnoses currently indexed in the semantic cache.",
			func() float64 { return float64(s.sem.Len()) })
		s.obs.GaugeFunc("ion_semcache_bytes", "Estimated bytes retained by the semantic cache.",
			func() float64 { return float64(s.sem.Bytes()) })
		// The ratio self-gates on traffic: below semHitRatioMinLookups
		// policy outcomes it reports 1.0, so the collapse alert (the
		// rule grammar has no conjunctions to express "and traffic is
		// high") stays quiet on idle or freshly started services.
		s.obs.GaugeFunc("ion_semcache_hit_ratio", "Semantic hits+conditioned over lookups; 1.0 until enough traffic to judge.",
			func() float64 {
				st := s.sem.Stats()
				total := st.Hits + st.Conditioned + st.Misses
				if total < semHitRatioMinLookups {
					return 1
				}
				return float64(st.Hits+st.Conditioned) / float64(total)
			})
		s.semSim = s.obs.Histogram("ion_semcache_similarity",
			"Best-match cosine similarity per semantic lookup.",
			[]float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 0.99, 0.995, 1})
		s.obs.CounterFunc("ion_semcache_adopted_verdicts_total",
			"Per-issue verdicts conditioned runs adopted from their neighbor without fresh LLM calls.",
			stat(func(st Stats) float64 { return float64(st.AdoptedVerdicts) }))
	}

	if s.qual != nil {
		// The labeled gauges are created eagerly for every taxonomy
		// issue and reuse mode (GaugeFunc carries no labels), so the
		// families appear in /metrics before the first diagnosis;
		// refreshQualityMetrics re-publishes them after every scorecard
		// write. Below QualityMinSamples per-issue comparisons the
		// agreement gauge self-gates to 1.0, like the semcache
		// hit-ratio gauge, so VerdictDriftHigh stays quiet on idle or
		// freshly started services.
		for _, id := range issue.All {
			s.obs.Gauge("ion_verdict_agreement_ratio",
				"LLM/Drishti verdict agreement per issue; 1.0 until enough samples to judge.",
				obs.L("issue", string(id))).Set(1)
		}
		for _, m := range []quality.Mode{quality.ModeVerbatim, quality.ModeConditioned} {
			s.obs.Gauge("ion_semcache_flip_ratio",
				"Fraction of shadow-rerun reused diagnoses whose verdicts flipped, per reuse mode.",
				obs.L("mode", string(m))).Set(0)
		}
		s.shadowSkips = s.obs.Counter("ion_shadow_skips_total",
			"Shadow re-run candidates skipped because of queue pressure or the concurrency bound.")
		s.obs.GaugeFunc("ion_quality_scorecards", "Scorecards currently retained by the quality store.",
			func() float64 { return float64(s.qual.Len()) })
	}
}

// refreshQualityMetrics republishes the aggregate quality gauges from
// the scorecard store. Called after every scorecard write and once at
// Open (so replayed history survives restarts).
func (s *Service) refreshQualityMetrics() {
	if s.qual == nil {
		return
	}
	ag := s.qual.IssueAgreement()
	for _, id := range issue.All {
		v := 1.0
		if a := ag[id]; a.Total >= s.cfg.QualityMinSamples {
			v = a.Ratio()
		}
		s.obs.Gauge("ion_verdict_agreement_ratio",
			"LLM/Drishti verdict agreement per issue; 1.0 until enough samples to judge.",
			obs.L("issue", string(id))).Set(v)
	}
	fs := s.qual.FlipStats()
	for _, m := range []quality.Mode{quality.ModeVerbatim, quality.ModeConditioned} {
		s.obs.Gauge("ion_semcache_flip_ratio",
			"Fraction of shadow-rerun reused diagnoses whose verdicts flipped, per reuse mode.",
			obs.L("mode", string(m))).Set(fs[m].Ratio())
	}
}

// Store exposes the underlying store (read-only use by the web layer).
func (s *Service) Store() *Store { return s.store }

// Draining reports whether Close has begun: the service no longer
// accepts submissions and is waiting for in-flight work. The readiness
// endpoint turns this into a 503 so load balancers stop routing here.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Submit accepts a Darshan trace (binary container or darshan-parser
// text) for analysis. name is a display label. The returned bool is
// true when the submission was answered from the dedup cache — an
// identical trace was already submitted — in which case the returned
// job is the cached one. Returns ErrQueueFull when the queue is at
// capacity, ErrBadTrace when the bytes do not parse, ErrClosed after
// shutdown has begun.
func (s *Service) Submit(name string, trace []byte) (Job, bool, error) {
	if _, err := s.parseTrace(context.Background(), trace); err != nil {
		return Job{}, false, err
	}
	sum := sha256.Sum256(trace)
	hash := hex.EncodeToString(sum[:])
	ingest := &Ingest{Mode: IngestBody, Bytes: int64(len(trace))}
	return s.admit(name, hash, trace, ingest)
}

// admit runs the post-validation half of a submission — dedup lookup,
// queue admission, persistence, enqueue — shared by the whole-body and
// streaming paths. hash is the hex SHA-256 of trace.
func (s *Service) admit(name, hash string, trace []byte, ingest *Ingest) (Job, bool, error) {
	if name == "" {
		name = "trace-" + hash[:8]
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, false, ErrClosed
	}
	if id, ok := s.byHash[hash]; ok {
		if j := s.jobs[id]; j != nil && j.State != StateFailed {
			s.submitted++
			s.cacheHits++
			s.log.Info("submission answered from dedup cache",
				"job", id, "trace", name, "hash", hash[:12])
			return *j, true, nil
		}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		return Job{}, false, ErrQueueFull
	}
	j := &Job{
		ID:          newID(),
		Trace:       name,
		Hash:        hash,
		State:       StateQueued,
		Ingest:      ingest,
		SubmittedAt: time.Now().UTC(),
	}
	if err := s.store.PutTrace(j.ID, trace); err != nil {
		return Job{}, false, err
	}
	if err := s.store.PutJob(j); err != nil {
		return Job{}, false, err
	}
	s.jobs[j.ID] = j
	s.done[j.ID] = make(chan struct{})
	s.byHash[hash] = j.ID
	s.submitted++
	select {
	case s.queue <- j.ID:
	default:
		// Unreachable: the depth check above holds s.mu and workers only
		// drain the channel, but fail closed rather than block.
		delete(s.jobs, j.ID)
		delete(s.done, j.ID)
		delete(s.byHash, hash)
		s.submitted--
		return Job{}, false, ErrQueueFull
	}
	s.log.Info("job submitted", "job", j.ID, "trace", name, "hash", hash[:12],
		"queue_depth", len(s.queue))
	return *j, false, nil
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return *j, nil
}

// List returns snapshots of all jobs, newest submission first.
func (s *Service) List() []Job {
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].SubmittedAt.Equal(out[k].SubmittedAt) {
			return out[i].SubmittedAt.After(out[k].SubmittedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Report returns the finished report for a done job. For a dedup alias
// the id is the cached job's id, so callers always read through Get.
func (s *Service) Report(id string) (*ion.Report, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	if !j.State.Succeeded() {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotDone, id, j.State)
	}
	return s.store.Report(id)
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// then returns the job snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	ch, ok := s.done[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-ctx.Done():
		return Job{}, ctx.Err()
	case <-ch:
	}
	return s.Get(id)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Workers:         s.cfg.Workers,
		Busy:            s.busy,
		QueueDepth:      len(s.queue),
		QueueCapacity:   s.cfg.QueueDepth,
		Jobs:            len(s.jobs),
		Submitted:       s.submitted,
		Completed:       s.completed,
		Failed:          s.failed,
		Retried:         s.retried,
		CacheHits:       s.cacheHits,
		Recovered:       s.recovered,
		SemanticHits:    s.semHits,
		Conditioned:     s.semConditioned,
		AdoptedVerdicts: s.semAdopted,
	}
	if tot := s.ledger.Totals(); tot.Calls > 0 {
		st.LLMCalls = tot.Calls
		st.LLMTokensIn = tot.TokensIn
		st.LLMTokensOut = tot.TokensOut
		st.LLMCostUSD = tot.CostUSD
	}
	return st
}

// SemCache exposes the semantic cache (nil when disabled); read-only
// use by the web layer.
func (s *Service) SemCache() *semcache.Store { return s.sem }

// Ledger exposes the LLM audit ledger (nil when disabled); read-only
// use by the web layer.
func (s *Service) Ledger() *ledger.Store { return s.ledger }

// Quality exposes the scorecard store (nil when disabled); read-only
// use by the web layer.
func (s *Service) Quality() *quality.Store { return s.qual }

// SemThresholds returns the reuse and conditioning similarity
// thresholds in effect.
func (s *Service) SemThresholds() (reuse, condition float64) {
	return s.cfg.SemReuseThreshold, s.cfg.SemConditionThreshold
}

// Close shuts the service down gracefully: no new submissions are
// accepted, idle workers exit, and running analyses are drained. Jobs
// still queued stay persisted as queued and are recovered by the next
// Open. If ctx expires before the drain completes, in-flight analyses
// are aborted (their jobs retry on the next start).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.shadowWG.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.log.Info("job service closing, draining workers")
	close(s.stop)
	// Shadow re-runs are best-effort: cancel them outright rather than
	// holding shutdown for a background fan-out, then wait for the
	// goroutines so nothing writes to the stores after Close returns.
	s.shadowCancel()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.shadowWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.abort()
		<-drained
		return ctx.Err()
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		// A closed stop channel wins over more queued work, so shutdown
		// drains only the jobs already running.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case id := <-s.queue:
			s.run(id)
		}
	}
}

// run executes one job: parse the stored trace, extract its tables
// (or reuse the extract cache keyed by trace hash, skipping both
// stages), then run the analysis with a per-attempt timeout, retrying
// transient failures with backoff + jitter. The whole execution is
// traced; the span timeline is persisted next to the report (win or
// lose) and folded into the stage-latency histogram.
func (s *Service) run(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State.Terminal() {
		s.mu.Unlock()
		return
	}
	hash := j.Hash
	s.busy++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}()

	tracer := obs.NewTracer()
	logger := s.log.With("job", id)
	ctx := obs.WithLogger(obs.WithTracer(s.baseCtx, tracer), logger)
	// Stamp the analysis context so every LLM call made on this job's
	// behalf is attributed to it in the audit ledger.
	ctx = llm.WithJobID(ctx, id)
	ctx, root := obs.StartSpan(ctx, "job", obs.L("job", id))

	if out, ok := s.cache.get(hash); ok {
		root.Annotate("extract_cache", "hit")
		logger.Info("extract cache hit, skipping parse+extract", "hash", hash[:12])
		state, cause := s.diagnose(ctx, id, hash, out)
		s.settle(id, state, cause, tracer, root)
		return
	}

	trace, err := s.store.Trace(id)
	if err == nil {
		var log *darshan.Log
		if pre := s.takePreParsed(hash); pre != nil {
			// Streamed ingestion already parsed this trace while the
			// body was uploading; don't repeat the work.
			root.Annotate("parse", "streamed")
			logger.Info("using parse from streamed ingestion", "hash", hash[:12])
			log = pre
		} else {
			pctx, span := obs.StartSpan(ctx, "parse")
			log, err = s.parseTrace(pctx, trace)
			span.SetError(err)
			span.End()
		}
		if err == nil {
			ectx, espan := obs.StartSpan(ctx, "extract")
			out, eerr := extractor.ExtractToDirContext(ectx, log, s.store.WorkDir(id))
			espan.SetError(eerr)
			espan.End()
			if eerr == nil {
				s.cache.put(hash, out)
				state, cause := s.diagnose(ctx, id, hash, out)
				s.settle(id, state, cause, tracer, root)
				return
			}
			err = eerr
		}
	}
	logger.Error("job unrunnable", "err", err)
	s.settle(id, StateFailed, err, tracer, root)
}

// settle persists the span timeline and then applies the terminal
// state, in that order: the moment a watcher observes a terminal job,
// its trace is already readable. An empty state means the job was
// parked (e.g. re-queued during shutdown) and there is nothing to
// finish.
func (s *Service) settle(id string, state State, cause error, tracer *obs.Tracer, root *obs.Span) {
	s.saveTimeline(id, tracer, root)
	if state != "" {
		s.finish(id, state, cause)
	}
}

// saveTimeline closes the root span, persists the job's span timeline,
// feeds the stage-latency histogram (each observation carrying the job
// id as its exemplar), and offers the timeline to any OnTimeline hook.
func (s *Service) saveTimeline(id string, tracer *obs.Tracer, root *obs.Span) {
	root.End()
	tl := tracer.Timeline()
	tl.Trace = id
	if err := s.store.PutTimeline(id, tl); err != nil {
		s.log.Warn("persisting span timeline", "job", id, "err", err)
	}
	obs.ObserveStages(s.obs, tl)
	if s.cfg.OnTimeline != nil {
		s.cfg.OnTimeline(tl)
	}
}

// attempts runs the analysis over already-extracted tables. Extraction
// happens once in run (or not at all on a cache hit); retries repeat
// only the analysis stage. It returns the terminal state to apply (and
// the report on success), or an empty state when the job was parked as
// queued for recovery.
func (s *Service) attempts(ctx context.Context, id string, out *extractor.Output, opts ion.AnalyzeOptions) (State, *ion.Report, error) {
	logger := obs.LoggerFrom(ctx)
	for attempt := 1; ; attempt++ {
		s.transition(id, StateRunning, attempt, "")
		logger.Info("analysis attempt starting", "attempt", attempt)
		actx, span := obs.StartSpan(ctx, "attempt", obs.L("n", strconv.Itoa(attempt)))
		actx = llm.WithAttempt(actx, attempt)
		tctx, cancel := context.WithTimeout(actx, s.cfg.JobTimeout)
		name := s.snapshotName(id)
		start := time.Now()
		rep, err := s.fw.AnalyzeExtractedOpts(tctx, out, name, opts)
		cancel()
		if err == nil {
			err = s.store.PutReport(id, rep)
		}
		span.SetError(err)
		span.End()
		if err == nil {
			logger.Info("job done", "attempt", attempt,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
			return StateDone, rep, nil
		}
		if !s.retryable(err, attempt) {
			logger.Error("job failed", "attempt", attempt, "err", err)
			return StateFailed, nil, err
		}
		s.mu.Lock()
		s.retried++
		s.mu.Unlock()
		logger.Warn("attempt failed, retrying", "attempt", attempt, "err", err)
		s.transition(id, StateRetrying, attempt, err.Error())
		if !s.sleep(backoff(s.cfg.RetryDelay, s.cfg.MaxRetryDelay, attempt)) {
			// Shutdown interrupted the backoff: park the job as queued so
			// the next Open recovers it.
			logger.Info("shutdown during backoff, parking job as queued", "attempt", attempt)
			s.transition(id, StateQueued, attempt, err.Error())
			return "", nil, nil
		}
	}
}

// retryable classifies a failure: shutdown cancellation is final,
// everything else (LLM hiccups, per-attempt timeouts) is transient
// until the attempt budget runs out.
func (s *Service) retryable(err error, attempt int) bool {
	if attempt >= s.cfg.MaxAttempts {
		return false
	}
	if s.baseCtx.Err() != nil || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// sleep waits d, returning false if shutdown interrupts the wait.
func (s *Service) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	case <-s.baseCtx.Done():
		return false
	}
}

func (s *Service) snapshotName(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.Trace
	}
	return id
}

// transition moves a job to a non-terminal state and persists it.
func (s *Service) transition(id string, state State, attempt int, errMsg string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.State = state
	j.Attempts = attempt
	j.Error = errMsg
	if state == StateRunning && j.StartedAt.IsZero() {
		j.StartedAt = time.Now().UTC()
	}
	snapshot := *j
	s.mu.Unlock()
	if err := s.store.PutJob(&snapshot); err != nil {
		// The in-memory state is authoritative while the process lives;
		// a persistence miss only degrades crash recovery. Say so.
		s.log.Warn("persisting job transition", "job", id, "state", state, "err", err)
	}
}

// finish moves a job to a terminal state, persists it, bumps the
// outcome counters, and releases waiters.
func (s *Service) finish(id string, state State, cause error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.State = state
	j.FinishedAt = time.Now().UTC()
	if cause != nil {
		j.Error = cause.Error()
	} else {
		j.Error = ""
	}
	switch state {
	case StateDone, StateReused:
		s.completed++
	case StateFailed:
		s.failed++
		// A failed job no longer answers dedup lookups.
		if s.byHash[j.Hash] == id {
			delete(s.byHash, j.Hash)
		}
	}
	ch := s.done[id]
	snapshot := *j
	s.mu.Unlock()
	if err := s.store.PutJob(&snapshot); err != nil {
		s.log.Warn("persisting job outcome", "job", id, "state", state, "err", err)
	}
	if ch != nil {
		close(ch)
	}
}

// backoff computes the exponential delay before retry `attempt`+1 with
// ±50% jitter, capped at max.
func backoff(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter in [d/2, 3d/2) de-synchronizes retry storms.
	return d/2 + time.Duration(mathrand.Int63n(int64(d)+1))
}

// ParseTrace decodes trace bytes as a Darshan log, accepting the binary
// container format and falling back to darshan-parser text (parsed in
// shards up to GOMAXPROCS wide).
func ParseTrace(data []byte) (*darshan.Log, error) {
	return parseTraceOpts(data, darshan.ParallelOptions{})
}

// parseTrace is ParseTrace bounded by the configured shard concurrency,
// with per-shard spans and throughput metrics.
func (s *Service) parseTrace(ctx context.Context, data []byte) (*darshan.Log, error) {
	opts := darshan.ParallelOptions{
		Workers: s.cfg.ParseWorkers,
		OnShard: s.shardHook(ctx),
	}
	start := time.Now()
	log, err := parseTraceOpts(data, opts)
	if err == nil {
		s.recordParseRate(int64(len(data)), time.Since(start))
	}
	return log, err
}

// shardHook returns a ParallelOptions.OnShard callback that opens one
// span per parse shard under ctx and counts shards. Safe under
// concurrent shard starts; no-op spans when ctx has no tracer.
func (s *Service) shardHook(ctx context.Context) func(int, []byte) func(error) {
	return func(shard int, chunk []byte) func(error) {
		s.parseShards.Inc()
		_, span := obs.StartSpan(ctx, "parse_shard",
			obs.L("shard", strconv.Itoa(shard)),
			obs.L("bytes", strconv.Itoa(len(chunk))))
		return func(err error) {
			span.SetError(err)
			span.End()
		}
	}
}

// recordParseRate publishes the most recent parse throughput.
func (s *Service) recordParseRate(bytes int64, elapsed time.Duration) {
	if secs := elapsed.Seconds(); secs > 0 {
		s.parseMBps.Set(float64(bytes) / 1e6 / secs)
	}
}

// parseTraceOpts decodes trace bytes as a Darshan log, accepting the
// binary container format and falling back to sharded text parsing.
func parseTraceOpts(data []byte, opts darshan.ParallelOptions) (*darshan.Log, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty body", ErrBadTrace)
	}
	log, binErr := darshan.ReadBinary(bytes.NewReader(data))
	if binErr != nil {
		var txtErr error
		log, txtErr = darshan.ParseTextParallelOpts(data, opts)
		if txtErr != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, txtErr)
		}
	}
	if len(log.Modules) == 0 && len(log.DXT) == 0 {
		return nil, fmt.Errorf("%w: no module records", ErrBadTrace)
	}
	return log, nil
}

// putPreParsed stores a streamed upload's parsed log for the worker
// that will run its job, bounded FIFO so abandoned entries cannot
// accumulate. Caller must hold s.mu.
func (s *Service) putPreParsedLocked(hash string, log *darshan.Log) {
	if _, ok := s.preParsed[hash]; !ok {
		s.preParsedOrder = append(s.preParsedOrder, hash)
	}
	s.preParsed[hash] = log
	for len(s.preParsedOrder) > maxPreParsed {
		evict := s.preParsedOrder[0]
		s.preParsedOrder = s.preParsedOrder[1:]
		delete(s.preParsed, evict)
	}
}

// takePreParsed removes and returns the pre-parsed log for hash, if a
// streamed upload left one.
func (s *Service) takePreParsed(hash string) *darshan.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.preParsed[hash]
	if !ok {
		return nil
	}
	delete(s.preParsed, hash)
	for i, h := range s.preParsedOrder {
		if h == hash {
			s.preParsedOrder = append(s.preParsedOrder[:i], s.preParsedOrder[i+1:]...)
			break
		}
	}
	return log
}

// newID returns a fresh job id: "j-" + 12 random hex chars.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than panicking the service.
		return fmt.Sprintf("j-%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j-" + hex.EncodeToString(b[:])
}
