package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"ion/internal/darshan"
)

// SubmitStream accepts a Darshan trace as a byte stream (typically a
// chunked-transfer POST body) and parses it incrementally while it
// uploads: completed segments are cut at line boundaries and handed to
// the parse pool, so by the time the last byte arrives most of the
// trace is already parsed, and the worker running the job skips the
// parse stage entirely.
//
// The content hash is computed incrementally over the same bytes, so
// dedup and semantic-cache keying behave exactly as with Submit.
// Returns ErrStreamBusy when the service-wide streaming buffer budget
// (Config.StreamMaxBuffer) is exhausted — the HTTP layer maps it to
// 429 + Retry-After — and otherwise the same results and errors as
// Submit.
func (s *Service) SubmitStream(name string, r io.Reader) (Job, bool, error) {
	if s.Draining() {
		return Job{}, false, ErrClosed
	}
	s.streamSubs.Inc()

	sp := darshan.NewStreamParser(darshan.StreamOptions{
		Workers:        s.cfg.ParseWorkers,
		OnShard:        s.shardHook(context.Background()),
		OnBackpressure: func() { s.streamStalls.Inc() },
	})
	hasher := sha256.New()
	var reserved int64
	defer func() {
		if reserved > 0 {
			s.streamInflight.Add(-reserved)
		}
	}()

	buf := make([]byte, 64<<10)
	start := time.Now()
	var readErr error
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if !s.reserveStream(int64(n)) {
				s.streamRejected.Inc()
				sp.Finish() // drain the pool; the body is abandoned
				s.log.Warn("streaming upload shed: buffer budget exhausted",
					"trace", name, "inflight_bytes", s.streamInflight.Load())
				return Job{}, false, ErrStreamBusy
			}
			reserved += int64(n)
			s.streamBytes.Add(float64(n))
			hasher.Write(buf[:n])
			if _, werr := sp.Write(buf[:n]); werr != nil {
				// A shard already failed; stop uploading. Finish below
				// reports the canonical positioned error.
				break
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
	}

	log, data, perr := sp.Finish()
	if perr == nil && readErr == nil {
		// Upload and parse overlapped, so this is end-to-end ingest
		// throughput: bytes from first read to merged log.
		s.recordParseRate(int64(len(data)), time.Since(start))
	}
	if readErr != nil {
		return Job{}, false, fmt.Errorf("jobs: reading stream: %w", readErr)
	}
	if len(data) == 0 {
		return Job{}, false, fmt.Errorf("%w: empty body", ErrBadTrace)
	}
	if perr != nil {
		// Not darshan-parser text; a streamed binary container still
		// works through the buffered decoder.
		blog, berr := darshan.ReadBinary(bytes.NewReader(data))
		if berr != nil {
			return Job{}, false, fmt.Errorf("%w: %v", ErrBadTrace, perr)
		}
		log = blog
	}
	if len(log.Modules) == 0 && len(log.DXT) == 0 {
		return Job{}, false, fmt.Errorf("%w: no module records", ErrBadTrace)
	}

	hash := hex.EncodeToString(hasher.Sum(nil))
	ingest := &Ingest{
		Mode:            IngestStream,
		Bytes:           int64(len(data)),
		Shards:          sp.Shards(),
		ParseOverlapped: sp.EarlyShards() > 0,
	}
	// Park the parsed log for the worker before the job becomes
	// runnable, so the overlapped parse is never repeated.
	s.mu.Lock()
	s.putPreParsedLocked(hash, log)
	s.mu.Unlock()
	job, dedup, err := s.admit(name, hash, data, ingest)
	if err != nil || dedup {
		s.takePreParsed(hash)
	}
	if err == nil && !dedup {
		s.log.Info("streamed submission parsed during upload",
			"job", job.ID, "shards", sp.Shards(), "early_shards", sp.EarlyShards(),
			"bytes", len(data))
	}
	return job, dedup, err
}

// reserveStream takes n bytes from the streaming buffer budget,
// refusing when the budget would be exceeded. A negative budget
// disables the bound.
func (s *Service) reserveStream(n int64) bool {
	if s.cfg.StreamMaxBuffer < 0 {
		return true
	}
	for {
		cur := s.streamInflight.Load()
		if cur+n > s.cfg.StreamMaxBuffer {
			return false
		}
		if s.streamInflight.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}
