package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
	"ion/internal/quality"
	"ion/internal/rag"
	"ion/internal/semcache"
)

// Reuse-policy defaults. The verbatim tier tolerates only quantization
// jitter around an essentially identical signature; the conditioning
// band admits the same workload at a moderately different shape.
const (
	defaultSemReuseThreshold     = 0.995
	defaultSemConditionThreshold = 0.90
	// semHitRatioMinLookups is the traffic gate under which the
	// ion_semcache_hit_ratio gauge reports 1.0 so the collapse alert
	// stays quiet while there is too little traffic to judge.
	semHitRatioMinLookups = 20
)

// diagnose applies the semantic reuse ladder to one job and returns
// the terminal state to settle:
//
//  1. similarity ≥ SemReuseThreshold → serve the neighbor's report
//     verbatim (StateReused, zero LLM calls);
//  2. similarity ≥ SemConditionThreshold → run the analysis with the
//     neighbor's conclusions as retrieved context and its not-detected
//     verdicts adopted (fewer LLM calls);
//  3. otherwise → full fan-out.
//
// Completed runs (full or conditioned) are indexed back into the
// store; verbatim hits are not re-indexed — their signature would
// duplicate the neighbor's neighborhood without adding information.
// Exact-hash dedup has already happened at Submit, so everything here
// is a genuinely new trace.
func (s *Service) diagnose(ctx context.Context, id, hash string, out *extractor.Output) (State, error) {
	if s.sem == nil {
		state, rep, cause := s.attempts(ctx, id, out, ion.AnalyzeOptions{})
		s.attachCost(id, 0, false)
		if state == StateDone && rep != nil {
			s.observeQuality(ctx, id, hash, out, rep, quality.ModeFull)
		}
		return state, cause
	}
	logger := obs.LoggerFrom(ctx)
	sig := semcache.Extract(out)
	_, span := obs.StartSpan(ctx, "semcache_lookup")
	match, ok := s.sem.Lookup(sig)
	span.End()
	if ok && s.semSim != nil {
		s.semSim.Observe(match.Similarity)
	}

	if ok && match.Entry.JobID != id && match.Similarity >= s.cfg.SemReuseThreshold {
		if rep, err := s.serveFromNeighbor(id, match); err == nil {
			logger.Info("semantic hit: serving prior diagnosis verbatim",
				"neighbor", match.Entry.JobID, "similarity", match.Similarity)
			s.sem.Note(semcache.OutcomeHit)
			s.mu.Lock()
			s.semHits++
			s.mu.Unlock()
			s.attachCost(id, 0, true)
			s.observeQuality(ctx, id, hash, out, rep, quality.ModeVerbatim)
			s.maybeShadow(id, out, rep, quality.ModeVerbatim, match.Deltas)
			return StateReused, nil
		} else {
			logger.Warn("semantic hit unusable, falling back",
				"neighbor", match.Entry.JobID, "err", err)
		}
	}

	opts := ion.AnalyzeOptions{}
	conditioned := false
	if ok && match.Entry.JobID != id && match.Similarity >= s.cfg.SemConditionThreshold {
		if o, err := s.conditionOn(match); err == nil {
			opts = o
			conditioned = true
			logger.Info("conditioning analysis on similar prior diagnosis",
				"neighbor", match.Entry.JobID, "similarity", match.Similarity,
				"adopted", len(o.Adopted))
		} else {
			logger.Warn("conditioning context unavailable, running cold",
				"neighbor", match.Entry.JobID, "err", err)
		}
	}
	if conditioned {
		s.sem.Note(semcache.OutcomeConditioned)
		s.mu.Lock()
		s.semConditioned++
		s.semAdopted += int64(len(opts.Adopted))
		s.mu.Unlock()
		s.setReuse(id, &Reuse{
			Mode:       ReuseConditioned,
			From:       match.Entry.JobID,
			Similarity: match.Similarity,
			Deltas:     match.Deltas,
		})
	} else {
		s.sem.Note(semcache.OutcomeMiss)
	}

	state, rep, cause := s.attempts(ctx, id, out, opts)
	s.attachCost(id, len(opts.Adopted), false)
	if state == StateDone && rep != nil {
		outcome := "full"
		mode := quality.ModeFull
		if conditioned {
			outcome = semcache.OutcomeConditioned
			mode = quality.ModeConditioned
		}
		s.indexResult(id, hash, sig, rep, outcome)
		s.observeQuality(ctx, id, hash, out, rep, mode)
		if conditioned {
			s.maybeShadow(id, out, rep, quality.ModeConditioned, match.Deltas)
		}
	}
	return state, cause
}

// serveFromNeighbor copies the neighbor's report onto this job and
// records the provenance, returning the served report so the caller
// can score and shadow it. The report is re-labeled with this job's
// trace name; everything else (diagnoses, summary, model) carries
// over.
func (s *Service) serveFromNeighbor(id string, m semcache.Match) (*ion.Report, error) {
	rep, err := s.store.Report(m.Entry.JobID)
	if err != nil {
		return nil, fmt.Errorf("loading neighbor report: %w", err)
	}
	rep.Trace = s.snapshotName(id)
	if err := s.store.PutReport(id, rep); err != nil {
		return nil, fmt.Errorf("persisting reused report: %w", err)
	}
	s.setReuse(id, &Reuse{
		Mode:       ReuseSemanticHit,
		From:       m.Entry.JobID,
		Similarity: m.Similarity,
		Deltas:     m.Deltas,
	})
	return rep, nil
}

// conditionOn builds the analyze options for the middle band: the
// neighbor's report is indexed with the rag TF-IDF index, each issue's
// prompt gets the most relevant chunks as retrieved context, and the
// neighbor's not-detected verdicts are adopted outright (no LLM call)
// — on a near-duplicate workload, re-asking about issues the neighbor
// ruled out is the bulk of the avoidable cost.
func (s *Service) conditionOn(m semcache.Match) (ion.AnalyzeOptions, error) {
	rep, err := s.store.Report(m.Entry.JobID)
	if err != nil {
		return ion.AnalyzeOptions{}, fmt.Errorf("loading neighbor report: %w", err)
	}
	ix, err := rag.IndexReport(rep, nil)
	if err != nil {
		return ion.AnalyzeOptions{}, fmt.Errorf("indexing neighbor report: %w", err)
	}
	if ix.Len() == 0 {
		return ion.AnalyzeOptions{}, errors.New("neighbor report has no indexable content")
	}
	opts := ion.AnalyzeOptions{
		Retrieved: map[issue.ID]string{},
		Adopted:   map[issue.ID]*ion.IssueDiagnosis{},
	}
	for _, iid := range rep.Order {
		d := rep.Diagnoses[iid]
		if d == nil {
			continue
		}
		if d.Verdict == issue.VerdictNotDetected {
			opts.Adopted[iid] = d
			continue
		}
		hits := ix.Query(string(iid)+" "+issue.Title(iid)+" "+d.Conclusion, 3)
		var b strings.Builder
		fmt.Fprintf(&b, "Neighbor trace %q (signature similarity %.3f) was diagnosed:\n\n",
			rep.Trace, m.Similarity)
		fmt.Fprintf(&b, "[%s] VERDICT: %s\n%s\n", iid, d.Verdict, strings.TrimSpace(d.Conclusion))
		for _, h := range hits {
			if h.Doc.ID == "diagnosis/"+string(iid) {
				continue // already included above
			}
			fmt.Fprintf(&b, "\n--- %s\n%s\n", h.Doc.ID, strings.TrimSpace(h.Doc.Text))
		}
		opts.Retrieved[iid] = b.String()
	}
	return opts, nil
}

// indexResult records a completed diagnosis in the semantic store.
func (s *Service) indexResult(id, hash string, sig semcache.Signature, rep *ion.Report, outcome string) {
	var issues []string
	for _, iid := range rep.Detected() {
		issues = append(issues, string(iid))
	}
	err := s.sem.Put(semcache.Entry{
		JobID:     id,
		TraceHash: hash,
		Trace:     rep.Trace,
		Signature: sig,
		Issues:    issues,
		Outcome:   outcome,
		CreatedAt: time.Now().UTC(),
	})
	if err != nil {
		s.log.Warn("indexing diagnosis into semantic cache", "job", id, "err", err)
	}
}

// setReuse attaches reuse provenance to a job; the next persist
// (transition or finish) writes it to disk.
func (s *Service) setReuse(id string, r *Reuse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.ReusedFrom = r
	}
}

// attachCost sums the job's ledger entries into Job.Cost, so the
// snapshot finish persists carries the attribution. adopted is how many
// verdicts a conditioned run adopted without fresh LLM calls; verbatim
// marks a semantic hit served with zero calls. No-op without a ledger.
func (s *Service) attachCost(id string, adopted int, verbatim bool) {
	if s.ledger == nil {
		return
	}
	sum := s.ledger.SumJob(id)
	c := &Cost{
		Calls:     sum.Calls,
		TokensIn:  sum.TokensIn,
		TokensOut: sum.TokensOut,
		EstUSD:    sum.CostUSD,
	}
	switch {
	case verbatim:
		c.ReusedRatio = 1
	case adopted > 0:
		// Fresh diagnosis calls only: the summary call happens either
		// way, so the ratio measures how much of the per-issue fan-out
		// the conditioning avoided.
		fresh := 0
		for _, e := range s.ledger.Entries(ledger.Filter{Job: id}) {
			if e.Template == "diagnosis" {
				fresh++
			}
		}
		c.ReusedRatio = float64(adopted) / float64(adopted+fresh)
	}
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		j.Cost = c
	}
	s.mu.Unlock()
}
