package jobs

import (
	"context"
	mathrand "math/rand"
	"time"

	"ion/internal/drishti"
	"ion/internal/extractor"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/quality"
	"ion/internal/workloads"
)

// Quality-observatory tuning.
const (
	// qualityMinSamples is the per-issue comparison count below which
	// the agreement gauge self-gates to 1.0 (the semcache hit-ratio
	// policy: no drift alert without enough traffic to judge).
	qualityMinSamples = 20
	// shadowPressureMax is the queue utilization at or above which
	// shadow re-runs are skipped: the background fan-out must never
	// compete with a backlog of real jobs for LLM capacity.
	shadowPressureMax = 0.5
)

// observeQuality scores a successful diagnosis against the
// deterministic Drishti triggers, journals the scorecard, bumps the
// disagreement counters, stamps Job.Quality, and republishes the
// agreement gauges. No-op without a quality store.
func (s *Service) observeQuality(ctx context.Context, id, hash string, out *extractor.Output, rep *ion.Report, mode quality.Mode) {
	if s.qual == nil {
		return
	}
	logger := obs.LoggerFrom(ctx)
	_, span := obs.StartSpan(ctx, "quality_score")
	defer span.End()

	det, err := drishti.Analyze(out, drishti.DefaultConfig())
	if err != nil {
		// A baseline failure degrades the comparison (everything scores
		// against "not flagged"), it does not block the job.
		logger.Warn("drishti baseline failed, scoring against empty report", "err", err)
		det = nil
	}
	name := s.snapshotName(id)
	// iongen traces are named after their workload, whose definition
	// carries the paper's ground-truth labels (the expertsim evaluation
	// set); unknown names simply score without labels.
	var labels []issue.Expectation
	if w, werr := workloads.ByName(name); werr == nil {
		labels = w.Truth
	}

	card := quality.Scorecard{
		JobID:     id,
		Trace:     name,
		TraceHash: hash,
		Mode:      mode,
		CreatedAt: time.Now().UTC(),
		Issues:    quality.Score(rep, det, labels),
	}
	card.Summarize()
	if err := s.qual.Put(card); err != nil {
		logger.Warn("journaling quality scorecard", "err", err)
	}
	for _, sc := range card.Issues {
		if sc.Kind != "" {
			s.obs.Counter("ion_verdict_disagreements_total",
				"Per-issue LLM/Drishti verdict disagreements by kind (llm_only or drishti_only).",
				obs.L("issue", string(sc.Issue)), obs.L("kind", sc.Kind)).Inc()
		}
	}
	s.setJobQuality(id, func(q *Quality) {
		q.Agreement = card.Agreement
		q.Disagreements = card.Disagreements
	})
	s.refreshQualityMetrics()
	if card.Disagreements > 0 {
		logger.Info("diagnosis disagrees with deterministic baseline",
			"agreement", card.Agreement, "disagreements", card.Disagreements, "mode", string(mode))
	}
}

// maybeShadow samples a reused or conditioned diagnosis for a
// background full fan-out re-run. Candidates are dropped (never
// queued) when the sample misses, the job queue is under pressure, or
// the shadow concurrency bound is reached — the hot path must not feel
// the observatory.
func (s *Service) maybeShadow(id string, out *extractor.Output, served *ion.Report, mode quality.Mode, deltas map[string]float64) {
	if s.qual == nil || s.cfg.ShadowSampleRate <= 0 {
		return
	}
	if mathrand.Float64() >= s.cfg.ShadowSampleRate {
		return
	}
	if s.Stats().QueueUtilization() >= shadowPressureMax {
		s.shadowSkips.Inc()
		s.log.Info("skipping shadow re-run under queue pressure", "job", id)
		return
	}
	select {
	case s.shadowSem <- struct{}{}:
	default:
		s.shadowSkips.Inc()
		s.log.Info("skipping shadow re-run, concurrency bound reached", "job", id)
		return
	}
	s.shadowWG.Add(1)
	go func() {
		defer func() {
			<-s.shadowSem
			s.shadowWG.Done()
		}()
		s.runShadow(id, out, served, mode, deltas)
	}()
}

// runShadow re-runs one diagnosis through full fan-out, compares the
// verdicts against the report that was actually served, records the
// flips on the job's scorecard (superseding it in the journal so the
// flip survives restarts), and feeds the reuse-decision deltas back
// into the semantic cache when verdicts flipped.
func (s *Service) runShadow(id string, out *extractor.Output, served *ion.Report, mode quality.Mode, deltas map[string]float64) {
	ctx, cancel := context.WithTimeout(s.shadowCtx, s.cfg.JobTimeout)
	defer cancel()
	// Ledger attribution: shadow calls are tagged "<job>-shadow" so the
	// observatory's spend is visible but never folded into the job's
	// own Cost.
	ctx = llm.WithJobID(ctx, id+"-shadow")
	logger := s.log.With("job", id, "shadow_mode", string(mode))

	name := s.snapshotName(id)
	start := time.Now()
	rep, err := s.fw.AnalyzeExtractedOpts(ctx, out, name, ion.AnalyzeOptions{})
	if err != nil {
		logger.Warn("shadow re-run failed", "err", err)
		return
	}
	flips := quality.Flips(served, rep)
	logger.Info("shadow re-run finished", "flips", len(flips),
		"elapsed", time.Since(start).Round(time.Millisecond).String())

	card, ok := s.qual.Get(id)
	if !ok {
		card = quality.Scorecard{JobID: id, Trace: name, Mode: mode, CreatedAt: time.Now().UTC()}
	}
	card.Shadow = &quality.Shadow{Checked: len(issue.All), Flips: flips, At: time.Now().UTC()}
	if err := s.qual.Put(card); err != nil {
		logger.Warn("journaling shadow result", "err", err)
	}
	s.setJobQuality(id, func(q *Quality) {
		q.Shadowed = true
		q.Flips = len(flips)
	})
	if len(flips) > 0 {
		// The reuse decision that served (or conditioned) this job
		// produced wrong verdicts: down-weight the signature dimensions
		// it diverged along, so similar divergence scores below the
		// reuse thresholds next time.
		s.sem.FlipFeedback(deltas)
		logger.Warn("shadow re-run flipped verdicts; down-weighting signature dimensions",
			"flips", len(flips), "dimensions", len(deltas))
	}
	s.refreshQualityMetrics()
}

// setJobQuality mutates a job's quality provenance under the lock. For
// terminal jobs (the shadow path runs after finish) the updated record
// is persisted immediately; for in-flight jobs the next transition or
// finish persists it.
func (s *Service) setJobQuality(id string, update func(*Quality)) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	if j.Quality == nil {
		j.Quality = &Quality{}
	}
	update(j.Quality)
	terminal := j.State.Terminal()
	snapshot := *j
	s.mu.Unlock()
	if terminal {
		if err := s.store.PutJob(&snapshot); err != nil {
			s.log.Warn("persisting job quality", "job", id, "err", err)
		}
	}
}
