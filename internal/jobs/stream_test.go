package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// paddedTextTrace renders a text trace and pads it past several stream
// chunks with metadata comments, so the streaming path cuts multiple
// shards and dispatches parses while the "upload" is still in flight.
func paddedTextTrace(t *testing.T, workload string, minBytes int) []byte {
	t.Helper()
	body := textTrace(t, workload, 0)
	var buf bytes.Buffer
	buf.Write(body)
	for i := 0; buf.Len() < minBytes; i++ {
		fmt.Fprintf(&buf, "# metadata: stream_pad_%d = %d\n", i, i)
	}
	return buf.Bytes()
}

func TestSubmitStreamAndComplete(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	body := paddedTextTrace(t, "ior-hard", 3<<20)

	j, dedup, err := svc.SubmitStream("ior-hard", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if dedup {
		t.Error("first streamed submission reported as dedup hit")
	}
	if j.Ingest == nil || j.Ingest.Mode != IngestStream {
		t.Fatalf("ingest provenance missing or wrong: %+v", j.Ingest)
	}
	if j.Ingest.Bytes != int64(len(body)) {
		t.Errorf("ingest bytes = %d, want %d", j.Ingest.Bytes, len(body))
	}
	if j.Ingest.Shards < 2 {
		t.Errorf("expected multiple parse shards for a %d-byte body, got %d", len(body), j.Ingest.Shards)
	}
	if !j.Ingest.ParseOverlapped {
		t.Error("no shard parsed during the upload")
	}

	final := waitDone(t, svc, j.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if _, err := svc.Report(j.ID); err != nil {
		t.Fatalf("report: %v", err)
	}
	// The parse handed off during ingestion must be consumed, not leak.
	svc.mu.Lock()
	parked := len(svc.preParsed)
	svc.mu.Unlock()
	if parked != 0 {
		t.Errorf("%d pre-parsed logs leaked after completion", parked)
	}
}

func TestSubmitStreamBinaryBody(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	body := traceBytes(t, "ior-easy-1m-fpp")
	j, dedup, err := svc.SubmitStream("ior-easy-1m-fpp", bytes.NewReader(body))
	if err != nil || dedup {
		t.Fatalf("SubmitStream(binary) = dedup %v, err %v", dedup, err)
	}
	if final := waitDone(t, svc, j.ID); final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
}

func TestSubmitStreamDedupAcrossPaths(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	body := textTrace(t, "ior-hard", 1)

	j1, _, err := svc.Submit("whole-body", body)
	if err != nil {
		t.Fatal(err)
	}
	// Identical bytes streamed in must hash identically and hit dedup:
	// the incremental hash and the whole-body hash are the same key.
	j2, dedup, err := svc.SubmitStream("streamed-copy", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !dedup || j2.ID != j1.ID {
		t.Fatalf("streamed copy not deduplicated: dedup=%v id=%s want %s", dedup, j2.ID, j1.ID)
	}
	// The dedup hit parked a pre-parsed log that no worker will claim;
	// it must have been reclaimed.
	svc.mu.Lock()
	parked := len(svc.preParsed)
	svc.mu.Unlock()
	if parked != 0 {
		t.Errorf("%d pre-parsed logs leaked after dedup hit", parked)
	}
	waitDone(t, svc, j1.ID)
}

func TestSubmitStreamMatchesBodyReport(t *testing.T) {
	body := textTrace(t, "ior-hard", 2)

	bodySvc := openService(t, Config{Workers: 1})
	jb, _, err := bodySvc.Submit("trace", body)
	if err != nil {
		t.Fatal(err)
	}
	streamSvc := openService(t, Config{Workers: 1})
	js, _, err := streamSvc.SubmitStream("trace", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bodySvc, jb.ID)
	waitDone(t, streamSvc, js.ID)

	rb, err := bodySvc.Report(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := streamSvc.Report(js.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The extraction directory is the only legitimately path-dependent
	// field; everything else must be identical across ingestion paths.
	rb.CSVDir, rs.CSVDir = "", ""
	bj, _ := json.Marshal(rb)
	sj, _ := json.Marshal(rs)
	if !bytes.Equal(bj, sj) {
		t.Errorf("streamed report diverged from whole-body report:\n--- body ---\n%s\n--- stream ---\n%s", bj, sj)
	}
}

func TestSubmitStreamBadTrace(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	_, _, err := svc.SubmitStream("junk", strings.NewReader("this is not a darshan log\n"))
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error lost parse position: %v", err)
	}
	if _, _, err := svc.SubmitStream("empty", strings.NewReader("")); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("empty body err = %v, want ErrBadTrace", err)
	}
}

func TestSubmitStreamBudgetExhausted(t *testing.T) {
	svc := openService(t, Config{Workers: 1, StreamMaxBuffer: 16})
	body := textTrace(t, "ior-hard", 3)
	_, _, err := svc.SubmitStream("too-big", bytes.NewReader(body))
	if !errors.Is(err, ErrStreamBusy) {
		t.Fatalf("err = %v, want ErrStreamBusy", err)
	}
	if got := svc.streamInflight.Load(); got != 0 {
		t.Errorf("rejected stream left %d bytes reserved", got)
	}
	// The budget is back; a small enough body must still go through.
	if _, _, err := svc.SubmitStream("tiny-ok", strings.NewReader("x")); errors.Is(err, ErrStreamBusy) {
		t.Errorf("budget not released after rejection: %v", err)
	}
}
