// Package jobs turns the one-shot ION pipeline into an asynchronous
// analysis service: Darshan traces are submitted as jobs, queued with
// bounded depth, executed on a worker pool by the ion.Framework, and
// persisted as JSON so a restarted service resumes where it left off.
// Identical traces are deduplicated by content hash, transient failures
// are retried with exponential backoff and jitter, and a full set of
// counters (queue depth, utilization, retries, cache hits) is exposed
// for the /api/stats endpoint.
package jobs

import (
	"encoding/json"
	"errors"
	"time"
)

// State is a job's position in the lifecycle state machine:
//
//	queued → running → done
//	              ↘ reused (served from the semantic cache, no LLM calls)
//	              ↘ retrying → running (until attempts are exhausted)
//	              ↘ failed
//
// Non-terminal states found on disk at startup are recovered as queued.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateRetrying State = "retrying"
	StateDone     State = "done"
	// StateReused is a successful terminal state reached without any
	// LLM calls: the semantic cache found a near-duplicate prior
	// diagnosis above the reuse threshold and its report was served
	// verbatim (provenance in Job.ReusedFrom).
	StateReused State = "reused"
	StateFailed State = "failed"
)

// Terminal reports whether the state is final (done, reused or failed).
func (s State) Terminal() bool {
	return s == StateDone || s == StateReused || s == StateFailed
}

// Succeeded reports whether the state is terminal with a readable
// report (done or reused).
func (s State) Succeeded() bool { return s == StateDone || s == StateReused }

// Valid reports whether s is a known lifecycle state.
func (s State) Valid() bool {
	switch s {
	case StateQueued, StateRunning, StateRetrying, StateDone, StateReused, StateFailed:
		return true
	}
	return false
}

// Reuse records how a job's diagnosis derived from a semantically
// similar prior job — the provenance surfaced on job pages and in
// /api/jobs/{id} as "reused_from".
type Reuse struct {
	// Mode is "semantic_hit" (report served verbatim, zero LLM calls)
	// or "conditioned" (LLM ran with the neighbor's conclusions as
	// retrieved context and its clean verdicts adopted).
	Mode string `json:"mode"`
	// From is the neighbor job id the diagnosis derives from.
	From string `json:"from"`
	// Similarity is the cosine similarity of the quantized signatures.
	Similarity float64 `json:"similarity"`
	// Deltas names the signature dimensions where this trace differs
	// from the neighbor (this minus neighbor).
	Deltas map[string]float64 `json:"deltas,omitempty"`
}

// Reuse mode labels.
const (
	ReuseSemanticHit = "semantic_hit"
	ReuseConditioned = "conditioned"
)

// Ingest records how a job's trace entered the service — whole-body
// POST or the chunked streaming path — the provenance surfaced on job
// pages and in /api/jobs/{id} as "ingest".
type Ingest struct {
	// Mode is IngestBody (buffered whole-body upload) or IngestStream
	// (chunked streaming upload parsed incrementally).
	Mode string `json:"mode"`
	// Bytes is the trace body size.
	Bytes int64 `json:"bytes"`
	// Shards is how many parse shards the body was cut into (streaming
	// ingestion only).
	Shards int `json:"shards,omitempty"`
	// ParseOverlapped reports that at least one shard finished parsing
	// while the client was still uploading — the property the streaming
	// path exists for.
	ParseOverlapped bool `json:"parse_overlapped,omitempty"`
}

// Ingest mode labels.
const (
	IngestBody   = "body"
	IngestStream = "stream"
)

// Cost is the per-job LLM cost attribution, summed from the audit
// ledger's entries for this job: calls made, tokens moved, estimated
// dollars, and how much of the diagnosis was served without fresh LLM
// calls. Surfaced on job pages and in /api/jobs/{id} as "cost".
type Cost struct {
	Calls     int     `json:"calls"`
	TokensIn  int     `json:"tokens_in"`
	TokensOut int     `json:"tokens_out"`
	EstUSD    float64 `json:"est_usd"`
	// ReusedRatio is the fraction of the diagnosis answered from prior
	// work instead of fresh LLM calls: 1.0 for a verbatim semantic hit
	// (zero calls), adopted/(adopted+fresh) for a conditioned run, 0 for
	// a full analysis.
	ReusedRatio float64 `json:"reused_ratio"`
}

// Quality is the per-job diagnosis-quality provenance: how well the
// LLM verdicts agreed with the deterministic Drishti triggers, and
// whether a background shadow re-run checked (and possibly flipped)
// a reused or conditioned diagnosis. Surfaced on job pages and in
// /api/jobs/{id} as "quality"; the full per-issue scorecard lives in
// the quality store (/api/quality).
type Quality struct {
	// Agreement is the fraction of taxonomy issues where the LLM and
	// Drishti verdicts coincide.
	Agreement float64 `json:"agreement"`
	// Disagreements counts the issues where they do not.
	Disagreements int `json:"disagreements"`
	// Shadowed reports that a background full fan-out re-ran this job's
	// diagnosis off the hot path.
	Shadowed bool `json:"shadowed,omitempty"`
	// Flips counts the verdicts the shadow re-run changed.
	Flips int `json:"flips,omitempty"`
}

// Job is one analysis request: a Darshan trace submitted for diagnosis.
// The service hands out copies; the canonical record lives in the
// Service and is persisted through the Store on every state change.
type Job struct {
	// ID uniquely identifies the job ("j-" + 12 hex chars).
	ID string `json:"id"`
	// Trace is the display name of the submitted trace.
	Trace string `json:"trace"`
	// Hash is the hex SHA-256 of the trace bytes, the dedup key.
	Hash string `json:"hash"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Attempts counts analysis attempts so far (1 on first run).
	Attempts int `json:"attempts"`
	// Error holds the most recent failure message, if any.
	Error string `json:"error,omitempty"`
	// ReusedFrom records semantic-cache provenance when this job's
	// diagnosis was served from (or conditioned on) a similar prior
	// job.
	ReusedFrom *Reuse `json:"reused_from,omitempty"`
	// Ingest records how the trace entered the service (whole-body vs
	// streamed) and how much parsing overlapped the upload.
	Ingest *Ingest `json:"ingest,omitempty"`
	// Cost is the job's LLM cost attribution from the audit ledger,
	// attached when the job settles (nil when no ledger is configured).
	Cost *Cost `json:"cost,omitempty"`
	// Quality is the diagnosis-quality provenance, attached after a
	// successful diagnosis is scored against the deterministic baseline
	// (nil when no quality store is configured).
	Quality *Quality `json:"quality,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt are lifecycle timestamps.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// Service errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned by Submit when the queue is at capacity;
	// the HTTP layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("jobs: service is shutting down")
	// ErrNotFound is returned for unknown job ids.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrBadTrace wraps trace-parse failures at submission; the HTTP
	// layer maps it to 400 Bad Request.
	ErrBadTrace = errors.New("jobs: trace does not parse as a Darshan log")
	// ErrNotDone is returned when a report is requested for a job that
	// has not completed successfully.
	ErrNotDone = errors.New("jobs: job has not completed")
	// ErrStreamBusy is returned by SubmitStream when the in-flight
	// streaming-buffer budget is exhausted; the HTTP layer maps it to
	// 429 with a Retry-After hint.
	ErrStreamBusy = errors.New("jobs: streaming buffer budget exhausted")
)

// Stats is a snapshot of the service counters for /api/stats.
type Stats struct {
	// Workers is the configured pool size; Busy is how many are
	// currently running a job.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// QueueDepth is the number of queued-but-unstarted jobs;
	// QueueCapacity is the bound beyond which Submit sheds load.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Jobs is the total number of job records held.
	Jobs int `json:"jobs"`
	// Submitted counts accepted submissions (including dedup hits);
	// Completed/Failed count terminal outcomes; Retried counts retry
	// attempts; CacheHits counts submissions answered from the dedup
	// cache; Recovered counts jobs re-queued from disk at startup.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retried   int64 `json:"retried"`
	CacheHits int64 `json:"cache_hits"`
	Recovered int64 `json:"recovered"`
	// SemanticHits counts jobs served verbatim from the semantic
	// cache; Conditioned counts jobs whose analysis was conditioned on
	// a similar prior diagnosis; AdoptedVerdicts counts the per-issue
	// verdicts conditioned runs adopted from their neighbor without
	// fresh LLM calls.
	SemanticHits    int64 `json:"semantic_hits"`
	Conditioned     int64 `json:"conditioned"`
	AdoptedVerdicts int64 `json:"adopted_verdicts"`
	// LLMCalls/LLMTokensIn/LLMTokensOut/LLMCostUSD are the cumulative
	// LLM accounting from the audit ledger (zero when no ledger is
	// configured). These survive restarts to the extent the ledger
	// journal retained them.
	LLMCalls     int64   `json:"llm_calls"`
	LLMTokensIn  int64   `json:"llm_tokens_in"`
	LLMTokensOut int64   `json:"llm_tokens_out"`
	LLMCostUSD   float64 `json:"llm_cost_usd"`
}

// CacheHitRate is CacheHits / Submitted (0 when nothing submitted).
// Derived rates are methods rather than stored fields so every consumer
// (the HTML index, /api/stats, /metrics) computes them from the same
// counters and cannot disagree.
func (st Stats) CacheHitRate() float64 {
	if st.Submitted == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(st.Submitted)
}

// Utilization is Busy / Workers (0 when the pool is empty).
func (st Stats) Utilization() float64 {
	if st.Workers == 0 {
		return 0
	}
	return float64(st.Busy) / float64(st.Workers)
}

// FailureRatio is Failed / (Completed + Failed): the fraction of
// finished jobs that ended in failure, 0 before anything finishes.
// It is the primary SLO signal the alert rules watch.
func (st Stats) FailureRatio() float64 {
	done := st.Completed + st.Failed
	if done == 0 {
		return 0
	}
	return float64(st.Failed) / float64(done)
}

// QueueUtilization is QueueDepth / QueueCapacity (0 with no capacity):
// 1.0 means the next submission sheds load with a 429.
func (st Stats) QueueUtilization() float64 {
	if st.QueueCapacity == 0 {
		return 0
	}
	return float64(st.QueueDepth) / float64(st.QueueCapacity)
}

// MarshalJSON keeps the derived rates on the wire for /api/stats
// clients while the struct itself stores only raw counters.
func (st Stats) MarshalJSON() ([]byte, error) {
	type raw Stats
	return json.Marshal(struct {
		raw
		CacheHitRate float64 `json:"cache_hit_rate"`
		Utilization  float64 `json:"utilization"`
		FailureRatio float64 `json:"failure_ratio"`
	}{raw(st), st.CacheHitRate(), st.Utilization(), st.FailureRatio()})
}
