package jobs

import (
	"container/list"
	"sync"

	"ion/internal/extractor"
)

// defaultExtractCacheBytes is the cache budget when Config leaves
// ExtractCacheBytes at zero.
const defaultExtractCacheBytes = 64 << 20

// extractCache is a byte-size-bounded LRU over extraction outputs,
// keyed by the trace content hash the dedup path already computes. A
// re-submitted or re-queued trace whose hash is cached skips parse and
// extract entirely. Cached Outputs are shared read-only across jobs:
// the analysis pipeline never mutates extracted tables.
//
// All methods are safe on a nil receiver (cache disabled) and for
// concurrent use.
type extractCache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses int64
}

type extractCacheEntry struct {
	key  string
	out  *extractor.Output
	size int64
}

// newExtractCache returns a cache bounded to max bytes, or nil
// (disabled) when max <= 0.
func newExtractCache(max int64) *extractCache {
	if max <= 0 {
		return nil
	}
	return &extractCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached output for a trace hash and refreshes its
// recency. Every call counts as a hit or a miss.
func (c *extractCache) get(key string) (*extractor.Output, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*extractCacheEntry).out, true
}

// put stores an extraction output, evicting least-recently-used
// entries until the byte budget holds. Outputs larger than the whole
// budget are not cached.
func (c *extractCache) put(key string, out *extractor.Output) {
	if c == nil || key == "" || out == nil {
		return
	}
	size := outputBytes(out)
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*extractCacheEntry)
		c.size += size - ent.size
		ent.out, ent.size = out, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&extractCacheEntry{key: key, out: out, size: size})
		c.size += size
	}
	for c.size > c.max {
		el := c.order.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*extractCacheEntry)
		c.order.Remove(el)
		delete(c.entries, ent.key)
		c.size -= ent.size
	}
}

func (c *extractCache) hitCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *extractCache) missCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

func (c *extractCache) bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

func (c *extractCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// outputBytes estimates the retained size of an extraction output:
// cell bytes plus slice/header overhead per cell and row.
func outputBytes(out *extractor.Output) int64 {
	var n int64
	for name, t := range out.Tables {
		n += int64(len(name)) + 64
		for _, c := range t.Cols {
			n += int64(len(c)) + 16
		}
		for _, row := range t.Rows {
			n += 24
			for _, cell := range row {
				n += int64(len(cell)) + 16
			}
		}
	}
	for name, p := range out.Paths {
		n += int64(len(name)+len(p)) + 32
	}
	return n
}
