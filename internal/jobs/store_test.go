package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ion/internal/ion"
	"ion/internal/issue"
)

func TestStoreJobRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		ID:          "j-0123456789ab",
		Trace:       "ior-hard",
		Hash:        "deadbeef",
		State:       StateQueued,
		Attempts:    1,
		SubmittedAt: time.Now().UTC().Truncate(time.Second),
	}
	if err := st.PutJob(j); err != nil {
		t.Fatal(err)
	}
	back, err := st.GetJob(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != j.ID || back.Trace != j.Trace || back.State != j.State || !back.SubmittedAt.Equal(j.SubmittedAt) {
		t.Errorf("round-trip mismatch: %+v != %+v", back, j)
	}
}

func TestStoreGetJobNotFound(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetJob("j-aaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing job error = %v, want ErrNotFound", err)
	}
	if _, err := st.Trace("j-aaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing trace error = %v, want ErrNotFound", err)
	}
	if _, err := st.Report("j-aaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing report error = %v, want ErrNotFound", err)
	}
}

func TestStoreRejectsBadIDs(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", "UPPER", "j..j", "j j"} {
		if err := st.PutJob(&Job{ID: id}); err == nil {
			t.Errorf("PutJob accepted id %q", id)
		}
		if _, err := st.GetJob(id); err == nil {
			t.Errorf("GetJob accepted id %q", id)
		}
	}
}

func TestStoreJobsSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutJob(&Job{ID: "j-0123456789ab", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	// A torn write, a non-JSON file, and a record with a bogus state
	// must not poison recovery.
	for name, body := range map[string]string{
		"torn.json":     `{"id": "j-to`,
		"notes.txt":     "not a job",
		"badstate.json": `{"id":"j-badstate1234","state":"exploded"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, "jobs", name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := st.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "j-0123456789ab" {
		t.Errorf("Jobs() = %+v, want the one valid record", jobs)
	}
}

func TestStoreTraceAndReportRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := "j-0123456789ab"
	if err := st.PutTrace(id, []byte("trace bytes")); err != nil {
		t.Fatal(err)
	}
	data, err := st.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "trace bytes" {
		t.Errorf("trace round-trip = %q", data)
	}

	rep := &ion.Report{
		Trace:     "ior-hard",
		Diagnoses: map[issue.ID]*ion.IssueDiagnosis{},
		Summary:   "all clear",
	}
	if err := st.PutReport(id, rep); err != nil {
		t.Fatal(err)
	}
	back, err := st.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trace != rep.Trace || back.Summary != rep.Summary {
		t.Errorf("report round-trip = %+v", back)
	}
}
