package jobs

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/obs"
	"ion/internal/quality"
	"ion/internal/semcache"
)

func openQualStore(t *testing.T, path string) *quality.Store {
	t.Helper()
	st, err := quality.Open(quality.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// gatherGauge returns the value of the named series with the given
// labels from the registry, failing the test when absent.
func gatherGauge(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) float64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for i, l := range labels {
			if s.Labels[i] != l {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("no sample %s%v in registry", name, labels)
	return 0
}

// TestQualityScorecardOnDisagreement is the drift half of the
// acceptance criteria: a plausible but wrong LLM (expertsim with every
// verdict rewritten to not-detected) diagnoses a pathological workload
// that Drishti flags deterministically. The persisted scorecard must
// record agreement < 1 with drishti_only disagreements, and the job
// must carry the quality provenance.
func TestQualityScorecardOnDisagreement(t *testing.T) {
	reg := obs.NewRegistry()
	qual := openQualStore(t, filepath.Join(t.TempDir(), "quality.jsonl"))
	svc := openService(t, Config{
		Workers:           1,
		Client:            &expertsim.Contradictor{Inner: expertsim.New()},
		Quality:           qual,
		QualityMinSamples: 1,
		Obs:               reg,
	})

	j, _, err := svc.Submit("ior-hard", traceBytes(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}

	card, ok := qual.Get(j.ID)
	if !ok {
		t.Fatal("no scorecard persisted for the job")
	}
	if card.Mode != quality.ModeFull {
		t.Errorf("scorecard mode = %q, want full", card.Mode)
	}
	if card.Agreement >= 1 || card.Disagreements == 0 {
		t.Fatalf("contradicting LLM scored agreement=%.3f disagreements=%d, want < 1 with disagreements",
			card.Agreement, card.Disagreements)
	}
	for _, sc := range card.Issues {
		if !sc.Agree && sc.Kind != quality.KindDrishtiOnly {
			t.Errorf("issue %s disagreement kind = %q, want drishti_only (LLM forced not-detected)", sc.Issue, sc.Kind)
		}
	}
	if card.Trace != "ior-hard" {
		t.Errorf("scorecard trace = %q", card.Trace)
	}

	got, err := svc.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality == nil || got.Quality.Agreement != card.Agreement || got.Quality.Disagreements != card.Disagreements {
		t.Fatalf("job quality provenance = %+v, want scorecard's %.3f/%d", got.Quality, card.Agreement, card.Disagreements)
	}

	// With the min-samples gate at 1, a disagreeing issue's gauge must
	// fall below 1 so VerdictDriftHigh can see it.
	var worst *quality.IssueScore
	for i := range card.Issues {
		if !card.Issues[i].Agree {
			worst = &card.Issues[i]
			break
		}
	}
	v := gatherGauge(t, reg, "ion_verdict_agreement_ratio", obs.L("issue", string(worst.Issue)))
	if v >= 1 {
		t.Errorf("agreement gauge for %s = %v, want < 1", worst.Issue, v)
	}
}

// TestQualityAgreementSelfGate: below QualityMinSamples comparisons the
// agreement gauge holds at 1.0 even when every sample disagrees, so the
// drift alert stays quiet on thin traffic.
func TestQualityAgreementSelfGate(t *testing.T) {
	reg := obs.NewRegistry()
	qual := openQualStore(t, filepath.Join(t.TempDir(), "quality.jsonl"))
	svc := openService(t, Config{
		Workers:           1,
		Client:            &expertsim.Contradictor{Inner: expertsim.New()},
		Quality:           qual,
		QualityMinSamples: 100,
		Obs:               reg,
	})
	j, _, err := svc.Submit("ior-hard", traceBytes(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j.ID); got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}
	card, _ := qual.Get(j.ID)
	if card.Disagreements == 0 {
		t.Fatal("test premise broken: contradicting LLM produced no disagreements")
	}
	for _, sc := range card.Issues {
		if v := gatherGauge(t, reg, "ion_verdict_agreement_ratio", obs.L("issue", string(sc.Issue))); v != 1 {
			t.Errorf("gauge for %s = %v below the sample gate, want 1", sc.Issue, v)
		}
	}
}

// waitShadow polls until the job's scorecard carries a shadow result.
func waitShadow(t *testing.T, qual *quality.Store, id string) quality.Scorecard {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if card, ok := qual.Get(id); ok && card.Shadow != nil {
			return card
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s was never shadowed", id)
	return quality.Scorecard{}
}

// TestShadowFlipSurvivesRestart is the reuse-decay half of the
// acceptance criteria. Generation 1 (faithful expertsim) indexes a cold
// diagnosis; generation 2 restarts onto the same journals with a
// drifted backend (every verdict forced to not-detected) and a 100%
// shadow sample rate. A perturbed resubmission is served verbatim from
// the cache, the background shadow re-run contradicts the served
// verdicts, the flip is journaled, the flip-ratio gauge fires, and a
// third generation replays it all from disk.
func TestShadowFlipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	semPath := filepath.Join(dir, "semcache.jsonl")
	qualPath := filepath.Join(dir, "quality.jsonl")

	// Generation 1: faithful diagnosis, indexed into the semantic cache.
	sem1, err := semcache.Open(semcache.Options{Path: semPath})
	if err != nil {
		t.Fatal(err)
	}
	qual1 := openQualStore(t, qualPath)
	svc1 := openService(t, Config{Dir: dir, Workers: 1, SemCache: sem1, Quality: qual1})
	j1, _, err := svc1.Submit("ior-hard-gen1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc1, j1.ID); got.State != StateDone {
		t.Fatalf("cold job: %s (%s)", got.State, got.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	svc1.Close(ctx)
	cancel()
	sem1.Close()
	qual1.Close()

	// Generation 2: the backend has drifted; every reused diagnosis is
	// shadow re-checked.
	sem2, err := semcache.Open(semcache.Options{Path: semPath})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sem2.Close() })
	qual2 := openQualStore(t, qualPath)
	reg2 := obs.NewRegistry()
	svc2 := openService(t, Config{
		Dir:              dir,
		Workers:          1,
		Client:           &expertsim.Contradictor{Inner: expertsim.New()},
		SemCache:         sem2,
		Quality:          qual2,
		ShadowSampleRate: 1,
		Obs:              reg2,
	})
	j2, _, err := svc2.Submit("ior-hard-gen2", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitDone(t, svc2, j2.ID)
	if got2.State != StateReused {
		t.Fatalf("perturbed job state = %s (%s), want reused", got2.State, got2.Error)
	}

	card := waitShadow(t, qual2, j2.ID)
	if card.Mode != quality.ModeVerbatim {
		t.Errorf("shadowed scorecard mode = %q, want verbatim", card.Mode)
	}
	if len(card.Shadow.Flips) == 0 {
		t.Fatal("drifted shadow re-run flipped no verdicts")
	}
	jq, err := svc2.Get(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jq.Quality == nil || !jq.Quality.Shadowed || jq.Quality.Flips != len(card.Shadow.Flips) {
		t.Fatalf("job shadow provenance = %+v, want shadowed with %d flips", jq.Quality, len(card.Shadow.Flips))
	}
	if fs := qual2.FlipStats()[quality.ModeVerbatim]; fs.Shadowed != 1 || fs.Flipped != 1 {
		t.Fatalf("verbatim flip stats = %+v, want 1/1", fs)
	}
	if v := gatherGauge(t, reg2, "ion_semcache_flip_ratio", obs.L("mode", string(quality.ModeVerbatim))); v != 1 {
		t.Fatalf("ion_semcache_flip_ratio{mode=verbatim} = %v, want 1", v)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	svc2.Close(ctx)
	cancel()
	qual2.Close()

	// Generation 3: the flip survives restart via journal replay and the
	// gauge republishes at Open, before any new traffic.
	qual3 := openQualStore(t, qualPath)
	if fs := qual3.FlipStats()[quality.ModeVerbatim]; fs.Ratio() != 1 {
		t.Fatalf("replayed flip stats = %+v, want ratio 1", fs)
	}
	reg3 := obs.NewRegistry()
	openService(t, Config{Dir: dir, Workers: 1, Quality: qual3, Obs: reg3})
	if v := gatherGauge(t, reg3, "ion_semcache_flip_ratio", obs.L("mode", string(quality.ModeVerbatim))); v != 1 {
		t.Fatalf("post-restart flip gauge = %v, want 1", v)
	}
}

// TestShadowSkippedWhenDisabled: without a sample rate no shadow runs,
// and verbatim hits still score quality.
func TestShadowSkippedWhenDisabled(t *testing.T) {
	sem := openSemStore(t, semcache.Options{})
	qual := openQualStore(t, filepath.Join(t.TempDir(), "quality.jsonl"))
	svc := openService(t, Config{Workers: 1, SemCache: sem, Quality: qual})

	j1, _, err := svc.Submit("ior-1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, j1.ID)
	j2, _, err := svc.Submit("ior-2", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, j2.ID)
	if got.State != StateReused {
		t.Fatalf("state = %s, want reused", got.State)
	}
	card, ok := qual.Get(j2.ID)
	if !ok {
		t.Fatal("verbatim hit was not scored")
	}
	if card.Mode != quality.ModeVerbatim || card.Shadow != nil {
		t.Fatalf("scorecard = mode %q shadow %v, want verbatim and no shadow", card.Mode, card.Shadow)
	}
	if fs := qual.FlipStats()[quality.ModeVerbatim]; fs.Shadowed != 0 {
		t.Fatalf("flip stats = %+v, want no shadows", fs)
	}
}
