package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/llm"
	"ion/internal/testutil"
)

// traceBytes returns the binary container bytes of a generated
// workload trace, cached per test binary.
var traceOnce struct {
	sync.Mutex
	data map[string][]byte
}

func traceBytes(t *testing.T, workload string) []byte {
	t.Helper()
	traceOnce.Lock()
	defer traceOnce.Unlock()
	if traceOnce.data == nil {
		traceOnce.data = map[string][]byte{}
	}
	if d, ok := traceOnce.data[workload]; ok {
		return d
	}
	log, err := testutil.Log(workload)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	traceOnce.data[workload] = buf.Bytes()
	return buf.Bytes()
}

// textTrace renders the workload as darshan-parser text with a unique
// metadata line, producing distinct-but-valid trace bytes for tests
// that need many different submissions.
func textTrace(t *testing.T, workload string, variant int) []byte {
	t.Helper()
	log, err := testutil.Log(workload)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# metadata: variant = %d\n", variant)
	if err := log.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := log.WriteDXTText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Client == nil {
		cfg.Client = expertsim.New()
	}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc
}

func waitDone(t *testing.T, svc *Service, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return j
}

func TestSubmitAndComplete(t *testing.T) {
	svc := openService(t, Config{Workers: 2})
	j, dedup, err := svc.Submit("ior-hard", traceBytes(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	if dedup {
		t.Error("first submission reported as dedup hit")
	}
	final := waitDone(t, svc, j.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Attempts != 1 || final.StartedAt.IsZero() || final.FinishedAt.IsZero() {
		t.Errorf("lifecycle fields off: %+v", final)
	}
	rep, err := svc.Report(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != "ior-hard" || len(rep.Diagnoses) == 0 {
		t.Errorf("report malformed: trace=%q diagnoses=%d", rep.Trace, len(rep.Diagnoses))
	}
	st := svc.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDedupCacheHit(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	data := traceBytes(t, "ior-hard")
	j, _, err := svc.Submit("ior-hard", data)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, j.ID)

	j2, dedup, err := svc.Submit("ior-hard-again", data)
	if err != nil {
		t.Fatal(err)
	}
	if !dedup {
		t.Error("identical trace was not a dedup hit")
	}
	if j2.ID != j.ID {
		t.Errorf("dedup returned job %s, want cached %s", j2.ID, j.ID)
	}
	st := svc.Stats()
	if st.CacheHits != 1 || st.Submitted != 2 {
		t.Errorf("stats = %+v, want 1 cache hit of 2 submissions", st)
	}
	if st.CacheHitRate() != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", st.CacheHitRate())
	}
}

// flakyClient fails the first n completions with a transient error,
// then delegates to the real backend.
type flakyClient struct {
	llm.Client
	remaining atomic.Int64
}

func (c *flakyClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	if c.remaining.Add(-1) >= 0 {
		return llm.Completion{}, fmt.Errorf("backend hiccup: connection reset")
	}
	return c.Client.Complete(ctx, req)
}

func TestRetryThenSucceed(t *testing.T) {
	flaky := &flakyClient{Client: expertsim.New()}
	flaky.remaining.Store(2)
	svc := openService(t, Config{
		Workers:     1,
		Client:      flaky,
		MaxAttempts: 5,
		RetryDelay:  time.Millisecond,
	})
	j, _, err := svc.Submit("flaky", traceBytes(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, j.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q), want done after retries", final.State, final.Error)
	}
	if final.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥ 2", final.Attempts)
	}
	st := svc.Stats()
	if st.Retried < 1 {
		t.Errorf("stats.Retried = %d, want ≥ 1", st.Retried)
	}
	if st.Completed != 1 {
		t.Errorf("stats.Completed = %d, want 1", st.Completed)
	}
}

func TestRetriesExhausted(t *testing.T) {
	flaky := &flakyClient{Client: expertsim.New()}
	flaky.remaining.Store(1 << 30) // never recovers
	svc := openService(t, Config{
		Workers:     1,
		Client:      flaky,
		MaxAttempts: 2,
		RetryDelay:  time.Millisecond,
	})
	data := traceBytes(t, "ior-hard")
	j, _, err := svc.Submit("doomed", data)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, svc, j.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Attempts != 2 || final.Error == "" {
		t.Errorf("failure record off: %+v", final)
	}
	if st := svc.Stats(); st.Failed != 1 || st.Retried != 1 {
		t.Errorf("stats = %+v, want 1 failed / 1 retried", st)
	}
	if _, err := svc.Report(j.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("Report on failed job = %v, want ErrNotDone", err)
	}
	// A failed job must not answer dedup: resubmitting creates a new one.
	j2, dedup, err := svc.Submit("doomed-again", data)
	if err != nil {
		t.Fatal(err)
	}
	if dedup || j2.ID == j.ID {
		t.Errorf("failed job served as dedup cache: dedup=%v id=%s", dedup, j2.ID)
	}
}

// gateClient blocks completions until released, signalling when the
// first one has started.
type gateClient struct {
	llm.Client
	started chan struct{} // closed when a completion begins
	release chan struct{} // close to let completions proceed
	once    sync.Once
}

func (c *gateClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	c.once.Do(func() { close(c.started) })
	select {
	case <-c.release:
	case <-ctx.Done():
		return llm.Completion{}, ctx.Err()
	}
	return c.Client.Complete(ctx, req)
}

func TestBackpressureShedsLoad(t *testing.T) {
	gate := &gateClient{
		Client:  expertsim.New(),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	svc := openService(t, Config{Workers: 1, QueueDepth: 1, Client: gate})

	a, _, err := svc.Submit("a", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker is actually running job A, so B
	// lands in the queue rather than racing the dequeue.
	select {
	case <-gate.started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never started job A")
	}

	b, _, err := svc.Submit("b", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Submit("c", textTrace(t, "ior-hard", 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission error = %v, want ErrQueueFull", err)
	}
	if st := svc.Stats(); st.QueueDepth != 1 || st.Busy != 1 || st.Utilization() != 1 {
		t.Errorf("stats under load = %+v", st)
	}

	close(gate.release)
	if j := waitDone(t, svc, a.ID); j.State != StateDone {
		t.Errorf("job a = %s (%s)", j.State, j.Error)
	}
	if j := waitDone(t, svc, b.ID); j.State != StateDone {
		t.Errorf("job b = %s (%s)", j.State, j.Error)
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	data := traceBytes(t, "ior-hard")

	// A paused service accepts and persists the job but never runs it —
	// the moral equivalent of crashing with work in the queue.
	paused := openService(t, Config{Dir: dir, Paused: true})
	j, _, err := paused.Submit("ior-hard", data)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Fatalf("paused job state = %s, want queued", j.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	paused.Close(ctx)
	cancel()

	// A fresh service over the same directory must resume the job.
	svc := openService(t, Config{Dir: dir, Workers: 1})
	if st := svc.Stats(); st.Recovered != 1 {
		t.Fatalf("stats.Recovered = %d, want 1", st.Recovered)
	}
	final := waitDone(t, svc, j.ID)
	if final.State != StateDone {
		t.Fatalf("recovered job state = %s (%s), want done", final.State, final.Error)
	}
	if _, err := svc.Report(j.ID); err != nil {
		t.Errorf("report after recovery: %v", err)
	}
	// The dedup index is rebuilt from disk too.
	if _, dedup, err := svc.Submit("same", data); err != nil || !dedup {
		t.Errorf("resubmit after recovery: dedup=%v err=%v", dedup, err)
	}
}

func TestBadTraceRejected(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	for _, body := range [][]byte{nil, []byte("not a darshan log\n"), []byte("# metadata: only = comments\n")} {
		if _, _, err := svc.Submit("junk", body); !errors.Is(err, ErrBadTrace) {
			t.Errorf("Submit(%q) error = %v, want ErrBadTrace", body, err)
		}
	}
	if st := svc.Stats(); st.Submitted != 0 {
		t.Errorf("rejected submissions counted: %+v", st)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	svc := openService(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Submit("late", traceBytes(t, "ior-hard")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := svc.Close(ctx); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestWaitErrors(t *testing.T) {
	svc := openService(t, Config{Paused: true})
	if _, err := svc.Wait(context.Background(), "j-aaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Wait on unknown id = %v, want ErrNotFound", err)
	}
	j, _, err := svc.Submit("parked", traceBytes(t, "ior-hard"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.Wait(ctx, j.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait on parked job = %v, want deadline exceeded", err)
	}
}

// TestConcurrentSubmitPollShutdown exercises the service under -race:
// parallel submissions of distinct and identical traces interleaved
// with polling and a graceful shutdown.
func TestConcurrentSubmitPollShutdown(t *testing.T) {
	svc := openService(t, Config{Workers: 4, QueueDepth: 32, RetryDelay: time.Millisecond})
	variants := make([][]byte, 4)
	for i := range variants {
		variants[i] = textTrace(t, "ior-hard", i)
	}

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				j, _, err := svc.Submit(fmt.Sprintf("w%d-%d", g, i), variants[(g+i)%len(variants)])
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("submit: %v", err)
					return
				}
				if err == nil {
					ids <- j.ID
				}
				svc.Stats()
				svc.List()
			}
		}()
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		if _, err := svc.Get(id); err != nil {
			t.Errorf("get %s: %v", id, err)
		}
		waitDone(t, svc, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Errorf("close: %v", err)
	}
	st := svc.Stats()
	if st.Completed == 0 || st.Failed != 0 {
		t.Errorf("final stats = %+v", st)
	}
	if st.CacheHits == 0 {
		t.Errorf("no dedup hits across %d submissions of %d variants", st.Submitted, len(variants))
	}
}
