package jobs

import (
	"math"
	"path/filepath"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/llm/ledger"
	"ion/internal/semcache"
)

func openLedger(t *testing.T) *ledger.Store {
	t.Helper()
	st, err := ledger.Open(ledger.StoreOptions{
		Path: filepath.Join(t.TempDir(), "ledger.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestJobCostAttribution proves Job.Cost is exactly the sum of the
// job's ledger entries: calls, tokens, and estimated dollars all match
// what the counting fake observed and what the ledger journaled.
func TestJobCostAttribution(t *testing.T) {
	lst := openLedger(t)
	counting := &countingClient{Client: expertsim.New()}
	client := ledger.Wrap(counting, lst, ledger.WrapOptions{})
	svc := openService(t, Config{Workers: 1, Client: client, Ledger: lst})

	j, _, err := svc.Submit("ior-hard", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, j.ID)
	if got.State != StateDone {
		t.Fatalf("job state = %s (%s)", got.State, got.Error)
	}
	if got.Cost == nil {
		t.Fatal("job has no cost attribution")
	}
	if int64(got.Cost.Calls) != counting.calls.Load() {
		t.Fatalf("Cost.Calls = %d, counting client saw %d", got.Cost.Calls, counting.calls.Load())
	}

	// Exact match against the ledger's own entries for this job.
	ents := lst.Entries(ledger.Filter{Job: j.ID})
	if len(ents) != got.Cost.Calls {
		t.Fatalf("ledger holds %d entries for the job, Cost.Calls = %d", len(ents), got.Cost.Calls)
	}
	var tokIn, tokOut int
	var usd float64
	for _, e := range ents {
		tokIn += e.TokensIn
		tokOut += e.TokensOut
		usd += e.CostUSD
		if e.Job != j.ID {
			t.Fatalf("entry attributed to %q, want %q", e.Job, j.ID)
		}
		if e.Attempt != 1 {
			t.Fatalf("first-attempt entry has Attempt = %d", e.Attempt)
		}
	}
	if got.Cost.TokensIn != tokIn || got.Cost.TokensOut != tokOut {
		t.Fatalf("Cost tokens %d/%d, ledger sums %d/%d",
			got.Cost.TokensIn, got.Cost.TokensOut, tokIn, tokOut)
	}
	if math.Abs(got.Cost.EstUSD-usd) > 1e-12 || usd == 0 {
		t.Fatalf("Cost.EstUSD = %v, ledger sum %v", got.Cost.EstUSD, usd)
	}
	if got.Cost.ReusedRatio != 0 {
		t.Fatalf("cold run ReusedRatio = %v, want 0", got.Cost.ReusedRatio)
	}

	// Stats carries the cumulative ledger totals.
	st := svc.Stats()
	// The lifetime total accumulates in append order, the check sums
	// newest-first: same dollars, different float rounding.
	if st.LLMCalls != int64(got.Cost.Calls) || math.Abs(st.LLMCostUSD-usd) > 1e-9 {
		t.Fatalf("stats totals %d/%v, want %d/%v", st.LLMCalls, st.LLMCostUSD, got.Cost.Calls, usd)
	}
}

// TestSemanticHitCost proves a verbatim semantic hit records zero new
// ledger calls but a reused_ratio of 1.0, and that the attribution is
// persisted with the job (visible after a service restart).
func TestSemanticHitCost(t *testing.T) {
	dir := t.TempDir()
	lst := openLedger(t)
	counting := &countingClient{Client: expertsim.New()}
	client := ledger.Wrap(counting, lst, ledger.WrapOptions{})
	sem := openSemStore(t, semcache.Options{})
	svc := openService(t, Config{
		Dir: dir, Workers: 1, Client: client, Ledger: lst,
		SemCache: sem, SemReuseThreshold: 0.995,
	})

	j1, _, err := svc.Submit("ior-hard-v1", textTrace(t, "ior-hard", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, svc, j1.ID); got.State != StateDone {
		t.Fatalf("cold job state = %s (%s)", got.State, got.Error)
	}
	coldCalls := counting.calls.Load()

	j2, _, err := svc.Submit("ior-hard-v2", textTrace(t, "ior-hard", 2))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, j2.ID)
	if got.State != StateReused {
		t.Fatalf("perturbed job state = %s (%s), want reused", got.State, got.Error)
	}
	if counting.calls.Load() != coldCalls {
		t.Fatal("semantic hit made LLM calls")
	}
	if got.Cost == nil || got.Cost.Calls != 0 || got.Cost.EstUSD != 0 {
		t.Fatalf("semantic-hit cost = %+v, want zero calls and dollars", got.Cost)
	}
	if got.Cost.ReusedRatio != 1 {
		t.Fatalf("semantic-hit ReusedRatio = %v, want 1", got.Cost.ReusedRatio)
	}
	if n := len(lst.Entries(ledger.Filter{Job: j2.ID})); n != 0 {
		t.Fatalf("ledger holds %d entries for the reused job, want 0", n)
	}

	// The attribution is in the persisted snapshot: a restarted service
	// still reports it.
	if err := svc.Close(t.Context()); err != nil {
		t.Fatal(err)
	}
	svc2 := openService(t, Config{Dir: dir, Workers: 1, Client: client, Ledger: lst})
	re, err := svc2.Get(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cost == nil || re.Cost.ReusedRatio != 1 {
		t.Fatalf("cost attribution lost across restart: %+v", re.Cost)
	}
}
