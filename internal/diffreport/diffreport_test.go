package diffreport

import (
	"context"
	"strings"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/testutil"
)

func reportFor(t *testing.T, name string) *ion.Report {
	t.Helper()
	out, _, err := testutil.Extracted(name)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, name)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestClassify(t *testing.T) {
	cases := []struct {
		before, after issue.Verdict
		want          Change
	}{
		{issue.VerdictDetected, issue.VerdictNotDetected, ChangeFixed},
		{issue.VerdictDetected, issue.VerdictMitigated, ChangeFixed},
		{issue.VerdictMitigated, issue.VerdictNotDetected, ChangeImproved},
		{issue.VerdictMitigated, issue.VerdictDetected, ChangeRegressed},
		{issue.VerdictNotDetected, issue.VerdictDetected, ChangeNew},
		{issue.VerdictNotDetected, issue.VerdictMitigated, ChangeNew},
		{issue.VerdictDetected, issue.VerdictDetected, ChangeUnchanged},
		{issue.VerdictMitigated, issue.VerdictMitigated, ChangeUnchanged},
		{issue.VerdictNotDetected, issue.VerdictNotDetected, ChangeStillClear},
	}
	for _, c := range cases {
		if got := classify(c.before, c.after); got != c.want {
			t.Errorf("classify(%s, %s) = %s, want %s", c.before, c.after, got, c.want)
		}
	}
}

func TestOpenPMDBaselineToOptimized(t *testing.T) {
	// The paper's OpenPMD story: the HDF5 fix resolves small I/O,
	// misalignment, shared-file contention, and the degraded
	// collectives; the random-read residue appears as a new (mitigated)
	// note.
	before := reportFor(t, "openpmd-baseline")
	after := reportFor(t, "openpmd-optimized")
	d, err := Compare(before, after)
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[issue.ID]bool{}
	for _, id := range d.Fixed() {
		fixed[id] = true
	}
	for _, want := range []issue.ID{issue.SmallIO, issue.MisalignedIO, issue.SharedFile, issue.CollectiveIO} {
		if !fixed[want] {
			t.Errorf("%s should be classified as fixed", want)
		}
	}
	if len(d.Regressed()) > 1 {
		t.Errorf("unexpected regressions: %v", d.Regressed())
	}
	text := d.Render()
	if !strings.Contains(text, "fixed") {
		t.Errorf("render misses fixes:\n%s", text)
	}
}

func TestE2EBaselineToOptimized(t *testing.T) {
	before := reportFor(t, "e2e-baseline")
	after := reportFor(t, "e2e-optimized")
	d, err := Compare(before, after)
	if err != nil {
		t.Fatal(err)
	}
	// Load imbalance: detected → mitigated (fixed); misalignment
	// persists — exactly the paper's optimized-E2E reading.
	var imb, mis Entry
	for _, e := range d.Entries {
		switch e.Issue {
		case issue.LoadImbalance:
			imb = e
		case issue.MisalignedIO:
			mis = e
		}
	}
	if imb.Change != ChangeFixed {
		t.Errorf("load-imbalance change = %s, want fixed", imb.Change)
	}
	if mis.Change != ChangeUnchanged {
		t.Errorf("misaligned-io change = %s, want unchanged", mis.Change)
	}
	if !strings.Contains(d.Render(), "still open") {
		t.Errorf("verdict should note the persisting misalignment:\n%s", d.Render())
	}
}

func TestIdenticalReportsAreQuiet(t *testing.T) {
	rep := reportFor(t, "ior-easy-1m-fpp")
	d, err := Compare(rep, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Fixed()) != 0 || len(d.Regressed()) != 0 {
		t.Errorf("self-diff shows movement: %+v", d.Entries)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(nil, nil); err == nil {
		t.Error("nil reports accepted")
	}
}
