// Package diffreport compares two ION diagnoses of the same application
// — typically a baseline run and an optimized rerun — and reports which
// issues were fixed, which regressed, and which persist. This mirrors
// how the paper's evaluation reads its application traces (OpenPMD and
// E2E are each analyzed before and after their fix) and gives users a
// did-my-change-work verdict in one view.
package diffreport

import (
	"fmt"
	"strings"

	"ion/internal/ion"
	"ion/internal/issue"
)

// Change classifies one issue's transition between two reports.
type Change string

// Transition classes.
const (
	ChangeFixed      Change = "fixed"       // detected → mitigated/not-detected
	ChangeImproved   Change = "improved"    // mitigated → not-detected
	ChangeRegressed  Change = "regressed"   // better → worse
	ChangeUnchanged  Change = "unchanged"   // same verdict, issue present
	ChangeStillClear Change = "still-clear" // clear in both
	ChangeNew        Change = "new"         // clear → present
)

// Entry is one issue's before/after comparison.
type Entry struct {
	Issue  issue.ID
	Before issue.Verdict
	After  issue.Verdict
	Change Change
}

// Diff is the full comparison.
type Diff struct {
	BeforeTrace string
	AfterTrace  string
	Entries     []Entry
}

// rank orders verdicts by severity for transition classification.
func rank(v issue.Verdict) int {
	switch v {
	case issue.VerdictDetected:
		return 2
	case issue.VerdictMitigated:
		return 1
	}
	return 0
}

func classify(before, after issue.Verdict) Change {
	rb, ra := rank(before), rank(after)
	switch {
	case rb == 0 && ra == 0:
		return ChangeStillClear
	case rb == 2 && ra < 2:
		return ChangeFixed
	case rb == 1 && ra == 0:
		return ChangeImproved
	case ra > rb:
		if rb == 0 {
			return ChangeNew
		}
		return ChangeRegressed
	default:
		return ChangeUnchanged
	}
}

// Compare diffs two reports issue by issue (union of both orders).
func Compare(before, after *ion.Report) (*Diff, error) {
	if before == nil || after == nil {
		return nil, fmt.Errorf("diffreport: two reports are required")
	}
	seen := map[issue.ID]bool{}
	var order []issue.ID
	for _, id := range append(append([]issue.ID{}, before.Order...), after.Order...) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	d := &Diff{BeforeTrace: before.Trace, AfterTrace: after.Trace}
	for _, id := range order {
		b, a := before.Verdict(id), after.Verdict(id)
		d.Entries = append(d.Entries, Entry{
			Issue: id, Before: b, After: a, Change: classify(b, a),
		})
	}
	return d, nil
}

// Fixed lists issues resolved by the change.
func (d *Diff) Fixed() []issue.ID {
	return d.filter(ChangeFixed, ChangeImproved)
}

// Regressed lists issues the change made worse or introduced.
func (d *Diff) Regressed() []issue.ID {
	return d.filter(ChangeRegressed, ChangeNew)
}

// Persisting lists present issues the change did not move.
func (d *Diff) Persisting() []issue.ID {
	return d.filter(ChangeUnchanged)
}

func (d *Diff) filter(changes ...Change) []issue.ID {
	var out []issue.ID
	for _, e := range d.Entries {
		for _, c := range changes {
			if e.Change == c {
				out = append(out, e.Issue)
			}
		}
	}
	return out
}

// Render prints the comparison table plus a verdict line.
func (d *Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diagnosis diff: %s → %s\n", d.BeforeTrace, d.AfterTrace)
	b.WriteString(strings.Repeat("=", 64) + "\n")
	fmt.Fprintf(&b, "%-22s %-14s %-14s %s\n", "issue", "before", "after", "change")
	for _, e := range d.Entries {
		if e.Change == ChangeStillClear {
			continue
		}
		fmt.Fprintf(&b, "%-22s %-14s %-14s %s\n", e.Issue, e.Before, e.After, e.Change)
	}
	fixed, regressed, persisting := d.Fixed(), d.Regressed(), d.Persisting()
	b.WriteString("\n")
	switch {
	case len(regressed) > 0:
		fmt.Fprintf(&b, "verdict: the change introduced or worsened %d issue(s): %v\n", len(regressed), regressed)
	case len(fixed) > 0 && len(persisting) == 0:
		fmt.Fprintf(&b, "verdict: the change resolved every diagnosed issue (%v)\n", fixed)
	case len(fixed) > 0:
		fmt.Fprintf(&b, "verdict: the change resolved %v; still open: %v\n", fixed, persisting)
	case len(persisting) > 0:
		fmt.Fprintf(&b, "verdict: no movement — still open: %v\n", persisting)
	default:
		b.WriteString("verdict: both runs are clean\n")
	}
	return b.String()
}
