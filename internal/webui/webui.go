// Package webui serves a completed diagnosis over HTTP: the front-end
// of the paper's Figure 1 — the report with its per-issue modals plus
// the message window through which the user asks follow-up questions.
// Everything is stdlib net/http; the page is self-contained HTML with a
// small inline script that talks to the JSON chat endpoint.
package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"ion/internal/ion"
	"ion/internal/llm"
	"ion/internal/report"
)

// maxAskBody caps /api/ask request bodies; oversized payloads get 413.
const maxAskBody = 1 << 20

// Server wires a report and a chat session behind an http.Handler.
type Server struct {
	report *ion.Report
	client llm.Client

	mu      sync.Mutex
	session *ion.Session
}

// New builds a Server for the report. The client backs the chat
// endpoint.
func New(client llm.Client, rep *ion.Report) (*Server, error) {
	if rep == nil || client == nil {
		return nil, fmt.Errorf("webui: report and client are required")
	}
	session, err := ion.NewSession(client, rep)
	if err != nil {
		return nil, err
	}
	return &Server{report: rep, client: client, session: session}, nil
}

// Handler returns the HTTP routes:
//
//	GET  /            the diagnosis page (HTML, with the chat box)
//	GET  /api/report  the report as JSON
//	POST /api/ask     {"question": "..."} -> {"answer": "..."}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/api/report", s.handleReport)
	mux.HandleFunc("/api/ask", s.handleAsk)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var page strings.Builder
	if err := report.WriteHTML(&page, s.report); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Inject the chat box before </body>.
	html := strings.Replace(page.String(), "</body>", chatWidget+"</body>", 1)
	fmt.Fprint(w, html)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.report); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// askRequest/askResponse are the chat wire types.
type askRequest struct {
	Question string `json:"question"`
}

type askResponse struct {
	Answer string `json:"answer"`
}

// readJSON decodes the request body into v with the body capped at
// maxBytes, writing the appropriate error response (413 for oversized
// bodies, 400 otherwise) and returning false on failure.
func readJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req askRequest
	if !readJSON(w, r, maxAskBody, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		http.Error(w, "bad request: empty question", http.StatusBadRequest)
		return
	}
	// Session history is stateful: serialize questions.
	s.mu.Lock()
	answer, err := s.session.Ask(r.Context(), req.Question)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(askResponse{Answer: answer}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// chatWidget is the message window of the paper's front end, posting
// to the single-report ask endpoint. The job server renders the same
// widget against its per-job endpoints via chatWidgetFor.
var chatWidget = chatWidgetFor("/api/ask")

// chatWidgetFor renders the message window against an ask endpoint.
func chatWidgetFor(askURL string) string {
	return strings.ReplaceAll(chatWidgetTmpl, "__ASK_URL__", askURL)
}

const chatWidgetTmpl = `
<section id="chat" style="margin-top:2rem;border-top:2px solid #ddd;padding-top:1rem">
<h2>Ask about this diagnosis</h2>
<div id="chat-log" style="white-space:pre-wrap;background:#fafafa;border:1px solid #ddd;border-radius:6px;padding:.8rem;min-height:4rem;max-height:24rem;overflow-y:auto"></div>
<form id="chat-form" style="display:flex;gap:.5rem;margin-top:.6rem">
  <input id="chat-q" type="text" placeholder="e.g. which rank causes the imbalance?" style="flex:1;padding:.5rem;border:1px solid #ccc;border-radius:6px">
  <button type="submit" style="padding:.5rem 1rem;border:0;border-radius:6px;background:#3274b5;color:#fff;cursor:pointer">Ask</button>
</form>
<script>
document.getElementById("chat-form").addEventListener("submit", async function(e) {
  e.preventDefault();
  var q = document.getElementById("chat-q");
  var log = document.getElementById("chat-log");
  var question = q.value.trim();
  if (!question) return;
  log.textContent += "you> " + question + "\n";
  q.value = "";
  try {
    var resp = await fetch("__ASK_URL__", {
      method: "POST",
      headers: {"Content-Type": "application/json"},
      body: JSON.stringify({question: question})
    });
    if (!resp.ok) throw new Error(await resp.text());
    var data = await resp.json();
    log.textContent += "ion> " + data.answer + "\n\n";
  } catch (err) {
    log.textContent += "error: " + err + "\n\n";
  }
  log.scrollTop = log.scrollHeight;
});
</script>
</section>
`
