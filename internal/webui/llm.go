package webui

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ion/internal/jobs"
	"ion/internal/llm/ledger"
	"ion/internal/obs/series"
)

// WithLLMLedger wires the LLM audit ledger behind GET /api/llm/ledger
// and GET /dashboard/llm, and returns the server for chaining. Without
// it those routes answer 404. The client is the ledger.Wrap recording
// wrapper analyses run through; it carries both the store and the
// per-backend health scorer.
func (s *JobServer) WithLLMLedger(lc *ledger.Client) *JobServer {
	s.llmLedger = lc
	return s
}

// ledgerDisabled answers the LLM audit endpoints when no ledger is
// wired in (WithLLMLedger was not called).
func (s *JobServer) ledgerDisabled(w http.ResponseWriter) bool {
	if s.llmLedger != nil {
		return false
	}
	s.errorJSON(w, http.StatusNotFound, "LLM ledger disabled: start ionserve without -ledger=none")
	return true
}

// llmLedgerResponse is the GET /api/llm/ledger wire type: cumulative
// accounting, per-backend health, per-job rollups (most expensive
// first), and the filtered entries, newest first.
type llmLedgerResponse struct {
	Totals  ledger.Totals          `json:"totals"`
	Health  []ledger.BackendHealth `json:"health"`
	Jobs    []ledger.JobSum        `json:"jobs"`
	Entries []ledger.Entry         `json:"entries"`
}

// handleLLMLedger serves the audit ledger:
//
//	GET /api/llm/ledger?limit=50&backend=openai&job=j-abc123
//
// limit bounds the returned entries (default 100), backend and job
// filter by exact match.
func (s *JobServer) handleLLMLedger(w http.ResponseWriter, r *http.Request) {
	if s.ledgerDisabled(w) {
		return
	}
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer, got "+strconv.Quote(v))
			return
		}
		limit = n
	}
	store := s.llmLedger.Store()
	entries := store.Entries(ledger.Filter{
		Job:     q.Get("job"),
		Backend: q.Get("backend"),
		Limit:   limit,
	})
	if entries == nil {
		entries = []ledger.Entry{}
	}
	jobSums := store.JobSums(10)
	if jobSums == nil {
		jobSums = []ledger.JobSum{}
	}
	health := s.llmLedger.Health()
	if health == nil {
		health = []ledger.BackendHealth{}
	}
	s.writeJSON(w, http.StatusOK, llmLedgerResponse{
		Totals:  store.Totals(),
		Health:  health,
		Jobs:    jobSums,
		Entries: entries,
	})
}

// costBanner renders a job's LLM cost attribution: calls, tokens,
// estimated dollars, and how much of the diagnosis was reused instead
// of paid for. Empty when no ledger is configured.
func costBanner(job jobs.Job) string {
	c := job.Cost
	if c == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(`<div style="margin-top:2rem;padding:0.75rem 1rem;border:1px solid #d97706;border-radius:6px;background:#fffbeb">`)
	if c.Calls == 0 && c.ReusedRatio >= 1 {
		b.WriteString(`<strong>LLM cost:</strong> $0 — served entirely from prior work (0 calls).`)
	} else {
		fmt.Fprintf(&b, `<strong>LLM cost:</strong> $%.4f estimated &middot; %d call(s) &middot; %d tokens in / %d out`,
			c.EstUSD, c.Calls, c.TokensIn, c.TokensOut)
		if c.ReusedRatio > 0 {
			fmt.Fprintf(&b, ` &middot; %.0f%% of the fan-out reused`, 100*c.ReusedRatio)
		}
		b.WriteString(`.`)
	}
	b.WriteString(` <a href="/dashboard/llm">LLM dashboard</a></div>`)
	return b.String()
}

// handleLLMDashboard renders the zero-JS LLM observability page:
// cumulative spend, a cost-over-time sparkline from the series store,
// the per-template token histogram, the backend health table, and the
// top-N most expensive jobs. The page is well-formed XML (self-closed
// void tags, numeric character references only) so it can be machine
// checked, archived, and transformed.
func (s *JobServer) handleLLMDashboard(w http.ResponseWriter, r *http.Request) {
	if s.ledgerDisabled(w) {
		return
	}
	store := s.llmLedger.Store()
	tot := store.Totals()

	var b strings.Builder
	b.WriteString(llmDashHead)

	// &#183; is the middle dot; named entities are not XML.
	fmt.Fprintf(&b, `<p class="meta">est. spend <strong>$%.4f</strong> &#183; %d calls &#183; %d tokens in / %d out &#183; %d errors &#183; %d timeouts &#183; %d entries retained (%s)`,
		tot.CostUSD, tot.Calls, tot.TokensIn, tot.TokensOut, tot.Errors, tot.Timeouts,
		tot.Entries, xmlBytes(tot.Bytes))
	b.WriteString(` &#183; <a href="/api/llm/ledger">ledger JSON</a> &#183; <a href="/dashboard">dashboard</a> &#183; <a href="/">jobs</a></p>`)
	b.WriteString(`<p class="meta">Entries hold prompt hashes and accounting only; raw text is recorded only with <code>-ledger-capture-text</code>.</p>`)

	s.renderCostSpark(&b)
	renderTemplateTokens(&b, store.TemplateTokens())
	renderBackendHealth(&b, s.llmLedger.Health())
	renderTopJobs(&b, store.JobSums(10))

	b.WriteString("</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// renderCostSpark plots the spend rate over the series store's window
// as an inline SVG polyline (ion_llm_cost_usd_total is a counter, so
// the stored points are USD per second). Skipped without a series
// store; an empty chart notes the absence of data.
func (s *JobServer) renderCostSpark(b *strings.Builder) {
	b.WriteString(`<h2>Spend rate</h2>`)
	if s.series == nil {
		b.WriteString(`<p class="nodata">no series store wired in</p>`)
		return
	}
	now := time.Now()
	window := 10 * time.Minute
	if ret := s.series.Retention(); ret < window {
		window = ret
	}
	from := now.Add(-window)
	// The counter is labelled per backend; sum the series point-wise so
	// the sparkline shows total spend rate.
	byT := map[int64]float64{}
	for _, res := range s.series.Query(series.Query{
		Name: "ion_llm_cost_usd_total", From: from, To: now,
	}) {
		for _, pt := range res.Points {
			byT[pt.T] += pt.V
		}
	}
	pts := make([]series.Point, 0, len(byT))
	for ts, v := range byT {
		pts = append(pts, series.Point{T: ts, V: v})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	if len(pts) < 2 {
		b.WriteString(`<p class="nodata">no data yet</p>`)
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range pts {
		lo = math.Min(lo, pt.V)
		hi = math.Max(hi, pt.V)
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}
	const width, height, pad = 560, 64, 3
	fromMs, toMs := from.UnixMilli(), now.UnixMilli()
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	var path strings.Builder
	for j, pt := range pts {
		x := pad + float64(width-2*pad)*float64(pt.T-fromMs)/float64(toMs-fromMs)
		y := float64(height-pad) - float64(height-2*pad)*(pt.V-lo)/(hi-lo)
		if j > 0 {
			path.WriteByte(' ')
		}
		fmt.Fprintf(&path, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(b, `<polyline fill="none" stroke="#d97706" stroke-width="1.5" points="%s"/>`, path.String())
	b.WriteString(`</svg>`)
	fmt.Fprintf(b, `<p class="readout"><strong>$%.6f/s</strong> <span class="range">min $%.6f/s &#183; max $%.6f/s over %s</span></p>`,
		pts[len(pts)-1].V, lo, hi, window)
}

// renderTemplateTokens draws the per-template token histogram as
// proportional bars.
func renderTemplateTokens(b *strings.Builder, byTemplate map[string]int64) {
	b.WriteString(`<h2>Tokens by prompt template</h2>`)
	if len(byTemplate) == 0 {
		b.WriteString(`<p class="nodata">no calls recorded yet</p>`)
		return
	}
	templates := make([]string, 0, len(byTemplate))
	var max int64
	for t, n := range byTemplate {
		templates = append(templates, t)
		if n > max {
			max = n
		}
	}
	// Stable order: biggest first, ties by name.
	for i := 1; i < len(templates); i++ {
		for j := i; j > 0; j-- {
			a, c := templates[j-1], templates[j]
			if byTemplate[a] > byTemplate[c] || (byTemplate[a] == byTemplate[c] && a < c) {
				break
			}
			templates[j-1], templates[j] = c, a
		}
	}
	b.WriteString(`<table>`)
	for _, t := range templates {
		n := byTemplate[t]
		pct := 100 * float64(n) / float64(max)
		fmt.Fprintf(b, `<tr><td class="tname">%s</td><td class="bar"><div style="width:%.1f%%"></div></td><td class="tval">%d</td></tr>`,
			html.EscapeString(t), pct, n)
	}
	b.WriteString(`</table>`)
}

// renderBackendHealth writes the rolling health score table: the same
// numbers exported as ion_llm_backend_health and watched by the
// LLMBackendDegraded rule.
func renderBackendHealth(b *strings.Builder, health []ledger.BackendHealth) {
	b.WriteString(`<h2>Backend health</h2>`)
	if len(health) == 0 {
		b.WriteString(`<p class="nodata">no backends observed yet</p>`)
		return
	}
	b.WriteString(`<table><tr><th>backend</th><th>score</th><th>calls</th><th>error rate</th><th>timeout rate</th><th>p95 latency</th><th>baseline p95</th></tr>`)
	for _, h := range health {
		cls := "ok"
		if h.Score < 0.5 {
			cls = "bad"
		} else if h.Score < 0.8 {
			cls = "warn"
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td class="%s">%.2f</td><td>%d</td><td>%.1f%%</td><td>%.1f%%</td><td>%s</td><td>%s</td></tr>`,
			html.EscapeString(h.Backend), cls, h.Score, h.Calls,
			100*h.ErrorRate, 100*h.TimeoutRate,
			xmlSeconds(h.P95Latency), xmlSeconds(h.BaselineP95))
	}
	b.WriteString(`</table>`)
	b.WriteString(`<p class="meta">score = clamp(1 &#8722; 0.7&#183;err &#8722; 0.7&#183;timeout &#8722; 0.3&#183;latency penalty, 0, 1); below 0.5 the <code>LLMBackendDegraded</code> alert fires.</p>`)
}

// renderTopJobs writes the most expensive jobs table.
func renderTopJobs(b *strings.Builder, sums []ledger.JobSum) {
	b.WriteString(`<h2>Most expensive jobs</h2>`)
	if len(sums) == 0 {
		b.WriteString(`<p class="nodata">no job-attributed calls yet</p>`)
		return
	}
	b.WriteString(`<table><tr><th>job</th><th>calls</th><th>tokens in</th><th>tokens out</th><th>est. USD</th></tr>`)
	for _, s := range sums {
		fmt.Fprintf(b, `<tr><td><a href="/jobs/%s"><code>%s</code></a></td><td>%d</td><td>%d</td><td>%d</td><td>$%.4f</td></tr>`,
			html.EscapeString(s.Job), html.EscapeString(s.Job),
			s.Calls, s.TokensIn, s.TokensOut, s.CostUSD)
	}
	b.WriteString(`</table>`)
}

// xmlSeconds renders a latency without relying on locale or entities.
func xmlSeconds(v float64) string {
	if v <= 0 {
		return "0"
	}
	if v < 1 {
		return strconv.FormatFloat(1000*v, 'f', 1, 64) + " ms"
	}
	return strconv.FormatFloat(v, 'f', 2, 64) + " s"
}

// xmlBytes renders a byte count with binary prefixes.
func xmlBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return strconv.FormatFloat(float64(n)/(1<<20), 'f', 1, 64) + " MiB"
	case n >= 1<<10:
		return strconv.FormatFloat(float64(n)/(1<<10), 'f', 1, 64) + " KiB"
	}
	return strconv.FormatInt(n, 10) + " B"
}

// llmDashHead is the page prologue. Unlike the main dashboard it is
// strict XML: void elements self-closed, no named HTML entities, so
// the page parses with any XML tooling.
const llmDashHead = `<html><head><meta charset="utf-8" /><title>ION &#8212; LLM cost &amp; audit</title>
<meta http-equiv="refresh" content="5" />
<style>
body { font-family: system-ui, sans-serif; max-width: 56rem; margin: 2rem auto; color: #111 }
h1 { margin-bottom: 0.25rem }
h2 { font-size: 1rem; margin: 1.5rem 0 0.25rem }
.meta { color: #555 }
.nodata { color: #999; font-style: italic }
.readout { margin: 0.25rem 0 0; font-size: 0.9rem }
.range { color: #777; font-size: 0.8rem }
.ok { color: #059669 }
.warn { color: #d97706; font-weight: 600 }
.bad { color: #dc2626; font-weight: 600 }
svg { width: 100%; height: 64px; background: #fafafa; border: 1px solid #ddd; border-radius: 6px }
table { border-collapse: collapse; width: 100%; margin-top: 0.5rem; font-size: 0.85rem }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left }
td.tname { width: 10rem } td.tval { width: 6rem; text-align: right }
td.bar div { background: #d97706; height: 0.9rem; min-width: 2px }
</style></head>
<body>
<h1>ION LLM cost &amp; audit</h1>
`
