package webui

import (
	"net/http"
	"os"
)

// healthResponse is the /healthz and /readyz wire type: an overall
// status plus the per-check detail that produced it.
type healthResponse struct {
	Status string            `json:"status"` // "ok" or "unavailable"
	Checks map[string]string `json:"checks"` // check name → "ok" or failure reason
}

// handleHealthz is the liveness probe: if the process can run this
// handler, it is alive. Always 200.
func (s *JobServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok",
		Checks: map[string]string{"process": "ok"},
	})
}

// handleReadyz is the readiness probe: 200 only while the service can
// usefully accept work — the job store directory is reachable, the
// worker pool is running, and graceful drain has not begun. Any failed
// check flips the response to 503 so load balancers route elsewhere,
// with the reason in the check detail.
func (s *JobServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{}
	ready := true
	fail := func(name, reason string) {
		checks[name] = reason
		ready = false
	}

	if dir := s.svc.Store().Dir(); dir == "" {
		fail("store", "no data directory")
	} else if _, err := os.Stat(dir); err != nil {
		fail("store", "data directory unreachable: "+err.Error())
	} else {
		checks["store"] = "ok"
	}

	if st := s.svc.Stats(); st.Workers <= 0 {
		fail("workers", "worker pool is paused (0 workers)")
	} else {
		checks["workers"] = "ok"
	}

	if s.svc.Draining() {
		fail("draining", "graceful drain in progress")
	} else {
		checks["draining"] = "ok"
	}

	resp := healthResponse{Status: "ok", Checks: checks}
	code := http.StatusOK
	if !ready {
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}
