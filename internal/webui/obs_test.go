package webui

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/obs"
)

// TestMetricsReflectSubmittedJob drives a job through the service and
// checks that GET /metrics reports it: LLM request/token counters from
// the instrumented client, per-stage latency histograms from the job's
// span timeline, jobs counters/gauges from the service, and HTTP
// middleware counters from the requests this test itself made. It then
// fetches the persisted span timeline over the API.
func TestMetricsReflectSubmittedJob(t *testing.T) {
	reg := obs.NewRegistry()
	client := llm.Instrument(expertsim.New(), reg)
	svc, err := jobs.Open(jobs.Config{
		Dir:     t.TempDir(),
		Client:  client,
		Workers: 1,
		Obs:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, obs.NopLogger()).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=ior-hard", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || job.State != jobs.StateDone {
		t.Fatalf("job did not complete: %v (state %s, error %q)", err, job.State, job.Error)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	exposition := string(body)
	for _, want := range []string{
		`ion_llm_requests_total{backend="expertsim",outcome="ok"}`,
		`ion_llm_tokens_total{backend="expertsim",kind="prompt"}`,
		`ion_llm_tokens_total{backend="expertsim",kind="completion"}`,
		`ion_pipeline_stage_seconds_bucket{stage="diagnose",le="+Inf"}`,
		`ion_pipeline_stage_seconds_bucket{stage="extract",le="+Inf"}`,
		`ion_pipeline_stage_seconds_bucket{stage="summarize",le="+Inf"}`,
		"ion_jobs_queue_depth 0",
		"ion_jobs_submitted_total 1",
		"ion_jobs_completed_total 1",
		`ion_http_requests_total{code="202",route="POST /api/jobs"} 1`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The persisted span timeline is served per job, and its root job
	// span parents the pipeline stages.
	var tl obs.Timeline
	if code := getJSON(t, srv.URL+"/api/jobs/"+job.ID+"/trace", &tl); code != http.StatusOK {
		t.Fatalf("GET /api/jobs/{id}/trace status = %d", code)
	}
	if tl.Trace != job.ID || len(tl.Spans) == 0 {
		t.Fatalf("timeline = %+v, want spans for job %s", tl, job.ID)
	}
	names := map[string]bool{}
	for _, s := range tl.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"job", "parse", "attempt", "extract", "diagnose", "llm_complete", "summarize"} {
		if !names[want] {
			t.Errorf("timeline missing %q span (have %v)", want, names)
		}
	}
	if roots := tl.Roots(); len(roots) != 1 || tl.Spans[0].Name != "job" {
		t.Errorf("timeline root = %v %q, want a single job span", tl.Roots(), tl.Spans[0].Name)
	}

	// A job that never ran has no timeline: 409, mirroring /report.
	svcPaused, err := jobs.Open(jobs.Config{Dir: t.TempDir(), Client: client, Paused: true})
	if err != nil {
		t.Fatal(err)
	}
	jsPaused, err := NewJobServer(client, svcPaused)
	if err != nil {
		t.Fatal(err)
	}
	srvPaused := httptest.NewServer(jsPaused.Handler())
	t.Cleanup(func() {
		srvPaused.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svcPaused.Close(ctx)
	})
	srQ, _ := postTrace(t, srvPaused.URL+"/api/jobs", workloadTrace(t))
	if code := getJSON(t, srvPaused.URL+"/api/jobs/"+srQ.Job.ID+"/trace", new(obs.Timeline)); code != http.StatusConflict {
		t.Errorf("trace for queued job status = %d, want 409", code)
	}
}

// TestStatsDerivedRatesOnTheWire checks that /api/stats still carries
// the derived rates now that they are methods, computed from the same
// counters the HTML page and /metrics read.
func TestStatsDerivedRatesOnTheWire(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Paused: true})
	trace := workloadTrace(t)
	if _, code := postTrace(t, srv.URL+"/api/jobs", trace); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if _, code := postTrace(t, srv.URL+"/api/jobs", trace); code != http.StatusOK {
		t.Fatalf("dedup submit status = %d", code)
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if rate, ok := wire["cache_hit_rate"].(float64); !ok || rate != 0.5 {
		t.Errorf("cache_hit_rate on the wire = %v, want 0.5", wire["cache_hit_rate"])
	}
	if _, ok := wire["utilization"]; !ok {
		t.Error("utilization missing from /api/stats")
	}

	// The HTML index renders the same rate and the recovered counter.
	page, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(page.Body)
	page.Body.Close()
	for _, want := range []string{"50% hit rate", "recovered 0"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("index page missing %q", want)
		}
	}
}
