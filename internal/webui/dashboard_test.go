package webui

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/obs/series"
)

// observedServer builds the full self-observing stack over one shared
// registry: instrumented LLM client, jobs service, series store with
// the given rules, and a JobServer exposing all of it. The store is not
// started; tests drive Scrape explicitly to control time.
func observedServer(t *testing.T, client llm.Client, cfg jobs.Config, rules []series.Rule) (*httptest.Server, *jobs.Service, *series.Store) {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	if client == nil {
		client = expertsim.New()
	}
	client = llm.Instrument(client, reg)
	cfg.Dir = t.TempDir()
	cfg.Client = client
	cfg.Obs = reg
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := series.New(reg, series.Options{
		Interval:  time.Second,
		Retention: 10 * time.Minute,
		Rules:     rules,
	})
	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, obs.NopLogger()).WithSeries(store).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, svc, store
}

// failingClient always errors, driving jobs to the failed state.
type failingClient struct{}

func (failingClient) Name() string { return "failing" }
func (failingClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	return llm.Completion{}, fmt.Errorf("backend unavailable")
}

// TestDashboardAndQueryAfterJob is the end-to-end acceptance path: one
// job through the real pipeline, two scrapes, then windowed series for
// queue depth and stage latency over /api/metrics/query and sparkline
// polylines with >= 2 points on /dashboard — no external processes.
func TestDashboardAndQueryAfterJob(t *testing.T) {
	srv, svc, store := observedServer(t, nil, jobs.Config{Workers: 1}, series.DefaultRules())

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=ior-hard", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || job.State != jobs.StateDone {
		t.Fatalf("job did not complete: %v (state %s, error %q)", err, job.State, job.Error)
	}

	now := time.Now()
	store.Scrape(now.Add(-6 * time.Second))
	store.Scrape(now.Add(-3 * time.Second))
	store.Scrape(now)

	// Queue depth: a gauge, present from the first scrape.
	var qr queryResponse
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_jobs_queue_depth&window=5m", &qr); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if len(qr.Series) != 1 || len(qr.Series[0].Points) < 2 {
		t.Fatalf("queue depth series = %+v, want one series with >= 2 points", qr.Series)
	}

	// Stage latency: the analyze-stage p95 derived from the pipeline
	// histogram, label-filtered through the API.
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_pipeline_stage_seconds&l.stage=analyze&l.quantile=0.95", &qr); code != http.StatusOK {
		t.Fatalf("stage query status = %d", code)
	}
	if len(qr.Series) != 1 || len(qr.Series[0].Points) < 2 {
		t.Fatalf("analyze p95 series = %+v, want one series with >= 2 points", qr.Series)
	}
	if v := qr.Series[0].Points[0].V; v <= 0 {
		t.Errorf("analyze p95 = %v, want > 0", v)
	}
	if lbl := qr.Series[0].Labels; lbl["stage"] != "analyze" || lbl["quantile"] != "0.95" {
		t.Errorf("series labels = %v", lbl)
	}

	// Step aggregation downsamples.
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_jobs_queue_depth&window=5m&step=1m&agg=max", &qr); code != http.StatusOK {
		t.Fatalf("stepped query status = %d", code)
	}
	if len(qr.Series) != 1 || len(qr.Series[0].Points) == 0 {
		t.Fatalf("stepped series = %+v", qr.Series)
	}

	// The dashboard renders sparkline polylines with >= 2 points.
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard status = %d", resp.StatusCode)
	}
	html := string(page)
	for _, want := range []string{"ION self-observation", "Queue depth", "Analyze latency p50/p95", "Alerts", "<svg"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	polylines := regexp.MustCompile(`<polyline [^>]*points="([^"]+)"`).FindAllStringSubmatch(html, -1)
	if len(polylines) == 0 {
		t.Fatal("dashboard rendered no sparkline polylines")
	}
	for _, m := range polylines {
		if pairs := strings.Fields(m[1]); len(pairs) < 2 {
			t.Errorf("polyline with %d points, want >= 2: %q", len(pairs), m[1])
		}
	}

	// /metrics exposes the store's own bookkeeping.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"ion_series_count", "ion_alerts_firing 0", "ion_go_goroutines"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFailureRatioRuleFires injects a persistently failing LLM backend,
// fails a job through the real retry path, and watches the SLO rule
// walk ok → pending → firing in /api/alerts.
func TestFailureRatioRuleFires(t *testing.T) {
	rules := series.MustRules([]byte(
		`[{"name":"JobFailureRatioHigh","expr":"ion_jobs_failure_ratio > 0.1","for":"2s","severity":"page"}]`))
	srv, svc, store := observedServer(t, failingClient{}, jobs.Config{
		Workers:     1,
		MaxAttempts: 1,
	}, rules)

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=doomed", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateFailed {
		t.Fatalf("job state = %s, want failed", job.State)
	}

	alertsAt := func(now time.Time) alertsResponse {
		t.Helper()
		store.Scrape(now)
		var ar alertsResponse
		if code := getJSON(t, srv.URL+"/api/alerts", &ar); code != http.StatusOK {
			t.Fatalf("/api/alerts status = %d", code)
		}
		if len(ar.Alerts) != 1 {
			t.Fatalf("alerts = %+v, want exactly the failure-ratio rule", ar.Alerts)
		}
		return ar
	}

	now := time.Now()
	// First breach: pending (For has not elapsed).
	ar := alertsAt(now.Add(-5 * time.Second))
	if a := ar.Alerts[0]; a.State != series.StatePending || a.Value != 1 {
		t.Fatalf("after first breach: state = %s value = %v, want pending 1", a.State, a.Value)
	}
	if ar.Firing != 0 {
		t.Errorf("firing count = %d, want 0 while pending", ar.Firing)
	}

	// Sustained past For: firing, with the journey in the history.
	ar = alertsAt(now)
	a := ar.Alerts[0]
	if a.State != series.StateFiring {
		t.Fatalf("sustained breach: state = %s, want firing", a.State)
	}
	if ar.Firing != 1 {
		t.Errorf("firing count = %d, want 1", ar.Firing)
	}
	var seq []string
	for _, tr := range a.History {
		seq = append(seq, string(tr.To))
	}
	if strings.Join(seq, " ") != "pending firing" {
		t.Errorf("history = %v, want pending then firing", seq)
	}
	if a.Rule.Severity != "page" || a.Rule.Expr != "ion_jobs_failure_ratio > 0.1" {
		t.Errorf("rule view = %+v", a.Rule)
	}

	// The firing alert is visible on the dashboard and in /metrics.
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "1 alert(s) firing") {
		t.Error("dashboard does not show the firing alert")
	}
	mresp, _ := http.Get(srv.URL + "/metrics")
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "ion_alerts_firing 1") {
		t.Error("/metrics does not show ion_alerts_firing 1")
	}
}

// TestQueryValidation exercises the query API's error paths and the
// 404 behavior when no series store is wired in.
func TestQueryValidation(t *testing.T) {
	srv, _, store := observedServer(t, nil, jobs.Config{Paused: true}, nil)
	store.Scrape(time.Now())

	for _, c := range []struct {
		url     string
		want    int
		errHint string // substring the JSON error body must carry
	}{
		{"/api/metrics/query", http.StatusBadRequest, "name"},                       // no name
		{"/api/metrics/query?name=x&window=bogus", http.StatusBadRequest, "window"}, // bad window
		{"/api/metrics/query?name=x&window=-1m", http.StatusBadRequest, "window"},   // negative window
		{"/api/metrics/query?name=x&step=-5s", http.StatusBadRequest, "step"},       // bad step
		{"/api/metrics/query?name=x&step=zzz", http.StatusBadRequest, "step"},       // unparsable step
		{"/api/metrics/query?name=x&agg=median", http.StatusBadRequest, "agg"},      // bad agg
		{"/api/metrics/query?name=x&l.=prod", http.StatusBadRequest, "label"},       // label selector with no key
		{"/api/metrics/query?name=ion_never_seen", http.StatusOK, ""},               // empty result, not an error
	} {
		resp, err := http.Get(srv.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("GET %s = %d, want %d", c.url, resp.StatusCode, c.want)
		}
		if c.want != http.StatusBadRequest {
			continue
		}
		// Every 400 carries a machine-readable JSON body naming the
		// offending parameter.
		var apiErr struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
			t.Errorf("GET %s body = %q, want JSON {\"error\": ...}", c.url, body)
			continue
		}
		if !strings.Contains(apiErr.Error, c.errHint) {
			t.Errorf("GET %s error = %q, want mention of %q", c.url, apiErr.Error, c.errHint)
		}
	}

	// An unknown-but-valid query returns an empty series array, so
	// clients can distinguish "no data" from "bad request".
	var qr queryResponse
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_never_seen", &qr); code != http.StatusOK || qr.Series == nil || len(qr.Series) != 0 {
		t.Errorf("empty query = %d %+v, want 200 with empty array", code, qr.Series)
	}

	// Without a series store the observability routes are 404.
	bare, _ := jobServer(t, jobs.Config{Paused: true})
	for _, path := range []string{"/api/metrics/query?name=x", "/api/alerts", "/dashboard"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without store = %d, want 404", path, resp.StatusCode)
		}
	}
}
