package webui

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/obs/flight"
	"ion/internal/obs/series"
)

// flightServer builds the full incident-capture stack the way ionserve
// wires it: one registry, a flight recorder whose log tee is the root
// logger, job timelines feeding the tail-sampler, and the series
// engine's firing transitions triggering Capture. The capture runs
// synchronously inside the transition callback so tests stay
// deterministic; the recorder's own locking is what production relies
// on too.
func flightServer(t *testing.T, client llm.Client, cfg jobs.Config, rules []series.Rule) (*httptest.Server, *jobs.Service, *series.Store, *flight.Recorder, *slog.Logger) {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	if client == nil {
		client = expertsim.New()
	}
	client = llm.Instrument(client, reg)

	rec, err := flight.New(flight.Options{
		Dir:      t.TempDir(),
		Registry: reg,
		Cooldown: time.Hour, // one bundle per test: the second firing must be suppressed
		Config:   map[string]string{"addr": "127.0.0.1:0", "api_key": "sk-test"},
	})
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(rec.LogHandler(slog.NewTextHandler(io.Discard, nil)))

	cfg.Dir = t.TempDir()
	cfg.Client = client
	cfg.Obs = reg
	cfg.Logger = logger
	cfg.OnTimeline = rec.OfferTimeline
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var store *series.Store
	store = series.New(reg, series.Options{
		Interval:  time.Second,
		Retention: 10 * time.Minute,
		Rules:     rules,
		Logger:    logger,
		OnTransition: func(tr series.RuleTransition) {
			if tr.To == series.StateFiring {
				rec.Capture("alert:" + tr.Rule)
			}
		},
	})
	rec.SetAlertsFunc(func() any { return store.Alerts() })

	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, logger).WithSeries(store).WithFlight(rec).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, svc, store, rec, logger
}

// TestIncidentCaptureLoop is the acceptance path for the flight
// recorder: a failing-LLM job drives the failure-ratio rule to firing,
// the transition auto-captures an incident, /api/incidents lists it,
// and the downloaded bundle holds the goroutine dump, a metric
// snapshot, the failing job's span tree, and the pre-incident log
// ring. A second rule firing in the same breath is rate-limited to the
// one bundle.
func TestIncidentCaptureLoop(t *testing.T) {
	// Two rules over the same breach: both fire on the sustained scrape,
	// so the second transition exercises the capture rate limiter.
	rules := series.MustRules([]byte(`[
	  {"name":"JobFailureRatioHigh","expr":"ion_jobs_failure_ratio > 0.1","for":"2s","severity":"page"},
	  {"name":"JobFailureRatioAwful","expr":"ion_jobs_failure_ratio > 0.5","for":"2s","severity":"page"}
	]`))
	srv, svc, store, rec, logger := flightServer(t, failingClient{}, jobs.Config{
		Workers:     1,
		MaxAttempts: 1,
	}, rules)

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=doomed", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || job.State != jobs.StateFailed {
		t.Fatalf("job = %+v err = %v, want failed", job, err)
	}
	logger.Warn("pre-incident marker", "job", job.ID)
	rec.Snapshot(time.Now())

	// Breach → pending; sustained past For → both rules fire; the first
	// transition captures, the second is rate-limited away.
	now := time.Now()
	store.Scrape(now.Add(-5 * time.Second))
	store.Scrape(now)

	var ir incidentsResponse
	if code := getJSON(t, srv.URL+"/api/incidents", &ir); code != http.StatusOK {
		t.Fatalf("/api/incidents status = %d", code)
	}
	if len(ir.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one (second firing rate-limited)", ir.Incidents)
	}
	m := ir.Incidents[0]
	if !strings.HasPrefix(m.Reason, "alert:JobFailureRatio") {
		t.Errorf("incident reason = %q, want the firing rule", m.Reason)
	}
	if m.LogRecords == 0 || m.SpanTimelines == 0 || m.MetricSnapshots == 0 {
		t.Errorf("manifest rings empty: %+v", m)
	}

	// An immediate manual capture is rate-limited too, with a JSON body.
	resp, err := http.Post(srv.URL+"/api/debug/capture", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(apiErr.Error, "rate-limited") {
		t.Errorf("debug capture during cooldown = %d %q, want 429 rate-limited", resp.StatusCode, apiErr.Error)
	}

	// Download the bundle (plain: no Accept-Encoding) and inspect it.
	files := downloadBundle(t, srv.URL+"/api/incidents/"+m.ID+"/download", false)
	if got := string(files["goroutines.txt"]); !strings.Contains(got, "goroutine") {
		t.Error("bundle goroutines.txt has no stacks")
	}
	if got := string(files["metrics.json"]); !strings.Contains(got, "ion_jobs_failure_ratio") {
		t.Error("bundle metrics.json missing the breached metric")
	}
	if got := string(files["spans.json"]); !strings.Contains(got, job.ID) || !strings.Contains(got, `"job"`) {
		t.Error("bundle spans.json missing the failing job's span tree")
	}
	if got := string(files["logs.jsonl"]); !strings.Contains(got, "pre-incident marker") || !strings.Contains(got, job.ID) {
		t.Error("bundle logs.jsonl missing the pre-incident log ring")
	}
	if got := string(files["alerts.json"]); !strings.Contains(got, "JobFailureRatioHigh") {
		t.Error("bundle alerts.json missing the rule state")
	}
	var cfg map[string]string
	json.Unmarshal(files["config.json"], &cfg)
	if cfg["api_key"] != "[redacted]" {
		t.Errorf("bundle config.json not redacted: %v", cfg)
	}
	var manifest flight.Manifest
	if err := json.Unmarshal(files["manifest.json"], &manifest); err != nil || manifest.ID != m.ID {
		t.Errorf("bundle manifest = %+v err = %v", manifest, err)
	}

	// The dashboard links the firing rule to its bundle.
	dresp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if !strings.Contains(string(page), "/api/incidents/"+m.ID+"/download") {
		t.Error("dashboard alert table does not link the incident bundle")
	}

	// The capture counters tell the same story: one captured, the
	// suppressed counter covers the rate-limited firing and the 429.
	var metrics bytes.Buffer
	mresp, _ := http.Get(srv.URL + "/metrics")
	io.Copy(&metrics, mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(metrics.String(), "ion_incidents_captured_total 1") {
		t.Error("/metrics missing ion_incidents_captured_total 1")
	}
	if !strings.Contains(metrics.String(), "ion_incidents_suppressed_total 2") {
		t.Error("/metrics missing ion_incidents_suppressed_total 2")
	}
}

// TestQueryExemplarsNameTheSlowJob proves the "which job was the p99"
// path: after a real job, the stage-latency quantile query carries
// exemplars whose trace id is the job id.
func TestQueryExemplarsNameTheSlowJob(t *testing.T) {
	srv, svc, store := observedServer(t, nil, jobs.Config{Workers: 1}, nil)

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=ior-hard", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || job.State != jobs.StateDone {
		t.Fatalf("job = %+v err = %v", job, err)
	}
	store.Scrape(time.Now())

	var qr queryResponse
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_pipeline_stage_seconds&l.stage=analyze&l.quantile=0.95", &qr); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if len(qr.Exemplars) == 0 {
		t.Fatal("quantile query returned no exemplars")
	}
	found := false
	for _, se := range qr.Exemplars {
		for _, l := range se.Labels {
			if l.Key == "stage" && l.Value != "analyze" {
				t.Errorf("exemplar series leaked through the label filter: %+v", se.Labels)
			}
		}
		for _, ex := range se.Exemplars {
			if ex.TraceID == job.ID {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no exemplar names job %s: %+v", job.ID, qr.Exemplars)
	}

	// HTTP latency histograms carry request-id exemplars from the
	// middleware.
	store.Scrape(time.Now())
	if code := getJSON(t, srv.URL+"/api/metrics/query?name=ion_http_request_seconds", &qr); code != http.StatusOK {
		t.Fatalf("http latency query status = %d", code)
	}
	if len(qr.Exemplars) == 0 || !strings.HasPrefix(qr.Exemplars[0].Exemplars[0].TraceID, "req-") {
		t.Errorf("http latency exemplars = %+v, want req-N trace ids", qr.Exemplars)
	}
}

// TestMetricsGzip round-trips /metrics through Content-Encoding: gzip
// and checks a client without gzip support still gets plain text.
func TestMetricsGzip(t *testing.T) {
	srv, _, _ := observedServer(t, nil, jobs.Config{Paused: true}, nil)

	plain := get(t, srv.URL+"/metrics", "")
	if plain.header.Get("Content-Encoding") == "gzip" {
		t.Fatal("plain request got gzip")
	}
	if !strings.Contains(string(plain.body), "# TYPE") {
		t.Fatal("plain /metrics unreadable")
	}

	zipped := get(t, srv.URL+"/metrics", "gzip")
	if zipped.header.Get("Content-Encoding") != "gzip" {
		t.Fatal("gzip-accepting request did not get gzip")
	}
	zr, err := gzip.NewReader(bytes.NewReader(zipped.body))
	if err != nil {
		t.Fatalf("body is not gzip: %v", err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if !strings.Contains(string(unzipped), "# TYPE ion_http_requests_total counter") {
		t.Errorf("gunzipped exposition missing families: %.200s", unzipped)
	}
	if len(zipped.body) >= len(unzipped) {
		t.Errorf("gzip did not shrink the exposition: %d -> %d bytes", len(unzipped), len(zipped.body))
	}
}

// TestIncidentDownloadGzip checks both download paths: gzip-accepting
// clients get the stored bytes verbatim as Content-Encoding: gzip over
// a tar stream; others get the .tar.gz file.
func TestIncidentDownloadGzip(t *testing.T) {
	srv, _, _, rec, _ := flightServer(t, nil, jobs.Config{Paused: true}, nil)
	m, err := rec.Capture("manual")
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL + "/api/incidents/" + m.ID + "/download"

	// Accept-Encoding: gzip → transparent decode yields the tar.
	resp := get(t, url, "gzip")
	if resp.header.Get("Content-Encoding") != "gzip" || resp.header.Get("Content-Type") != "application/x-tar" {
		t.Fatalf("gzip download headers = %v", resp.header)
	}
	zr, err := gzip.NewReader(bytes.NewReader(resp.body))
	if err != nil {
		t.Fatalf("download is not gzip: %v", err)
	}
	if hdr, err := tar.NewReader(zr).Next(); err != nil || hdr.Name != "manifest.json" {
		t.Fatalf("decoded download is not the bundle tar: %v %v", hdr, err)
	}

	// No Accept-Encoding → the .tar.gz as a file.
	plain := get(t, url, "")
	if ct := plain.header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("plain download Content-Type = %q", ct)
	}
	if !bytes.Equal(plain.body, resp.body) {
		t.Error("plain and gzip downloads differ; both should be the stored bytes")
	}

	files := downloadBundle(t, url, true)
	if _, ok := files["goroutines.txt"]; !ok {
		t.Error("bundle missing goroutines.txt")
	}
}

// TestImplicitStatus200 covers the middleware's implicit-200 case: the
// index handler never calls WriteHeader, and the counter must still
// label the request code=200.
func TestImplicitStatus200(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := jobs.Config{Paused: true, Dir: t.TempDir(), Client: expertsim.New(), Obs: reg}
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()
	js, err := NewJobServer(cfg.Client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, obs.NopLogger()).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", resp.StatusCode)
	}

	var expo strings.Builder
	reg.WriteTo(&expo)
	want := `ion_http_requests_total{code="200",route="GET /{$}"} 1`
	if !strings.Contains(expo.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, expo.String())
	}
}

// TestDashboardConcurrentWithScrapes renders /dashboard while the
// store scrapes concurrently; run under -race this proves the render
// path takes no unlocked reads of scrape state.
func TestDashboardConcurrentWithScrapes(t *testing.T) {
	srv, _, store := observedServer(t, nil, jobs.Config{Paused: true}, series.DefaultRules())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				store.Scrape(time.Now())
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(srv.URL + "/dashboard")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/dashboard = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestIncidentRoutesWithoutRecorder: without WithFlight the incident
// routes 404 with a JSON error body.
func TestIncidentRoutesWithoutRecorder(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Paused: true})
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/api/incidents"},
		{http.MethodGet, "/api/incidents/inc-x/download"},
		{http.MethodPost, "/api/debug/capture"},
	} {
		r, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(body.Error, "-incident-dir") {
			t.Errorf("%s %s = %d %q, want 404 pointing at -incident-dir", req.method, req.path, resp.StatusCode, body.Error)
		}
	}
}

// rawResponse is a fetched body plus headers, with no transparent
// content decoding.
type rawResponse struct {
	header http.Header
	body   []byte
}

// get fetches a URL with an explicit Accept-Encoding (empty = none),
// disabling Go's transparent gzip so tests see the wire bytes.
func get(t *testing.T, url, acceptEncoding string) rawResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{header: resp.Header, body: body}
}

// downloadBundle fetches an incident download and untars it into
// name → contents. withGzipHeader controls the Accept-Encoding path.
func downloadBundle(t *testing.T, url string, withGzipHeader bool) map[string][]byte {
	t.Helper()
	enc := ""
	if withGzipHeader {
		enc = "gzip"
	}
	resp := get(t, url, enc)
	zr, err := gzip.NewReader(bytes.NewReader(resp.body))
	if err != nil {
		t.Fatalf("download is not gzip: %v", err)
	}
	tr := tar.NewReader(zr)
	files := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("download is not a tar.gz: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		files[hdr.Name] = body
	}
	return files
}
