package webui

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ion/internal/obs"
	"ion/internal/obs/series"
)

// seriesDisabled answers the observability endpoints when no series
// store is wired in (WithSeries was not called).
func (s *JobServer) seriesDisabled(w http.ResponseWriter) bool {
	if s.series != nil {
		return false
	}
	s.errorJSON(w, http.StatusNotFound, "time-series store disabled: start ionserve with scraping enabled")
	return true
}

// queryResponse is the GET /api/metrics/query wire type.
type queryResponse struct {
	Name string `json:"name"`
	// From/To are the resolved window bounds (unix milliseconds).
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Step is the aggregation bucket in milliseconds (0 = raw points).
	Step int64 `json:"step,omitempty"`
	// Series holds one entry per matching labeled series; points are
	// [unix_ms, value] pairs, oldest first.
	Series []series.Result `json:"series"`
	// Exemplars, present when the queried metric is backed by a
	// histogram, pins concrete trace/job/request ids to observed values
	// (largest first) — the answer to "which job was the p99?".
	Exemplars []obs.SeriesExemplars `json:"exemplars,omitempty"`
}

// handleMetricsQuery serves windowed series from the in-process store:
//
//	GET /api/metrics/query?name=ion_jobs_queue_depth&window=10m
//	GET /api/metrics/query?name=ion_pipeline_stage_seconds&l.stage=analyze&l.quantile=0.95
//	GET /api/metrics/query?name=ion_llm_requests_total&window=1h&step=30s&agg=max
//
// Parameters: name (required metric name), window (duration back from
// now, default 10m), step (optional downsample bucket), agg
// (avg|max|min|sum|last, default avg), and any number of l.<key>=<val>
// exact label filters.
func (s *JobServer) handleMetricsQuery(w http.ResponseWriter, r *http.Request) {
	if s.seriesDisabled(w) {
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		s.errorJSON(w, http.StatusBadRequest, "name parameter is required (see /api/metrics/query docs)")
		return
	}
	window := 10 * time.Minute
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "window must be a positive duration like 10m, got "+strconv.Quote(v))
			return
		}
		window = d
	}
	var step time.Duration
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "step must be a positive duration like 30s, got "+strconv.Quote(v))
			return
		}
		step = d
	}
	agg := q.Get("agg")
	switch agg {
	case "", "avg", "max", "min", "sum", "last":
	default:
		s.errorJSON(w, http.StatusBadRequest, "agg must be avg, max, min, sum, or last, got "+strconv.Quote(agg))
		return
	}
	labels := map[string]string{}
	for key, vals := range q {
		if k, ok := strings.CutPrefix(key, "l."); ok {
			if k == "" {
				s.errorJSON(w, http.StatusBadRequest, "label selector needs a key: use l.<key>=<value>")
				return
			}
			if len(vals) > 0 {
				labels[k] = vals[0]
			}
		}
	}

	now := time.Now()
	from := now.Add(-window)
	results := s.series.Query(series.Query{
		Name: name, Labels: labels, From: from, To: now, Step: step, Agg: agg,
	})
	if results == nil {
		results = []series.Result{}
	}
	s.writeJSON(w, http.StatusOK, queryResponse{
		Name: name, From: from.UnixMilli(), To: now.UnixMilli(),
		Step: step.Milliseconds(), Series: results,
		Exemplars: s.queryExemplars(name, labels),
	})
}

// queryExemplars resolves the exemplars relevant to a query: the
// queried name is mapped back to its histogram family (quantile series
// carry the family name; _count/_sum are suffixed), the family's
// exemplars fetched from the registry, and series filtered by the
// query's label selector (the synthetic quantile label aside, which
// exemplar series do not carry).
func (s *JobServer) queryExemplars(name string, labels map[string]string) []obs.SeriesExemplars {
	family := strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")
	all := s.obs.Exemplars(family)
	if len(all) == 0 {
		return nil
	}
	var out []obs.SeriesExemplars
	for _, se := range all {
		match := true
		for k, v := range labels {
			if k == "quantile" {
				continue
			}
			found := false
			for _, l := range se.Labels {
				if l.Key == k {
					found = l.Value == v
					break
				}
			}
			if !found {
				match = false
				break
			}
		}
		if match {
			out = append(out, se)
		}
	}
	return out
}

// alertsResponse is the GET /api/alerts wire type.
type alertsResponse struct {
	Firing int                  `json:"firing"`
	Alerts []series.AlertStatus `json:"alerts"`
}

// handleAlerts serves the rule engine's alert states and transition
// history.
func (s *JobServer) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.seriesDisabled(w) {
		return
	}
	alerts := s.series.Alerts()
	firing := 0
	for _, a := range alerts {
		if a.State == series.StateFiring {
			firing++
		}
	}
	s.writeJSON(w, http.StatusOK, alertsResponse{Firing: firing, Alerts: alerts})
}

// dashPanel is one dashboard chart: a title, a unit hint for the value
// readout, and the queries whose series it plots.
type dashPanel struct {
	title   string
	unit    string // "", "%", "s", "B", "/s"
	queries []series.Query
}

// dashboardPanels is the fixed panel layout: service pressure on top,
// pipeline latency and backend health in the middle, process health at
// the bottom. Every query resolves against the same store the alert
// rules read.
func dashboardPanels() []dashPanel {
	q := func(name string, labels map[string]string) series.Query {
		return series.Query{Name: name, Labels: labels}
	}
	return []dashPanel{
		{title: "Queue depth", queries: []series.Query{q("ion_jobs_queue_depth", nil)}},
		{title: "Worker utilization", unit: "%", queries: []series.Query{q("ion_jobs_utilization", nil)}},
		{title: "Job failure ratio", unit: "%", queries: []series.Query{q("ion_jobs_failure_ratio", nil)}},
		{title: "Analyze latency p50/p95", unit: "s", queries: []series.Query{
			q("ion_pipeline_stage_seconds", map[string]string{"stage": "analyze", "quantile": "0.5"}),
			q("ion_pipeline_stage_seconds", map[string]string{"stage": "analyze", "quantile": "0.95"}),
		}},
		{title: "LLM requests", unit: "/s", queries: []series.Query{q("ion_llm_requests_total", nil)}},
		{title: "LLM latency p95", unit: "s", queries: []series.Query{
			q("ion_llm_request_seconds", map[string]string{"quantile": "0.95"}),
		}},
		{title: "Extract cache hit ratio", unit: "%", queries: []series.Query{q("ion_extract_cache_hit_ratio", nil)}},
		{title: "Semantic cache hit ratio", unit: "%", queries: []series.Query{q("ion_semcache_hit_ratio", nil)}},
		{title: "HTTP requests", unit: "/s", queries: []series.Query{q("ion_http_requests_total", nil)}},
		{title: "Heap", unit: "B", queries: []series.Query{q("ion_go_heap_bytes", nil)}},
		{title: "Goroutines", queries: []series.Query{q("ion_go_goroutines", nil)}},
		{title: "GC pause", unit: "s/s", queries: []series.Query{q("ion_go_gc_pause_seconds_total", nil)}},
		{title: "Hot function max Δshare", unit: "%", queries: []series.Query{q("ion_prof_max_share_delta", nil)}},
		{title: "Alerts firing", queries: []series.Query{q("ion_alerts_firing", nil)}},
	}
}

// sparkColors cycles through the polyline strokes of a panel.
var sparkColors = []string{"#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2"}

// maxLinesPerPanel bounds how many series one panel plots.
const maxLinesPerPanel = 6

// handleDashboard renders the live self-observation page: inline-SVG
// sparklines over the in-process series store plus the alert table.
// Pure server-rendered HTML with a meta refresh — no JavaScript
// frameworks, no external network.
func (s *JobServer) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if s.seriesDisabled(w) {
		return
	}
	now := time.Now()
	window := 10 * time.Minute
	if ret := s.series.Retention(); ret < window {
		window = ret
	}
	from := now.Add(-window)
	refresh := int(s.series.Interval() / time.Second)
	if refresh < 1 {
		refresh = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, dashboardHead, refresh)

	alerts := s.series.Alerts()
	firing := 0
	for _, a := range alerts {
		if a.State == series.StateFiring {
			firing++
		}
	}
	st := s.svc.Stats()
	fmt.Fprintf(&b, `<p class="meta">%s</p>`, html.EscapeString(buildInfo().String()))
	fmt.Fprintf(&b, `<p class="meta">window %s &middot; refresh %ds &middot; %d series retained &middot; queue %d/%d &middot; workers busy %d/%d &middot; `,
		window, refresh, s.series.SeriesCount(), st.QueueDepth, st.QueueCapacity, st.Busy, st.Workers)
	if firing > 0 {
		fmt.Fprintf(&b, `<strong class="firing">%d alert(s) firing</strong>`, firing)
	} else {
		b.WriteString(`<span class="ok">no alerts firing</span>`)
	}
	// Watchdog lights: how fresh the scrape loop and the profiler are.
	fmt.Fprintf(&b, ` &middot; %s`, staleSpan("scraped", s.series.LastScrape(), 2*s.series.Interval()))
	if s.prof != nil {
		fmt.Fprintf(&b, ` &middot; %s`, staleSpan("profile window", s.prof.LastWindowTime(), 2*s.prof.Interval()))
	}
	b.WriteString(` &middot; <a href="/api/alerts">alerts JSON</a>`)
	if s.flight != nil {
		fmt.Fprintf(&b, ` &middot; <a href="/api/incidents">%d incident(s)</a>`, len(s.flight.List()))
	}
	if s.prof != nil {
		b.WriteString(` &middot; <a href="/dashboard/profile">profiling</a>`)
	}
	b.WriteString(` &middot; <a href="/metrics">metrics</a> &middot; <a href="/">jobs</a></p>`)

	b.WriteString(`<div class="grid">`)
	for _, p := range dashboardPanels() {
		s.renderPanel(&b, p, from, now)
	}
	b.WriteString(`</div>`)

	renderAlertTable(&b, alerts, s.incidentsByRule())
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// renderPanel draws one chart: every matching series as a polyline,
// with a shared y-scale, min/max/last annotations, and a legend.
func (s *JobServer) renderPanel(b *strings.Builder, p dashPanel, from, to time.Time) {
	type line struct {
		legend string
		pts    []series.Point
	}
	var lines []line
	for _, q := range p.queries {
		q.From, q.To = from, to
		for _, res := range s.series.Query(q) {
			if len(lines) >= maxLinesPerPanel {
				break
			}
			lines = append(lines, line{legend: legendFor(res, len(p.queries) > 1 || len(lines) > 0), pts: res.Points})
		}
	}

	fmt.Fprintf(b, `<div class="panel"><h2>%s</h2>`, html.EscapeString(p.title))
	if len(lines) == 0 {
		b.WriteString(`<p class="nodata">no data yet</p></div>`)
		return
	}

	// Shared y-scale across the panel's lines.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		for _, pt := range l.pts {
			lo = math.Min(lo, pt.V)
			hi = math.Max(hi, pt.V)
		}
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}

	const width, height, pad = 260, 56, 3
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	fromMs, toMs := from.UnixMilli(), to.UnixMilli()
	for i, l := range lines {
		if len(l.pts) < 2 {
			continue
		}
		var path strings.Builder
		for j, pt := range l.pts {
			x := pad + float64(width-2*pad)*float64(pt.T-fromMs)/float64(toMs-fromMs)
			y := float64(height-pad) - float64(height-2*pad)*(pt.V-lo)/(hi-lo)
			if j > 0 {
				path.WriteByte(' ')
			}
			fmt.Fprintf(&path, "%.1f,%.1f", x, y)
		}
		fmt.Fprintf(b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
			sparkColors[i%len(sparkColors)], path.String())
	}
	b.WriteString(`</svg>`)

	last := lines[0].pts[len(lines[0].pts)-1].V
	fmt.Fprintf(b, `<p class="readout"><strong>%s</strong> <span class="range">min %s &middot; max %s</span></p>`,
		formatUnit(last, p.unit), formatUnit(lo, p.unit), formatUnit(hi, p.unit))
	if len(lines) > 1 || lines[0].legend != "" {
		b.WriteString(`<p class="legend">`)
		for i, l := range lines {
			if i > 0 {
				b.WriteString(" &middot; ")
			}
			fmt.Fprintf(b, `<span style="color:%s">%s</span>`,
				sparkColors[i%len(sparkColors)], html.EscapeString(l.legend))
		}
		b.WriteString(`</p>`)
	}
	b.WriteString(`</div>`)
}

// legendFor labels one plotted series; single-series panels with no
// interesting labels get no legend.
func legendFor(res series.Result, want bool) string {
	if !want || len(res.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(res.Labels))
	for k := range res.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+res.Labels[k])
	}
	return strings.Join(parts, " ")
}

// formatUnit renders a value with its panel unit: percentages scale
// ×100, byte values get binary prefixes, everything else is %g.
func formatUnit(v float64, unit string) string {
	switch unit {
	case "%":
		return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
	case "B":
		abs := math.Abs(v)
		switch {
		case abs >= 1<<30:
			return strconv.FormatFloat(v/(1<<30), 'f', 2, 64) + " GiB"
		case abs >= 1<<20:
			return strconv.FormatFloat(v/(1<<20), 'f', 1, 64) + " MiB"
		case abs >= 1<<10:
			return strconv.FormatFloat(v/(1<<10), 'f', 1, 64) + " KiB"
		}
		return strconv.FormatFloat(v, 'f', 0, 64) + " B"
	case "":
		return strconv.FormatFloat(v, 'g', 4, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64) + " " + unit
	}
}

// incidentsByRule maps each alert rule to its most recent incident
// bundle id (captures triggered by rule transitions carry the reason
// "alert:<rule>"). Nil when no recorder is wired in.
func (s *JobServer) incidentsByRule() map[string]string {
	if s.flight == nil {
		return nil
	}
	out := map[string]string{}
	for _, m := range s.flight.List() { // newest first: first match wins
		if rule, ok := strings.CutPrefix(m.Reason, "alert:"); ok {
			if _, seen := out[rule]; !seen {
				out[rule] = m.ID
			}
		}
	}
	return out
}

// renderAlertTable writes the alert rules and their lifecycle states,
// linking each rule that has captured an incident to its bundle.
func renderAlertTable(b *strings.Builder, alerts []series.AlertStatus, incidents map[string]string) {
	b.WriteString(`<h2>Alerts</h2>`)
	if len(alerts) == 0 {
		b.WriteString(`<p class="nodata">no alert rules configured</p>`)
		return
	}
	b.WriteString(`<table><tr><th>rule</th><th>state</th><th>severity</th><th>expr</th><th>for</th><th>value</th><th>since</th><th>incident</th></tr>`)
	for _, a := range alerts {
		cls := "state-" + string(a.State)
		since := ""
		if !a.Since.IsZero() {
			since = a.Since.UTC().Format(time.RFC3339)
		}
		value := strconv.FormatFloat(a.Value, 'g', 4, 64)
		if a.NoData {
			value = "no data"
		}
		incident := ""
		if id, ok := incidents[a.Rule.Name]; ok {
			incident = fmt.Sprintf(`<a href="/api/incidents/%s/download">bundle</a>`, html.EscapeString(id))
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td class="%s">%s</td><td>%s</td><td><code>%s</code></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>`,
			html.EscapeString(a.Rule.Name), cls, html.EscapeString(string(a.State)),
			html.EscapeString(a.Rule.Severity), html.EscapeString(a.Rule.Expr),
			html.EscapeString(a.Rule.For), value, since, incident)
	}
	b.WriteString(`</table>`)
}

const dashboardHead = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — live dashboard</title>
<meta http-equiv="refresh" content="%d">
<style>
body { font-family: system-ui, sans-serif; max-width: 64rem; margin: 2rem auto; color: #111 }
h1 { margin-bottom: 0.25rem }
.meta { color: #555 }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(270px, 1fr)); gap: 1rem }
.panel { border: 1px solid #ddd; border-radius: 6px; padding: 0.5rem 0.75rem }
.panel h2 { font-size: 0.9rem; margin: 0 0 0.25rem }
.panel svg { width: 100%%; height: 56px; background: #fafafa }
.readout { margin: 0.25rem 0 0; font-size: 0.9rem }
.range { color: #777; font-size: 0.8rem }
.legend { margin: 0.1rem 0 0; font-size: 0.75rem }
.nodata { color: #999; font-style: italic }
.ok { color: #059669 }
.stale { color: #d97706; font-weight: 600 }
.firing, .state-firing { color: #dc2626; font-weight: 600 }
.state-pending { color: #d97706 }
.state-resolved { color: #2563eb }
table { border-collapse: collapse; width: 100%%; margin-top: 0.5rem; font-size: 0.85rem }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left }
</style></head>
<body>
<h1>ION self-observation</h1>
`
