package webui

import (
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ion/internal/obs"
	"ion/internal/obs/prof"
)

// buildInfo is resolved once per process: it feeds the dashboard
// headers and never changes after link time.
var buildInfo = sync.OnceValue(obs.GetBuildInfo)

// WithProf wires the continuous profiler behind /api/prof/windows,
// /api/prof/flamegraph, and /dashboard/profile, and returns the server
// for chaining. Without it those routes answer 404. The caller owns the
// profiler's capture loop (Start/Stop).
func (s *JobServer) WithProf(p *prof.Profiler) *JobServer {
	s.prof = p
	return s
}

// profDisabled answers the profiling endpoints when no profiler is
// wired in (WithProf was not called).
func (s *JobServer) profDisabled(w http.ResponseWriter) bool {
	if s.prof != nil {
		return false
	}
	s.errorJSON(w, http.StatusNotFound, "continuous profiler disabled: start ionserve with -prof-interval > 0")
	return true
}

// profWindowsResponse is the GET /api/prof/windows wire type.
type profWindowsResponse struct {
	// Interval/Window echo the profiler's duty cycle.
	Interval string `json:"interval"`
	Window   string `json:"window"`
	// LastWindow is when the most recent window of any kind completed.
	LastWindow time.Time `json:"last_window,omitempty"`
	// HotFunctions is the latest CPU window's top functions with their
	// baseline shares and deltas, hottest first.
	HotFunctions []prof.HotFunc `json:"hot_functions"`
	// Windows lists retained windows newest first. Folded stacks are
	// elided (fetch a window's flamegraph for those); the function
	// tables are included.
	Windows []prof.Window `json:"windows"`
}

// handleProfWindows serves the decoded profile windows:
//
//	GET /api/prof/windows?kind=cpu&limit=20
//
// Parameters: kind filters by profile family (cpu, heap, goroutine,
// block, mutex; empty matches all), limit bounds the count (default
// 50).
func (s *JobServer) handleProfWindows(w http.ResponseWriter, r *http.Request) {
	if s.profDisabled(w) {
		return
	}
	q := r.URL.Query()
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer, got "+strconv.Quote(v))
			return
		}
		limit = n
	}
	wins := s.prof.Store().Windows(q.Get("kind"), limit)
	for i := range wins {
		wins[i].Stacks = nil
	}
	if wins == nil {
		wins = []prof.Window{}
	}
	hot := s.prof.HotFunctions()
	if hot == nil {
		hot = []prof.HotFunc{}
	}
	s.writeJSON(w, http.StatusOK, profWindowsResponse{
		Interval:     s.prof.Interval().String(),
		Window:       s.prof.Window().String(),
		LastWindow:   s.prof.LastWindowTime(),
		HotFunctions: hot,
		Windows:      wins,
	})
}

// handleProfFlamegraph renders one window as a self-contained SVG
// flamegraph:
//
//	GET /api/prof/flamegraph?window=w-cpu-1754560000000
//	GET /api/prof/flamegraph            (latest CPU window)
//	GET /api/prof/flamegraph?kind=heap  (latest window of a kind)
func (s *JobServer) handleProfFlamegraph(w http.ResponseWriter, r *http.Request) {
	if s.profDisabled(w) {
		return
	}
	q := r.URL.Query()
	var win prof.Window
	var ok bool
	if id := q.Get("window"); id != "" {
		win, ok = s.prof.Store().Get(id)
		if !ok {
			s.errorJSON(w, http.StatusNotFound, "no profile window "+strconv.Quote(id))
			return
		}
	} else {
		kind := q.Get("kind")
		if kind == "" {
			kind = prof.KindCPU
		}
		win, ok = s.prof.Store().Latest(kind)
		if !ok {
			s.errorJSON(w, http.StatusNotFound, "no "+kind+" window captured yet")
			return
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml; charset=utf-8")
	w.Write(prof.FlamegraphSVG(win))
}

// handleProfileDashboard renders /dashboard/profile: the hot-function
// table with baseline deltas, the latest CPU flamegraph inline, and the
// retained window list — zero JavaScript, same discipline as
// /dashboard.
func (s *JobServer) handleProfileDashboard(w http.ResponseWriter, r *http.Request) {
	if s.profDisabled(w) {
		return
	}
	refresh := int(s.prof.Interval() / time.Second)
	if refresh < 5 {
		refresh = 5
	}
	bi := buildInfo()

	var b strings.Builder
	fmt.Fprintf(&b, profileHead, refresh)
	fmt.Fprintf(&b, `<p class="meta">%s &middot; duty cycle %s of %s &middot; %s`,
		html.EscapeString(bi.String()), s.prof.Window(), s.prof.Interval(),
		staleSpan("last window", s.prof.LastWindowTime(), 2*s.prof.Interval()))
	b.WriteString(` &middot; <a href="/api/prof/windows">windows JSON</a> &middot; <a href="/dashboard">dashboard</a> &middot; <a href="/">jobs</a></p>`)

	// Hot functions vs the trailing baseline.
	hot := s.prof.HotFunctions()
	b.WriteString(`<h2>Hot functions (latest CPU window vs trailing baseline)</h2>`)
	if len(hot) == 0 {
		b.WriteString(`<p class="nodata">no CPU window decoded yet — the first lands after one duty cycle</p>`)
	} else {
		b.WriteString(`<table><tr><th>function</th><th>share</th><th>baseline</th><th>delta</th></tr>`)
		for i, h := range hot {
			if i >= 15 {
				break
			}
			cls := ""
			switch {
			case h.Delta > 0.10:
				cls = ` class="regressed"`
			case h.Delta < -0.10:
				cls = ` class="improved"`
			}
			fmt.Fprintf(&b, `<tr><td><code>%s</code></td><td>%.1f%%</td><td>%.1f%%</td><td%s>%+.1f%%</td></tr>`,
				html.EscapeString(h.Name), 100*h.Share, 100*h.Baseline, cls, 100*h.Delta)
		}
		b.WriteString(`</table>`)
	}

	// Latest CPU flamegraph, inline.
	if win, ok := s.prof.Store().Latest(prof.KindCPU); ok {
		b.WriteString(`<h2>CPU flamegraph (latest window)</h2><div class="flame">`)
		b.Write(prof.FlamegraphSVG(win))
		b.WriteString(`</div>`)
	}

	// The retained windows, newest first.
	wins := s.prof.Store().Windows("", 40)
	b.WriteString(`<h2>Profile windows</h2>`)
	if len(wins) == 0 {
		b.WriteString(`<p class="nodata">no windows retained yet</p>`)
	} else {
		b.WriteString(`<table><tr><th>window</th><th>kind</th><th>captured</th><th>duration</th><th>total</th><th>functions</th><th></th></tr>`)
		for _, win := range wins {
			dur := ""
			if d := win.DurationSeconds(); d > 0 {
				dur = strconv.FormatFloat(d, 'f', 1, 64) + "s"
			}
			fmt.Fprintf(&b, `<tr><td><code>%s</code></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td><a href="/api/prof/flamegraph?window=%s">flamegraph</a></td></tr>`,
				html.EscapeString(win.ID), html.EscapeString(win.Kind),
				win.End.UTC().Format(time.RFC3339), dur,
				html.EscapeString(formatWindowTotal(win)), len(win.Functions),
				html.EscapeString(win.ID))
		}
		b.WriteString(`</table>`)
	}
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// formatWindowTotal renders a window's sample total in its unit.
func formatWindowTotal(w prof.Window) string {
	switch w.Unit {
	case "nanoseconds":
		return strconv.FormatFloat(float64(w.Total)/1e9, 'f', 2, 64) + "s"
	case "bytes":
		return formatUnit(float64(w.Total), "B")
	default:
		return strconv.FormatInt(w.Total, 10)
	}
}

// staleSpan renders "label 12s ago", wrapped in the amber .stale class
// once the age passes the limit (two cadence intervals): the dashboard
// equivalent of a watchdog light. A zero stamp renders as "never".
func staleSpan(label string, at time.Time, limit time.Duration) string {
	if at.IsZero() {
		return fmt.Sprintf(`<span class="stale">%s: never</span>`, html.EscapeString(label))
	}
	age := time.Since(at)
	text := fmt.Sprintf("%s %s ago", html.EscapeString(label), formatAge(age))
	if limit > 0 && age > limit {
		return `<span class="stale">` + text + `</span>`
	}
	return text
}

// formatAge renders a duration at dashboard granularity.
func formatAge(d time.Duration) string {
	switch {
	case d < time.Second:
		return "<1s"
	case d < time.Minute:
		return strconv.Itoa(int(d/time.Second)) + "s"
	case d < time.Hour:
		return strconv.Itoa(int(d/time.Minute)) + "m"
	default:
		return strconv.Itoa(int(d/time.Hour)) + "h"
	}
}

const profileHead = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — continuous profiling</title>
<meta http-equiv="refresh" content="%d">
<style>
body { font-family: system-ui, sans-serif; max-width: 76rem; margin: 2rem auto; color: #111 }
h1 { margin-bottom: 0.25rem }
h2 { font-size: 1rem; margin: 1.5rem 0 0.5rem }
.meta { color: #555 }
.stale { color: #d97706; font-weight: 600 }
.nodata { color: #999; font-style: italic }
.regressed { color: #dc2626; font-weight: 600 }
.improved { color: #059669 }
.flame svg { width: 100%%; height: auto; border: 1px solid #ddd; border-radius: 6px }
table { border-collapse: collapse; width: 100%%; font-size: 0.85rem }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left }
</style></head>
<body>
<h1>ION continuous profiling</h1>
`
