package webui

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/obs/prof"
	"ion/internal/obs/series"
)

// profServer builds a paused jobs stack with a continuous profiler
// wired in. The profiler loop is not started; tests inject windows via
// AddWindow to control time.
func profServer(t *testing.T) (*httptest.Server, *prof.Profiler, *series.Store) {
	t.Helper()
	reg := obs.NewRegistry()
	client := llm.Instrument(llm.Client(expertsim.New()), reg)
	svc, err := jobs.Open(jobs.Config{Dir: t.TempDir(), Client: client, Obs: reg, Paused: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := prof.OpenStore(prof.StoreOptions{Path: filepath.Join(t.TempDir(), "windows.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	p, err := prof.New(prof.Options{Store: st, Registry: reg, Interval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	store := series.New(reg, series.Options{Interval: time.Second, Rules: series.DefaultRules()})
	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, obs.NopLogger()).WithSeries(store).WithProf(p).Handler())
	t.Cleanup(func() {
		srv.Close()
		st.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, p, store
}

// webTestWindow is a decoded CPU window with stacks, as the profiler
// would store it.
func webTestWindow(n int, end time.Time) prof.Window {
	return prof.Window{
		ID:    fmt.Sprintf("w-cpu-%d", n),
		Kind:  prof.KindCPU,
		Start: end.Add(-10 * time.Second),
		End:   end,
		Unit:  "nanoseconds",
		Total: 1000,
		Functions: []prof.FuncStat{
			{Name: "ion.ParseText", Flat: 700, Cum: 900, FlatShare: 0.7, CumShare: 0.9},
			{Name: "ion.Serve", Flat: 300, Cum: 1000, FlatShare: 0.3, CumShare: 1.0},
		},
		Stacks: []prof.Stack{
			{Frames: []string{"ion.Serve", "ion.ParseText"}, Value: 700},
			{Frames: []string{"ion.Serve"}, Value: 300},
		},
		KeptValue: 1000,
	}
}

func TestProfWindowsAndFlamegraphAPI(t *testing.T) {
	srv, p, _ := profServer(t)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if err := p.AddWindow(webTestWindow(i, now.Add(time.Duration(i-3)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}

	var wr profWindowsResponse
	if code := getJSON(t, srv.URL+"/api/prof/windows", &wr); code != http.StatusOK {
		t.Fatalf("/api/prof/windows status = %d", code)
	}
	if len(wr.Windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(wr.Windows))
	}
	if wr.Windows[0].ID != "w-cpu-2" {
		t.Fatalf("newest first expected, got %s", wr.Windows[0].ID)
	}
	if wr.Windows[0].Stacks != nil {
		t.Fatal("list response should elide folded stacks")
	}
	if len(wr.Windows[0].Functions) != 2 || wr.Windows[0].Functions[0].Name != "ion.ParseText" {
		t.Fatalf("function table lost: %+v", wr.Windows[0].Functions)
	}
	if len(wr.HotFunctions) == 0 || wr.HotFunctions[0].Name != "ion.ParseText" {
		t.Fatalf("hot functions = %+v", wr.HotFunctions)
	}
	if wr.Interval != "1m0s" || wr.LastWindow.IsZero() {
		t.Fatalf("interval = %q, last window = %v", wr.Interval, wr.LastWindow)
	}

	// Limit and kind filters.
	if code := getJSON(t, srv.URL+"/api/prof/windows?kind=cpu&limit=1", &wr); code != http.StatusOK || len(wr.Windows) != 1 {
		t.Fatalf("limited query = %d with %d windows, want 200 with 1", code, len(wr.Windows))
	}
	if code := getJSON(t, srv.URL+"/api/prof/windows?kind=heap", &wr); code != http.StatusOK || len(wr.Windows) != 0 {
		t.Fatalf("heap filter = %d with %d windows, want 200 with 0", code, len(wr.Windows))
	}
	resp, _ := http.Get(srv.URL + "/api/prof/windows?limit=bogus")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", resp.StatusCode)
	}

	// Flamegraph by id, and the latest-CPU default.
	for _, url := range []string{
		srv.URL + "/api/prof/flamegraph?window=w-cpu-1",
		srv.URL + "/api/prof/flamegraph",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "image/svg+xml") {
			t.Fatalf("flamegraph content type = %q", ct)
		}
		dec := xml.NewDecoder(strings.NewReader(string(body)))
		for {
			if _, err := dec.Token(); err != nil {
				if err.Error() == "EOF" {
					break
				}
				t.Fatalf("flamegraph is not well-formed XML: %v", err)
			}
		}
		if !strings.Contains(string(body), "ion.ParseText") {
			t.Fatal("flamegraph missing the hot frame")
		}
	}
	resp, _ = http.Get(srv.URL + "/api/prof/flamegraph?window=nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown window status = %d, want 404", resp.StatusCode)
	}
}

func TestProfileDashboardPage(t *testing.T) {
	srv, p, _ := profServer(t)
	// A stale window: older than twice the interval, so the watchdog
	// light must be amber.
	if err := p.AddWindow(webTestWindow(0, time.Now().Add(-10*time.Minute))); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/dashboard/profile")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard/profile status = %d", resp.StatusCode)
	}
	html := string(page)
	for _, want := range []string{
		"ION continuous profiling",
		obs.GetBuildInfo().Version, // build identity in the header
		"Hot functions",
		"ion.ParseText",
		"CPU flamegraph",
		"<svg",
		"Profile windows",
		"w-cpu-0",
		`class="stale"`, // 10m-old window on a 1m cadence
		"/api/prof/flamegraph?window=w-cpu-0",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("/dashboard/profile missing %q", want)
		}
	}
}

// TestDashboardStalenessAndBuildInfo: the main dashboard shows the
// build identity and the scrape/profile watchdog lights.
func TestDashboardStalenessAndBuildInfo(t *testing.T) {
	srv, p, store := profServer(t)
	p.AddWindow(webTestWindow(0, time.Now()))
	store.Scrape(time.Now())

	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	html := string(page)
	for _, want := range []string{
		obs.GetBuildInfo().Version,
		"scraped",
		"profile window",
		`<a href="/dashboard/profile">profiling</a>`,
	} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Fresh scrape and window: no amber.
	if strings.Contains(html, `class="stale"`) {
		t.Error("dashboard stale indicator lit despite fresh scrape and window")
	}
}

// TestProfDisabled404: without WithProf the profiling routes answer 404
// with a JSON error.
func TestProfDisabled404(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Paused: true})
	for _, path := range []string{"/api/prof/windows", "/api/prof/flamegraph", "/dashboard/profile"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without profiler = %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "profiler disabled") {
			t.Errorf("GET %s error body = %q", path, body)
		}
	}
}
