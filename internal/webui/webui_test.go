package webui

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/testutil"
)

func server(t *testing.T) *Server {
	t.Helper()
	out, _, err := testutil.Extracted("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	client := expertsim.New()
	fw, err := ion.New(ion.Config{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(client, rep)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(server(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"ION — I/O Navigator diagnosis",
		"Small I/O Operations",
		`class="badge detected"`,
		"Analysis steps",
		"Analysis code",
		"Conclusion",
		"chat-form", // the message window
		"Global I/O Diagnosis Summary",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Unknown paths 404.
	resp2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestReportAPI(t *testing.T) {
	srv := httptest.NewServer(server(t).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep ion.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Trace != "ior-hard" || len(rep.Diagnoses) == 0 {
		t.Errorf("report JSON malformed: trace=%q diagnoses=%d", rep.Trace, len(rep.Diagnoses))
	}
}

func TestAskAPI(t *testing.T) {
	srv := httptest.NewServer(server(t).Handler())
	defer srv.Close()
	body, err := json.Marshal(map[string]string{"question": "why is the small I/O a problem?"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ar askResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ar.Answer, "Small I/O") {
		t.Errorf("answer off-topic: %s", ar.Answer)
	}
}

func TestAskAPIValidation(t *testing.T) {
	srv := httptest.NewServer(server(t).Handler())
	defer srv.Close()
	// Wrong method.
	resp, err := http.Get(srv.URL + "/api/ask")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ask status = %d", resp.StatusCode)
	}
	// Empty question.
	resp2, err := http.Post(srv.URL+"/api/ask", "application/json", strings.NewReader(`{"question":"  "}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question status = %d", resp2.StatusCode)
	}
	// Garbage body.
	resp3, err := http.Post(srv.URL+"/api/ask", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status = %d", resp3.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}
