package webui

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/obs/flight"
	"ion/internal/obs/series"
	"ion/internal/quality"
)

// qualityServer builds the drift-detection stack the way ionserve
// wires it: a scorecard store fed by the jobs service, the series
// engine evaluating the drift rules, firing transitions capturing
// flight bundles that embed the scorecard tail, and the quality routes
// mounted on the server.
func qualityServer(t *testing.T, client llm.Client, cfg jobs.Config, rules []series.Rule) (*httptest.Server, *jobs.Service, *series.Store, *quality.Store) {
	t.Helper()
	reg := obs.NewRegistry()
	if client == nil {
		client = expertsim.New()
	}

	qstore, err := quality.Open(quality.Options{Path: filepath.Join(t.TempDir(), "quality.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { qstore.Close() })

	rec, err := flight.New(flight.Options{
		Dir:      t.TempDir(),
		Registry: reg,
		Cooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetQualityScorecardsFn(func() any { return qstore.Tail(50) })
	logger := slog.New(rec.LogHandler(slog.NewTextHandler(io.Discard, nil)))

	cfg.Dir = t.TempDir()
	cfg.Client = client
	cfg.Obs = reg
	cfg.Logger = logger
	cfg.Quality = qstore
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	store := series.New(reg, series.Options{
		Interval:  time.Second,
		Retention: 10 * time.Minute,
		Rules:     rules,
		Logger:    logger,
		OnTransition: func(tr series.RuleTransition) {
			if tr.To == series.StateFiring {
				rec.Capture("alert:" + tr.Rule)
			}
		},
	})
	rec.SetAlertsFunc(func() any { return store.Alerts() })

	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.WithObs(reg, logger).WithSeries(store).WithFlight(rec).WithQuality(qstore).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, svc, store, qstore
}

// TestVerdictDriftIncident is the observatory's end-to-end acceptance
// path: an LLM whose verdicts contradict the deterministic baseline
// (expertsim with every verdict forced to not-detected) diagnoses a
// pathological workload, the scorecard journals agreement < 1, the
// agreement gauge drops, VerdictDriftHigh walks pending → firing, the
// firing transition captures an incident bundle that embeds the
// scorecards, and every surface — /api/quality, /api/alerts, the job
// page banner, /dashboard/quality — tells the same story.
func TestVerdictDriftIncident(t *testing.T) {
	rules := series.MustRules([]byte(`[
	  {"name":"VerdictDriftHigh","expr":"min(ion_verdict_agreement_ratio) < 0.6","for":"2s","severity":"page"}
	]`))
	srv, svc, store, qstore := qualityServer(t,
		&expertsim.Contradictor{Inner: expertsim.New()},
		jobs.Config{Workers: 1, QualityMinSamples: 1}, rules)

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=ior-hard", workloadTrace(t))
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || job.State != jobs.StateDone {
		t.Fatalf("job = %+v err = %v, want done", job, err)
	}

	card, ok := qstore.Get(job.ID)
	if !ok || card.Agreement >= 1 {
		t.Fatalf("scorecard = %+v ok=%v, want persisted with agreement < 1", card, ok)
	}

	// Breach → pending on the first scrape, firing once sustained past For.
	now := time.Now()
	store.Scrape(now.Add(-5 * time.Second))
	var ar alertsResponse
	if code := getJSON(t, srv.URL+"/api/alerts", &ar); code != http.StatusOK {
		t.Fatalf("/api/alerts status = %d", code)
	}
	if st := alertState(ar, "VerdictDriftHigh"); st != string(series.StatePending) {
		t.Fatalf("after first breach scrape VerdictDriftHigh = %q, want pending", st)
	}
	store.Scrape(now)
	if code := getJSON(t, srv.URL+"/api/alerts", &ar); code != http.StatusOK {
		t.Fatalf("/api/alerts status = %d", code)
	}
	if st := alertState(ar, "VerdictDriftHigh"); st != string(series.StateFiring) {
		t.Fatalf("after sustained breach VerdictDriftHigh = %q, want firing", st)
	}

	// The firing transition captured a bundle embedding the scorecards.
	var ir incidentsResponse
	if code := getJSON(t, srv.URL+"/api/incidents", &ir); code != http.StatusOK {
		t.Fatalf("/api/incidents status = %d", code)
	}
	if len(ir.Incidents) != 1 || ir.Incidents[0].Reason != "alert:VerdictDriftHigh" {
		t.Fatalf("incidents = %+v, want one VerdictDriftHigh capture", ir.Incidents)
	}
	files := downloadBundle(t, srv.URL+"/api/incidents/"+ir.Incidents[0].ID+"/download", false)
	cardsJSON, ok := files["quality_scorecards.json"]
	if !ok {
		t.Fatal("bundle is missing quality_scorecards.json")
	}
	var bundled []quality.Scorecard
	if err := json.Unmarshal(cardsJSON, &bundled); err != nil {
		t.Fatalf("bundle quality_scorecards.json does not parse: %v", err)
	}
	if len(bundled) != 1 || bundled[0].JobID != job.ID || bundled[0].Agreement >= 1 {
		t.Fatalf("bundled scorecards = %+v, want the drifted job's", bundled)
	}

	// /api/quality lists the scorecard and the aggregates behind the gauge.
	var qr qualityResponse
	if code := getJSON(t, srv.URL+"/api/quality", &qr); code != http.StatusOK {
		t.Fatalf("/api/quality status = %d", code)
	}
	if len(qr.Scorecards) != 1 || qr.Scorecards[0].JobID != job.ID {
		t.Fatalf("/api/quality scorecards = %+v", qr.Scorecards)
	}
	drifted := false
	for _, a := range qr.Agreement {
		if a.DrishtiOnly > 0 {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("/api/quality agreement aggregates show no drishti_only drift: %+v", qr.Agreement)
	}

	// The job filter returns exactly that card; an issue filter keeps it
	// only when the named issue disagreed.
	if code := getJSON(t, srv.URL+"/api/quality?job="+job.ID, &qr); code != http.StatusOK || len(qr.Scorecards) != 1 {
		t.Fatalf("job filter: status=%d cards=%d", code, len(qr.Scorecards))
	}
	var disagreeing, agreeing string
	for _, sc := range card.Issues {
		if !sc.Agree && disagreeing == "" {
			disagreeing = string(sc.Issue)
		}
		if sc.Agree && agreeing == "" {
			agreeing = string(sc.Issue)
		}
	}
	if disagreeing != "" {
		if code := getJSON(t, srv.URL+"/api/quality?issue="+disagreeing, &qr); code != http.StatusOK || len(qr.Scorecards) != 1 {
			t.Errorf("issue filter %q: status=%d cards=%d, want the card", disagreeing, code, len(qr.Scorecards))
		}
	}
	if agreeing != "" {
		if code := getJSON(t, srv.URL+"/api/quality?issue="+agreeing, &qr); code != http.StatusOK || len(qr.Scorecards) != 0 {
			t.Errorf("issue filter %q: status=%d cards=%d, want none", agreeing, code, len(qr.Scorecards))
		}
	}

	// The job page carries the quality banner; the dashboard names the
	// job in its disagreement browser.
	page := getBody(t, srv.URL+"/jobs/"+job.ID)
	if !strings.Contains(page, "Diagnosis quality:") {
		t.Error("job page is missing the quality banner")
	}
	dash := getBody(t, srv.URL+"/dashboard/quality")
	if !strings.Contains(dash, job.ID) || !strings.Contains(dash, "Verdict agreement by issue") {
		t.Error("quality dashboard does not surface the drifted job")
	}
}

// TestQualityRoutesWithoutStore: without WithQuality the quality routes
// 404 with a JSON error pointing at the flag.
func TestQualityRoutesWithoutStore(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Paused: true})
	for _, path := range []string{"/api/quality", "/dashboard/quality"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(body.Error, "-quality") {
			t.Errorf("GET %s = %d %q, want 404 pointing at -quality", path, resp.StatusCode, body.Error)
		}
	}
}

// TestQualityAPIBadFilters covers the 400 paths.
func TestQualityAPIBadFilters(t *testing.T) {
	srv, _, _, _ := qualityServer(t, nil, jobs.Config{Paused: true}, nil)
	for _, q := range []string{"?limit=0", "?limit=x", "?issue=not-an-issue"} {
		resp, err := http.Get(srv.URL + "/api/quality" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /api/quality%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// alertState finds one rule's state in an /api/alerts response.
func alertState(ar alertsResponse, rule string) string {
	for _, a := range ar.Alerts {
		if a.Rule.Name == rule {
			return string(a.State)
		}
	}
	return ""
}

// getBody fetches a URL and returns the body as a string.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %.200s", url, resp.StatusCode, body)
	}
	return string(body)
}
