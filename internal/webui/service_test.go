package webui

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/jobs"
	"ion/internal/testutil"
)

func jobServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Service) {
	t.Helper()
	cfg.Dir = t.TempDir()
	if cfg.Client == nil {
		cfg.Client = expertsim.New()
	}
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJobServer(cfg.Client, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(js.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, svc
}

func workloadTrace(t *testing.T) []byte {
	t.Helper()
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postTrace(t *testing.T, url string, trace []byte) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServiceEndToEnd drives the full async path over httptest: upload
// a generated workload trace, poll the job to completion, fetch the
// report, chat about it, and verify a second upload of the same bytes
// is a dedup cache hit reflected in /api/stats.
func TestServiceEndToEnd(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Workers: 2})
	trace := workloadTrace(t)

	sr, status := postTrace(t, srv.URL+"/api/jobs?name=ior-hard", trace)
	if status != http.StatusAccepted {
		t.Fatalf("POST /api/jobs status = %d", status)
	}
	if sr.Dedup || sr.Job.ID == "" || sr.Job.Trace != "ior-hard" {
		t.Fatalf("submit response = %+v", sr)
	}

	// Poll to completion like an HTTP client would.
	var job jobs.Job
	deadline := time.Now().Add(60 * time.Second)
	for {
		if code := getJSON(t, srv.URL+"/api/jobs/"+sr.Job.ID, &job); code != http.StatusOK {
			t.Fatalf("GET /api/jobs/{id} status = %d", code)
		}
		if job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q)", job.State, job.Error)
	}

	var rep ion.Report
	if code := getJSON(t, srv.URL+"/api/jobs/"+job.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report status = %d", code)
	}
	if rep.Trace != "ior-hard" || len(rep.Diagnoses) == 0 {
		t.Errorf("report malformed: trace=%q diagnoses=%d", rep.Trace, len(rep.Diagnoses))
	}

	// The per-job page serves the diagnosis with the chat widget wired
	// to this job's ask endpoint.
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job page status = %d", resp.StatusCode)
	}
	for _, want := range []string{"ION — I/O Navigator diagnosis", "chat-form", "/api/jobs/" + job.ID + "/ask"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("job page missing %q", want)
		}
	}

	// Chat against the job's report.
	body, _ := json.Marshal(map[string]string{"question": "why is the small I/O a problem?"})
	resp2, err := http.Post(srv.URL+"/api/jobs/"+job.ID+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ar askResponse
	if err := json.NewDecoder(resp2.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !strings.Contains(ar.Answer, "Small I/O") {
		t.Errorf("ask status=%d answer=%q", resp2.StatusCode, ar.Answer)
	}

	// Re-uploading identical bytes is a dedup cache hit…
	sr2, status2 := postTrace(t, srv.URL+"/api/jobs", trace)
	if status2 != http.StatusOK || !sr2.Dedup || sr2.Job.ID != job.ID {
		t.Errorf("dedup upload: status=%d dedup=%v id=%s want id=%s", status2, sr2.Dedup, sr2.Job.ID, job.ID)
	}
	// …reflected in /api/stats.
	var st jobs.Stats
	if code := getJSON(t, srv.URL+"/api/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if st.CacheHits != 1 || st.Submitted != 2 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 cache hit of 2 submissions", st)
	}
	if st.CacheHitRate() != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", st.CacheHitRate())
	}

	// The index lists the job with a link to its page.
	resp3, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	index, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(index), job.ID) {
		t.Errorf("index page does not list job %s", job.ID)
	}

	var list []jobs.Job
	if code := getJSON(t, srv.URL+"/api/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Errorf("list: status=%d len=%d", code, len(list))
	}
}

func TestServiceRejectsBadUploads(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Workers: 1})
	if _, status := postTrace(t, srv.URL+"/api/jobs", []byte("definitely not darshan")); status != http.StatusBadRequest {
		t.Errorf("garbage upload status = %d, want 400", status)
	}
	if code := getJSON(t, srv.URL+"/api/jobs/j-nope", new(jobs.Job)); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	// Report for a job that has not finished: 409.
	srvPaused, _ := jobServer(t, jobs.Config{Paused: true})
	sr, _ := postTrace(t, srvPaused.URL+"/api/jobs", workloadTrace(t))
	if code := getJSON(t, srvPaused.URL+"/api/jobs/"+sr.Job.ID+"/report", new(ion.Report)); code != http.StatusConflict {
		t.Errorf("report for queued job status = %d, want 409", code)
	}
}

func TestServiceBackpressure429(t *testing.T) {
	// A paused pool keeps everything queued, so depth-1 fills at once.
	srv, _ := jobServer(t, jobs.Config{Paused: true, QueueDepth: 1})
	trace := workloadTrace(t)
	if _, status := postTrace(t, srv.URL+"/api/jobs", trace); status != http.StatusAccepted {
		t.Fatalf("first upload status = %d", status)
	}
	// Different bytes, same queue: text rendering of the same log.
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := log.WriteDXTText(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/jobs", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-capacity upload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestAskBodyTooLarge(t *testing.T) {
	// The single-report server and the job server share the cap.
	srv := httptest.NewServer(server(t).Handler())
	defer srv.Close()
	huge := `{"question":"` + strings.Repeat("x", maxAskBody+1024) + `"}`
	resp, err := http.Post(srv.URL+"/api/ask", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized /api/ask status = %d, want 413", resp.StatusCode)
	}
}
