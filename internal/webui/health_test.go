package webui

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ion/internal/jobs"
)

func getHealth(t *testing.T, url string) (healthResponse, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("%s: body did not decode: %v", url, err)
	}
	return hr, resp.StatusCode
}

// TestHealthAndReadiness exercises the probe endpoints across the
// service lifecycle: both green while serving, readiness (and only
// readiness) red once graceful drain begins.
func TestHealthAndReadiness(t *testing.T) {
	srv, svc := jobServer(t, jobs.Config{Workers: 1})

	hr, code := getHealth(t, srv.URL+"/healthz")
	if code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("/healthz = %d %+v, want 200 ok", code, hr)
	}

	hr, code = getHealth(t, srv.URL+"/readyz")
	if code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("/readyz = %d %+v, want 200 ok", code, hr)
	}
	for _, check := range []string{"store", "workers", "draining"} {
		if hr.Checks[check] != "ok" {
			t.Errorf("readiness check %s = %q, want ok", check, hr.Checks[check])
		}
	}

	// Begin graceful drain: liveness stays green, readiness flips 503
	// with the reason in the check detail.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, code := getHealth(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	hr, code = getHealth(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable || hr.Status != "unavailable" {
		t.Fatalf("/readyz during drain = %d %+v, want 503 unavailable", code, hr)
	}
	if hr.Checks["draining"] == "ok" {
		t.Errorf("draining check = %q, want a failure reason", hr.Checks["draining"])
	}
}

// TestReadinessPausedPool: a pool with zero workers can accept but
// never run jobs, so it must not be routed traffic.
func TestReadinessPausedPool(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Paused: true})
	hr, code := getHealth(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with paused pool = %d, want 503", code)
	}
	if hr.Checks["workers"] == "ok" {
		t.Errorf("workers check = %q, want a failure reason", hr.Checks["workers"])
	}
}
