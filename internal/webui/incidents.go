package webui

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"ion/internal/obs/flight"
)

// flightDisabled answers the incident endpoints when no recorder is
// wired in (WithFlight was not called).
func (s *JobServer) flightDisabled(w http.ResponseWriter) bool {
	if s.flight != nil {
		return false
	}
	s.errorJSON(w, http.StatusNotFound, "flight recorder disabled: start ionserve with -incident-dir")
	return true
}

// incidentsResponse is the GET /api/incidents wire type.
type incidentsResponse struct {
	// Incidents are the bundles on disk, newest first.
	Incidents []flight.Manifest `json:"incidents"`
}

// handleIncidents lists the incident bundles the recorder holds,
// newest first, each with its manifest (reason, capture time, files,
// ring sizes).
func (s *JobServer) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if s.flightDisabled(w) {
		return
	}
	list := s.flight.List()
	if list == nil {
		list = []flight.Manifest{}
	}
	s.writeJSON(w, http.StatusOK, incidentsResponse{Incidents: list})
}

// handleIncidentDownload streams one bundle's tar.gz. The stored bytes
// are already gzip: a client that accepts gzip gets them verbatim with
// Content-Encoding set (its transparent decode yields the tar — zero
// recompression server-side); anyone else gets the .tar.gz as a file.
func (s *JobServer) handleIncidentDownload(w http.ResponseWriter, r *http.Request) {
	if s.flightDisabled(w) {
		return
	}
	id := r.PathValue("id")
	rc, size, err := s.flight.Open(id)
	if err != nil {
		s.errorJSON(w, http.StatusNotFound, "no such incident")
		return
	}
	defer rc.Close()
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Type", "application/x-tar")
	} else {
		w.Header().Set("Content-Type", "application/gzip")
	}
	w.Header().Set("Content-Length", fmt.Sprint(size))
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.tar.gz"`)
	io.Copy(w, rc)
}

// captureRequest is the optional POST /api/debug/capture body.
type captureRequest struct {
	Reason string `json:"reason"`
}

// handleDebugCapture triggers an on-demand incident bundle: the same
// capture a firing alert runs, for "grab me everything right now"
// debugging. Rate limiting still applies (429), as does capture
// singleflighting (409).
func (s *JobServer) handleDebugCapture(w http.ResponseWriter, r *http.Request) {
	if s.flightDisabled(w) {
		return
	}
	reason := "manual"
	if r.ContentLength != 0 {
		var req captureRequest
		if !readJSON(w, r, 4096, &req) {
			return
		}
		if strings.TrimSpace(req.Reason) != "" {
			reason = req.Reason
		}
	}
	m, err := s.flight.Capture(reason)
	switch {
	case errors.Is(err, flight.ErrRateLimited):
		w.Header().Set("Retry-After", "60")
		s.errorJSON(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, flight.ErrCaptureInFlight):
		s.errorJSON(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, flight.ErrDisabled):
		s.errorJSON(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		s.errorJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, m)
}

// errorJSON writes a JSON error body ({"error": msg}) with the given
// status, so API clients never have to parse plain-text errors.
func (s *JobServer) errorJSON(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}

// acceptsGzip reports whether the client advertised gzip support.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// gzPool recycles gzip writers across /metrics scrapes.
var gzPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// gzipResponseWriter compresses the response body through a pooled
// gzip.Writer.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w *gzipResponseWriter) Write(p []byte) (int, error) { return w.gz.Write(p) }

// withGzip compresses next's response when the client accepts gzip.
// Exposition output is highly repetitive (family names restated per
// series), so scrape payloads shrink by an order of magnitude.
func withGzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !acceptsGzip(r) {
			next.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzPool.Get().(*gzip.Writer)
		gz.Reset(w)
		next.ServeHTTP(&gzipResponseWriter{ResponseWriter: w, gz: gz}, r)
		gz.Close()
		gzPool.Put(gz)
	})
}
