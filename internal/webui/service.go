package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"
	"sync"

	"ion/internal/ion"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/report"
)

// maxTraceBody caps trace uploads; oversized payloads get 413.
const maxTraceBody = 64 << 20

// JobServer is the multi-trace front end over a jobs.Service: traces
// are uploaded as jobs, polled to completion, and each finished job
// gets its own report page and chat session.
type JobServer struct {
	svc    *jobs.Service
	client llm.Client

	mu       sync.Mutex
	sessions map[string]*ion.Session // job id → chat session
}

// NewJobServer wires the service and chat backend into a handler.
func NewJobServer(client llm.Client, svc *jobs.Service) (*JobServer, error) {
	if client == nil || svc == nil {
		return nil, fmt.Errorf("webui: client and service are required")
	}
	return &JobServer{svc: svc, client: client, sessions: map[string]*ion.Session{}}, nil
}

// Handler returns the HTTP routes of the analysis service:
//
//	GET  /                     the job list page (HTML)
//	GET  /jobs/{id}            a finished job's diagnosis page (HTML)
//	POST /api/jobs             submit a trace (raw Darshan bytes; ?name=)
//	GET  /api/jobs             list jobs (JSON)
//	GET  /api/jobs/{id}        one job's status (JSON)
//	GET  /api/jobs/{id}/report the finished report (JSON)
//	POST /api/jobs/{id}/ask    {"question": ...} against that job's report
//	GET  /api/stats            queue/worker/cache counters (JSON)
func (s *JobServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobPage)
	mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/jobs", s.handleList)
	mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/jobs/{id}/report", s.handleJobReport)
	mux.HandleFunc("POST /api/jobs/{id}/ask", s.handleJobAsk)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	return mux
}

// submitResponse is the POST /api/jobs wire type.
type submitResponse struct {
	Job jobs.Job `json:"job"`
	// Dedup is true when an identical trace had already been submitted
	// and the cached job is returned instead of a new run.
	Dedup bool `json:"dedup"`
}

func (s *JobServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxTraceBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "trace too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, dedup, err := s.svc.Submit(r.URL.Query().Get("name"), data)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		http.Error(w, "queue is full, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrBadTrace):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, jobs.ErrClosed):
		http.Error(w, "service is shutting down", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusAccepted
	if dedup {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{Job: job, Dedup: dedup})
}

func (s *JobServer) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.List())
}

func (s *JobServer) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *JobServer) handleJobReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	rep, err := s.svc.Report(job.ID)
	if errors.Is(err, jobs.ErrNotDone) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *JobServer) handleJobAsk(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	var req askRequest
	if !readJSON(w, r, maxAskBody, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		http.Error(w, "bad request: empty question", http.StatusBadRequest)
		return
	}
	session, err := s.session(job.ID)
	if errors.Is(err, jobs.ErrNotDone) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Session history is stateful: serialize questions per server.
	s.mu.Lock()
	answer, err := session.Ask(r.Context(), req.Question)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, askResponse{Answer: answer})
}

func (s *JobServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *JobServer) handleJobPage(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if job.State != jobs.StateDone {
		fmt.Fprintf(w, pendingPage, html.EscapeString(job.Trace), html.EscapeString(string(job.State)),
			job.Attempts, html.EscapeString(job.Error), html.EscapeString(job.ID))
		return
	}
	rep, err := s.svc.Report(job.ID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var page strings.Builder
	if err := report.WriteHTML(&page, rep); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	widget := navLink + chatWidgetFor("/api/jobs/"+job.ID+"/ask")
	fmt.Fprint(w, strings.Replace(page.String(), "</body>", widget+"</body>", 1))
}

func (s *JobServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	list := s.svc.List()
	var rows strings.Builder
	for _, j := range list {
		link := html.EscapeString(j.Trace)
		if j.State == jobs.StateDone {
			link = fmt.Sprintf(`<a href="/jobs/%s">%s</a>`, html.EscapeString(j.ID), link)
		}
		fmt.Fprintf(&rows, "<tr><td>%s</td><td><code>%s</code></td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
			link, html.EscapeString(j.ID), html.EscapeString(string(j.State)),
			j.Attempts, html.EscapeString(j.Error))
	}
	if len(list) == 0 {
		rows.WriteString(`<tr><td colspan="5"><em>no jobs yet — upload a Darshan trace</em></td></tr>`)
	}
	st := s.svc.Stats()
	fmt.Fprintf(w, indexPage, rows.String(),
		st.QueueDepth, st.QueueCapacity, st.Busy, st.Workers,
		st.Completed, st.Failed, st.Retried, st.CacheHits)
}

// getJob resolves the {id} path value, writing a 404 on miss.
func (s *JobServer) getJob(w http.ResponseWriter, r *http.Request) (jobs.Job, bool) {
	job, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return jobs.Job{}, false
	}
	return job, true
}

// session returns (creating on first use) the chat session over a
// finished job's report.
func (s *JobServer) session(id string) (*ion.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		return sess, nil
	}
	rep, err := s.svc.Report(id)
	if err != nil {
		return nil, err
	}
	sess, err := ion.NewSession(s.client, rep)
	if err != nil {
		return nil, err
	}
	s.sessions[id] = sess
	return sess, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to report.
		return
	}
}

const navLink = `<p style="margin-top:2rem"><a href="/">&larr; all jobs</a></p>`

const pendingPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — job status</title>
<meta http-equiv="refresh" content="2"></head>
<body style="font-family:system-ui,sans-serif;max-width:42rem;margin:3rem auto">
<h1>Diagnosis of %s</h1>
<p>State: <strong>%s</strong> (attempt %d)</p>
<p style="color:#a33">%s</p>
<p>This page refreshes until job <code>%s</code> completes.</p>
<p><a href="/">&larr; all jobs</a></p>
</body></html>
`

const indexPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — analysis jobs</title></head>
<body style="font-family:system-ui,sans-serif;max-width:52rem;margin:3rem auto">
<h1>ION analysis service</h1>
<p>Upload a Darshan trace (binary container or darshan-parser text) to
queue a diagnosis, or POST it to <code>/api/jobs</code>.</p>
<p><input type="file" id="trace"> <button id="upload">Upload &amp; analyze</button>
<span id="upload-status"></span></p>
<table border="1" cellpadding="6" style="border-collapse:collapse;width:100%%">
<tr><th>trace</th><th>job</th><th>state</th><th>attempts</th><th>error</th></tr>
%s
</table>
<p style="color:#555">queue %d/%d &middot; workers busy %d/%d &middot;
completed %d &middot; failed %d &middot; retries %d &middot; cache hits %d
&middot; <a href="/api/stats">stats JSON</a></p>
<script>
document.getElementById("upload").addEventListener("click", async function() {
  var f = document.getElementById("trace").files[0];
  var out = document.getElementById("upload-status");
  if (!f) { out.textContent = "pick a trace file first"; return; }
  out.textContent = "uploading…";
  try {
    var resp = await fetch("/api/jobs?name=" + encodeURIComponent(f.name), {
      method: "POST", body: await f.arrayBuffer()
    });
    if (!resp.ok) throw new Error(await resp.text());
    location.reload();
  } catch (err) { out.textContent = "error: " + err; }
});
</script>
</body></html>
`
