package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ion/internal/ion"
	"ion/internal/jobs"
	"ion/internal/llm"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
	"ion/internal/obs/flight"
	"ion/internal/obs/prof"
	"ion/internal/obs/series"
	"ion/internal/quality"
	"ion/internal/report"
	"ion/internal/semcache"
)

// maxTraceBody caps trace uploads; oversized payloads get 413.
const maxTraceBody = 64 << 20

// JobServer is the multi-trace front end over a jobs.Service: traces
// are uploaded as jobs, polled to completion, and each finished job
// gets its own report page and chat session.
type JobServer struct {
	svc       *jobs.Service
	client    llm.Client
	obs       *obs.Registry
	log       *slog.Logger
	series    *series.Store    // nil disables /dashboard and the query/alerts APIs
	flight    *flight.Recorder // nil disables the incident APIs
	prof      *prof.Profiler   // nil disables /dashboard/profile and the prof APIs
	llmLedger *ledger.Client   // nil disables /dashboard/llm and /api/llm/ledger
	quality   *quality.Store   // nil disables /dashboard/quality and /api/quality
	reqSeq    atomic.Int64     // request-id source for latency exemplars

	mu       sync.Mutex
	sessions map[string]*ion.Session // job id → chat session
}

// NewJobServer wires the service and chat backend into a handler. By
// default telemetry lands in a private registry and logs are
// discarded; call WithObs before Handler to export them.
func NewJobServer(client llm.Client, svc *jobs.Service) (*JobServer, error) {
	if client == nil || svc == nil {
		return nil, fmt.Errorf("webui: client and service are required")
	}
	return &JobServer{
		svc:      svc,
		client:   client,
		obs:      obs.NewRegistry(),
		log:      obs.NopLogger(),
		sessions: map[string]*ion.Session{},
	}, nil
}

// WithObs points the server's HTTP metrics and request logs at the
// given registry and logger (nil arguments keep the current sink) and
// returns the server for chaining. The registry is also what GET
// /metrics serves, so pass the one the jobs.Service reports into.
func (s *JobServer) WithObs(reg *obs.Registry, logger *slog.Logger) *JobServer {
	if reg != nil {
		s.obs = reg
	}
	if logger != nil {
		s.log = logger
	}
	return s
}

// WithSeries wires the in-process time-series store behind /dashboard,
// /api/metrics/query, and /api/alerts, and returns the server for
// chaining. Without it those routes answer 404. The caller owns the
// store's scrape loop (Start/Stop).
func (s *JobServer) WithSeries(store *series.Store) *JobServer {
	s.series = store
	return s
}

// WithFlight wires the flight recorder behind /api/incidents,
// /api/incidents/{id}/download, and /api/debug/capture, and returns
// the server for chaining. Without it those routes answer 404. The
// caller owns the recorder's lifecycle (Start/Stop) and its alert
// trigger wiring.
func (s *JobServer) WithFlight(rec *flight.Recorder) *JobServer {
	s.flight = rec
	return s
}

// Handler returns the HTTP routes of the analysis service:
//
//	GET  /                     the job list page (HTML)
//	GET  /jobs/{id}            a finished job's diagnosis page (HTML)
//	POST /api/jobs             submit a trace (raw Darshan bytes; ?name=)
//	POST /api/jobs/stream      submit a trace as a chunked stream, parsed during upload
//	GET  /api/jobs             list jobs (JSON)
//	GET  /api/jobs/{id}        one job's status (JSON)
//	GET  /api/jobs/{id}/report the finished report (JSON)
//	POST /api/jobs/{id}/ask    {"question": ...} against that job's report
//	GET  /api/jobs/{id}/trace  the analysis span timeline (JSON)
//	GET  /api/stats            queue/worker/cache counters (JSON)
//	GET  /api/semcache         semantic-cache stats, thresholds, entries (JSON)
//	GET  /api/metrics/query    windowed series from the in-process store (JSON)
//	GET  /api/alerts           alert rule states and transition history (JSON)
//	GET  /api/incidents        flight-recorder bundle manifests (JSON)
//	GET  /api/incidents/{id}/download  one incident bundle (tar.gz)
//	POST /api/debug/capture    capture an on-demand incident bundle
//	GET  /api/prof/windows     decoded profile windows (JSON; ?kind=&limit=)
//	GET  /api/prof/flamegraph  one window as an SVG flamegraph (?window=)
//	GET  /api/llm/ledger       LLM call audit ledger (JSON; ?limit=&backend=&job=)
//	GET  /api/quality          diagnosis-quality scorecards (JSON; ?limit=&issue=&job=)
//	GET  /dashboard            live self-observation page (HTML, inline SVG)
//	GET  /dashboard/profile    continuous-profiling page (flamegraph, hot functions)
//	GET  /dashboard/llm        LLM cost, token, and backend-health page (XML-clean HTML)
//	GET  /dashboard/quality    verdict agreement, shadow flips, disagreements (XML-clean HTML)
//	GET  /healthz              liveness probe (always 200 while serving)
//	GET  /readyz               readiness probe (503 while paused or draining)
//	GET  /metrics              Prometheus text exposition (gzip-aware)
//
// Every route is wrapped in telemetry middleware recording request
// count, latency, and status by route into the server's registry.
func (s *JobServer) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /{$}", s.handleIndex)
	handle("GET /jobs/{id}", s.handleJobPage)
	handle("POST /api/jobs", s.handleSubmit)
	handle("POST /api/jobs/stream", s.handleSubmitStream)
	handle("GET /api/jobs", s.handleList)
	handle("GET /api/jobs/{id}", s.handleJob)
	handle("GET /api/jobs/{id}/report", s.handleJobReport)
	handle("GET /api/jobs/{id}/trace", s.handleJobTrace)
	handle("POST /api/jobs/{id}/ask", s.handleJobAsk)
	handle("GET /api/stats", s.handleStats)
	handle("GET /api/semcache", s.handleSemcache)
	handle("GET /api/metrics/query", s.handleMetricsQuery)
	handle("GET /api/alerts", s.handleAlerts)
	handle("GET /api/incidents", s.handleIncidents)
	handle("GET /api/incidents/{id}/download", s.handleIncidentDownload)
	handle("POST /api/debug/capture", s.handleDebugCapture)
	handle("GET /api/prof/windows", s.handleProfWindows)
	handle("GET /api/prof/flamegraph", s.handleProfFlamegraph)
	handle("GET /api/llm/ledger", s.handleLLMLedger)
	handle("GET /api/quality", s.handleQualityAPI)
	handle("GET /dashboard", s.handleDashboard)
	handle("GET /dashboard/profile", s.handleProfileDashboard)
	handle("GET /dashboard/llm", s.handleLLMDashboard)
	handle("GET /dashboard/quality", s.handleQualityDashboard)
	handle("GET /metrics", withGzip(s.obs.Handler()).ServeHTTP)
	// Probes bypass the instrument middleware: they are hit every few
	// seconds by orchestrators and would dominate the request metrics.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route request metrics and
// structured request logging. The route label is the mux pattern, not
// the raw URL, so cardinality stays bounded. Each request gets a
// sequential id that is logged and attached to the latency histogram
// as its bucket exemplar, so a spike on the dashboard names the
// request behind it (grep the id in the logs or an incident bundle).
func (s *JobServer) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(obs.WithLogger(r.Context(), s.log)))
		elapsed := time.Since(start)
		s.obs.Counter("ion_http_requests_total",
			"HTTP requests by route and status code.",
			obs.L("route", route), obs.L("code", fmt.Sprint(sw.status))).Inc()
		s.obs.Histogram("ion_http_request_seconds",
			"HTTP request latency by route.", nil,
			obs.L("route", route)).ObserveExemplar(elapsed.Seconds(), reqID)
		logAt := s.log.Debug
		if sw.status >= 500 {
			logAt = s.log.Warn
		}
		logAt("http request", "id", reqID, "route", route, "status", sw.status,
			"elapsed", elapsed.Round(time.Microsecond).String(), "remote", r.RemoteAddr)
	})
}

// submitResponse is the POST /api/jobs wire type.
type submitResponse struct {
	Job jobs.Job `json:"job"`
	// Dedup is true when an identical trace had already been submitted
	// and the cached job is returned instead of a new run.
	Dedup bool `json:"dedup"`
}

func (s *JobServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxTraceBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "trace too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	job, dedup, err := s.svc.Submit(r.URL.Query().Get("name"), data)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		http.Error(w, "queue is full, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrBadTrace):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, jobs.ErrClosed):
		http.Error(w, "service is shutting down", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusAccepted
	if dedup {
		status = http.StatusOK
	}
	s.writeJSON(w, status, submitResponse{Job: job, Dedup: dedup})
}

// handleSubmitStream is the chunked-upload twin of handleSubmit: the
// body is handed to the service as a stream and parsed shard by shard
// while it is still arriving, instead of being buffered whole first.
// Same responses as POST /api/jobs, plus 429 + Retry-After when the
// service-wide streaming buffer budget is exhausted.
func (s *JobServer) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxTraceBody)
	job, dedup, err := s.svc.SubmitStream(r.URL.Query().Get("name"), body)
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		http.Error(w, "trace too large", http.StatusRequestEntityTooLarge)
		return
	case errors.Is(err, jobs.ErrStreamBusy), errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error()+", retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, jobs.ErrBadTrace):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, jobs.ErrClosed):
		http.Error(w, "service is shutting down", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusAccepted
	if dedup {
		status = http.StatusOK
	}
	s.writeJSON(w, status, submitResponse{Job: job, Dedup: dedup})
}

func (s *JobServer) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.svc.List())
}

func (s *JobServer) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// handleJobTrace serves the analysis span timeline persisted next to
// the job's report: where the time of this diagnosis went, stage by
// stage.
func (s *JobServer) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	data, err := s.svc.Store().Timeline(job.ID)
	if errors.Is(err, jobs.ErrNotFound) {
		http.Error(w, "no timeline yet: the job has not run", http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *JobServer) handleJobReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	rep, err := s.svc.Report(job.ID)
	if errors.Is(err, jobs.ErrNotDone) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *JobServer) handleJobAsk(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	var req askRequest
	if !readJSON(w, r, maxAskBody, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		http.Error(w, "bad request: empty question", http.StatusBadRequest)
		return
	}
	session, err := s.session(job.ID)
	if errors.Is(err, jobs.ErrNotDone) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Session history is stateful: serialize questions per server.
	s.mu.Lock()
	answer, err := session.Ask(r.Context(), req.Question)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, http.StatusOK, askResponse{Answer: answer})
}

func (s *JobServer) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.svc.Stats())
}

// semcacheResponse is the GET /api/semcache wire type: the store's
// counters and bounds, the reuse-policy thresholds in effect, and the
// indexed entries (newest first).
type semcacheResponse struct {
	Stats              semcache.Stats   `json:"stats"`
	ReuseThreshold     float64          `json:"reuse_threshold"`
	ConditionThreshold float64          `json:"condition_threshold"`
	QuantStep          float64          `json:"quant_step"`
	Dimensions         []string         `json:"dimensions"`
	Entries            []semcache.Entry `json:"entries"`
}

func (s *JobServer) handleSemcache(w http.ResponseWriter, r *http.Request) {
	sem := s.svc.SemCache()
	if sem == nil {
		http.Error(w, "semantic cache disabled: start ionserve with -sem-cache", http.StatusNotFound)
		return
	}
	reuse, condition := s.svc.SemThresholds()
	entries := sem.Entries()
	if entries == nil {
		entries = []semcache.Entry{}
	}
	s.writeJSON(w, http.StatusOK, semcacheResponse{
		Stats:              sem.Stats(),
		ReuseThreshold:     reuse,
		ConditionThreshold: condition,
		QuantStep:          sem.QuantStep(),
		Dimensions:         semcache.Dimensions(),
		Entries:            entries,
	})
}

func (s *JobServer) handleJobPage(w http.ResponseWriter, r *http.Request) {
	job, ok := s.getJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if !job.State.Succeeded() {
		fmt.Fprintf(w, pendingPage, html.EscapeString(job.Trace), html.EscapeString(string(job.State)),
			job.Attempts, html.EscapeString(job.Error), html.EscapeString(job.ID))
		return
	}
	rep, err := s.svc.Report(job.ID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var page strings.Builder
	if err := report.WriteHTML(&page, rep); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	widget := ingestBanner(job) + reuseBanner(job) + costBanner(job) + qualityBanner(job) + navLink + chatWidgetFor("/api/jobs/"+job.ID+"/ask")
	fmt.Fprint(w, strings.Replace(page.String(), "</body>", widget+"</body>", 1))
}

// ingestBanner renders how the trace entered the service when it came
// through the streaming path: body size, how many parse shards it was
// cut into, and whether parsing overlapped the upload. Empty for
// whole-body submissions, which are the unremarkable default.
func ingestBanner(job jobs.Job) string {
	in := job.Ingest
	if in == nil || in.Mode != jobs.IngestStream {
		return ""
	}
	overlap := "parsed after upload completed"
	if in.ParseOverlapped {
		overlap = "parsing overlapped the upload"
	}
	return fmt.Sprintf(`<div style="margin-top:2rem;padding:0.75rem 1rem;border:1px solid #059669;border-radius:6px;background:#ecfdf5">
<strong>Streamed ingestion:</strong> %.1f MiB uploaded in chunks, cut into %d parse shard(s); %s.</div>`,
		float64(in.Bytes)/(1<<20), in.Shards, overlap)
}

// reuseBanner renders the semantic-cache provenance of a job: where
// its diagnosis came from, how similar the neighbor was, and which
// signature dimensions moved. Empty for jobs analyzed cold.
func reuseBanner(job jobs.Job) string {
	ru := job.ReusedFrom
	if ru == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(`<div style="margin-top:2rem;padding:0.75rem 1rem;border:1px solid #2563eb;border-radius:6px;background:#eff6ff">`)
	switch ru.Mode {
	case jobs.ReuseSemanticHit:
		fmt.Fprintf(&b, `<strong>Semantic hit:</strong> this report was served verbatim from job
<a href="/jobs/%s"><code>%s</code></a> (signature similarity %.4f, no LLM calls).`,
			html.EscapeString(ru.From), html.EscapeString(ru.From), ru.Similarity)
	case jobs.ReuseConditioned:
		fmt.Fprintf(&b, `<strong>Conditioned run:</strong> this analysis was conditioned on job
<a href="/jobs/%s"><code>%s</code></a> (signature similarity %.4f): its conclusions were
retrieved as context and its clean verdicts adopted.`,
			html.EscapeString(ru.From), html.EscapeString(ru.From), ru.Similarity)
	default:
		fmt.Fprintf(&b, `<strong>Reused:</strong> derived from job <code>%s</code> (similarity %.4f).`,
			html.EscapeString(ru.From), ru.Similarity)
	}
	if len(ru.Deltas) > 0 {
		dims := make([]string, 0, len(ru.Deltas))
		for d := range ru.Deltas {
			dims = append(dims, d)
		}
		sort.Strings(dims)
		parts := make([]string, 0, len(dims))
		for _, d := range dims {
			parts = append(parts, fmt.Sprintf("%s %+.3f", d, ru.Deltas[d]))
		}
		fmt.Fprintf(&b, ` <span style="color:#555">Signature deltas: %s.</span>`,
			html.EscapeString(strings.Join(parts, ", ")))
	}
	b.WriteString(`</div>`)
	return b.String()
}

func (s *JobServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	list := s.svc.List()
	var rows strings.Builder
	for _, j := range list {
		link := html.EscapeString(j.Trace)
		if j.State.Succeeded() {
			link = fmt.Sprintf(`<a href="/jobs/%s">%s</a>`, html.EscapeString(j.ID), link)
		}
		state := html.EscapeString(string(j.State))
		if j.ReusedFrom != nil {
			state += fmt.Sprintf(` <span style="color:#2563eb">&larr; <code>%s</code></span>`,
				html.EscapeString(j.ReusedFrom.From))
		}
		fmt.Fprintf(&rows, "<tr><td>%s</td><td><code>%s</code></td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
			link, html.EscapeString(j.ID), state,
			j.Attempts, html.EscapeString(j.Error))
	}
	if len(list) == 0 {
		rows.WriteString(`<tr><td colspan="5"><em>no jobs yet — upload a Darshan trace</em></td></tr>`)
	}
	st := s.svc.Stats()
	fmt.Fprintf(w, indexPage, rows.String(),
		st.QueueDepth, st.QueueCapacity, st.Busy, st.Workers, 100*st.Utilization(),
		st.Completed, st.Failed, st.Retried, st.CacheHits, 100*st.CacheHitRate(),
		st.Recovered, st.SemanticHits, st.Conditioned,
		st.LLMCalls, st.LLMTokensIn, st.LLMTokensOut, st.LLMCostUSD)
}

// getJob resolves the {id} path value, writing a 404 on miss.
func (s *JobServer) getJob(w http.ResponseWriter, r *http.Request) (jobs.Job, bool) {
	job, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return jobs.Job{}, false
	}
	return job, true
}

// session returns (creating on first use) the chat session over a
// finished job's report.
func (s *JobServer) session(id string) (*ion.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		return sess, nil
	}
	rep, err := s.svc.Report(id)
	if err != nil {
		return nil, err
	}
	sess, err := ion.NewSession(s.client, rep)
	if err != nil {
		return nil, err
	}
	s.sessions[id] = sess
	return sess, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to report.
		return
	}
}

// writeJSON is the JobServer's logging variant of the package helper:
// an encode failure after the headers are sent cannot reach the
// client, so at least leave a trace in the logs.
func (s *JobServer) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encoding response body", "err", err)
	}
}

const navLink = `<p style="margin-top:2rem"><a href="/">&larr; all jobs</a></p>`

const pendingPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — job status</title>
<meta http-equiv="refresh" content="2"></head>
<body style="font-family:system-ui,sans-serif;max-width:42rem;margin:3rem auto">
<h1>Diagnosis of %s</h1>
<p>State: <strong>%s</strong> (attempt %d)</p>
<p style="color:#a33">%s</p>
<p>This page refreshes until job <code>%s</code> completes.</p>
<p><a href="/">&larr; all jobs</a></p>
</body></html>
`

const indexPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>ION — analysis jobs</title></head>
<body style="font-family:system-ui,sans-serif;max-width:52rem;margin:3rem auto">
<h1>ION analysis service</h1>
<p>Upload a Darshan trace (binary container or darshan-parser text) to
queue a diagnosis, or POST it to <code>/api/jobs</code>.</p>
<p><input type="file" id="trace"> <button id="upload">Upload &amp; analyze</button>
<span id="upload-status"></span></p>
<table border="1" cellpadding="6" style="border-collapse:collapse;width:100%%">
<tr><th>trace</th><th>job</th><th>state</th><th>attempts</th><th>error</th></tr>
%s
</table>
<p style="color:#555">queue %d/%d &middot; workers busy %d/%d (%.0f%% utilized) &middot;
completed %d &middot; failed %d &middot; retries %d &middot; cache hits %d (%.0f%% hit rate)
&middot; recovered %d &middot; semantic hits %d &middot; conditioned %d
&middot; <a href="/api/stats">stats JSON</a> &middot; <a href="/api/semcache">semcache</a>
&middot; <a href="/metrics">metrics</a></p>
<p style="color:#555">LLM calls %d &middot; tokens %d in / %d out &middot; est. $%.4f
&middot; <a href="/dashboard/llm">LLM dashboard</a></p>
<script>
document.getElementById("upload").addEventListener("click", async function() {
  var f = document.getElementById("trace").files[0];
  var out = document.getElementById("upload-status");
  if (!f) { out.textContent = "pick a trace file first"; return; }
  out.textContent = "uploading…";
  try {
    var resp = await fetch("/api/jobs?name=" + encodeURIComponent(f.name), {
      method: "POST", body: await f.arrayBuffer()
    });
    if (!resp.ok) throw new Error(await resp.text());
    location.reload();
  } catch (err) { out.textContent = "error: " + err; }
});
</script>
</body></html>
`
