package webui

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ion/internal/issue"
	"ion/internal/jobs"
	"ion/internal/obs/series"
	"ion/internal/quality"
)

// WithQuality wires the diagnosis-quality scorecard store behind GET
// /api/quality and GET /dashboard/quality, and returns the server for
// chaining. Without it those routes answer 404. Pass the same store
// the jobs.Service writes into.
func (s *JobServer) WithQuality(st *quality.Store) *JobServer {
	s.quality = st
	return s
}

// qualityDisabled answers the quality endpoints when no store is wired
// in (WithQuality was not called).
func (s *JobServer) qualityDisabled(w http.ResponseWriter) bool {
	if s.quality != nil {
		return false
	}
	s.errorJSON(w, http.StatusNotFound, "quality observatory disabled: start ionserve without -quality=false")
	return true
}

// qualityResponse is the GET /api/quality wire type: store counters,
// the per-issue agreement aggregates the ion_verdict_agreement_ratio
// gauges are computed from, the per-mode shadow flip aggregates behind
// ion_semcache_flip_ratio, and the filtered scorecards, newest first.
type qualityResponse struct {
	Stats      quality.Stats                `json:"stats"`
	Agreement  map[string]quality.AgreeStat `json:"agreement"`
	Flips      map[string]quality.FlipStat  `json:"flips"`
	Scorecards []quality.Scorecard          `json:"scorecards"`
}

// handleQualityAPI serves the scorecard journal:
//
//	GET /api/quality?limit=50&job=j-abc123&issue=small-io
//
// limit bounds the returned scorecards (default 100), job filters to
// one job's scorecard by exact id, and issue keeps only scorecards
// where the named issue disagreed with the deterministic baseline or
// was flipped by a shadow re-run (the disagreement-browser query).
func (s *JobServer) handleQualityAPI(w http.ResponseWriter, r *http.Request) {
	if s.qualityDisabled(w) {
		return
	}
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.errorJSON(w, http.StatusBadRequest, "limit must be a positive integer, got "+strconv.Quote(v))
			return
		}
		limit = n
	}
	var cards []quality.Scorecard
	if job := q.Get("job"); job != "" {
		if c, ok := s.quality.Get(job); ok {
			cards = []quality.Scorecard{c}
		}
	} else {
		cards = s.quality.Entries()
	}
	if iid := issue.ID(q.Get("issue")); iid != "" {
		if !issue.Valid(iid) {
			s.errorJSON(w, http.StatusBadRequest, "unknown issue id "+strconv.Quote(string(iid)))
			return
		}
		kept := cards[:0]
		for _, c := range cards {
			if scorecardImplicates(c, iid) {
				kept = append(kept, c)
			}
		}
		cards = kept
	}
	if len(cards) > limit {
		cards = cards[:limit]
	}
	if cards == nil {
		cards = []quality.Scorecard{}
	}
	agree := map[string]quality.AgreeStat{}
	for id, a := range s.quality.IssueAgreement() {
		agree[string(id)] = a
	}
	flips := map[string]quality.FlipStat{}
	for m, f := range s.quality.FlipStats() {
		flips[string(m)] = f
	}
	s.writeJSON(w, http.StatusOK, qualityResponse{
		Stats:      s.quality.Stats(),
		Agreement:  agree,
		Flips:      flips,
		Scorecards: cards,
	})
}

// scorecardImplicates reports whether the scorecard records a
// disagreement or a shadow flip for the given issue.
func scorecardImplicates(c quality.Scorecard, iid issue.ID) bool {
	for _, sc := range c.Issues {
		if sc.Issue == iid && !sc.Agree {
			return true
		}
	}
	if c.Shadow != nil {
		for _, f := range c.Shadow.Flips {
			if f == iid {
				return true
			}
		}
	}
	return false
}

// qualityBanner renders a job's diagnosis-quality provenance: how well
// the LLM verdicts agreed with the deterministic baseline and whether
// a shadow re-run checked (or contradicted) the served diagnosis.
// Empty when no quality store is configured.
func qualityBanner(job jobs.Job) string {
	q := job.Quality
	if q == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(`<div style="margin-top:2rem;padding:0.75rem 1rem;border:1px solid #7c3aed;border-radius:6px;background:#f5f3ff">`)
	fmt.Fprintf(&b, `<strong>Diagnosis quality:</strong> %.0f%% agreement with the deterministic baseline`, 100*q.Agreement)
	if q.Disagreements > 0 {
		fmt.Fprintf(&b, ` (%d disagreement(s))`, q.Disagreements)
	}
	if q.Shadowed {
		if q.Flips > 0 {
			fmt.Fprintf(&b, ` &middot; <span style="color:#dc2626;font-weight:600">shadow re-run flipped %d verdict(s)</span>`, q.Flips)
		} else {
			b.WriteString(` &middot; shadow re-run confirmed the served verdicts`)
		}
	}
	b.WriteString(`. <a href="/dashboard/quality">quality dashboard</a></div>`)
	return b.String()
}

// handleQualityDashboard renders the zero-JS diagnosis-quality page:
// the per-issue agreement heatmap, the shadow flip-ratio sparkline
// from the series store, and the disagreement browser linking into the
// implicated job pages. Like /dashboard/llm the page is well-formed
// XML (self-closed void tags, numeric character references only) so it
// can be machine checked, archived, and transformed.
func (s *JobServer) handleQualityDashboard(w http.ResponseWriter, r *http.Request) {
	if s.qualityDisabled(w) {
		return
	}
	st := s.quality.Stats()

	var b strings.Builder
	b.WriteString(qualityDashHead)
	fmt.Fprintf(&b, `<p class="meta">%d scorecard(s) retained (%s) &#183; %d journaled &#183; %d evicted`,
		st.Entries, xmlBytes(st.Bytes), st.Puts, st.Evictions)
	b.WriteString(` &#183; <a href="/api/quality">quality JSON</a> &#183; <a href="/dashboard">dashboard</a> &#183; <a href="/">jobs</a></p>`)
	b.WriteString(`<p class="meta">Every successful diagnosis is scored against the deterministic Drishti triggers; sampled reused diagnoses are re-run in full off the hot path to catch stale cached verdicts.</p>`)

	renderAgreementHeatmap(&b, s.quality.IssueAgreement())
	s.renderFlipSpark(&b, s.quality.FlipStats())
	renderDisagreements(&b, s.quality.Tail(200))

	b.WriteString("</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// renderAgreementHeatmap writes one row per taxonomy issue with the
// agreement ratio as a colored cell — the table form of the
// ion_verdict_agreement_ratio gauge family (without the min-sample
// gate: the raw ratios are shown even on thin traffic).
func renderAgreementHeatmap(b *strings.Builder, agree map[issue.ID]quality.AgreeStat) {
	b.WriteString(`<h2>Verdict agreement by issue</h2>`)
	total := 0
	for _, a := range agree {
		total += a.Total
	}
	if total == 0 {
		b.WriteString(`<p class="nodata">no scored diagnoses yet</p>`)
		return
	}
	b.WriteString(`<table><tr><th>issue</th><th>agreement</th><th>samples</th><th>LLM only</th><th>Drishti only</th></tr>`)
	for _, id := range issue.All {
		a := agree[id]
		if a.Total == 0 {
			fmt.Fprintf(b, `<tr><td>%s</td><td class="nodata">&#8212;</td><td>0</td><td>0</td><td>0</td></tr>`,
				html.EscapeString(string(id)))
			continue
		}
		ratio := a.Ratio()
		cls := "ok"
		if ratio < 0.6 {
			cls = "bad"
		} else if ratio < 0.9 {
			cls = "warn"
		}
		fmt.Fprintf(b, `<tr><td>%s</td><td class="%s">%.0f%%</td><td>%d</td><td>%d</td><td>%d</td></tr>`,
			html.EscapeString(string(id)), cls, 100*ratio, a.Total, a.LLMOnly, a.DrishtiOnly)
	}
	b.WriteString(`</table>`)
	b.WriteString(`<p class="meta">LLM only = the model detected what the deterministic triggers did not; Drishti only = the triggers fired but the model said not-detected. Below 60&#37; sustained agreement the <code>VerdictDriftHigh</code> alert fires.</p>`)
}

// renderFlipSpark plots the per-mode shadow flip ratio over the series
// store's window and prints the current aggregates. Skipped without a
// series store; an empty chart notes the absence of data.
func (s *JobServer) renderFlipSpark(b *strings.Builder, flips map[quality.Mode]quality.FlipStat) {
	b.WriteString(`<h2>Shadow re-run flips</h2>`)
	modes := make([]string, 0, len(flips))
	for m := range flips {
		modes = append(modes, string(m))
	}
	sort.Strings(modes)
	if len(modes) == 0 {
		b.WriteString(`<p class="readout">no shadow re-runs yet</p>`)
	} else {
		parts := make([]string, 0, len(modes))
		for _, m := range modes {
			f := flips[quality.Mode(m)]
			parts = append(parts, fmt.Sprintf("%s: %d/%d flipped (%.0f%%)", m, f.Flipped, f.Shadowed, 100*f.Ratio()))
		}
		fmt.Fprintf(b, `<p class="readout">%s</p>`, html.EscapeString(strings.Join(parts, " · ")))
	}
	if s.series == nil {
		b.WriteString(`<p class="nodata">no series store wired in</p>`)
		return
	}
	now := time.Now()
	window := 10 * time.Minute
	if ret := s.series.Retention(); ret < window {
		window = ret
	}
	from := now.Add(-window)
	// The gauge is labelled per reuse mode; take the point-wise max so
	// the sparkline shows the worst mode at each instant (the same
	// shape the SemcacheFlipRateHigh rule evaluates).
	byT := map[int64]float64{}
	for _, res := range s.series.Query(series.Query{
		Name: "ion_semcache_flip_ratio", From: from, To: now,
	}) {
		for _, pt := range res.Points {
			byT[pt.T] = math.Max(byT[pt.T], pt.V)
		}
	}
	pts := make([]series.Point, 0, len(byT))
	for ts, v := range byT {
		pts = append(pts, series.Point{T: ts, V: v})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	if len(pts) < 2 {
		b.WriteString(`<p class="nodata">no flip-ratio samples yet</p>`)
		return
	}
	const width, height, pad = 560, 64, 3
	fromMs, toMs := from.UnixMilli(), now.UnixMilli()
	fmt.Fprintf(b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, width, height, width, height)
	var path strings.Builder
	for j, pt := range pts {
		x := pad + float64(width-2*pad)*float64(pt.T-fromMs)/float64(toMs-fromMs)
		// Ratios live in [0,1]; a fixed scale keeps the alert threshold
		// visually stable across reloads.
		y := float64(height-pad) - float64(height-2*pad)*math.Min(pt.V, 1)
		if j > 0 {
			path.WriteByte(' ')
		}
		fmt.Fprintf(&path, "%.1f,%.1f", x, y)
	}
	fmt.Fprintf(b, `<polyline fill="none" stroke="#7c3aed" stroke-width="1.5" points="%s"/>`, path.String())
	b.WriteString(`</svg>`)
	fmt.Fprintf(b, `<p class="readout"><strong>%.0f%%</strong> <span class="range">worst-mode flip ratio, last %s; above 25&#37; sustained the <code>SemcacheFlipRateHigh</code> alert fires</span></p>`,
		100*pts[len(pts)-1].V, window)
}

// renderDisagreements writes the disagreement browser: recent
// scorecards where the LLM and the deterministic baseline diverged or
// a shadow re-run flipped verdicts, each linking to its job page.
func renderDisagreements(b *strings.Builder, cards []quality.Scorecard) {
	b.WriteString(`<h2>Recent disagreements</h2>`)
	shown := 0
	for _, c := range cards {
		if c.Disagreements == 0 && (c.Shadow == nil || len(c.Shadow.Flips) == 0) {
			continue
		}
		if shown == 0 {
			b.WriteString(`<table><tr><th>job</th><th>trace</th><th>mode</th><th>agreement</th><th>issues</th></tr>`)
		}
		shown++
		if shown > 25 {
			continue
		}
		var details []string
		for _, sc := range c.Issues {
			if !sc.Agree {
				details = append(details, fmt.Sprintf("%s (%s)", sc.Issue, sc.Kind))
			}
		}
		if c.Shadow != nil {
			for _, f := range c.Shadow.Flips {
				details = append(details, fmt.Sprintf("%s (flipped)", f))
			}
		}
		fmt.Fprintf(b, `<tr><td><a href="/jobs/%s"><code>%s</code></a></td><td>%s</td><td>%s</td><td>%.0f%%</td><td>%s</td></tr>`,
			html.EscapeString(c.JobID), html.EscapeString(c.JobID),
			html.EscapeString(c.Trace), html.EscapeString(string(c.Mode)),
			100*c.Agreement, html.EscapeString(strings.Join(details, ", ")))
	}
	if shown == 0 {
		b.WriteString(`<p class="nodata">no disagreements on record</p>`)
		return
	}
	b.WriteString(`</table>`)
	if shown > 25 {
		fmt.Fprintf(b, `<p class="meta">%d more not shown &#8212; query <a href="/api/quality">/api/quality</a> with an <code>issue=</code> filter.</p>`, shown-25)
	}
}

// qualityDashHead is the page prologue; strict XML like the LLM
// dashboard (void elements self-closed, numeric character references
// only).
const qualityDashHead = `<html><head><meta charset="utf-8" /><title>ION &#8212; diagnosis quality</title>
<meta http-equiv="refresh" content="5" />
<style>
body { font-family: system-ui, sans-serif; max-width: 56rem; margin: 2rem auto; color: #111 }
h1 { margin-bottom: 0.25rem }
h2 { font-size: 1rem; margin: 1.5rem 0 0.25rem }
.meta { color: #555 }
.nodata { color: #999; font-style: italic }
.readout { margin: 0.25rem 0 0; font-size: 0.9rem }
.range { color: #777; font-size: 0.8rem }
.ok { color: #059669 }
.warn { color: #d97706; font-weight: 600 }
.bad { color: #dc2626; font-weight: 600 }
svg { width: 100%; height: 64px; background: #fafafa; border: 1px solid #ddd; border-radius: 6px }
table { border-collapse: collapse; width: 100%; margin-top: 0.5rem; font-size: 0.85rem }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left }
</style></head>
<body>
<h1>ION diagnosis quality</h1>
`
