package webui

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ion/internal/jobs"
	"ion/internal/testutil"
)

// textWorkloadTrace renders a workload as darshan-parser text, the
// format the streaming path shards during upload.
func textWorkloadTrace(t *testing.T) []byte {
	t.Helper()
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := log.WriteDXTText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postStream POSTs body with chunked transfer encoding (the reader is
// wrapped so net/http cannot learn its length up front).
func postStream(t *testing.T, url string, body []byte) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream",
		struct{ io.Reader }{bytes.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

func TestStreamEndpoint(t *testing.T) {
	srv, svc := jobServer(t, jobs.Config{Workers: 1})
	trace := textWorkloadTrace(t)

	resp, sr := postStream(t, srv.URL+"/api/jobs/stream?name=ior-hard", trace)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/jobs/stream status = %d", resp.StatusCode)
	}
	if sr.Dedup {
		t.Error("first streamed upload reported as dedup")
	}
	if sr.Job.Ingest == nil || sr.Job.Ingest.Mode != jobs.IngestStream {
		t.Fatalf("ingest provenance missing: %+v", sr.Job.Ingest)
	}
	if sr.Job.Ingest.Bytes != int64(len(trace)) {
		t.Errorf("ingest bytes = %d, want %d", sr.Job.Ingest.Bytes, len(trace))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc.Wait(ctx, sr.Job.ID)
	if err != nil || final.State != jobs.StateDone {
		t.Fatalf("job did not complete: state=%s err=%v (%s)", final.State, err, final.Error)
	}

	// The job page surfaces the streamed-ingestion provenance.
	page, err := http.Get(srv.URL + "/jobs/" + sr.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer page.Body.Close()
	html, _ := io.ReadAll(page.Body)
	if !strings.Contains(string(html), "Streamed ingestion") {
		t.Error("job page missing the streamed-ingestion banner")
	}

	// Identical bytes through the whole-body path dedup against the
	// streamed job: both ingestion paths share one content-hash space.
	sr2, status := postTrace(t, srv.URL+"/api/jobs?name=copy", trace)
	if status != http.StatusOK || !sr2.Dedup || sr2.Job.ID != sr.Job.ID {
		t.Errorf("body-path re-upload not deduplicated: status=%d dedup=%v id=%s want %s",
			status, sr2.Dedup, sr2.Job.ID, sr.Job.ID)
	}
}

func TestStreamEndpointBadTrace(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Workers: 1})
	resp, _ := postStream(t, srv.URL+"/api/jobs/stream", []byte("definitely not a trace\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestStreamEndpointBusy(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Workers: 1, StreamMaxBuffer: 16})
	resp, _ := postStream(t, srv.URL+"/api/jobs/stream", textWorkloadTrace(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After hint")
	}
}
