package webui

import (
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/expertsim"
	"ion/internal/jobs"
	"ion/internal/llm/ledger"
	"ion/internal/obs"
)

// llmServer builds a job server with the audit ledger wired in: the
// expertsim backend is wrapped by the recording client, the service
// attributes costs, and the ledger routes are enabled.
func llmServer(t *testing.T) (*httptest.Server, *ledger.Store) {
	t.Helper()
	reg := obs.NewRegistry()
	lst, err := ledger.Open(ledger.StoreOptions{
		Path: filepath.Join(t.TempDir(), "ledger.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lst.Close() })
	client := ledger.Wrap(expertsim.New(), lst, ledger.WrapOptions{Registry: reg})
	svc, err := jobs.Open(jobs.Config{
		Dir: t.TempDir(), Workers: 1, Client: client, Ledger: lst, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJobServer(client, svc)
	if err != nil {
		t.Fatal(err)
	}
	js.WithObs(reg, nil).WithLLMLedger(client)
	srv := httptest.NewServer(js.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close(t.Context())
	})
	return srv, lst
}

// waitJobDone polls the job API until the job leaves the queue.
func waitJobDone(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var job jobs.Job
		if st := getJSON(t, base+"/api/jobs/"+id, &job); st != http.StatusOK {
			t.Fatalf("job status = %d", st)
		}
		switch job.State {
		case jobs.StateDone, jobs.StateReused, jobs.StateFailed:
			return job
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return jobs.Job{}
}

// TestLLMLedgerAPI runs a trace through the service and reads the
// audit trail back over HTTP: entries attributed to the job, filters
// honored, totals populated.
func TestLLMLedgerAPI(t *testing.T) {
	srv, _ := llmServer(t)
	sr, st := postTrace(t, srv.URL+"/api/jobs", workloadTrace(t))
	if st != http.StatusAccepted {
		t.Fatalf("submit status = %d", st)
	}
	job := waitJobDone(t, srv.URL, sr.Job.ID)
	if job.State != jobs.StateDone {
		t.Fatalf("job state = %s (%s)", job.State, job.Error)
	}
	if job.Cost == nil || job.Cost.Calls == 0 {
		t.Fatalf("job cost = %+v, want attributed calls", job.Cost)
	}

	var body struct {
		Totals  ledger.Totals          `json:"totals"`
		Health  []ledger.BackendHealth `json:"health"`
		Jobs    []ledger.JobSum        `json:"jobs"`
		Entries []ledger.Entry         `json:"entries"`
	}
	if st := getJSON(t, srv.URL+"/api/llm/ledger", &body); st != http.StatusOK {
		t.Fatalf("ledger status = %d", st)
	}
	if len(body.Entries) == 0 || body.Totals.Calls == 0 {
		t.Fatalf("ledger empty: %d entries, %d calls", len(body.Entries), body.Totals.Calls)
	}
	for _, e := range body.Entries {
		if e.Job != sr.Job.ID {
			t.Fatalf("entry job = %q, want %q", e.Job, sr.Job.ID)
		}
		if len(e.PromptSHA) != 64 || e.Backend == "" {
			t.Fatalf("entry incomplete: %+v", e)
		}
	}
	if len(body.Jobs) == 0 || body.Jobs[0].Job != sr.Job.ID {
		t.Fatalf("job rollup = %+v", body.Jobs)
	}

	// Filters: job mismatch empties the window, limit truncates it.
	if st := getJSON(t, srv.URL+"/api/llm/ledger?job=j-nope", &body); st != http.StatusOK {
		t.Fatalf("filtered status = %d", st)
	}
	if len(body.Entries) != 0 {
		t.Fatalf("job filter leaked %d entries", len(body.Entries))
	}
	if st := getJSON(t, srv.URL+"/api/llm/ledger?limit=1&backend=expertsim", &body); st != http.StatusOK {
		t.Fatalf("limited status = %d", st)
	}
	if len(body.Entries) != 1 {
		t.Fatalf("limit=1 returned %d entries", len(body.Entries))
	}
	var errBody struct{ Error string }
	if st := getJSON(t, srv.URL+"/api/llm/ledger?limit=bogus", &errBody); st != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", st)
	}
}

// TestLLMDashboardXML proves the zero-JS dashboard is well-formed XML
// end to end (the CI smoke parses it with an XML parser) and carries
// the expected sections.
func TestLLMDashboardXML(t *testing.T) {
	srv, _ := llmServer(t)
	sr, st := postTrace(t, srv.URL+"/api/jobs", workloadTrace(t))
	if st != http.StatusAccepted {
		t.Fatalf("submit status = %d", st)
	}
	waitJobDone(t, srv.URL, sr.Job.ID)

	resp, err := http.Get(srv.URL + "/dashboard/llm")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status = %d", resp.StatusCode)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(strings.NewReader(string(page)))
	for {
		if _, err := dec.Token(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("page is not well-formed XML: %v\n%s", err, page)
		}
	}
	for _, want := range []string{
		"LLM cost &amp; audit",
		"Tokens by prompt template",
		"Backend health",
		"Most expensive jobs",
		"diagnosis",
		"expertsim",
		sr.Job.ID,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// The job page surfaces the attribution banner, and the index page
	// the cumulative totals.
	for path, want := range map[string]string{
		"/jobs/" + sr.Job.ID: "LLM cost:",
		"/":                  "LLM calls",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), want) {
			t.Errorf("%s missing %q", path, want)
		}
	}
}

// TestLLMRoutesDisabled verifies the ledger routes 404 cleanly when no
// ledger is wired in.
func TestLLMRoutesDisabled(t *testing.T) {
	srv, _ := jobServer(t, jobs.Config{Workers: 1})
	for _, path := range []string{"/api/llm/ledger", "/dashboard/llm"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}
