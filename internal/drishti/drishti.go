// Package drishti reimplements the Drishti I/O diagnosis tool (Bez et
// al., PDSW'22): the trigger-based baseline the paper compares ION
// against. Drishti evaluates a fixed set of heuristic triggers with
// expert-tuned thresholds over Darshan counters and emits leveled
// insights with canned recommendations. The deliberate contrast with
// ION: thresholds here are workload-independent constants (1 MiB
// "small", 10% rates, ...), there is no mitigation reasoning, and the
// DXT trace is never consulted.
package drishti

import (
	"fmt"
	"sort"
	"strings"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/table"
)

// Level grades an insight, mirroring Drishti's traffic-light output.
type Level string

// Insight levels.
const (
	LevelHigh Level = "HIGH"
	LevelWarn Level = "WARN"
	LevelOK   Level = "OK"
	LevelInfo Level = "INFO"
)

// Insight is one fired trigger.
type Insight struct {
	Code           string // stable trigger id, e.g. "D05"
	Level          Level
	Issue          issue.ID // taxonomy mapping for the evaluation
	Message        string
	Recommendation string
}

// Config holds Drishti's thresholds — the fixed constants the paper
// argues are error-prone across systems and workloads (§2).
type Config struct {
	SmallRequestSize     int64   // bytes; below this a request is "small" (default 1 MiB)
	SmallRequestsPercent float64 // share of small requests that triggers (default 0.10)
	SmallRequestsCount   int64   // absolute count floor (default 1000)
	MisalignedPercent    float64 // share of misaligned requests (default 0.10)
	MetadataTimeSeconds  float64 // aggregate metadata seconds (default 30)
	MetadataOpsCount     int64   // open/stat count floor (default 1000)
	RandomOpsPercent     float64 // share of non-sequential ops (default 0.20)
	ImbalancePercent     float64 // (max-avg)/max byte imbalance (default 0.30)
	StragglerPercent     float64 // single-op share of phase time (default 0.15)
	TimeImbalanceCV      float64 // coefficient of variation of rank time (default 1.0)
	CollectivePercent    float64 // minimum collective share before indep ops flagged (default 0.50)
}

// DefaultConfig returns Drishti's published defaults.
func DefaultConfig() Config {
	return Config{
		SmallRequestSize:     1 << 20,
		SmallRequestsPercent: 0.10,
		SmallRequestsCount:   1000,
		MisalignedPercent:    0.10,
		MetadataTimeSeconds:  30,
		MetadataOpsCount:     1000,
		RandomOpsPercent:     0.20,
		ImbalancePercent:     0.30,
		StragglerPercent:     0.15,
		TimeImbalanceCV:      1.0,
		CollectivePercent:    0.50,
	}
}

// Report is the result of one Drishti run.
type Report struct {
	Insights []Insight
	// TriggersEvaluated counts the checks performed.
	TriggersEvaluated int
}

// High returns the HIGH-level insights.
func (r *Report) High() []Insight {
	var out []Insight
	for _, in := range r.Insights {
		if in.Level == LevelHigh {
			out = append(out, in)
		}
	}
	return out
}

// Flagged reports whether a HIGH insight maps to the issue — Drishti's
// headline findings, the level the paper's Figure 3 column shows.
func (r *Report) Flagged(id issue.ID) bool {
	for _, in := range r.Insights {
		if in.Issue == id && in.Level == LevelHigh {
			return true
		}
	}
	return false
}

// Render prints the report in Drishti's terminal style.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("DRISHTI v.0 (reimplementation)\n")
	fmt.Fprintf(&b, "%d triggers evaluated, %d insights\n\n", r.TriggersEvaluated, len(r.Insights))
	for _, in := range r.Insights {
		fmt.Fprintf(&b, "[%-4s] %s %s\n", in.Level, in.Code, in.Message)
		if in.Recommendation != "" {
			fmt.Fprintf(&b, "        > %s\n", in.Recommendation)
		}
	}
	return b.String()
}

// analyzer carries shared state across triggers.
type analyzer struct {
	cfg    Config
	out    *extractor.Output
	posix  *table.Table
	mpiio  *table.Table
	stdio  *table.Table
	lustre *table.Table
	report *Report
}

// Analyze runs every trigger over an extracted trace.
func Analyze(out *extractor.Output, cfg Config) (*Report, error) {
	if out == nil {
		return nil, fmt.Errorf("drishti: nil extraction")
	}
	a := &analyzer{
		cfg:    cfg,
		out:    out,
		posix:  out.Table(extractor.TablePOSIX),
		mpiio:  out.Table(extractor.TableMPIIO),
		stdio:  out.Table(extractor.TableSTDIO),
		lustre: out.Table(extractor.TableLustre),
		report: &Report{},
	}
	triggers := []func() error{
		a.stdioUsage,
		a.smallReads,
		a.smallWrites,
		a.misalignedFile,
		a.misalignedMem,
		a.redundantReads,
		a.redundantWrites,
		a.randomReads,
		a.randomWrites,
		a.sequentialReads,
		a.sequentialWrites,
		a.loadImbalance,
		a.timeImbalance,
		a.writeStraggler,
		a.readStraggler,
		a.metadataTime,
		a.metadataOps,
		a.excessiveSeeks,
		a.excessiveFsyncs,
		a.rwSwitches,
		a.manyFiles,
		a.posixOnly,
		a.indepReads,
		a.indepWrites,
		a.noCollectiveOpens,
		a.blockingMPIIO,
		a.noHints,
		a.stripeWidth,
		a.sharedSmallWrites,
		a.fileCountPerRank,
	}
	for _, t := range triggers {
		a.report.TriggersEvaluated++
		if err := t(); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(a.report.Insights, func(i, j int) bool {
		return levelRank(a.report.Insights[i].Level) < levelRank(a.report.Insights[j].Level)
	})
	return a.report, nil
}

func levelRank(l Level) int {
	switch l {
	case LevelHigh:
		return 0
	case LevelWarn:
		return 1
	case LevelInfo:
		return 2
	}
	return 3
}

func (a *analyzer) add(code string, level Level, id issue.ID, msg, rec string) {
	a.report.Insights = append(a.report.Insights, Insight{
		Code: code, Level: level, Issue: id, Message: msg, Recommendation: rec,
	})
}

// --- counter helpers ---

func (a *analyzer) sum(t *table.Table, col string) int64 {
	if t == nil || !t.HasCol(col) {
		return 0
	}
	v, err := t.SumInt(col)
	if err != nil {
		return 0
	}
	return v
}

func (a *analyzer) fsum(t *table.Table, col string) float64 {
	if t == nil || !t.HasCol(col) {
		return 0
	}
	v, err := t.SumFloat(col)
	if err != nil {
		return 0
	}
	return v
}

func (a *analyzer) posixOps() int64 {
	return a.sum(a.posix, darshan.CPosixReads) + a.sum(a.posix, darshan.CPosixWrites)
}

// smallCount sums the histogram bins below the small-request size.
func (a *analyzer) smallCount(prefix string) int64 {
	var n int64
	for _, b := range darshan.SizeBins {
		if b.Hi > 0 && b.Hi <= a.cfg.SmallRequestSize {
			n += a.sum(a.posix, prefix+b.Suffix)
		}
	}
	return n
}

func (a *analyzer) nprocs() int64 {
	job := a.out.Table(extractor.TableJob)
	if job == nil || job.NumRows() == 0 {
		return int64(a.out.Header.NProcs)
	}
	v, err := job.Int(0, "nprocs")
	if err != nil {
		return int64(a.out.Header.NProcs)
	}
	return v
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

func safeShare(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
