package drishti

import (
	"strings"
	"testing"

	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/table"
	"ion/internal/testutil"
)

func analyzeWorkload(t *testing.T, name string, cfg Config) *Report {
	t.Helper()
	out, _, err := testutil.Extracted(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(out, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SmallRequestSize != 1<<20 {
		t.Errorf("small size = %d, want Drishti's 1 MiB", cfg.SmallRequestSize)
	}
	if cfg.SmallRequestsPercent != 0.10 {
		t.Errorf("small pct = %f", cfg.SmallRequestsPercent)
	}
}

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil, DefaultConfig()); err == nil {
		t.Error("nil extraction accepted")
	}
}

func TestTriggerCount(t *testing.T) {
	rep := analyzeWorkload(t, "ior-easy-1m-shared", DefaultConfig())
	if rep.TriggersEvaluated < 30 {
		t.Errorf("triggers evaluated = %d, Drishti has 30", rep.TriggersEvaluated)
	}
}

func TestOpenPMDBaselineMatchesPaperColumn(t *testing.T) {
	// Paper Figure 3: small reads + small writes + per-file attribution
	// + 100% misaligned.
	rep := analyzeWorkload(t, "openpmd-baseline", DefaultConfig())
	if !rep.Flagged(issue.SmallIO) {
		t.Error("small I/O not flagged")
	}
	if !rep.Flagged(issue.MisalignedIO) {
		t.Error("misalignment not flagged")
	}
	text := rep.Render()
	for _, want := range []string{
		"small read requests",
		"small write requests",
		"8a_parallel_3Db_0000001.h5",
		"misaligned file requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestOpenPMDOptimizedMatchesPaperColumn(t *testing.T) {
	// Paper: Drishti flags random read operations on the optimized trace.
	rep := analyzeWorkload(t, "openpmd-optimized", DefaultConfig())
	if !rep.Flagged(issue.RandomAccess) {
		t.Error("random reads not flagged")
	}
	if !strings.Contains(rep.Render(), "random read operations") {
		t.Error("random-read message missing")
	}
	// And (the §2 pitfall): it also flags the benign small reads.
	if !rep.Flagged(issue.SmallIO) {
		t.Error("expected the threshold false alarm on small reads")
	}
}

func TestE2EBaselineMatchesPaperColumn(t *testing.T) {
	// Paper: misaligned (99.81%) + load imbalance (99.90%) naming the file.
	rep := analyzeWorkload(t, "e2e-baseline", DefaultConfig())
	if !rep.Flagged(issue.MisalignedIO) {
		t.Error("misalignment not flagged")
	}
	if !rep.Flagged(issue.LoadImbalance) {
		t.Error("load imbalance not flagged")
	}
	text := rep.Render()
	if !strings.Contains(text, "Load imbalance of 99") {
		t.Errorf("imbalance percentage off:\n%s", text)
	}
	if !strings.Contains(text, "3d_32_32_16_32_32_32.nc4") {
		t.Error("imbalance message does not name the file")
	}
}

func TestE2EOptimizedMatchesPaperColumn(t *testing.T) {
	// Paper: ONLY misalignment remains; the aggregator-subset imbalance
	// is invisible to counter-only analysis.
	rep := analyzeWorkload(t, "e2e-optimized", DefaultConfig())
	if !rep.Flagged(issue.MisalignedIO) {
		t.Error("misalignment not flagged")
	}
	if rep.Flagged(issue.LoadImbalance) {
		t.Error("counter-only Drishti should not see the aggregator subset")
	}
}

func TestIORHardStridedLooksSequentialToCounters(t *testing.T) {
	// The Darshan subtlety: strided forward access counts as sequential,
	// so Drishti's random trigger stays silent where ION (DXT-based)
	// detects the non-contiguous pattern.
	rep := analyzeWorkload(t, "ior-hard", DefaultConfig())
	if rep.Flagged(issue.RandomAccess) {
		t.Error("counter-based random trigger should miss the strided pattern")
	}
	if !rep.Flagged(issue.SmallIO) {
		t.Error("small I/O should be flagged")
	}
	if !rep.Flagged(issue.MisalignedIO) {
		t.Error("misalignment should be flagged")
	}
}

func TestIOREasy2KFalseAlarm(t *testing.T) {
	// The paper's headline pitfall: the 1 MiB / 10% trigger fires on an
	// aggregatable consecutive stream.
	rep := analyzeWorkload(t, "ior-easy-2k-shared", DefaultConfig())
	if !rep.Flagged(issue.SmallIO) {
		t.Error("expected the small-I/O false alarm on the aggregatable stream")
	}
}

func TestIOREasy1MBlindSpot(t *testing.T) {
	// 1 MiB transfers are not "< 1MB": the fixed threshold goes silent.
	rep := analyzeWorkload(t, "ior-easy-1m-shared", DefaultConfig())
	if rep.Flagged(issue.SmallIO) {
		t.Error("1 MiB transfers must not trip the < 1 MiB trigger")
	}
}

func TestMDWorkbenchCountFloorBlindSpot(t *testing.T) {
	// 768 small writes < the 1000-count floor: Drishti under-reports the
	// metadata-bound workload's small I/O.
	rep := analyzeWorkload(t, "md-workbench", DefaultConfig())
	if rep.Flagged(issue.SmallIO) {
		t.Error("count floor should suppress the small-I/O trigger here")
	}
	// But lowering the floor fires it — the threshold sensitivity.
	cfg := DefaultConfig()
	cfg.SmallRequestsCount = 100
	rep2 := analyzeWorkload(t, "md-workbench", cfg)
	if !rep2.Flagged(issue.SmallIO) {
		t.Error("lowered floor should fire the trigger")
	}
}

func TestThresholdSensitivity(t *testing.T) {
	// Raising the small-request threshold to 4 MiB flags the benign
	// 1 MiB stream: thresholds cut both ways.
	cfg := DefaultConfig()
	cfg.SmallRequestSize = 4 << 20
	rep := analyzeWorkload(t, "ior-easy-1m-shared", cfg)
	if !rep.Flagged(issue.SmallIO) {
		t.Error("4 MiB threshold should flag 1 MiB transfers")
	}
}

func TestPosixOnlyTrigger(t *testing.T) {
	rep := analyzeWorkload(t, "ior-easy-1m-fpp", DefaultConfig())
	found := false
	for _, in := range rep.Insights {
		if in.Code == "D23" {
			found = true
			if in.Level != LevelWarn {
				t.Errorf("D23 level = %s", in.Level)
			}
		}
	}
	if !found {
		t.Error("POSIX-only trigger did not fire")
	}
	// MPI-IO workloads must not trip it.
	rep2 := analyzeWorkload(t, "openpmd-baseline", DefaultConfig())
	for _, in := range rep2.Insights {
		if in.Code == "D23" {
			t.Error("D23 fired despite MPI-IO usage")
		}
	}
}

func TestIndependentWritesTrigger(t *testing.T) {
	rep := analyzeWorkload(t, "openpmd-baseline", DefaultConfig())
	if !rep.Flagged(issue.CollectiveIO) {
		t.Error("independent MPI-IO writes not flagged")
	}
}

func TestMetadataTriggers(t *testing.T) {
	rep := analyzeWorkload(t, "md-workbench", DefaultConfig())
	var sawMetaOps, sawManyFiles bool
	for _, in := range rep.Insights {
		switch in.Code {
		case "D18":
			sawMetaOps = true
		case "D22":
			sawManyFiles = true
		}
	}
	if !sawMetaOps {
		t.Error("metadata ops trigger silent on md-workbench")
	}
	if !sawManyFiles {
		t.Error("many-files trigger silent on md-workbench")
	}
}

func TestInsightOrdering(t *testing.T) {
	rep := analyzeWorkload(t, "e2e-baseline", DefaultConfig())
	lastRank := -1
	for _, in := range rep.Insights {
		r := levelRank(in.Level)
		if r < lastRank {
			t.Fatalf("insights not ordered by severity: %v", rep.Insights)
		}
		lastRank = r
	}
}

func TestRenderShape(t *testing.T) {
	rep := analyzeWorkload(t, "ior-hard", DefaultConfig())
	text := rep.Render()
	if !strings.Contains(text, "DRISHTI") {
		t.Error("banner missing")
	}
	if !strings.Contains(text, "[HIGH]") {
		t.Error("levels missing")
	}
	if len(rep.High()) == 0 {
		t.Error("no HIGH insights on ior-hard")
	}
}

func TestEmptyTraceQuiet(t *testing.T) {
	// A trace with no tables at all evaluates all triggers silently.
	out := &extractor.Output{Tables: map[string]*table.Table{}}
	rep, err := Analyze(out, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Insights) != 0 {
		t.Errorf("empty trace produced insights: %v", rep.Insights)
	}
}
