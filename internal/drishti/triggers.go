package drishti

import (
	"fmt"
	"math"

	"ion/internal/darshan"
	"ion/internal/issue"
)

// This file holds the 30 trigger implementations. Messages mirror the
// phrasing of Drishti's reference output so Figure 3 comparisons read
// like the paper's.

// D01: heavy STDIO usage.
func (a *analyzer) stdioUsage() error {
	stdioOps := a.sum(a.stdio, darshan.CStdioReads) + a.sum(a.stdio, darshan.CStdioWrites)
	total := stdioOps + a.posixOps()
	if stdioOps > 10 && safeShare(stdioOps, total) > 0.1 {
		a.add("D01", LevelWarn, issue.Interface,
			fmt.Sprintf("Application issues a high number (%d) of data operations through STDIO (%s of all operations)",
				stdioOps, pct(safeShare(stdioOps, total))),
			"Consider switching to POSIX or MPI-IO for data-intensive paths")
	}
	return nil
}

// D02: high number of small reads.
func (a *analyzer) smallReads() error {
	small := a.smallCount("POSIX_SIZE_READ_")
	reads := a.sum(a.posix, darshan.CPosixReads)
	if small > a.cfg.SmallRequestsCount && safeShare(small, reads) > a.cfg.SmallRequestsPercent {
		a.add("D02", LevelHigh, issue.SmallIO,
			fmt.Sprintf("Application issues a high number (%d) of small read requests (i.e., < %d bytes) — %s of all reads",
				small, a.cfg.SmallRequestSize, pct(safeShare(small, reads))),
			"Consider buffering read requests into larger, contiguous ones")
	}
	return nil
}

// D03: high number of small writes, with per-file attribution.
func (a *analyzer) smallWrites() error {
	small := a.smallCount("POSIX_SIZE_WRITE_")
	writes := a.sum(a.posix, darshan.CPosixWrites)
	if small > a.cfg.SmallRequestsCount && safeShare(small, writes) > a.cfg.SmallRequestsPercent {
		a.add("D03", LevelHigh, issue.SmallIO,
			fmt.Sprintf("Application issues a high number (%d) of small write requests (i.e., < %d bytes) — %s of all writes",
				small, a.cfg.SmallRequestSize, pct(safeShare(small, writes))),
			"Consider buffering write requests into larger, contiguous ones; if using MPI-IO, consider collective I/O")
		// Per-file attribution, as in Drishti's detailed mode.
		if a.posix != nil {
			var worstFile string
			var worstSmall int64
			for i := 0; i < a.posix.NumRows(); i++ {
				var rowSmall int64
				for _, b := range darshan.SizeBins {
					if b.Hi > 0 && b.Hi <= a.cfg.SmallRequestSize {
						v, err := a.posix.Int(i, "POSIX_SIZE_WRITE_"+b.Suffix)
						if err != nil {
							return err
						}
						rowSmall += v
					}
				}
				if rowSmall > worstSmall {
					worstSmall = rowSmall
					worstFile, _ = a.posix.Value(i, "file_name")
				}
			}
			if worstFile != "" && small > 0 {
				a.add("D04", LevelHigh, issue.SmallIO,
					fmt.Sprintf("(%s) small write requests are to \"%s\"",
						pct(safeShare(worstSmall, small)), worstFile),
					"")
			}
		}
	}
	return nil
}

// D05: misaligned file accesses.
func (a *analyzer) misalignedFile() error {
	mis := a.sum(a.posix, darshan.CPosixFileNotAligned)
	ops := a.posixOps()
	if share := safeShare(mis, ops); share > a.cfg.MisalignedPercent {
		a.add("D05", LevelHigh, issue.MisalignedIO,
			fmt.Sprintf("Application issues a high number (%s) of misaligned file requests", pct(share)),
			"Consider aligning requests to the file system block/stripe boundaries (e.g. H5Pset_alignment, stripe-aligned records)")
	}
	return nil
}

// D06: misaligned memory accesses.
func (a *analyzer) misalignedMem() error {
	mis := a.sum(a.posix, darshan.CPosixMemNotAligned)
	ops := a.posixOps()
	if share := safeShare(mis, ops); share > a.cfg.MisalignedPercent {
		a.add("D06", LevelWarn, issue.MisalignedIO,
			fmt.Sprintf("Application issues a high number (%s) of misaligned memory requests", pct(share)),
			"Consider aligning I/O buffers in memory (posix_memalign)")
	}
	return nil
}

// D07: redundant read traffic (bytes read exceed the file extent read).
func (a *analyzer) redundantReads() error {
	bytesRead := a.sum(a.posix, darshan.CPosixBytesRead)
	maxByte := a.sum(a.posix, darshan.CPosixMaxByteRead)
	if maxByte > 0 && bytesRead > 2*(maxByte+1) {
		a.add("D07", LevelWarn, issue.RandomAccess,
			fmt.Sprintf("Application reads %d bytes but the highest offset read is %d: redundant read traffic detected",
				bytesRead, maxByte),
			"Consider caching repeatedly read data in memory")
	}
	return nil
}

// D08: redundant write traffic.
func (a *analyzer) redundantWrites() error {
	bytesWritten := a.sum(a.posix, darshan.CPosixBytesWritten)
	maxByte := a.sum(a.posix, darshan.CPosixMaxByteWritten)
	if maxByte > 0 && bytesWritten > 2*(maxByte+1) {
		a.add("D08", LevelWarn, issue.LoadImbalance,
			fmt.Sprintf("Application writes %d bytes but the highest offset written is %d: regions are overwritten repeatedly",
				bytesWritten, maxByte),
			"Check for redundant writes (e.g. fill values on datasets that are later overwritten)")
	}
	return nil
}

// D09: random reads (Darshan definition: reads - sequential reads).
func (a *analyzer) randomReads() error {
	reads := a.sum(a.posix, darshan.CPosixReads)
	seq := a.sum(a.posix, darshan.CPosixSeqReads)
	random := reads - seq
	if reads > 0 && safeShare(random, reads) > a.cfg.RandomOpsPercent && random > 100 {
		a.add("D09", LevelHigh, issue.RandomAccess,
			fmt.Sprintf("Application is issuing a high number (%d) of random read operations (%s)",
				random, pct(safeShare(random, reads))),
			"Consider changing the access pattern to be sequential, or use collective I/O to reorganize accesses")
	}
	return nil
}

// D10: random writes.
func (a *analyzer) randomWrites() error {
	writes := a.sum(a.posix, darshan.CPosixWrites)
	seq := a.sum(a.posix, darshan.CPosixSeqWrites)
	random := writes - seq
	if writes > 0 && safeShare(random, writes) > a.cfg.RandomOpsPercent && random > 100 {
		a.add("D10", LevelHigh, issue.RandomAccess,
			fmt.Sprintf("Application is issuing a high number (%d) of random write operations (%s)",
				random, pct(safeShare(random, writes))),
			"Consider restructuring toward sequential writes or collective I/O")
	}
	return nil
}

// D11: mostly sequential reads (positive insight).
func (a *analyzer) sequentialReads() error {
	reads := a.sum(a.posix, darshan.CPosixReads)
	seq := a.sum(a.posix, darshan.CPosixSeqReads)
	if reads > 100 && safeShare(seq, reads) > 0.8 {
		a.add("D11", LevelOK, issue.RandomAccess,
			fmt.Sprintf("Application mostly uses sequential read requests (%s)", pct(safeShare(seq, reads))), "")
	}
	return nil
}

// D12: mostly sequential writes (positive insight).
func (a *analyzer) sequentialWrites() error {
	writes := a.sum(a.posix, darshan.CPosixWrites)
	seq := a.sum(a.posix, darshan.CPosixSeqWrites)
	if writes > 100 && safeShare(seq, writes) > 0.8 {
		a.add("D12", LevelOK, issue.RandomAccess,
			fmt.Sprintf("Application mostly uses sequential write requests (%s)", pct(safeShare(seq, writes))), "")
	}
	return nil
}

// D13: per-file byte load imbalance on shared files.
func (a *analyzer) loadImbalance() error {
	if a.posix == nil {
		return nil
	}
	nprocs := a.nprocs()
	for i := 0; i < a.posix.NumRows(); i++ {
		rank, err := a.posix.Int(i, "rank")
		if err != nil {
			return err
		}
		if rank != -1 || nprocs <= 1 {
			continue // shared-file records only
		}
		slowest, err := a.posix.Int(i, darshan.CPosixSlowestBytes)
		if err != nil {
			return err
		}
		bytesR, err := a.posix.Int(i, darshan.CPosixBytesRead)
		if err != nil {
			return err
		}
		bytesW, err := a.posix.Int(i, darshan.CPosixBytesWritten)
		if err != nil {
			return err
		}
		if slowest <= 0 {
			continue
		}
		avg := float64(bytesR+bytesW) / float64(nprocs)
		imb := (float64(slowest) - avg) / float64(slowest)
		fastest, err := a.posix.Int(i, darshan.CPosixFastestBytes)
		if err != nil {
			return err
		}
		// Drishti compares the extreme ranks: near-equal extremes mean
		// the counters show no skew even if DXT would.
		spread := safeShare(slowest-fastest, slowest)
		if imb > a.cfg.ImbalancePercent && spread > a.cfg.ImbalancePercent {
			name, _ := a.posix.Value(i, "file_name")
			a.add("D13", LevelHigh, issue.LoadImbalance,
				fmt.Sprintf("Load imbalance of %s detected while accessing \"%s\"", pct(imb), name),
				"Consider distributing the I/O workload across ranks or using collective I/O aggregators")
		}
	}
	return nil
}

// D14: rank time imbalance via the variance counter.
func (a *analyzer) timeImbalance() error {
	if a.posix == nil {
		return nil
	}
	nprocs := a.nprocs()
	for i := 0; i < a.posix.NumRows(); i++ {
		rank, err := a.posix.Int(i, "rank")
		if err != nil {
			return err
		}
		if rank != -1 || nprocs <= 1 {
			continue
		}
		variance, err := a.posix.Float(i, darshan.FPosixVarianceTime)
		if err != nil {
			return err
		}
		rt, err := a.posix.Float(i, darshan.FPosixReadTime)
		if err != nil {
			return err
		}
		wt, err := a.posix.Float(i, darshan.FPosixWriteTime)
		if err != nil {
			return err
		}
		mean := (rt + wt) / float64(nprocs)
		if mean > 0 && math.Sqrt(variance)/mean > a.cfg.TimeImbalanceCV {
			name, _ := a.posix.Value(i, "file_name")
			a.add("D14", LevelWarn, issue.TimeImbalance,
				fmt.Sprintf("Detected I/O time imbalance across ranks while accessing \"%s\" (stddev/mean %.1f)",
					name, math.Sqrt(variance)/mean),
				"Investigate straggler ranks")
		}
	}
	return nil
}

// D15: a single write dominating the write phase.
func (a *analyzer) writeStraggler() error {
	maxW := a.fsum(a.posix, darshan.FPosixMaxWriteTime)
	totalW := a.fsum(a.posix, darshan.FPosixWriteTime)
	if totalW > 0 && maxW/totalW > a.cfg.StragglerPercent && a.sum(a.posix, darshan.CPosixWrites) > 100 {
		a.add("D15", LevelWarn, issue.TimeImbalance,
			fmt.Sprintf("A single write consumed %s of the total write time", pct(maxW/totalW)),
			"Investigate outlier writes (lock revocations, OST congestion)")
	}
	return nil
}

// D16: a single read dominating the read phase.
func (a *analyzer) readStraggler() error {
	maxR := a.fsum(a.posix, darshan.FPosixMaxReadTime)
	totalR := a.fsum(a.posix, darshan.FPosixReadTime)
	if totalR > 0 && maxR/totalR > a.cfg.StragglerPercent && a.sum(a.posix, darshan.CPosixReads) > 100 {
		a.add("D16", LevelWarn, issue.TimeImbalance,
			fmt.Sprintf("A single read consumed %s of the total read time", pct(maxR/totalR)),
			"Investigate outlier reads")
	}
	return nil
}

// D17: aggregate metadata time.
func (a *analyzer) metadataTime() error {
	meta := a.fsum(a.posix, darshan.FPosixMetaTime)
	if meta > a.cfg.MetadataTimeSeconds {
		a.add("D17", LevelHigh, issue.Metadata,
			fmt.Sprintf("Application spends a significant amount of time (%.1f s) in metadata operations", meta),
			"Reduce opens/stats per iteration; keep file handles open")
	}
	return nil
}

// D18: high metadata operation counts.
func (a *analyzer) metadataOps() error {
	opens := a.sum(a.posix, darshan.CPosixOpens)
	stats := a.sum(a.posix, darshan.CPosixStats)
	if opens+stats > a.cfg.MetadataOpsCount {
		level := LevelWarn
		if opens+stats > safeMaxI64(a.posixOps(), 1) {
			level = LevelHigh
		}
		a.add("D18", level, issue.Metadata,
			fmt.Sprintf("Application issues a high number of metadata operations (%d opens, %d stats)", opens, stats),
			"Batch metadata work and avoid per-access open/close cycles")
	}
	return nil
}

// D19: excessive seeks.
func (a *analyzer) excessiveSeeks() error {
	seeks := a.sum(a.posix, darshan.CPosixSeeks)
	if ops := a.posixOps(); ops > 0 && safeShare(seeks, ops) > 0.5 && seeks > 1000 {
		a.add("D19", LevelWarn, issue.RandomAccess,
			fmt.Sprintf("Application issues %d seek operations (%s per data op)", seeks, pct(safeShare(seeks, ops))),
			"Use pread/pwrite or restructure toward sequential access")
	}
	return nil
}

// D20: excessive fsyncs.
func (a *analyzer) excessiveFsyncs() error {
	fsyncs := a.sum(a.posix, darshan.CPosixFsyncs)
	if writes := a.sum(a.posix, darshan.CPosixWrites); writes > 0 && fsyncs > 0 &&
		safeShare(fsyncs, writes) > 0.1 && fsyncs > 100 {
		a.add("D20", LevelWarn, issue.Metadata,
			fmt.Sprintf("Application issues %d fsync operations (one per %.1f writes)",
				fsyncs, float64(writes)/float64(fsyncs)),
			"Flush less frequently; rely on the file system's write-back")
	}
	return nil
}

// D21: frequent read/write switching.
func (a *analyzer) rwSwitches() error {
	switches := a.sum(a.posix, darshan.CPosixRWSwitches)
	if ops := a.posixOps(); ops > 0 && safeShare(switches, ops) > 0.3 && switches > 1000 {
		a.add("D21", LevelInfo, issue.RandomAccess,
			fmt.Sprintf("Application alternates between reads and writes %d times", switches),
			"Separate read and write phases where possible")
	}
	return nil
}

// D22: very many files.
func (a *analyzer) manyFiles() error {
	if a.posix == nil {
		return nil
	}
	files := map[string]bool{}
	for i := 0; i < a.posix.NumRows(); i++ {
		name, err := a.posix.Value(i, "file_name")
		if err != nil {
			return err
		}
		files[name] = true
	}
	if len(files) > 100 {
		a.add("D22", LevelWarn, issue.Metadata,
			fmt.Sprintf("Application accesses %d distinct files", len(files)),
			"Consider consolidating small files into shared containers (HDF5, tar, db)")
	}
	return nil
}

// D23: POSIX-only parallel I/O.
func (a *analyzer) posixOnly() error {
	mpiioOps := a.sum(a.mpiio, darshan.CMpiioIndepReads) + a.sum(a.mpiio, darshan.CMpiioIndepWrites) +
		a.sum(a.mpiio, darshan.CMpiioCollReads) + a.sum(a.mpiio, darshan.CMpiioCollWrites)
	if a.nprocs() > 1 && a.posixOps() > 0 && mpiioOps == 0 {
		a.add("D23", LevelWarn, issue.Interface,
			fmt.Sprintf("Application uses POSIX I/O from %d ranks and does not use MPI-IO", a.nprocs()),
			"Consider using MPI-IO (directly or via HDF5/PnetCDF) to benefit from collective optimizations")
	}
	return nil
}

// D24: many independent MPI-IO reads.
func (a *analyzer) indepReads() error {
	indep := a.sum(a.mpiio, darshan.CMpiioIndepReads)
	coll := a.sum(a.mpiio, darshan.CMpiioCollReads)
	if indep > 100 && safeShare(coll, indep+coll) < a.cfg.CollectivePercent {
		a.add("D24", LevelWarn, issue.CollectiveIO,
			fmt.Sprintf("Application issues %d independent MPI-IO reads (%s collective)",
				indep, pct(safeShare(coll, indep+coll))),
			"Consider collective read operations (MPI_File_read_all)")
	}
	return nil
}

// D25: many independent MPI-IO writes.
func (a *analyzer) indepWrites() error {
	indep := a.sum(a.mpiio, darshan.CMpiioIndepWrites)
	coll := a.sum(a.mpiio, darshan.CMpiioCollWrites)
	if indep > 100 && safeShare(coll, indep+coll) < a.cfg.CollectivePercent {
		a.add("D25", LevelHigh, issue.CollectiveIO,
			fmt.Sprintf("Application issues %d independent MPI-IO writes (%s collective)",
				indep, pct(safeShare(coll, indep+coll))),
			"Consider collective write operations (MPI_File_write_all) and enabling collective buffering")
	}
	return nil
}

// D26: MPI-IO without collective opens.
func (a *analyzer) noCollectiveOpens() error {
	collOpens := a.sum(a.mpiio, darshan.CMpiioCollOpens)
	indepOpens := a.sum(a.mpiio, darshan.CMpiioIndepOpens)
	if indepOpens > 0 && collOpens == 0 {
		a.add("D26", LevelInfo, issue.CollectiveIO,
			"Application opens MPI-IO files independently only",
			"Collective opens enable collective buffering")
	}
	return nil
}

// D27: no non-blocking MPI-IO.
func (a *analyzer) blockingMPIIO() error {
	nb := a.sum(a.mpiio, darshan.CMpiioNBReads) + a.sum(a.mpiio, darshan.CMpiioNBWrites)
	ops := a.sum(a.mpiio, darshan.CMpiioIndepReads) + a.sum(a.mpiio, darshan.CMpiioIndepWrites) +
		a.sum(a.mpiio, darshan.CMpiioCollReads) + a.sum(a.mpiio, darshan.CMpiioCollWrites)
	if ops > 1000 && nb == 0 {
		a.add("D27", LevelInfo, issue.CollectiveIO,
			"Application does not use non-blocking (asynchronous) MPI-IO operations",
			"Consider overlapping I/O with computation (MPI_File_iwrite/iread)")
	}
	return nil
}

// D28: no MPI-IO hints.
func (a *analyzer) noHints() error {
	if a.mpiio != nil && a.mpiio.NumRows() > 0 && a.sum(a.mpiio, darshan.CMpiioHints) == 0 {
		a.add("D28", LevelInfo, issue.CollectiveIO,
			"Application sets no MPI-IO hints",
			"Hints such as cb_nodes/striping_factor can tune collective buffering")
	}
	return nil
}

// D29: stripe width small relative to the job.
func (a *analyzer) stripeWidth() error {
	if a.lustre == nil || a.lustre.NumRows() == 0 {
		return nil
	}
	width, err := a.lustre.Int(0, darshan.CLustreStripeWidth)
	if err != nil {
		return err
	}
	osts, err := a.lustre.Int(0, darshan.CLustreOSTs)
	if err != nil {
		return err
	}
	if n := a.nprocs(); n >= 8 && width*4 <= osts && width < n {
		a.add("D29", LevelInfo, issue.SharedFile,
			fmt.Sprintf("Files are striped over %d of %d OSTs while %d ranks perform I/O", width, osts, n),
			"Consider increasing the stripe count (lfs setstripe -c) for shared files")
	}
	return nil
}

// D30: many small writes to a single shared file.
func (a *analyzer) sharedSmallWrites() error {
	if a.posix == nil {
		return nil
	}
	for i := 0; i < a.posix.NumRows(); i++ {
		rank, err := a.posix.Int(i, "rank")
		if err != nil {
			return err
		}
		if rank != -1 {
			continue
		}
		var small int64
		for _, b := range darshan.SizeBins {
			if b.Hi > 0 && b.Hi <= a.cfg.SmallRequestSize {
				v, err := a.posix.Int(i, "POSIX_SIZE_WRITE_"+b.Suffix)
				if err != nil {
					return err
				}
				small += v
			}
		}
		writes, err := a.posix.Int(i, darshan.CPosixWrites)
		if err != nil {
			return err
		}
		if small > a.cfg.SmallRequestsCount && safeShare(small, writes) > 0.5 {
			name, _ := a.posix.Value(i, "file_name")
			a.add("D30", LevelWarn, issue.SharedFile,
				fmt.Sprintf("Multiple ranks issue small writes to the shared file \"%s\"", name),
				"Shared-file small writes amplify lock traffic; consider collective buffering")
		}
	}
	return nil
}

// D31 (bonus parity check): many files per rank.
func (a *analyzer) fileCountPerRank() error {
	if a.posix == nil {
		return nil
	}
	n := a.nprocs()
	files := int64(a.posix.NumRows())
	if n > 0 && files/n > 50 {
		a.add("D31", LevelInfo, issue.Metadata,
			fmt.Sprintf("Application handles %d file records across %d ranks", files, n),
			"Very wide file sets stress the metadata servers")
	}
	return nil
}

func safeMaxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
