package prompt

import (
	"strings"
	"testing"

	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/testutil"
)

func builderAndOutput(t *testing.T, workload string) (*Builder, *extractor.Output) {
	t.Helper()
	out, _, err := testutil.Extracted(workload)
	if err != nil {
		t.Fatal(err)
	}
	return NewBuilder(knowledge.NewBase(knowledge.FromExtract(out))), out
}

func TestDiagnosisPromptStructure(t *testing.T) {
	b, out := builderAndOutput(t, "ior-hard")
	req, err := b.Diagnosis(issue.SmallIO, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Messages) != 2 || req.Messages[0].Role != llm.RoleSystem {
		t.Fatalf("message structure wrong: %+v", req.Messages)
	}
	content := req.Messages[1].Content
	for _, want := range []string{
		"Issue-ID: small-io",
		"## I/O Performance Issue Context",
		"## System hyper-parameters",
		"lustre_stripe_size = 1048576",
		"rpc_size = 4194304",
		"## Attached trace data",
		"POSIX.csv",
		"POSIX_CONSEC_WRITES:",
		SectionSteps,
		SectionCode,
		SectionConclusion,
		VerdictPrefix,
	} {
		if !strings.Contains(content, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	if req.Metadata[MetaKind] != KindDiagnosis || req.Metadata[MetaIssue] != "small-io" {
		t.Errorf("metadata = %v", req.Metadata)
	}
	if req.Metadata[MetaCSVDir] == "" {
		t.Error("csv dir metadata missing")
	}
	if len(req.Files) == 0 {
		t.Error("no file attachments")
	}
}

func TestModuleMapFiltersPrompt(t *testing.T) {
	b, out := builderAndOutput(t, "ior-hard")
	// The metadata issue does not need the DXT table; small-io does.
	meta, err := b.Diagnosis(issue.Metadata, out)
	if err != nil {
		t.Fatal(err)
	}
	small, err := b.Diagnosis(issue.SmallIO, out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(meta.Messages[1].Content, "### DXT.csv") {
		t.Error("metadata prompt should not describe DXT.csv")
	}
	if !strings.Contains(small.Messages[1].Content, "### DXT.csv") {
		t.Error("small-io prompt should describe DXT.csv")
	}
	// Filtering is the point: the metadata prompt must be smaller.
	if llm.PromptTokens(meta) >= llm.PromptTokens(small) {
		t.Errorf("module filtering ineffective: meta=%d small=%d tokens",
			llm.PromptTokens(meta), llm.PromptTokens(small))
	}
}

func TestDiagnosisPromptSkipsAbsentModules(t *testing.T) {
	// ior workloads have no MPI-IO module: the interface prompt must
	// not describe a nonexistent MPIIO.csv.
	b, out := builderAndOutput(t, "ior-easy-1m-fpp")
	req, err := b.Diagnosis(issue.Interface, out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(req.Messages[1].Content, "### MPIIO.csv") {
		t.Error("prompt describes an absent module table")
	}
}

func TestDiagnosisUnknownIssue(t *testing.T) {
	b, out := builderAndOutput(t, "ior-hard")
	if _, err := b.Diagnosis("bogus", out); err == nil {
		t.Error("unknown issue accepted")
	}
}

func TestEveryIssueBuildsAPrompt(t *testing.T) {
	b, out := builderAndOutput(t, "openpmd-baseline")
	for _, id := range issue.All {
		req, err := b.Diagnosis(id, out)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if llm.PromptTokens(req) < 200 {
			t.Errorf("%s: prompt suspiciously small (%d tokens)", id, llm.PromptTokens(req))
		}
	}
}

func TestSummaryPrompt(t *testing.T) {
	b, _ := builderAndOutput(t, "ior-hard")
	req := b.Summary(map[issue.ID]string{
		issue.SmallIO:    "small ops everywhere\nVERDICT: detected",
		issue.SharedFile: "no conflicts\nVERDICT: mitigated",
	})
	content := req.Messages[1].Content
	if !strings.Contains(content, "## Diagnoses to summarize") {
		t.Error("summary prompt missing header")
	}
	if !strings.Contains(content, "[small-io]") || !strings.Contains(content, "[shared-file]") {
		t.Error("summary prompt missing issue blocks")
	}
	// Canonical order: small-io before shared-file.
	if strings.Index(content, "[small-io]") > strings.Index(content, "[shared-file]") {
		t.Error("summary blocks out of canonical order")
	}
	if req.Metadata[MetaKind] != KindSummary {
		t.Errorf("metadata = %v", req.Metadata)
	}
}

func TestChatPrompt(t *testing.T) {
	b, _ := builderAndOutput(t, "ior-hard")
	history := []llm.Message{
		{Role: llm.RoleUser, Content: "earlier question"},
		{Role: llm.RoleAssistant, Content: "earlier answer"},
	}
	req := b.Chat("the report context", history, "what about alignment?")
	if len(req.Messages) != 4 {
		t.Fatalf("messages = %d, want 4 (system + 2 history + question)", len(req.Messages))
	}
	last := req.Messages[3].Content
	if !strings.Contains(last, "## Diagnosis context") || !strings.Contains(last, "## Question") {
		t.Error("chat prompt structure wrong")
	}
	if !strings.Contains(last, "what about alignment?") {
		t.Error("question missing")
	}
	if req.Metadata[MetaKind] != KindChat {
		t.Errorf("metadata = %v", req.Metadata)
	}
}

func TestColumnDocCoverageInPrompt(t *testing.T) {
	b, out := builderAndOutput(t, "openpmd-baseline")
	req, err := b.Diagnosis(issue.CollectiveIO, out)
	if err != nil {
		t.Fatal(err)
	}
	content := req.Messages[1].Content
	// Every described column carries a non-placeholder description for
	// the counters the issue context names as key metrics.
	for _, col := range []string{"MPIIO_COLL_WRITES", "MPIIO_INDEP_WRITES"} {
		if !strings.Contains(content, col+": ") {
			t.Errorf("column %s not described", col)
		}
	}
	if strings.Contains(content, ": Darshan counter\n- MPIIO_COLL") {
		t.Error("key metric column described by the fallback text")
	}
}
