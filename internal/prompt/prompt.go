// Package prompt constructs the Analyzer's LLM prompts: one diagnosis
// prompt per I/O issue (issue context + CSV column descriptions
// filtered by the issue's module map + chain-of-thought instructions +
// output format), a global summarization prompt, and interactive
// follow-up prompts. This is the paper's divide-and-conquer prompting
// design: many focused prompts instead of one voluminous one.
package prompt

import (
	"fmt"
	"strings"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
)

// Metadata keys attached to requests for routing and replay.
const (
	MetaKind   = "ion-kind" // "diagnosis", "summary", or "chat"
	MetaIssue  = "ion-issue"
	MetaCSVDir = "ion-csv-dir"
	// MetaConditioned is "1" on diagnosis prompts that carry retrieved
	// context from a semantically similar prior diagnosis.
	MetaConditioned = "ion-conditioned"
)

// Request kinds.
const (
	KindDiagnosis = "diagnosis"
	KindSummary   = "summary"
	KindChat      = "chat"
)

// Output format markers the model is instructed to emit and the
// Analyzer parses back out of completions.
const (
	SectionSteps      = "### ANALYSIS STEPS"
	SectionCode       = "### ANALYSIS CODE"
	SectionConclusion = "### CONCLUSION"
	VerdictPrefix     = "VERDICT:"
)

// systemPersona is the shared system message.
const systemPersona = `You are ION, an expert in HPC parallel I/O
performance: POSIX, MPI-IO, HDF5/PnetCDF, and the Lustre file system.
You analyze Darshan trace data extracted into CSV files. You reason
carefully step by step, write and execute analysis code against the
attached CSVs, ground every claim in computed numbers, and clearly
separate genuine performance problems from benign patterns.`

// Builder assembles prompts from a knowledge base.
type Builder struct {
	KB    *knowledge.Base
	Model string
}

// NewBuilder returns a Builder for the knowledge base.
func NewBuilder(kb *knowledge.Base) *Builder {
	return &Builder{KB: kb, Model: "gpt-4-1106-preview"}
}

// Diagnosis builds the per-issue diagnosis prompt. The CSV descriptions
// are filtered to the issue's module map; file attachments reference
// the extracted CSV paths.
func (b *Builder) Diagnosis(id issue.ID, out *extractor.Output) (llm.Request, error) {
	return b.diagnosis(id, out, "")
}

// DiagnosisConditioned builds the diagnosis prompt with retrieved
// context from a semantically similar prior diagnosis injected before
// the task: the model is asked to confirm or adjust the neighbor's
// conclusion against this trace's data instead of diagnosing from
// scratch. An empty retrieved string degrades to the plain prompt.
func (b *Builder) DiagnosisConditioned(id issue.ID, out *extractor.Output, retrieved string) (llm.Request, error) {
	return b.diagnosis(id, out, strings.TrimSpace(retrieved))
}

func (b *Builder) diagnosis(id issue.ID, out *extractor.Output, retrieved string) (llm.Request, error) {
	ctx, err := b.KB.Context(id)
	if err != nil {
		return llm.Request{}, err
	}
	mods, err := b.KB.ModulesFor(id)
	if err != nil {
		return llm.Request{}, err
	}

	var u strings.Builder
	fmt.Fprintf(&u, "# Diagnosis request: %s\n\n", ctx.Title)
	fmt.Fprintf(&u, "Issue-ID: %s\n\n", id)

	u.WriteString("## I/O Performance Issue Context\n\n")
	u.WriteString(strings.TrimSpace(ctx.Knowledge))
	u.WriteString("\n\n")
	fmt.Fprintf(&u, "Key metrics: %s\n\n", strings.Join(ctx.KeyMetrics, ", "))
	fmt.Fprintf(&u, "Conditions that mitigate this issue: %s.\n\n", ctx.Mitigations)

	u.WriteString("## System hyper-parameters\n\n")
	fmt.Fprintf(&u, "- lustre_stripe_size = %d bytes\n", b.KB.Hyper.StripeSize)
	fmt.Fprintf(&u, "- rpc_size = %d bytes\n", b.KB.Hyper.RPCSize)
	fmt.Fprintf(&u, "- mem_alignment = %d bytes\n\n", b.KB.Hyper.MemAlignment)

	u.WriteString("## Job\n\n")
	h := out.Header
	fmt.Fprintf(&u, "- exe: %s\n- nprocs: %d\n- run time: %.3f s\n\n", h.Exe, h.NProcs, h.RunTime)

	u.WriteString("## Attached trace data\n\n")
	var files []string
	for _, mod := range mods {
		t := out.Table(mod)
		if t == nil {
			continue
		}
		if p, ok := out.Paths[mod]; ok {
			files = append(files, p)
		}
		fmt.Fprintf(&u, "### %s.csv (%d rows)\n\n", mod, t.NumRows())
		describeColumns(&u, mod, t.Cols)
		u.WriteString("\n")
	}

	if retrieved != "" {
		u.WriteString("## Retrieved context from a similar prior diagnosis\n\n")
		u.WriteString(`A previously analyzed workload with a highly similar I/O signature
was diagnosed as follows. Treat it as a prior, not as ground truth:
verify its claims against this trace's own numbers, then confirm or
adjust the conclusion rather than diagnosing from scratch.

`)
		u.WriteString(retrieved)
		u.WriteString("\n\n")
	}

	u.WriteString("## Task\n\n")
	u.WriteString(`Determine whether this issue is present in the trace and how severe
it is. Think step by step: (1) state which metrics you will compute and
why, (2) write analysis code against the attached CSVs and execute it,
(3) interpret each computed number against the issue context, explicitly
checking the mitigating conditions before concluding. Quantify every
claim (counts and percentages) and name the affected files and ranks.

`)
	u.WriteString("## Output format\n\n")
	fmt.Fprintf(&u, `Respond with exactly these sections:

%s
A numbered list of reasoning steps, each grounded in a computed value.

%s
The analysis code you executed, in one fenced python block.

%s
A short diagnosis paragraph for the user. End with a single line:
%s detected|mitigated|not-detected
`, SectionSteps, SectionCode, SectionConclusion, VerdictPrefix)

	req := llm.Request{
		Model: b.Model,
		Messages: []llm.Message{
			{Role: llm.RoleSystem, Content: systemPersona},
			{Role: llm.RoleUser, Content: u.String()},
		},
		Files:       files,
		Temperature: 0,
		Metadata: map[string]string{
			MetaKind:  KindDiagnosis,
			MetaIssue: string(id),
		},
	}
	if dir := csvDir(out); dir != "" {
		req.Metadata[MetaCSVDir] = dir
	}
	if retrieved != "" {
		req.Metadata[MetaConditioned] = "1"
	}
	return req, nil
}

// Summary builds the global summarization prompt over the per-issue
// conclusions.
func (b *Builder) Summary(conclusions map[issue.ID]string) llm.Request {
	var u strings.Builder
	u.WriteString("# Summarization request\n\n")
	u.WriteString("## Diagnoses to summarize\n\n")
	for _, id := range b.KB.Issues() {
		c, ok := conclusions[id]
		if !ok {
			continue
		}
		fmt.Fprintf(&u, "### %s [%s]\n\n%s\n\n", issue.Title(id), id, strings.TrimSpace(c))
	}
	u.WriteString(`## Task

Write a global diagnosis summary for the scientist who ran this
application: open with the overall health of the run's I/O, then cover
the detected issues in order of severity with their key numbers, then
note the patterns that looked suspicious but turned out benign (and
why), and close with the most impactful optimization suggestions.
`)
	return llm.Request{
		Model: b.Model,
		Messages: []llm.Message{
			{Role: llm.RoleSystem, Content: systemPersona},
			{Role: llm.RoleUser, Content: u.String()},
		},
		Temperature: 0,
		Metadata:    map[string]string{MetaKind: KindSummary},
	}
}

// Chat builds an interactive follow-up prompt: the accumulated
// diagnosis context plus the user's question and the running
// conversation.
func (b *Builder) Chat(reportContext string, history []llm.Message, question string) llm.Request {
	var u strings.Builder
	u.WriteString("# Interactive question\n\n")
	u.WriteString("## Diagnosis context\n\n")
	u.WriteString(strings.TrimSpace(reportContext))
	u.WriteString("\n\n## Question\n\n")
	u.WriteString(strings.TrimSpace(question))
	u.WriteString("\n")

	msgs := []llm.Message{{Role: llm.RoleSystem, Content: systemPersona}}
	msgs = append(msgs, history...)
	msgs = append(msgs, llm.Message{Role: llm.RoleUser, Content: u.String()})
	return llm.Request{
		Model:       b.Model,
		Messages:    msgs,
		Temperature: 0,
		Metadata:    map[string]string{MetaKind: KindChat},
	}
}

// describeColumns writes one bullet per column, using the Darshan
// counter documentation where available.
func describeColumns(w *strings.Builder, mod string, cols []string) {
	for _, c := range cols {
		doc := columnDoc(mod, c)
		fmt.Fprintf(w, "- %s: %s\n", c, doc)
	}
}

func columnDoc(mod, col string) string {
	switch col {
	case "file_id":
		return "Darshan record id of the file"
	case "file_name":
		return "full path of the file"
	case "rank":
		return "MPI rank, or -1 for a record reduced across all ranks of a shared file"
	case "module":
		return "tracing module that captured the event (X_POSIX or X_MPIIO)"
	case "op":
		return "operation type: read or write"
	case "segment":
		return "per-rank sequence number of the event within the file"
	case "offset":
		return "file offset of the access in bytes"
	case "length":
		return "size of the access in bytes"
	case "start":
		return "operation start time in seconds since job start"
	case "end":
		return "operation end time in seconds since job start"
	case "osts":
		return "semicolon-separated Lustre OST indices that served the access"
	case "OST_IDS":
		return "semicolon-separated OST indices the file is striped over, in stripe order"
	case "exe":
		return "application command line"
	case "nprocs":
		return "number of MPI processes in the job"
	case "run_time":
		return "job wall-clock time in seconds"
	case "start_time", "end_time":
		return "job start/end as epoch seconds"
	case "jobid":
		return "scheduler job id"
	case "uid":
		return "numeric user id"
	}
	if doc, ok := darshan.CounterDoc[col]; ok {
		return doc
	}
	if strings.HasSuffix(col, "_TIMESTAMP") {
		return "timestamp counter in seconds relative to job start"
	}
	return "Darshan counter"
}

// csvDir infers the extraction directory from the output's paths.
func csvDir(out *extractor.Output) string {
	for _, p := range out.Paths {
		if i := strings.LastIndexByte(p, '/'); i > 0 {
			return p[:i]
		}
	}
	return ""
}
