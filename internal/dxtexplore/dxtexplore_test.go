package dxtexplore

import (
	"strings"
	"testing"

	"ion/internal/darshan"
	"ion/internal/testutil"
	"ion/internal/workloads"
)

func logFor(t *testing.T, name string) *darshan.Log {
	t.Helper()
	l, err := testutil.Log(name)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTimelineShape(t *testing.T) {
	log := logFor(t, "ior-hard")
	out := Timeline(log, Options{Width: 40, MaxRows: 8})
	if !strings.Contains(out, "timeline") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 4 ranks -> 4 rows + title + axis + legend.
	if len(lines) != 7 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimLeft(l, " "), "rank ") && !strings.ContainsAny(l, "@#%*+=") {
			t.Errorf("rank row shows no activity: %q", l)
		}
	}
}

func TestTimelineOpFilter(t *testing.T) {
	log := logFor(t, "ior-hard")
	reads := Timeline(log, Options{Op: "read"})
	if !strings.Contains(reads, "reads only") {
		t.Error("filter not labeled")
	}
	if none := Timeline(&darshan.Log{}, Options{}); !strings.Contains(none, "no DXT events") {
		t.Errorf("empty log: %q", none)
	}
}

func TestTimelineBandsManyRanks(t *testing.T) {
	log := logFor(t, "e2e-baseline") // 1024 ranks
	out := Timeline(log, Options{Width: 40, MaxRows: 8})
	lines := strings.Count(out, "\n")
	if lines > 16 {
		t.Errorf("banding failed: %d lines for 1024 ranks", lines)
	}
	if !strings.Contains(out, "r   0-") {
		t.Errorf("band labels missing:\n%s", out)
	}
}

func TestOffsetMapShowsRank0Dominance(t *testing.T) {
	log := logFor(t, "e2e-baseline")
	id := workloads.FileID("/lustre/e2e/3d_32_32_16_32_32_32.nc4")
	out := OffsetMap(log, id, Options{Width: 40, MaxRows: 8})
	if !strings.Contains(out, "3d_32_32_16_32_32_32.nc4") {
		t.Error("file name missing")
	}
	// Rank 0's fill sweep covers the whole extent: its band (first row)
	// must be densely populated.
	lines := strings.Split(out, "\n")
	if len(lines) < 3 {
		t.Fatalf("output too short:\n%s", out)
	}
	firstBand := lines[1]
	dense := 0
	for _, r := range firstBand {
		if r != ' ' {
			dense++
		}
	}
	if dense < 30 {
		t.Errorf("rank-0 band not dense (%d marks): %q", dense, firstBand)
	}
	if none := OffsetMap(log, 12345, Options{}); !strings.Contains(none, "no DXT events") {
		t.Error("unknown file should render empty message")
	}
}

func TestSizeHistogram(t *testing.T) {
	log := logFor(t, "ior-rnd4k")
	out := SizeHistogram(log, Options{Width: 30})
	if !strings.Contains(out, "1K_10K") {
		t.Error("bucket labels missing")
	}
	// All rnd4k accesses are 4 KiB: only the 1K_10K row carries bars.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "#") && !strings.Contains(line, "1K_10K") {
			t.Errorf("unexpected bar outside 1K_10K: %q", line)
		}
	}
}

func TestRankSummary(t *testing.T) {
	log := logFor(t, "e2e-baseline")
	out := RankSummary(log, Options{MaxRows: 5})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header x2 + 5 rows + "more ranks" line.
	if len(lines) != 8 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Rank 0 must be the top row with a dominant share.
	if !strings.Contains(lines[2], "       0 ") {
		t.Errorf("rank 0 not first: %q", lines[2])
	}
	if !strings.Contains(out, "more ranks") {
		t.Error("truncation note missing")
	}
}

func TestExploreComposite(t *testing.T) {
	log := logFor(t, "ior-hard")
	out := Explore(log, Options{Width: 40, MaxRows: 8})
	for _, want := range []string{"timeline", "offset map", "size distribution", "per-rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("composite missing %q", want)
		}
	}
}

func TestGlyphMonotone(t *testing.T) {
	prev := glyph(0)
	for v := 0.0; v <= 1.0; v += 0.05 {
		g := glyph(v)
		pi := strings.IndexRune(string(intensity), prev)
		gi := strings.IndexRune(string(intensity), g)
		if gi < pi {
			t.Fatalf("glyph not monotone at %v", v)
		}
		prev = g
	}
	if glyph(-1) != intensity[0] || glyph(2) != intensity[len(intensity)-1] {
		t.Error("clamping broken")
	}
}

func TestOSTLoad(t *testing.T) {
	log := logFor(t, "ior-easy-1m-shared")
	out := OSTLoad(log, Options{Width: 30})
	if !strings.Contains(out, "OST") || !strings.Contains(out, "#") {
		t.Errorf("OST load chart empty:\n%s", out)
	}
	// The file is striped over 4 OSTs: exactly 4 bars.
	bars := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "OST") {
			bars++
		}
	}
	if bars != 4 {
		t.Errorf("bars = %d, want 4 (stripe count)", bars)
	}
	if none := OSTLoad(&darshan.Log{}, Options{}); !strings.Contains(none, "no DXT events") {
		t.Error("empty log message missing")
	}
}
