// Package dxtexplore renders DXT traces as terminal visualizations, in
// the spirit of the DXT-Explorer tool the paper builds on (Bez et al.,
// PDSW'21): a rank×time activity heatmap, a rank×file-offset spatial
// map, and an access-size histogram. ION's reports tell the user *what*
// is wrong; these views let them *see* the pattern (the interleaved
// bands of ior-hard, rank 0's solid stripe in the E2E baseline, the
// aggregator subset of the optimized run).
package dxtexplore

import (
	"fmt"
	"sort"
	"strings"

	"ion/internal/darshan"
)

// Options control plot geometry.
type Options struct {
	// Width is the number of horizontal buckets (default 64).
	Width int
	// MaxRows caps the number of rank rows; ranks are grouped into
	// bands when they exceed it (default 16).
	MaxRows int
	// Op filters events ("read", "write", or "" for both).
	Op string
}

func (o Options) normalized() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.MaxRows <= 0 {
		o.MaxRows = 16
	}
	return o
}

// intensity maps a 0..1 load to a glyph.
var intensity = []rune(" .:-=+*#%@")

func glyph(v float64) rune {
	if v <= 0 {
		return intensity[0]
	}
	if v >= 1 {
		return intensity[len(intensity)-1]
	}
	return intensity[1+int(v*float64(len(intensity)-2))]
}

// events flattens the log's DXT traces with the op filter applied.
func events(log *darshan.Log, op string) []darshan.DXTEvent {
	var out []darshan.DXTEvent
	for _, tr := range log.DXT {
		for _, ev := range tr.Events {
			if op != "" && string(ev.Op) != op {
				continue
			}
			out = append(out, ev)
		}
	}
	return out
}

// rankBands groups ranks into at most maxRows contiguous bands and
// returns the band index per rank plus band labels.
func rankBands(evs []darshan.DXTEvent, maxRows int) (map[int64]int, []string) {
	rankSet := map[int64]bool{}
	for _, ev := range evs {
		rankSet[ev.Rank] = true
	}
	ranks := make([]int64, 0, len(rankSet))
	for r := range rankSet {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	bands := map[int64]int{}
	if len(ranks) <= maxRows {
		labels := make([]string, len(ranks))
		for i, r := range ranks {
			bands[r] = i
			labels[i] = fmt.Sprintf("rank %4d", r)
		}
		return bands, labels
	}
	per := (len(ranks) + maxRows - 1) / maxRows
	labels := []string{}
	for i, r := range ranks {
		band := i / per
		bands[r] = band
		if i%per == 0 {
			hi := i + per - 1
			if hi >= len(ranks) {
				hi = len(ranks) - 1
			}
			labels = append(labels, fmt.Sprintf("r%4d-%4d", r, ranks[hi]))
		}
	}
	return bands, labels
}

// Timeline renders a rank×time heatmap of I/O activity (busy seconds
// per cell, normalized to the busiest cell).
func Timeline(log *darshan.Log, opts Options) string {
	o := opts.normalized()
	evs := events(log, o.Op)
	if len(evs) == 0 {
		return "(no DXT events)\n"
	}
	var tmax float64
	for _, ev := range evs {
		if ev.End > tmax {
			tmax = ev.End
		}
	}
	if tmax <= 0 {
		tmax = 1
	}
	bands, labels := rankBands(evs, o.MaxRows)
	grid := make([][]float64, len(labels))
	for i := range grid {
		grid[i] = make([]float64, o.Width)
	}
	for _, ev := range evs {
		row := bands[ev.Rank]
		// Spread the event's busy time across the buckets it spans.
		lo := int(ev.Start / tmax * float64(o.Width))
		hi := int(ev.End / tmax * float64(o.Width))
		if lo >= o.Width {
			lo = o.Width - 1
		}
		if hi >= o.Width {
			hi = o.Width - 1
		}
		dur := ev.End - ev.Start
		cells := hi - lo + 1
		for c := lo; c <= hi; c++ {
			grid[row][c] += dur / float64(cells)
		}
	}
	var peak float64
	for _, row := range grid {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	var b strings.Builder
	title := "I/O activity timeline (rank × time)"
	if o.Op != "" {
		title += " — " + o.Op + "s only"
	}
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%11s 0s%s%.4fs\n", "", strings.Repeat(" ", o.Width-len(fmt.Sprintf("%.4fs", tmax))-2), tmax)
	for i, label := range labels {
		b.WriteString(fmt.Sprintf("%11s ", label))
		for _, v := range grid[i] {
			if peak > 0 {
				b.WriteRune(glyph(v / peak))
			} else {
				b.WriteRune(' ')
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%11s scale: '%c' idle .. '%c' busiest cell\n", "", intensity[0], intensity[len(intensity)-1])
	return b.String()
}

// OffsetMap renders a rank×file-offset coverage map for one file (bytes
// touched per cell, normalized).
func OffsetMap(log *darshan.Log, fileID uint64, opts Options) string {
	o := opts.normalized()
	var evs []darshan.DXTEvent
	for _, tr := range log.DXT {
		if tr.FileID != fileID {
			continue
		}
		for _, ev := range tr.Events {
			if o.Op != "" && string(ev.Op) != o.Op {
				continue
			}
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		return "(no DXT events for file)\n"
	}
	var max int64
	for _, ev := range evs {
		if end := ev.Offset + ev.Length; end > max {
			max = end
		}
	}
	if max <= 0 {
		max = 1
	}
	bands, labels := rankBands(evs, o.MaxRows)
	grid := make([][]float64, len(labels))
	for i := range grid {
		grid[i] = make([]float64, o.Width)
	}
	for _, ev := range evs {
		row := bands[ev.Rank]
		lo := int(float64(ev.Offset) / float64(max) * float64(o.Width))
		hi := int(float64(ev.Offset+ev.Length-1) / float64(max) * float64(o.Width))
		if lo >= o.Width {
			lo = o.Width - 1
		}
		if hi >= o.Width {
			hi = o.Width - 1
		}
		cells := hi - lo + 1
		for c := lo; c <= hi; c++ {
			grid[row][c] += float64(ev.Length) / float64(cells)
		}
	}
	var peak float64
	for _, row := range grid {
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "file offset map: %s (rank × offset, extent %d bytes)\n", log.Name(fileID), max)
	for i, label := range labels {
		b.WriteString(fmt.Sprintf("%11s ", label))
		for _, v := range grid[i] {
			if peak > 0 {
				b.WriteRune(glyph(v / peak))
			} else {
				b.WriteRune(' ')
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SizeHistogram renders the access-size distribution as a bar chart
// over the Darshan histogram buckets.
func SizeHistogram(log *darshan.Log, opts Options) string {
	o := opts.normalized()
	evs := events(log, o.Op)
	if len(evs) == 0 {
		return "(no DXT events)\n"
	}
	counts := make([]int64, len(darshan.SizeBins))
	for _, ev := range evs {
		suffix := darshan.SizeBinFor(ev.Length)
		for i, bin := range darshan.SizeBins {
			if bin.Suffix == suffix {
				counts[i]++
				break
			}
		}
	}
	var peak int64 = 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	b.WriteString("access size distribution\n")
	for i, bin := range darshan.SizeBins {
		bar := int(float64(counts[i]) / float64(peak) * float64(o.Width))
		fmt.Fprintf(&b, "%10s |%-*s| %d\n", bin.Suffix, o.Width, strings.Repeat("#", bar), counts[i])
	}
	return b.String()
}

// RankSummary renders a per-rank (or rank-band) table of operation
// counts, bytes, and busy time, sorted by bytes descending.
func RankSummary(log *darshan.Log, opts Options) string {
	o := opts.normalized()
	evs := events(log, o.Op)
	if len(evs) == 0 {
		return "(no DXT events)\n"
	}
	type load struct {
		rank  int64
		ops   int64
		bytes int64
		busy  float64
	}
	per := map[int64]*load{}
	for _, ev := range evs {
		l, ok := per[ev.Rank]
		if !ok {
			l = &load{rank: ev.Rank}
			per[ev.Rank] = l
		}
		l.ops++
		l.bytes += ev.Length
		l.busy += ev.End - ev.Start
	}
	loads := make([]*load, 0, len(per))
	var totalBytes int64
	for _, l := range per {
		loads = append(loads, l)
		totalBytes += l.bytes
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].bytes != loads[j].bytes {
			return loads[i].bytes > loads[j].bytes
		}
		return loads[i].rank < loads[j].rank
	})
	var b strings.Builder
	fmt.Fprintf(&b, "per-rank I/O load (%d active ranks, top %d shown)\n", len(loads), o.MaxRows)
	fmt.Fprintf(&b, "%8s %10s %14s %10s %8s\n", "rank", "ops", "bytes", "busy(s)", "share")
	shown := loads
	if len(shown) > o.MaxRows {
		shown = shown[:o.MaxRows]
	}
	for _, l := range shown {
		share := 0.0
		if totalBytes > 0 {
			share = float64(l.bytes) / float64(totalBytes)
		}
		fmt.Fprintf(&b, "%8d %10d %14d %10.4f %7.2f%%\n", l.rank, l.ops, l.bytes, l.busy, 100*share)
	}
	if len(loads) > o.MaxRows {
		fmt.Fprintf(&b, "... %d more ranks\n", len(loads)-o.MaxRows)
	}
	return b.String()
}

// Explore renders the full set of views for a log.
func Explore(log *darshan.Log, opts Options) string {
	var b strings.Builder
	b.WriteString(Timeline(log, opts))
	b.WriteString("\n")
	// Offset map of the busiest file.
	var busiest uint64
	var most int
	for _, tr := range log.DXT {
		if len(tr.Events) > most {
			most = len(tr.Events)
			busiest = tr.FileID
		}
	}
	if most > 0 {
		b.WriteString(OffsetMap(log, busiest, opts))
		b.WriteString("\n")
	}
	b.WriteString(SizeHistogram(log, opts))
	b.WriteString("\n")
	b.WriteString(RankSummary(log, opts))
	return b.String()
}

// OSTLoad renders bytes served per Lustre OST as a bar chart, using the
// OST placement recorded in the DXT events — the view that exposes
// hot-spotted servers (narrow striping, skewed placement).
func OSTLoad(log *darshan.Log, opts Options) string {
	o := opts.normalized()
	evs := events(log, o.Op)
	if len(evs) == 0 {
		return "(no DXT events)\n"
	}
	load := map[int]int64{}
	withPlacement := 0
	for _, ev := range evs {
		if len(ev.OSTs) == 0 {
			continue
		}
		withPlacement++
		per := ev.Length / int64(len(ev.OSTs))
		for _, ost := range ev.OSTs {
			load[ost] += per
		}
	}
	if withPlacement == 0 {
		return "(DXT events carry no OST placement)\n"
	}
	osts := make([]int, 0, len(load))
	var peak int64 = 1
	for ost, b := range load {
		osts = append(osts, ost)
		if b > peak {
			peak = b
		}
	}
	sort.Ints(osts)
	var b strings.Builder
	fmt.Fprintf(&b, "bytes per OST (%d events with placement)\n", withPlacement)
	for _, ost := range osts {
		bar := int(float64(load[ost]) / float64(peak) * float64(o.Width))
		fmt.Fprintf(&b, "OST %3d |%-*s| %d\n", ost, o.Width, strings.Repeat("#", bar), load[ost])
	}
	return b.String()
}
