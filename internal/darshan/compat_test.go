package darshan

import (
	"os"
	"testing"
)

// TestParseRealWorldSample feeds the parser a transcript shaped like
// genuine darshan-parser/darshan-dxt-parser output, including artifacts
// our writer never produces: compression/ascii-time header comments,
// counters outside our canonical set (POSIX_MODE), Darshan's -1
// "not measured" values, huge record ids, and a read/write mix in one
// DXT block. The parser must be tolerant of all of it.
func TestParseRealWorldSample(t *testing.T) {
	f, err := os.Open("testdata/real_sample.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := ParseText(f)
	if err != nil {
		t.Fatal(err)
	}
	if log.Header.NProcs != 64 || log.Header.JobID != 4478544 {
		t.Errorf("header: %+v", log.Header)
	}
	if log.Header.RunTime != 42.7181 {
		t.Errorf("run time: %v", log.Header.RunTime)
	}
	if log.Header.Metadata["lib_ver"] != "3.1.3" {
		t.Errorf("metadata: %v", log.Header.Metadata)
	}
	if log.Header.Metadata["h"] != "romio_no_indep_rw=true;cb_nodes=4" {
		t.Errorf("hint metadata with embedded '=' mangled: %v", log.Header.Metadata)
	}

	rec := log.Module(ModPOSIX).Find(9457796068806373448, SharedRank)
	if rec == nil {
		t.Fatal("POSIX record missing")
	}
	if rec.C(CPosixReads) != 1024 {
		t.Errorf("reads = %d", rec.C(CPosixReads))
	}
	// Unknown counters are preserved verbatim.
	if rec.C("POSIX_MODE") != 438 {
		t.Errorf("unknown counter dropped: %d", rec.C("POSIX_MODE"))
	}
	// Darshan's -1 "not measured" values survive.
	if rec.C(CPosixMmaps) != -1 {
		t.Errorf("-1 sentinel lost: %d", rec.C(CPosixMmaps))
	}
	if rec.F(FPosixReadTime) != 11.224557 {
		t.Errorf("float counter: %v", rec.F(FPosixReadTime))
	}

	lrec := log.Module(ModLustre).Find(9457796068806373448, SharedRank)
	if lrec == nil || lrec.C(CLustreStripeSize) != 1048576 {
		t.Fatalf("lustre record: %+v", lrec)
	}
	if lrec.C("LUSTRE_OST_ID_1") != 11 {
		t.Errorf("OST ids: %v", lrec.Counters)
	}

	if len(log.DXT) != 1 {
		t.Fatalf("DXT traces = %d", len(log.DXT))
	}
	tr := log.DXT[0]
	w, r := tr.Counts()
	if w != 2 || r != 1 {
		t.Errorf("DXT counts = %d writes, %d reads", w, r)
	}
	if tr.Hostname != "nid00211" {
		t.Errorf("hostname = %q", tr.Hostname)
	}
	if log.Name(9457796068806373448) != "/global/cscratch1/ior/testFile" {
		t.Errorf("file name = %q", log.Name(9457796068806373448))
	}
	if log.MountFor("/global/cscratch1/ior/testFile").FSType != "lustre" {
		t.Errorf("mounts: %+v", log.Mounts)
	}
}
