package darshan

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomLog builds a structurally valid random log from a seed,
// exercising the serialization paths with adversarial shapes.
func randomLog(rng *rand.Rand) *Log {
	l := NewLog()
	l.Header.Exe = "exe-" + string(rune('a'+rng.Intn(26)))
	l.Header.UID = rng.Intn(65536)
	l.Header.JobID = rng.Int63n(1 << 40)
	l.Header.NProcs = 1 + rng.Intn(64)
	l.Header.StartTime = 1700000000 + rng.Int63n(1e8)
	l.Header.EndTime = l.Header.StartTime + rng.Int63n(100000)
	l.Header.RunTime = rng.Float64() * 1000
	if rng.Intn(2) == 0 {
		l.Header.Metadata["k"] = "v"
	}
	l.Mounts = []Mount{{Point: "/lustre", FSType: "lustre"}}

	nFiles := 1 + rng.Intn(5)
	for f := 0; f < nFiles; f++ {
		id := uint64(1000 + f)
		l.Names[id] = "/lustre/file" + string(rune('a'+f))
		rec := l.Module(ModPOSIX).Record(id, int64(rng.Intn(4))-1)
		reads := rng.Int63n(100)
		writes := rng.Int63n(100)
		rec.Counters[CPosixReads] = reads
		rec.Counters[CPosixWrites] = writes
		// Keep the size histogram consistent so Validate passes.
		rec.Counters["POSIX_SIZE_READ_1K_10K"] = reads
		rec.Counters["POSIX_SIZE_WRITE_1K_10K"] = writes
		rec.Counters[CPosixBytesRead] = reads * 4096
		rec.Counters[CPosixBytesWritten] = writes * 4096
		rec.FCounters[FPosixReadTime] = rng.Float64()
		rec.FCounters[FPosixWriteTime] = rng.Float64()

		if rng.Intn(2) == 0 {
			tr := l.DXTForFile(id)
			tr.Hostname = "nid00001"
			nev := rng.Intn(20)
			t := 0.0
			for e := 0; e < nev; e++ {
				dur := rng.Float64() * 0.01
				op := OpRead
				if rng.Intn(2) == 0 {
					op = OpWrite
				}
				tr.Events = append(tr.Events, DXTEvent{
					Module: DXTPosix, Rank: int64(rng.Intn(4)), Op: op,
					Segment: int64(e), Offset: rng.Int63n(1 << 30),
					Length: 1 + rng.Int63n(1<<20),
					Start:  t, End: t + dur,
					OSTs: []int{rng.Intn(8)},
				})
				t += dur
			}
		}
	}
	return l
}

// textOf canonicalizes a log through its text serialization.
func textOf(t *testing.T, l *Log) string {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteDXTText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRandomLogTextRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomLog(rng)
		text := textOf(t, orig)
		back, err := ParseText(bytes.NewReader([]byte(text)))
		if err != nil {
			t.Logf("seed %d: parse error: %v", seed, err)
			return false
		}
		// Idempotence: serializing the parsed log reproduces the text.
		return textOf(t, back) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomLogBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomLog(rng)
		var buf bytes.Buffer
		if err := orig.WriteBinary(&buf); err != nil {
			t.Logf("seed %d: write error: %v", seed, err)
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Logf("seed %d: read error: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(orig.Header, back.Header) {
			t.Logf("seed %d: header changed", seed)
			return false
		}
		return textOf(t, back) == textOf(t, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomLogsValidate(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		l := randomLog(rand.New(rand.NewSource(seed)))
		if err := l.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
