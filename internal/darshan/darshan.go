// Package darshan models Darshan I/O characterization logs.
//
// Darshan is the de-facto standard lightweight I/O profiler on HPC
// systems. For every file an application touches, Darshan records a set
// of integer counters and floating-point timers per instrumented I/O
// interface ("module"): POSIX, MPI-IO, STDIO, and the Lustre file-system
// module. The optional DXT (Darshan eXtended Tracing) modules
// additionally record every individual read/write operation with its
// offset, length, and wall-clock interval.
//
// This package provides:
//
//   - an in-memory representation of a Darshan log (Log, Module, Record,
//     DXTFileTrace),
//   - a text serialization that mirrors the output of the reference
//     darshan-parser and darshan-dxt-parser utilities (see write.go and
//     parse.go), and
//   - a compact binary container format, analogous to the .darshan file a
//     real deployment produces, so downstream tooling exercises a true
//     unpack-then-parse pipeline (see binfmt.go).
//
// The counter vocabulary (counters.go) follows the Darshan 3.4 runtime.
package darshan

import (
	"fmt"
	"sort"
	"strings"
)

// Module identifiers as they appear in darshan-parser output.
const (
	ModPOSIX  = "POSIX"
	ModMPIIO  = "MPI-IO"
	ModSTDIO  = "STDIO"
	ModLustre = "LUSTRE"

	// DXT module names used in trace lines.
	DXTPosix = "X_POSIX"
	DXTMPIIO = "X_MPIIO"
)

// SharedRank is the rank value Darshan uses for records that aggregate
// activity across all ranks of a shared file.
const SharedRank = -1

// Header carries job-level metadata recorded at the top of every log.
type Header struct {
	Version   string            // darshan log format version, e.g. "3.41"
	Exe       string            // executable command line
	UID       int               // numeric user id
	JobID     int64             // scheduler job id
	NProcs    int               // number of MPI processes
	StartTime int64             // epoch seconds at MPI_Init
	EndTime   int64             // epoch seconds at MPI_Finalize
	RunTime   float64           // wall-clock seconds
	Metadata  map[string]string // free-form "# metadata:" entries
}

// Mount describes one mount-table entry captured at runtime; the parser
// uses it to attribute files to file systems (e.g. lustre vs tmpfs).
type Mount struct {
	Point  string // mount point path, e.g. "/lustre"
	FSType string // file system type, e.g. "lustre"
}

// Record is one (file, rank) row of a module: the full set of integer
// counters and float counters Darshan kept for that file on that rank.
// Rank == SharedRank denotes a shared-file record reduced across ranks.
type Record struct {
	FileID    uint64
	Rank      int64
	Counters  map[string]int64
	FCounters map[string]float64
}

// NewRecord returns a Record with allocated counter maps.
func NewRecord(fileID uint64, rank int64) *Record {
	return &Record{
		FileID:    fileID,
		Rank:      rank,
		Counters:  make(map[string]int64),
		FCounters: make(map[string]float64),
	}
}

// C returns the integer counter value, or zero when absent (Darshan
// semantics: unset counters read as zero).
func (r *Record) C(name string) int64 { return r.Counters[name] }

// F returns the float counter value, or zero when absent.
func (r *Record) F(name string) float64 { return r.FCounters[name] }

// Add increments an integer counter.
func (r *Record) Add(name string, delta int64) { r.Counters[name] += delta }

// FAdd increments a float counter.
func (r *Record) FAdd(name string, delta float64) { r.FCounters[name] += delta }

// SetMax raises an integer counter to v if v is larger.
func (r *Record) SetMax(name string, v int64) {
	if v > r.Counters[name] {
		r.Counters[name] = v
	}
}

// FSetMax raises a float counter to v if v is larger.
func (r *Record) FSetMax(name string, v float64) {
	if v > r.FCounters[name] {
		r.FCounters[name] = v
	}
}

// FSetMin lowers a float counter to v if v is smaller or the counter is
// unset. Darshan stores "start timestamp" counters this way.
func (r *Record) FSetMin(name string, v float64) {
	cur, ok := r.FCounters[name]
	if !ok || v < cur {
		r.FCounters[name] = v
	}
}

// Module groups the records of one instrumentation module.
type Module struct {
	Name    string
	Records []*Record

	// index accelerates Record/Find lookups. It is rebuilt lazily
	// whenever it drifts from Records, since callers (the workload
	// recorder, tests) may append to Records directly.
	index map[recordKey]*Record
}

type recordKey struct {
	file uint64
	rank int64
}

// lookup returns the indexed record for (fileID, rank), rebuilding the
// index first if Records was modified behind its back. On duplicate
// keys the first record wins, matching the old linear scan.
func (m *Module) lookup(fileID uint64, rank int64) *Record {
	if m.index == nil || len(m.index) != len(m.Records) {
		m.index = make(map[recordKey]*Record, len(m.Records))
		for _, r := range m.Records {
			k := recordKey{r.FileID, r.Rank}
			if _, ok := m.index[k]; !ok {
				m.index[k] = r
			}
		}
	}
	return m.index[recordKey{fileID, rank}]
}

// Record returns the record for (fileID, rank), creating it on demand.
func (m *Module) Record(fileID uint64, rank int64) *Record {
	if r := m.lookup(fileID, rank); r != nil {
		return r
	}
	r := NewRecord(fileID, rank)
	m.Records = append(m.Records, r)
	m.index[recordKey{fileID, rank}] = r
	return r
}

// Find returns the record for (fileID, rank) or nil when absent.
func (m *Module) Find(fileID uint64, rank int64) *Record {
	return m.lookup(fileID, rank)
}

// Log is a complete Darshan log: header, per-module counter records,
// the file-name table, mount table, and optional DXT traces.
type Log struct {
	Header  Header
	Modules map[string]*Module
	// Names maps Darshan record (file) ids to full paths.
	Names map[uint64]string
	// Mounts is the captured mount table.
	Mounts []Mount
	// DXT holds fine-grained traces keyed by file, in insertion order.
	DXT []*DXTFileTrace
}

// NewLog returns an empty log with allocated tables and a current
// format version.
func NewLog() *Log {
	return &Log{
		Header: Header{
			Version:  "3.41",
			Metadata: map[string]string{},
		},
		Modules: make(map[string]*Module),
		Names:   make(map[uint64]string),
	}
}

// Module returns the named module, creating it on demand.
func (l *Log) Module(name string) *Module {
	m, ok := l.Modules[name]
	if !ok {
		m = &Module{Name: name}
		l.Modules[name] = m
	}
	return m
}

// HasModule reports whether the log contains any records for module name.
func (l *Log) HasModule(name string) bool {
	m, ok := l.Modules[name]
	return ok && len(m.Records) > 0
}

// ModuleNames returns the populated module names in canonical order
// (POSIX, MPI-IO, STDIO, LUSTRE, then others alphabetically).
func (l *Log) ModuleNames() []string {
	canon := []string{ModPOSIX, ModMPIIO, ModSTDIO, ModLustre}
	var out []string
	seen := map[string]bool{}
	for _, n := range canon {
		if l.HasModule(n) {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range l.Modules {
		if !seen[n] && l.HasModule(n) {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Name returns the path recorded for a file id, or a hex placeholder.
func (l *Log) Name(fileID uint64) string {
	if n, ok := l.Names[fileID]; ok {
		return n
	}
	return fmt.Sprintf("<unknown:%x>", fileID)
}

// MountFor returns the mount entry whose mount point is the longest
// prefix of path. The zero Mount is returned when nothing matches.
func (l *Log) MountFor(path string) Mount {
	best := Mount{Point: "/", FSType: "unknown"}
	bestLen := 0
	for _, m := range l.Mounts {
		if strings.HasPrefix(path, m.Point) && len(m.Point) > bestLen {
			best = m
			bestLen = len(m.Point)
		}
	}
	return best
}

// DXTForFile returns the DXT trace for fileID, creating it on demand.
func (l *Log) DXTForFile(fileID uint64) *DXTFileTrace {
	for _, t := range l.DXT {
		if t.FileID == fileID {
			return t
		}
	}
	t := &DXTFileTrace{FileID: fileID}
	l.DXT = append(l.DXT, t)
	return t
}

// TotalOps sums the POSIX read+write operation counts across records.
func (l *Log) TotalOps() int64 {
	var n int64
	if m, ok := l.Modules[ModPOSIX]; ok {
		for _, r := range m.Records {
			n += r.C(CPosixReads) + r.C(CPosixWrites)
		}
	}
	return n
}

// Validate performs structural sanity checks and returns a descriptive
// error for the first inconsistency found. A nil error means the log is
// internally consistent (every record's file id resolves to a name, size
// histograms sum to the op counts, DXT events are well-formed).
func (l *Log) Validate() error {
	if l.Header.NProcs <= 0 {
		return fmt.Errorf("darshan: header nprocs %d must be positive", l.Header.NProcs)
	}
	if l.Header.RunTime < 0 {
		return fmt.Errorf("darshan: negative run time %f", l.Header.RunTime)
	}
	for name, m := range l.Modules {
		for _, r := range m.Records {
			if _, ok := l.Names[r.FileID]; !ok {
				return fmt.Errorf("darshan: module %s references unnamed file id %d", name, r.FileID)
			}
			if r.Rank < SharedRank {
				return fmt.Errorf("darshan: module %s file %d has invalid rank %d", name, r.FileID, r.Rank)
			}
			if name == ModPOSIX {
				if err := validatePosixHistogram(r); err != nil {
					return err
				}
			}
		}
	}
	for _, t := range l.DXT {
		if _, ok := l.Names[t.FileID]; !ok {
			return fmt.Errorf("darshan: DXT trace references unnamed file id %d", t.FileID)
		}
		for i, ev := range t.Events {
			if ev.End < ev.Start {
				return fmt.Errorf("darshan: DXT event %d of file %d ends before it starts", i, t.FileID)
			}
			if ev.Length < 0 || ev.Offset < 0 {
				return fmt.Errorf("darshan: DXT event %d of file %d has negative offset/length", i, t.FileID)
			}
			if ev.Op != OpRead && ev.Op != OpWrite {
				return fmt.Errorf("darshan: DXT event %d of file %d has op %q", i, t.FileID, ev.Op)
			}
		}
	}
	return nil
}

func validatePosixHistogram(r *Record) error {
	var readBins, writeBins int64
	for _, b := range SizeBins {
		readBins += r.C("POSIX_SIZE_READ_" + b.Suffix)
		writeBins += r.C("POSIX_SIZE_WRITE_" + b.Suffix)
	}
	if reads := r.C(CPosixReads); readBins != reads {
		return fmt.Errorf("darshan: file %d rank %d read histogram sums to %d, expected %d",
			r.FileID, r.Rank, readBins, reads)
	}
	if writes := r.C(CPosixWrites); writeBins != writes {
		return fmt.Errorf("darshan: file %d rank %d write histogram sums to %d, expected %d",
			r.FileID, r.Rank, writeBins, writes)
	}
	return nil
}
