package darshan

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// The binary container emulates a .darshan file: a short uncompressed
// magic+version preamble followed by a gzip-compressed body holding the
// header, name and mount tables, module records, and DXT traces. Real
// Darshan logs are likewise compressed region files; tools must unpack
// them (darshan-parser) before analysis, and our Extractor does the
// same through Load.

var binMagic = [8]byte{'D', 'S', 'H', 'N', 'B', 'I', 'N', '1'}

const binVersion uint16 = 1

// WriteBinary serializes the log into the binary container format.
func (l *Log) WriteBinary(w io.Writer) (err error) {
	if _, err = w.Write(binMagic[:]); err != nil {
		return fmt.Errorf("darshan: writing magic: %w", err)
	}
	if err = binary.Write(w, binary.LittleEndian, binVersion); err != nil {
		return fmt.Errorf("darshan: writing version: %w", err)
	}
	zw := gzip.NewWriter(w)
	defer func() {
		if cerr := zw.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("darshan: closing gzip stream: %w", cerr)
		}
	}()
	bw := bufio.NewWriter(zw)
	enc := &binEncoder{w: bw}
	enc.header(l.Header)
	enc.names(l.Names)
	enc.mounts(l.Mounts)
	enc.modules(l)
	enc.dxt(l.DXT)
	if enc.err != nil {
		return fmt.Errorf("darshan: encoding log: %w", enc.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("darshan: flushing log body: %w", err)
	}
	return nil
}

// ReadBinary deserializes a log from the binary container format. The
// caller must have consumed nothing from r.
func ReadBinary(r io.Reader) (*Log, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("darshan: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("darshan: bad magic %q: not a binary darshan log", magic[:])
	}
	var version uint16
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("darshan: reading version: %w", err)
	}
	if version != binVersion {
		return nil, fmt.Errorf("darshan: unsupported binary log version %d", version)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("darshan: opening gzip stream: %w", err)
	}
	defer zr.Close()
	dec := &binDecoder{r: bufio.NewReader(zr)}
	log := NewLog()
	dec.header(&log.Header)
	dec.names(log.Names)
	dec.mounts(&log.Mounts)
	dec.modules(log)
	dec.dxt(log)
	if dec.err != nil {
		return nil, fmt.Errorf("darshan: decoding log: %w", dec.err)
	}
	return log, nil
}

// WriteFile writes the log as a binary container at path.
func (l *Log) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("darshan: %w", err)
	}
	if err := l.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("darshan: closing %s: %w", path, err)
	}
	return nil
}

// Load opens a log file, auto-detecting the binary container format
// (by magic) and falling back to the darshan-parser text format.
func Load(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("darshan: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	peek, err := br.Peek(len(binMagic))
	if err == nil && string(peek) == string(binMagic[:]) {
		return ReadBinary(br)
	}
	return ParseText(br)
}

// --- encoder ---

type binEncoder struct {
	w   *bufio.Writer
	err error
}

func (e *binEncoder) u16(v uint16) {
	if e.err != nil {
		return
	}
	e.err = binary.Write(e.w, binary.LittleEndian, v)
}

func (e *binEncoder) u64(v uint64) {
	if e.err != nil {
		return
	}
	e.err = binary.Write(e.w, binary.LittleEndian, v)
}

func (e *binEncoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *binEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *binEncoder) str(s string) {
	e.u64(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

func (e *binEncoder) header(h Header) {
	e.str(h.Version)
	e.str(h.Exe)
	e.i64(int64(h.UID))
	e.i64(h.JobID)
	e.i64(int64(h.NProcs))
	e.i64(h.StartTime)
	e.i64(h.EndTime)
	e.f64(h.RunTime)
	e.u64(uint64(len(h.Metadata)))
	for _, k := range sortedKeys(h.Metadata) {
		e.str(k)
		e.str(h.Metadata[k])
	}
}

func (e *binEncoder) names(names map[uint64]string) {
	ids := make([]uint64, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.u64(uint64(len(ids)))
	for _, id := range ids {
		e.u64(id)
		e.str(names[id])
	}
}

func (e *binEncoder) mounts(ms []Mount) {
	e.u64(uint64(len(ms)))
	for _, m := range ms {
		e.str(m.Point)
		e.str(m.FSType)
	}
}

func (e *binEncoder) modules(l *Log) {
	names := l.ModuleNames()
	e.u64(uint64(len(names)))
	for _, name := range names {
		mod := l.Modules[name]
		e.str(name)
		recs := sortedRecords(mod)
		e.u64(uint64(len(recs)))
		for _, r := range recs {
			e.u64(r.FileID)
			e.i64(r.Rank)
			e.counterMapI(r.Counters)
			e.counterMapF(r.FCounters)
		}
	}
}

func (e *binEncoder) counterMapI(m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.i64(m[k])
	}
}

func (e *binEncoder) counterMapF(m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.f64(m[k])
	}
}

func (e *binEncoder) dxt(traces []*DXTFileTrace) {
	e.u64(uint64(len(traces)))
	for _, t := range traces {
		e.u64(t.FileID)
		e.str(t.Hostname)
		e.u64(uint64(len(t.Events)))
		for _, ev := range t.Events {
			e.str(ev.Module)
			e.i64(ev.Rank)
			if ev.Op == OpWrite {
				e.u16(1)
			} else {
				e.u16(0)
			}
			e.i64(ev.Segment)
			e.i64(ev.Offset)
			e.i64(ev.Length)
			e.f64(ev.Start)
			e.f64(ev.End)
			e.u64(uint64(len(ev.OSTs)))
			for _, o := range ev.OSTs {
				e.i64(int64(o))
			}
		}
	}
}

// --- decoder ---

type binDecoder struct {
	r   *bufio.Reader
	err error
}

// maxBinElems bounds decoded collection sizes to keep a corrupt or
// hostile length prefix from driving huge allocations.
const maxBinElems = 1 << 28

func (d *binDecoder) u16() uint16 {
	if d.err != nil {
		return 0
	}
	var v uint16
	d.err = binary.Read(d.r, binary.LittleEndian, &v)
	return v
}

func (d *binDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	d.err = binary.Read(d.r, binary.LittleEndian, &v)
	return v
}

func (d *binDecoder) i64() int64   { return int64(d.u64()) }
func (d *binDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *binDecoder) count(what string) int {
	n := d.u64()
	if d.err == nil && n > maxBinElems {
		d.err = fmt.Errorf("implausible %s count %d", what, n)
	}
	return int(n)
}

func (d *binDecoder) str() string {
	n := d.count("string length")
	if d.err != nil {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *binDecoder) header(h *Header) {
	h.Version = d.str()
	h.Exe = d.str()
	h.UID = int(d.i64())
	h.JobID = d.i64()
	h.NProcs = int(d.i64())
	h.StartTime = d.i64()
	h.EndTime = d.i64()
	h.RunTime = d.f64()
	n := d.count("metadata")
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		v := d.str()
		h.Metadata[k] = v
	}
}

func (d *binDecoder) names(names map[uint64]string) {
	n := d.count("name table")
	for i := 0; i < n && d.err == nil; i++ {
		id := d.u64()
		names[id] = d.str()
	}
}

func (d *binDecoder) mounts(ms *[]Mount) {
	n := d.count("mount table")
	for i := 0; i < n && d.err == nil; i++ {
		*ms = append(*ms, Mount{Point: d.str(), FSType: d.str()})
	}
}

func (d *binDecoder) modules(l *Log) {
	nmod := d.count("module")
	for i := 0; i < nmod && d.err == nil; i++ {
		name := d.str()
		mod := l.Module(name)
		nrec := d.count("record")
		for j := 0; j < nrec && d.err == nil; j++ {
			rec := NewRecord(d.u64(), d.i64())
			nc := d.count("counter")
			for k := 0; k < nc && d.err == nil; k++ {
				cname := d.str()
				rec.Counters[cname] = d.i64()
			}
			nf := d.count("fcounter")
			for k := 0; k < nf && d.err == nil; k++ {
				cname := d.str()
				rec.FCounters[cname] = d.f64()
			}
			mod.Records = append(mod.Records, rec)
		}
	}
}

func (d *binDecoder) dxt(l *Log) {
	nt := d.count("DXT trace")
	for i := 0; i < nt && d.err == nil; i++ {
		t := &DXTFileTrace{FileID: d.u64(), Hostname: d.str()}
		ne := d.count("DXT event")
		for j := 0; j < ne && d.err == nil; j++ {
			var ev DXTEvent
			ev.Module = d.str()
			ev.Rank = d.i64()
			if d.u16() == 1 {
				ev.Op = OpWrite
			} else {
				ev.Op = OpRead
			}
			ev.Segment = d.i64()
			ev.Offset = d.i64()
			ev.Length = d.i64()
			ev.Start = d.f64()
			ev.End = d.f64()
			no := d.count("OST list")
			for k := 0; k < no && d.err == nil; k++ {
				ev.OSTs = append(ev.OSTs, int(d.i64()))
			}
			t.Events = append(t.Events, ev)
		}
		l.DXT = append(l.DXT, t)
	}
}
