package darshan

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
)

// Sharded text parsing.
//
// ParseTextParallel splits the input at line boundaries into roughly
// equal chunks, parses each chunk with an independent parser (its own
// intern table, scratch buffers, and dedup sets), and merges the
// results into a log indistinguishable from a sequential ParseText of
// the same bytes.
//
// Correctness does not depend on where the cuts land: any line
// boundary is valid. A chunk that opens inside a DXT block collects
// the headerless event rows (and any rank-header hostname) as orphan
// state, and the merge reattaches them to the file trace left open by
// the previous chunk — or reports the same positioned error the
// sequential parser would if no such trace exists. The splitter merely
// *prefers* cuts at self-contained region starts (a counter line or a
// "# DXT, file_id" block header) so orphan carry-over stays rare.

// minShardBytes is the input size below which ParseTextParallel does
// not bother splitting: chunk setup and merge overhead would exceed
// the parse cost itself.
const minShardBytes = 256 << 10

// seekWindow bounds how far past the naive cut point the splitter
// scans for a self-contained region start before settling for the
// plain line boundary.
const seekWindow = 64 << 10

// ParallelOptions configures ParseTextParallelOpts.
type ParallelOptions struct {
	// Workers bounds parse concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// OnShard, when non-nil, is called as each shard begins parsing and
	// returns a completion callback invoked with the shard's error (nil
	// on success). Callers hang per-shard tracing spans off it.
	OnShard func(shard int, chunk []byte) func(error)

	// minChunkBytes overrides minShardBytes so tests can force
	// multi-shard parses of small inputs.
	minChunkBytes int
}

// ParseTextParallel parses a darshan-parser text log using up to
// workers goroutines (<= 0 means GOMAXPROCS). The result is
// byte-identical — under the render/parse fixed point — to
// ParseText(bytes.NewReader(data)), including error positions.
func ParseTextParallel(data []byte, workers int) (*Log, error) {
	return ParseTextParallelOpts(data, ParallelOptions{Workers: workers})
}

// ParseTextParallelOpts is ParseTextParallel with shard callbacks and
// test knobs.
func ParseTextParallelOpts(data []byte, opts ParallelOptions) (*Log, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	minChunk := opts.minChunkBytes
	if minChunk <= 0 {
		minChunk = minShardBytes
	}
	n := len(data) / minChunk
	if n > workers {
		n = workers
	}
	if n < 1 {
		n = 1
	}
	chunks := splitChunks(data, n)
	shards := make([]*shardResult, len(chunks))
	if len(chunks) == 1 {
		shards[0] = parseShard(0, chunks[0], false, opts.OnShard)
	} else {
		var wg sync.WaitGroup
		for i, c := range chunks {
			wg.Add(1)
			go func(i int, c []byte) {
				defer wg.Done()
				shards[i] = parseShard(i, c, i > 0, opts.OnShard)
			}(i, c)
		}
		wg.Wait()
	}
	return mergeShards(shards)
}

// shardResult is one chunk's parse outcome: the parser (whose log,
// orphan state, and bookkeeping feed the merge), the chunk bytes (for
// offset rebasing), the consumed line count, and any chunk-local error.
type shardResult struct {
	p     *parser
	chunk []byte
	lines int
	err   error
}

func parseShard(i int, chunk []byte, allowOrphan bool, onShard func(int, []byte) func(error)) *shardResult {
	var done func(error)
	if onShard != nil {
		done = onShard(i, chunk)
	}
	p := newParser(allowOrphan)
	lines, err := p.parseChunk(chunk)
	if done != nil {
		done(err)
	}
	return &shardResult{p: p, chunk: chunk, lines: lines, err: err}
}

// splitChunks cuts data into at most n chunks, each ending on a line
// boundary, with cut points nudged forward (bounded by seekWindow) to
// the next self-contained region start.
func splitChunks(data []byte, n int) [][]byte {
	if n <= 1 || len(data) == 0 {
		return [][]byte{data}
	}
	chunks := make([][]byte, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		cut := len(data) * i / n
		if cut <= start {
			continue
		}
		cut = nextLineStart(data, cut)
		cut = seekRegionStart(data, cut)
		if cut >= len(data) {
			break
		}
		if cut <= start {
			continue
		}
		chunks = append(chunks, data[start:cut])
		start = cut
	}
	if start < len(data) || len(chunks) == 0 {
		chunks = append(chunks, data[start:])
	}
	return chunks
}

// nextLineStart returns the offset just past the next '\n' at or after
// pos, or len(data) when no newline remains.
func nextLineStart(data []byte, pos int) int {
	if i := bytes.IndexByte(data[pos:], '\n'); i >= 0 {
		return pos + i + 1
	}
	return len(data)
}

// seekRegionStart advances a line-start cut to the first line within
// seekWindow that opens a self-contained region: a counter record line
// (shards never need prior state for those) or a "# DXT, file_id"
// block header (which re-establishes the current file trace). DXT
// event rows, rank headers, and other comments are skipped. If the
// window runs out, the original cut stands — the orphan carry-over in
// the merge keeps any line boundary correct.
func seekRegionStart(data []byte, cut int) int {
	limit := cut + seekWindow
	if limit > len(data) {
		limit = len(data)
	}
	for pos := cut; pos < limit; {
		next := nextLineStart(data, pos)
		line := bytes.TrimSpace(data[pos:next])
		switch {
		case len(line) == 0:
			// blank: keep scanning
		case line[0] == '#':
			body := bytes.TrimSpace(line[1:])
			if rest, ok := cutPrefix(body, "DXT,"); ok && bytes.Contains(rest, []byte("file_id")) {
				return pos
			}
		case len(line) >= 2 && line[0] == 'X' && line[1] == '_':
			// headerless event row: keep scanning
		default:
			return pos // counter record line
		}
		pos = next
	}
	return cut
}

// mergeShards combines per-chunk parse results, in chunk order, into a
// single log with sequential semantics. See the package comment at the
// top of this file for the invariants; DESIGN.md §15 documents them in
// full.
func mergeShards(shards []*shardResult) (*Log, error) {
	if len(shards) == 0 {
		return NewLog(), nil
	}

	// Error resolution first: sequential parsing stops at the first
	// failing line, so report the earliest-positioned failure — either
	// a shard's own parse error or an orphan DXT event row that no
	// earlier chunk left an open file trace for. Positions are rebased
	// from chunk-local to whole-input coordinates; shards preceding the
	// failure completed fully, so their line counts are exact.
	baseLine, baseOff := 0, int64(0)
	haveTrace := false
	for _, sh := range shards {
		if len(sh.p.orphans) > 0 && !haveTrace {
			return nil, posErr(baseLine+sh.p.orphanLine, baseOff+sh.p.orphanOff, errOrphanEvent)
		}
		if sh.err != nil {
			var pe *ParseError
			if errors.As(sh.err, &pe) {
				return nil, posErr(baseLine+pe.Line, baseOff+pe.Offset, pe.Err)
			}
			return nil, sh.err
		}
		if sh.p.dxtTrace != nil {
			haveTrace = true
		}
		baseLine += sh.lines
		baseOff += int64(len(sh.chunk))
	}

	// Adopt the first shard's log wholesale and fold the rest in.
	merged := shards[0].p.log
	mountSet := make(map[string]struct{}, len(merged.Mounts)+4)
	for _, m := range merged.Mounts {
		mountSet[m.Point] = struct{}{}
	}
	dxtIdx := make(map[uint64]*DXTFileTrace, len(merged.DXT)+4)
	for _, t := range merged.DXT {
		dxtIdx[t.FileID] = t
	}
	cur := shards[0].p.dxtTrace

	for _, sh := range shards[1:] {
		sp := sh.p
		sl := sp.log

		// Orphan DXT state belongs to the trace the previous chunks
		// left open. Events keep their row order: after everything the
		// earlier chunks appended, before anything this chunk's own
		// headers append.
		if len(sp.orphans) > 0 {
			cur.Events = append(cur.Events, sp.orphans...)
		}
		if sp.orphanHostSet && cur != nil {
			cur.Hostname = sp.orphanHost
		}

		// Header: later chunks overwrite only the fields they
		// explicitly assigned (the bitmask distinguishes assignment
		// from defaults); metadata and names are last-writer-wins maps.
		if sp.headerSet&hdrVersion != 0 {
			merged.Header.Version = sl.Header.Version
		}
		if sp.headerSet&hdrExe != 0 {
			merged.Header.Exe = sl.Header.Exe
		}
		if sp.headerSet&hdrUID != 0 {
			merged.Header.UID = sl.Header.UID
		}
		if sp.headerSet&hdrJobID != 0 {
			merged.Header.JobID = sl.Header.JobID
		}
		if sp.headerSet&hdrStartTime != 0 {
			merged.Header.StartTime = sl.Header.StartTime
		}
		if sp.headerSet&hdrEndTime != 0 {
			merged.Header.EndTime = sl.Header.EndTime
		}
		if sp.headerSet&hdrNProcs != 0 {
			merged.Header.NProcs = sl.Header.NProcs
		}
		if sp.headerSet&hdrRunTime != 0 {
			merged.Header.RunTime = sl.Header.RunTime
		}
		for k, v := range sl.Header.Metadata {
			merged.Header.Metadata[k] = v
		}
		for id, name := range sl.Names {
			merged.Names[id] = name
		}

		// Mounts keep concatenated chunk order: explicit "# mount
		// entry:" rows append unconditionally (historical behavior),
		// implicit rows only while their point is unseen globally.
		for mi, m := range sl.Mounts {
			if !sp.mountKind[mi] {
				if _, dup := mountSet[m.Point]; dup {
					continue
				}
			}
			merged.Mounts = append(merged.Mounts, m)
			mountSet[m.Point] = struct{}{}
		}

		// Modules: adopt record pointers for unseen (file, rank) keys;
		// only records split across a cut — at most one per module per
		// boundary — pay a counter-map copy, with later chunks
		// overwriting like sequential re-assignment does.
		for name, sm := range sl.Modules {
			mm, ok := merged.Modules[name]
			if !ok {
				merged.Modules[name] = sm
				continue
			}
			for _, r := range sm.Records {
				dst := mm.lookup(r.FileID, r.Rank)
				if dst == nil {
					mm.Records = append(mm.Records, r)
					mm.index[recordKey{r.FileID, r.Rank}] = r
					continue
				}
				for k, v := range r.Counters {
					dst.Counters[k] = v
				}
				for k, v := range r.FCounters {
					dst.FCounters[k] = v
				}
			}
		}

		// DXT file traces in shard insertion order; hostnames only
		// overwrite when this chunk actually assigned one.
		for _, t := range sl.DXT {
			mt, ok := dxtIdx[t.FileID]
			if !ok {
				merged.DXT = append(merged.DXT, t)
				dxtIdx[t.FileID] = t
				continue
			}
			mt.Events = append(mt.Events, t.Events...)
			if sp.hostSet[t.FileID] {
				mt.Hostname = t.Hostname
			}
		}
		if sp.dxtTrace != nil {
			cur = dxtIdx[sp.dxtTrace.FileID]
		}
	}

	// Event ordering is applied once, after all chunks contributed, so
	// SortByStart's stable tie-breaking sees the same insertion order a
	// sequential parse would have produced.
	for _, t := range merged.DXT {
		t.SortByStart()
	}
	return merged, nil
}
