package darshan

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// render serializes a log the way the text pipeline does: counter
// section followed by the DXT section.
func render(tb testing.TB, l *Log) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		tb.Fatalf("WriteText: %v", err)
	}
	if err := l.WriteDXTText(&buf); err != nil {
		tb.Fatalf("WriteDXTText: %v", err)
	}
	return buf.Bytes()
}

// FuzzParseText asserts three properties over arbitrary input:
// ParseText never panics; any log it accepts round-trips through the
// text writer — parse(render(log)) renders back byte-identically once
// the first render has normalized formatting (rounded timestamps,
// truncated comma-bearing names in DXT comments); and the sharded
// parser agrees with the sequential one — same rendered log on
// success, same positioned error on failure — even when forced to cut
// tiny inputs into many shards.
func FuzzParseText(f *testing.F) {
	if data, err := os.ReadFile("testdata/real_sample.txt"); err == nil {
		f.Add(data)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		f.Add(render(f, randomLog(rng)))
	}
	f.Add([]byte("# darshan log version: 3.41\n# nprocs: 2\nPOSIX\t0\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n"))
	f.Add([]byte("# DXT, file_id: 9, file_name: /d\n# DXT, rank: 0, hostname: n1\nX_POSIX 0 write 0 0 8 0.1 0.2 [0,1]\n"))
	// Splitter exercise: interleaved counter lines and a DXT block long
	// enough that small-chunk shards cut through the event rows, the
	// rank header, and the block header.
	f.Add([]byte("# nprocs: 2\n" +
		"POSIX\t0\t7\tPOSIX_OPENS\t1\t/a\t/\ttmpfs\n" +
		"POSIX\t1\t7\tPOSIX_OPENS\t2\t/a\t/\ttmpfs\n" +
		"# DXT, file_id: 7, file_name: /a\n" +
		"# DXT, rank: 0, hostname: n1\n" +
		"# DXT, write_count: 3, read_count: 1\n" +
		" X_POSIX 0 write 0 0 8 0.1 0.2\n" +
		" X_POSIX 0 write 1 8 8 0.2 0.3\n" +
		" X_POSIX 0 write 2 16 8 0.3 0.4\n" +
		" X_POSIX 0 read 0 0 8 0.4 0.5\n" +
		"# DXT, rank: 1, hostname: n2\n" +
		" X_POSIX 1 write 0 0 8 0.5 0.6\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ParseText(bytes.NewReader(data))
		plog, perr := ParseTextParallelOpts(data, ParallelOptions{Workers: 4, minChunkBytes: 24})
		switch {
		case err == nil && perr != nil:
			t.Fatalf("sequential accepted what sharded rejected: %v", perr)
		case err != nil && perr == nil:
			t.Fatalf("sharded accepted what sequential rejected: %v", err)
		case err != nil:
			if err.Error() != perr.Error() {
				t.Fatalf("error divergence:\nsequential: %v\nsharded:    %v", err, perr)
			}
			return // rejected input is fine; panicking is not
		}
		if sr, pr := render(t, log), render(t, plog); !bytes.Equal(sr, pr) {
			t.Fatalf("sharded parse diverged from sequential:\n--- sequential ---\n%s\n--- sharded ---\n%s", sr, pr)
		}
		r1 := render(t, log)
		log2, err := ParseText(bytes.NewReader(r1))
		if err != nil {
			t.Fatalf("reparsing rendered log failed: %v\nrendered:\n%s", err, r1)
		}
		r2 := render(t, log2)
		log3, err := ParseText(bytes.NewReader(r2))
		if err != nil {
			t.Fatalf("reparsing second render failed: %v", err)
		}
		r3 := render(t, log3)
		if !bytes.Equal(r2, r3) {
			t.Fatalf("render/parse did not reach a fixed point:\n--- second render ---\n%s\n--- third render ---\n%s", r2, r3)
		}
	})
}
