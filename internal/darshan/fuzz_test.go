package darshan

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// render serializes a log the way the text pipeline does: counter
// section followed by the DXT section.
func render(tb testing.TB, l *Log) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		tb.Fatalf("WriteText: %v", err)
	}
	if err := l.WriteDXTText(&buf); err != nil {
		tb.Fatalf("WriteDXTText: %v", err)
	}
	return buf.Bytes()
}

// FuzzParseText asserts two properties over arbitrary input: ParseText
// never panics, and any log it accepts round-trips through the text
// writer — parse(render(log)) renders back byte-identically once the
// first render has normalized formatting (rounded timestamps,
// truncated comma-bearing names in DXT comments).
func FuzzParseText(f *testing.F) {
	if data, err := os.ReadFile("testdata/real_sample.txt"); err == nil {
		f.Add(data)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		f.Add(render(f, randomLog(rng)))
	}
	f.Add([]byte("# darshan log version: 3.41\n# nprocs: 2\nPOSIX\t0\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n"))
	f.Add([]byte("# DXT, file_id: 9, file_name: /d\n# DXT, rank: 0, hostname: n1\nX_POSIX 0 write 0 0 8 0.1 0.2 [0,1]\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ParseText(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		r1 := render(t, log)
		log2, err := ParseText(bytes.NewReader(r1))
		if err != nil {
			t.Fatalf("reparsing rendered log failed: %v\nrendered:\n%s", err, r1)
		}
		r2 := render(t, log2)
		log3, err := ParseText(bytes.NewReader(r2))
		if err != nil {
			t.Fatalf("reparsing second render failed: %v", err)
		}
		r3 := render(t, log3)
		if !bytes.Equal(r2, r3) {
			t.Fatalf("render/parse did not reach a fixed point:\n--- second render ---\n%s\n--- third render ---\n%s", r2, r3)
		}
	})
}
