package darshan

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"unsafe"
)

// maxDXTPrealloc bounds how many events a single DXT header's
// write_count/read_count may preallocate, so a hostile header cannot
// request gigabytes from a few bytes of input. Larger traces simply
// fall back to append growth past this point.
const maxDXTPrealloc = 1 << 15

// maxLineBytes bounds a single input line; anything longer is rejected
// with a positioned error rather than buffering without limit.
const maxLineBytes = 16 * 1024 * 1024

// ParseError locates a parse failure in the input: Line is 1-based,
// Offset is the byte offset of the start of the offending line. All
// errors returned by ParseText, ParseTextParallel, and the streaming
// parser carry a *ParseError in their chain.
type ParseError struct {
	Line   int
	Offset int64
	Err    error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("darshan: line %d (byte %d): %v", e.Line, e.Offset, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

func posErr(line int, off int64, err error) error {
	return &ParseError{Line: line, Offset: off, Err: err}
}

// errOrphanEvent mirrors the sequential parser's message for a DXT
// event row seen before any "# DXT, file_id" header established the
// current file trace.
var errOrphanEvent = errors.New("DXT event before DXT file header")

// Header-field assignment bits. A shard records which header fields its
// chunk explicitly set so the merge can replay last-writer-wins
// semantics without confusing defaults for assignments.
const (
	hdrVersion = 1 << iota
	hdrExe
	hdrUID
	hdrJobID
	hdrStartTime
	hdrEndTime
	hdrNProcs
	hdrRunTime
)

// parser carries the per-parse state that lets ParseText run without
// allocating per line: an intern table for repeated names, a mount-point
// set replacing the old O(mounts) scan, an index over DXT file traces,
// field-cut scratch buffers, and an arena for OST lists.
//
// The same machine parses one shard of a sharded or streamed parse; the
// extra bookkeeping below (headerSet, mountKind, hostSet, orphan state)
// records exactly the facts the deterministic merge in shard.go needs
// to replay sequential semantics across chunk boundaries.
type parser struct {
	log      *Log
	interns  map[string]string
	mounts   map[string]struct{}
	dxtIdx   map[uint64]*DXTFileTrace
	dxtTrace *DXTFileTrace
	dxtRank  int64

	// Memo of the last counter line's (module, file, rank) so runs of
	// lines for the same record skip the map lookups entirely.
	lastMod *Module
	lastRec *Record

	headerSet uint32          // hdr* bits for fields this chunk assigned
	mountKind []bool          // parallel to log.Mounts; true = explicit "# mount entry:"
	hostSet   map[uint64]bool // file ids whose Hostname this chunk assigned

	// Orphan state: a shard other than the first may legally open with
	// DXT event rows (and a rank/hostname header) that belong to a file
	// trace declared in an earlier chunk. They are collected here and
	// reattached during merge; only if no earlier chunk has a current
	// trace does the merge report errOrphanEvent at orphanLine/orphanOff.
	allowOrphan   bool
	orphans       []DXTEvent
	orphanLine    int
	orphanOff     int64
	orphanHost    string
	orphanHostSet bool

	fields   [][]byte // tab/space field-cut scratch
	kvKeys   [][]byte // DXT comment attribute scratch
	kvVals   [][]byte
	ostArena []int // backing storage for DXTEvent.OSTs slices
}

func newParser(allowOrphan bool) *parser {
	return &parser{
		log:         NewLog(),
		interns:     make(map[string]string, 128),
		mounts:      make(map[string]struct{}, 8),
		dxtIdx:      make(map[uint64]*DXTFileTrace, 8),
		hostSet:     make(map[uint64]bool, 4),
		allowOrphan: allowOrphan,
	}
}

// ParseText reads a log in the darshan-parser text format produced by
// WriteText, optionally followed by a darshan-dxt-parser section as
// produced by WriteDXTText, and reconstructs the Log. Unknown counters
// are preserved verbatim; unknown comment lines are ignored, matching
// the tolerance of the reference tooling. Errors carry a *ParseError
// with the 1-based line number and byte offset of the failing line.
func ParseText(r io.Reader) (*Log, error) {
	p := newParser(false)
	br := bufio.NewReaderSize(r, 64*1024)
	var (
		off    int64
		lineno int
		spill  []byte // reassembly buffer for lines longer than the reader
	)
	for {
		raw, err := br.ReadSlice('\n')
		if len(raw) == 0 && err == io.EOF {
			break
		}
		lineno++
		lineStart := off
		line := raw
		if err == bufio.ErrBufferFull {
			spill = append(spill[:0], raw...)
			for err == bufio.ErrBufferFull {
				if len(spill) > maxLineBytes {
					return nil, posErr(lineno, lineStart, errors.New("line too long"))
				}
				raw, err = br.ReadSlice('\n')
				spill = append(spill, raw...)
			}
			line = spill
		}
		off += int64(len(line))
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("darshan: reading log: %w", err)
		}
		if perr := p.parseLine(line, lineno, lineStart); perr != nil {
			return nil, perr
		}
		if err == io.EOF {
			break
		}
	}
	return p.finish(), nil
}

// finish applies the end-of-parse pass (event ordering) and returns the
// log. Shard parses must not call this: merged traces are sorted once
// after concatenation so ties keep their input order.
func (p *parser) finish() *Log {
	for _, t := range p.log.DXT {
		t.SortByStart()
	}
	return p.log
}

// parseLine dispatches one raw line (trailing newline optional). lineno
// and off locate the line within this parser's input for error reports;
// shard parses use chunk-local positions that the merge rebases.
func (p *parser) parseLine(raw []byte, lineno int, off int64) error {
	line := bytes.TrimSpace(raw)
	if len(line) == 0 {
		return nil
	}
	if line[0] == '#' {
		if err := p.parseComment(line); err != nil {
			return posErr(lineno, off, err)
		}
		return nil
	}
	// Data row: either a counter record line (tab separated) or a
	// DXT event line (space aligned, module starts with "X_").
	if len(line) >= 2 && line[0] == 'X' && line[1] == '_' {
		if p.dxtTrace == nil {
			if !p.allowOrphan {
				return posErr(lineno, off, errOrphanEvent)
			}
			if len(p.orphans) == 0 {
				p.orphanLine, p.orphanOff = lineno, off
			}
		}
		if err := p.parseDXTEventLine(line); err != nil {
			return posErr(lineno, off, err)
		}
		return nil
	}
	if err := p.parseCounterLine(line); err != nil {
		return posErr(lineno, off, err)
	}
	return nil
}

// parseChunk feeds every line of data to parseLine using chunk-local
// positions starting at line 1, offset 0. It returns the number of
// lines consumed (newline-terminated segments plus any unterminated
// tail), which the merge uses to rebase later shards' positions.
func (p *parser) parseChunk(data []byte) (lines int, err error) {
	var pos int
	for pos < len(data) {
		raw := data[pos:]
		advance := len(raw)
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			raw = raw[:i]
			advance = i + 1
		}
		lines++
		if err := p.parseLine(raw, lines, int64(pos)); err != nil {
			return lines, err
		}
		pos += advance
	}
	return lines, nil
}

// bstr views b as a string without copying. The result aliases the
// scanner's buffer and must not be retained across Scan calls; it is
// only handed to strconv parse functions, which do not keep it.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// cutPrefix returns b without the leading prefix and whether it was
// present. The string(...) conversion in the comparison does not
// allocate.
func cutPrefix(b []byte, prefix string) ([]byte, bool) {
	if len(b) >= len(prefix) && string(b[:len(prefix)]) == prefix {
		return b[len(prefix):], true
	}
	return nil, false
}

// intern returns the canonical string for b, copying it at most once
// per distinct value per parse. Module and counter names repeat for
// every record, so the N-records x M-counters map keys share storage.
func (p *parser) intern(b []byte) string {
	if s, ok := p.interns[string(b)]; ok {
		return s
	}
	s := string(b)
	p.interns[s] = s
	return s
}

// setName records the path for a file id, skipping the common case
// where the id already maps to the identical name.
func (p *parser) setName(id uint64, name []byte) {
	if cur, ok := p.log.Names[id]; ok && cur == string(name) {
		return
	}
	p.log.Names[id] = string(name)
}

// addMount appends an implicit mount entry (from a counter or DXT line)
// unless its mount point was already captured, using the set instead of
// scanning the slice per line.
func (p *parser) addMount(point, fsType []byte) {
	if _, dup := p.mounts[string(point)]; dup {
		return
	}
	pt := string(point)
	p.log.Mounts = append(p.log.Mounts, Mount{Point: pt, FSType: string(fsType)})
	p.mountKind = append(p.mountKind, false)
	p.mounts[pt] = struct{}{}
}

// dxtFor returns the trace for a file id via the parse-local index,
// falling back to (and populating) the log's lookup on first sight.
func (p *parser) dxtFor(id uint64) *DXTFileTrace {
	if t, ok := p.dxtIdx[id]; ok {
		return t
	}
	t := p.log.DXTForFile(id)
	p.dxtIdx[id] = t
	return t
}

func (p *parser) parseComment(line []byte) error {
	l := p.log
	body := bytes.TrimSpace(line[1:])
	if rest, ok := cutPrefix(body, "darshan log version:"); ok {
		l.Header.Version = string(bytes.TrimSpace(rest))
		p.headerSet |= hdrVersion
		return nil
	}
	if rest, ok := cutPrefix(body, "exe:"); ok {
		l.Header.Exe = string(bytes.TrimSpace(rest))
		p.headerSet |= hdrExe
		return nil
	}
	if rest, ok := cutPrefix(body, "uid:"); ok {
		v, err := strconv.Atoi(bstr(bytes.TrimSpace(rest)))
		if err != nil {
			return fmt.Errorf("bad uid: %w", err)
		}
		l.Header.UID = v
		p.headerSet |= hdrUID
		return nil
	}
	if rest, ok := cutPrefix(body, "jobid:"); ok {
		v, err := strconv.ParseInt(bstr(bytes.TrimSpace(rest)), 10, 64)
		if err != nil {
			return fmt.Errorf("bad jobid: %w", err)
		}
		l.Header.JobID = v
		p.headerSet |= hdrJobID
		return nil
	}
	if rest, ok := cutPrefix(body, "start_time:"); ok {
		v, err := strconv.ParseInt(bstr(bytes.TrimSpace(rest)), 10, 64)
		if err != nil {
			return fmt.Errorf("bad start_time: %w", err)
		}
		l.Header.StartTime = v
		p.headerSet |= hdrStartTime
		return nil
	}
	if rest, ok := cutPrefix(body, "end_time:"); ok {
		v, err := strconv.ParseInt(bstr(bytes.TrimSpace(rest)), 10, 64)
		if err != nil {
			return fmt.Errorf("bad end_time: %w", err)
		}
		l.Header.EndTime = v
		p.headerSet |= hdrEndTime
		return nil
	}
	if rest, ok := cutPrefix(body, "nprocs:"); ok {
		v, err := strconv.Atoi(bstr(bytes.TrimSpace(rest)))
		if err != nil {
			return fmt.Errorf("bad nprocs: %w", err)
		}
		l.Header.NProcs = v
		p.headerSet |= hdrNProcs
		return nil
	}
	if rest, ok := cutPrefix(body, "run time:"); ok {
		v, err := strconv.ParseFloat(bstr(bytes.TrimSpace(rest)), 64)
		if err != nil {
			return fmt.Errorf("bad run time: %w", err)
		}
		l.Header.RunTime = v
		p.headerSet |= hdrRunTime
		return nil
	}
	if rest, ok := cutPrefix(body, "metadata:"); ok {
		if i := bytes.IndexByte(rest, '='); i >= 0 {
			k := string(bytes.TrimSpace(rest[:i]))
			l.Header.Metadata[k] = string(bytes.TrimSpace(rest[i+1:]))
		}
		return nil
	}
	if rest, ok := cutPrefix(body, "mount entry:"); ok {
		p.fields = splitWS(p.fields[:0], rest)
		if len(p.fields) == 2 {
			// Mirror the historical behavior: explicit mount-table
			// entries append unconditionally, but still seed the dedup
			// set consulted by counter and DXT lines.
			pt := string(p.fields[0])
			l.Mounts = append(l.Mounts, Mount{Point: pt, FSType: string(p.fields[1])})
			p.mountKind = append(p.mountKind, true)
			p.mounts[pt] = struct{}{}
		}
		return nil
	}
	if rest, ok := cutPrefix(body, "DXT,"); ok {
		return p.parseDXTComment(rest)
	}
	return nil
}

// parseDXTComment handles one "# DXT, k: v, k: v" header line. The
// attribute pairs are collected into scratch slices and looked up by
// key, preserving the last-value-wins semantics of the old map build.
func (p *parser) parseDXTComment(rest []byte) error {
	p.kvKeys = p.kvKeys[:0]
	p.kvVals = p.kvVals[:0]
	for {
		i := bytes.IndexByte(rest, ',')
		part := rest
		if i >= 0 {
			part = rest[:i]
		}
		if j := bytes.IndexByte(part, ':'); j >= 0 {
			p.kvKeys = append(p.kvKeys, bytes.TrimSpace(part[:j]))
			p.kvVals = append(p.kvVals, bytes.TrimSpace(part[j+1:]))
		}
		if i < 0 {
			break
		}
		rest = rest[i+1:]
	}
	if idb, ok := p.attr("file_id"); ok {
		id, err := strconv.ParseUint(bstr(idb), 10, 64)
		if err != nil {
			return fmt.Errorf("bad DXT file_id: %w", err)
		}
		p.dxtTrace = p.dxtFor(id)
		if nameb, ok := p.attr("file_name"); ok {
			p.setName(id, nameb)
		}
	}
	if rb, ok := p.attr("rank"); ok {
		r, err := strconv.ParseInt(bstr(rb), 10, 64)
		if err != nil {
			return fmt.Errorf("bad DXT rank: %w", err)
		}
		p.dxtRank = r
		if hb, ok := p.attr("hostname"); ok {
			switch {
			case p.dxtTrace != nil:
				if p.dxtTrace.Hostname != string(hb) {
					p.dxtTrace.Hostname = string(hb)
				}
				p.hostSet[p.dxtTrace.FileID] = true
			case p.allowOrphan:
				// Rank header for a file trace opened in an earlier
				// chunk; the merge applies it to that trace.
				p.orphanHost = string(hb)
				p.orphanHostSet = true
			}
		}
	}
	if mb, ok := p.attr("mnt_pt"); ok {
		fsb, _ := p.attr("fs_type")
		p.addMount(mb, fsb)
	}
	if t := p.dxtTrace; t != nil {
		// Preallocate the event slice from the header's announced
		// segment counts so appends don't repeatedly regrow it.
		want := 0
		if wb, ok := p.attr("write_count"); ok {
			if n, err := strconv.ParseInt(bstr(wb), 10, 64); err == nil && n > 0 {
				want += int(n)
			}
		}
		if rb, ok := p.attr("read_count"); ok {
			if n, err := strconv.ParseInt(bstr(rb), 10, 64); err == nil && n > 0 {
				want += int(n)
			}
		}
		if want > maxDXTPrealloc {
			want = maxDXTPrealloc
		}
		if want > 0 && cap(t.Events)-len(t.Events) < want {
			// Grow by at least 2x so a long run of per-rank block
			// headers costs amortized-linear copying, not quadratic.
			newCap := len(t.Events) + want
			if c := 2 * cap(t.Events); c > newCap {
				newCap = c
			}
			grown := make([]DXTEvent, len(t.Events), newCap)
			copy(grown, t.Events)
			t.Events = grown
		}
	}
	return nil
}

// attr returns the value for key among the scratch attribute pairs,
// scanning backwards so duplicate keys resolve like map overwrites.
func (p *parser) attr(key string) ([]byte, bool) {
	for i := len(p.kvKeys) - 1; i >= 0; i-- {
		if string(p.kvKeys[i]) == key {
			return p.kvVals[i], true
		}
	}
	return nil, false
}

// parseCounterLine parses one tab-separated record line:
// module, rank, record id, counter, value, file name, mount pt, fs type.
func (p *parser) parseCounterLine(line []byte) error {
	fields := splitByte(p.fields[:0], line, '\t')
	p.fields = fields
	if len(fields) < 5 {
		return fmt.Errorf("malformed counter line %q", line)
	}
	rank, err := strconv.ParseInt(bstr(fields[1]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad rank %q: %w", fields[1], err)
	}
	fileID, err := strconv.ParseUint(bstr(fields[2]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad record id %q: %w", fields[2], err)
	}
	if len(fields) >= 6 && len(fields[5]) > 0 {
		p.setName(fileID, fields[5])
	}
	if len(fields) >= 8 && len(fields[6]) > 0 {
		p.addMount(fields[6], fields[7])
	}
	mod := p.lastMod
	if mod == nil || string(fields[0]) != mod.Name {
		mod = p.log.Module(p.intern(fields[0]))
		p.lastMod = mod
		p.lastRec = nil
	}
	rec := p.lastRec
	if rec == nil || rec.FileID != fileID || rec.Rank != rank {
		rec = mod.Record(fileID, rank)
		p.lastRec = rec
	}
	counter, value := fields[3], fields[4]
	if isFloatCounter(bstr(counter)) {
		v, err := strconv.ParseFloat(bstr(value), 64)
		if err != nil {
			return fmt.Errorf("bad float counter %s=%q: %w", counter, value, err)
		}
		rec.FCounters[p.intern(counter)] = v
		return nil
	}
	v, err := strconv.ParseInt(bstr(value), 10, 64)
	if err != nil {
		return fmt.Errorf("bad counter %s=%q: %w", counter, value, err)
	}
	rec.Counters[p.intern(counter)] = v
	return nil
}

// isFloatCounter reports whether a counter name denotes a Darshan float
// counter. Darshan uses the "<MODULE>_F_" prefix convention.
func isFloatCounter(name string) bool {
	for i := 0; i+3 <= len(name); i++ {
		if name[i] == '_' && name[i+1] == 'F' && name[i+2] == '_' {
			return true
		}
	}
	return false
}

// parseDXTEventLine parses one fixed-width DXT event row, e.g.:
//
//	X_POSIX       0  write        0            0        2048      0.0001      0.0002  [0,1]
func (p *parser) parseDXTEventLine(line []byte) error {
	fields := splitWS(p.fields[:0], line)
	p.fields = fields
	if len(fields) < 8 {
		return fmt.Errorf("malformed DXT event %q", line)
	}
	var ev DXTEvent
	ev.Module = p.intern(fields[0])
	var err error
	if ev.Rank, err = strconv.ParseInt(bstr(fields[1]), 10, 64); err != nil {
		return fmt.Errorf("bad DXT rank: %w", err)
	}
	switch {
	case string(fields[2]) == "read":
		ev.Op = OpRead
	case string(fields[2]) == "write":
		ev.Op = OpWrite
	default:
		return fmt.Errorf("bad DXT op %q", fields[2])
	}
	if ev.Segment, err = strconv.ParseInt(bstr(fields[3]), 10, 64); err != nil {
		return fmt.Errorf("bad DXT segment: %w", err)
	}
	if ev.Offset, err = strconv.ParseInt(bstr(fields[4]), 10, 64); err != nil {
		return fmt.Errorf("bad DXT offset: %w", err)
	}
	if ev.Length, err = strconv.ParseInt(bstr(fields[5]), 10, 64); err != nil {
		return fmt.Errorf("bad DXT length: %w", err)
	}
	if ev.Start, err = strconv.ParseFloat(bstr(fields[6]), 64); err != nil {
		return fmt.Errorf("bad DXT start: %w", err)
	}
	if ev.End, err = strconv.ParseFloat(bstr(fields[7]), 64); err != nil {
		return fmt.Errorf("bad DXT end: %w", err)
	}
	if len(fields) >= 9 {
		ost := bytes.Trim(fields[8], "[]")
		start := len(p.ostArena)
		for len(ost) > 0 {
			var s []byte
			if i := bytes.IndexByte(ost, ','); i >= 0 {
				s, ost = ost[:i], ost[i+1:]
			} else {
				s, ost = ost, nil
			}
			if len(s) == 0 {
				continue
			}
			o, err := strconv.Atoi(bstr(s))
			if err != nil {
				return fmt.Errorf("bad DXT OST list %q: %w", fields[8], err)
			}
			p.ostArena = append(p.ostArena, o)
		}
		if end := len(p.ostArena); end > start {
			ev.OSTs = p.ostArena[start:end:end]
		}
	}
	if p.dxtTrace != nil {
		p.dxtTrace.Events = append(p.dxtTrace.Events, ev)
	} else {
		p.orphans = append(p.orphans, ev)
	}
	return nil
}

// splitByte appends the sep-separated subslices of line to dst,
// including empty fields, matching strings.Split.
func splitByte(dst [][]byte, line []byte, sep byte) [][]byte {
	for {
		i := bytes.IndexByte(line, sep)
		if i < 0 {
			return append(dst, line)
		}
		dst = append(dst, line[:i])
		line = line[i+1:]
	}
}

// splitWS appends the whitespace-separated fields of line to dst,
// matching strings.Fields for ASCII input.
func splitWS(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		j := i + 1
		for j < len(line) && !asciiSpace(line[j]) {
			j++
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}
