package darshan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText reads a log in the darshan-parser text format produced by
// WriteText, optionally followed by a darshan-dxt-parser section as
// produced by WriteDXTText, and reconstructs the Log. Unknown counters
// are preserved verbatim; unknown comment lines are ignored, matching
// the tolerance of the reference tooling.
func ParseText(r io.Reader) (*Log, error) {
	log := NewLog()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var (
		dxtTrace *DXTFileTrace
		dxtRank  int64
		lineno   int
	)
	for sc.Scan() {
		lineno++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if err := log.parseComment(trimmed, &dxtTrace, &dxtRank); err != nil {
				return nil, fmt.Errorf("darshan: line %d: %w", lineno, err)
			}
			continue
		}
		// Data row: either a counter record line (tab separated) or a
		// DXT event line (space aligned, module starts with "X_").
		if strings.HasPrefix(trimmed, "X_") {
			if dxtTrace == nil {
				return nil, fmt.Errorf("darshan: line %d: DXT event before DXT file header", lineno)
			}
			ev, err := parseDXTEventLine(trimmed)
			if err != nil {
				return nil, fmt.Errorf("darshan: line %d: %w", lineno, err)
			}
			dxtTrace.Events = append(dxtTrace.Events, ev)
			continue
		}
		if err := log.parseCounterLine(trimmed); err != nil {
			return nil, fmt.Errorf("darshan: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("darshan: scanning log: %w", err)
	}
	for _, t := range log.DXT {
		t.SortByStart()
	}
	return log, nil
}

func (l *Log) parseComment(line string, dxtTrace **DXTFileTrace, dxtRank *int64) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	switch {
	case strings.HasPrefix(body, "darshan log version:"):
		l.Header.Version = strings.TrimSpace(strings.TrimPrefix(body, "darshan log version:"))
	case strings.HasPrefix(body, "exe:"):
		l.Header.Exe = strings.TrimSpace(strings.TrimPrefix(body, "exe:"))
	case strings.HasPrefix(body, "uid:"):
		v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(body, "uid:")))
		if err != nil {
			return fmt.Errorf("bad uid: %w", err)
		}
		l.Header.UID = v
	case strings.HasPrefix(body, "jobid:"):
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(body, "jobid:")), 10, 64)
		if err != nil {
			return fmt.Errorf("bad jobid: %w", err)
		}
		l.Header.JobID = v
	case strings.HasPrefix(body, "start_time:"):
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(body, "start_time:")), 10, 64)
		if err != nil {
			return fmt.Errorf("bad start_time: %w", err)
		}
		l.Header.StartTime = v
	case strings.HasPrefix(body, "end_time:"):
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(body, "end_time:")), 10, 64)
		if err != nil {
			return fmt.Errorf("bad end_time: %w", err)
		}
		l.Header.EndTime = v
	case strings.HasPrefix(body, "nprocs:"):
		v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(body, "nprocs:")))
		if err != nil {
			return fmt.Errorf("bad nprocs: %w", err)
		}
		l.Header.NProcs = v
	case strings.HasPrefix(body, "run time:"):
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(body, "run time:")), 64)
		if err != nil {
			return fmt.Errorf("bad run time: %w", err)
		}
		l.Header.RunTime = v
	case strings.HasPrefix(body, "metadata:"):
		kv := strings.SplitN(strings.TrimPrefix(body, "metadata:"), "=", 2)
		if len(kv) == 2 {
			l.Header.Metadata[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	case strings.HasPrefix(body, "mount entry:"):
		fields := strings.Fields(strings.TrimPrefix(body, "mount entry:"))
		if len(fields) == 2 {
			l.Mounts = append(l.Mounts, Mount{Point: fields[0], FSType: fields[1]})
		}
	case strings.HasPrefix(body, "DXT,"):
		return l.parseDXTComment(body, dxtTrace, dxtRank)
	}
	return nil
}

func (l *Log) parseDXTComment(body string, dxtTrace **DXTFileTrace, dxtRank *int64) error {
	attrs := map[string]string{}
	for _, part := range strings.Split(strings.TrimPrefix(body, "DXT,"), ",") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) == 2 {
			attrs[strings.TrimSpace(kv[0])] = strings.TrimSpace(kv[1])
		}
	}
	if idStr, ok := attrs["file_id"]; ok {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bad DXT file_id: %w", err)
		}
		*dxtTrace = l.DXTForFile(id)
		if name, ok := attrs["file_name"]; ok {
			l.Names[id] = name
		}
	}
	if rankStr, ok := attrs["rank"]; ok {
		r, err := strconv.ParseInt(rankStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bad DXT rank: %w", err)
		}
		*dxtRank = r
		if host, ok := attrs["hostname"]; ok && *dxtTrace != nil {
			(*dxtTrace).Hostname = host
		}
	}
	if mnt, ok := attrs["mnt_pt"]; ok {
		fs := attrs["fs_type"]
		found := false
		for _, m := range l.Mounts {
			if m.Point == mnt {
				found = true
				break
			}
		}
		if !found {
			l.Mounts = append(l.Mounts, Mount{Point: mnt, FSType: fs})
		}
	}
	return nil
}

// parseCounterLine parses one tab-separated record line:
// module, rank, record id, counter, value, file name, mount pt, fs type.
func (l *Log) parseCounterLine(line string) error {
	fields := strings.Split(line, "\t")
	if len(fields) < 5 {
		return fmt.Errorf("malformed counter line %q", line)
	}
	module := fields[0]
	rank, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad rank %q: %w", fields[1], err)
	}
	fileID, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("bad record id %q: %w", fields[2], err)
	}
	counter := fields[3]
	value := fields[4]
	if len(fields) >= 6 && fields[5] != "" {
		l.Names[fileID] = fields[5]
	}
	if len(fields) >= 8 {
		mnt, fs := fields[6], fields[7]
		exists := false
		for _, m := range l.Mounts {
			if m.Point == mnt {
				exists = true
				break
			}
		}
		if !exists && mnt != "" {
			l.Mounts = append(l.Mounts, Mount{Point: mnt, FSType: fs})
		}
	}
	rec := l.Module(module).Record(fileID, rank)
	if isFloatCounter(counter) {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad float counter %s=%q: %w", counter, value, err)
		}
		rec.FCounters[counter] = v
		return nil
	}
	v, err := strconv.ParseInt(value, 10, 64)
	if err != nil {
		return fmt.Errorf("bad counter %s=%q: %w", counter, value, err)
	}
	rec.Counters[counter] = v
	return nil
}

// isFloatCounter reports whether a counter name denotes a Darshan float
// counter. Darshan uses the "<MODULE>_F_" prefix convention.
func isFloatCounter(name string) bool {
	return strings.Contains(name, "_F_")
}

// parseDXTEventLine parses one fixed-width DXT event row, e.g.:
//
//	X_POSIX       0  write        0            0        2048      0.0001      0.0002  [0,1]
func parseDXTEventLine(line string) (DXTEvent, error) {
	fields := strings.Fields(line)
	if len(fields) < 8 {
		return DXTEvent{}, fmt.Errorf("malformed DXT event %q", line)
	}
	var ev DXTEvent
	ev.Module = fields[0]
	var err error
	if ev.Rank, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return ev, fmt.Errorf("bad DXT rank: %w", err)
	}
	switch fields[2] {
	case "read":
		ev.Op = OpRead
	case "write":
		ev.Op = OpWrite
	default:
		return ev, fmt.Errorf("bad DXT op %q", fields[2])
	}
	if ev.Segment, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
		return ev, fmt.Errorf("bad DXT segment: %w", err)
	}
	if ev.Offset, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return ev, fmt.Errorf("bad DXT offset: %w", err)
	}
	if ev.Length, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return ev, fmt.Errorf("bad DXT length: %w", err)
	}
	if ev.Start, err = strconv.ParseFloat(fields[6], 64); err != nil {
		return ev, fmt.Errorf("bad DXT start: %w", err)
	}
	if ev.End, err = strconv.ParseFloat(fields[7], 64); err != nil {
		return ev, fmt.Errorf("bad DXT end: %w", err)
	}
	if len(fields) >= 9 {
		ost := strings.Trim(fields[8], "[]")
		for _, s := range strings.Split(ost, ",") {
			if s == "" {
				continue
			}
			o, err := strconv.Atoi(s)
			if err != nil {
				return ev, fmt.Errorf("bad DXT OST list %q: %w", fields[8], err)
			}
			ev.OSTs = append(ev.OSTs, o)
		}
	}
	return ev, nil
}
