package darshan

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

// sampleLog builds a small but fully populated log used across tests.
func sampleLog() *Log {
	l := NewLog()
	l.Header.Exe = "ior -a POSIX -t 2k -b 1m"
	l.Header.UID = 1001
	l.Header.JobID = 987654
	l.Header.NProcs = 4
	l.Header.StartTime = 1719000000
	l.Header.EndTime = 1719000011
	l.Header.RunTime = 11.25
	l.Header.Metadata["lib_ver"] = "3.4.4"
	l.Mounts = []Mount{{Point: "/lustre", FSType: "lustre"}, {Point: "/", FSType: "ext4"}}
	l.Names[101] = "/lustre/testfile.00000000"
	l.Names[202] = "/lustre/out/result.h5"

	p := l.Module(ModPOSIX)
	r := p.Record(101, SharedRank)
	r.Add(CPosixOpens, 4)
	r.Add(CPosixReads, 8)
	r.Add(CPosixWrites, 8)
	r.Add("POSIX_SIZE_READ_1K_10K", 8)
	r.Add("POSIX_SIZE_WRITE_1K_10K", 8)
	r.Add(CPosixBytesRead, 16384)
	r.Add(CPosixBytesWritten, 16384)
	r.FAdd(FPosixReadTime, 0.125)
	r.FAdd(FPosixWriteTime, 0.25)
	r.FCounters[FPosixVarianceTime] = 0.003

	lu := l.Module(ModLustre)
	lr := lu.Record(101, SharedRank)
	lr.Counters[CLustreOSTs] = 8
	lr.Counters[CLustreMDTs] = 1
	lr.Counters[CLustreStripeSize] = 1 << 20
	lr.Counters[CLustreStripeWidth] = 4
	lr.Counters["LUSTRE_OST_ID_0"] = 3
	lr.Counters["LUSTRE_OST_ID_1"] = 5
	lr.Counters["LUSTRE_OST_ID_2"] = 0
	lr.Counters["LUSTRE_OST_ID_3"] = 7

	t := l.DXTForFile(101)
	t.Hostname = "nid00001"
	t.Events = append(t.Events,
		DXTEvent{Module: DXTPosix, Rank: 0, Op: OpWrite, Segment: 0, Offset: 0, Length: 2048, Start: 0.001, End: 0.002, OSTs: []int{3}},
		DXTEvent{Module: DXTPosix, Rank: 1, Op: OpRead, Segment: 0, Offset: 2048, Length: 2048, Start: 0.003, End: 0.004, OSTs: []int{3, 5}},
	)
	return l
}

func TestTextRoundTrip(t *testing.T) {
	orig := sampleLog()
	var buf bytes.Buffer
	if err := orig.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := orig.WriteDXTText(&buf); err != nil {
		t.Fatalf("WriteDXTText: %v", err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if got.Header.Exe != orig.Header.Exe {
		t.Errorf("exe: got %q want %q", got.Header.Exe, orig.Header.Exe)
	}
	if got.Header.NProcs != 4 || got.Header.JobID != 987654 {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if got.Header.RunTime != 11.25 {
		t.Errorf("run time: got %v", got.Header.RunTime)
	}
	if got.Header.Metadata["lib_ver"] != "3.4.4" {
		t.Errorf("metadata lost: %v", got.Header.Metadata)
	}
	r := got.Module(ModPOSIX).Find(101, SharedRank)
	if r == nil {
		t.Fatal("POSIX record lost in round trip")
	}
	if r.C(CPosixReads) != 8 || r.C("POSIX_SIZE_WRITE_1K_10K") != 8 {
		t.Errorf("counters lost: %v", r.Counters)
	}
	if r.F(FPosixWriteTime) != 0.25 {
		t.Errorf("fcounter: got %v", r.F(FPosixWriteTime))
	}
	lr := got.Module(ModLustre).Find(101, SharedRank)
	if lr == nil || lr.C("LUSTRE_OST_ID_3") != 7 {
		t.Errorf("lustre OST ids lost: %+v", lr)
	}
	if len(got.DXT) != 1 || len(got.DXT[0].Events) != 2 {
		t.Fatalf("DXT lost: %+v", got.DXT)
	}
	ev := got.DXT[0].Events[1]
	if ev.Op != OpRead || ev.Offset != 2048 || len(ev.OSTs) != 2 {
		t.Errorf("DXT event mismatch: %+v", ev)
	}
	if got.Name(101) != "/lustre/testfile.00000000" {
		t.Errorf("file name lost: %q", got.Name(101))
	}
	if got.MountFor("/lustre/x").FSType != "lustre" {
		t.Errorf("mount table lost: %+v", got.Mounts)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := sampleLog()
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	var a, b bytes.Buffer
	if err := orig.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("binary round trip changed the text serialization")
	}
	var da, db bytes.Buffer
	if err := orig.WriteDXTText(&da); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteDXTText(&db); err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Error("binary round trip changed the DXT serialization")
	}
}

func TestLoadAutodetect(t *testing.T) {
	dir := t.TempDir()
	orig := sampleLog()

	binPath := dir + "/log.darshan"
	if err := orig.WriteFile(binPath); err != nil {
		t.Fatal(err)
	}
	got, err := Load(binPath)
	if err != nil {
		t.Fatalf("Load(binary): %v", err)
	}
	if got.Header.JobID != orig.Header.JobID {
		t.Error("binary load lost header")
	}

	var buf bytes.Buffer
	if err := orig.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	txtPath := dir + "/log.txt"
	if err := writeFile(txtPath, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got2, err := Load(txtPath)
	if err != nil {
		t.Fatalf("Load(text): %v", err)
	}
	if got2.Header.NProcs != 4 {
		t.Error("text load lost header")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("# darshan log version: 3.41\n"))
	if err == nil {
		t.Fatal("expected error for non-binary input")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestReadBinaryRejectsHugeCounts(t *testing.T) {
	// A valid preamble followed by a gzip body whose first length prefix
	// is absurd must be rejected, not allocated.
	var buf bytes.Buffer
	orig := sampleLog()
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt beyond the preamble: truncate the gzip body hard.
	_, err := ReadBinary(bytes.NewReader(raw[:12]))
	if err == nil {
		t.Fatal("expected error for truncated log")
	}
}

func TestValidate(t *testing.T) {
	l := sampleLog()
	if err := l.Validate(); err != nil {
		t.Fatalf("valid log rejected: %v", err)
	}

	l2 := sampleLog()
	l2.Module(ModPOSIX).Record(101, SharedRank).Counters[CPosixReads] = 99
	if err := l2.Validate(); err == nil {
		t.Error("histogram mismatch not detected")
	}

	l3 := sampleLog()
	l3.Module(ModPOSIX).Record(555, 0).Add(CPosixOpens, 1)
	if err := l3.Validate(); err == nil {
		t.Error("unnamed file id not detected")
	}

	l4 := sampleLog()
	l4.DXT[0].Events[0].End = -1
	if err := l4.Validate(); err == nil {
		t.Error("negative-duration DXT event not detected")
	}

	l5 := sampleLog()
	l5.Header.NProcs = 0
	if err := l5.Validate(); err == nil {
		t.Error("zero nprocs not detected")
	}
}

func TestSizeBinFor(t *testing.T) {
	cases := []struct {
		size int64
		want string
	}{
		{0, "0_100"},
		{99, "0_100"},
		{100, "100_1K"},
		{1023, "100_1K"},
		{1024, "1K_10K"},
		{2048, "1K_10K"},
		{1 << 20, "1M_4M"},
		{4 << 20, "4M_10M"},
		{1 << 30, "1G_PLUS"},
		{5 << 30, "1G_PLUS"},
	}
	for _, c := range cases {
		if got := SizeBinFor(c.size); got != c.want {
			t.Errorf("SizeBinFor(%d) = %q, want %q", c.size, got, c.want)
		}
	}
}

func TestSizeBinForProperty(t *testing.T) {
	// Every non-negative size lands in exactly one bin, and the bin's
	// bounds contain the size.
	f := func(raw int64) bool {
		size := raw
		if size < 0 {
			size = -size
		}
		suffix := SizeBinFor(size)
		n := 0
		var bin SizeBin
		for _, b := range SizeBins {
			if b.Suffix == suffix {
				bin = b
				n++
			}
		}
		if n != 1 {
			return false
		}
		return size >= bin.Lo && (bin.Hi < 0 || size < bin.Hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordHelpers(t *testing.T) {
	r := NewRecord(1, 0)
	r.SetMax("M", 5)
	r.SetMax("M", 3)
	if r.C("M") != 5 {
		t.Errorf("SetMax: got %d", r.C("M"))
	}
	r.FSetMin("T", 2.0)
	r.FSetMin("T", 1.0)
	r.FSetMin("T", 3.0)
	if r.F("T") != 1.0 {
		t.Errorf("FSetMin: got %v", r.F("T"))
	}
	r.FSetMax("U", 1.0)
	r.FSetMax("U", 4.0)
	r.FSetMax("U", 2.0)
	if r.F("U") != 4.0 {
		t.Errorf("FSetMax: got %v", r.F("U"))
	}
}

func TestModuleNamesOrder(t *testing.T) {
	l := NewLog()
	l.Module("ZZZ").Record(1, 0).Add("X", 1)
	l.Module(ModSTDIO).Record(1, 0).Add(CStdioOpens, 1)
	l.Module(ModPOSIX).Record(1, 0).Add(CPosixOpens, 1)
	got := l.ModuleNames()
	want := []string{ModPOSIX, ModSTDIO, "ZZZ"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"POSIX\tnotanumber\t1\tPOSIX_OPENS\t1\t/f\t/\text4",
		"POSIX\t0\t1\tPOSIX_OPENS\tnotanumber\t/f\t/\text4",
		"POSIX\t0\tbadid\tPOSIX_OPENS\t1\t/f\t/\text4",
		" X_POSIX 0 write 0 0 10 0.1 0.2", // event before DXT header
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestDXTCountsAndRanks(t *testing.T) {
	l := sampleLog()
	tr := l.DXT[0]
	w, r := tr.Counts()
	if w != 1 || r != 1 {
		t.Errorf("Counts = %d,%d", w, r)
	}
	ranks := tr.Ranks()
	if len(ranks) != 2 || ranks[0] != 0 || ranks[1] != 1 {
		t.Errorf("Ranks = %v", ranks)
	}
}

func TestCounterDocCoverage(t *testing.T) {
	// Every canonical counter must carry documentation — the prompt
	// builder relies on it to describe CSV columns to the model.
	for _, mod := range []string{ModPOSIX, ModMPIIO, ModSTDIO, ModLustre} {
		for _, c := range CountersFor(mod) {
			if CounterDoc[c] == "" {
				t.Errorf("counter %s has no documentation", c)
			}
		}
		for _, c := range FCountersFor(mod) {
			if isTimestamp(c) {
				continue // timestamps are self-describing; not prompt-relevant
			}
			if CounterDoc[c] == "" {
				t.Errorf("fcounter %s has no documentation", c)
			}
		}
	}
}

func isTimestamp(name string) bool {
	return strings.HasSuffix(name, "_TIMESTAMP")
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
