package darshan

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteText serializes the log's header, mount table, and per-module
// counter records in the tab-separated format emitted by the reference
// darshan-parser utility:
//
//	<module> <rank> <record id> <counter> <value> <file name> <mount pt> <fs type>
//
// Records are emitted module by module in canonical order, sorted by
// file id and rank, counters in their canonical order, so output is
// deterministic and diff-friendly.
func (l *Log) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	l.writeHeader(bw)
	for _, name := range l.ModuleNames() {
		mod := l.Modules[name]
		fmt.Fprintf(bw, "\n# *******************************************************\n")
		fmt.Fprintf(bw, "# %s module data\n", name)
		fmt.Fprintf(bw, "# *******************************************************\n")
		for _, rec := range sortedRecords(mod) {
			l.writeRecord(bw, name, rec)
		}
	}
	return bw.Flush()
}

// WriteDXTText serializes the DXT traces in the format emitted by
// darshan-dxt-parser: one block per (file, rank) with a preamble of
// "# DXT," comment lines followed by fixed-width event rows.
func (l *Log) WriteDXTText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ***************************************************\n")
	fmt.Fprintf(bw, "# DXT_POSIX module data\n")
	fmt.Fprintf(bw, "# ***************************************************\n")
	for _, tr := range l.DXT {
		name := l.Name(tr.FileID)
		mount := l.MountFor(name)
		for _, rank := range tr.Ranks() {
			var evs []DXTEvent
			var writes, reads int
			for _, e := range tr.Events {
				if e.Rank != rank {
					continue
				}
				evs = append(evs, e)
				if e.Op == OpWrite {
					writes++
				} else {
					reads++
				}
			}
			host := tr.Hostname
			if host == "" {
				host = fmt.Sprintf("nid%05d", rank)
			}
			fmt.Fprintf(bw, "\n# DXT, file_id: %d, file_name: %s\n", tr.FileID, name)
			fmt.Fprintf(bw, "# DXT, rank: %d, hostname: %s\n", rank, host)
			fmt.Fprintf(bw, "# DXT, write_count: %d, read_count: %d\n", writes, reads)
			fmt.Fprintf(bw, "# DXT, mnt_pt: %s, fs_type: %s\n", mount.Point, mount.FSType)
			fmt.Fprintf(bw, "# Module    Rank  Wt/Rd  Segment       Offset      Length    Start(s)      End(s)  [OST]\n")
			for _, e := range evs {
				ost := ""
				if len(e.OSTs) > 0 {
					ost = "  ["
					for i, o := range e.OSTs {
						if i > 0 {
							ost += ","
						}
						ost += fmt.Sprintf("%d", o)
					}
					ost += "]"
				}
				fmt.Fprintf(bw, " %-9s %5d  %5s  %7d  %11d  %10d  %10.4f  %10.4f%s\n",
					e.Module, e.Rank, e.Op, e.Segment, e.Offset, e.Length, e.Start, e.End, ost)
			}
		}
	}
	return bw.Flush()
}

func (l *Log) writeHeader(bw *bufio.Writer) {
	h := l.Header
	fmt.Fprintf(bw, "# darshan log version: %s\n", h.Version)
	fmt.Fprintf(bw, "# exe: %s\n", h.Exe)
	fmt.Fprintf(bw, "# uid: %d\n", h.UID)
	fmt.Fprintf(bw, "# jobid: %d\n", h.JobID)
	fmt.Fprintf(bw, "# start_time: %d\n", h.StartTime)
	fmt.Fprintf(bw, "# end_time: %d\n", h.EndTime)
	fmt.Fprintf(bw, "# nprocs: %d\n", h.NProcs)
	fmt.Fprintf(bw, "# run time: %f\n", h.RunTime)
	for _, k := range sortedKeys(h.Metadata) {
		fmt.Fprintf(bw, "# metadata: %s = %s\n", k, h.Metadata[k])
	}
	fmt.Fprintf(bw, "\n")
	for _, m := range l.Mounts {
		fmt.Fprintf(bw, "# mount entry:\t%s\t%s\n", m.Point, m.FSType)
	}
	fmt.Fprintf(bw, "\n# description of columns:\n")
	fmt.Fprintf(bw, "#   <module>\t<rank>\t<record id>\t<counter>\t<value>\t<file name>\t<mount pt>\t<fs type>\n")
}

func (l *Log) writeRecord(bw *bufio.Writer, module string, rec *Record) {
	name := l.Name(rec.FileID)
	mount := l.MountFor(name)
	emit := func(counter string, value string) {
		fmt.Fprintf(bw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			module, rec.Rank, rec.FileID, counter, value, name, mount.Point, mount.FSType)
	}
	for _, c := range CountersFor(module) {
		emit(c, fmt.Sprintf("%d", rec.Counters[c]))
	}
	if module == ModLustre {
		// Per-stripe OST ids are dynamic counters appended after the
		// fixed Lustre set, in stripe order.
		width := rec.Counters[CLustreStripeWidth]
		for k := int64(0); k < width; k++ {
			c := fmt.Sprintf("LUSTRE_OST_ID_%d", k)
			emit(c, fmt.Sprintf("%d", rec.Counters[c]))
		}
	}
	for _, c := range FCountersFor(module) {
		emit(c, fmt.Sprintf("%f", rec.FCounters[c]))
	}
}

func sortedRecords(m *Module) []*Record {
	out := make([]*Record, len(m.Records))
	copy(out, m.Records)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FileID != out[j].FileID {
			return out[i].FileID < out[j].FileID
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
