package darshan

import (
	"bytes"
	"testing"
)

// feedStream writes data to a StreamParser in uneven pieces so cuts
// land at arbitrary positions relative to lines and chunk boundaries.
func feedStream(t *testing.T, sp *StreamParser, data []byte, piece int) {
	t.Helper()
	for off := 0; off < len(data); off += piece {
		end := off + piece
		if end > len(data) {
			end = len(data)
		}
		if _, err := sp.Write(data[off:end]); err != nil {
			t.Fatalf("Write at %d: %v", off, err)
		}
	}
}

func TestStreamParserMatchesSequential(t *testing.T) {
	text, _ := syntheticText(t, 60)
	seq, err := ParseText(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, piece := range []int{7, 1021, 64 << 10} {
		sp := NewStreamParser(StreamOptions{Workers: 3, ChunkBytes: 8 << 10})
		feedStream(t, sp, text, piece)
		log, data, err := sp.Finish()
		if err != nil {
			t.Fatalf("piece %d: %v", piece, err)
		}
		if !bytes.Equal(data, text) {
			t.Fatalf("piece %d: reassembled body differs (%d vs %d bytes)", piece, len(data), len(text))
		}
		if got, want := render(t, log), render(t, seq); !bytes.Equal(got, want) {
			t.Fatalf("piece %d: streamed parse diverged from sequential", piece)
		}
		if sp.Shards() < 2 {
			t.Fatalf("piece %d: expected multiple shards, got %d", piece, sp.Shards())
		}
		if sp.EarlyShards() == 0 {
			t.Fatalf("piece %d: no shard was dispatched during upload", piece)
		}
		if sp.BytesIn() != int64(len(text)) {
			t.Fatalf("piece %d: BytesIn = %d, want %d", piece, sp.BytesIn(), len(text))
		}
	}
}

func TestStreamParserErrorMatchesSequential(t *testing.T) {
	good, _ := syntheticText(t, 20)
	data := append(append([]byte{}, good...), []byte("POSIX\tbad\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n")...)
	_, seqErr := ParseText(bytes.NewReader(data))
	if seqErr == nil {
		t.Fatal("sequential parse unexpectedly succeeded")
	}
	sp := NewStreamParser(StreamOptions{Workers: 2, ChunkBytes: 4 << 10})
	for off := 0; off < len(data); off += 911 {
		end := off + 911
		if end > len(data) {
			end = len(data)
		}
		if _, err := sp.Write(data[off:end]); err != nil {
			break // early failure notice is allowed; Finish has the real error
		}
	}
	_, body, err := sp.Finish()
	if err == nil {
		t.Fatal("streamed parse unexpectedly succeeded")
	}
	if err.Error() != seqErr.Error() {
		t.Fatalf("error mismatch:\nsequential: %v\nstreamed:   %v", seqErr, err)
	}
	if !bytes.Equal(body, data) {
		t.Fatal("Finish did not return the full body alongside the error")
	}
}

func TestStreamParserEmpty(t *testing.T) {
	sp := NewStreamParser(StreamOptions{})
	log, data, err := sp.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 || len(log.Modules) != 0 || len(log.DXT) != 0 {
		t.Fatalf("empty stream produced data=%d modules=%d dxt=%d", len(data), len(log.Modules), len(log.DXT))
	}
}

// TestStreamParserBackpressure forces the single parse worker to stall
// until the backpressure hook fires, proving Write blocks — and
// reports it — when parsing falls behind the upload.
func TestStreamParserBackpressure(t *testing.T) {
	text, _ := syntheticText(t, 40)
	gate := make(chan struct{})
	var stalls int
	sp := NewStreamParser(StreamOptions{
		Workers:    1,
		ChunkBytes: 2 << 10,
		OnShard: func(shard int, chunk []byte) func(error) {
			if shard == 0 {
				<-gate // hold the only worker until backpressure is observed
			}
			return nil
		},
		OnBackpressure: func() {
			if stalls == 0 {
				close(gate)
			}
			stalls++
		},
	})
	feedStream(t, sp, text, 4<<10)
	log, _, err := sp.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if stalls == 0 {
		t.Fatal("backpressure hook never fired")
	}
	if len(log.Modules) == 0 {
		t.Fatal("parse produced no modules")
	}
}
