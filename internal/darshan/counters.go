package darshan

import "fmt"

// This file defines the counter vocabulary for each module, following
// the Darshan 3.4 runtime. The ordered name slices drive deterministic
// serialization; the description maps feed the prompt builder, which
// must describe every CSV column to the language model.

// Canonical POSIX integer counter names.
const (
	CPosixOpens          = "POSIX_OPENS"
	CPosixFilenos        = "POSIX_FILENOS"
	CPosixReads          = "POSIX_READS"
	CPosixWrites         = "POSIX_WRITES"
	CPosixSeeks          = "POSIX_SEEKS"
	CPosixStats          = "POSIX_STATS"
	CPosixMmaps          = "POSIX_MMAPS"
	CPosixFsyncs         = "POSIX_FSYNCS"
	CPosixFdsyncs        = "POSIX_FDSYNCS"
	CPosixBytesRead      = "POSIX_BYTES_READ"
	CPosixBytesWritten   = "POSIX_BYTES_WRITTEN"
	CPosixMaxByteRead    = "POSIX_MAX_BYTE_READ"
	CPosixMaxByteWritten = "POSIX_MAX_BYTE_WRITTEN"
	CPosixConsecReads    = "POSIX_CONSEC_READS"
	CPosixConsecWrites   = "POSIX_CONSEC_WRITES"
	CPosixSeqReads       = "POSIX_SEQ_READS"
	CPosixSeqWrites      = "POSIX_SEQ_WRITES"
	CPosixRWSwitches     = "POSIX_RW_SWITCHES"
	CPosixMemNotAligned  = "POSIX_MEM_NOT_ALIGNED"
	CPosixMemAlignment   = "POSIX_MEM_ALIGNMENT"
	CPosixFileNotAligned = "POSIX_FILE_NOT_ALIGNED"
	CPosixFileAlignment  = "POSIX_FILE_ALIGNMENT"
	CPosixFastestRank    = "POSIX_FASTEST_RANK"
	CPosixFastestBytes   = "POSIX_FASTEST_RANK_BYTES"
	CPosixSlowestRank    = "POSIX_SLOWEST_RANK"
	CPosixSlowestBytes   = "POSIX_SLOWEST_RANK_BYTES"
)

// Canonical POSIX float counter names.
const (
	FPosixOpenStart     = "POSIX_F_OPEN_START_TIMESTAMP"
	FPosixReadStart     = "POSIX_F_READ_START_TIMESTAMP"
	FPosixWriteStart    = "POSIX_F_WRITE_START_TIMESTAMP"
	FPosixCloseStart    = "POSIX_F_CLOSE_START_TIMESTAMP"
	FPosixOpenEnd       = "POSIX_F_OPEN_END_TIMESTAMP"
	FPosixReadEnd       = "POSIX_F_READ_END_TIMESTAMP"
	FPosixWriteEnd      = "POSIX_F_WRITE_END_TIMESTAMP"
	FPosixCloseEnd      = "POSIX_F_CLOSE_END_TIMESTAMP"
	FPosixReadTime      = "POSIX_F_READ_TIME"
	FPosixWriteTime     = "POSIX_F_WRITE_TIME"
	FPosixMetaTime      = "POSIX_F_META_TIME"
	FPosixMaxReadTime   = "POSIX_F_MAX_READ_TIME"
	FPosixMaxWriteTime  = "POSIX_F_MAX_WRITE_TIME"
	FPosixFastestTime   = "POSIX_F_FASTEST_RANK_TIME"
	FPosixSlowestTime   = "POSIX_F_SLOWEST_RANK_TIME"
	FPosixVarianceTime  = "POSIX_F_VARIANCE_RANK_TIME"
	FPosixVarianceBytes = "POSIX_F_VARIANCE_RANK_BYTES"
)

// Canonical MPI-IO counter names.
const (
	CMpiioIndepOpens   = "MPIIO_INDEP_OPENS"
	CMpiioCollOpens    = "MPIIO_COLL_OPENS"
	CMpiioIndepReads   = "MPIIO_INDEP_READS"
	CMpiioIndepWrites  = "MPIIO_INDEP_WRITES"
	CMpiioCollReads    = "MPIIO_COLL_READS"
	CMpiioCollWrites   = "MPIIO_COLL_WRITES"
	CMpiioSplitReads   = "MPIIO_SPLIT_READS"
	CMpiioSplitWrites  = "MPIIO_SPLIT_WRITES"
	CMpiioNBReads      = "MPIIO_NB_READS"
	CMpiioNBWrites     = "MPIIO_NB_WRITES"
	CMpiioSyncs        = "MPIIO_SYNCS"
	CMpiioHints        = "MPIIO_HINTS"
	CMpiioViews        = "MPIIO_VIEWS"
	CMpiioBytesRead    = "MPIIO_BYTES_READ"
	CMpiioBytesWritten = "MPIIO_BYTES_WRITTEN"
	CMpiioRWSwitches   = "MPIIO_RW_SWITCHES"
)

// Canonical MPI-IO float counter names.
const (
	FMpiioOpenStart     = "MPIIO_F_OPEN_START_TIMESTAMP"
	FMpiioReadTime      = "MPIIO_F_READ_TIME"
	FMpiioWriteTime     = "MPIIO_F_WRITE_TIME"
	FMpiioMetaTime      = "MPIIO_F_META_TIME"
	FMpiioCloseEnd      = "MPIIO_F_CLOSE_END_TIMESTAMP"
	FMpiioVarianceTime  = "MPIIO_F_VARIANCE_RANK_TIME"
	FMpiioVarianceBytes = "MPIIO_F_VARIANCE_RANK_BYTES"
)

// Canonical STDIO counter names.
const (
	CStdioOpens        = "STDIO_OPENS"
	CStdioReads        = "STDIO_READS"
	CStdioWrites       = "STDIO_WRITES"
	CStdioSeeks        = "STDIO_SEEKS"
	CStdioFlushes      = "STDIO_FLUSHES"
	CStdioBytesRead    = "STDIO_BYTES_READ"
	CStdioBytesWritten = "STDIO_BYTES_WRITTEN"
)

// Canonical STDIO float counter names.
const (
	FStdioMetaTime  = "STDIO_F_META_TIME"
	FStdioWriteTime = "STDIO_F_WRITE_TIME"
	FStdioReadTime  = "STDIO_F_READ_TIME"
)

// Canonical Lustre counter names. LUSTRE_OST_ID_<k> entries follow
// LustreCounters and are emitted per stripe.
const (
	CLustreOSTs         = "LUSTRE_OSTS"
	CLustreMDTs         = "LUSTRE_MDTS"
	CLustreStripeOffset = "LUSTRE_STRIPE_OFFSET"
	CLustreStripeSize   = "LUSTRE_STRIPE_SIZE"
	CLustreStripeWidth  = "LUSTRE_STRIPE_WIDTH"
)

// SizeBin describes one access-size histogram bucket.
type SizeBin struct {
	Suffix string // e.g. "0_100"
	Lo     int64  // inclusive lower bound in bytes
	Hi     int64  // exclusive upper bound; -1 means unbounded
}

// SizeBins is the Darshan access-size histogram, shared by the
// POSIX_SIZE_READ_*/POSIX_SIZE_WRITE_* and MPIIO_SIZE_*_AGG_* counters.
var SizeBins = []SizeBin{
	{"0_100", 0, 100},
	{"100_1K", 100, 1 << 10},
	{"1K_10K", 1 << 10, 10 << 10},
	{"10K_100K", 10 << 10, 100 << 10},
	{"100K_1M", 100 << 10, 1 << 20},
	{"1M_4M", 1 << 20, 4 << 20},
	{"4M_10M", 4 << 20, 10 << 20},
	{"10M_100M", 10 << 20, 100 << 20},
	{"100M_1G", 100 << 20, 1 << 30},
	{"1G_PLUS", 1 << 30, -1},
}

// SizeBinFor returns the histogram bucket suffix for an access size.
func SizeBinFor(size int64) string {
	for _, b := range SizeBins {
		if size >= b.Lo && (b.Hi < 0 || size < b.Hi) {
			return b.Suffix
		}
	}
	return SizeBins[len(SizeBins)-1].Suffix
}

// posixSizeCounters returns the 20 histogram counter names.
func posixSizeCounters() []string {
	out := make([]string, 0, 2*len(SizeBins))
	for _, b := range SizeBins {
		out = append(out, "POSIX_SIZE_READ_"+b.Suffix)
	}
	for _, b := range SizeBins {
		out = append(out, "POSIX_SIZE_WRITE_"+b.Suffix)
	}
	return out
}

func mpiioSizeCounters() []string {
	out := make([]string, 0, 2*len(SizeBins))
	for _, b := range SizeBins {
		out = append(out, "MPIIO_SIZE_READ_AGG_"+b.Suffix)
	}
	for _, b := range SizeBins {
		out = append(out, "MPIIO_SIZE_WRITE_AGG_"+b.Suffix)
	}
	return out
}

// PosixCounters lists the POSIX integer counters in serialization order.
var PosixCounters = append([]string{
	CPosixOpens, CPosixFilenos, CPosixReads, CPosixWrites, CPosixSeeks,
	CPosixStats, CPosixMmaps, CPosixFsyncs, CPosixFdsyncs,
	CPosixBytesRead, CPosixBytesWritten,
	CPosixMaxByteRead, CPosixMaxByteWritten,
	CPosixConsecReads, CPosixConsecWrites,
	CPosixSeqReads, CPosixSeqWrites,
	CPosixRWSwitches,
	CPosixMemAlignment, CPosixMemNotAligned,
	CPosixFileAlignment, CPosixFileNotAligned,
	CPosixFastestRank, CPosixFastestBytes,
	CPosixSlowestRank, CPosixSlowestBytes,
}, posixSizeCounters()...)

// PosixFCounters lists the POSIX float counters in serialization order.
var PosixFCounters = []string{
	FPosixOpenStart, FPosixReadStart, FPosixWriteStart, FPosixCloseStart,
	FPosixOpenEnd, FPosixReadEnd, FPosixWriteEnd, FPosixCloseEnd,
	FPosixReadTime, FPosixWriteTime, FPosixMetaTime,
	FPosixMaxReadTime, FPosixMaxWriteTime,
	FPosixFastestTime, FPosixSlowestTime,
	FPosixVarianceTime, FPosixVarianceBytes,
}

// MpiioCounters lists the MPI-IO integer counters in serialization order.
var MpiioCounters = append([]string{
	CMpiioIndepOpens, CMpiioCollOpens,
	CMpiioIndepReads, CMpiioIndepWrites,
	CMpiioCollReads, CMpiioCollWrites,
	CMpiioSplitReads, CMpiioSplitWrites,
	CMpiioNBReads, CMpiioNBWrites,
	CMpiioSyncs, CMpiioHints, CMpiioViews,
	CMpiioBytesRead, CMpiioBytesWritten,
	CMpiioRWSwitches,
}, mpiioSizeCounters()...)

// MpiioFCounters lists the MPI-IO float counters in serialization order.
var MpiioFCounters = []string{
	FMpiioOpenStart, FMpiioReadTime, FMpiioWriteTime, FMpiioMetaTime,
	FMpiioCloseEnd, FMpiioVarianceTime, FMpiioVarianceBytes,
}

// StdioCounters lists the STDIO integer counters in serialization order.
var StdioCounters = []string{
	CStdioOpens, CStdioReads, CStdioWrites, CStdioSeeks, CStdioFlushes,
	CStdioBytesRead, CStdioBytesWritten,
}

// StdioFCounters lists the STDIO float counters in serialization order.
var StdioFCounters = []string{FStdioMetaTime, FStdioWriteTime, FStdioReadTime}

// LustreCounters lists the fixed Lustre counters; per-stripe
// LUSTRE_OST_ID_<k> counters follow them in serialization order.
var LustreCounters = []string{
	CLustreOSTs, CLustreMDTs, CLustreStripeOffset,
	CLustreStripeSize, CLustreStripeWidth,
}

// CountersFor returns the ordered integer counter names for a module.
// Lustre OST id counters are dynamic and handled by the writer.
func CountersFor(module string) []string {
	switch module {
	case ModPOSIX:
		return PosixCounters
	case ModMPIIO:
		return MpiioCounters
	case ModSTDIO:
		return StdioCounters
	case ModLustre:
		return LustreCounters
	}
	return nil
}

// FCountersFor returns the ordered float counter names for a module.
func FCountersFor(module string) []string {
	switch module {
	case ModPOSIX:
		return PosixFCounters
	case ModMPIIO:
		return MpiioFCounters
	case ModSTDIO:
		return StdioFCounters
	}
	return nil
}

// CounterDoc holds human-readable documentation for counters; the prompt
// builder injects these as CSV column descriptions.
var CounterDoc = map[string]string{
	CPosixOpens:          "number of POSIX open/creat calls",
	CPosixFilenos:        "number of fileno operations",
	CPosixReads:          "number of POSIX read operations",
	CPosixWrites:         "number of POSIX write operations",
	CPosixSeeks:          "number of POSIX seek operations",
	CPosixStats:          "number of stat/fstat/lstat calls",
	CPosixMmaps:          "number of mmap calls",
	CPosixFsyncs:         "number of fsync calls",
	CPosixFdsyncs:        "number of fdatasync calls",
	CPosixBytesRead:      "total bytes read through POSIX",
	CPosixBytesWritten:   "total bytes written through POSIX",
	CPosixMaxByteRead:    "highest file offset read",
	CPosixMaxByteWritten: "highest file offset written",
	CPosixConsecReads:    "reads starting exactly where the previous access ended (consecutive)",
	CPosixConsecWrites:   "writes starting exactly where the previous access ended (consecutive)",
	CPosixSeqReads:       "reads at an offset greater than or equal to the previous access (sequential)",
	CPosixSeqWrites:      "writes at an offset greater than or equal to the previous access (sequential)",
	CPosixRWSwitches:     "number of times access alternated between read and write",
	CPosixMemNotAligned:  "accesses whose memory buffer was not aligned to POSIX_MEM_ALIGNMENT",
	CPosixMemAlignment:   "memory alignment boundary in bytes",
	CPosixFileNotAligned: "accesses whose file offset was not aligned to POSIX_FILE_ALIGNMENT",
	CPosixFileAlignment:  "file alignment boundary in bytes (typically the file system block or stripe unit)",
	CPosixFastestRank:    "rank that spent the least time in I/O for this shared file",
	CPosixFastestBytes:   "bytes moved by the fastest rank",
	CPosixSlowestRank:    "rank that spent the most time in I/O for this shared file",
	CPosixSlowestBytes:   "bytes moved by the slowest rank",

	FPosixReadTime:      "cumulative seconds spent in POSIX reads",
	FPosixWriteTime:     "cumulative seconds spent in POSIX writes",
	FPosixMetaTime:      "cumulative seconds spent in POSIX metadata operations (open/close/stat/seek)",
	FPosixMaxReadTime:   "duration of the single slowest read",
	FPosixMaxWriteTime:  "duration of the single slowest write",
	FPosixFastestTime:   "I/O seconds of the fastest rank on this shared file",
	FPosixSlowestTime:   "I/O seconds of the slowest rank on this shared file",
	FPosixVarianceTime:  "variance of per-rank I/O time on this shared file",
	FPosixVarianceBytes: "variance of per-rank bytes moved on this shared file",

	CMpiioIndepOpens:    "independent MPI_File_open calls",
	CMpiioCollOpens:     "collective MPI_File_open calls",
	CMpiioIndepReads:    "independent MPI-IO reads",
	CMpiioIndepWrites:   "independent MPI-IO writes",
	CMpiioCollReads:     "collective MPI-IO reads",
	CMpiioCollWrites:    "collective MPI-IO writes",
	CMpiioSplitReads:    "split-collective MPI-IO reads",
	CMpiioSplitWrites:   "split-collective MPI-IO writes",
	CMpiioNBReads:       "non-blocking MPI-IO reads",
	CMpiioNBWrites:      "non-blocking MPI-IO writes",
	CMpiioSyncs:         "MPI_File_sync calls",
	CMpiioHints:         "MPI-IO hints set",
	CMpiioViews:         "MPI_File_set_view calls",
	CMpiioBytesRead:     "total bytes read through MPI-IO",
	CMpiioBytesWritten:  "total bytes written through MPI-IO",
	CMpiioRWSwitches:    "read/write alternations at the MPI-IO level",
	FMpiioReadTime:      "cumulative seconds in MPI-IO reads",
	FMpiioWriteTime:     "cumulative seconds in MPI-IO writes",
	FMpiioMetaTime:      "cumulative seconds in MPI-IO metadata operations",
	FMpiioVarianceTime:  "variance of per-rank MPI-IO time on this shared file",
	FMpiioVarianceBytes: "variance of per-rank MPI-IO bytes moved on this shared file",

	CStdioOpens:        "number of fopen calls",
	CStdioReads:        "number of fread calls",
	CStdioWrites:       "number of fwrite calls",
	CStdioSeeks:        "number of fseek calls",
	CStdioFlushes:      "number of fflush calls",
	CStdioBytesRead:    "total bytes read through STDIO",
	CStdioBytesWritten: "total bytes written through STDIO",
	FStdioMetaTime:     "cumulative seconds in STDIO metadata operations",
	FStdioWriteTime:    "cumulative seconds in fwrite",
	FStdioReadTime:     "cumulative seconds in fread",

	CLustreOSTs:         "number of Lustre OSTs (object storage targets) in the file system",
	CLustreMDTs:         "number of Lustre metadata targets",
	CLustreStripeOffset: "index of the first OST the file is striped over",
	CLustreStripeSize:   "Lustre stripe size in bytes",
	CLustreStripeWidth:  "number of OSTs the file is striped across (stripe count)",
}

func init() {
	for _, b := range SizeBins {
		hi := "and larger"
		if b.Hi >= 0 {
			hi = "to " + byteSize(b.Hi)
		}
		CounterDoc["POSIX_SIZE_READ_"+b.Suffix] = "POSIX reads of size " + byteSize(b.Lo) + " " + hi
		CounterDoc["POSIX_SIZE_WRITE_"+b.Suffix] = "POSIX writes of size " + byteSize(b.Lo) + " " + hi
		CounterDoc["MPIIO_SIZE_READ_AGG_"+b.Suffix] = "MPI-IO reads of aggregate size " + byteSize(b.Lo) + " " + hi
		CounterDoc["MPIIO_SIZE_WRITE_AGG_"+b.Suffix] = "MPI-IO writes of aggregate size " + byteSize(b.Lo) + " " + hi
	}
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return itoa(n>>30) + "GiB"
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	}
	return itoa(n) + "B"
}

func itoa(n int64) string {
	return fmt.Sprintf("%d", n)
}
