package darshan

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"
)

// parallelAt parses data as shards cut at exactly the given byte
// offsets, bypassing the splitter, so tests control where boundaries
// land. Offsets must be increasing positions within data.
func parallelAt(data []byte, cuts ...int) (*Log, error) {
	var shards []*shardResult
	prev := 0
	for _, c := range append(cuts, len(data)) {
		shards = append(shards, parseShard(len(shards), data[prev:c], len(shards) > 0, nil))
		prev = c
	}
	return mergeShards(shards)
}

// mustRenderEqual asserts that par parses data into a log that renders
// byte-identically to the sequential parse — the fixed-point property
// the merge guarantees.
func mustRenderEqual(t *testing.T, data []byte, par func() (*Log, error)) {
	t.Helper()
	seq, err := ParseText(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("sequential parse: %v", err)
	}
	got, err := par()
	if err != nil {
		t.Fatalf("parallel parse: %v", err)
	}
	want, have := render(t, seq), render(t, got)
	if !bytes.Equal(want, have) {
		t.Fatalf("parallel parse diverged from sequential:\n--- sequential ---\n%.2000s\n--- parallel ---\n%.2000s", want, have)
	}
}

// lineStart returns the offset of the line beginning with marker,
// which must occur in data.
func lineStart(t *testing.T, data []byte, marker string) int {
	t.Helper()
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		t.Fatalf("marker %q not found", marker)
	}
	return i
}

func TestParseTextParallelMatchesSequential(t *testing.T) {
	text, _ := syntheticText(t, 40)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		mustRenderEqual(t, text, func() (*Log, error) {
			return ParseTextParallelOpts(text, ParallelOptions{Workers: workers, minChunkBytes: 512})
		})
	}
	// Default minimum chunk size: an input this small takes the
	// single-shard path, which must behave identically.
	mustRenderEqual(t, text, func() (*Log, error) {
		return ParseTextParallel(text, 8)
	})
}

func TestParseTextParallelRealSample(t *testing.T) {
	data, err := os.ReadFile("testdata/real_sample.txt")
	if err != nil {
		t.Skip("no testdata sample")
	}
	for _, minChunk := range []int{64, 256, 1024, 8192} {
		mustRenderEqual(t, data, func() (*Log, error) {
			return ParseTextParallelOpts(data, ParallelOptions{Workers: 4, minChunkBytes: minChunk})
		})
	}
}

// TestParseTextParallelBoundaryEdges pins the exact boundary cases the
// merge must survive: a module table header exactly at a cut, a DXT
// block header exactly at a cut, a DXT block (and its rank header)
// split mid-block across shards, and a trailing record with no
// newline.
func TestParseTextParallelBoundaryEdges(t *testing.T) {
	text, _ := syntheticText(t, 12)

	t.Run("module header at boundary", func(t *testing.T) {
		cut := lineStart(t, text, "# POSIX module data")
		mustRenderEqual(t, text, func() (*Log, error) { return parallelAt(text, cut) })
	})
	t.Run("dxt header at boundary", func(t *testing.T) {
		cut := lineStart(t, text, "# DXT, file_id:")
		mustRenderEqual(t, text, func() (*Log, error) { return parallelAt(text, cut) })
	})
	t.Run("dxt block spans shards", func(t *testing.T) {
		// Cut in the middle of the event rows: the second shard opens
		// with headerless X_ rows that merge as orphans.
		first := lineStart(t, text, " X_POSIX")
		cut := first + bytes.Index(text[first:], []byte("\n X_POSIX")) + 1
		mid := cut + bytes.Index(text[cut:], []byte("\n X_POSIX")) + 1
		mustRenderEqual(t, text, func() (*Log, error) { return parallelAt(text, cut, mid) })
	})
	t.Run("rank header at boundary", func(t *testing.T) {
		cut := lineStart(t, text, "# DXT, rank:")
		mustRenderEqual(t, text, func() (*Log, error) { return parallelAt(text, cut) })
	})
	t.Run("trailing record no newline", func(t *testing.T) {
		trimmed := bytes.TrimRight(text, "\n")
		cut := lineStart(t, trimmed, "# DXT, file_id:")
		mustRenderEqual(t, trimmed, func() (*Log, error) { return parallelAt(trimmed, cut) })
	})
	t.Run("every small boundary", func(t *testing.T) {
		// Sweep a single cut across an interesting region (the
		// counter/DXT transition) line by line.
		region := lineStart(t, text, "# DXT_POSIX module data")
		for cut := region; cut < len(text) && cut < region+2000; cut = nextLineStart(text, cut) {
			mustRenderEqual(t, text, func() (*Log, error) { return parallelAt(text, cut) })
		}
	})
}

func TestSplitChunksReassembles(t *testing.T) {
	text, _ := syntheticText(t, 20)
	for n := 1; n <= 9; n++ {
		chunks := splitChunks(text, n)
		if len(chunks) > n {
			t.Fatalf("splitChunks(%d) returned %d chunks", n, len(chunks))
		}
		var joined []byte
		for i, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("splitChunks(%d): empty chunk %d", n, i)
			}
			if i > 0 && joined[len(joined)-1] != '\n' {
				t.Fatalf("splitChunks(%d): chunk %d does not start on a line boundary", n, i)
			}
			joined = append(joined, c...)
		}
		if !bytes.Equal(joined, text) {
			t.Fatalf("splitChunks(%d) lost bytes: %d != %d", n, len(joined), len(text))
		}
	}
}

// TestParseErrorPosition pins the structured error contract: every
// parse failure carries a *ParseError locating the offending line by
// 1-based line number and byte offset.
func TestParseErrorPosition(t *testing.T) {
	input := "# nprocs: 2\nPOSIX\t0\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\nPOSIX\tbad\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n"
	_, err := ParseText(strings.NewReader(input))
	if err == nil {
		t.Fatal("want error for bad rank")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry a *ParseError", err)
	}
	wantOff := int64(len("# nprocs: 2\nPOSIX\t0\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n"))
	if pe.Line != 3 || pe.Offset != wantOff {
		t.Fatalf("ParseError = line %d offset %d, want line 3 offset %d", pe.Line, pe.Offset, wantOff)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error text %q lacks position", err)
	}
}

// TestParseTextParallelErrorPositions asserts sharded parses report the
// same first error, at the same rebased position, as sequential ones.
func TestParseTextParallelErrorPositions(t *testing.T) {
	good, _ := syntheticText(t, 8)
	cases := map[string][]byte{
		"bad line in later shard": append(append([]byte{}, good...), []byte("POSIX\tbad\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n")...),
		"orphan event at start":   []byte(" X_POSIX 0 write 0 0 8 0.1 0.2\nPOSIX\t0\t42\tPOSIX_OPENS\t3\t/f\t/\ttmpfs\n" + string(good)),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, seqErr := ParseText(bytes.NewReader(data))
			if seqErr == nil {
				t.Fatal("sequential parse unexpectedly succeeded")
			}
			_, parErr := ParseTextParallelOpts(data, ParallelOptions{Workers: 4, minChunkBytes: 256})
			if parErr == nil {
				t.Fatal("parallel parse unexpectedly succeeded")
			}
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("error mismatch:\nsequential: %v\nparallel:   %v", seqErr, parErr)
			}
		})
	}
}

// TestParseTextParallelAllocBound holds the sharded path to no more
// than twice the sequential parser's per-line allocation budget (0.5):
// per-shard intern tables and scratch duplicate fixed costs, but the
// per-line fast path must stay allocation-free.
func TestParseTextParallelAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	text, lines := syntheticText(t, 200)
	avg := testing.AllocsPerRun(5, func() {
		if _, err := ParseTextParallelOpts(text, ParallelOptions{Workers: 4, minChunkBytes: 1}); err != nil {
			t.Fatal(err)
		}
	})
	perLine := avg / float64(lines)
	t.Logf("ParseTextParallel(4): %.0f allocs over %d lines (%.3f allocs/line)", avg, lines, perLine)
	if perLine > 1.0 {
		t.Errorf("sharded parse allocates %.3f per line (%.0f total), want ≤ 1.0 (2× sequential budget)", perLine, avg)
	}
}

func TestParseTextParallelOnShard(t *testing.T) {
	text, _ := syntheticText(t, 40)
	var started, finished atomic.Int32
	_, err := ParseTextParallelOpts(text, ParallelOptions{
		Workers:       2,
		minChunkBytes: 1024,
		OnShard: func(shard int, chunk []byte) func(error) {
			started.Add(1)
			if len(chunk) == 0 {
				t.Errorf("shard %d got empty chunk", shard)
			}
			return func(err error) {
				if err != nil {
					t.Errorf("shard %d: %v", shard, err)
				}
				finished.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != 2 || finished.Load() != 2 {
		t.Fatalf("OnShard fired %d/%d times, want 2/2", started.Load(), finished.Load())
	}
}
