package darshan

import "sort"

// Op distinguishes read from write events in DXT traces.
type Op string

// DXT operation kinds.
const (
	OpRead  Op = "read"
	OpWrite Op = "write"
)

// DXTEvent is one traced I/O operation: the Darshan eXtended Tracing
// record of a single read or write, including its byte range and
// wall-clock interval relative to job start.
type DXTEvent struct {
	Module  string  // DXTPosix or DXTMPIIO
	Rank    int64   // issuing MPI rank
	Op      Op      // read or write
	Segment int64   // per-rank sequence number within the file
	Offset  int64   // file offset in bytes
	Length  int64   // access size in bytes
	Start   float64 // seconds since job start
	End     float64 // seconds since job start
	OSTs    []int   // Lustre OSTs served by this access (optional)
}

// DXTFileTrace groups the traced events of one file along with the
// host metadata darshan-dxt-parser prints per file block.
type DXTFileTrace struct {
	FileID   uint64
	Hostname string
	Events   []DXTEvent
}

// Counts returns the number of write and read events in the trace.
func (t *DXTFileTrace) Counts() (writes, reads int) {
	for _, e := range t.Events {
		if e.Op == OpWrite {
			writes++
		} else {
			reads++
		}
	}
	return writes, reads
}

// SortByStart orders events by start time, breaking ties by rank and
// then segment, giving the writer and analyses a stable order.
func (t *DXTFileTrace) SortByStart() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Segment < b.Segment
	})
}

// Ranks returns the sorted distinct ranks that issued events.
func (t *DXTFileTrace) Ranks() []int64 {
	seen := map[int64]bool{}
	for _, e := range t.Events {
		seen[e.Rank] = true
	}
	out := make([]int64, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
