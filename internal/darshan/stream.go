package darshan

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultStreamChunk is the target shard size for streamed parsing:
// big enough that per-shard setup (parser, intern table) is noise,
// small enough that a multi-megabyte upload yields several shards to
// overlap with the transfer.
const defaultStreamChunk = 1 << 20

// errStreamTooLong reports a single line exceeding maxLineBytes in a
// streamed body.
var errStreamTooLong = errors.New("darshan: stream: line exceeds maximum length")

// StreamOptions configures a StreamParser.
type StreamOptions struct {
	// Workers bounds concurrent shard parses; <= 0 means GOMAXPROCS.
	// Write blocks (backpressure to the sender) when all workers are
	// busy and a new shard is ready.
	Workers int
	// ChunkBytes is the target shard size; <= 0 means 1 MiB.
	ChunkBytes int
	// OnShard mirrors ParallelOptions.OnShard.
	OnShard func(shard int, chunk []byte) func(error)
	// OnBackpressure is invoked each time Write must wait for a parse
	// worker before dispatching the next shard.
	OnBackpressure func()
}

// StreamParser parses a darshan-parser text log incrementally as its
// bytes arrive. Write accumulates a segment buffer; each time it
// fills, the segment is cut at its last line boundary and handed to a
// parse worker, so parsing overlaps the upload. Finish flushes the
// tail, waits for the pool, and merges shards exactly like
// ParseTextParallel — the resulting log and error (including
// positions) match a sequential ParseText of the concatenated bytes.
//
// A StreamParser is single-use and Write/Finish must be called from
// one goroutine.
type StreamParser struct {
	opts StreamOptions

	sem    chan struct{} // parse-worker slots; cap = Workers
	wg     sync.WaitGroup
	failed atomic.Bool

	seg      []byte
	chunks   [][]byte
	shards   []*shardResult
	total    int64
	early    int // shards dispatched before Finish, i.e. during upload
	finished bool
}

// NewStreamParser returns a StreamParser ready to receive bytes.
func NewStreamParser(opts StreamOptions) *StreamParser {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.ChunkBytes <= 0 {
		opts.ChunkBytes = defaultStreamChunk
	}
	return &StreamParser{
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
	}
}

// Write implements io.Writer. It never fails on well-formed input; a
// non-nil error means either a pathologically long line or that an
// already-dispatched shard failed to parse (callers should stop
// uploading and use Finish for the canonical, positioned error).
func (s *StreamParser) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.failed.Load() {
			return n - len(p), errors.New("darshan: stream parse failed")
		}
		if s.seg == nil {
			s.seg = make([]byte, 0, s.opts.ChunkBytes)
		}
		take := cap(s.seg) - len(s.seg)
		if take > len(p) {
			take = len(p)
		}
		s.seg = append(s.seg, p[:take]...)
		p = p[take:]
		if len(s.seg) < cap(s.seg) {
			continue
		}
		if i := bytes.LastIndexByte(s.seg, '\n'); i >= 0 {
			chunk := s.seg[:i+1]
			next := make([]byte, 0, s.opts.ChunkBytes)
			next = append(next, s.seg[i+1:]...)
			s.seg = next
			s.dispatch(chunk, true)
		} else {
			// No line boundary in the whole segment: a single giant
			// line. Grow (bounded) until its newline arrives.
			if cap(s.seg) >= maxLineBytes {
				return n - len(p), errStreamTooLong
			}
			grown := make([]byte, len(s.seg), 2*cap(s.seg))
			copy(grown, s.seg)
			s.seg = grown
		}
	}
	return n, nil
}

// dispatch hands a completed chunk to a parse worker, blocking — and
// signaling backpressure — when none is free.
func (s *StreamParser) dispatch(chunk []byte, early bool) {
	idx := len(s.chunks)
	s.chunks = append(s.chunks, chunk)
	slot := &shardResult{chunk: chunk}
	s.shards = append(s.shards, slot)
	if early {
		s.early++
	}
	s.total += int64(len(chunk))
	select {
	case s.sem <- struct{}{}:
	default:
		if s.opts.OnBackpressure != nil {
			s.opts.OnBackpressure()
		}
		s.sem <- struct{}{}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-s.sem }()
		*slot = *parseShard(idx, chunk, idx > 0, s.opts.OnShard)
		if slot.err != nil {
			s.failed.Store(true)
		}
	}()
}

// Finish flushes any buffered tail, waits for all shards, and returns
// the merged log together with the complete reassembled body (valid
// even when parsing failed, so callers can persist or inspect it).
func (s *StreamParser) Finish() (*Log, []byte, error) {
	if !s.finished {
		s.finished = true
		if len(s.seg) > 0 {
			s.dispatch(s.seg, false)
			s.seg = nil
		}
	}
	s.wg.Wait()
	var data []byte
	switch len(s.chunks) {
	case 0:
	case 1:
		data = s.chunks[0]
	default:
		data = make([]byte, 0, s.total)
		for _, c := range s.chunks {
			data = append(data, c...)
		}
	}
	log, err := mergeShards(s.shards)
	return log, data, err
}

// EarlyShards reports how many shards were dispatched to the parse
// pool before Finish — i.e. how much parsing overlapped the upload.
func (s *StreamParser) EarlyShards() int { return s.early }

// Shards reports the total number of parse shards dispatched.
func (s *StreamParser) Shards() int { return len(s.chunks) }

// BytesIn reports the number of body bytes dispatched so far.
func (s *StreamParser) BytesIn() int64 { return s.total }
