package darshan

import (
	"bytes"
	"strconv"
	"testing"
)

// syntheticText builds a counter-heavy log text with nfiles POSIX
// records carrying the full canonical counter set, plus a small DXT
// section, and returns the text with its line count.
func syntheticText(tb testing.TB, nfiles int) ([]byte, int) {
	tb.Helper()
	l := NewLog()
	l.Header.Exe = "app ./in"
	l.Header.NProcs = 4
	l.Header.RunTime = 12.5
	l.Mounts = append(l.Mounts, Mount{Point: "/lustre", FSType: "lustre"})
	counters := CountersFor(ModPOSIX)
	fcounters := FCountersFor(ModPOSIX)
	for i := 0; i < nfiles; i++ {
		id := uint64(1000 + i)
		l.Names[id] = "/lustre/data/file-" + strconv.Itoa(i)
		r := l.Module(ModPOSIX).Record(id, int64(i%4))
		for k, c := range counters {
			r.Counters[c] = int64(k * i)
		}
		for k, c := range fcounters {
			r.FCounters[c] = float64(k) * 0.25
		}
	}
	dxt := l.DXTForFile(1000)
	dxt.Hostname = "nid00001"
	for i := 0; i < 64; i++ {
		dxt.Events = append(dxt.Events, DXTEvent{
			Module: DXTPosix, Rank: int64(i % 4), Op: OpWrite,
			Segment: int64(i), Offset: int64(i) * 4096, Length: 4096,
			Start: float64(i) * 0.001, End: float64(i)*0.001 + 0.0005,
			OSTs: []int{i % 8},
		})
	}
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		tb.Fatal(err)
	}
	if err := l.WriteDXTText(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), bytes.Count(buf.Bytes(), []byte("\n"))
}

// TestParseTextAllocBound pins the allocation profile of the hot path:
// the per-line cost must stay far below one allocation per line. The
// budget covers the per-record fixed cost (record structs, counter
// maps, interned names) with headroom; the old per-line field
// splitting alone cost several allocations per line.
func TestParseTextAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	text, lines := syntheticText(t, 200)
	avg := testing.AllocsPerRun(5, func() {
		if _, err := ParseText(bytes.NewReader(text)); err != nil {
			t.Fatal(err)
		}
	})
	perLine := avg / float64(lines)
	t.Logf("ParseText: %.0f allocs over %d lines (%.3f allocs/line)", avg, lines, perLine)
	if perLine > 0.5 {
		t.Errorf("ParseText allocates %.3f per line (%.0f total), want ≤ 0.5 — the byte-scanning fast path has regressed", perLine, avg)
	}
}

// TestParseTextEquivalence cross-checks the byte-scanning parser
// against the writer on a counter-heavy log: every counter, name, and
// DXT event must survive the round trip.
func TestParseTextEquivalence(t *testing.T) {
	text, _ := syntheticText(t, 25)
	l, err := ParseText(bytes.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	mod := l.Modules[ModPOSIX]
	if mod == nil || len(mod.Records) != 25 {
		t.Fatalf("parsed %v POSIX records, want 25", len(mod.Records))
	}
	counters := CountersFor(ModPOSIX)
	for _, r := range mod.Records {
		for k, c := range counters {
			want := int64(k) * int64(r.FileID-1000)
			if got := r.C(c); got != want {
				t.Fatalf("file %d counter %s = %d, want %d", r.FileID, c, got, want)
			}
		}
	}
	for i := 0; i < 25; i++ {
		id := uint64(1000 + i)
		if want := "/lustre/data/file-" + strconv.Itoa(i); l.Names[id] != want {
			t.Fatalf("Names[%d] = %q, want %q", id, l.Names[id], want)
		}
	}
	if len(l.DXT) != 1 || len(l.DXT[0].Events) != 64 {
		t.Fatalf("DXT = %d traces / %d events, want 1/64", len(l.DXT), len(l.DXT[0].Events))
	}
	for _, ev := range l.DXT[0].Events {
		if len(ev.OSTs) != 1 {
			t.Fatalf("event OSTs = %v, want one entry", ev.OSTs)
		}
	}
}

// TestModuleRecordIndexSurvivesDirectAppend guards the lazy record
// index: code that appends to Records directly (the workload recorder
// does) must still get correct Record/Find results afterwards.
func TestModuleRecordIndexSurvivesDirectAppend(t *testing.T) {
	m := &Module{Name: ModPOSIX}
	a := m.Record(1, 0)
	if m.Record(1, 0) != a {
		t.Fatal("Record(1,0) not stable")
	}
	direct := NewRecord(2, SharedRank)
	m.Records = append(m.Records, direct)
	if got := m.Find(2, SharedRank); got != direct {
		t.Fatalf("Find after direct append = %v, want the appended record", got)
	}
	if m.Record(2, SharedRank) != direct {
		t.Fatal("Record after direct append created a duplicate")
	}
	if len(m.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(m.Records))
	}
	if m.Find(3, 0) != nil {
		t.Fatal("Find of absent record returned non-nil")
	}
	// Duplicate keys added behind the index's back resolve to the
	// first record, matching the old linear scan.
	dup := NewRecord(1, 0)
	m.Records = append(m.Records, dup)
	if got := m.Find(1, 0); got != a {
		t.Fatalf("Find with duplicate = %v, want first record", got)
	}
}
