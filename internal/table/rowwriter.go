package table

import "strconv"

// arenaChunk is the minimum cell-header arena growth, in cells.
const arenaChunk = 4096

// RowWriter builds table rows cell by cell with amortized allocation.
// Cell bytes accumulate in a single per-row buffer that becomes one
// string on EndRow (each cell is a substring of it), and the []string
// row headers are carved from a flat arena chunk. A row therefore costs
// ~1 allocation instead of one per formatted cell.
//
// A RowWriter is bound to one table and is not safe for concurrent use.
type RowWriter struct {
	t     *Table
	buf   []byte
	ends  []int // end offset of each finished cell within buf
	arena []string
}

// NewRowWriter returns a writer appending rows to t.
func NewRowWriter(t *Table) *RowWriter {
	return &RowWriter{t: t, buf: make([]byte, 0, 256)}
}

// String appends a complete string cell.
func (w *RowWriter) String(s string) {
	w.buf = append(w.buf, s...)
	w.EndCell()
}

// Int appends a complete base-10 integer cell.
func (w *RowWriter) Int(v int64) {
	w.buf = strconv.AppendInt(w.buf, v, 10)
	w.EndCell()
}

// Uint appends a complete base-10 unsigned integer cell.
func (w *RowWriter) Uint(v uint64) {
	w.buf = strconv.AppendUint(w.buf, v, 10)
	w.EndCell()
}

// Float appends a complete float cell in the table's canonical
// shortest 'f' formatting.
func (w *RowWriter) Float(v float64) {
	w.buf = strconv.AppendFloat(w.buf, v, 'f', -1, 64)
	w.EndCell()
}

// PartInt appends an integer to the in-progress cell without ending
// it, for building separator-joined list cells.
func (w *RowWriter) PartInt(v int64) {
	w.buf = strconv.AppendInt(w.buf, v, 10)
}

// PartSep appends a single separator byte to the in-progress cell.
func (w *RowWriter) PartSep(c byte) {
	w.buf = append(w.buf, c)
}

// EndCell finishes the in-progress cell (possibly empty).
func (w *RowWriter) EndCell() {
	w.ends = append(w.ends, len(w.buf))
}

// EndRow converts the accumulated cells into one row and appends it to
// the table. The cell count must match the table header.
func (w *RowWriter) EndRow() error {
	s := string(w.buf)
	row := w.rowSlice(len(w.ends))
	start := 0
	for i, end := range w.ends {
		row[i] = s[start:end]
		start = end
	}
	w.buf = w.buf[:0]
	w.ends = w.ends[:0]
	return w.t.Append(row)
}

// rowSlice carves an n-cell row header out of the arena, growing it in
// chunks so header allocations amortize across many rows. The capacity
// is clipped so the row can never observe a neighbor's cells.
func (w *RowWriter) rowSlice(n int) []string {
	if cap(w.arena)-len(w.arena) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		w.arena = make([]string, 0, size)
	}
	off := len(w.arena)
	w.arena = w.arena[:off+n]
	return w.arena[off : off+n : off+n]
}
