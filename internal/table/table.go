// Package table provides a small typed-access CSV table used across the
// ION pipeline: the Extractor writes module tables as CSV, the analysis
// interpreter and the Drishti baseline consume them, and the simulated
// expert model reads them back when "executing" generated code.
package table

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Table is an in-memory CSV table: a header row plus string cells with
// typed accessors.
type Table struct {
	Name string
	Cols []string
	Rows [][]string

	colIdx map[string]int
	// cellBytes tracks the bytes appended through Append, used to
	// size-estimate render buffers. Rows added by bypassing Append
	// (Filter, GroupBy) are not counted; the estimate is advisory.
	cellBytes int
}

// New returns an empty table with the given column header.
func New(name string, cols []string) *Table {
	t := &Table{Name: name, Cols: append([]string(nil), cols...)}
	t.reindex()
	return t
}

func (t *Table) reindex() {
	t.colIdx = make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		t.colIdx[c] = i
	}
}

// Append adds a row; the row length must match the header.
func (t *Table) Append(row []string) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("table %s: row has %d cells, header has %d", t.Name, len(row), len(t.Cols))
	}
	for _, c := range row {
		t.cellBytes += len(c) + 1
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Grow preallocates capacity for at least n additional rows.
func (t *Table) Grow(n int) {
	if free := cap(t.Rows) - len(t.Rows); free < n {
		rows := make([][]string, len(t.Rows), len(t.Rows)+n)
		copy(rows, t.Rows)
		t.Rows = rows
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// HasCol reports whether the column exists.
func (t *Table) HasCol(col string) bool {
	_, ok := t.colIdx[col]
	return ok
}

// ColIndex returns the index of a column, or an error naming the table.
func (t *Table) ColIndex(col string) (int, error) {
	i, ok := t.colIdx[col]
	if !ok {
		return 0, fmt.Errorf("table %s: no column %q", t.Name, col)
	}
	return i, nil
}

// Value returns the cell at (row, col). It returns an error for an
// unknown column or out-of-range row.
func (t *Table) Value(row int, col string) (string, error) {
	i, err := t.ColIndex(col)
	if err != nil {
		return "", err
	}
	if row < 0 || row >= len(t.Rows) {
		return "", fmt.Errorf("table %s: row %d out of range [0,%d)", t.Name, row, len(t.Rows))
	}
	return t.Rows[row][i], nil
}

// Int returns the cell parsed as int64.
func (t *Table) Int(row int, col string) (int64, error) {
	s, err := t.Value(row, col)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("table %s: %s[%d] = %q is not an integer", t.Name, col, row, s)
	}
	return v, nil
}

// Float returns the cell parsed as float64.
func (t *Table) Float(row int, col string) (float64, error) {
	s, err := t.Value(row, col)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("table %s: %s[%d] = %q is not a number", t.Name, col, row, s)
	}
	return v, nil
}

// SumInt sums an integer column.
func (t *Table) SumInt(col string) (int64, error) {
	var sum int64
	for i := range t.Rows {
		v, err := t.Int(i, col)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// SumFloat sums a numeric column.
func (t *Table) SumFloat(col string) (float64, error) {
	var sum float64
	for i := range t.Rows {
		v, err := t.Float(i, col)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// MaxFloat returns the maximum of a numeric column, or an error on an
// empty table.
func (t *Table) MaxFloat(col string) (float64, error) {
	if len(t.Rows) == 0 {
		return 0, fmt.Errorf("table %s: MaxFloat on empty table", t.Name)
	}
	best, err := t.Float(0, col)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(t.Rows); i++ {
		v, err := t.Float(i, col)
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

// Filter returns a new table with the rows for which keep returns true.
func (t *Table) Filter(keep func(row int) bool) *Table {
	out := New(t.Name, t.Cols)
	for i := range t.Rows {
		if keep(i) {
			out.Rows = append(out.Rows, t.Rows[i])
		}
	}
	return out
}

// GroupBy partitions rows by the value of a column, with deterministic
// (sorted) key order available through GroupKeys.
func (t *Table) GroupBy(col string) (map[string]*Table, error) {
	i, err := t.ColIndex(col)
	if err != nil {
		return nil, err
	}
	groups := map[string]*Table{}
	for _, row := range t.Rows {
		key := row[i]
		g, ok := groups[key]
		if !ok {
			g = New(t.Name+"["+col+"="+key+"]", t.Cols)
			groups[key] = g
		}
		g.Rows = append(g.Rows, row)
	}
	return groups, nil
}

// GroupKeys returns the sorted keys of a GroupBy result.
func GroupKeys(groups map[string]*Table) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortByFloat sorts rows by a numeric column, descending when desc.
func (t *Table) SortByFloat(col string, desc bool) error {
	i, err := t.ColIndex(col)
	if err != nil {
		return err
	}
	var parseErr error
	sort.SliceStable(t.Rows, func(a, b int) bool {
		va, ea := strconv.ParseFloat(t.Rows[a][i], 64)
		vb, eb := strconv.ParseFloat(t.Rows[b][i], 64)
		if ea != nil && parseErr == nil {
			parseErr = fmt.Errorf("table %s: %s = %q is not a number", t.Name, col, t.Rows[a][i])
		}
		if eb != nil && parseErr == nil {
			parseErr = fmt.Errorf("table %s: %s = %q is not a number", t.Name, col, t.Rows[b][i])
		}
		if desc {
			return va > vb
		}
		return va < vb
	})
	return parseErr
}

// maxPooledRenderBytes caps the capacity of buffers returned to the
// render pool, so one huge table doesn't pin its buffer forever.
const maxPooledRenderBytes = 1 << 22

// renderBufs pools CSV render buffers across Write calls.
var renderBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// renderEstimate predicts the rendered CSV size from the bytes that
// flowed through Append, so the pooled buffer grows once up front.
func (t *Table) renderEstimate() int {
	n := 1
	for _, c := range t.Cols {
		n += len(c) + 1
	}
	return n + t.cellBytes
}

// Write serializes the table as CSV (header first). Rendering goes
// through a pooled, size-estimated buffer so the caller's writer sees
// a single Write call and repeated renders reuse their scratch space.
func (t *Table) Write(w io.Writer) error {
	buf := renderBufs.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Grow(t.renderEstimate())
	err := t.render(buf)
	if err == nil {
		if _, werr := w.Write(buf.Bytes()); werr != nil {
			err = fmt.Errorf("table %s: writing: %w", t.Name, werr)
		}
	}
	if buf.Cap() <= maxPooledRenderBytes {
		renderBufs.Put(buf)
	}
	return err
}

func (t *Table) render(buf *bytes.Buffer) error {
	cw := csv.NewWriter(buf)
	if err := cw.Write(t.Cols); err != nil {
		return fmt.Errorf("table %s: writing header: %w", t.Name, err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("table %s: writing row: %w", t.Name, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("table %s: flushing: %w", t.Name, err)
	}
	return nil
}

// WriteFile writes the table as a CSV file.
func (t *Table) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table %s: %w", t.Name, err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("table %s: closing %s: %w", t.Name, path, err)
	}
	return nil
}

// Read parses a CSV stream into a table.
func Read(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	// Leave FieldsPerRecord at its default: every row must match the
	// header's width, so truncated or ragged files fail loudly instead
	// of silently losing columns.
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table %s: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table %s: empty CSV (no header)", name)
	}
	t := New(name, records[0])
	for _, row := range records[1:] {
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadFile loads a CSV file into a table named after the file.
func ReadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	return Read(path, f)
}
