package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Table {
	t := New("T", []string{"rank", "ops", "time"})
	t.Rows = [][]string{
		{"0", "10", "1.5"},
		{"1", "20", "0.5"},
		{"2", "30", "2.5"},
		{"0", "5", "0.25"},
	}
	return t
}

func TestAppendValidates(t *testing.T) {
	tb := New("T", []string{"a", "b"})
	if err := tb.Append([]string{"1"}); err == nil {
		t.Error("short row accepted")
	}
	if err := tb.Append([]string{"1", "2"}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if tb.NumRows() != 1 {
		t.Errorf("rows = %d", tb.NumRows())
	}
}

func TestTypedAccess(t *testing.T) {
	tb := sample()
	if v, err := tb.Int(1, "ops"); err != nil || v != 20 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := tb.Float(2, "time"); err != nil || v != 2.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
	if _, err := tb.Int(0, "nope"); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Errorf("missing column error: %v", err)
	}
	if _, err := tb.Int(99, "ops"); err == nil {
		t.Error("out of range row accepted")
	}
	if _, err := tb.Int(0, "time"); err == nil {
		t.Error("float parsed as int")
	}
}

func TestAggregates(t *testing.T) {
	tb := sample()
	if s, err := tb.SumInt("ops"); err != nil || s != 65 {
		t.Errorf("SumInt = %d, %v", s, err)
	}
	if s, err := tb.SumFloat("time"); err != nil || s != 4.75 {
		t.Errorf("SumFloat = %v, %v", s, err)
	}
	if m, err := tb.MaxFloat("time"); err != nil || m != 2.5 {
		t.Errorf("MaxFloat = %v, %v", m, err)
	}
	empty := New("E", []string{"x"})
	if _, err := empty.MaxFloat("x"); err == nil {
		t.Error("MaxFloat on empty table should error")
	}
}

func TestFilterAndGroupBy(t *testing.T) {
	tb := sample()
	big := tb.Filter(func(i int) bool {
		v, _ := tb.Int(i, "ops")
		return v >= 20
	})
	if big.NumRows() != 2 {
		t.Errorf("filter rows = %d", big.NumRows())
	}
	groups, err := tb.GroupBy("rank")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups["0"].NumRows() != 2 {
		t.Errorf("rank 0 rows = %d", groups["0"].NumRows())
	}
	keys := GroupKeys(groups)
	if len(keys) != 3 || keys[0] != "0" || keys[2] != "2" {
		t.Errorf("keys = %v", keys)
	}
	if _, err := tb.GroupBy("nope"); err == nil {
		t.Error("GroupBy unknown column accepted")
	}
}

func TestSortByFloat(t *testing.T) {
	tb := sample()
	if err := tb.SortByFloat("time", true); err != nil {
		t.Fatal(err)
	}
	if v, _ := tb.Float(0, "time"); v != 2.5 {
		t.Errorf("descending sort wrong: first = %v", v)
	}
	if err := tb.SortByFloat("time", false); err != nil {
		t.Fatal(err)
	}
	if v, _ := tb.Float(0, "time"); v != 0.25 {
		t.Errorf("ascending sort wrong: first = %v", v)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sample()
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read("T", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tb.NumRows() || len(got.Cols) != len(tb.Cols) {
		t.Fatalf("shape changed: %dx%d", got.NumRows(), len(got.Cols))
	}
	for i := range tb.Rows {
		for j := range tb.Cols {
			if got.Rows[i][j] != tb.Rows[i][j] {
				t.Errorf("cell (%d,%d) changed: %q vs %q", i, j, got.Rows[i][j], tb.Rows[i][j])
			}
		}
	}
}

func TestCSVRoundTripQuoting(t *testing.T) {
	tb := New("Q", []string{"name", "v"})
	rows := [][]string{
		{"file,with,commas", "1"},
		{`quoted "name"`, "2"},
		{"line\nbreak", "3"},
	}
	for _, r := range rows {
		if err := tb.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read("Q", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		for j := range r {
			if got.Rows[i][j] != r[j] {
				t.Errorf("quoting broke cell (%d,%d): %q", i, j, got.Rows[i][j])
			}
		}
	}
}

func TestReadRejectsEmpty(t *testing.T) {
	if _, err := Read("E", strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.csv"
	tb := sample()
	if err := tb.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 4 {
		t.Errorf("rows = %d", got.NumRows())
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any table of printable cells survives a CSV round trip.
	f := func(cells [][3]string) bool {
		tb := New("P", []string{"a", "b", "c"})
		for _, row := range cells {
			// csv cannot represent bare \r in all cases; normalize.
			r := []string{sanitize(row[0]), sanitize(row[1]), sanitize(row[2])}
			if err := tb.Append(r); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tb.Write(&buf); err != nil {
			return false
		}
		got, err := Read("P", &buf)
		if err != nil {
			return false
		}
		if got.NumRows() != tb.NumRows() {
			return false
		}
		for i := range tb.Rows {
			for j := range tb.Cols {
				if got.Rows[i][j] != tb.Rows[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' {
			return ' '
		}
		return r
	}, s)
}
