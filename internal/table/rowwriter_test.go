package table

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestRowWriterBuildsRows(t *testing.T) {
	tb := New("T", []string{"id", "name", "score", "list"})
	w := NewRowWriter(tb)
	for i := 0; i < 3; i++ {
		w.Int(int64(i))
		w.String("file-" + strconv.Itoa(i))
		w.Float(float64(i) + 0.5)
		for k := 0; k <= i; k++ {
			if k > 0 {
				w.PartSep(';')
			}
			w.PartInt(int64(k * 10))
		}
		w.EndCell()
		if err := w.EndRow(); err != nil {
			t.Fatal(err)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tb.NumRows())
	}
	want := [][]string{
		{"0", "file-0", "0.5", "0"},
		{"1", "file-1", "1.5", "0;10"},
		{"2", "file-2", "2.5", "0;10;20"},
	}
	for i, row := range want {
		for j, cell := range row {
			if tb.Rows[i][j] != cell {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, tb.Rows[i][j], cell)
			}
		}
	}
	// Typed accessors see RowWriter rows like any others.
	if v, err := tb.Int(2, "id"); err != nil || v != 2 {
		t.Errorf("Int = %d, %v", v, err)
	}
	if v, err := tb.Float(1, "score"); err != nil || v != 1.5 {
		t.Errorf("Float = %v, %v", v, err)
	}
}

func TestRowWriterCellCountMismatch(t *testing.T) {
	tb := New("T", []string{"a", "b"})
	w := NewRowWriter(tb)
	w.Int(1)
	if err := w.EndRow(); err == nil {
		t.Fatal("EndRow with missing cells succeeded")
	}
	// The writer stays usable after a rejected row.
	w.Int(1)
	w.Int(2)
	if err := w.EndRow(); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 || tb.Rows[0][1] != "2" {
		t.Fatalf("rows = %v", tb.Rows)
	}
}

// TestRowWriterArenaIsolation crosses an arena chunk boundary and
// verifies earlier rows keep their cells.
func TestRowWriterArenaIsolation(t *testing.T) {
	tb := New("T", []string{"v"})
	w := NewRowWriter(tb)
	n := arenaChunk + 10
	for i := 0; i < n; i++ {
		w.Int(int64(i))
		if err := w.EndRow(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += n / 7 {
		if tb.Rows[i][0] != strconv.Itoa(i) {
			t.Fatalf("row %d = %q after arena growth", i, tb.Rows[i][0])
		}
	}
}

// TestRowWriterAllocBound pins the row-building win: appending rows
// through the RowWriter must cost ~1 allocation per row amortized,
// not one per cell.
func TestRowWriterAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const rows = 1000
	avg := testing.AllocsPerRun(10, func() {
		tb := New("T", []string{"a", "b", "c", "d", "e"})
		tb.Grow(rows)
		w := NewRowWriter(tb)
		for i := 0; i < rows; i++ {
			w.Int(int64(i))
			w.Uint(uint64(i) * 7)
			w.Float(float64(i) * 0.125)
			w.String("cell")
			w.PartInt(int64(i))
			w.PartSep(';')
			w.PartInt(int64(i + 1))
			w.EndCell()
			if err := w.EndRow(); err != nil {
				t.Fatal(err)
			}
		}
	})
	perRow := avg / rows
	t.Logf("RowWriter: %.0f allocs for %d rows (%.3f allocs/row)", avg, rows, perRow)
	if perRow > 2 {
		t.Errorf("RowWriter allocates %.3f per row, want ≤ 2", perRow)
	}
}

// TestWritePooledRender checks the pooled render path byte-for-byte
// against encoding/csv, including quoting, and pins its allocation
// cost once the pool is warm.
func TestWritePooledRender(t *testing.T) {
	tb := New("T", []string{"a", "b"})
	rows := [][]string{
		{"plain", "with,comma"},
		{`with"quote`, "with\nnewline"},
		{" leading space", ""},
	}
	for _, r := range rows {
		if err := tb.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := tb.Write(&got); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n" +
		"plain,\"with,comma\"\n" +
		"\"with\"\"quote\",\"with\nnewline\"\n" +
		"\" leading space\",\n"
	if got.String() != want {
		t.Fatalf("rendered CSV:\n%q\nwant:\n%q", got.String(), want)
	}
	// Repeated renders are identical (pooled buffers reset cleanly).
	var again bytes.Buffer
	if err := tb.Write(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != want {
		t.Fatal("second render differs from first")
	}
}

func TestWriteRenderAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	tb := New("T", []string{"a", "b", "c"})
	for i := 0; i < 2000; i++ {
		s := strconv.Itoa(i)
		if err := tb.Append([]string{s, s, s}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool so the measurement sees the steady state.
	if err := tb.Write(io.Discard); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := tb.Write(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("render: %.1f allocs for a 2000-row table", avg)
	if avg > 24 {
		t.Errorf("pooled render allocates %.1f per call, want ≤ 24 (buffer pooling regressed)", avg)
	}
}

func TestGrow(t *testing.T) {
	tb := New("T", []string{"a"})
	tb.Grow(100)
	if cap(tb.Rows) < 100 {
		t.Fatalf("cap = %d after Grow(100)", cap(tb.Rows))
	}
	if err := tb.Append([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	tb.Grow(5) // no-op: capacity already there
	if tb.NumRows() != 1 || tb.Rows[0][0] != "x" {
		t.Fatal("Grow corrupted existing rows")
	}
	if !strings.Contains(tb.Name, "T") {
		t.Fatal("name lost")
	}
}
