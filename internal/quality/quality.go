// Package quality is the diagnosis-quality observatory: it scores every
// completed LLM diagnosis against the deterministic Drishti triggers
// (and the iongen ground-truth labels when the trace name identifies a
// generated workload), persists the per-job scorecards in a journaled
// store, and aggregates agreement and shadow-rerun flip statistics for
// metrics, alerting, and the /dashboard/quality page.
//
// The paper validates ION's verdicts against Drishti and expert-labeled
// IO500/OpenPMD workloads once, offline; this package runs the same
// comparison continuously in production so drifting or stale verdicts
// (e.g. served from the semantic cache) become an observable signal
// instead of a silent failure mode.
package quality

import (
	"time"

	"ion/internal/drishti"
	"ion/internal/ion"
	"ion/internal/issue"
)

// Mode labels how the diagnosis under scoring was produced, mirroring
// the jobs reuse ladder.
type Mode string

const (
	// ModeFull is a from-scratch fan-out diagnosis.
	ModeFull Mode = "full"
	// ModeConditioned is a fan-out conditioned on a semcache neighbor.
	ModeConditioned Mode = "conditioned"
	// ModeVerbatim is a report served verbatim from a semcache neighbor.
	ModeVerbatim Mode = "verbatim"
)

// Disagreement kinds: which side claimed the issue alone.
const (
	// KindLLMOnly means the LLM detected an issue Drishti did not flag.
	KindLLMOnly = "llm_only"
	// KindDrishtiOnly means Drishti flagged an issue the LLM did not
	// detect.
	KindDrishtiOnly = "drishti_only"
)

// IssueScore compares the LLM verdict for one issue against the
// deterministic baseline.
type IssueScore struct {
	// Issue is the taxonomy entry being compared.
	Issue issue.ID `json:"issue"`
	// Verdict is what the LLM concluded.
	Verdict issue.Verdict `json:"verdict"`
	// Drishti reports whether the deterministic triggers flagged the
	// issue at HIGH severity.
	Drishti bool `json:"drishti"`
	// Label is the iongen ground-truth verdict when the trace came from
	// a known generated workload; empty otherwise.
	Label issue.Verdict `json:"label,omitempty"`
	// Agree is true when the LLM and Drishti sides coincide.
	Agree bool `json:"agree"`
	// Kind classifies a disagreement (KindLLMOnly or KindDrishtiOnly);
	// empty when the sides agree.
	Kind string `json:"kind,omitempty"`
}

// Shadow records the outcome of a background full fan-out re-run of a
// reused or conditioned diagnosis.
type Shadow struct {
	// Checked is the number of issues compared.
	Checked int `json:"checked"`
	// Flips lists the issues whose verdict changed between the served
	// report and the shadow re-run.
	Flips []issue.ID `json:"flips,omitempty"`
	// At is when the shadow re-run completed.
	At time.Time `json:"at"`
}

// Scorecard is the persisted quality record for one diagnosed job.
type Scorecard struct {
	// JobID is the scored job; the journal supersedes by this key.
	JobID string `json:"job"`
	// Trace is the display name of the diagnosed trace.
	Trace string `json:"trace"`
	// TraceHash is the hex SHA-256 of the trace bytes.
	TraceHash string `json:"trace_hash,omitempty"`
	// Mode is how the diagnosis was produced.
	Mode Mode `json:"mode"`
	// CreatedAt is when the scorecard was first computed.
	CreatedAt time.Time `json:"created_at"`
	// Issues holds the per-issue comparisons.
	Issues []IssueScore `json:"issues"`
	// Agreement is the fraction of issues where LLM and Drishti agree.
	Agreement float64 `json:"agreement"`
	// Disagreements counts the issues where they do not.
	Disagreements int `json:"disagreements"`
	// Shadow is set once a background re-run has checked this job.
	Shadow *Shadow `json:"shadow,omitempty"`

	// Deleted marks a tombstone line in the journal.
	Deleted bool `json:"deleted,omitempty"`
}

// size estimates the retained bytes of a scorecard (also its
// journal-line cost), used for the byte bound.
func (c Scorecard) size() int64 {
	n := int64(len(c.JobID)+len(c.Trace)+len(c.TraceHash)+len(c.Mode)) + 160
	n += int64(len(c.Issues)) * 96
	if c.Shadow != nil {
		n += 64 + int64(len(c.Shadow.Flips))*24
	}
	return n
}

// Score compares the per-issue LLM verdicts of rep against the Drishti
// report det across the full taxonomy, attaching ground-truth labels
// when provided. Both reports must describe the same trace.
func Score(rep *ion.Report, det *drishti.Report, labels []issue.Expectation) []IssueScore {
	truth := map[issue.ID]issue.Verdict{}
	for _, e := range labels {
		truth[e.Issue] = e.Want
	}
	scores := make([]IssueScore, 0, len(issue.All))
	for _, id := range issue.All {
		s := IssueScore{
			Issue:   id,
			Verdict: rep.Verdict(id),
			Drishti: det != nil && det.Flagged(id),
			Label:   truth[id],
		}
		llm := s.Verdict == issue.VerdictDetected
		s.Agree = llm == s.Drishti
		switch {
		case llm && !s.Drishti:
			s.Kind = KindLLMOnly
		case !llm && s.Drishti:
			s.Kind = KindDrishtiOnly
		}
		scores = append(scores, s)
	}
	return scores
}

// Summarize fills the Agreement and Disagreements fields from the
// per-issue scores.
func (c *Scorecard) Summarize() {
	c.Disagreements = 0
	for _, s := range c.Issues {
		if !s.Agree {
			c.Disagreements++
		}
	}
	if len(c.Issues) == 0 {
		c.Agreement = 1
		return
	}
	c.Agreement = float64(len(c.Issues)-c.Disagreements) / float64(len(c.Issues))
}

// Flips compares per-issue verdicts between the served report and a
// shadow re-run, returning the issues whose verdict changed.
func Flips(served, shadow *ion.Report) []issue.ID {
	var flips []issue.ID
	for _, id := range issue.All {
		if served.Verdict(id) != shadow.Verdict(id) {
			flips = append(flips, id)
		}
	}
	return flips
}
