package quality

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ion/internal/issue"
)

// Defaults for Options left at zero.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 16 << 20
)

// Options configures a Store.
type Options struct {
	// Path is the JSON-lines journal file; required.
	Path string
	// MaxEntries bounds the scorecard count (default 4096; negative
	// disables the count bound).
	MaxEntries int
	// MaxBytes bounds the estimated retained bytes (default 16 MiB;
	// negative disables the byte bound).
	MaxBytes int64
}

// AgreeStat aggregates the verdict comparisons for one issue across
// the live scorecards.
type AgreeStat struct {
	Total       int `json:"total"`
	Agree       int `json:"agree"`
	LLMOnly     int `json:"llm_only"`
	DrishtiOnly int `json:"drishti_only"`
}

// Ratio is the agreement fraction, 1 when no samples exist.
func (a AgreeStat) Ratio() float64 {
	if a.Total == 0 {
		return 1
	}
	return float64(a.Agree) / float64(a.Total)
}

// FlipStat aggregates shadow re-run outcomes for one reuse mode.
type FlipStat struct {
	// Shadowed counts the scorecards of this mode that a shadow re-run
	// has checked.
	Shadowed int `json:"shadowed"`
	// Flipped counts those whose re-run changed at least one verdict.
	Flipped int `json:"flipped"`
}

// Ratio is the flip fraction, 0 when nothing was shadowed.
func (f FlipStat) Ratio() float64 {
	if f.Shadowed == 0 {
		return 0
	}
	return float64(f.Flipped) / float64(f.Shadowed)
}

// Stats is a counters snapshot for /api/quality and /metrics.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Store persists scorecards with the same journal discipline as the
// semantic cache: an in-memory LRU journaled as JSON lines, torn-tail
// tolerant replay, supersede-by-job-id, tombstones, count/byte bounds,
// and temp+rename compaction. All methods are safe for concurrent use
// and safe on a nil receiver (quality tracking disabled).
type Store struct {
	mu    sync.Mutex
	opts  Options
	file  *os.File
	byJob map[string]*list.Element
	order *list.List // front = most recently used
	size  int64
	// lines counts journal records written since the last compaction;
	// when it exceeds twice the live entry count the journal is
	// rewritten in place.
	lines int

	puts, evictions int64
}

type storeEntry struct {
	c    Scorecard
	size int64
}

// Open loads (or creates) the store at opts.Path, replaying the
// journal: later records supersede earlier ones with the same job id,
// tombstones delete, and the count/byte bounds are enforced
// oldest-first.
func Open(opts Options) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("quality: Options.Path is required")
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}

	st := &Store{
		opts:  opts,
		byJob: map[string]*list.Element{},
		order: list.New(),
	}
	if err := st.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}
	st.file = f
	return st, nil
}

// replay loads the journal into memory. Unreadable lines are skipped
// rather than failing the open: a torn final write from a crash must
// not take the scorecard history down.
func (st *Store) replay() error {
	f, err := os.Open(st.opts.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("quality: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		st.lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var c Scorecard
		if err := json.Unmarshal(line, &c); err != nil {
			continue
		}
		if c.Deleted {
			st.dropLocked(c.JobID)
			continue
		}
		if c.JobID == "" {
			continue
		}
		st.insertLocked(c)
	}
	// Scanner errors (oversized line at the tail) degrade to a partial
	// load, same policy as unreadable lines.
	return nil
}

// insertLocked adds or replaces a scorecard in memory and applies the
// bounds. Caller holds st.mu (or is single-threaded during replay).
func (st *Store) insertLocked(c Scorecard) {
	if el, ok := st.byJob[c.JobID]; ok {
		st.removeLocked(el)
	}
	se := &storeEntry{c: c, size: c.size()}
	st.byJob[c.JobID] = st.order.PushFront(se)
	st.size += se.size
	st.evictLocked()
}

func (st *Store) removeLocked(el *list.Element) {
	se := el.Value.(*storeEntry)
	st.order.Remove(el)
	delete(st.byJob, se.c.JobID)
	st.size -= se.size
}

func (st *Store) dropLocked(jobID string) {
	if el, ok := st.byJob[jobID]; ok {
		st.removeLocked(el)
	}
}

// evictLocked drops least-recently-used scorecards until both bounds
// hold.
func (st *Store) evictLocked() {
	for (st.opts.MaxEntries > 0 && st.order.Len() > st.opts.MaxEntries) ||
		(st.opts.MaxBytes > 0 && st.size > st.opts.MaxBytes) {
		el := st.order.Back()
		if el == nil {
			return
		}
		st.removeLocked(el)
		st.evictions++
	}
}

// Put journals and indexes a scorecard, superseding any prior record
// for the same job (how shadow results update an existing card).
// Evictions are not journaled individually; bounds re-apply on the
// next load.
func (st *Store) Put(c Scorecard) error {
	if st == nil {
		return nil
	}
	if c.JobID == "" {
		return fmt.Errorf("quality: scorecard needs a job id")
	}
	line, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("quality: %w", err)
	}
	line = append(line, '\n')

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("quality: journaling scorecard: %w", err)
		}
		st.lines++
	}
	st.puts++
	st.insertLocked(c)
	st.compactLocked()
	return nil
}

// Delete tombstones a scorecard (e.g. its job was deleted) so it stops
// influencing the aggregates and stays gone after a restart.
func (st *Store) Delete(jobID string) error {
	if st == nil || jobID == "" {
		return nil
	}
	line, err := json.Marshal(Scorecard{JobID: jobID, Deleted: true})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dropLocked(jobID)
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("quality: journaling tombstone: %w", err)
		}
		st.lines++
	}
	st.compactLocked()
	return nil
}

// compactLocked rewrites the journal when superseded/tombstoned lines
// outnumber live entries, via temp file + rename so a crash mid-compact
// leaves the old journal intact.
func (st *Store) compactLocked() {
	if st.file == nil || st.lines <= 2*st.order.Len()+16 {
		return
	}
	tmp := st.opts.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	n := 0
	// Oldest first, so replay rebuilds the same recency order.
	for el := st.order.Back(); el != nil; el = el.Prev() {
		line, err := json.Marshal(el.Value.(*storeEntry).c)
		if err != nil {
			continue
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, st.opts.Path); err != nil {
		os.Remove(tmp)
		return
	}
	old := st.file
	nf, err := os.OpenFile(st.opts.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep appending to the (renamed-over) old handle; the next
		// open replays the compacted file plus nothing, which only
		// loses post-compaction writes on this degenerate path.
		return
	}
	old.Close()
	st.file = nf
	st.lines = n
}

// Get returns the scorecard for a job.
func (st *Store) Get(jobID string) (Scorecard, bool) {
	if st == nil {
		return Scorecard{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byJob[jobID]
	if !ok {
		return Scorecard{}, false
	}
	return el.Value.(*storeEntry).c, true
}

// Entries returns a snapshot of the live scorecards, most recent first
// by creation time (the /api/quality listing order).
func (st *Store) Entries() []Scorecard {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]Scorecard, 0, st.order.Len())
	for el := st.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).c)
	}
	st.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.After(out[j].CreatedAt)
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// Tail returns the n most recent scorecards (the flight-recorder
// bundle payload).
func (st *Store) Tail(n int) []Scorecard {
	all := st.Entries()
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// IssueAgreement aggregates per-issue verdict comparisons across the
// live scorecards. The aggregates are recomputed from the replayed
// journal, so they survive restarts; the scan is bounded by
// MaxEntries.
func (st *Store) IssueAgreement() map[issue.ID]AgreeStat {
	out := map[issue.ID]AgreeStat{}
	if st == nil {
		return out
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for el := st.order.Front(); el != nil; el = el.Next() {
		for _, s := range el.Value.(*storeEntry).c.Issues {
			a := out[s.Issue]
			a.Total++
			switch s.Kind {
			case KindLLMOnly:
				a.LLMOnly++
			case KindDrishtiOnly:
				a.DrishtiOnly++
			default:
				a.Agree++
			}
			out[s.Issue] = a
		}
	}
	return out
}

// FlipStats aggregates shadow re-run outcomes per reuse mode across
// the live scorecards.
func (st *Store) FlipStats() map[Mode]FlipStat {
	out := map[Mode]FlipStat{}
	if st == nil {
		return out
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for el := st.order.Front(); el != nil; el = el.Next() {
		c := el.Value.(*storeEntry).c
		if c.Shadow == nil {
			continue
		}
		f := out[c.Mode]
		f.Shadowed++
		if len(c.Shadow.Flips) > 0 {
			f.Flipped++
		}
		out[c.Mode] = f
	}
	return out
}

// Len returns the number of live scorecards.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// Bytes returns the estimated retained bytes.
func (st *Store) Bytes() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.size
}

// Stats returns a counters snapshot.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Entries:   st.order.Len(),
		Bytes:     st.size,
		Puts:      st.puts,
		Evictions: st.evictions,
	}
}

// Close flushes and closes the journal.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file == nil {
		return nil
	}
	err := st.file.Close()
	st.file = nil
	return err
}
