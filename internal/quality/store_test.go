package quality

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/drishti"
	"ion/internal/ion"
	"ion/internal/issue"
)

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func card(job string, at time.Time, agree bool) Scorecard {
	c := Scorecard{
		JobID:     job,
		Trace:     "trace-" + job,
		Mode:      ModeFull,
		CreatedAt: at,
	}
	s := IssueScore{Issue: issue.SmallIO, Verdict: issue.VerdictDetected, Drishti: agree, Agree: agree}
	if !agree {
		s.Kind = KindLLMOnly
	}
	c.Issues = []IssueScore{s}
	c.Summarize()
	return c
}

func TestStorePutGetSupersede(t *testing.T) {
	st := openStore(t, Options{Path: filepath.Join(t.TempDir(), "q.jsonl")})
	t0 := time.Unix(1719000000, 0).UTC()
	if err := st.Put(card("j-1", t0, true)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Put(card("j-2", t0.Add(time.Second), false)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	// Superseding j-1 with a shadow result keeps one record per job.
	c, _ := st.Get("j-1")
	c.Shadow = &Shadow{Checked: 9, Flips: []issue.ID{issue.SmallIO}, At: t0.Add(time.Minute)}
	if err := st.Put(c); err != nil {
		t.Fatalf("Put shadow: %v", err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len after supersede = %d, want 2", st.Len())
	}
	got, ok := st.Get("j-1")
	if !ok || got.Shadow == nil || len(got.Shadow.Flips) != 1 {
		t.Fatalf("Get j-1 = %+v, %v; want shadow with one flip", got, ok)
	}
	if ents := st.Entries(); len(ents) != 2 || ents[0].JobID != "j-2" {
		t.Fatalf("Entries = %+v, want j-2 first (newest)", ents)
	}
	if tail := st.Tail(1); len(tail) != 1 || tail[0].JobID != "j-2" {
		t.Fatalf("Tail(1) = %+v", tail)
	}
}

func TestStoreReplaySupersedeAndTombstone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	st := openStore(t, Options{Path: path})
	t0 := time.Unix(1719000000, 0).UTC()
	for _, j := range []string{"j-1", "j-2", "j-3"} {
		if err := st.Put(card(j, t0, false)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	c, _ := st.Get("j-2")
	c.Shadow = &Shadow{Checked: 9, At: t0}
	if err := st.Put(c); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Delete("j-3"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st.Close()

	st2 := openStore(t, Options{Path: path})
	if st2.Len() != 2 {
		t.Fatalf("replayed Len = %d, want 2", st2.Len())
	}
	if _, ok := st2.Get("j-3"); ok {
		t.Fatal("tombstoned j-3 survived replay")
	}
	if got, ok := st2.Get("j-2"); !ok || got.Shadow == nil {
		t.Fatalf("superseded j-2 lost its shadow on replay: %+v %v", got, ok)
	}
	ag := st2.IssueAgreement()
	if a := ag[issue.SmallIO]; a.Total != 2 || a.LLMOnly != 2 {
		t.Fatalf("IssueAgreement = %+v, want 2 llm_only of 2", a)
	}
	fs := st2.FlipStats()
	if f := fs[ModeFull]; f.Shadowed != 1 || f.Flipped != 0 {
		t.Fatalf("FlipStats = %+v", f)
	}
}

func TestStoreTornTailAndGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	st := openStore(t, Options{Path: path})
	if err := st.Put(card("j-1", time.Unix(1719000000, 0), true)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	st.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json\n{\"job\":\"j-torn")
	f.Close()

	st2 := openStore(t, Options{Path: path})
	if st2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", st2.Len())
	}
	if _, ok := st2.Get("j-1"); !ok {
		t.Fatal("good record lost behind torn tail")
	}
}

func TestStoreEviction(t *testing.T) {
	st := openStore(t, Options{Path: filepath.Join(t.TempDir(), "q.jsonl"), MaxEntries: 2})
	t0 := time.Unix(1719000000, 0)
	for i, j := range []string{"j-1", "j-2", "j-3"} {
		if err := st.Put(card(j, t0.Add(time.Duration(i)*time.Second), true)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if _, ok := st.Get("j-1"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if s := st.Stats(); s.Evictions != 1 || s.Puts != 3 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	st := openStore(t, Options{Path: path})
	t0 := time.Unix(1719000000, 0)
	// Rewrite the same job far past the 2*live+16 threshold so the
	// journal compacts down to the live set.
	for i := 0; i < 60; i++ {
		if err := st.Put(card("j-1", t0, true)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n > 20 {
		t.Fatalf("journal holds %d lines after 60 rewrites of one job; compaction did not run", n)
	}
	st.Close()
	st2 := openStore(t, Options{Path: path})
	if st2.Len() != 1 {
		t.Fatalf("Len after compacted replay = %d, want 1", st2.Len())
	}
}

func TestStoreNilReceiver(t *testing.T) {
	var st *Store
	if err := st.Put(Scorecard{JobID: "j"}); err != nil {
		t.Fatalf("nil Put: %v", err)
	}
	if err := st.Delete("j"); err != nil {
		t.Fatalf("nil Delete: %v", err)
	}
	if _, ok := st.Get("j"); ok {
		t.Fatal("nil Get returned a scorecard")
	}
	if st.Len() != 0 || st.Bytes() != 0 || st.Entries() != nil || st.Tail(5) != nil {
		t.Fatal("nil snapshots not empty")
	}
	if len(st.IssueAgreement()) != 0 || len(st.FlipStats()) != 0 {
		t.Fatal("nil aggregates not empty")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func reportWith(verdicts map[issue.ID]issue.Verdict) *ion.Report {
	rep := &ion.Report{Diagnoses: map[issue.ID]*ion.IssueDiagnosis{}}
	for id, v := range verdicts {
		rep.Diagnoses[id] = &ion.IssueDiagnosis{Issue: id, Verdict: v}
	}
	return rep
}

func TestScore(t *testing.T) {
	rep := reportWith(map[issue.ID]issue.Verdict{
		issue.SmallIO:      issue.VerdictDetected,    // agrees with drishti
		issue.RandomAccess: issue.VerdictDetected,    // llm_only
		issue.Metadata:     issue.VerdictMitigated,   // drishti_only (mitigated ≠ detected)
		issue.SharedFile:   issue.VerdictNotDetected, // agrees (both silent)
	})
	det := &drishti.Report{Insights: []drishti.Insight{
		{Issue: issue.SmallIO, Level: drishti.LevelHigh},
		{Issue: issue.Metadata, Level: drishti.LevelHigh},
		{Issue: issue.RandomAccess, Level: drishti.LevelWarn}, // WARN does not flag
	}}
	labels := []issue.Expectation{{Issue: issue.SmallIO, Want: issue.VerdictDetected}}

	scores := Score(rep, det, labels)
	if len(scores) != len(issue.All) {
		t.Fatalf("Score covers %d issues, want %d", len(scores), len(issue.All))
	}
	byID := map[issue.ID]IssueScore{}
	for _, s := range scores {
		byID[s.Issue] = s
	}
	if s := byID[issue.SmallIO]; !s.Agree || s.Kind != "" || s.Label != issue.VerdictDetected {
		t.Fatalf("small-io = %+v", s)
	}
	if s := byID[issue.RandomAccess]; s.Agree || s.Kind != KindLLMOnly {
		t.Fatalf("random-access = %+v", s)
	}
	if s := byID[issue.Metadata]; s.Agree || s.Kind != KindDrishtiOnly {
		t.Fatalf("metadata = %+v", s)
	}
	if s := byID[issue.SharedFile]; !s.Agree || s.Kind != "" {
		t.Fatalf("shared-file = %+v", s)
	}

	c := Scorecard{JobID: "j-1", Issues: scores}
	c.Summarize()
	if c.Disagreements != 2 {
		t.Fatalf("Disagreements = %d, want 2", c.Disagreements)
	}
	want := float64(len(issue.All)-2) / float64(len(issue.All))
	if c.Agreement != want {
		t.Fatalf("Agreement = %v, want %v", c.Agreement, want)
	}
}

func TestFlips(t *testing.T) {
	served := reportWith(map[issue.ID]issue.Verdict{
		issue.SmallIO:    issue.VerdictDetected,
		issue.SharedFile: issue.VerdictDetected,
	})
	shadow := reportWith(map[issue.ID]issue.Verdict{
		issue.SmallIO: issue.VerdictDetected, // unchanged
		// shared-file absent → not-detected → flip
	})
	flips := Flips(served, shadow)
	if len(flips) != 1 || flips[0] != issue.SharedFile {
		t.Fatalf("Flips = %v, want [shared-file]", flips)
	}
	if f := Flips(served, served); f != nil {
		t.Fatalf("self Flips = %v, want none", f)
	}
}
