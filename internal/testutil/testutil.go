// Package testutil provides shared helpers for the test suites: cached
// workload generation and extraction, so the many packages that test
// against realistic traces do not each re-run the simulator.
package testutil

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/workloads"
)

var (
	mu     sync.Mutex
	logs   = map[string]*darshan.Log{}
	outs   = map[string]*extractor.Output{}
	dirs   = map[string]string{}
	tmpDir string
)

// Log returns the generated Darshan log for a workload, cached across
// calls within the test binary.
func Log(name string) (*darshan.Log, error) {
	mu.Lock()
	defer mu.Unlock()
	return logLocked(name)
}

func logLocked(name string) (*darshan.Log, error) {
	if l, ok := logs[name]; ok {
		return l, nil
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	l, err := w.Generate()
	if err != nil {
		return nil, fmt.Errorf("testutil: generating %s: %w", name, err)
	}
	logs[name] = l
	return l, nil
}

// Extracted returns the extracted CSV tables (written to a shared temp
// directory) for a workload, cached across calls.
func Extracted(name string) (*extractor.Output, string, error) {
	mu.Lock()
	defer mu.Unlock()
	if o, ok := outs[name]; ok {
		return o, dirs[name], nil
	}
	l, err := logLocked(name)
	if err != nil {
		return nil, "", err
	}
	if tmpDir == "" {
		tmpDir, err = os.MkdirTemp("", "ion-testutil-")
		if err != nil {
			return nil, "", fmt.Errorf("testutil: %w", err)
		}
	}
	dir := filepath.Join(tmpDir, name)
	o, err := extractor.ExtractToDir(l, dir)
	if err != nil {
		return nil, "", fmt.Errorf("testutil: extracting %s: %w", name, err)
	}
	outs[name] = o
	dirs[name] = dir
	return o, dir, nil
}
