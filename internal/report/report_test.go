package report

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"ion/internal/drishti"
	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/testutil"
)

func sampleReport(t *testing.T) (*ion.Report, *drishti.Report) {
	t.Helper()
	out, dir, err := testutil.Extracted("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	_ = dir
	fw, err := ion.New(ion.Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeExtracted(context.Background(), out, "ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	drep, err := drishti.Analyze(out, drishti.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rep, drep
}

func TestWriteReport(t *testing.T) {
	rep, _ := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"ION — I/O Navigator diagnosis",
		"trace: ior-hard",
		"Small I/O Operations",
		"[DETECTED]",
		"1.", // steps numbered
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(text, "\x1b[") {
		t.Error("colors leaked with Color=false")
	}
}

func TestWriteReportOptions(t *testing.T) {
	rep, _ := sampleReport(t)

	// ShowCode includes listings.
	var withCode bytes.Buffer
	o := DefaultOptions()
	o.ShowCode = true
	if err := WriteReport(&withCode, rep, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withCode.String(), "pd.read_csv") {
		t.Error("code listing missing with ShowCode")
	}

	// OnlyFindings=false shows clear issues too.
	var verbose bytes.Buffer
	o2 := DefaultOptions()
	o2.OnlyFindings = false
	if err := WriteReport(&verbose, rep, o2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(verbose.String(), "clear") {
		t.Error("clear verdicts hidden despite OnlyFindings=false")
	}

	// Color emits ANSI.
	var colored bytes.Buffer
	o3 := DefaultOptions()
	o3.Color = true
	if err := WriteReport(&colored, rep, o3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(colored.String(), "\x1b[31m") {
		t.Error("no red ANSI for detected issues")
	}

	// ShowSteps=false hides steps.
	var noSteps bytes.Buffer
	o4 := DefaultOptions()
	o4.ShowSteps = false
	if err := WriteReport(&noSteps, rep, o4); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noSteps.String(), "  1. Computed") {
		t.Error("steps shown despite ShowSteps=false")
	}
}

func TestWriteComparison(t *testing.T) {
	rep, drep := sampleReport(t)
	var buf bytes.Buffer
	if err := WriteComparison(&buf, rep, drep, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "ION vs Drishti") {
		t.Error("header missing")
	}
	if !strings.Contains(text, "ION:") || !strings.Contains(text, "Drishti:") {
		t.Error("columns missing")
	}
	// ior-hard: ION detects shared-file; Drishti is silent there.
	if !strings.Contains(text, issue.Title(issue.SharedFile)) {
		t.Error("shared-file row missing")
	}
}

func TestWrap(t *testing.T) {
	out := wrap("aa bb cc dd", 5, "  ")
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Errorf("no wrapping: %q", out)
	}
	for i, l := range lines[1:] {
		if !strings.HasPrefix(l, "  ") {
			t.Errorf("line %d lacks hanging indent: %q", i+1, l)
		}
	}
	if wrap("", 10, "") != "" {
		t.Error("empty wrap")
	}
}
