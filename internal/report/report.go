// Package report renders ION diagnoses for the terminal: the per-issue
// "modals" of the paper's front end (steps, code, conclusion), the
// global summary, and side-by-side ION-vs-Drishti views. Colors are
// ANSI and can be disabled.
package report

import (
	"fmt"
	"io"
	"strings"

	"ion/internal/drishti"
	"ion/internal/ion"
	"ion/internal/issue"
)

// Options control rendering.
type Options struct {
	// Color enables ANSI colors.
	Color bool
	// ShowCode includes the generated analysis code listings.
	ShowCode bool
	// ShowSteps includes the chain-of-thought steps.
	ShowSteps bool
	// OnlyFindings hides issues with a not-detected verdict.
	OnlyFindings bool
}

// DefaultOptions shows steps and findings without code.
func DefaultOptions() Options {
	return Options{Color: false, ShowCode: false, ShowSteps: true, OnlyFindings: true}
}

const (
	ansiReset  = "\x1b[0m"
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiBold   = "\x1b[1m"
	ansiDim    = "\x1b[2m"
)

func (o Options) paint(color, s string) string {
	if !o.Color {
		return s
	}
	return color + s + ansiReset
}

func (o Options) verdictLabel(v issue.Verdict) string {
	switch v {
	case issue.VerdictDetected:
		return o.paint(ansiRed, "DETECTED")
	case issue.VerdictMitigated:
		return o.paint(ansiYellow, "MITIGATED")
	default:
		return o.paint(ansiGreen, "clear")
	}
}

// WriteReport renders a full ION report.
func WriteReport(w io.Writer, r *ion.Report, o Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", o.paint(ansiBold, "ION — I/O Navigator diagnosis"))
	fmt.Fprintf(&b, "trace: %s\n", r.Trace)
	fmt.Fprintf(&b, "job:   %s (nprocs=%d, runtime=%.3fs)\n", r.Header.Exe, r.Header.NProcs, r.Header.RunTime)
	fmt.Fprintf(&b, "model: %s\n", r.Model)
	b.WriteString(strings.Repeat("=", 72) + "\n")

	for _, id := range r.Order {
		d := r.Diagnoses[id]
		if d == nil {
			continue
		}
		if o.OnlyFindings && d.Verdict == issue.VerdictNotDetected {
			continue
		}
		fmt.Fprintf(&b, "\n%s  [%s]\n", o.paint(ansiBold, d.Title), o.verdictLabel(d.Verdict))
		b.WriteString(strings.Repeat("-", 72) + "\n")
		if o.ShowSteps {
			for i, s := range d.Steps {
				fmt.Fprintf(&b, "  %d. %s\n", i+1, s)
			}
		}
		if o.ShowCode && d.Code != "" {
			b.WriteString(o.paint(ansiDim, indent(d.Code, "  | ")) + "\n")
		}
		fmt.Fprintf(&b, "  %s\n", wrap(d.Conclusion, 70, "  "))
	}

	if r.Summary != "" {
		b.WriteString("\n" + strings.Repeat("=", 72) + "\n")
		b.WriteString(strings.TrimSpace(r.Summary) + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteComparison renders ION and Drishti outputs side by side by
// issue, the Figure-3 view.
func WriteComparison(w io.Writer, r *ion.Report, d *drishti.Report, o Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — ION vs Drishti\n", r.Trace)
	b.WriteString(strings.Repeat("=", 72) + "\n")
	for _, id := range issue.All {
		diag := r.Diagnoses[id]
		ionCell := "clear"
		if diag != nil && diag.Verdict != issue.VerdictNotDetected {
			ionCell = string(diag.Verdict) + ": " + clip(diag.Conclusion, 150)
		}
		var dMsgs []string
		for _, in := range d.Insights {
			if in.Issue == id && (in.Level == drishti.LevelHigh || in.Level == drishti.LevelWarn) {
				dMsgs = append(dMsgs, fmt.Sprintf("[%s] %s", in.Level, clip(in.Message, 130)))
			}
		}
		if ionCell == "clear" && len(dMsgs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s\n", o.paint(ansiBold, issue.Title(id)))
		fmt.Fprintf(&b, "  ION:     %s\n", ionCell)
		if len(dMsgs) == 0 {
			b.WriteString("  Drishti: (silent)\n")
		} else {
			for i, m := range dMsgs {
				if i == 0 {
					fmt.Fprintf(&b, "  Drishti: %s\n", m)
				} else {
					fmt.Fprintf(&b, "           %s\n", m)
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// wrap reflows text to a width with a hanging indent.
func wrap(s string, width int, indent string) string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return ""
	}
	var b strings.Builder
	line := words[0]
	for _, w := range words[1:] {
		if len(line)+1+len(w) > width {
			b.WriteString(line + "\n" + indent)
			line = w
			continue
		}
		line += " " + w
	}
	b.WriteString(line)
	return b.String()
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
