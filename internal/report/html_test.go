package report

import (
	"bytes"
	"strings"
	"testing"

	"ion/internal/darshan"
	"ion/internal/ion"
	"ion/internal/issue"
)

func htmlSample() *ion.Report {
	return &ion.Report{
		Trace: "sample<trace>",
		Header: darshan.Header{
			Exe: "ior -a POSIX & <escape me>", NProcs: 4, RunTime: 1.5,
		},
		Model:   "expertsim",
		Order:   []issue.ID{issue.SmallIO, issue.SharedFile, issue.Metadata},
		Summary: "## Global I/O Diagnosis Summary\nOne issue needs attention.",
		Diagnoses: map[issue.ID]*ion.IssueDiagnosis{
			issue.SmallIO: {
				Issue: issue.SmallIO, Title: issue.Title(issue.SmallIO),
				Steps:      []string{"step with <html> & symbols", "second step"},
				Code:       "import pandas as pd  # <code>",
				Conclusion: "100% small ops & misaligned",
				Verdict:    issue.VerdictDetected,
			},
			issue.SharedFile: {
				Issue: issue.SharedFile, Title: issue.Title(issue.SharedFile),
				Steps:      []string{"checked stripes"},
				Conclusion: "no overlap",
				Verdict:    issue.VerdictMitigated,
			},
			issue.Metadata: {
				Issue: issue.Metadata, Title: issue.Title(issue.Metadata),
				Steps:      []string{"counted opens"},
				Conclusion: "negligible",
				Verdict:    issue.VerdictNotDetected,
			},
		},
	}
}

func TestWriteHTML(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, htmlSample()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"sample&lt;trace&gt;",           // escaping
		"ior -a POSIX &amp; &lt;escape", // escaping in header
		`class="badge detected"`,
		`class="badge mitigated"`,
		`class="badge not-detected"`,
		"step with &lt;html&gt; &amp; symbols",
		"import pandas as pd  # &lt;code&gt;",
		"Global I/O Diagnosis Summary",
		`id="issue-small-io"`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Detected issues open by default; benign ones collapsed.
	if !strings.Contains(page, `<details open id="issue-small-io">`) {
		t.Error("detected modal should be open")
	}
	if strings.Contains(page, `<details open id="issue-metadata">`) {
		t.Error("clear modal should be collapsed")
	}
	// Raw user strings must not appear unescaped.
	if strings.Contains(page, "<escape me>") || strings.Contains(page, "step with <html>") {
		t.Error("unescaped user content leaked into the page")
	}
}

func TestWriteHTMLWithoutSummary(t *testing.T) {
	r := htmlSample()
	r.Summary = ""
	var buf bytes.Buffer
	if err := WriteHTML(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `class="summary"`) {
		t.Error("empty summary should omit the section")
	}
}
