package iosim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func seqWriteOps(rank int, file string, n int, size int64) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, Op{
			Rank: rank, Kind: KindWrite, File: file,
			Offset: int64(i) * size, Size: size, API: APIPOSIX, MemAligned: true,
		})
	}
	return ops
}

func randWriteOps(rank int, file string, n int, size int64, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, n)
	span := int64(n) * size * 4
	for i := 0; i < n; i++ {
		off := (rng.Int63n(span) / size) * size
		ops = append(ops, Op{
			Rank: rank, Kind: KindWrite, File: file,
			Offset: off, Size: size, API: APIPOSIX, MemAligned: true,
		})
	}
	return ops
}

func TestConfigValidate(t *testing.T) {
	good := ExampleConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("example config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumOSTs = 0 },
		func(c *Config) { c.StripeSize = 0 },
		func(c *Config) { c.StripeCount = 0 },
		func(c *Config) { c.StripeCount = c.NumOSTs + 1 },
		func(c *Config) { c.RPCSize = 0 },
		func(c *Config) { c.OSTBandwidth = 0 },
		func(c *Config) { c.MemCopyBW = 0 },
	}
	for i, mut := range cases {
		c := ExampleConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSequentialAggregationBeatsRandom(t *testing.T) {
	const n, size = 512, 4096
	seq := New(ExampleConfig())
	seqRes, err := seq.Run(seqWriteOps(0, "/lustre/f", n, size))
	if err != nil {
		t.Fatal(err)
	}
	rnd := New(ExampleConfig())
	rndRes, err := rnd.Run(randWriteOps(0, "/lustre/f", n, size, 42))
	if err != nil {
		t.Fatal(err)
	}
	seqEnd := seqRes[len(seqRes)-1].End
	rndEnd := rndRes[len(rndRes)-1].End
	if seqEnd*2 > rndEnd {
		t.Errorf("sequential small I/O should be much faster: seq=%.6fs rnd=%.6fs", seqEnd, rndEnd)
	}
	agg := seq.Stats().AggregatedOps
	if agg < n/2 {
		t.Errorf("expected most sequential ops aggregated, got %d/%d", agg, n)
	}
	// Random offsets can collide into a consecutive pair by chance, but
	// aggregation must stay negligible.
	if got := rnd.Stats().AggregatedOps; got > n/20 {
		t.Errorf("random ops should rarely aggregate, got %d/%d", got, n)
	}
}

func TestAggregationDisabled(t *testing.T) {
	cfg := ExampleConfig()
	cfg.Aggregation = false
	cfg.CollectiveBuffering = false
	s := New(cfg)
	if _, err := s.Run(seqWriteOps(0, "/f", 64, 4096)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().AggregatedOps != 0 {
		t.Errorf("aggregation disabled but %d ops aggregated", s.Stats().AggregatedOps)
	}
}

func TestCollectiveBufferingAggregatesStrided(t *testing.T) {
	cfg := ExampleConfig()
	s := New(cfg)
	// Strided (non-consecutive per rank) small collective writes: two-
	// phase I/O should still absorb them.
	var ops []Op
	const ranks, iters, size = 4, 32, 4096
	for i := 0; i < iters; i++ {
		for r := 0; r < ranks; r++ {
			off := int64(i*ranks+r) * size
			ops = append(ops, Op{Rank: r, Kind: KindWrite, File: "/shared",
				Offset: off, Size: size, API: APIMPIIOColl, MemAligned: true})
		}
	}
	res, err := s.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	agg := 0
	for _, r := range res {
		if r.Aggregated {
			agg++
		}
	}
	if agg != len(ops) {
		t.Errorf("collective buffering should aggregate all small collectives: %d/%d", agg, len(ops))
	}
}

func TestLockConflictsOnSharedStripe(t *testing.T) {
	cfg := ExampleConfig()
	cfg.Aggregation = false
	cfg.CollectiveBuffering = false
	s := New(cfg)
	// Two ranks alternately write the same stripe: every write after the
	// first by a different rank conflicts.
	var ops []Op
	for i := 0; i < 10; i++ {
		ops = append(ops, Op{Rank: i % 2, Kind: KindWrite, File: "/shared",
			Offset: int64(i%2) * 4096, Size: 4096, API: APIPOSIX})
	}
	if _, err := s.Run(ops); err != nil {
		t.Fatal(err)
	}
	if s.Stats().LockConflicts == 0 {
		t.Error("expected lock conflicts on interleaved shared-stripe writes")
	}

	// Disjoint stripes: no conflicts.
	s2 := New(cfg)
	var ops2 []Op
	stripe := cfg.StripeSize
	for i := 0; i < 10; i++ {
		r := i % 2
		ops2 = append(ops2, Op{Rank: r, Kind: KindWrite, File: "/shared",
			Offset: int64(r)*stripe*8 + int64(i/2)*4096, Size: 4096, API: APIPOSIX})
	}
	if _, err := s2.Run(ops2); err != nil {
		t.Fatal(err)
	}
	if n := s2.Stats().LockConflicts; n != 0 {
		t.Errorf("disjoint stripes must not conflict, got %d", n)
	}
}

func TestFilePerProcessNoConflicts(t *testing.T) {
	cfg := ExampleConfig()
	cfg.Aggregation = false
	s := New(cfg)
	var ops []Op
	for r := 0; r < 4; r++ {
		for i := 0; i < 16; i++ {
			ops = append(ops, Op{Rank: r, Kind: KindWrite,
				File:   "/f" + string(rune('0'+r)),
				Offset: int64(i) * 4096, Size: 4096, API: APIPOSIX})
		}
	}
	if _, err := s.Run(ops); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats().LockConflicts; n != 0 {
		t.Errorf("file-per-process must not conflict, got %d", n)
	}
}

func TestMetadataSerializesAtMDS(t *testing.T) {
	cfg := ExampleConfig()
	s := New(cfg)
	var ops []Op
	const ranks = 8
	// Distinct files: every first open is a real MDS transaction.
	for r := 0; r < ranks; r++ {
		ops = append(ops, Op{Rank: r, Kind: KindOpen, File: fmt.Sprintf("/f%d", r)})
	}
	res, err := s.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	// All opens start at t=0 on their rank but must be serviced
	// sequentially by the single MDT: the slowest open takes at least
	// ranks * MDSOpCost.
	var worst float64
	for _, r := range res {
		if r.End > worst {
			worst = r.End
		}
	}
	if min := float64(ranks) * cfg.MDSOpCost; worst < min {
		t.Errorf("MDS serialization missing: worst open %.6fs < %.6fs", worst, min)
	}
}

func TestRepeatOpensAreCached(t *testing.T) {
	cfg := ExampleConfig()
	s := New(cfg)
	var ops []Op
	const ranks = 8
	// Same file: only the first open pays the queued MDS cost.
	for r := 0; r < ranks; r++ {
		ops = append(ops, Op{Rank: r, Kind: KindOpen, File: "/shared"})
	}
	res, err := s.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, r := range res {
		if r.End > worst {
			worst = r.End
		}
	}
	if max := 2 * cfg.MDSOpCost; worst > max {
		t.Errorf("repeat opens of one file should be cache hits: worst %.6fs > %.6fs", worst, max)
	}
}

func TestRankOrderPreserved(t *testing.T) {
	s := New(ExampleConfig())
	ops := append(seqWriteOps(0, "/a", 50, 8192), randWriteOps(1, "/a", 50, 8192, 7)...)
	res, err := s.Run(ops)
	if err != nil {
		t.Fatal(err)
	}
	lastEnd := map[int]float64{}
	for i, op := range ops {
		r := res[i]
		if r.End < r.Start {
			t.Fatalf("op %d ends before start", i)
		}
		if r.Start < lastEnd[op.Rank] {
			t.Fatalf("op %d of rank %d starts at %.9f before rank's previous end %.9f",
				i, op.Rank, r.Start, lastEnd[op.Rank])
		}
		lastEnd[op.Rank] = r.End
	}
}

func TestOSTMapping(t *testing.T) {
	cfg := ExampleConfig()
	s := New(cfg)
	if err := s.SetLayout("/f", Layout{StripeSize: 1 << 20, StripeCount: 4, StripeOffset: 2}); err != nil {
		t.Fatal(err)
	}
	l := s.Layout("/f")
	osts, first, last := s.ostsFor(l, 0, 1<<20)
	if first != 0 || last != 0 || len(osts) != 1 || osts[0] != 2 {
		t.Errorf("stripe 0 should map to OST 2: osts=%v first=%d last=%d", osts, first, last)
	}
	// A 4 MiB access spans 4 stripes -> 4 distinct OSTs (2,3,4,5).
	osts, first, last = s.ostsFor(l, 0, 4<<20)
	if len(osts) != 4 || first != 0 || last != 3 {
		t.Errorf("4MiB access should span 4 OSTs, got %v (%d..%d)", osts, first, last)
	}
	// Wrap-around: stripe 4 maps back to OST 2.
	osts, _, _ = s.ostsFor(l, 4<<20, 1024)
	if len(osts) != 1 || osts[0] != 2 {
		t.Errorf("stripe 4 should wrap to OST 2, got %v", osts)
	}
}

func TestSetLayoutRejectsInvalid(t *testing.T) {
	s := New(ExampleConfig())
	if err := s.SetLayout("/f", Layout{StripeSize: 0, StripeCount: 1}); err == nil {
		t.Error("zero stripe size accepted")
	}
	if err := s.SetLayout("/f", Layout{StripeSize: 1 << 20, StripeCount: 99}); err == nil {
		t.Error("stripe count beyond NumOSTs accepted")
	}
}

func TestRunRejectsBadOps(t *testing.T) {
	s := New(ExampleConfig())
	if _, err := s.Run([]Op{{Rank: -1, Kind: KindOpen, File: "/f"}}); err == nil {
		t.Error("negative rank accepted")
	}
	s2 := New(ExampleConfig())
	if _, err := s2.Run([]Op{{Rank: 0, Kind: KindWrite, File: "/f", Offset: -5, Size: 10}}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(ExampleConfig())
	ops := []Op{
		{Rank: 0, Kind: KindOpen, File: "/f"},
		{Rank: 0, Kind: KindWrite, File: "/f", Offset: 0, Size: 1 << 20},
		{Rank: 0, Kind: KindWrite, File: "/f", Offset: 1 << 20, Size: 1 << 20},
		{Rank: 0, Kind: KindClose, File: "/f"},
	}
	if _, err := s.Run(ops); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalOps != 4 || st.DataOps != 2 || st.MetaOps != 2 {
		t.Errorf("op accounting wrong: %+v", st)
	}
	if st.BytesMoved != 2<<20 {
		t.Errorf("bytes moved %d", st.BytesMoved)
	}
	if st.Makespan <= 0 {
		t.Error("makespan not set")
	}
	if st.RankTime[0] <= 0 {
		t.Error("rank time not accumulated")
	}
}

func TestLargeWritesNotPenalizedBySeek(t *testing.T) {
	// Large transfers dominate their cost by bandwidth; aggregated vs
	// direct paths should both clear 1 MiB quickly.
	s := New(ExampleConfig())
	res, err := s.Run(seqWriteOps(0, "/big", 64, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	end := res[len(res)-1].End
	// 64 MiB over >=1 GiB/s with striping: well under a second.
	if end > 1.0 {
		t.Errorf("large sequential writes too slow: %.3fs", end)
	}
}

func TestKindAndAPIStrings(t *testing.T) {
	if KindRead.String() != "read" || KindFsync.String() != "fsync" {
		t.Error("kind strings wrong")
	}
	if APIMPIIOColl.String() != "mpiio-coll" || APIPOSIX.String() != "posix" {
		t.Error("api strings wrong")
	}
	if Kind(99).String() == "" || API(99).String() == "" {
		t.Error("unknown values should stringify")
	}
}

func TestOSTBusyAccounting(t *testing.T) {
	cfg := ExampleConfig()
	cfg.Aggregation = false
	s := New(cfg)
	// One file striped from OST 0 over 4 OSTs; 1 MiB writes hit one OST
	// each, round-robin over the stripe set.
	if err := s.SetLayout("/f", Layout{StripeSize: 1 << 20, StripeCount: 4, StripeOffset: 0}); err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for i := 0; i < 16; i++ {
		ops = append(ops, Op{Rank: 0, Kind: KindWrite, File: "/f",
			Offset: int64(i) << 20, Size: 1 << 20, MemAligned: true})
	}
	if _, err := s.Run(ops); err != nil {
		t.Fatal(err)
	}
	busy := s.Stats().OSTBusy
	if len(busy) != cfg.NumOSTs {
		t.Fatalf("OSTBusy len = %d", len(busy))
	}
	for o := 0; o < 4; o++ {
		if busy[o] <= 0 {
			t.Errorf("OST %d unused despite striping", o)
		}
	}
	for o := 4; o < cfg.NumOSTs; o++ {
		if busy[o] != 0 {
			t.Errorf("OST %d busy but not in the stripe set", o)
		}
	}
	// Round-robin: the four striped OSTs should carry equal load.
	if busy[0] != busy[1] || busy[1] != busy[2] || busy[2] != busy[3] {
		t.Errorf("stripe set load uneven: %v", busy[:4])
	}
}

func TestSimInvariantsProperty(t *testing.T) {
	// Random op streams: results must preserve per-rank ordering,
	// non-negative durations, byte accounting, and makespan dominance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := ExampleConfig()
		cfg.Aggregation = rng.Intn(2) == 0
		s := New(cfg)
		nops := 50 + rng.Intn(200)
		var ops []Op
		var bytes int64
		for i := 0; i < nops; i++ {
			kind := []Kind{KindOpen, KindClose, KindRead, KindWrite, KindStat, KindSeek, KindFsync}[rng.Intn(7)]
			op := Op{
				Rank: rng.Intn(6),
				Kind: kind,
				File: fmt.Sprintf("/f%d", rng.Intn(3)),
				API:  API(rng.Intn(4)),
			}
			if kind == KindRead || kind == KindWrite {
				op.Offset = rng.Int63n(1 << 28)
				op.Size = 1 + rng.Int63n(1<<22)
				bytes += op.Size
			}
			ops = append(ops, op)
		}
		res, err := s.Run(ops)
		if err != nil {
			return false
		}
		lastEnd := map[int]float64{}
		var worst float64
		for i, r := range res {
			if r.End < r.Start || r.Start < lastEnd[ops[i].Rank] {
				return false
			}
			lastEnd[ops[i].Rank] = r.End
			if r.End > worst {
				worst = r.End
			}
		}
		st := s.Stats()
		if st.BytesMoved != bytes {
			return false
		}
		if st.TotalOps != nops {
			return false
		}
		// Makespan equals the max end time.
		return st.Makespan == worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
