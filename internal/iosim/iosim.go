// Package iosim is a discrete-event simulator of a Lustre-like parallel
// file system. It executes per-rank streams of I/O operations against a
// model with object storage targets (OSTs), file striping, bulk-RPC
// aggregation of consecutive accesses, extent locks on shared-file
// stripes, and a metadata server — and assigns each operation a start
// and end timestamp.
//
// The simulator stands in for the HPC testbed that produced the paper's
// Darshan traces: it makes injected pathologies (small random I/O,
// shared-file lock contention, rank load imbalance, metadata storms)
// manifest in realistic per-operation timings, which the recorder then
// folds into Darshan counters and DXT events.
package iosim

import (
	"container/heap"
	"fmt"
	"sort"
)

// rankClock pairs a rank with its simulated clock for the event loop.
type rankClock struct {
	rank  int
	clock float64
}

// rankHeap is a min-heap of rank clocks ordered by (clock, rank).
type rankHeap []rankClock

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].rank < h[j].rank
}
func (h rankHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x interface{}) { *h = append(*h, x.(rankClock)) }
func (h *rankHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Kind enumerates the operation types the simulator understands.
type Kind int

// Operation kinds.
const (
	KindOpen Kind = iota
	KindClose
	KindRead
	KindWrite
	KindStat
	KindSeek
	KindFsync
)

// String returns the lower-case operation name.
func (k Kind) String() string {
	switch k {
	case KindOpen:
		return "open"
	case KindClose:
		return "close"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindStat:
		return "stat"
	case KindSeek:
		return "seek"
	case KindFsync:
		return "fsync"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// API identifies the I/O interface an operation was issued through.
// It does not change simulator physics directly, but collective MPI-IO
// accesses are eligible for two-phase aggregation, and the recorder
// uses the API to populate the right Darshan module.
type API int

// I/O interfaces.
const (
	APIPOSIX API = iota
	APISTDIO
	APIMPIIOIndep
	APIMPIIOColl
)

// String returns a short interface name.
func (a API) String() string {
	switch a {
	case APIPOSIX:
		return "posix"
	case APISTDIO:
		return "stdio"
	case APIMPIIOIndep:
		return "mpiio-indep"
	case APIMPIIOColl:
		return "mpiio-coll"
	}
	return fmt.Sprintf("api(%d)", int(a))
}

// Op is one I/O operation issued by one rank. Ranks execute their ops
// in slice order; the simulator interleaves ranks by simulated time.
type Op struct {
	Rank   int
	Kind   Kind
	File   string
	Offset int64
	Size   int64
	API    API
	// MemAligned records whether the user buffer met the memory
	// alignment requirement; it only affects Darshan counters.
	MemAligned bool
}

// Result carries the simulated timing and placement of one operation,
// parallel to the input op slice.
type Result struct {
	Start        float64 // seconds since job start
	End          float64 // seconds since job start
	OSTs         []int   // OSTs that served the data (empty for metadata ops)
	Aggregated   bool    // absorbed into a client-side bulk RPC
	LockConflict bool    // required an extent-lock revocation
}

// Duration returns the simulated service time of the operation.
func (r Result) Duration() float64 { return r.End - r.Start }

// Layout is the Lustre striping of one file.
type Layout struct {
	StripeSize   int64 // bytes per stripe unit
	StripeCount  int   // number of OSTs the file spans
	StripeOffset int   // index of the first OST
}

// Config parameterizes the simulated system. ExampleConfig returns a
// small but realistic setup.
type Config struct {
	NumOSTs       int     // object storage targets in the file system
	NumMDTs       int     // metadata targets
	StripeSize    int64   // default stripe size for new files (bytes)
	StripeCount   int     // default stripe count for new files
	RPCSize       int64   // maximum bulk RPC transfer (bytes), e.g. 4 MiB
	OSTBandwidth  float64 // bytes/second each OST sustains
	OSTLatency    float64 // seconds of fixed per-RPC service overhead
	NetLatency    float64 // seconds of client<->server round trip
	SeekPenalty   float64 // extra seconds for a non-sequential access at the OST
	MDSOpCost     float64 // seconds per metadata operation at the MDS
	LockCost      float64 // seconds to revoke+grant a conflicting extent lock
	MemCopyBW     float64 // bytes/second for client cache copies
	MemAlignment  int64   // required buffer alignment (bytes)
	FileAlignment int64   // file offset alignment boundary (bytes); 0 → stripe size
	// Aggregation enables client-side coalescing of consecutive
	// same-kind accesses into bulk RPCs (write-back cache / read-ahead).
	Aggregation bool
	// CollectiveBuffering enables two-phase I/O for APIMPIIOColl
	// accesses: small collective accesses are aggregated regardless of
	// consecutiveness, emulating ROMIO collective buffering.
	CollectiveBuffering bool
}

// ExampleConfig returns the configuration used throughout the
// evaluation: 8 OSTs, 1 MiB stripes, 4 MiB RPCs — the system the
// paper's issue contexts describe.
func ExampleConfig() Config {
	return Config{
		NumOSTs:             8,
		NumMDTs:             1,
		StripeSize:          1 << 20,
		StripeCount:         4,
		RPCSize:             4 << 20,
		OSTBandwidth:        1 << 30, // 1 GiB/s per OST
		OSTLatency:          50e-6,
		NetLatency:          30e-6,
		SeekPenalty:         120e-6,
		MDSOpCost:           200e-6,
		LockCost:            500e-6,
		MemCopyBW:           8 << 30,
		MemAlignment:        8,
		FileAlignment:       0,
		Aggregation:         true,
		CollectiveBuffering: true,
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumOSTs <= 0:
		return fmt.Errorf("iosim: NumOSTs must be positive, got %d", c.NumOSTs)
	case c.StripeSize <= 0:
		return fmt.Errorf("iosim: StripeSize must be positive, got %d", c.StripeSize)
	case c.StripeCount <= 0 || c.StripeCount > c.NumOSTs:
		return fmt.Errorf("iosim: StripeCount %d must be in [1,%d]", c.StripeCount, c.NumOSTs)
	case c.RPCSize <= 0:
		return fmt.Errorf("iosim: RPCSize must be positive, got %d", c.RPCSize)
	case c.OSTBandwidth <= 0:
		return fmt.Errorf("iosim: OSTBandwidth must be positive")
	case c.MemCopyBW <= 0:
		return fmt.Errorf("iosim: MemCopyBW must be positive")
	}
	return nil
}

// fileState tracks simulator state for one file.
type fileState struct {
	layout Layout
	// metaCached is set after the first open/stat: later lookups are
	// cache hits that bypass the MDS queue.
	metaCached bool
	// stripeOwner maps stripe index -> rank holding the extent lock.
	stripeOwner map[int64]int
	// perRank tracks each rank's last access end offset and kind, for
	// consecutiveness detection and aggregation accounting.
	perRank map[int]*rankFileState
}

type rankFileState struct {
	lastEnd   int64 // file offset one past the previous access
	lastKind  Kind
	hasPrev   bool
	aggBytes  int64 // bytes accumulated in the current bulk RPC window
	aggEvents int   // events absorbed in the current window
}

// Stats aggregates simulator-level outcomes of a run.
type Stats struct {
	TotalOps      int
	DataOps       int
	MetaOps       int
	AggregatedOps int
	LockConflicts int
	BulkRPCs      int
	BytesMoved    int64
	// OSTBusy accumulates service seconds per OST index.
	OSTBusy []float64
	// Makespan is the simulated completion time of the slowest rank.
	Makespan float64
	// RankTime maps rank -> total busy seconds.
	RankTime map[int]float64
}

// Sim is a single-use simulator instance. Create with New, configure
// layouts with SetLayout, then call Run once.
type Sim struct {
	cfg     Config
	files   map[string]*fileState
	ostFree []float64 // next free time per OST
	mdsFree []float64 // next free time per MDT
	stats   Stats
}

// New returns a simulator for the given configuration.
// It panics if the configuration is invalid; use Config.Validate to
// check untrusted configurations first.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.FileAlignment == 0 {
		cfg.FileAlignment = cfg.StripeSize
	}
	nm := cfg.NumMDTs
	if nm <= 0 {
		nm = 1
	}
	return &Sim{
		cfg:     cfg,
		files:   make(map[string]*fileState),
		ostFree: make([]float64, cfg.NumOSTs),
		mdsFree: make([]float64, nm),
		stats: Stats{
			RankTime: make(map[int]float64),
			OSTBusy:  make([]float64, cfg.NumOSTs),
		},
	}
}

// Config returns the (normalized) configuration in use.
func (s *Sim) Config() Config { return s.cfg }

// SetLayout overrides the striping of a file before the run. Files
// without an explicit layout get the config defaults on first touch.
func (s *Sim) SetLayout(file string, l Layout) error {
	if l.StripeSize <= 0 || l.StripeCount <= 0 || l.StripeCount > s.cfg.NumOSTs {
		return fmt.Errorf("iosim: invalid layout %+v for %s", l, file)
	}
	st := s.file(file)
	st.layout = l
	return nil
}

// Layout returns the effective layout of a file.
func (s *Sim) Layout(file string) Layout { return s.file(file).layout }

func (s *Sim) file(name string) *fileState {
	st, ok := s.files[name]
	if !ok {
		st = &fileState{
			layout: Layout{
				StripeSize:  s.cfg.StripeSize,
				StripeCount: s.cfg.StripeCount,
				// Deterministic placement spreads files across OSTs.
				StripeOffset: len(s.files) % s.cfg.NumOSTs,
			},
			stripeOwner: make(map[int64]int),
			perRank:     make(map[int]*rankFileState),
		}
		s.files[name] = st
	}
	return st
}

func (st *fileState) rank(r int) *rankFileState {
	rs, ok := st.perRank[r]
	if !ok {
		rs = &rankFileState{}
		st.perRank[r] = rs
	}
	return rs
}

// ostsFor returns the OST indices serving the byte range, and the first
// and last stripe index.
func (s *Sim) ostsFor(l Layout, offset, size int64) (osts []int, first, last int64) {
	if size <= 0 {
		size = 1
	}
	first = offset / l.StripeSize
	last = (offset + size - 1) / l.StripeSize
	seen := map[int]bool{}
	for st := first; st <= last; st++ {
		ost := (l.StripeOffset + int(st%int64(l.StripeCount))) % s.cfg.NumOSTs
		if !seen[ost] {
			seen[ost] = true
			osts = append(osts, ost)
		}
	}
	sort.Ints(osts)
	return osts, first, last
}

// Run executes the operation stream and returns per-op results in the
// same order. Each rank's ops run in stream order; ranks advance
// concurrently in simulated time. Run may be called once per Sim.
func (s *Sim) Run(ops []Op) ([]Result, error) {
	results := make([]Result, len(ops))
	// Partition into per-rank queues, keeping global indices.
	queues := map[int][]int{}
	var ranks []int
	for i, op := range ops {
		if op.Rank < 0 {
			return nil, fmt.Errorf("iosim: op %d has negative rank %d", i, op.Rank)
		}
		if op.Size < 0 || op.Offset < 0 {
			return nil, fmt.Errorf("iosim: op %d has negative offset/size", i)
		}
		if _, ok := queues[op.Rank]; !ok {
			ranks = append(ranks, op.Rank)
		}
		queues[op.Rank] = append(queues[op.Rank], i)
	}
	sort.Ints(ranks)
	next := map[int]int{}
	// Event loop: always advance the rank with the smallest clock so
	// shared-resource contention is resolved in global time order. A
	// min-heap keyed by (clock, rank) keeps this O(n log r).
	h := &rankHeap{}
	heap.Init(h)
	for _, r := range ranks {
		heap.Push(h, rankClock{rank: r, clock: 0})
	}
	for h.Len() > 0 {
		rc := heap.Pop(h).(rankClock)
		r := rc.rank
		idx := queues[r][next[r]]
		next[r]++
		res := s.execute(ops[idx], rc.clock)
		results[idx] = res
		s.stats.RankTime[r] += res.Duration()
		if res.End > s.stats.Makespan {
			s.stats.Makespan = res.End
		}
		if next[r] < len(queues[r]) {
			heap.Push(h, rankClock{rank: r, clock: res.End})
		}
	}
	s.stats.TotalOps = len(ops)
	return results, nil
}

// execute simulates a single operation starting no earlier than now.
func (s *Sim) execute(op Op, now float64) Result {
	switch op.Kind {
	case KindRead, KindWrite:
		return s.executeData(op, now)
	default:
		return s.executeMeta(op, now)
	}
}

func (s *Sim) executeMeta(op Op, now float64) Result {
	s.stats.MetaOps++
	switch op.Kind {
	case KindSeek:
		// Seeks are client-local bookkeeping.
		end := now + 1e-7
		return Result{Start: now, End: end}
	case KindFsync:
		// Fsync drains the client cache: bill one round trip per OST of
		// the file plus fixed commit latency.
		st := s.file(op.File)
		cost := s.cfg.NetLatency + 2*s.cfg.OSTLatency*float64(st.layout.StripeCount)
		return Result{Start: now, End: now + cost}
	default: // open, close, stat hit the MDS
		st := s.file(op.File)
		// Repeat lookups of an already-resolved file are served from
		// client/MDS caches without occupying the metadata server —
		// only the first open/stat of a file pays the full queued cost.
		if st.metaCached {
			return Result{Start: now, End: now + s.cfg.NetLatency + s.cfg.MDSOpCost/10}
		}
		st.metaCached = true
		mdt := 0
		if len(s.mdsFree) > 1 {
			mdt = int(hashString(op.File) % uint64(len(s.mdsFree)))
		}
		start := now
		if s.mdsFree[mdt] > start {
			start = s.mdsFree[mdt]
		}
		end := start + s.cfg.MDSOpCost
		s.mdsFree[mdt] = end
		// The client observes queueing as latency from `now`.
		return Result{Start: now, End: end + s.cfg.NetLatency}
	}
}

func (s *Sim) executeData(op Op, now float64) Result {
	s.stats.DataOps++
	s.stats.BytesMoved += op.Size
	st := s.file(op.File)
	rs := st.rank(op.Rank)
	osts, firstStripe, lastStripe := s.ostsFor(st.layout, op.Offset, op.Size)

	consecutive := rs.hasPrev && rs.lastKind == op.Kind && rs.lastEnd == op.Offset
	aggregatable := s.cfg.Aggregation && consecutive && op.Size < s.cfg.RPCSize &&
		rs.aggBytes+op.Size <= s.cfg.RPCSize
	if s.cfg.CollectiveBuffering && op.API == APIMPIIOColl && op.Size < s.cfg.RPCSize {
		// Two-phase I/O coalesces small collective accesses regardless
		// of per-rank consecutiveness.
		aggregatable = true
	}

	var end float64
	res := Result{Start: now, OSTs: osts}
	if aggregatable {
		// Absorbed by the client cache: a memcpy now, with the bulk RPC
		// cost amortized across the window. We bill the proportional
		// share of the eventual RPC so long runs of aggregated ops still
		// account for wire time.
		rs.aggBytes += op.Size
		rs.aggEvents++
		if rs.aggBytes >= s.cfg.RPCSize {
			s.flushWindow(rs)
		}
		share := float64(op.Size) / float64(s.cfg.RPCSize)
		cost := float64(op.Size)/s.cfg.MemCopyBW +
			share*(s.cfg.NetLatency+s.cfg.OSTLatency) +
			float64(op.Size)/(s.cfg.OSTBandwidth*float64(len(osts)))
		for _, o := range osts {
			s.stats.OSTBusy[o] += float64(op.Size) / (s.cfg.OSTBandwidth * float64(len(osts)))
		}
		end = now + cost
		res.Aggregated = true
		s.stats.AggregatedOps++
	} else {
		s.flushWindow(rs)
		// Direct RPC: pay latency, possible seek penalty, lock
		// acquisition, and serialized OST bandwidth.
		cost := s.cfg.NetLatency + s.cfg.OSTLatency
		if rs.hasPrev && !consecutive {
			cost += s.cfg.SeekPenalty
		}
		if op.Kind == KindWrite {
			if s.lockConflict(st, op.Rank, firstStripe, lastStripe) {
				cost += s.cfg.LockCost
				res.LockConflict = true
				s.stats.LockConflicts++
			}
		}
		// Busy OSTs delay service.
		start := now
		for _, o := range osts {
			if s.ostFree[o] > start {
				start = s.ostFree[o]
			}
		}
		xfer := float64(op.Size) / (s.cfg.OSTBandwidth * float64(len(osts)))
		end = start + cost + xfer
		for _, o := range osts {
			s.ostFree[o] = end
			s.stats.OSTBusy[o] += xfer + s.cfg.OSTLatency
		}
		s.stats.BulkRPCs++
	}
	// Claim stripe ownership for writes.
	if op.Kind == KindWrite {
		for stp := firstStripe; stp <= lastStripe; stp++ {
			st.stripeOwner[stp] = op.Rank
		}
	}
	rs.hasPrev = true
	rs.lastKind = op.Kind
	rs.lastEnd = op.Offset + op.Size
	res.End = end
	return res
}

// lockConflict reports whether rank must revoke another rank's extent
// lock to write stripes [first,last].
func (s *Sim) lockConflict(st *fileState, rank int, first, last int64) bool {
	for stp := first; stp <= last; stp++ {
		if owner, ok := st.stripeOwner[stp]; ok && owner != rank {
			return true
		}
	}
	return false
}

func (s *Sim) flushWindow(rs *rankFileState) {
	if rs.aggEvents > 0 {
		s.stats.BulkRPCs++
	}
	rs.aggBytes = 0
	rs.aggEvents = 0
}

// Stats returns aggregate statistics for the completed run.
func (s *Sim) Stats() Stats { return s.stats }

// hashString is FNV-1a, used for deterministic MDT placement.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
