package semcache

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Defaults for Options left at zero.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 16 << 20
)

// Entry is one completed diagnosis in the store.
type Entry struct {
	// SigVersion records the signature schema the vector was computed
	// under; entries from older schemas are dropped on load.
	SigVersion int `json:"sig_version"`
	// JobID is the job whose report this entry points at.
	JobID string `json:"job_id"`
	// TraceHash is the hex SHA-256 of the trace bytes (the exact-dedup
	// key); a re-run of the same bytes replaces its prior entry.
	TraceHash string `json:"trace_hash"`
	// Trace is the display name of the diagnosed trace.
	Trace string `json:"trace"`
	// Signature is the quantized feature vector.
	Signature Signature `json:"signature"`
	// Issues lists the detected issue ids of the final report.
	Issues []string `json:"issues,omitempty"`
	// Outcome summarizes how the diagnosis was produced ("full" or
	// "conditioned" — semantic hits are never re-indexed).
	Outcome string `json:"outcome,omitempty"`
	// CreatedAt is when the diagnosis completed.
	CreatedAt time.Time `json:"created_at"`

	// deleted marks a tombstone line in the journal.
	Deleted bool `json:"deleted,omitempty"`
}

// size estimates the retained bytes of an entry (also its journal-line
// cost), used for the byte bound.
func (e Entry) size() int64 {
	n := int64(len(e.JobID)+len(e.TraceHash)+len(e.Trace)+len(e.Outcome)) + 160
	n += int64(len(e.Signature)) * 24
	for _, is := range e.Issues {
		n += int64(len(is)) + 16
	}
	return n
}

// Match is one nearest-neighbor result.
type Match struct {
	Entry      Entry
	Similarity float64
	// Deltas names the signature dimensions where the query differs
	// from the neighbor (query minus neighbor).
	Deltas map[string]float64
}

// Options configures a Store.
type Options struct {
	// Path is the JSON-lines journal file; required.
	Path string
	// MaxEntries bounds the entry count (default 4096; negative
	// disables the count bound).
	MaxEntries int
	// MaxBytes bounds the estimated retained bytes (default 16 MiB;
	// negative disables the byte bound).
	MaxBytes int64
	// QuantStep overrides the signature quantization grid (default
	// DefaultQuantStep).
	QuantStep float64
}

// Stats is a counters snapshot for /api/semcache and /metrics.
type Stats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Lookups     int64 `json:"lookups"`
	Hits        int64 `json:"hits"`
	Conditioned int64 `json:"conditioned"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// Store is the persistent signature store: an in-memory LRU over
// entries, journaled as JSON lines so a restarted service reloads its
// accumulated diagnoses. All methods are safe for concurrent use and
// safe on a nil receiver (semantic cache disabled).
type Store struct {
	mu    sync.Mutex
	opts  Options
	file  *os.File
	byJob map[string]*list.Element
	order *list.List // front = most recently used
	size  int64
	// lines counts journal records written since the last compaction;
	// when it exceeds twice the live entry count the journal is
	// rewritten in place.
	lines int

	// weights holds the per-dimension trust learned from shadow-rerun
	// verdict flips: dimensions whose deltas participated in a flipped
	// reuse decay toward weightFloor, growing the similarity penalty
	// for future divergence along them. In-memory only; a restart
	// resets trust to 1.
	weights []float64

	lookups, hits, conditioned, misses, evictions int64
}

// Flip-feedback tuning: each flip multiplies the implicated dimension
// weights by weightDecay, never below weightFloor.
const (
	weightDecay = 0.8
	weightFloor = 0.2
)

type storeEntry struct {
	e    Entry
	size int64
}

// Open loads (or creates) the store at opts.Path, replaying the
// journal: later records supersede earlier ones with the same job id
// or trace hash, tombstones delete, and the count/byte bounds are
// enforced oldest-first.
func Open(opts Options) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("semcache: Options.Path is required")
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.QuantStep <= 0 {
		opts.QuantStep = DefaultQuantStep
	}
	if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
		return nil, fmt.Errorf("semcache: %w", err)
	}

	st := &Store{
		opts:    opts,
		byJob:   map[string]*list.Element{},
		order:   list.New(),
		weights: newWeights(),
	}
	if err := st.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("semcache: %w", err)
	}
	st.file = f
	return st, nil
}

// replay loads the journal into memory. Unreadable lines are skipped
// rather than failing the open: a torn final write from a crash must
// not take the whole cache down.
func (st *Store) replay() error {
	f, err := os.Open(st.opts.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("semcache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		st.lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.Deleted {
			st.dropLocked(e.JobID)
			continue
		}
		if e.SigVersion != Version || e.JobID == "" || len(e.Signature) == 0 {
			continue
		}
		st.insertLocked(e)
	}
	// Scanner errors (oversized line at the tail) degrade to a partial
	// load, same policy as unreadable lines.
	return nil
}

// insertLocked adds or replaces an entry in memory and applies the
// bounds. Caller holds st.mu (or is single-threaded during replay).
func (st *Store) insertLocked(e Entry) {
	// A re-run of the same trace bytes (or a rewrite of the same job)
	// replaces the prior entry instead of duplicating the neighborhood.
	if el, ok := st.byJob[e.JobID]; ok {
		st.removeLocked(el)
	}
	for el := st.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*storeEntry).e.TraceHash == e.TraceHash && e.TraceHash != "" {
			st.removeLocked(el)
			break
		}
	}
	se := &storeEntry{e: e, size: e.size()}
	st.byJob[e.JobID] = st.order.PushFront(se)
	st.size += se.size
	st.evictLocked()
}

func (st *Store) removeLocked(el *list.Element) {
	se := el.Value.(*storeEntry)
	st.order.Remove(el)
	delete(st.byJob, se.e.JobID)
	st.size -= se.size
}

func (st *Store) dropLocked(jobID string) {
	if el, ok := st.byJob[jobID]; ok {
		st.removeLocked(el)
	}
}

// evictLocked drops least-recently-used entries until both bounds hold.
func (st *Store) evictLocked() {
	for (st.opts.MaxEntries > 0 && st.order.Len() > st.opts.MaxEntries) ||
		(st.opts.MaxBytes > 0 && st.size > st.opts.MaxBytes) {
		el := st.order.Back()
		if el == nil {
			return
		}
		st.removeLocked(el)
		st.evictions++
	}
}

// Put indexes a completed diagnosis: the signature is quantized, the
// entry journaled, and the bounds enforced. Evictions are not
// journaled individually; bounds re-apply on the next load.
func (st *Store) Put(e Entry) error {
	if st == nil {
		return nil
	}
	e.SigVersion = Version
	e.Signature = e.Signature.Quantize(st.opts.QuantStep)
	if e.JobID == "" || len(e.Signature) == 0 {
		return fmt.Errorf("semcache: entry needs a job id and a signature")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("semcache: %w", err)
	}
	line = append(line, '\n')

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("semcache: journaling entry: %w", err)
		}
		st.lines++
	}
	st.insertLocked(e)
	st.compactLocked()
	return nil
}

// Delete tombstones an entry (e.g. its job was deleted or its report
// turned out bad) so it stops answering lookups and stays gone after a
// restart.
func (st *Store) Delete(jobID string) error {
	if st == nil || jobID == "" {
		return nil
	}
	line, err := json.Marshal(Entry{JobID: jobID, Deleted: true})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dropLocked(jobID)
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("semcache: journaling tombstone: %w", err)
		}
		st.lines++
	}
	st.compactLocked()
	return nil
}

// compactLocked rewrites the journal when superseded/tombstoned lines
// outnumber live entries, via temp file + rename so a crash mid-compact
// leaves the old journal intact.
func (st *Store) compactLocked() {
	if st.file == nil || st.lines <= 2*st.order.Len()+16 {
		return
	}
	tmp := st.opts.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	n := 0
	// Oldest first, so replay rebuilds the same recency order.
	for el := st.order.Back(); el != nil; el = el.Prev() {
		line, err := json.Marshal(el.Value.(*storeEntry).e)
		if err != nil {
			continue
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, st.opts.Path); err != nil {
		os.Remove(tmp)
		return
	}
	old := st.file
	nf, err := os.OpenFile(st.opts.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep appending to the (renamed-over) old handle; the next
		// open replays the compacted file plus nothing, which only
		// loses post-compaction writes on this degenerate path.
		return
	}
	old.Close()
	st.file = nf
	st.lines = n
}

// Lookup quantizes the query signature and returns the most similar
// entry. The boolean is false when the store is empty. A successful
// match refreshes the neighbor's recency. Lookup itself only counts a
// lookup; call Note with the policy outcome so hit/miss counters
// reflect what the caller actually did with the match.
//
// Similarity is cosine minus a trust penalty: divergence along
// dimensions that FlipFeedback has down-weighted subtracts
// (1-weight)·|Δ| per dimension, pushing flip-prone matches below the
// reuse thresholds.
func (st *Store) Lookup(sig Signature) (Match, bool) {
	if st == nil {
		return Match{}, false
	}
	q := sig.Quantize(st.opts.QuantStep)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lookups++
	var (
		best    *list.Element
		bestSim = -1.0
	)
	for el := st.order.Front(); el != nil; el = el.Next() {
		if sim := st.similarityLocked(q, el.Value.(*storeEntry).e.Signature); sim > bestSim {
			bestSim, best = sim, el
		}
	}
	if best == nil {
		return Match{}, false
	}
	st.order.MoveToFront(best)
	e := best.Value.(*storeEntry).e
	return Match{
		Entry:      e,
		Similarity: bestSim,
		Deltas:     Deltas(q, e.Signature),
	}, true
}

// Outcome labels for Note.
const (
	OutcomeHit         = "hit"
	OutcomeConditioned = "conditioned"
	OutcomeMiss        = "miss"
)

// Note records what the reuse policy did with a lookup, so the
// hit/conditioned/miss counters describe policy outcomes rather than
// raw similarity scores.
func (st *Store) Note(outcome string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	switch outcome {
	case OutcomeHit:
		st.hits++
	case OutcomeConditioned:
		st.conditioned++
	case OutcomeMiss:
		st.misses++
	}
}

func newWeights() []float64 {
	w := make([]float64, len(dimensions))
	for i := range w {
		w[i] = 1
	}
	return w
}

// similarityLocked scores a candidate: cosine similarity minus the
// per-dimension trust penalty. Caller holds st.mu.
func (st *Store) similarityLocked(q, e Signature) float64 {
	sim := Cosine(q, e)
	n := len(q)
	if len(e) < n {
		n = len(e)
	}
	if len(st.weights) < n {
		n = len(st.weights)
	}
	for i := 0; i < n; i++ {
		if w := st.weights[i]; w < 1 {
			d := q[i] - e[i]
			if d < 0 {
				d = -d
			}
			sim -= (1 - w) * d
		}
	}
	return clamp01(sim)
}

// FlipFeedback reports that a reuse decision whose query/neighbor
// deltas are given produced a verdict flip under a shadow re-run. The
// dimensions that differed are down-weighted so future matches that
// diverge along them score lower (ROADMAP item 3 follow-up: learning
// per-dimension weights from verdict-flip feedback).
func (st *Store) FlipFeedback(deltas map[string]float64) {
	if st == nil || len(deltas) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, name := range dimensions {
		if i >= len(st.weights) {
			break
		}
		if d, ok := deltas[name]; ok && d != 0 {
			if w := st.weights[i] * weightDecay; w > weightFloor {
				st.weights[i] = w
			} else {
				st.weights[i] = weightFloor
			}
		}
	}
}

// DimensionWeights returns the current per-dimension trust weights by
// name (1 = fully trusted, lower = flip-prone).
func (st *Store) DimensionWeights() map[string]float64 {
	out := make(map[string]float64, len(dimensions))
	if st == nil {
		for _, name := range dimensions {
			out[name] = 1
		}
		return out
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, name := range dimensions {
		if i < len(st.weights) {
			out[name] = st.weights[i]
		}
	}
	return out
}

// QuantStep returns the quantization grid in effect.
func (st *Store) QuantStep() float64 {
	if st == nil {
		return DefaultQuantStep
	}
	return st.opts.QuantStep
}

// Len returns the number of live entries.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// Bytes returns the estimated retained bytes.
func (st *Store) Bytes() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.size
}

// Stats returns a counters snapshot.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Entries:     st.order.Len(),
		Bytes:       st.size,
		Lookups:     st.lookups,
		Hits:        st.hits,
		Conditioned: st.conditioned,
		Misses:      st.misses,
		Evictions:   st.evictions,
	}
}

// Entries returns a snapshot of the live entries, most recent first by
// creation time (the /api/semcache listing order).
func (st *Store) Entries() []Entry {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]Entry, 0, st.order.Len())
	for el := st.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).e)
	}
	st.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.After(out[j].CreatedAt)
		}
		return out[i].JobID < out[j].JobID
	})
	return out
}

// Close flushes and closes the journal.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file == nil {
		return nil
	}
	err := st.file.Close()
	st.file = nil
	return err
}
