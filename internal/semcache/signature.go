// Package semcache implements the semantic diagnosis cache: a
// fixed-length, scale-normalized signature vector computed from a
// trace's extracted counter tables, and a persistent nearest-neighbor
// store over the signatures of completed diagnoses. Near-duplicate
// workloads — the same application at a different scale or timestep —
// land in the same signature neighborhood even though their trace
// bytes (and content hashes) differ, so the job service can reuse or
// condition on a prior diagnosis instead of paying full LLM fan-out.
package semcache

import (
	"math"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/table"
)

// Version tags persisted signatures; bump it whenever the dimension
// list or a formula changes so stale entries are dropped on load
// instead of matching against incomparable vectors.
const Version = 1

// DefaultQuantStep is the per-dimension quantization grid. Every
// dimension is a ratio in [0, 1]; snapping to a 1/32 grid absorbs
// run-to-run jitter (a few extra metadata calls, slightly different
// byte totals) without collapsing genuinely different workloads.
const DefaultQuantStep = 1.0 / 32

// dimensions names each signature slot, index-aligned with the vector
// Extract returns. The names surface in per-dimension provenance
// deltas on reused jobs.
var dimensions = []string{
	"read_op_share",         // reads / (reads+writes), POSIX+STDIO ops
	"small_op_share",        // POSIX accesses under 1 MiB / all sized accesses
	"tiny_op_share",         // POSIX accesses under 100 KiB / all sized accesses
	"seq_share",             // sequential reads+writes / ops
	"consec_share",          // consecutive reads+writes / ops
	"rw_switch_share",       // read/write switches / ops
	"file_misaligned_share", // file-misaligned accesses / ops
	"mem_misaligned_share",  // memory-misaligned accesses / ops
	"metadata_share",        // metadata ops / (metadata + data ops)
	"shared_file_share",     // files accessed by >1 rank / files
	"rank_imbalance",        // (slowest-fastest rank bytes) / slowest
	"collective_share",      // collective MPI-IO ops / (collective+independent)
	"mpiio_share",           // MPI-IO data ops / all data ops
	"stdio_share",           // STDIO data ops / all data ops
	"xfer_scale",            // log2(1+mean transfer bytes) / 30, clamped
	"rw_mix_share",          // files both read and written / files
}

// Dimensions returns the signature dimension names, index-aligned with
// the vectors Extract produces.
func Dimensions() []string { return append([]string(nil), dimensions...) }

// Signature is one feature vector. All dimensions are scale-normalized
// ratios in [0, 1], so traces from 8 ranks and 8000 ranks of the same
// workload shape project to nearby points.
type Signature []float64

// Extract projects an extraction output onto the signature space. It
// is best-effort: missing tables or columns contribute zeros rather
// than errors, so every successfully extracted trace has a signature.
func Extract(out *extractor.Output) Signature {
	sig := make(Signature, len(dimensions))
	if out == nil {
		return sig
	}
	posix := out.Table(extractor.TablePOSIX)
	mpiio := out.Table(extractor.TableMPIIO)
	stdio := out.Table(extractor.TableSTDIO)

	pReads := sum(posix, darshan.CPosixReads)
	pWrites := sum(posix, darshan.CPosixWrites)
	sReads := sum(stdio, darshan.CStdioReads)
	sWrites := sum(stdio, darshan.CStdioWrites)
	mReads := sum(mpiio, darshan.CMpiioIndepReads) + sum(mpiio, darshan.CMpiioCollReads)
	mWrites := sum(mpiio, darshan.CMpiioIndepWrites) + sum(mpiio, darshan.CMpiioCollWrites)

	pOps := pReads + pWrites
	dataOps := pOps + sReads + sWrites + mReads + mWrites

	sig[0] = ratio(pReads+sReads+mReads, pReads+pWrites+sReads+sWrites+mReads+mWrites)

	var sized, small, tiny float64
	for _, b := range darshan.SizeBins {
		n := sum(posix, "POSIX_SIZE_READ_"+b.Suffix) + sum(posix, "POSIX_SIZE_WRITE_"+b.Suffix)
		sized += n
		if b.Hi > 0 && b.Hi <= 1<<20 {
			small += n
		}
		if b.Hi > 0 && b.Hi <= 100<<10 {
			tiny += n
		}
	}
	sig[1] = ratio(small, sized)
	sig[2] = ratio(tiny, sized)

	sig[3] = ratio(sum(posix, darshan.CPosixSeqReads)+sum(posix, darshan.CPosixSeqWrites), pOps)
	sig[4] = ratio(sum(posix, darshan.CPosixConsecReads)+sum(posix, darshan.CPosixConsecWrites), pOps)
	sig[5] = ratio(sum(posix, darshan.CPosixRWSwitches), pOps)
	sig[6] = ratio(sum(posix, darshan.CPosixFileNotAligned), pOps)
	sig[7] = ratio(sum(posix, darshan.CPosixMemNotAligned), pOps)

	meta := sum(posix, darshan.CPosixOpens) + sum(posix, darshan.CPosixStats) +
		sum(posix, darshan.CPosixSeeks) + sum(posix, darshan.CPosixFsyncs) +
		sum(posix, darshan.CPosixFdsyncs) + sum(stdio, darshan.CStdioOpens) +
		sum(mpiio, darshan.CMpiioIndepOpens) + sum(mpiio, darshan.CMpiioCollOpens)
	sig[8] = ratio(meta, meta+dataOps)

	sig[9], sig[15] = fileShares(posix)
	sig[10] = rankImbalance(posix)

	coll := sum(mpiio, darshan.CMpiioCollReads) + sum(mpiio, darshan.CMpiioCollWrites) +
		sum(mpiio, darshan.CMpiioCollOpens)
	indep := sum(mpiio, darshan.CMpiioIndepReads) + sum(mpiio, darshan.CMpiioIndepWrites) +
		sum(mpiio, darshan.CMpiioIndepOpens)
	sig[11] = ratio(coll, coll+indep)
	sig[12] = ratio(mReads+mWrites, dataOps)
	sig[13] = ratio(sReads+sWrites, dataOps)

	bytes := sum(posix, darshan.CPosixBytesRead) + sum(posix, darshan.CPosixBytesWritten) +
		sum(stdio, darshan.CStdioBytesRead) + sum(stdio, darshan.CStdioBytesWritten)
	if ops := pOps + sReads + sWrites; ops > 0 && bytes > 0 {
		// log2 of the mean transfer size, normalized so ~1 GiB/op maps
		// to 1.0: keeps absolute scale comparable without letting byte
		// counts dominate the ratio dimensions.
		sig[14] = clamp01(math.Log2(1+bytes/ops) / 30)
	}
	return sig
}

// fileShares scans the POSIX table once and returns the share of files
// accessed by more than one rank (or recorded as rank -1, Darshan's
// shared-file reduction) and the share of files that are both read and
// written.
func fileShares(posix *table.Table) (shared, rwMix float64) {
	if posix == nil || posix.NumRows() == 0 {
		return 0, 0
	}
	type facts struct {
		ranks     map[string]bool
		sharedRow bool
		rd, wr    bool
	}
	files := map[string]*facts{}
	for i := 0; i < posix.NumRows(); i++ {
		id, err := posix.Value(i, "file_id")
		if err != nil {
			return 0, 0
		}
		f := files[id]
		if f == nil {
			f = &facts{ranks: map[string]bool{}}
			files[id] = f
		}
		if rank, err := posix.Value(i, "rank"); err == nil {
			if rank == "-1" {
				f.sharedRow = true
			} else {
				f.ranks[rank] = true
			}
		}
		if v, err := posix.Int(i, darshan.CPosixReads); err == nil && v > 0 {
			f.rd = true
		}
		if v, err := posix.Int(i, darshan.CPosixWrites); err == nil && v > 0 {
			f.wr = true
		}
	}
	var nShared, nMix float64
	for _, f := range files {
		if f.sharedRow || len(f.ranks) > 1 {
			nShared++
		}
		if f.rd && f.wr {
			nMix++
		}
	}
	n := float64(len(files))
	return nShared / n, nMix / n
}

// rankImbalance derives (slowest-fastest)/slowest from the shared-file
// reduction rows' fastest/slowest rank byte counters — 0 for perfectly
// balanced I/O, approaching 1 when one rank does almost nothing.
func rankImbalance(posix *table.Table) float64 {
	if posix == nil {
		return 0
	}
	fast := sum(posix, darshan.CPosixFastestBytes)
	slow := sum(posix, darshan.CPosixSlowestBytes)
	if slow <= 0 || fast < 0 {
		return 0
	}
	if fast > slow {
		// Counter semantics vary by Darshan version; normalize so the
		// larger side is the denominator.
		fast, slow = slow, fast
	}
	return clamp01((slow - fast) / slow)
}

// Quantize snaps each dimension to a step grid (DefaultQuantStep when
// step <= 0), mapping run-to-run jitter to identical vectors.
func (s Signature) Quantize(step float64) Signature {
	if step <= 0 {
		step = DefaultQuantStep
	}
	out := make(Signature, len(s))
	for i, v := range s {
		out[i] = clamp01(math.Round(v/step) * step)
	}
	return out
}

// Cosine returns the cosine similarity of two signatures in [0, 1],
// guarding both zero-norm cases: two all-zero vectors (e.g. two
// metadata-only traces) are identical, one zero vector against a
// non-zero one shares nothing.
func Cosine(a, b Signature) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp01(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

// Deltas returns the named per-dimension differences a-b, keeping only
// dimensions that actually moved — the provenance record on a reused
// job that tells the user how the new run differs from its neighbor.
func Deltas(a, b Signature) map[string]float64 {
	out := map[string]float64{}
	for i, name := range dimensions {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if d := av - bv; d != 0 {
			out[name] = d
		}
	}
	return out
}

func sum(t *table.Table, col string) float64 {
	if t == nil || !t.HasCol(col) {
		return 0
	}
	v, err := t.SumFloat(col)
	if err != nil || v < 0 {
		return 0
	}
	return v
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return clamp01(num / den)
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
