package semcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "semcache.jsonl")
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func sigN(seed int) Signature {
	s := make(Signature, len(Dimensions()))
	for i := range s {
		s[i] = float64((seed+i*7)%32) / 32
	}
	return s
}

func entryN(n int) Entry {
	return Entry{
		JobID:     fmt.Sprintf("j-%012d", n),
		TraceHash: fmt.Sprintf("hash-%d", n),
		Trace:     fmt.Sprintf("trace-%d", n),
		Signature: sigN(n),
		Issues:    []string{"small-io"},
		Outcome:   "full",
		CreatedAt: time.Unix(int64(1700000000+n), 0).UTC(),
	}
}

func TestStorePutLookup(t *testing.T) {
	st := testStore(t, Options{})
	for i := 0; i < 5; i++ {
		if err := st.Put(entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := st.Lookup(sigN(3))
	if !ok {
		t.Fatal("Lookup returned no match")
	}
	if m.Entry.JobID != "j-000000000003" {
		t.Fatalf("nearest neighbor = %s (sim %.3f), want j-000000000003", m.Entry.JobID, m.Similarity)
	}
	if m.Similarity != 1 {
		t.Fatalf("identical signature similarity = %v, want 1", m.Similarity)
	}
	if len(m.Deltas) != 0 {
		t.Fatalf("identical signature has deltas: %v", m.Deltas)
	}
}

func TestStoreSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "semcache.jsonl")
	st := testStore(t, Options{Path: path})
	for i := 0; i < 3; i++ {
		if err := st.Put(entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := testStore(t, Options{Path: path})
	if got := st2.Len(); got != 3 {
		t.Fatalf("reloaded %d entries, want 3", got)
	}
	m, ok := st2.Lookup(sigN(1))
	if !ok || m.Entry.JobID != "j-000000000001" {
		t.Fatalf("after restart, lookup = %+v ok=%v", m, ok)
	}
}

func TestStoreReplacesSameTraceHash(t *testing.T) {
	st := testStore(t, Options{})
	e := entryN(1)
	if err := st.Put(e); err != nil {
		t.Fatal(err)
	}
	e2 := entryN(1)
	e2.JobID = "j-000000000099"
	if err := st.Put(e2); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != 1 {
		t.Fatalf("same-hash re-put left %d entries, want 1", got)
	}
	m, _ := st.Lookup(sigN(1))
	if m.Entry.JobID != "j-000000000099" {
		t.Fatalf("lookup returned %s, want the superseding job", m.Entry.JobID)
	}
}

func TestStoreCountEviction(t *testing.T) {
	st := testStore(t, Options{MaxEntries: 4, MaxBytes: -1})
	for i := 0; i < 10; i++ {
		if err := st.Put(entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Len(); got != 4 {
		t.Fatalf("store holds %d entries, want 4", got)
	}
	if _, ok := st.Lookup(nil); !ok {
		t.Fatal("bounded store should still answer lookups")
	}
	if st.Stats().Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Stats().Evictions)
	}
}

func TestStoreByteEviction(t *testing.T) {
	budget := entryN(0).size() * 3
	st := testStore(t, Options{MaxEntries: -1, MaxBytes: budget})
	for i := 0; i < 10; i++ {
		if err := st.Put(entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Bytes() > budget {
		t.Fatalf("store retains %d bytes over budget %d", st.Bytes(), budget)
	}
	if st.Len() == 0 || st.Len() > 3 {
		t.Fatalf("byte-bounded store holds %d entries", st.Len())
	}
}

func TestStoreBoundsReapplyOnLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "semcache.jsonl")
	st := testStore(t, Options{Path: path, MaxEntries: -1, MaxBytes: -1})
	for i := 0; i < 8; i++ {
		if err := st.Put(entryN(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st2 := testStore(t, Options{Path: path, MaxEntries: 2})
	if got := st2.Len(); got != 2 {
		t.Fatalf("reload with tighter bound holds %d entries, want 2", got)
	}
}

func TestStoreDeleteTombstone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "semcache.jsonl")
	st := testStore(t, Options{Path: path})
	if err := st.Put(entryN(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("j-000000000001"); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatal("delete left the entry live")
	}
	st.Close()
	st2 := testStore(t, Options{Path: path})
	if st2.Len() != 0 {
		t.Fatal("tombstone did not survive restart")
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "semcache.jsonl")
	st := testStore(t, Options{Path: path, MaxEntries: 4})
	// Many superseding writes of a small live set force a compaction.
	for round := 0; round < 40; round++ {
		for i := 0; i < 4; i++ {
			if err := st.Put(entryN(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 160 journal writes at ~300 bytes each would be ~48 KB without
	// compaction; the live set is 4 entries.
	if fi.Size() > 8<<10 {
		t.Fatalf("journal is %d bytes; compaction did not run", fi.Size())
	}
	st.Close()
	st2 := testStore(t, Options{Path: path})
	if got := st2.Len(); got != 4 {
		t.Fatalf("compacted journal reloaded %d entries, want 4", got)
	}
}

func TestStoreCorruptTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "semcache.jsonl")
	st := testStore(t, Options{Path: path})
	if err := st.Put(entryN(1)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job_id":"j-torn","sig`) // torn write, no newline
	f.Close()
	st2 := testStore(t, Options{Path: path})
	if got := st2.Len(); got != 1 {
		t.Fatalf("store with torn tail loaded %d entries, want 1", got)
	}
}

func TestStoreNilReceiver(t *testing.T) {
	var st *Store
	if err := st.Put(entryN(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup(sigN(1)); ok {
		t.Fatal("nil store answered a lookup")
	}
	st.Note(OutcomeHit)
	if st.Len() != 0 || st.Bytes() != 0 || st.Entries() != nil {
		t.Fatal("nil store reports state")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := testStore(t, Options{MaxEntries: 16})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := w*50 + i
				if err := st.Put(entryN(n)); err != nil {
					t.Error(err)
					return
				}
				st.Lookup(sigN(n))
				st.Note(OutcomeMiss)
				st.Stats()
			}
		}()
	}
	wg.Wait()
	if st.Len() > 16 {
		t.Fatalf("concurrent puts breached the bound: %d entries", st.Len())
	}
}

func TestFlipFeedbackDownWeightsDimensions(t *testing.T) {
	st := testStore(t, Options{})
	base := make(Signature, len(Dimensions()))
	for i := range base {
		base[i] = 0.5
	}
	e := Entry{JobID: "j-base", TraceHash: "h", Trace: "t", Signature: base, CreatedAt: time.Unix(1700000000, 0)}
	if err := st.Put(e); err != nil {
		t.Fatal(err)
	}

	// A query diverging along one dimension.
	q := append(Signature(nil), base...)
	dim := Dimensions()[0]
	q[0] = 0.75

	before, ok := st.Lookup(q)
	if !ok {
		t.Fatal("no match")
	}
	if before.Deltas[dim] == 0 {
		t.Fatalf("expected a delta on %s, got %v", dim, before.Deltas)
	}

	// Report flips along that dimension until its weight floors.
	for i := 0; i < 10; i++ {
		st.FlipFeedback(before.Deltas)
	}
	w := st.DimensionWeights()
	if w[dim] != 0.2 {
		t.Fatalf("weight[%s] = %v, want floor 0.2", dim, w[dim])
	}
	for _, name := range Dimensions()[1:] {
		if w[name] != 1 {
			t.Fatalf("weight[%s] = %v, want untouched 1", name, w[name])
		}
	}

	after, ok := st.Lookup(q)
	if !ok {
		t.Fatal("no match after feedback")
	}
	if after.Similarity >= before.Similarity {
		t.Fatalf("similarity %v not reduced from %v by flip feedback", after.Similarity, before.Similarity)
	}
	// Divergence-free lookups are unaffected.
	exact, _ := st.Lookup(base)
	if exact.Similarity != 1 {
		t.Fatalf("exact match similarity = %v, want 1", exact.Similarity)
	}

	// Nil store: feedback is a no-op, weights read as fully trusted.
	var nilStore *Store
	nilStore.FlipFeedback(before.Deltas)
	if w := nilStore.DimensionWeights(); w[dim] != 1 {
		t.Fatalf("nil store weight = %v, want 1", w[dim])
	}
}
