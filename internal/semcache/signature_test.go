package semcache

import (
	"math"
	"testing"

	"ion/internal/testutil"
)

func TestDimensionsAlignWithExtract(t *testing.T) {
	out, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		t.Fatal(err)
	}
	sig := Extract(out)
	if len(sig) != len(Dimensions()) {
		t.Fatalf("Extract returned %d dims, Dimensions names %d", len(sig), len(Dimensions()))
	}
	for i, v := range sig {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("dim %s = %v, want a ratio in [0,1]", Dimensions()[i], v)
		}
	}
	var nonzero int
	for _, v := range sig {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 4 {
		t.Fatalf("signature nearly empty (%d nonzero dims): %v", nonzero, sig)
	}
}

func TestExtractNilAndEmpty(t *testing.T) {
	if sig := Extract(nil); len(sig) != len(Dimensions()) {
		t.Fatalf("nil output: got %d dims", len(sig))
	}
}

func TestExtractDistinguishesWorkloads(t *testing.T) {
	a, _, err := testutil.Extracted("openpmd-baseline")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := testutil.Extracted("healthy-checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	sa := Extract(a).Quantize(0)
	sb := Extract(b).Quantize(0)
	if sim := Cosine(sa, sa); sim != 1 {
		t.Fatalf("self-similarity = %v, want 1", sim)
	}
	if sim := Cosine(sa, sb); sim >= 0.999 {
		t.Fatalf("distinct workloads are indistinguishable: cosine = %v", sim)
	}
}

func TestQuantizeAbsorbsJitter(t *testing.T) {
	a := Signature{0.500, 0.250, 0.125}
	b := Signature{0.505, 0.248, 0.130} // sub-grid jitter
	qa, qb := a.Quantize(0), b.Quantize(0)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("dim %d: %v != %v after quantization", i, qa[i], qb[i])
		}
	}
	if got := Cosine(qa, qb); got != 1 {
		t.Fatalf("jittered cosine = %v, want 1", got)
	}
}

func TestCosineZeroNorm(t *testing.T) {
	zero := make(Signature, 4)
	one := Signature{1, 0, 0, 0}
	if got := Cosine(zero, zero); got != 1 {
		t.Fatalf("Cosine(0,0) = %v, want 1", got)
	}
	if got := Cosine(zero, one); got != 0 {
		t.Fatalf("Cosine(0,x) = %v, want 0", got)
	}
	if got := Cosine(one, zero); got != 0 {
		t.Fatalf("Cosine(x,0) = %v, want 0", got)
	}
	if got := Cosine(one, one); math.IsNaN(got) || got != 1 {
		t.Fatalf("Cosine(x,x) = %v, want 1", got)
	}
}

func TestDeltasNamesMovedDimensions(t *testing.T) {
	a := make(Signature, len(Dimensions()))
	b := make(Signature, len(Dimensions()))
	a[0], b[0] = 0.75, 0.5
	d := Deltas(a, b)
	if len(d) != 1 {
		t.Fatalf("got %d deltas, want 1: %v", len(d), d)
	}
	if got := d[Dimensions()[0]]; got != 0.25 {
		t.Fatalf("delta = %v, want 0.25", got)
	}
}
