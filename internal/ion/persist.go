package ion

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ion/internal/issue"
)

// reportFile is the on-disk envelope for a serialized report; the
// version field guards against silently loading incompatible files.
type reportFile struct {
	Version int     `json:"version"`
	Report  *Report `json:"report"`
}

const reportFileVersion = 1

// EncodeJSON writes the report to w in the same versioned envelope
// SaveJSON uses, for callers that manage their own files (the job
// store) or stream over the network.
func (r *Report) EncodeJSON(w io.Writer) error {
	data, err := json.MarshalIndent(reportFile{Version: reportFileVersion, Report: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("ion: marshaling report: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("ion: writing report: %w", err)
	}
	return nil
}

// DecodeJSON reads a report from the versioned envelope EncodeJSON
// produces.
func DecodeJSON(r io.Reader) (*Report, error) {
	var rf reportFile
	if err := json.NewDecoder(r).Decode(&rf); err != nil {
		return nil, fmt.Errorf("ion: parsing report: %w", err)
	}
	if rf.Version != reportFileVersion {
		return nil, fmt.Errorf("ion: report has version %d, want %d", rf.Version, reportFileVersion)
	}
	if rf.Report == nil {
		return nil, fmt.Errorf("ion: report is empty")
	}
	if rf.Report.Diagnoses == nil {
		rf.Report.Diagnoses = map[issue.ID]*IssueDiagnosis{}
	}
	return rf.Report, nil
}

// SaveJSON writes the report to path as versioned JSON, so a diagnosis
// can be archived, diffed later, or reopened for an interactive session
// without re-running the analysis.
func (r *Report) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ion: saving report: %w", err)
	}
	if err := r.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ion: saving report: %w", err)
	}
	return nil
}

// LoadJSON reads a report saved by SaveJSON.
func LoadJSON(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ion: loading report: %w", err)
	}
	defer f.Close()
	rep, err := DecodeJSON(f)
	if err != nil {
		return nil, fmt.Errorf("ion: report %s: %w", path, err)
	}
	return rep, nil
}
