package ion

import (
	"encoding/json"
	"fmt"
	"os"

	"ion/internal/issue"
)

// reportFile is the on-disk envelope for a serialized report; the
// version field guards against silently loading incompatible files.
type reportFile struct {
	Version int     `json:"version"`
	Report  *Report `json:"report"`
}

const reportFileVersion = 1

// SaveJSON writes the report to path as versioned JSON, so a diagnosis
// can be archived, diffed later, or reopened for an interactive session
// without re-running the analysis.
func (r *Report) SaveJSON(path string) error {
	data, err := json.MarshalIndent(reportFile{Version: reportFileVersion, Report: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("ion: marshaling report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("ion: saving report: %w", err)
	}
	return nil
}

// LoadJSON reads a report saved by SaveJSON.
func LoadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ion: loading report: %w", err)
	}
	var rf reportFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, fmt.Errorf("ion: parsing report %s: %w", path, err)
	}
	if rf.Version != reportFileVersion {
		return nil, fmt.Errorf("ion: report %s has version %d, want %d", path, rf.Version, reportFileVersion)
	}
	if rf.Report == nil {
		return nil, fmt.Errorf("ion: report %s is empty", path)
	}
	if rf.Report.Diagnoses == nil {
		rf.Report.Diagnoses = map[issue.ID]*IssueDiagnosis{}
	}
	return rf.Report, nil
}
