package ion

import (
	"context"
	"fmt"
	"strings"

	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/prompt"
)

// Session is the interactive interface over a completed diagnosis: the
// user asks free-form questions about the analysis, reasoning, or
// results, and the model answers with the report as context — the
// conversational capability the paper positions as what separates an
// automated expert from a static report.
type Session struct {
	client  llm.Client
	builder *prompt.Builder
	report  *Report
	history []llm.Message
	// MaxHistory bounds retained turns (pairs); older turns are dropped.
	MaxHistory int
	// contextProvider, when set, selects the context block for each
	// question (e.g. RAG retrieval) instead of the full report text.
	contextProvider func(question string) string
}

// SetContextProvider installs a per-question context selector, the hook
// the rag package uses for retrieval-augmented chat. Passing nil
// restores the default (the full report context).
func (s *Session) SetContextProvider(f func(question string) string) {
	s.contextProvider = f
}

// NewSession opens an interactive session over a report.
func NewSession(client llm.Client, report *Report) (*Session, error) {
	if client == nil {
		return nil, fmt.Errorf("ion: session requires a client")
	}
	if report == nil {
		return nil, fmt.Errorf("ion: session requires a report")
	}
	return &Session{
		client:     client,
		builder:    prompt.NewBuilder(knowledge.NewBase(knowledge.DefaultHyperparams())),
		report:     report,
		MaxHistory: 8,
	}, nil
}

// Report returns the session's underlying report.
func (s *Session) Report() *Report { return s.report }

// History returns the conversation so far.
func (s *Session) History() []llm.Message {
	return append([]llm.Message(nil), s.history...)
}

// Ask sends a follow-up question and returns the model's answer.
func (s *Session) Ask(ctx context.Context, question string) (string, error) {
	question = strings.TrimSpace(question)
	if question == "" {
		return "", fmt.Errorf("ion: empty question")
	}
	contextText := s.report.ContextText()
	if s.contextProvider != nil {
		contextText = s.contextProvider(question)
	}
	req := s.builder.Chat(contextText, s.history, question)
	comp, err := s.client.Complete(ctx, req)
	if err != nil {
		return "", fmt.Errorf("ion: chat completion: %w", err)
	}
	s.history = append(s.history,
		llm.Message{Role: llm.RoleUser, Content: question},
		llm.Message{Role: llm.RoleAssistant, Content: comp.Content},
	)
	if s.MaxHistory > 0 && len(s.history) > 2*s.MaxHistory {
		s.history = s.history[len(s.history)-2*s.MaxHistory:]
	}
	return comp.Content, nil
}
