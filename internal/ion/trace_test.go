package ion

import (
	"context"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/testutil"
)

// TestPipelineSpanTree runs the full pipeline under a tracer, the way
// `ion -trace-out` does, and checks the timeline shape: one root
// covering extract, analyze (with one diagnose child per issue, each
// with llm_complete grandchildren), and summarize.
func TestPipelineSpanTree(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fw, err := New(Config{Client: llm.Instrument(expertsim.New(), reg)})
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tracer)
	ctx, root := obs.StartSpan(ctx, "pipeline")
	rep, err := fw.AnalyzeLog(ctx, log, "ior-hard", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	tl := tracer.Timeline()
	roots := tl.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v, want one pipeline root", roots)
	}
	children := map[string]int{}
	var analyzeID int
	for _, c := range tl.Children(roots[0]) {
		children[c.Name]++
		if c.Name == "analyze" {
			analyzeID = c.ID
		}
	}
	if children["extract"] != 1 || children["analyze"] != 1 || children["summarize"] != 1 {
		t.Fatalf("root children = %v, want extract + analyze + summarize", children)
	}

	diagnoses := tl.Children(analyzeID)
	if len(diagnoses) != len(rep.Order) {
		t.Fatalf("analyze has %d children, want one diagnose per issue (%d)", len(diagnoses), len(rep.Order))
	}
	for _, d := range diagnoses {
		if d.Name != "diagnose" || d.Attrs["issue"] == "" {
			t.Errorf("analyze child = %+v, want a diagnose span with an issue attr", d)
		}
		kids := tl.Children(d.ID)
		if len(kids) != 1 || kids[0].Name != "llm_complete" {
			t.Errorf("diagnose %q children = %+v, want one llm_complete", d.Attrs["issue"], kids)
		}
	}

	// The extract span parents one extract_module per emitted CSV table
	// (JOB is assembled inline, not via a module build).
	var extractID int
	for _, c := range tl.Children(roots[0]) {
		if c.Name == "extract" {
			extractID = c.ID
		}
	}
	mods := tl.Children(extractID)
	if len(mods) == 0 {
		t.Fatal("extract span has no extract_module children")
	}
	for _, m := range mods {
		if m.Name != "extract_module" || m.Attrs["module"] == "" {
			t.Errorf("extract child = %+v, want extract_module with a module attr", m)
		}
	}

	// The instrumented client recorded exactly the pipeline's
	// completions: one per issue plus the summary.
	wantCalls := float64(len(rep.Order) + 1)
	got := reg.Counter("ion_llm_requests_total", "",
		obs.L("backend", "expertsim"), obs.L("outcome", "ok")).Value()
	if got != wantCalls {
		t.Errorf("ion_llm_requests_total = %v, want %v", got, wantCalls)
	}
}
