// Package ion implements the I/O Navigator framework: the Extractor →
// Analyzer pipeline of the paper. Analyze unpacks a Darshan trace into
// per-module CSVs, fans one prompt per I/O issue out to the language
// model in parallel, parses each completion into its reasoning steps /
// analysis code / conclusion, asks the model for a global summary, and
// exposes an interactive session for follow-up questions.
package ion

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ion/internal/darshan"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/knowledge"
	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/prompt"
)

// Config assembles a Framework.
type Config struct {
	// Client is the language model backend (expertsim, OpenAI, replay).
	Client llm.Client
	// KB is the issue knowledge base; nil uses the default base with
	// hyperparameters derived from the trace.
	KB *knowledge.Base
	// Issues restricts the analysis to a subset; nil analyzes all.
	Issues []issue.ID
	// Parallel bounds concurrent prompts; 0 means one goroutine per
	// issue (the paper sends all prompts in parallel).
	Parallel int
	// SkipSummary disables the global summarization step.
	SkipSummary bool
	// SelfConsistency, when > 1, samples that many completions per
	// issue and majority-votes the verdict (self-consistency CoT,
	// Wang et al. 2023 — the reliability technique the paper cites).
	// The reported diagnosis is the first completion that carries the
	// winning verdict. Pointless for deterministic backends; valuable
	// against sampling LLMs.
	SelfConsistency int
}

// Framework is the assembled ION instance.
type Framework struct {
	cfg Config
}

// New returns a Framework. The Client is required.
func New(cfg Config) (*Framework, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("ion: Config.Client is required")
	}
	return &Framework{cfg: cfg}, nil
}

// IssueDiagnosis is the parsed completion for one issue.
type IssueDiagnosis struct {
	Issue      issue.ID
	Title      string
	Steps      []string
	Code       string
	Conclusion string
	Verdict    issue.Verdict
	Usage      llm.Usage
	// Samples records how many completions were majority-voted (1 for
	// a single-shot diagnosis).
	Samples int
	// Raw is the unparsed completion, kept for the interactive session.
	Raw string
}

// Report is the full ION output for one trace.
type Report struct {
	// Trace identifies the analyzed input (log path or workload name).
	Trace string
	// Header echoes the job-level facts.
	Header darshan.Header
	// Diagnoses maps issue id to its parsed diagnosis.
	Diagnoses map[issue.ID]*IssueDiagnosis
	// Order lists issue ids in the order they were analyzed.
	Order []issue.ID
	// Summary is the global diagnosis summary.
	Summary string
	// CSVDir is the extraction directory used.
	CSVDir string
	// Model names the backend that produced the diagnosis.
	Model string
}

// Verdict returns the verdict for an issue (not-detected when absent).
func (r *Report) Verdict(id issue.ID) issue.Verdict {
	if d, ok := r.Diagnoses[id]; ok {
		return d.Verdict
	}
	return issue.VerdictNotDetected
}

// Detected lists the issues with a detected verdict, in analysis order.
func (r *Report) Detected() []issue.ID {
	var out []issue.ID
	for _, id := range r.Order {
		if r.Verdict(id) == issue.VerdictDetected {
			out = append(out, id)
		}
	}
	return out
}

// Mitigated lists issues found present but neutralized.
func (r *Report) Mitigated() []issue.ID {
	var out []issue.ID
	for _, id := range r.Order {
		if r.Verdict(id) == issue.VerdictMitigated {
			out = append(out, id)
		}
	}
	return out
}

// ContextText renders the report as the context block chat prompts
// embed: one "[id] Title" section per issue with conclusion and steps.
func (r *Report) ContextText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace: %s (nprocs=%d, runtime=%.3fs)\n\n", r.Trace, r.Header.NProcs, r.Header.RunTime)
	for _, id := range r.Order {
		d := r.Diagnoses[id]
		if d == nil {
			continue
		}
		fmt.Fprintf(&b, "[%s] %s\n", id, d.Title)
		fmt.Fprintf(&b, "VERDICT: %s\n", d.Verdict)
		b.WriteString(strings.TrimSpace(d.Conclusion))
		b.WriteString("\n")
		for i, s := range d.Steps {
			fmt.Fprintf(&b, "  step %d: %s\n", i+1, s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AnalyzeLog runs the full pipeline on an in-memory Darshan log,
// extracting CSVs into workDir.
func (f *Framework) AnalyzeLog(ctx context.Context, log *darshan.Log, trace, workDir string) (*Report, error) {
	ectx, span := obs.StartSpan(ctx, "extract")
	out, err := extractor.ExtractToDirContext(ectx, log, workDir)
	span.SetError(err)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("ion: extracting trace: %w", err)
	}
	return f.analyze(ctx, out, trace, AnalyzeOptions{})
}

// AnalyzeFile runs the full pipeline on a Darshan log file.
func (f *Framework) AnalyzeFile(ctx context.Context, logPath, workDir string) (*Report, error) {
	ectx, span := obs.StartSpan(ctx, "extract")
	out, err := extractor.ExtractFileContext(ectx, logPath, workDir)
	span.SetError(err)
	span.End()
	if err != nil {
		return nil, fmt.Errorf("ion: %w", err)
	}
	return f.analyze(ctx, out, logPath, AnalyzeOptions{})
}

// AnalyzeExtracted runs the Analyzer on already-extracted CSVs.
func (f *Framework) AnalyzeExtracted(ctx context.Context, out *extractor.Output, trace string) (*Report, error) {
	return f.analyze(ctx, out, trace, AnalyzeOptions{})
}

// AnalyzeOptions tunes one analysis run without rebuilding the
// Framework — the semantic cache's conditioning knobs.
type AnalyzeOptions struct {
	// Retrieved maps issue ids to retrieved context from a similar
	// prior diagnosis, injected into that issue's prompt so the model
	// confirms or adjusts instead of diagnosing from scratch.
	Retrieved map[issue.ID]string
	// Adopted maps issue ids to diagnoses reused verbatim from a
	// similar prior report: no LLM call is made for those issues.
	Adopted map[issue.ID]*IssueDiagnosis
}

// AnalyzeExtractedOpts is AnalyzeExtracted with per-run options.
func (f *Framework) AnalyzeExtractedOpts(ctx context.Context, out *extractor.Output, trace string, opts AnalyzeOptions) (*Report, error) {
	return f.analyze(ctx, out, trace, opts)
}

func (f *Framework) analyze(ctx context.Context, out *extractor.Output, trace string, opts AnalyzeOptions) (*Report, error) {
	kb := f.cfg.KB
	if kb == nil {
		kb = knowledge.NewBase(knowledge.FromExtract(out))
	}
	builder := prompt.NewBuilder(kb)

	issues := f.cfg.Issues
	if len(issues) == 0 {
		issues = kb.Issues()
	}
	for _, id := range issues {
		if !issue.Valid(id) {
			return nil, fmt.Errorf("ion: unknown issue %q requested", id)
		}
	}

	report := &Report{
		Trace:     trace,
		Header:    out.Header,
		Diagnoses: map[issue.ID]*IssueDiagnosis{},
		Order:     append([]issue.ID(nil), issues...),
		Model:     f.cfg.Client.Name(),
	}
	if dir, ok := firstDir(out); ok {
		report.CSVDir = dir
	}

	// Fan the per-issue prompts out in parallel, as the paper does.
	limit := f.cfg.Parallel
	if limit <= 0 || limit > len(issues) {
		limit = len(issues)
	}
	actx, analyzeSpan := obs.StartSpan(ctx, "analyze")
	logger := obs.LoggerFrom(ctx)
	sem := make(chan struct{}, limit)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	// Adopted diagnoses are filled in before the fan-out starts so the
	// map writes need no synchronization with the worker goroutines.
	var remaining []issue.ID
	for _, id := range issues {
		if d, ok := opts.Adopted[id]; ok && d != nil {
			// Adopted verbatim from a similar prior diagnosis: no LLM
			// call. Copy the struct so the neighbor's report stays
			// untouched if a consumer mutates ours.
			adopted := *d
			adopted.Issue = id
			report.Diagnoses[id] = &adopted
			continue
		}
		remaining = append(remaining, id)
	}
	for _, id := range remaining {
		id := id
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ictx, span := obs.StartSpan(actx, "diagnose", obs.L("issue", string(id)))
			diag, err := f.diagnoseOne(ictx, builder, id, out, opts.Retrieved[id])
			span.SetError(err)
			span.End()
			if err != nil {
				logger.Warn("issue diagnosis failed", "issue", id, "err", err)
			} else {
				logger.Debug("issue diagnosed", "issue", id, "verdict", diag.Verdict,
					"tokens", diag.Usage.Total())
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			report.Diagnoses[id] = diag
		}()
	}
	wg.Wait()
	analyzeSpan.SetError(firstErr)
	analyzeSpan.End()
	if firstErr != nil {
		return nil, firstErr
	}

	if !f.cfg.SkipSummary {
		conclusions := map[issue.ID]string{}
		for id, d := range report.Diagnoses {
			conclusions[id] = d.Conclusion + "\n" + prompt.VerdictPrefix + " " + string(d.Verdict)
		}
		sreq := builder.Summary(conclusions)
		sctx, span := obs.StartSpan(ctx, "summarize")
		comp, err := f.cfg.Client.Complete(sctx, sreq)
		span.SetError(err)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("ion: summarization: %w", err)
		}
		report.Summary = comp.Content
	}
	return report, nil
}

func (f *Framework) diagnoseOne(ctx context.Context, builder *prompt.Builder, id issue.ID, out *extractor.Output, retrieved string) (*IssueDiagnosis, error) {
	req, err := builder.DiagnosisConditioned(id, out, retrieved)
	if err != nil {
		return nil, fmt.Errorf("ion: building %s prompt: %w", id, err)
	}
	samples := f.cfg.SelfConsistency
	if samples < 1 {
		samples = 1
	}
	var (
		diags []*IssueDiagnosis
		usage llm.Usage
	)
	for i := 0; i < samples; i++ {
		comp, err := f.cfg.Client.Complete(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("ion: completing %s diagnosis: %w", id, err)
		}
		diag, err := ParseCompletion(id, comp.Content)
		if err != nil {
			return nil, fmt.Errorf("ion: parsing %s completion: %w", id, err)
		}
		usage.PromptTokens += comp.Usage.PromptTokens
		usage.CompletionTokens += comp.Usage.CompletionTokens
		diags = append(diags, diag)
	}
	diag := majorityDiagnosis(diags)
	diag.Usage = usage
	diag.Samples = samples
	return diag, nil
}

// majorityDiagnosis returns the first diagnosis carrying the verdict
// that most samples agreed on (ties break toward the more severe
// verdict, so disagreement errs on the side of surfacing a problem).
func majorityDiagnosis(diags []*IssueDiagnosis) *IssueDiagnosis {
	if len(diags) == 1 {
		return diags[0]
	}
	votes := map[issue.Verdict]int{}
	for _, d := range diags {
		votes[d.Verdict]++
	}
	severity := []issue.Verdict{issue.VerdictDetected, issue.VerdictMitigated, issue.VerdictNotDetected}
	var winner issue.Verdict
	best := -1
	for _, v := range severity {
		if votes[v] > best {
			best = votes[v]
			winner = v
		}
	}
	for _, d := range diags {
		if d.Verdict == winner {
			return d
		}
	}
	return diags[0]
}

// ParseCompletion splits a diagnosis completion into its sections and
// verdict per the instructed output format.
func ParseCompletion(id issue.ID, content string) (*IssueDiagnosis, error) {
	d := &IssueDiagnosis{Issue: id, Title: issue.Title(id), Raw: content}

	stepsBody, ok := section(content, prompt.SectionSteps, prompt.SectionCode)
	if !ok {
		return nil, fmt.Errorf("completion lacks %q section", prompt.SectionSteps)
	}
	for _, line := range strings.Split(stepsBody, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Strip "N." list markers.
		if i := strings.Index(line, ". "); i > 0 && i <= 3 && isDigits(line[:i]) {
			line = line[i+2:]
		}
		d.Steps = append(d.Steps, line)
	}
	if len(d.Steps) == 0 {
		return nil, fmt.Errorf("completion has no analysis steps")
	}

	codeBody, ok := section(content, prompt.SectionCode, prompt.SectionConclusion)
	if !ok {
		return nil, fmt.Errorf("completion lacks %q section", prompt.SectionCode)
	}
	d.Code = stripFence(codeBody)

	conclBody, ok := section(content, prompt.SectionConclusion, "")
	if !ok {
		return nil, fmt.Errorf("completion lacks %q section", prompt.SectionConclusion)
	}
	verdict, rest, err := extractVerdict(conclBody)
	if err != nil {
		return nil, err
	}
	d.Verdict = verdict
	d.Conclusion = strings.TrimSpace(rest)
	if d.Conclusion == "" {
		return nil, fmt.Errorf("completion has an empty conclusion")
	}
	return d, nil
}

// section returns the text between the `from` marker and the `to`
// marker (or end of content when to is empty).
func section(content, from, to string) (string, bool) {
	i := strings.Index(content, from)
	if i < 0 {
		return "", false
	}
	body := content[i+len(from):]
	if to != "" {
		j := strings.Index(body, to)
		if j < 0 {
			return "", false
		}
		body = body[:j]
	}
	return strings.TrimSpace(body), true
}

// stripFence removes a surrounding ```python fence if present.
func stripFence(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "```") {
		if i := strings.Index(s, "\n"); i >= 0 {
			s = s[i+1:]
		}
		if j := strings.LastIndex(s, "```"); j >= 0 {
			s = s[:j]
		}
	}
	return strings.TrimSpace(s)
}

// extractVerdict pulls the final "VERDICT: x" line out of a conclusion.
func extractVerdict(body string) (issue.Verdict, string, error) {
	lines := strings.Split(body, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		line := strings.TrimSpace(lines[i])
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, prompt.VerdictPrefix) {
			return "", "", fmt.Errorf("conclusion does not end with a %q line (got %q)", prompt.VerdictPrefix, line)
		}
		v := issue.Verdict(strings.TrimSpace(strings.TrimPrefix(line, prompt.VerdictPrefix)))
		switch v {
		case issue.VerdictDetected, issue.VerdictMitigated, issue.VerdictNotDetected:
			return v, strings.Join(lines[:i], "\n"), nil
		}
		return "", "", fmt.Errorf("unknown verdict %q", v)
	}
	return "", "", fmt.Errorf("empty conclusion section")
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func firstDir(out *extractor.Output) (string, bool) {
	var paths []string
	for _, p := range out.Paths {
		paths = append(paths, p)
	}
	if len(paths) == 0 {
		return "", false
	}
	sort.Strings(paths)
	p := paths[0]
	if i := strings.LastIndexByte(p, '/'); i > 0 {
		return p[:i], true
	}
	return "", false
}
