package ion

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/prompt"
	"ion/internal/testutil"
)

const sampleCompletion = `### ANALYSIS STEPS
1. Counted 100 operations.
2. Found 90 small ones.

### ANALYSIS CODE
` + "```python\nimport pandas as pd\nprint(1)\n```" + `

### CONCLUSION
Most operations are small.
VERDICT: detected
`

func TestParseCompletion(t *testing.T) {
	d, err := ParseCompletion(issue.SmallIO, sampleCompletion)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Steps) != 2 || d.Steps[0] != "Counted 100 operations." {
		t.Errorf("steps = %#v", d.Steps)
	}
	if !strings.Contains(d.Code, "import pandas") || strings.Contains(d.Code, "```") {
		t.Errorf("code = %q", d.Code)
	}
	if d.Conclusion != "Most operations are small." {
		t.Errorf("conclusion = %q", d.Conclusion)
	}
	if d.Verdict != issue.VerdictDetected {
		t.Errorf("verdict = %q", d.Verdict)
	}
	if d.Title != issue.Title(issue.SmallIO) {
		t.Errorf("title = %q", d.Title)
	}
}

func TestParseCompletionErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"no steps section", "### CONCLUSION\nok\nVERDICT: detected\n"},
		{"no code section", "### ANALYSIS STEPS\n1. x\n### CONCLUSION\nok\nVERDICT: detected\n"},
		{"no conclusion", "### ANALYSIS STEPS\n1. x\n### ANALYSIS CODE\ncode\n"},
		{"no verdict", "### ANALYSIS STEPS\n1. x\n### ANALYSIS CODE\ncode\n### CONCLUSION\nok\n"},
		{"bad verdict", "### ANALYSIS STEPS\n1. x\n### ANALYSIS CODE\ncode\n### CONCLUSION\nok\nVERDICT: maybe\n"},
		{"empty steps", "### ANALYSIS STEPS\n### ANALYSIS CODE\ncode\n### CONCLUSION\nok\nVERDICT: detected\n"},
		{"empty conclusion", "### ANALYSIS STEPS\n1. x\n### ANALYSIS CODE\ncode\n### CONCLUSION\nVERDICT: detected\n"},
	}
	for _, c := range cases {
		if _, err := ParseCompletion(issue.SmallIO, c.content); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNewRequiresClient(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil client accepted")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: expertsim.New()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), log, "ior-hard", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != len(issue.All) {
		t.Errorf("diagnoses = %d, want %d", len(rep.Diagnoses), len(issue.All))
	}
	if rep.Verdict(issue.SmallIO) != issue.VerdictDetected {
		t.Errorf("ior-hard small-io verdict = %s", rep.Verdict(issue.SmallIO))
	}
	if rep.Summary == "" {
		t.Error("summary missing")
	}
	if got := rep.Detected(); len(got) == 0 {
		t.Error("no detected issues on ior-hard")
	}
	ctxText := rep.ContextText()
	if !strings.Contains(ctxText, "[small-io]") || !strings.Contains(ctxText, "VERDICT:") {
		t.Errorf("context text malformed:\n%s", ctxText[:200])
	}
	// Token usage accounted.
	for id, d := range rep.Diagnoses {
		if d.Usage.Total() == 0 {
			t.Errorf("%s: no token usage recorded", id)
		}
	}
}

func TestAnalyzeIssueSubset(t *testing.T) {
	log, err := testutil.Log("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{
		Client:      expertsim.New(),
		Issues:      []issue.ID{issue.SmallIO, issue.Interface},
		SkipSummary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), log, "x", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnoses) != 2 {
		t.Errorf("diagnoses = %d, want 2", len(rep.Diagnoses))
	}
	if rep.Summary != "" {
		t.Error("summary should be skipped")
	}
}

func TestAnalyzeUnknownIssue(t *testing.T) {
	log, err := testutil.Log("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: expertsim.New(), Issues: []issue.ID{"bogus"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.AnalyzeLog(context.Background(), log, "x", t.TempDir()); err == nil {
		t.Error("unknown issue accepted")
	}
}

func TestAnalyzeFileFromDisk(t *testing.T) {
	log, err := testutil.Log("md-workbench")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/mdw.darshan"
	if err := log.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeFile(context.Background(), path, dir+"/csv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict(issue.Metadata) != issue.VerdictDetected {
		t.Errorf("md-workbench metadata verdict = %s", rep.Verdict(issue.Metadata))
	}
}

// countingClient wraps expertsim and counts concurrent completions.
type countingClient struct {
	inner   llm.Client
	calls   int32
	current int32
	peak    int32
}

func (c *countingClient) Name() string { return "counting" }
func (c *countingClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	atomic.AddInt32(&c.calls, 1)
	cur := atomic.AddInt32(&c.current, 1)
	for {
		p := atomic.LoadInt32(&c.peak)
		if cur <= p || atomic.CompareAndSwapInt32(&c.peak, p, cur) {
			break
		}
	}
	defer atomic.AddInt32(&c.current, -1)
	return c.inner.Complete(ctx, req)
}

func TestParallelBound(t *testing.T) {
	log, err := testutil.Log("ior-easy-2k-shared")
	if err != nil {
		t.Fatal(err)
	}
	cc := &countingClient{inner: expertsim.New()}
	fw, err := New(Config{Client: cc, Parallel: 2, SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.AnalyzeLog(context.Background(), log, "x", t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if cc.peak > 2 {
		t.Errorf("parallelism bound violated: peak %d > 2", cc.peak)
	}
	if int(cc.calls) != len(issue.All) {
		t.Errorf("calls = %d, want %d", cc.calls, len(issue.All))
	}
}

// failingClient errors on a specific issue.
type failingClient struct {
	inner llm.Client
	fail  issue.ID
}

func (c *failingClient) Name() string { return "failing" }
func (c *failingClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	if issue.ID(req.Metadata[prompt.MetaIssue]) == c.fail {
		return llm.Completion{}, errors.New("backend exploded")
	}
	return c.inner.Complete(ctx, req)
}

func TestAnalyzePropagatesBackendError(t *testing.T) {
	log, err := testutil.Log("ior-easy-2k-shared")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: &failingClient{inner: expertsim.New(), fail: issue.SharedFile}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.AnalyzeLog(context.Background(), log, "x", t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "backend exploded") {
		t.Errorf("backend error not propagated: %v", err)
	}
}

func TestSession(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	client := expertsim.New()
	fw, err := New(Config{Client: client, SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), log, "ior-hard", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(client, rep)
	if err != nil {
		t.Fatal(err)
	}
	answer, err := s.Ask(context.Background(), "Why is the small I/O a problem here?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(answer, "Small I/O") {
		t.Errorf("answer off-topic: %s", answer)
	}
	if len(s.History()) != 2 {
		t.Errorf("history = %d messages, want 2", len(s.History()))
	}
	if _, err := s.Ask(context.Background(), "   "); err == nil {
		t.Error("empty question accepted")
	}

	// History is bounded.
	s.MaxHistory = 2
	for i := 0; i < 5; i++ {
		if _, err := s.Ask(context.Background(), fmt.Sprintf("question %d about locks?", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.History()) > 4 {
		t.Errorf("history unbounded: %d", len(s.History()))
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, &Report{}); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := NewSession(expertsim.New(), nil); err == nil {
		t.Error("nil report accepted")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), log, "ior-hard", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/report.json"
	if err := rep.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trace != rep.Trace || len(back.Diagnoses) != len(rep.Diagnoses) {
		t.Errorf("round trip lost structure: %d vs %d diagnoses", len(back.Diagnoses), len(rep.Diagnoses))
	}
	for id, d := range rep.Diagnoses {
		bd := back.Diagnoses[id]
		if bd == nil {
			t.Fatalf("%s missing after reload", id)
		}
		if bd.Verdict != d.Verdict || bd.Conclusion != d.Conclusion || len(bd.Steps) != len(d.Steps) {
			t.Errorf("%s changed through JSON", id)
		}
	}
	// A reloaded report drives a session like a fresh one.
	s, err := NewSession(expertsim.New(), back)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ask(context.Background(), "what about the misalignment?"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadJSON(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	wrongVer := dir + "/ver.json"
	if err := os.WriteFile(wrongVer, []byte(`{"version":99,"report":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(wrongVer); err == nil {
		t.Error("wrong version accepted")
	}
	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(empty); err == nil {
		t.Error("empty report accepted")
	}
}

// flakyClient returns different verdicts across calls for one issue,
// simulating a sampling LLM.
type flakyClient struct {
	inner llm.Client
	calls int32
}

func (c *flakyClient) Name() string { return "flaky" }
func (c *flakyClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	n := atomic.AddInt32(&c.calls, 1)
	// Every third completion flips to a wrong not-detected verdict.
	if n%3 == 0 {
		return llm.Completion{Content: `### ANALYSIS STEPS
1. (hallucinated pass)

### ANALYSIS CODE
` + "```python\npass\n```" + `

### CONCLUSION
Nothing to see here.
VERDICT: not-detected
`, Model: "flaky"}, nil
	}
	return c.inner.Complete(ctx, req)
}

func TestSelfConsistencyVoting(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	fc := &flakyClient{inner: expertsim.New()}
	fw, err := New(Config{
		Client:          fc,
		Issues:          []issue.ID{issue.SmallIO},
		SkipSummary:     true,
		SelfConsistency: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw.AnalyzeLog(context.Background(), log, "ior-hard", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Diagnoses[issue.SmallIO]
	if d.Verdict != issue.VerdictDetected {
		t.Errorf("majority vote failed: verdict = %s", d.Verdict)
	}
	if d.Samples != 5 {
		t.Errorf("samples = %d", d.Samples)
	}
	if strings.Contains(d.Conclusion, "Nothing to see here") {
		t.Error("winning diagnosis picked from the losing verdict")
	}
}

func TestMajorityDiagnosisTieBreaksSevere(t *testing.T) {
	diags := []*IssueDiagnosis{
		{Verdict: issue.VerdictNotDetected, Conclusion: "a"},
		{Verdict: issue.VerdictDetected, Conclusion: "b"},
	}
	if got := majorityDiagnosis(diags); got.Verdict != issue.VerdictDetected {
		t.Errorf("tie should break toward detected, got %s", got.Verdict)
	}
	single := []*IssueDiagnosis{{Verdict: issue.VerdictMitigated}}
	if majorityDiagnosis(single).Verdict != issue.VerdictMitigated {
		t.Error("single diagnosis changed")
	}
}
