package ion

// Failure-injection tests: the pipeline must fail loudly and
// descriptively — never panic, never fabricate a diagnosis — when the
// trace data is corrupt, truncated, or structurally wrong.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/testutil"
)

// corrupt applies a mutation to an extracted CSV directory and runs the
// analyzer over it.
func corruptAndAnalyze(t *testing.T, mutate func(dir string) error) error {
	t.Helper()
	log, err := testutil.Log("ior-easy-1m-shared")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := extractor.ExtractToDir(log, dir); err != nil {
		t.Fatal(err)
	}
	if err := mutate(dir); err != nil {
		t.Fatal(err)
	}
	out, err := extractor.LoadDir(dir)
	if err != nil {
		return err // corruption caught at load time: also acceptable
	}
	fw, err := New(Config{Client: expertsim.New(), SkipSummary: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.AnalyzeExtracted(context.Background(), out, "corrupt")
	return err
}

func TestCorruptDXTNumbersFail(t *testing.T) {
	err := corruptAndAnalyze(t, func(dir string) error {
		path := filepath.Join(dir, "DXT.csv")
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Break a numeric column value on the first data row.
		lines := strings.SplitN(string(data), "\n", 3)
		cells := strings.Split(lines[1], ",")
		cells[6] = "not-a-number" // offset column
		lines[1] = strings.Join(cells, ",")
		return os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644)
	})
	if err == nil {
		t.Fatal("corrupt DXT offset accepted")
	}
	if !strings.Contains(err.Error(), "not-a-number") && !strings.Contains(err.Error(), "offset") {
		t.Errorf("error not descriptive: %v", err)
	}
}

func TestTruncatedCSVFails(t *testing.T) {
	err := corruptAndAnalyze(t, func(dir string) error {
		path := filepath.Join(dir, "POSIX.csv")
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Chop the file inside the last data row.
		return os.WriteFile(path, data[:len(data)-10], 0o644)
	})
	if err == nil {
		t.Fatal("truncated POSIX.csv accepted")
	}
}

func TestMissingDXTDegradesGracefully(t *testing.T) {
	// Without DXT the per-stream analyses cannot run; the diagnosis
	// must error (these issues NEED the trace), not silently pass.
	err := corruptAndAnalyze(t, func(dir string) error {
		return os.Remove(filepath.Join(dir, "DXT.csv"))
	})
	if err == nil {
		t.Fatal("missing DXT accepted for DXT-dependent issues")
	}
	if !strings.Contains(err.Error(), "DXT") {
		t.Errorf("error should name the missing table: %v", err)
	}

	// But counter-only issues still work on the same directory.
	log, err2 := testutil.Log("ior-easy-1m-shared")
	if err2 != nil {
		t.Fatal(err2)
	}
	dir := t.TempDir()
	if _, err := extractor.ExtractToDir(log, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "DXT.csv")); err != nil {
		t.Fatal(err)
	}
	out, err2 := extractor.LoadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	fw, err2 := New(Config{
		Client:      expertsim.New(),
		Issues:      []issue.ID{issue.MisalignedIO, issue.Metadata, issue.CollectiveIO},
		SkipSummary: true,
	})
	if err2 != nil {
		t.Fatal(err2)
	}
	rep, err2 := fw.AnalyzeExtracted(context.Background(), out, "no-dxt")
	if err2 != nil {
		t.Fatalf("counter-only analysis should survive a missing DXT table: %v", err2)
	}
	if rep.Verdict(issue.MisalignedIO) != issue.VerdictNotDetected {
		t.Errorf("alignment verdict = %s", rep.Verdict(issue.MisalignedIO))
	}
}

func TestEmptyDirFails(t *testing.T) {
	fw, err := New(Config{Client: expertsim.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.AnalyzeFile(context.Background(), "/nonexistent.darshan", t.TempDir()); err == nil {
		t.Fatal("nonexistent log accepted")
	}
}

func TestGarbageLogFileFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.darshan")
	if err := os.WriteFile(path, []byte("POSIX\tgarbage\tnot\ta\tlog\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fw, err := New(Config{Client: expertsim.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.AnalyzeFile(context.Background(), path, filepath.Join(dir, "csv")); err == nil {
		t.Fatal("garbage log accepted")
	}
}
