package ledger

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Price is the estimated cost of one model in USD per million tokens,
// split by direction (prompt vs completion), matching how commercial
// endpoints bill.
type Price struct {
	InPerM  float64 `json:"in_per_m"`
	OutPerM float64 `json:"out_per_m"`
}

// PriceTable maps model names to prices. The reserved key "*" is the
// fallback applied to models the table does not name, so unknown or
// simulated models still produce a nonzero (clearly estimated) figure
// instead of silently costing nothing.
type PriceTable map[string]Price

// DefaultPrices is the built-in table: the OpenAI-compatible models the
// paper's evaluation used, plus a conservative fallback for everything
// else (including the simulated expert). Override with -llm-price-table.
func DefaultPrices() PriceTable {
	return PriceTable{
		"gpt-4-1106-preview": {InPerM: 10.00, OutPerM: 30.00},
		"gpt-4":              {InPerM: 30.00, OutPerM: 60.00},
		"gpt-4o":             {InPerM: 2.50, OutPerM: 10.00},
		"gpt-4o-mini":        {InPerM: 0.15, OutPerM: 0.60},
		"gpt-3.5-turbo":      {InPerM: 0.50, OutPerM: 1.50},
		"*":                  {InPerM: 0.50, OutPerM: 1.50},
	}
}

// Estimate returns the estimated USD cost of one call. Models absent
// from the table use the "*" fallback; with no fallback either, the
// cost is 0 (tokens are still accounted).
func (t PriceTable) Estimate(model string, tokensIn, tokensOut int) float64 {
	p, ok := t[model]
	if !ok {
		p, ok = t["*"]
		if !ok {
			return 0
		}
	}
	return (float64(tokensIn)*p.InPerM + float64(tokensOut)*p.OutPerM) / 1e6
}

// ParsePriceTable decodes a user-supplied price-table JSON, either the
// raw map form {"model": {"in_per_m": ..., "out_per_m": ...}} or
// wrapped as {"prices": {...}}. Entries are validated (no negative
// rates); models missing from the override keep no built-in price, so
// a table that wants the defaults must include them.
func ParsePriceTable(data []byte) (PriceTable, error) {
	// Try the wrapped form first: {"prices": {...}} would otherwise
	// decode as a raw map with a zero-rate "prices" model.
	var wrapped struct {
		Prices PriceTable `json:"prices"`
	}
	var t PriceTable
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Prices != nil {
		t = wrapped.Prices
	} else if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("ledger: price table: %v", err)
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("ledger: price table is empty")
	}
	for model, p := range t {
		if strings.TrimSpace(model) == "" {
			return nil, fmt.Errorf("ledger: price table has an empty model name")
		}
		if p.InPerM < 0 || p.OutPerM < 0 {
			return nil, fmt.Errorf("ledger: price table: model %q has a negative rate", model)
		}
	}
	return t, nil
}

// Models returns the table's model names, sorted, for display.
func (t PriceTable) Models() []string {
	out := make([]string, 0, len(t))
	for m := range t {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
