package ledger

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/prompt"
)

func testStore(t *testing.T, opts StoreOptions) *Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(t.TempDir(), "ledger.jsonl")
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func entry(id, job, backend string) Entry {
	return Entry{
		ID: id, Job: job, Backend: backend, Model: "m",
		PromptSHA: strings.Repeat("a", 64), TokensIn: 100, TokensOut: 50,
		Outcome: "ok", CostUSD: 0.001, Time: time.Now().UTC(),
	}
}

func TestPriceEstimate(t *testing.T) {
	p := DefaultPrices()
	got := p.Estimate("gpt-4o", 1_000_000, 1_000_000)
	if got != 12.50 {
		t.Fatalf("gpt-4o 1M/1M = %v, want 12.50", got)
	}
	// Unknown models use the "*" fallback.
	if got := p.Estimate("ion-expertsim-1", 1_000_000, 0); got != 0.50 {
		t.Fatalf("fallback estimate = %v, want 0.50", got)
	}
	// No fallback, unknown model: free but accounted.
	if got := (PriceTable{"x": {InPerM: 1}}).Estimate("y", 1000, 1000); got != 0 {
		t.Fatalf("no-fallback estimate = %v, want 0", got)
	}
}

func TestParsePriceTable(t *testing.T) {
	raw := []byte(`{"m1": {"in_per_m": 1, "out_per_m": 2}}`)
	pt, err := ParsePriceTable(raw)
	if err != nil || pt["m1"].OutPerM != 2 {
		t.Fatalf("raw form: %v %+v", err, pt)
	}
	wrapped := []byte(`{"prices": {"m2": {"in_per_m": 3, "out_per_m": 4}}}`)
	pt, err = ParsePriceTable(wrapped)
	if err != nil || pt["m2"].InPerM != 3 {
		t.Fatalf("wrapped form: %v %+v", err, pt)
	}
	for _, bad := range []string{`[]`, `{}`, `{"": {"in_per_m": 1}}`, `{"m": {"in_per_m": -1}}`} {
		if _, err := ParsePriceTable([]byte(bad)); err == nil {
			t.Fatalf("ParsePriceTable(%s) accepted invalid input", bad)
		}
	}
}

func TestStoreAppendAndFilter(t *testing.T) {
	st := testStore(t, StoreOptions{})
	for i := 0; i < 5; i++ {
		job := "job-a"
		backend := "expertsim"
		if i%2 == 1 {
			job, backend = "job-b", "openai"
		}
		if err := st.Append(entry(fmt.Sprintf("e-%d", i), job, backend)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := len(st.Entries(Filter{})); got != 5 {
		t.Fatalf("Entries = %d, want 5", got)
	}
	if got := len(st.Entries(Filter{Job: "job-a"})); got != 3 {
		t.Fatalf("job-a entries = %d, want 3", got)
	}
	if got := len(st.Entries(Filter{Backend: "openai"})); got != 2 {
		t.Fatalf("openai entries = %d, want 2", got)
	}
	if got := len(st.Entries(Filter{Limit: 2})); got != 2 {
		t.Fatalf("limited entries = %d, want 2", got)
	}
	// Newest first.
	if st.Entries(Filter{})[0].ID != "e-4" {
		t.Fatalf("Entries not newest-first: %v", st.Entries(Filter{})[0].ID)
	}
	// Tail is oldest first.
	tail := st.Tail(3)
	if len(tail) != 3 || tail[0].ID != "e-2" || tail[2].ID != "e-4" {
		t.Fatalf("Tail order wrong: %+v", tail)
	}
	sum := st.SumJob("job-a")
	if sum.Calls != 3 || sum.TokensIn != 300 || sum.TokensOut != 150 {
		t.Fatalf("SumJob = %+v", sum)
	}
}

func TestStoreRestartReplayAndSupersede(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := testStore(t, StoreOptions{Path: path})
	st.Append(entry("e-1", "j1", "b"))
	e2 := entry("e-2", "j1", "b")
	st.Append(e2)
	// Re-journal e-2 with different tokens: the newer record supersedes.
	e2.TokensIn = 999
	st.Append(e2)
	st.Close()

	st2 := testStore(t, StoreOptions{Path: path})
	if st2.Len() != 2 {
		t.Fatalf("after restart Len = %d, want 2 (supersede)", st2.Len())
	}
	got := st2.Entries(Filter{})[0]
	if got.ID != "e-2" || got.TokensIn != 999 {
		t.Fatalf("superseded entry not newest: %+v", got)
	}
	// Lifetime totals are re-seeded from the retained journal: three
	// journaled records replayed.
	if tot := st2.Totals(); tot.Calls != 3 {
		t.Fatalf("replayed Totals.Calls = %d, want 3", tot.Calls)
	}
}

func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := testStore(t, StoreOptions{Path: path})
	st.Append(entry("e-1", "j", "b"))
	st.Append(entry("e-2", "j", "b"))
	st.Close()
	// Simulate a crash mid-append: torn partial record, no newline.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"id":"e-torn","backend":"b","tok`)
	f.Close()

	st2 := testStore(t, StoreOptions{Path: path})
	if st2.Len() != 2 {
		t.Fatalf("torn tail: Len = %d, want 2", st2.Len())
	}
	// The torn line was newline-terminated at open, so a new append
	// starts a clean record and survives another restart.
	st2.Append(entry("e-3", "j", "b"))
	st2.Close()
	st3 := testStore(t, StoreOptions{Path: path})
	if st3.Len() != 3 {
		t.Fatalf("append after torn tail: Len = %d, want 3", st3.Len())
	}
}

func TestStoreRetention(t *testing.T) {
	st := testStore(t, StoreOptions{MaxEntries: 3})
	for i := 0; i < 10; i++ {
		st.Append(entry(fmt.Sprintf("e-%d", i), "j", "b"))
	}
	if st.Len() != 3 {
		t.Fatalf("count bound: Len = %d, want 3", st.Len())
	}
	if st.Entries(Filter{})[0].ID != "e-9" {
		t.Fatal("count bound evicted the wrong end")
	}
	tot := st.Totals()
	if tot.Calls != 10 || tot.Evicted != 7 {
		t.Fatalf("Totals = %+v, want Calls 10 Evicted 7", tot)
	}

	// Byte bound.
	stb := testStore(t, StoreOptions{MaxBytes: 800})
	for i := 0; i < 10; i++ {
		stb.Append(entry(fmt.Sprintf("e-%d", i), "j", "b"))
	}
	if stb.Bytes() > 800 || stb.Len() == 0 {
		t.Fatalf("byte bound: bytes=%d len=%d", stb.Bytes(), stb.Len())
	}

	// Age bound, relative to the newest entry.
	sta := testStore(t, StoreOptions{MaxAge: time.Hour})
	old := entry("e-old", "j", "b")
	old.Time = time.Now().UTC().Add(-2 * time.Hour)
	sta.Append(old)
	sta.Append(entry("e-new", "j", "b"))
	if sta.Len() != 1 || sta.Entries(Filter{})[0].ID != "e-new" {
		t.Fatalf("age bound kept %+v", sta.Entries(Filter{}))
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := testStore(t, StoreOptions{Path: path, MaxEntries: 4})
	for i := 0; i < 200; i++ {
		st.Append(entry(fmt.Sprintf("e-%d", i), "j", "b"))
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	// Without compaction the journal would hold 200 records (~40KB);
	// compaction keeps it near the 4 live entries.
	if info.Size() > 8<<10 {
		t.Fatalf("journal not compacted: %d bytes", info.Size())
	}
	st.Close()
	st2 := testStore(t, StoreOptions{Path: path, MaxEntries: 4})
	if st2.Len() != 4 || st2.Entries(Filter{})[0].ID != "e-199" {
		t.Fatalf("post-compaction replay: len=%d first=%v", st2.Len(), st2.Entries(Filter{})[0].ID)
	}
}

func TestHealthScorer(t *testing.T) {
	h := newHealthScorer()
	now := time.Now()
	// Below the sample floor: perfectly healthy.
	h.observe("b", 0.1, "ok", now)
	snap := h.Snapshot(now)
	if len(snap) != 1 || snap[0].Score != 1 {
		t.Fatalf("below floor: %+v", snap)
	}
	// All errors: score 0.3, below the 0.5 alert threshold.
	for i := 0; i < 20; i++ {
		h.observe("bad", 0.1, "error", now)
	}
	for _, bh := range h.Snapshot(now) {
		if bh.Backend == "bad" {
			if bh.Score >= 0.5 {
				t.Fatalf("all-error backend score = %v, want < 0.5", bh.Score)
			}
			if bh.ErrorRate != 1 {
				t.Fatalf("error rate = %v, want 1", bh.ErrorRate)
			}
		}
	}
	// Healthy traffic stays healthy.
	for i := 0; i < 20; i++ {
		h.observe("good", 0.1, "ok", now)
	}
	for _, bh := range h.Snapshot(now) {
		if bh.Backend == "good" && bh.Score != 1 {
			t.Fatalf("healthy backend score = %v, want 1", bh.Score)
		}
	}
	// Latency regression: baseline 0.1s, recent 1.0s → penalty.
	for i := 0; i < 32; i++ {
		h.observe("slow", 0.1, "ok", now)
	}
	var score float64
	for i := 0; i < 32; i++ {
		score = h.observe("slow", 1.0, "ok", now)
	}
	if score >= 1 || score < 0.7 {
		t.Fatalf("latency-regressed score = %v, want in [0.7, 1)", score)
	}
}

// fakeClient counts calls and returns canned completions or errors.
type fakeClient struct {
	calls int
	fail  error
}

func (f *fakeClient) Name() string { return "fake" }
func (f *fakeClient) Complete(_ context.Context, req llm.Request) (llm.Completion, error) {
	f.calls++
	if f.fail != nil {
		return llm.Completion{}, f.fail
	}
	return llm.Completion{
		Content: "the answer",
		Model:   req.Model,
		Usage:   llm.Usage{PromptTokens: 10, CompletionTokens: 20},
	}, nil
}

func testReq() llm.Request {
	return llm.Request{
		Model:    "gpt-4o",
		Messages: []llm.Message{{Role: llm.RoleUser, Content: "diagnose this"}},
		Metadata: map[string]string{prompt.MetaKind: prompt.KindDiagnosis, prompt.MetaIssue: "random-access"},
	}
}

func TestWrapRecordsEntries(t *testing.T) {
	st := testStore(t, StoreOptions{})
	reg := obs.NewRegistry()
	c := Wrap(&fakeClient{}, st, WrapOptions{Registry: reg})
	if c.Name() != "fake" {
		t.Fatalf("Name = %q, want fake", c.Name())
	}
	ctx := llm.WithAttempt(llm.WithJobID(context.Background(), "job-42"), 2)
	if _, err := c.Complete(ctx, testReq()); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	ents := st.Entries(Filter{})
	if len(ents) != 1 {
		t.Fatalf("entries = %d, want 1", len(ents))
	}
	e := ents[0]
	if e.Job != "job-42" || e.Attempt != 2 {
		t.Fatalf("provenance not recorded: %+v", e)
	}
	if e.Template != "diagnosis" || e.Issue != "random-access" {
		t.Fatalf("template/issue not recorded: %+v", e)
	}
	if e.Backend != "fake" || e.Model != "gpt-4o" || e.Outcome != "ok" {
		t.Fatalf("call identity wrong: %+v", e)
	}
	if e.TokensIn != 10 || e.TokensOut != 20 {
		t.Fatalf("tokens wrong: %+v", e)
	}
	wantCost := DefaultPrices().Estimate("gpt-4o", 10, 20)
	if e.CostUSD != wantCost {
		t.Fatalf("cost = %v, want %v", e.CostUSD, wantCost)
	}
	if len(e.PromptSHA) != 64 {
		t.Fatalf("prompt sha = %q, want 64 hex chars", e.PromptSHA)
	}
	// Default privacy posture: no raw text in the entry.
	if e.PromptText != "" || e.ResponseText != "" {
		t.Fatalf("raw text persisted without capture opt-in: %+v", e)
	}
	// Metrics exported.
	found := map[string]bool{}
	for _, s := range reg.Gather() {
		found[s.Name] = true
	}
	for _, name := range []string{"ion_llm_cost_usd_total", "ion_llm_backend_health", "ion_llm_ledger_entries", "ion_llm_ledger_bytes"} {
		if !found[name] {
			t.Fatalf("metric %s not exported; have %v", name, found)
		}
	}
}

func TestWrapFailureOutcome(t *testing.T) {
	st := testStore(t, StoreOptions{})
	boom := errors.New("backend exploded")
	c := Wrap(&fakeClient{fail: boom}, st, WrapOptions{})
	if _, err := c.Complete(context.Background(), testReq()); !errors.Is(err, boom) {
		t.Fatalf("error not forwarded: %v", err)
	}
	e := st.Entries(Filter{})[0]
	if e.Outcome != "error" || e.Error == "" {
		t.Fatalf("failure entry: %+v", e)
	}
	if e.TokensOut != 0 || e.TokensIn == 0 {
		t.Fatalf("failure tokens: %+v", e)
	}

	// Timeout classification flows through llm.Outcome.
	ct := Wrap(&fakeClient{fail: context.DeadlineExceeded}, st, WrapOptions{})
	ct.Complete(context.Background(), testReq())
	if e := st.Entries(Filter{})[0]; e.Outcome != "timeout" {
		t.Fatalf("timeout entry: %+v", e)
	}
}

func TestWrapCaptureText(t *testing.T) {
	st := testStore(t, StoreOptions{})
	c := Wrap(&fakeClient{}, st, WrapOptions{CaptureText: true})
	c.Complete(context.Background(), testReq())
	e := st.Entries(Filter{})[0]
	if !strings.Contains(e.PromptText, "diagnose this") || e.ResponseText != "the answer" {
		t.Fatalf("capture-text entry: %+v", e)
	}
}

func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	st, err := Open(StoreOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	rec := Wrap(&fakeClient{}, st, WrapOptions{CaptureText: true})
	req := testReq()
	want, err := rec.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	rep, err := NewReplay(path, nil)
	if err != nil {
		t.Fatalf("NewReplay: %v", err)
	}
	if rep.Len() != 1 {
		t.Fatalf("replay len = %d, want 1", rep.Len())
	}
	got, err := rep.Complete(context.Background(), req)
	if err != nil || got.Content != want.Content || got.Model != want.Model {
		t.Fatalf("replay = %+v, %v; want %+v", got, err, want)
	}
	// Strict mode: an unrecorded prompt is drift, not a silent live call.
	other := testReq()
	other.Messages[0].Content = "something new"
	if _, err := rep.Complete(context.Background(), other); err == nil {
		t.Fatal("replay answered an unrecorded prompt without a fallback")
	}
	// With a fallback, the miss goes live.
	fb := &fakeClient{}
	rep2, _ := NewReplay(path, fb)
	if _, err := rep2.Complete(context.Background(), other); err != nil || fb.calls != 1 {
		t.Fatalf("fallback not used: %v calls=%d", err, fb.calls)
	}
}

func TestReplayErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing file.
	if _, err := NewReplay(filepath.Join(dir, "absent.jsonl"), nil); err == nil {
		t.Fatal("NewReplay accepted a missing file")
	}
	// Hash-only ledger (default privacy posture): nothing to replay.
	path := filepath.Join(dir, "hashonly.jsonl")
	st, _ := Open(StoreOptions{Path: path})
	Wrap(&fakeClient{}, st, WrapOptions{}).Complete(context.Background(), testReq())
	st.Close()
	if _, err := NewReplay(path, nil); err == nil {
		t.Fatal("NewReplay accepted a ledger without captured text")
	}
	// Truncated mid-record line is skipped, rest replays.
	mixed := filepath.Join(dir, "mixed.jsonl")
	good, _ := os.ReadFile(path)
	_ = good
	stm, _ := Open(StoreOptions{Path: mixed})
	Wrap(&fakeClient{}, stm, WrapOptions{CaptureText: true}).Complete(context.Background(), testReq())
	stm.Close()
	f, _ := os.OpenFile(mixed, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"id":"torn","prompt_sha":"abc","response_text":"x`)
	f.Close()
	rep, err := NewReplay(mixed, nil)
	if err != nil || rep.Len() != 1 {
		t.Fatalf("mixed replay: %v len=%d", err, rep.Len())
	}
}

func TestPromptHashStability(t *testing.T) {
	a := testReq()
	b := testReq()
	// Metadata and files must not affect the hash (they carry
	// workdir-dependent paths).
	b.Metadata["ion-csv-dir"] = "/tmp/elsewhere"
	b.Files = []string{"/tmp/elsewhere/x.csv"}
	if PromptHash(a) != PromptHash(b) {
		t.Fatal("PromptHash varies with metadata/files")
	}
	b.Messages[0].Content += "!"
	if PromptHash(a) == PromptHash(b) {
		t.Fatal("PromptHash ignores message content")
	}
}
