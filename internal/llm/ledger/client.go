package ledger

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"time"

	"ion/internal/llm"
	"ion/internal/obs"
	"ion/internal/prompt"
)

// PromptHash is the audit identity of a prompt: hex SHA-256 over the
// model and messages only. Unlike llm.Fingerprint it excludes files and
// metadata (which carry workdir-dependent paths), so the same prompt
// text hashes identically across machines and replays.
func PromptHash(req llm.Request) string {
	var b strings.Builder
	b.WriteString(req.Model)
	b.WriteByte(0)
	for _, m := range req.Messages {
		b.WriteString(string(m.Role))
		b.WriteByte(0)
		b.WriteString(m.Content)
		b.WriteByte(0)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// WrapOptions configures the recording wrapper.
type WrapOptions struct {
	// Prices converts tokens to estimated USD (DefaultPrices when nil).
	Prices PriceTable
	// CaptureText opts into storing raw prompt and response text in the
	// ledger. Off by default: the journal then holds only hashes and
	// accounting, safe to ship in incident bundles.
	CaptureText bool
	// Registry receives ion_llm_cost_usd_total, ion_llm_backend_health,
	// and ion_llm_ledger_{entries,bytes}; nil disables metrics.
	Registry *obs.Registry
}

// Wrap returns a Client that records every Complete call into the
// store and feeds the per-backend health scorer. Compose it inside
// llm.Instrument (ledger wraps the backend, instrumentation wraps the
// ledger) so both layers see the same backend name.
func Wrap(inner llm.Client, store *Store, opts WrapOptions) *Client {
	if opts.Prices == nil {
		opts.Prices = DefaultPrices()
	}
	return &Client{inner: inner, store: store, opts: opts, health: newHealthScorer()}
}

// Client is the recording wrapper; it satisfies llm.Client and exposes
// the health snapshot for the dashboard and status APIs.
type Client struct {
	inner  llm.Client
	store  *Store
	opts   WrapOptions
	health *healthScorer
}

// Name reports the wrapped backend's name, keeping metric labels and
// ledger entries consistent through the wrapper.
func (c *Client) Name() string { return c.inner.Name() }

// Health returns the current per-backend health snapshot.
func (c *Client) Health() []BackendHealth {
	return c.health.Snapshot(time.Now().UTC())
}

// Store returns the underlying audit store.
func (c *Client) Store() *Store { return c.store }

// Complete forwards to the wrapped backend, then journals the call.
// Recording failures never fail the completion — an audit hiccup must
// not take the diagnosis pipeline down with it.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	start := time.Now()
	comp, err := c.inner.Complete(ctx, req)
	latency := time.Since(start)
	c.record(ctx, req, comp, err, latency)
	return comp, err
}

func (c *Client) record(ctx context.Context, req llm.Request, comp llm.Completion, err error, latency time.Duration) {
	backend := c.inner.Name()
	outcome := llm.Outcome(err, req, comp)
	now := time.Now().UTC()

	tokensIn, tokensOut := comp.Usage.PromptTokens, comp.Usage.CompletionTokens
	if err == nil && tokensIn == 0 {
		tokensIn = llm.PromptTokens(req)
	}
	if err != nil {
		// A failed call still spent the prompt upstream; bill the input.
		tokensIn, tokensOut = llm.PromptTokens(req), 0
	}
	model := comp.Model
	if model == "" {
		model = req.Model
	}
	cost := c.opts.Prices.Estimate(model, tokensIn, tokensOut)

	e := Entry{
		Time:      now,
		Job:       llm.JobIDFrom(ctx),
		Template:  req.Metadata[prompt.MetaKind],
		Issue:     req.Metadata[prompt.MetaIssue],
		PromptSHA: PromptHash(req),
		Backend:   backend,
		Model:     model,
		TokensIn:  tokensIn,
		TokensOut: tokensOut,
		LatencyMS: float64(latency.Microseconds()) / 1000,
		Outcome:   outcome,
		Attempt:   llm.AttemptFrom(ctx),
		CostUSD:   cost,
	}
	if err != nil {
		e.Error = truncateErr(err.Error())
	}
	if c.opts.CaptureText {
		e.PromptText = promptText(req)
		e.ResponseText = comp.Content
	}
	c.store.Append(e) // error intentionally dropped; see Complete doc

	score := c.health.observe(backend, latency.Seconds(), outcome, now)
	if reg := c.opts.Registry; reg != nil {
		bl := obs.L("backend", backend)
		reg.Counter("ion_llm_cost_usd_total",
			"Estimated cumulative LLM spend in USD by backend.", bl).Add(cost)
		reg.Gauge("ion_llm_backend_health",
			"Rolling LLM backend health score (1 healthy, <0.5 degraded).", bl).Set(score)
		if c.store != nil {
			reg.Gauge("ion_llm_ledger_entries",
				"LLM audit ledger entries retained.").Set(float64(c.store.Len()))
			reg.Gauge("ion_llm_ledger_bytes",
				"Estimated bytes retained by the LLM audit ledger.").Set(float64(c.store.Bytes()))
		}
	}
}

// promptText flattens a request's messages for text capture.
func promptText(req llm.Request) string {
	var b strings.Builder
	for i, m := range req.Messages {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(string(m.Role))
		b.WriteString(": ")
		b.WriteString(m.Content)
	}
	return b.String()
}

func truncateErr(s string) string {
	const max = 256
	if len(s) > max {
		return s[:max]
	}
	return s
}
