// Package ledger is the LLM interaction audit journal: one JSONL entry
// per Complete call — job, prompt template, prompt hash, backend,
// model, tokens, latency, outcome, retry index, and estimated cost —
// appended to a journal under the service data directory with the same
// crash discipline as the semantic cache and profile stores: unreadable
// (torn) lines are skipped on replay, re-journaled ids supersede, and
// the journal is compacted via temp file + rename when dead lines
// outnumber live entries. Raw prompt and response text is NOT stored
// unless capture is explicitly opted into; by default the ledger is an
// audit trail that can be shared without leaking workload contents.
//
// On top of the store, the package provides the price table that turns
// tokens into estimated dollars, the recording client wrapper that
// feeds the store, the rolling per-backend health scorer, and a replay
// client that re-runs a text-captured ledger deterministically.
package ledger

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Entry is one recorded LLM call.
type Entry struct {
	// ID is unique per call ("e-" + 12 hex chars); a re-journaled ID
	// supersedes the earlier record on replay.
	ID string `json:"id"`
	// Time is when the call completed.
	Time time.Time `json:"t"`
	// Job is the analysis job the call served ("" for calls outside a
	// job, e.g. interactive chat).
	Job string `json:"job,omitempty"`
	// Template is the prompt-template id ("diagnosis", "summary",
	// "chat"); Issue is the issue the diagnosis prompt targeted.
	Template string `json:"template,omitempty"`
	Issue    string `json:"issue,omitempty"`
	// PromptSHA is the hex SHA-256 of the prompt (model + messages),
	// the audit identity of what was asked without storing the text.
	PromptSHA string `json:"prompt_sha"`
	// Backend and Model identify who answered.
	Backend string `json:"backend"`
	Model   string `json:"model,omitempty"`
	// TokensIn/TokensOut are the usage counts (estimated when the
	// backend reports none).
	TokensIn  int `json:"tokens_in"`
	TokensOut int `json:"tokens_out"`
	// LatencyMS is the call's wall time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Outcome is ok, error, timeout, or truncated (llm.Outcome).
	Outcome string `json:"outcome"`
	// Attempt is the analysis retry index the call ran under (1 on the
	// first attempt, 0 outside a job).
	Attempt int `json:"attempt,omitempty"`
	// CostUSD is the estimated cost from the price table.
	CostUSD float64 `json:"cost_usd"`
	// PromptText/ResponseText are populated only when text capture is
	// opted into (-ledger-capture-text); empty by default.
	PromptText   string `json:"prompt_text,omitempty"`
	ResponseText string `json:"response_text,omitempty"`
	// Error is the failure message for non-ok outcomes, truncated.
	Error string `json:"error,omitempty"`
}

// size estimates the retained bytes of an entry (≈ its journal-line
// cost), used for the store's byte bound.
func (e Entry) size() int64 {
	return int64(len(e.ID)+len(e.Job)+len(e.Template)+len(e.Issue)+
		len(e.PromptSHA)+len(e.Backend)+len(e.Model)+len(e.Outcome)+
		len(e.PromptText)+len(e.ResponseText)+len(e.Error)) + 200
}

// StoreOptions configures a ledger Store.
type StoreOptions struct {
	// Path is the JSON-lines journal file; required.
	Path string
	// MaxEntries bounds retained entries (default 4096; negative
	// disables the count bound).
	MaxEntries int
	// MaxBytes bounds the estimated retained bytes (default 16 MiB;
	// negative disables).
	MaxBytes int64
	// MaxAge drops entries older than this relative to the newest
	// (0 or negative disables the age bound; cost audit history is
	// kept until the count/byte bounds push it out).
	MaxAge time.Duration
}

func (o *StoreOptions) applyDefaults() {
	if o.MaxEntries == 0 {
		o.MaxEntries = 4096
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 16 << 20
	}
}

// Totals is the store's cumulative accounting: every entry currently
// retained plus everything retention has dropped since this store was
// opened (a restart re-seeds from what the journal retained).
type Totals struct {
	Calls     int64   `json:"calls"`
	TokensIn  int64   `json:"tokens_in"`
	TokensOut int64   `json:"tokens_out"`
	CostUSD   float64 `json:"cost_usd"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Evicted   int64   `json:"evicted"`
}

// JobSum is the per-job rollup of retained ledger entries.
type JobSum struct {
	Job       string  `json:"job"`
	Calls     int     `json:"calls"`
	TokensIn  int     `json:"tokens_in"`
	TokensOut int     `json:"tokens_out"`
	CostUSD   float64 `json:"cost_usd"`
}

// Filter selects entries for Entries: zero fields match everything.
type Filter struct {
	// Job/Backend filter by exact match when non-empty.
	Job     string
	Backend string
	// Limit bounds the result count (≤0 means all retained).
	Limit int
}

// Store is the journaled, retention-bounded audit log. All methods are
// safe for concurrent use and safe on a nil receiver.
type Store struct {
	mu   sync.Mutex
	opts StoreOptions
	file *os.File
	ents []storedEntry // oldest first
	size int64
	// lines counts journal records since the last compaction; evictions
	// are not journaled, so compaction triggers when dead lines
	// outnumber live entries.
	lines   int
	evicted int64

	// Lifetime accounting survives eviction (but not restart beyond
	// what the journal retained — document, don't pretend otherwise).
	calls, tokensIn, tokensOut, errors, timeouts int64
	costUSD                                      float64
}

type storedEntry struct {
	e    Entry
	size int64
}

// Open loads (or creates) the journal at opts.Path, replaying it with
// the bounds enforced. Unreadable lines — including a torn final write
// from a crash — are skipped, never fatal.
func Open(opts StoreOptions) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("ledger: StoreOptions.Path is required")
	}
	opts.applyDefaults()
	if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	st := &Store{opts: opts}
	if err := st.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	// A crash can leave the journal without a final newline; terminate
	// the torn line so the next append starts a fresh record instead of
	// concatenating onto garbage.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		tail := make([]byte, 1)
		if rf, err := os.Open(opts.Path); err == nil {
			if _, err := rf.ReadAt(tail, info.Size()-1); err == nil && tail[0] != '\n' {
				f.Write([]byte{'\n'})
			}
			rf.Close()
		}
	}
	st.file = f
	return st, nil
}

// replay loads the journal into memory, oldest first, re-seeding the
// lifetime totals from what survived retention.
func (st *Store) replay() error {
	f, err := os.Open(st.opts.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		st.lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.ID == "" || e.Backend == "" {
			continue
		}
		st.insertLocked(e)
		st.countLocked(e)
	}
	// Scanner errors (a torn oversized tail) degrade to a partial load,
	// same policy as unreadable lines.
	return nil
}

// countLocked folds one entry into the lifetime totals.
func (st *Store) countLocked(e Entry) {
	st.calls++
	st.tokensIn += int64(e.TokensIn)
	st.tokensOut += int64(e.TokensOut)
	st.costUSD += e.CostUSD
	switch e.Outcome {
	case "error":
		st.errors++
	case "timeout":
		st.timeouts++
	}
}

// insertLocked appends an entry and applies the bounds. A re-written
// ID (same entry journaled twice) supersedes the earlier record.
func (st *Store) insertLocked(e Entry) {
	for i := range st.ents {
		if st.ents[i].e.ID == e.ID {
			st.size -= st.ents[i].size
			st.ents = append(st.ents[:i], st.ents[i+1:]...)
			break
		}
	}
	se := storedEntry{e: e, size: e.size()}
	st.ents = append(st.ents, se)
	st.size += se.size
	st.evictLocked(e.Time)
}

// evictLocked drops oldest-first until the age, count, and byte bounds
// hold, keeping at least the newest entry.
func (st *Store) evictLocked(now time.Time) {
	cutoff := time.Time{}
	if st.opts.MaxAge > 0 {
		cutoff = now.Add(-st.opts.MaxAge)
	}
	for len(st.ents) > 1 {
		victim := st.ents[0]
		over := (st.opts.MaxEntries > 0 && len(st.ents) > st.opts.MaxEntries) ||
			(st.opts.MaxBytes > 0 && st.size > st.opts.MaxBytes) ||
			(!cutoff.IsZero() && victim.e.Time.Before(cutoff))
		if !over {
			return
		}
		st.size -= victim.size
		st.ents = st.ents[1:]
		st.evicted++
	}
}

// Append journals and retains one entry, assigning an ID if empty.
func (st *Store) Append(e Entry) error {
	if st == nil {
		return nil
	}
	if e.ID == "" {
		e.ID = newEntryID()
	}
	if e.Backend == "" {
		return fmt.Errorf("ledger: entry needs a backend")
	}
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("ledger: journaling entry: %w", err)
		}
		st.lines++
	}
	st.insertLocked(e)
	st.countLocked(e)
	st.compactLocked()
	return nil
}

// compactLocked rewrites the journal when evicted lines outnumber live
// entries, via temp file + rename so a crash mid-compact leaves the
// old journal intact.
func (st *Store) compactLocked() {
	if st.file == nil || st.lines <= 2*len(st.ents)+16 {
		return
	}
	tmp := st.opts.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	n := 0
	for _, se := range st.ents {
		line, err := json.Marshal(se.e)
		if err != nil {
			continue
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, st.opts.Path); err != nil {
		os.Remove(tmp)
		return
	}
	old := st.file
	nf, err := os.OpenFile(st.opts.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep appending to the renamed-over handle; only post-compaction
		// writes are lost on this degenerate path.
		return
	}
	old.Close()
	st.file = nf
	st.lines = n
}

// Entries returns retained entries newest first, filtered.
func (st *Store) Entries(f Filter) []Entry {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Entry, 0, len(st.ents))
	for i := len(st.ents) - 1; i >= 0; i-- {
		e := st.ents[i].e
		if f.Job != "" && e.Job != f.Job {
			continue
		}
		if f.Backend != "" && e.Backend != f.Backend {
			continue
		}
		out = append(out, e)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Tail returns the newest n entries, oldest first — the shape an
// incident bundle wants (read top to bottom like a log).
func (st *Store) Tail(n int) []Entry {
	ents := st.Entries(Filter{Limit: n})
	for i, j := 0, len(ents)-1; i < j; i, j = i+1, j-1 {
		ents[i], ents[j] = ents[j], ents[i]
	}
	return ents
}

// SumJob rolls up the retained entries of one job.
func (st *Store) SumJob(job string) JobSum {
	sum := JobSum{Job: job}
	if st == nil {
		return sum
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, se := range st.ents {
		if se.e.Job != job {
			continue
		}
		sum.Calls++
		sum.TokensIn += se.e.TokensIn
		sum.TokensOut += se.e.TokensOut
		sum.CostUSD += se.e.CostUSD
	}
	return sum
}

// JobSums rolls up every job present in the retained entries, most
// expensive first, bounded by limit (≤0 means all).
func (st *Store) JobSums(limit int) []JobSum {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	byJob := map[string]*JobSum{}
	for _, se := range st.ents {
		if se.e.Job == "" {
			continue
		}
		s := byJob[se.e.Job]
		if s == nil {
			s = &JobSum{Job: se.e.Job}
			byJob[se.e.Job] = s
		}
		s.Calls++
		s.TokensIn += se.e.TokensIn
		s.TokensOut += se.e.TokensOut
		s.CostUSD += se.e.CostUSD
	}
	st.mu.Unlock()
	out := make([]JobSum, 0, len(byJob))
	for _, s := range byJob {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CostUSD != out[j].CostUSD {
			return out[i].CostUSD > out[j].CostUSD
		}
		return out[i].Job < out[j].Job
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// TemplateTokens sums tokens by prompt template over the retained
// entries, for the per-template histogram on /dashboard/llm.
func (st *Store) TemplateTokens() map[string]int64 {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]int64{}
	for _, se := range st.ents {
		t := se.e.Template
		if t == "" {
			t = "other"
		}
		out[t] += int64(se.e.TokensIn + se.e.TokensOut)
	}
	return out
}

// Totals returns the cumulative accounting snapshot.
func (st *Store) Totals() Totals {
	if st == nil {
		return Totals{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Totals{
		Calls:     st.calls,
		TokensIn:  st.tokensIn,
		TokensOut: st.tokensOut,
		CostUSD:   st.costUSD,
		Errors:    st.errors,
		Timeouts:  st.timeouts,
		Entries:   len(st.ents),
		Bytes:     st.size,
		Evicted:   st.evicted,
	}
}

// Len returns the number of retained entries.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.ents)
}

// Bytes returns the estimated retained bytes.
func (st *Store) Bytes() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.size
}

// Close flushes and closes the journal.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file == nil {
		return nil
	}
	err := st.file.Close()
	st.file = nil
	return err
}

// newEntryID returns a fresh entry id: "e-" + 12 random hex chars.
func newEntryID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("e-%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "e-" + hex.EncodeToString(b[:])
}
