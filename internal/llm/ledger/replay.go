package ledger

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"ion/internal/llm"
)

// Replay is a Client that answers from a text-captured ledger file:
// each incoming request is hashed with PromptHash and served the
// recorded response, so `ion -replay-ledger <file>` re-runs a recorded
// prompt set deterministically for drift regression testing.
type Replay struct {
	entries  map[string]Entry // PromptSHA -> newest text-bearing entry
	fallback llm.Client
}

// NewReplay loads a ledger journal and indexes its text-bearing
// entries (those recorded with -ledger-capture-text). Later entries
// for the same prompt hash win. Unreadable lines are skipped, same as
// store replay; a file with zero replayable entries is an error — a
// hash-only ledger cannot answer prompts.
func NewReplay(path string, fallback llm.Client) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: replay: %w", err)
	}
	defer f.Close()
	entries := map[string]Entry{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.PromptSHA == "" || e.ResponseText == "" {
			continue
		}
		entries[e.PromptSHA] = e
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("ledger: replay: %s has no text-captured entries (record with -ledger-capture-text)", path)
	}
	return &Replay{entries: entries, fallback: fallback}, nil
}

// Name identifies the replay backend (or the fallback's name when the
// replay is transparent over a live client).
func (r *Replay) Name() string {
	if r.fallback != nil {
		return r.fallback.Name()
	}
	return "ledger-replay"
}

// Len returns the number of replayable prompts.
func (r *Replay) Len() int { return len(r.entries) }

// Complete serves the recorded response for the request's prompt hash.
// A miss falls through to the fallback client when one is configured,
// and errors otherwise — strict replay surfaces drift instead of
// silently going live.
func (r *Replay) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	if err := ctx.Err(); err != nil {
		return llm.Completion{}, err
	}
	e, ok := r.entries[PromptHash(req)]
	if !ok {
		if r.fallback != nil {
			return r.fallback.Complete(ctx, req)
		}
		return llm.Completion{}, fmt.Errorf("ledger: replay: no recorded response for prompt %s (drift?)", PromptHash(req)[:12])
	}
	return llm.Completion{
		Content: e.ResponseText,
		Model:   e.Model,
		Usage:   llm.Usage{PromptTokens: e.TokensIn, CompletionTokens: e.TokensOut},
	}, nil
}
