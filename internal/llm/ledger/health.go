package ledger

import (
	"sort"
	"sync"
	"time"
)

// healthWindow is how many recent calls the per-backend health score
// considers; small enough to react within minutes of a degradation,
// large enough that one flaky call doesn't swing the score.
const healthWindow = 128

// healthMinSamples is the observation floor below which a backend is
// reported perfectly healthy — too little data to accuse anyone.
const healthMinSamples = 5

// BackendHealth is a point-in-time health snapshot for one backend.
// Score is in [0, 1]: 1 is healthy, values below 0.5 trip the built-in
// LLMBackendDegraded alert rule.
type BackendHealth struct {
	Backend     string  `json:"backend"`
	Score       float64 `json:"score"`
	Calls       int     `json:"calls"`
	ErrorRate   float64 `json:"error_rate"`
	TimeoutRate float64 `json:"timeout_rate"`
	// P95Latency is the p95 over the newer half of the window;
	// BaselineP95 is the p95 over the older half — the trailing
	// baseline the latency penalty compares against. Seconds.
	P95Latency  float64 `json:"p95_latency_s"`
	BaselineP95 float64 `json:"baseline_p95_s"`
	Updated     time.Time
}

// healthScorer keeps a rolling window of call records per backend and
// derives the health score:
//
//	score = clamp(1 − 0.7·errRate − 0.7·timeoutRate − 0.3·latPenalty, 0, 1)
//
// where latPenalty = clamp((p95_recent − p95_baseline) / (3·p95_baseline), 0, 1),
// i.e. the penalty saturates when recent p95 reaches 4× the trailing
// baseline. The 0.7 weights make an all-error (or all-timeout) backend
// score 0.3 — decisively below the 0.5 alert threshold — while a
// latency regression alone bottoms out at 0.7 and only degrades the
// score further when paired with failures.
type healthScorer struct {
	mu       sync.Mutex
	backends map[string]*healthRing
}

type healthRing struct {
	recs []healthRec // ring buffer, len ≤ healthWindow
	next int
	full bool
}

type healthRec struct {
	latency  float64
	outcome  string
	observed time.Time
}

func newHealthScorer() *healthScorer {
	return &healthScorer{backends: map[string]*healthRing{}}
}

// observe records one call for backend and returns its fresh score.
func (h *healthScorer) observe(backend string, latency float64, outcome string, now time.Time) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := h.backends[backend]
	if r == nil {
		r = &healthRing{recs: make([]healthRec, 0, healthWindow)}
		h.backends[backend] = r
	}
	rec := healthRec{latency: latency, outcome: outcome, observed: now}
	if r.full {
		r.recs[r.next] = rec
		r.next = (r.next + 1) % healthWindow
	} else {
		r.recs = append(r.recs, rec)
		if len(r.recs) == healthWindow {
			r.full = true
		}
	}
	return r.snapshot(backend, now).Score
}

// Snapshot returns health for every observed backend, sorted by name.
func (h *healthScorer) Snapshot(now time.Time) []BackendHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]BackendHealth, 0, len(h.backends))
	for name, r := range h.backends {
		out = append(out, r.snapshot(name, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

// ordered returns the ring's records oldest first.
func (r *healthRing) ordered() []healthRec {
	if !r.full {
		return r.recs
	}
	out := make([]healthRec, 0, healthWindow)
	out = append(out, r.recs[r.next:]...)
	out = append(out, r.recs[:r.next]...)
	return out
}

func (r *healthRing) snapshot(backend string, now time.Time) BackendHealth {
	recs := r.ordered()
	bh := BackendHealth{Backend: backend, Score: 1, Calls: len(recs), Updated: now}
	if len(recs) < healthMinSamples {
		return bh
	}
	var errs, timeouts int
	for _, rec := range recs {
		switch rec.outcome {
		case "error":
			errs++
		case "timeout":
			timeouts++
		}
	}
	bh.ErrorRate = float64(errs) / float64(len(recs))
	bh.TimeoutRate = float64(timeouts) / float64(len(recs))

	// Split the window in half: the older half is the trailing baseline
	// the newer half is judged against. Only successful calls carry
	// meaningful latency (failures are already penalized by rate).
	half := len(recs) / 2
	baseline := okLatencies(recs[:half])
	recent := okLatencies(recs[half:])
	bh.BaselineP95 = p95(baseline)
	bh.P95Latency = p95(recent)
	latPenalty := 0.0
	if bh.BaselineP95 > 0 && bh.P95Latency > bh.BaselineP95 {
		latPenalty = (bh.P95Latency - bh.BaselineP95) / (3 * bh.BaselineP95)
		if latPenalty > 1 {
			latPenalty = 1
		}
	}
	score := 1 - 0.7*bh.ErrorRate - 0.7*bh.TimeoutRate - 0.3*latPenalty
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	bh.Score = score
	return bh
}

func okLatencies(recs []healthRec) []float64 {
	out := make([]float64, 0, len(recs))
	for _, rec := range recs {
		if rec.outcome == "ok" || rec.outcome == "truncated" {
			out = append(out, rec.latency)
		}
	}
	return out
}

// p95 returns the 95th-percentile of vals (nearest-rank), 0 when empty.
func p95(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(0.95 * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
