package ledger

import (
	"archive/tar"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ion/internal/obs"
	"ion/internal/obs/flight"
	"ion/internal/obs/series"
)

// TestBackendDegradedIncident is the acceptance path for the health
// scorer: a failing backend drags ion_llm_backend_health below 0.5,
// the built-in LLMBackendDegraded rule fires, the firing transition
// captures a flight-recorder incident, and the bundle's
// llm_ledger.json holds the recent ledger tail — with hashes and
// accounting only, no prompt text (default privacy posture).
func TestBackendDegradedIncident(t *testing.T) {
	reg := obs.NewRegistry()
	lst := testStore(t, StoreOptions{})
	flaky := &fakeClient{fail: errors.New("backend down")}
	client := Wrap(flaky, lst, WrapOptions{Registry: reg})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		client.Complete(ctx, testReq())
	}

	// The gauge the rule watches is below threshold.
	var health float64 = -1
	for _, s := range reg.Gather() {
		if s.Name == "ion_llm_backend_health" {
			health = s.Value
		}
	}
	if health < 0 || health >= 0.5 {
		t.Fatalf("ion_llm_backend_health = %v, want exported and < 0.5", health)
	}

	dir := t.TempDir()
	rec, err := flight.New(flight.Options{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetLedgerTailFn(func() any { return lst.Tail(50) })

	var fired []string
	var manifest flight.Manifest
	store := series.New(reg, series.Options{
		Interval: time.Second,
		Rules:    series.DefaultRules(),
		OnTransition: func(tr series.RuleTransition) {
			if tr.To != series.StateFiring {
				return
			}
			fired = append(fired, tr.Rule)
			if tr.Rule == "LLMBackendDegraded" {
				m, cerr := rec.Capture("alert:" + tr.Rule)
				if cerr != nil {
					t.Errorf("capture: %v", cerr)
					return
				}
				manifest = m
			}
		},
	})
	// Breach → pending; sustained past the rule's 1m hold → firing.
	now := time.Now()
	store.Scrape(now.Add(-2 * time.Minute))
	store.Scrape(now)

	found := false
	for _, r := range fired {
		if r == "LLMBackendDegraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("LLMBackendDegraded did not fire; fired = %v, alerts = %+v", fired, store.Alerts())
	}
	if manifest.ID == "" {
		t.Fatal("firing transition captured no incident")
	}

	// The bundle carries the ledger tail.
	files := readBundle(t, filepath.Join(dir, manifest.ID+".tar.gz"))
	tail, ok := files["llm_ledger.json"]
	if !ok {
		t.Fatalf("bundle files = %v, want llm_ledger.json", keys(files))
	}
	var entries []Entry
	if err := json.Unmarshal(tail, &entries); err != nil {
		t.Fatalf("llm_ledger.json does not parse: %v", err)
	}
	if len(entries) != 20 {
		t.Fatalf("ledger tail holds %d entries, want 20", len(entries))
	}
	e := entries[0]
	if e.Backend != "fake" || e.Outcome != "error" || len(e.PromptSHA) != 64 {
		t.Fatalf("tail entry wrong: %+v", e)
	}
	// Privacy: neither the bundle nor the on-disk journal holds the
	// prompt text under default flags.
	if strings.Contains(string(tail), "diagnose this") {
		t.Fatal("incident bundle leaked raw prompt text")
	}
	raw, err := os.ReadFile(lst.opts.Path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "diagnose this") {
		t.Fatal("ledger journal leaked raw prompt text")
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// readBundle untars an incident bundle into name → contents.
func readBundle(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(zr)
	files := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle is not a tar.gz: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		files[hdr.Name] = body
	}
	return files
}
