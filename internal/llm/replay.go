package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Recorder wraps a client and persists every (request, completion)
// pair under a directory, keyed by the request fingerprint. Recording
// a session once makes later runs reproducible through Replay — ION's
// answer to non-deterministic LLM backends in regression tests.
type Recorder struct {
	inner Client
	dir   string
	mu    sync.Mutex
}

// NewRecorder returns a recording wrapper storing into dir.
func NewRecorder(inner Client, dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("llm: recorder: %w", err)
	}
	return &Recorder{inner: inner, dir: dir}, nil
}

// Name implements Client.
func (r *Recorder) Name() string { return r.inner.Name() + "+record" }

type cassette struct {
	Request    Request    `json:"request"`
	Completion Completion `json:"completion"`
}

// Complete implements Client: delegates, then persists.
func (r *Recorder) Complete(ctx context.Context, req Request) (Completion, error) {
	comp, err := r.inner.Complete(ctx, req)
	if err != nil {
		return Completion{}, err
	}
	data, err := json.MarshalIndent(cassette{Request: req, Completion: comp}, "", "  ")
	if err != nil {
		return Completion{}, fmt.Errorf("llm: recorder: %w", err)
	}
	path := filepath.Join(r.dir, Fingerprint(req)+".json")
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return Completion{}, fmt.Errorf("llm: recorder: %w", err)
	}
	return comp, nil
}

// Replay serves completions recorded by Recorder. Unknown requests
// fail (strict mode) or fall through to an optional fallback client.
type Replay struct {
	dir      string
	fallback Client
}

// NewReplay returns a replay client reading from dir. fallback may be
// nil, making unknown requests an error.
func NewReplay(dir string, fallback Client) (*Replay, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("llm: replay: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("llm: replay: %s is not a directory", dir)
	}
	return &Replay{dir: dir, fallback: fallback}, nil
}

// Name implements Client.
func (r *Replay) Name() string { return "replay" }

// Complete implements Client.
func (r *Replay) Complete(ctx context.Context, req Request) (Completion, error) {
	path := filepath.Join(r.dir, Fingerprint(req)+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && r.fallback != nil {
			return r.fallback.Complete(ctx, req)
		}
		return Completion{}, fmt.Errorf("llm: replay: no recording for request %s: %w", Fingerprint(req), err)
	}
	var c cassette
	if err := json.Unmarshal(data, &c); err != nil {
		return Completion{}, fmt.Errorf("llm: replay: corrupt cassette %s: %w", path, err)
	}
	return c.Completion, nil
}
