package llm

import (
	"context"
	"time"

	"ion/internal/obs"
)

// Instrument wraps a Client with telemetry: every Complete call records
// request count and latency by backend and outcome, token usage by
// kind, and an llm_complete span when the context carries a tracer.
// Wrap the outermost client (after record/replay composition) so the
// numbers reflect what the pipeline actually waited on.
func Instrument(c Client, reg *obs.Registry) Client {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &instrumented{c: c, reg: reg}
}

type instrumented struct {
	c   Client
	reg *obs.Registry
}

func (i *instrumented) Name() string { return i.c.Name() }

func (i *instrumented) Complete(ctx context.Context, req Request) (Completion, error) {
	backend := obs.L("backend", i.c.Name())
	ctx, span := obs.StartSpan(ctx, "llm_complete", backend)
	start := time.Now()
	comp, err := i.c.Complete(ctx, req)
	elapsed := time.Since(start).Seconds()
	span.SetError(err)
	span.End()

	// Outcome classification is shared with the audit ledger, so the
	// request counter, the ledger entries, and the backend health score
	// can never disagree on what a call was.
	outcome := Outcome(err, req, comp)
	i.reg.Counter("ion_llm_requests_total",
		"LLM completion requests by backend and outcome.",
		backend, obs.L("outcome", outcome)).Inc()
	i.reg.Histogram("ion_llm_request_seconds",
		"LLM completion latency by backend.", nil, backend).Observe(elapsed)
	if err == nil {
		i.reg.Counter("ion_llm_tokens_total",
			"LLM tokens consumed by backend and kind.",
			backend, obs.L("kind", "prompt")).Add(float64(comp.Usage.PromptTokens))
		i.reg.Counter("ion_llm_tokens_total",
			"LLM tokens consumed by backend and kind.",
			backend, obs.L("kind", "completion")).Add(float64(comp.Usage.CompletionTokens))
	}
	return comp, err
}
