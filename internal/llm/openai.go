package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// OpenAIConfig configures the OpenAI-compatible HTTP client. Any
// endpoint implementing POST {BaseURL}/chat/completions works (OpenAI,
// vLLM, llama.cpp server, LM Studio, ...).
type OpenAIConfig struct {
	BaseURL string // e.g. "https://api.openai.com/v1" or "http://localhost:8000/v1"
	APIKey  string // bearer token; empty for unauthenticated local servers
	Model   string // default model when the request does not set one
	// MaxRetries bounds retry attempts on transient failures (429/5xx).
	MaxRetries int
	// RetryBackoff is the base backoff, doubled per attempt.
	RetryBackoff time.Duration
	// HTTPClient overrides the transport; nil uses a 120 s-timeout client.
	HTTPClient *http.Client
	// InlineFiles embeds the contents of Request.Files into the prompt
	// as fenced blocks, emulating Assistants-API file access for plain
	// chat endpoints. Enabled by default via NewOpenAI.
	InlineFiles bool
	// MaxInlineBytes caps how much of each file is inlined (0 = 256 KiB).
	MaxInlineBytes int64
}

// OpenAI is an OpenAI-compatible chat-completions client.
type OpenAI struct {
	cfg OpenAIConfig
}

// NewOpenAI returns a client with sane defaults applied.
func NewOpenAI(cfg OpenAIConfig) (*OpenAI, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("llm: OpenAI BaseURL is required")
	}
	if cfg.Model == "" {
		cfg.Model = "gpt-4-1106-preview"
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 500 * time.Millisecond
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 120 * time.Second}
	}
	if cfg.MaxInlineBytes == 0 {
		cfg.MaxInlineBytes = 256 << 10
	}
	cfg.InlineFiles = true
	return &OpenAI{cfg: cfg}, nil
}

// Name implements Client.
func (c *OpenAI) Name() string { return "openai" }

// wire types for the chat-completions protocol.
type chatRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature"`
	MaxTokens   int       `json:"max_tokens,omitempty"`
}

type chatResponse struct {
	Model   string `json:"model"`
	Choices []struct {
		Message      Message `json:"message"`
		FinishReason string  `json:"finish_reason"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Complete implements Client by POSTing to /chat/completions with
// retry on 429/5xx.
func (c *OpenAI) Complete(ctx context.Context, req Request) (Completion, error) {
	model := req.Model
	if model == "" {
		model = c.cfg.Model
	}
	messages := req.Messages
	if c.cfg.InlineFiles && len(req.Files) > 0 {
		attach, err := c.inlineFiles(req.Files)
		if err != nil {
			return Completion{}, err
		}
		messages = append(append([]Message(nil), messages...), Message{
			Role:    RoleUser,
			Content: attach,
		})
	}
	body, err := json.Marshal(chatRequest{
		Model:       model,
		Messages:    messages,
		Temperature: req.Temperature,
		MaxTokens:   req.MaxTokens,
	})
	if err != nil {
		return Completion{}, fmt.Errorf("llm: marshaling chat request: %w", err)
	}

	url := strings.TrimRight(c.cfg.BaseURL, "/") + "/chat/completions"
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return Completion{}, fmt.Errorf("llm: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		comp, retryable, err := c.post(ctx, url, body)
		if err == nil {
			return comp, nil
		}
		lastErr = err
		if !retryable {
			return Completion{}, err
		}
	}
	return Completion{}, fmt.Errorf("llm: giving up after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

func (c *OpenAI) post(ctx context.Context, url string, body []byte) (Completion, bool, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return Completion{}, false, fmt.Errorf("llm: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.cfg.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	resp, err := c.cfg.HTTPClient.Do(httpReq)
	if err != nil {
		return Completion{}, true, fmt.Errorf("llm: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return Completion{}, true, fmt.Errorf("llm: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
		return Completion{}, retryable,
			fmt.Errorf("llm: %s returned %d: %s", url, resp.StatusCode, truncate(string(data), 300))
	}
	var cr chatResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		return Completion{}, false, fmt.Errorf("llm: decoding response: %w", err)
	}
	if cr.Error != nil {
		return Completion{}, false, fmt.Errorf("llm: API error: %s", cr.Error.Message)
	}
	if len(cr.Choices) == 0 {
		return Completion{}, false, fmt.Errorf("llm: response has no choices")
	}
	return Completion{
		Content: cr.Choices[0].Message.Content,
		Model:   cr.Model,
		Usage: Usage{
			PromptTokens:     cr.Usage.PromptTokens,
			CompletionTokens: cr.Usage.CompletionTokens,
		},
	}, false, nil
}

// inlineFiles renders file attachments as fenced CSV blocks, truncated
// to MaxInlineBytes each.
func (c *OpenAI) inlineFiles(files []string) (string, error) {
	var b strings.Builder
	b.WriteString("Attached data files:\n")
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return "", fmt.Errorf("llm: opening attachment: %w", err)
		}
		data, err := io.ReadAll(io.LimitReader(f, c.cfg.MaxInlineBytes))
		f.Close()
		if err != nil {
			return "", fmt.Errorf("llm: reading attachment %s: %w", path, err)
		}
		fmt.Fprintf(&b, "\n### %s\n```csv\n%s", filepath.Base(path), data)
		if int64(len(data)) == c.cfg.MaxInlineBytes {
			b.WriteString("\n... (truncated)")
		}
		b.WriteString("\n```\n")
	}
	return b.String(), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
