package llm

import (
	"context"
	"errors"
	"net"
)

// Call outcome labels shared by the instrumentation wrapper, the audit
// ledger, and the backend health scorer, so every consumer classifies a
// completion the same way.
const (
	OutcomeOK        = "ok"
	OutcomeError     = "error"
	OutcomeTimeout   = "timeout"
	OutcomeTruncated = "truncated"
)

// Outcome classifies one completed Complete call:
//
//   - "timeout" when the error is a context deadline or a network
//     timeout — the backend was too slow, not wrong;
//   - "error" for every other failure;
//   - "truncated" when the call succeeded but the response ran into the
//     request's MaxTokens cap — the content is usable but incomplete;
//   - "ok" otherwise.
func Outcome(err error, req Request, comp Completion) string {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return OutcomeTimeout
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return OutcomeTimeout
		}
		return OutcomeError
	}
	if req.MaxTokens > 0 && comp.Usage.CompletionTokens >= req.MaxTokens {
		return OutcomeTruncated
	}
	return OutcomeOK
}

// Context keys for per-call provenance. The jobs service stamps the
// analysis context with the job id and attempt number; the audit ledger
// reads them back so every recorded LLM call names the job (and retry)
// it served. Unexported key types keep collisions impossible.
type (
	jobIDKey   struct{}
	attemptKey struct{}
)

// WithJobID returns a context carrying the job id LLM calls under it
// should be attributed to.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFrom returns the job id stamped by WithJobID, or "".
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// WithAttempt returns a context carrying the analysis attempt number
// (1 on the first run) LLM calls under it belong to.
func WithAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// AttemptFrom returns the attempt number stamped by WithAttempt, or 0.
func AttemptFrom(ctx context.Context) int {
	n, _ := ctx.Value(attemptKey{}).(int)
	return n
}
