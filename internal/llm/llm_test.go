package llm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func sampleRequest() Request {
	return Request{
		Model: "test-model",
		Messages: []Message{
			{Role: RoleSystem, Content: "you are an expert"},
			{Role: RoleUser, Content: "analyze this"},
		},
		Metadata: map[string]string{"ion-issue": "small-io"},
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint(sampleRequest())
	b := Fingerprint(sampleRequest())
	if a != b {
		t.Error("fingerprint not deterministic")
	}
	mod := sampleRequest()
	mod.Messages[1].Content = "analyze that"
	if Fingerprint(mod) == a {
		t.Error("content change did not change fingerprint")
	}
	mod2 := sampleRequest()
	mod2.Metadata["ion-issue"] = "metadata"
	if Fingerprint(mod2) == a {
		t.Error("metadata change did not change fingerprint")
	}
}

func TestFingerprintMetadataOrderInsensitive(t *testing.T) {
	a := sampleRequest()
	a.Metadata = map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"}
	b := sampleRequest()
	b.Metadata = map[string]string{"k3": "v3", "k1": "v1", "k2": "v2"}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint sensitive to map iteration order")
	}
}

func TestFingerprintCollisionResistanceProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		ra := Request{Messages: []Message{{Role: RoleUser, Content: a}}}
		rb := Request{Messages: []Message{{Role: RoleUser, Content: b}}}
		return Fingerprint(ra) != Fingerprint(rb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimateTokens(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Error("empty string should be 0 tokens")
	}
	if got := EstimateTokens("abcd"); got != 1 {
		t.Errorf("4 chars = %d tokens", got)
	}
	if got := EstimateTokens("abcde"); got != 2 {
		t.Errorf("5 chars = %d tokens (ceil)", got)
	}
	req := sampleRequest()
	if PromptTokens(req) <= 0 {
		t.Error("prompt tokens not positive")
	}
}

func TestUsageTotal(t *testing.T) {
	u := Usage{PromptTokens: 10, CompletionTokens: 5}
	if u.Total() != 15 {
		t.Errorf("total = %d", u.Total())
	}
}

// --- OpenAI client ---

func chatHandler(t *testing.T, reply string, status int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t.Helper()
		if r.URL.Path != "/v1/chat/completions" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if status != http.StatusOK {
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":{"message":"boom"}}`)
			return
		}
		var req chatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad request body: %v", err)
		}
		resp := map[string]interface{}{
			"model": req.Model,
			"choices": []map[string]interface{}{
				{"message": map[string]string{"role": "assistant", "content": reply}},
			},
			"usage": map[string]int{"prompt_tokens": 11, "completion_tokens": 7},
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			t.Error(err)
		}
	}
}

func TestOpenAIComplete(t *testing.T) {
	var gotAuth string
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		chatHandler(t, "diagnosis text", http.StatusOK)(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL + "/v1", APIKey: "sk-test", Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := c.Complete(context.Background(), sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Content != "diagnosis text" {
		t.Errorf("content = %q", comp.Content)
	}
	if comp.Usage.PromptTokens != 11 || comp.Usage.CompletionTokens != 7 {
		t.Errorf("usage = %+v", comp.Usage)
	}
	if gotAuth != "Bearer sk-test" {
		t.Errorf("auth header = %q", gotAuth)
	}
	if c.Name() != "openai" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestOpenAIRetriesOn500(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		chatHandler(t, "ok after retries", http.StatusOK)(w, r)
	}))
	defer srv.Close()

	c, err := NewOpenAI(OpenAIConfig{
		BaseURL: srv.URL + "/v1", MaxRetries: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := c.Complete(context.Background(), sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Content != "ok after retries" {
		t.Errorf("content = %q", comp.Content)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestOpenAIDoesNotRetryOn400(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"message":"bad request"}}`)
	}))
	defer srv.Close()

	c, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL + "/v1", RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(context.Background(), sampleRequest()); err == nil {
		t.Fatal("400 should fail")
	}
	if calls != 1 {
		t.Errorf("client retried a 400: %d calls", calls)
	}
}

func TestOpenAIGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL + "/v1", MaxRetries: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Complete(context.Background(), sampleRequest())
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Errorf("expected give-up error, got %v", err)
	}
}

func TestOpenAIInlinesFiles(t *testing.T) {
	dir := t.TempDir()
	csv := dir + "/POSIX.csv"
	if err := os.WriteFile(csv, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sawAttachment bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req chatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		for _, m := range req.Messages {
			if strings.Contains(m.Content, "POSIX.csv") && strings.Contains(m.Content, "a,b") {
				sawAttachment = true
			}
		}
		resp := map[string]interface{}{
			"model":   req.Model,
			"choices": []map[string]interface{}{{"message": map[string]string{"role": "assistant", "content": "ok"}}},
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	c, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL + "/v1"})
	if err != nil {
		t.Fatal(err)
	}
	req := sampleRequest()
	req.Files = []string{csv}
	if _, err := c.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if !sawAttachment {
		t.Error("file contents not inlined into the prompt")
	}
}

func TestOpenAIRequiresBaseURL(t *testing.T) {
	if _, err := NewOpenAI(OpenAIConfig{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
}

// --- record / replay ---

type stubClient struct {
	reply string
	calls int32
	err   error
}

func (s *stubClient) Name() string { return "stub" }
func (s *stubClient) Complete(ctx context.Context, req Request) (Completion, error) {
	atomic.AddInt32(&s.calls, 1)
	if s.err != nil {
		return Completion{}, s.err
	}
	return Completion{Content: s.reply, Model: "stub"}, nil
}

func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	stub := &stubClient{reply: "recorded answer"}
	rec, err := NewRecorder(stub, dir)
	if err != nil {
		t.Fatal(err)
	}
	req := sampleRequest()
	comp, err := rec.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Content != "recorded answer" {
		t.Errorf("content = %q", comp.Content)
	}

	replay, err := NewReplay(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := replay.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Content != "recorded answer" {
		t.Errorf("replayed = %q", got.Content)
	}
	if stub.calls != 1 {
		t.Errorf("inner called %d times, want 1", stub.calls)
	}
}

func TestReplayStrictMissing(t *testing.T) {
	replay, err := NewReplay(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Complete(context.Background(), sampleRequest()); err == nil {
		t.Error("missing cassette accepted in strict mode")
	}
}

func TestReplayFallback(t *testing.T) {
	stub := &stubClient{reply: "live answer"}
	replay, err := NewReplay(t.TempDir(), stub)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := replay.Complete(context.Background(), sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Content != "live answer" {
		t.Errorf("fallback not used: %q", comp.Content)
	}
}

func TestRecorderPropagatesErrors(t *testing.T) {
	rec, err := NewRecorder(&stubClient{err: errors.New("down")}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Complete(context.Background(), sampleRequest()); err == nil {
		t.Error("inner error swallowed")
	}
}

func TestReplayRejectsNonDirectory(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "file")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := NewReplay(f.Name(), nil); err == nil {
		t.Error("file path accepted as cassette dir")
	}
}

func TestMarshalRequest(t *testing.T) {
	data, err := MarshalRequest(sampleRequest())
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Model != "test-model" || len(back.Messages) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
