// Package llm defines the language-model client abstraction the ION
// Analyzer talks to, plus concrete clients: an OpenAI-compatible HTTP
// client for real endpoints, and record/replay wrappers for offline,
// deterministic runs. The simulated expert model in internal/expertsim
// implements the same Client interface, so the whole pipeline is
// exercised identically whichever backend is plugged in.
package llm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Role labels a chat message author.
type Role string

// Chat roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    Role   `json:"role"`
	Content string `json:"content"`
}

// Request is a completion request. Files lists CSV attachments by path
// (the Assistants-API analogue); clients that cannot upload files inline
// their contents or, like the simulated expert, read them directly.
type Request struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Files       []string  `json:"files,omitempty"`
	Temperature float64   `json:"temperature"`
	MaxTokens   int       `json:"max_tokens,omitempty"`
	// Metadata carries structured routing hints (issue id, CSV dir).
	Metadata map[string]string `json:"metadata,omitempty"`
}

// Usage reports token accounting for a completion.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
}

// Total returns the total token count.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Completion is a model response.
type Completion struct {
	Content string `json:"content"`
	Model   string `json:"model"`
	Usage   Usage  `json:"usage"`
}

// Client produces completions. Implementations must be safe for
// concurrent use: the Analyzer fans out per-issue prompts in parallel.
type Client interface {
	// Complete returns the model's response to the request.
	Complete(ctx context.Context, req Request) (Completion, error)
	// Name identifies the backend for reports ("expertsim", "openai").
	Name() string
}

// EstimateTokens approximates the token count of a text with the usual
// ~4 characters/token heuristic; good enough for usage accounting and
// prompt-size benchmarks.
func EstimateTokens(text string) int {
	n := len(text)
	if n == 0 {
		return 0
	}
	return (n + 3) / 4
}

// PromptTokens estimates the prompt token count of a request.
func PromptTokens(req Request) int {
	total := 0
	for _, m := range req.Messages {
		total += EstimateTokens(m.Content)
	}
	return total
}

// Fingerprint returns a stable hash of a request, used by the
// record/replay clients as the storage key. Message order matters;
// metadata is serialized in sorted key order.
func Fingerprint(req Request) string {
	var b strings.Builder
	b.WriteString(req.Model)
	b.WriteByte(0)
	for _, m := range req.Messages {
		b.WriteString(string(m.Role))
		b.WriteByte(0)
		b.WriteString(m.Content)
		b.WriteByte(0)
	}
	for _, f := range req.Files {
		b.WriteString(f)
		b.WriteByte(0)
	}
	keys := make([]string, 0, len(req.Metadata))
	for k := range req.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0)
		b.WriteString(req.Metadata[k])
		b.WriteByte(0)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// MarshalRequest serializes a request as stable JSON (for recording).
func MarshalRequest(req Request) ([]byte, error) {
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("llm: marshaling request: %w", err)
	}
	return data, nil
}
