package llm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ion/internal/obs"
)

// timeoutErr satisfies net.Error with Timeout() == true, the shape
// http clients surface for slow backends.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "request timed out" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		req  Request
		comp Completion
		want string
	}{
		{name: "success", want: OutcomeOK},
		{name: "deadline", err: context.DeadlineExceeded, want: OutcomeTimeout},
		{name: "wrapped deadline", err: fmt.Errorf("calling backend: %w", context.DeadlineExceeded), want: OutcomeTimeout},
		{name: "net timeout", err: timeoutErr{}, want: OutcomeTimeout},
		{name: "wrapped net timeout", err: fmt.Errorf("post: %w", timeoutErr{}), want: OutcomeTimeout},
		{name: "plain error", err: errors.New("status 500"), want: OutcomeError},
		{name: "canceled is error not timeout", err: context.Canceled, want: OutcomeError},
		{
			name: "hit the cap",
			req:  Request{MaxTokens: 100},
			comp: Completion{Usage: Usage{CompletionTokens: 100}},
			want: OutcomeTruncated,
		},
		{
			name: "under the cap",
			req:  Request{MaxTokens: 100},
			comp: Completion{Usage: Usage{CompletionTokens: 99}},
			want: OutcomeOK,
		},
		{
			name: "no cap means no truncation",
			comp: Completion{Usage: Usage{CompletionTokens: 4096}},
			want: OutcomeOK,
		},
	}
	for _, tc := range cases {
		if got := Outcome(tc.err, tc.req, tc.comp); got != tc.want {
			t.Errorf("%s: Outcome = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestProvenanceContextKeys(t *testing.T) {
	ctx := context.Background()
	if id := JobIDFrom(ctx); id != "" {
		t.Errorf("bare context job id = %q", id)
	}
	if n := AttemptFrom(ctx); n != 0 {
		t.Errorf("bare context attempt = %d", n)
	}
	ctx = WithAttempt(WithJobID(ctx, "j-1"), 3)
	if id := JobIDFrom(ctx); id != "j-1" {
		t.Errorf("job id = %q, want j-1", id)
	}
	if n := AttemptFrom(ctx); n != 3 {
		t.Errorf("attempt = %d, want 3", n)
	}
}

// outcomeFake returns a canned result per call so the instrumentation
// wrapper can be driven through every outcome.
type outcomeFake struct {
	comp Completion
	err  error
}

func (f *outcomeFake) Name() string { return "fake" }
func (f *outcomeFake) Complete(context.Context, Request) (Completion, error) {
	return f.comp, f.err
}

// TestInstrumentOutcomeLabels drives the instrumented client through a
// success, a truncation, a timeout, and an error, and checks the
// request counter carries each as its own outcome label.
func TestInstrumentOutcomeLabels(t *testing.T) {
	reg := obs.NewRegistry()
	fake := &outcomeFake{}
	client := Instrument(fake, reg)
	ctx := context.Background()

	fake.comp = Completion{Content: "fine", Usage: Usage{PromptTokens: 5, CompletionTokens: 7}}
	client.Complete(ctx, Request{})
	fake.comp = Completion{Usage: Usage{CompletionTokens: 64}}
	client.Complete(ctx, Request{MaxTokens: 64})
	fake.comp, fake.err = Completion{}, context.DeadlineExceeded
	client.Complete(ctx, Request{})
	fake.err = errors.New("boom")
	client.Complete(ctx, Request{})

	got := map[string]float64{}
	var promptTokens, completionTokens float64
	for _, s := range reg.Gather() {
		switch s.Name {
		case "ion_llm_requests_total":
			for _, l := range s.Labels {
				if l.Key == "outcome" {
					got[l.Value] += s.Value
				}
			}
		case "ion_llm_tokens_total":
			for _, l := range s.Labels {
				if l.Key == "kind" && l.Value == "prompt" {
					promptTokens += s.Value
				}
				if l.Key == "kind" && l.Value == "completion" {
					completionTokens += s.Value
				}
			}
		}
	}
	for _, outcome := range []string{OutcomeOK, OutcomeTruncated, OutcomeTimeout, OutcomeError} {
		if got[outcome] != 1 {
			t.Errorf("outcome %q count = %v, want 1 (all: %v)", outcome, got[outcome], got)
		}
	}
	// Token usage is recorded for successes — including the truncated
	// one, whose partial content still cost real tokens.
	if promptTokens != 5 || completionTokens != 7+64 {
		t.Errorf("token counters = %v prompt / %v completion, want 5 / 71", promptTokens, completionTokens)
	}
}

// TestReplayCorruptCassettes covers the cassette-file failure modes: an
// empty file and a mid-record truncation both fail loudly (naming the
// cassette), and neither falls through to the fallback — only a missing
// file does.
func TestReplayCorruptCassettes(t *testing.T) {
	dir := t.TempDir()
	req := Request{Model: "m", Messages: []Message{{Role: "user", Content: "hi"}}}

	// A valid cassette for an unknown model name replays fine: replay is
	// keyed on the fingerprint, not on model validity.
	odd := Request{Model: "totally-unknown-model", Messages: req.Messages}
	valid, err := json.Marshal(cassette{Request: odd, Completion: Completion{Content: "recorded", Model: odd.Model}})
	if err != nil {
		t.Fatal(err)
	}
	writeCassette(t, dir, Fingerprint(odd), valid)

	// Empty file and torn JSON for the other request's fingerprint.
	for name, body := range map[string]string{
		"empty":     "",
		"truncated": `{"request": {"model": "m"}, "completion": {"content": "cut`,
	} {
		t.Run(name, func(t *testing.T) {
			writeCassette(t, dir, Fingerprint(req), []byte(body))
			rp, err := NewReplay(dir, &outcomeFake{comp: Completion{Content: "fallback"}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rp.Complete(context.Background(), req); err == nil {
				t.Fatal("corrupt cassette replayed without error")
			} else if !strings.Contains(err.Error(), "corrupt cassette") {
				t.Fatalf("error = %v, want corrupt-cassette", err)
			}
		})
	}

	rp, err := NewReplay(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := rp.Complete(context.Background(), odd)
	if err != nil {
		t.Fatalf("unknown-model cassette: %v", err)
	}
	if comp.Content != "recorded" || comp.Model != "totally-unknown-model" {
		t.Fatalf("replayed %+v", comp)
	}
}

func writeCassette(t *testing.T, dir, fingerprint string, body []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, fingerprint+".json"), body, 0o644); err != nil {
		t.Fatal(err)
	}
}
