package llm_test

// Integration tests for the record/replay flow against the real ION
// pipeline: a full analysis is recorded once, then replayed with the
// backend disabled — the reproducibility workflow users rely on when a
// live LLM backs the analyzer.

import (
	"context"
	"errors"
	"testing"

	"ion/internal/expertsim"
	"ion/internal/ion"
	"ion/internal/issue"
	"ion/internal/llm"
	"ion/internal/testutil"
)

// deadClient fails every request; replay must never reach it.
type deadClient struct{}

func (deadClient) Name() string { return "dead" }
func (deadClient) Complete(ctx context.Context, req llm.Request) (llm.Completion, error) {
	return llm.Completion{}, errors.New("backend must not be called during replay")
}

func TestRecordThenReplayFullAnalysis(t *testing.T) {
	log, err := testutil.Log("ior-hard")
	if err != nil {
		t.Fatal(err)
	}
	cassettes := t.TempDir()
	workdir := t.TempDir()

	// Pass 1: record a full analysis.
	rec, err := llm.NewRecorder(expertsim.New(), cassettes)
	if err != nil {
		t.Fatal(err)
	}
	fw1, err := ion.New(ion.Config{Client: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := fw1.AnalyzeLog(context.Background(), log, "ior-hard", workdir)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 2: replay with a dead backend. The extraction must land in
	// the same workdir so the prompts (and fingerprints) are identical.
	replay, err := llm.NewReplay(cassettes, deadClient{})
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := ion.New(ion.Config{Client: replay})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := fw2.AnalyzeLog(context.Background(), log, "ior-hard", workdir)
	if err != nil {
		t.Fatalf("replayed analysis failed (cassette miss?): %v", err)
	}

	for _, id := range issue.All {
		if rep1.Verdict(id) != rep2.Verdict(id) {
			t.Errorf("%s: verdict changed between record (%s) and replay (%s)",
				id, rep1.Verdict(id), rep2.Verdict(id))
		}
		d1, d2 := rep1.Diagnoses[id], rep2.Diagnoses[id]
		if d1 != nil && d2 != nil && d1.Conclusion != d2.Conclusion {
			t.Errorf("%s: conclusion changed through replay", id)
		}
	}
	if rep1.Summary != rep2.Summary {
		t.Error("summary changed through replay")
	}
}

func TestReplayDifferentTraceFallsBack(t *testing.T) {
	// A cassette dir recorded for one trace cannot serve another: the
	// fallback client must be consulted.
	log, err := testutil.Log("ior-easy-1m-fpp")
	if err != nil {
		t.Fatal(err)
	}
	cassettes := t.TempDir()
	rec, err := llm.NewRecorder(expertsim.New(), cassettes)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := ion.New(ion.Config{Client: rec, SkipSummary: true, Issues: []issue.ID{issue.SmallIO}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.AnalyzeLog(context.Background(), log, "a", t.TempDir()); err != nil {
		t.Fatal(err)
	}

	other, err := testutil.Log("md-workbench")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := llm.NewReplay(cassettes, expertsim.New())
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := ion.New(ion.Config{Client: replay, SkipSummary: true, Issues: []issue.ID{issue.SmallIO}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fw2.AnalyzeLog(context.Background(), other, "b", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict(issue.SmallIO) != issue.VerdictDetected {
		t.Errorf("fallback analysis wrong: %s", rep.Verdict(issue.SmallIO))
	}
}
