package issue

import (
	"strings"
	"testing"
)

func TestAllValid(t *testing.T) {
	seen := map[ID]bool{}
	for _, id := range All {
		if !Valid(id) {
			t.Errorf("%s not valid", id)
		}
		if seen[id] {
			t.Errorf("%s duplicated", id)
		}
		seen[id] = true
	}
	if len(All) != 9 {
		t.Errorf("taxonomy has %d issues, paper-aligned design wants 9", len(All))
	}
}

func TestValidRejectsUnknown(t *testing.T) {
	for _, bad := range []ID{"", "bogus", "Small-IO", "small_io"} {
		if Valid(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestTitles(t *testing.T) {
	for _, id := range All {
		title := Title(id)
		if title == "" || strings.Contains(title, "Unknown") {
			t.Errorf("%s has no title", id)
		}
	}
	if !strings.Contains(Title("bogus"), "Unknown") {
		t.Error("unknown issue should get a placeholder title")
	}
}

func TestVerdictValues(t *testing.T) {
	for _, v := range []Verdict{VerdictDetected, VerdictMitigated, VerdictNotDetected} {
		if v == "" {
			t.Error("empty verdict constant")
		}
	}
	if VerdictDetected == VerdictMitigated {
		t.Error("verdicts collide")
	}
}
