// Package issue defines the I/O performance issue taxonomy shared by
// the knowledge base, the ION analyzer, the Drishti baseline, the
// workload ground truths, and the evaluation harness.
package issue

import "fmt"

// ID names one I/O performance issue type.
type ID string

// The issue taxonomy. These are the issue types ION builds dedicated
// prompts for; Drishti's trigger categories map onto the same IDs so
// the evaluation can score both tools on one axis.
const (
	SmallIO       ID = "small-io"
	MisalignedIO  ID = "misaligned-io"
	RandomAccess  ID = "random-access"
	SharedFile    ID = "shared-file"
	LoadImbalance ID = "load-imbalance"
	Metadata      ID = "metadata"
	Interface     ID = "interface-usage"
	CollectiveIO  ID = "collective-io"
	TimeImbalance ID = "rank-time-imbalance"
)

// All lists every issue ID in canonical presentation order.
var All = []ID{
	SmallIO, MisalignedIO, RandomAccess, SharedFile, LoadImbalance,
	Metadata, Interface, CollectiveIO, TimeImbalance,
}

// Valid reports whether id is part of the taxonomy.
func Valid(id ID) bool {
	for _, v := range All {
		if v == id {
			return true
		}
	}
	return false
}

// Title returns a human-readable name for the issue.
func Title(id ID) string {
	switch id {
	case SmallIO:
		return "Small I/O Operations"
	case MisalignedIO:
		return "Mis-aligned I/O"
	case RandomAccess:
		return "Random Access Pattern"
	case SharedFile:
		return "Shared-File Access Contention"
	case LoadImbalance:
		return "Imbalanced I/O Workload"
	case Metadata:
		return "Excessive Metadata Load"
	case Interface:
		return "Suboptimal I/O Interface Usage"
	case CollectiveIO:
		return "Missing Collective I/O"
	case TimeImbalance:
		return "Rank I/O Time Imbalance"
	}
	return fmt.Sprintf("Unknown Issue (%s)", string(id))
}

// Verdict is the analyzer's conclusion about one issue on one trace.
type Verdict string

// Verdict values. Mitigated means the pathology's signature is present
// but a condition neutralizes its impact (e.g. small I/O that is
// consecutive and therefore aggregatable) — the distinction the paper
// highlights as ION's advantage over fixed-threshold tools.
const (
	VerdictDetected    Verdict = "detected"
	VerdictMitigated   Verdict = "mitigated"
	VerdictNotDetected Verdict = "not-detected"
)

// Expectation is one ground-truth entry for a controlled workload.
type Expectation struct {
	Issue ID
	// Want is the verdict a correct expert should reach.
	Want Verdict
	// Note documents why, for the Figure 2 ground-truth column.
	Note string
}
