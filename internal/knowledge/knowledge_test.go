package knowledge

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ion/internal/extractor"
	"ion/internal/issue"
	"ion/internal/table"
)

func TestBaseCoversAllIssues(t *testing.T) {
	b := NewBase(DefaultHyperparams())
	ids := b.Issues()
	if len(ids) != len(issue.All) {
		t.Fatalf("base covers %d issues, taxonomy has %d", len(ids), len(issue.All))
	}
	for _, id := range issue.All {
		c, err := b.Context(id)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(strings.Fields(c.Knowledge)) < 60 {
			t.Errorf("%s: knowledge text too thin (%d words)", id, len(strings.Fields(c.Knowledge)))
		}
		if len(c.KeyMetrics) == 0 {
			t.Errorf("%s: no key metrics", id)
		}
		if len(c.Modules) == 0 {
			t.Errorf("%s: no module map", id)
		}
		if c.Mitigations == "" {
			t.Errorf("%s: no mitigation description", id)
		}
		if c.Title != issue.Title(id) {
			t.Errorf("%s: title mismatch", id)
		}
	}
}

func TestContextsEmbedHyperparams(t *testing.T) {
	h := Hyperparams{RPCSize: 12345678, StripeSize: 7654321, MemAlignment: 8}
	b := NewBase(h)
	small, err := b.Context(issue.SmallIO)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(small.Knowledge, "12345678") {
		t.Error("small-io context does not mention the RPC size")
	}
	mis, err := b.Context(issue.MisalignedIO)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mis.Knowledge, "7654321") {
		t.Error("alignment context does not mention the stripe size")
	}
}

func TestContextsTeachMitigation(t *testing.T) {
	// The differentiator from trigger tools: each context must teach
	// when the issue is NOT a problem.
	b := NewBase(DefaultHyperparams())
	small, _ := b.Context(issue.SmallIO)
	if !strings.Contains(strings.ToLower(small.Knowledge), "consecutive") {
		t.Error("small-io context must teach consecutive-access aggregation")
	}
	shared, _ := b.Context(issue.SharedFile)
	if !strings.Contains(strings.ToLower(shared.Knowledge), "not inherently bad") {
		t.Error("shared-file context must caution against flagging mere sharing")
	}
	imb, _ := b.Context(issue.LoadImbalance)
	if !strings.Contains(strings.ToLower(imb.Knowledge), "aggregator") {
		t.Error("imbalance context must mention intentional aggregator subsets")
	}
}

func TestModulesForIncludesJob(t *testing.T) {
	b := NewBase(DefaultHyperparams())
	mods, err := b.ModulesFor(issue.SmallIO)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range mods {
		if m == extractor.TableJob {
			found = true
		}
	}
	if !found {
		t.Error("JOB table not always included")
	}
	if _, err := b.ModulesFor("bogus"); err == nil {
		t.Error("unknown issue accepted")
	}
}

func TestModuleMapsAreValidTables(t *testing.T) {
	valid := map[string]bool{
		extractor.TablePOSIX: true, extractor.TableMPIIO: true,
		extractor.TableSTDIO: true, extractor.TableLustre: true,
		extractor.TableDXT: true, extractor.TableJob: true,
	}
	b := NewBase(DefaultHyperparams())
	for _, id := range b.Issues() {
		c, _ := b.Context(id)
		for _, m := range c.Modules {
			if !valid[m] {
				t.Errorf("%s: unknown module table %q", id, m)
			}
		}
	}
}

func TestFromExtract(t *testing.T) {
	out := &extractor.Output{Tables: map[string]*table.Table{}}
	// No LUSTRE table: defaults.
	h := FromExtract(out)
	if h != DefaultHyperparams() {
		t.Errorf("defaults expected, got %+v", h)
	}
	// With a LUSTRE table: stripe size read dynamically.
	lt := table.New(extractor.TableLustre, []string{"LUSTRE_STRIPE_SIZE"})
	if err := lt.Append([]string{"4194304"}); err != nil {
		t.Fatal(err)
	}
	out.Tables[extractor.TableLustre] = lt
	h2 := FromExtract(out)
	if h2.StripeSize != 4194304 {
		t.Errorf("stripe size not extracted: %+v", h2)
	}
	// Garbage stripe size: defaults survive.
	lt2 := table.New(extractor.TableLustre, []string{"LUSTRE_STRIPE_SIZE"})
	if err := lt2.Append([]string{"0"}); err != nil {
		t.Fatal(err)
	}
	out.Tables[extractor.TableLustre] = lt2
	h3 := FromExtract(out)
	if h3.StripeSize != DefaultHyperparams().StripeSize {
		t.Errorf("zero stripe size accepted: %+v", h3)
	}
}

func writeContextFile(t *testing.T, dir, name string, cf ContextFile) {
	t.Helper()
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOverrides(t *testing.T) {
	dir := t.TempDir()
	writeContextFile(t, dir, "small.json", ContextFile{
		Issue:     "small-io",
		Knowledge: "Site-specific guidance: our burst buffer absorbs requests down to 64 KiB.",
	})
	writeContextFile(t, dir, "meta.json", ContextFile{
		Issue:       "metadata",
		Title:       "MDS Overload (site policy)",
		Mitigations: "metadata ops against the DAOS tier are free",
	})
	b := NewBase(DefaultHyperparams())
	n, err := b.LoadOverrides(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("changed = %d", n)
	}
	small, _ := b.Context(issue.SmallIO)
	if !strings.Contains(small.Knowledge, "burst buffer") {
		t.Error("knowledge not overridden")
	}
	if small.Title != issue.Title(issue.SmallIO) {
		t.Error("unset fields must keep built-in values")
	}
	meta, _ := b.Context(issue.Metadata)
	if meta.Title != "MDS Overload (site policy)" {
		t.Error("title not overridden")
	}
	if !strings.Contains(meta.Knowledge, "metadata server") {
		t.Error("built-in knowledge lost despite empty override field")
	}
}

func TestLoadOverridesErrors(t *testing.T) {
	b := NewBase(DefaultHyperparams())
	if _, err := b.LoadOverrides(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := b.LoadOverrides("/nonexistent-kb"); err == nil {
		t.Error("missing dir accepted")
	}

	dir := t.TempDir()
	writeContextFile(t, dir, "bad.json", ContextFile{Issue: "made-up", Knowledge: "x"})
	if _, err := b.LoadOverrides(dir); err == nil {
		t.Error("unknown issue accepted")
	}

	dir2 := t.TempDir()
	writeContextFile(t, dir2, "empty.json", ContextFile{Issue: "small-io"})
	if _, err := b.LoadOverrides(dir2); err == nil {
		t.Error("empty override accepted")
	}

	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, "corrupt.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadOverrides(dir3); err == nil {
		t.Error("corrupt JSON accepted")
	}
}

func TestOverriddenContextReachesPrompts(t *testing.T) {
	// The override must flow into the diagnosis prompt text.
	dir := t.TempDir()
	writeContextFile(t, dir, "x.json", ContextFile{
		Issue:     "misaligned-io",
		Knowledge: "UNIQUE-OVERRIDE-MARKER alignment guidance",
	})
	b := NewBase(DefaultHyperparams())
	if _, err := b.LoadOverrides(dir); err != nil {
		t.Fatal(err)
	}
	c, _ := b.Context(issue.MisalignedIO)
	if !strings.Contains(c.Knowledge, "UNIQUE-OVERRIDE-MARKER") {
		t.Error("override lost")
	}
}
