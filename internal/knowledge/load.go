package knowledge

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ion/internal/issue"
)

// ContextFile is the on-disk JSON shape for a knowledge override. The
// paper highlights that in-context learning allows "dynamic adjustment
// of the context to meet the specific needs of scientists": sites tune
// the issue contexts (their file system's quirks, their tuning
// vocabulary) without recompiling by dropping JSON files into a
// directory and passing it to `ion -kb`.
type ContextFile struct {
	Issue       string   `json:"issue"`
	Title       string   `json:"title,omitempty"`
	Knowledge   string   `json:"knowledge"`
	KeyMetrics  []string `json:"key_metrics,omitempty"`
	Modules     []string `json:"modules,omitempty"`
	Mitigations string   `json:"mitigations,omitempty"`
}

// LoadOverrides merges every *.json context file in dir into the base,
// replacing the named issues' contexts field-by-field (empty fields
// keep the built-in value). It returns the number of contexts changed.
// Only issues in the taxonomy can be overridden: a custom issue type
// would also need an analysis planner (or a live LLM backend), so an
// unknown id is an error rather than a silent no-op.
func (b *Base) LoadOverrides(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("knowledge: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	changed := 0
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return changed, fmt.Errorf("knowledge: %w", err)
		}
		var cf ContextFile
		if err := json.Unmarshal(data, &cf); err != nil {
			return changed, fmt.Errorf("knowledge: parsing %s: %w", path, err)
		}
		if err := b.applyOverride(path, cf); err != nil {
			return changed, err
		}
		changed++
	}
	if changed == 0 {
		return 0, fmt.Errorf("knowledge: no context files (*.json) found in %s", dir)
	}
	return changed, nil
}

func (b *Base) applyOverride(path string, cf ContextFile) error {
	id := issue.ID(cf.Issue)
	if !issue.Valid(id) {
		return fmt.Errorf("knowledge: %s overrides unknown issue %q (taxonomy: %v)", path, cf.Issue, issue.All)
	}
	c, err := b.Context(id)
	if err != nil {
		return err
	}
	if strings.TrimSpace(cf.Knowledge) == "" && cf.Title == "" &&
		len(cf.KeyMetrics) == 0 && len(cf.Modules) == 0 && cf.Mitigations == "" {
		return fmt.Errorf("knowledge: %s overrides nothing for issue %q", path, cf.Issue)
	}
	if cf.Title != "" {
		c.Title = cf.Title
	}
	if strings.TrimSpace(cf.Knowledge) != "" {
		c.Knowledge = cf.Knowledge
	}
	if len(cf.KeyMetrics) > 0 {
		c.KeyMetrics = append([]string(nil), cf.KeyMetrics...)
	}
	if len(cf.Modules) > 0 {
		c.Modules = append([]string(nil), cf.Modules...)
	}
	if cf.Mitigations != "" {
		c.Mitigations = cf.Mitigations
	}
	return nil
}
