// Package knowledge holds the I/O Performance Issue Contexts: the
// in-context domain knowledge ION injects into each per-issue prompt.
// Each context teaches the model what the issue is, which trace metrics
// reveal it, and — critically — which conditions mitigate it, so the
// analyzer can reach nuanced verdicts without the fixed thresholds
// trigger-based tools depend on. A per-issue module map records which
// extractor CSV tables the issue needs, letting the prompt builder
// filter file descriptions per prompt (the paper's divide-and-conquer
// design).
package knowledge

import (
	"fmt"

	"ion/internal/extractor"
	"ion/internal/issue"
)

// Hyperparams are the system settings ION takes as input instead of
// expert-tuned thresholds: facts about the machine, not about the
// workload. The paper lists these as the only tunables (future work:
// extract them from the trace automatically — see FromLustreTable).
type Hyperparams struct {
	// RPCSize is the file system's maximum bulk-RPC transfer in bytes.
	RPCSize int64
	// StripeSize is the Lustre stripe unit in bytes.
	StripeSize int64
	// MemAlignment is the required buffer alignment in bytes.
	MemAlignment int64
}

// DefaultHyperparams mirrors the evaluation system: 4 MiB RPCs, 1 MiB
// stripes.
func DefaultHyperparams() Hyperparams {
	return Hyperparams{RPCSize: 4 << 20, StripeSize: 1 << 20, MemAlignment: 8}
}

// FromExtract derives hyperparameters from an extracted trace when a
// LUSTRE table is present (dynamic extraction, the paper's planned
// extension), falling back to defaults otherwise.
func FromExtract(out *extractor.Output) Hyperparams {
	h := DefaultHyperparams()
	lustre := out.Table(extractor.TableLustre)
	if lustre == nil || lustre.NumRows() == 0 {
		return h
	}
	if v, err := lustre.Int(0, "LUSTRE_STRIPE_SIZE"); err == nil && v > 0 {
		h.StripeSize = v
	}
	return h
}

// Context is one issue's in-context teaching material.
type Context struct {
	Issue issue.ID
	Title string
	// Knowledge is the teaching text injected into the prompt.
	Knowledge string
	// KeyMetrics names the trace columns/counters that reveal the issue.
	KeyMetrics []string
	// Modules lists the extractor tables this issue needs (the
	// module-map filter).
	Modules []string
	// Mitigations describes conditions that neutralize the issue.
	Mitigations string
}

// Base is the assembled knowledge base.
type Base struct {
	Hyper    Hyperparams
	contexts map[issue.ID]*Context
	order    []issue.ID
}

// NewBase builds the default knowledge base with the given
// hyperparameters.
func NewBase(h Hyperparams) *Base {
	b := &Base{Hyper: h, contexts: map[issue.ID]*Context{}}
	for _, c := range defaultContexts(h) {
		c := c
		b.contexts[c.Issue] = &c
		b.order = append(b.order, c.Issue)
	}
	return b
}

// Context returns the context for an issue.
func (b *Base) Context(id issue.ID) (*Context, error) {
	c, ok := b.contexts[id]
	if !ok {
		return nil, fmt.Errorf("knowledge: no context for issue %q", id)
	}
	return c, nil
}

// Issues returns the issue ids in canonical order.
func (b *Base) Issues() []issue.ID {
	return append([]issue.ID(nil), b.order...)
}

// ModulesFor returns the module tables needed by an issue, always
// including the JOB table (job-level facts are cheap and universal).
func (b *Base) ModulesFor(id issue.ID) ([]string, error) {
	c, err := b.Context(id)
	if err != nil {
		return nil, err
	}
	mods := append([]string(nil), c.Modules...)
	mods = append(mods, extractor.TableJob)
	return mods, nil
}

func defaultContexts(h Hyperparams) []Context {
	stripe := h.StripeSize
	rpc := h.RPCSize
	return []Context{
		{
			Issue: issue.SmallIO,
			Title: issue.Title(issue.SmallIO),
			Knowledge: fmt.Sprintf(`Parallel file systems move data in bulk RPCs
(up to %d bytes on this system). A request far below the RPC size wastes
most of an RPC's fixed cost (network round trip, server dispatch, lock
handling), so workloads dominated by small requests underutilize RPCs
and the storage servers. Judge "small" relative to the system's RPC and
stripe sizes, not against a universal byte threshold: compare the access
size histogram (POSIX_SIZE_READ_*/POSIX_SIZE_WRITE_* buckets) against
the RPC size of %d bytes and the stripe size of %d bytes. Crucially,
small requests are only harmful when they reach the servers as-is.
Client-side write-back caching and read-ahead coalesce CONSECUTIVE
requests (each starting exactly where the previous ended) into full-size
RPCs, so a stream of small consecutive accesses is largely benign. Use
POSIX_CONSEC_READS/POSIX_CONSEC_WRITES relative to POSIX_READS/
POSIX_WRITES, and the DXT per-rank offset sequence, to estimate how many
small requests are aggregatable before judging severity.`, rpc, rpc, stripe),
			KeyMetrics: []string{
				"POSIX_SIZE_READ_*", "POSIX_SIZE_WRITE_*", "POSIX_READS", "POSIX_WRITES",
				"POSIX_CONSEC_READS", "POSIX_CONSEC_WRITES", "DXT offset/length sequence",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableLustre, extractor.TableDXT},
			Mitigations: "consecutive (and to a lesser degree sequential) small accesses aggregate into bulk RPCs; collective buffering absorbs small collective accesses",
		},
		{
			Issue: issue.MisalignedIO,
			Title: issue.Title(issue.MisalignedIO),
			Knowledge: fmt.Sprintf(`Lustre stores a file as stripe units of
%d bytes spread across object storage targets (OSTs). An access whose
file offset is not a multiple of the stripe unit (or the file system
block size) can touch two OSTs instead of one, forces read-modify-write
cycles inside stripe units, and widens the byte ranges that extent locks
must cover, increasing contention when the file is shared. The trace
reports POSIX_FILE_NOT_ALIGNED (count of accesses off the
POSIX_FILE_ALIGNMENT boundary) and POSIX_MEM_NOT_ALIGNED for user-buffer
alignment. Compute the misaligned share of all read/write operations.
Alignment only matters for accesses that actually hit the servers: a
perfectly consecutive small-access stream that is absorbed by client
aggregation suffers less from in-file misalignment, though the flushed
bulk RPCs may still straddle stripe boundaries. Misalignment near 100%%
of operations on a striped shared file is a serious issue; a handful of
misaligned header accesses is not.`, stripe),
			KeyMetrics: []string{
				"POSIX_FILE_NOT_ALIGNED", "POSIX_FILE_ALIGNMENT",
				"POSIX_MEM_NOT_ALIGNED", "POSIX_MEM_ALIGNMENT",
				"LUSTRE_STRIPE_SIZE", "DXT offsets modulo stripe size",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableLustre, extractor.TableDXT},
			Mitigations: "few absolute occurrences, or misaligned accesses confined to tiny header/metadata reads, or client aggregation absorbing the stream",
		},
		{
			Issue: issue.RandomAccess,
			Title: issue.Title(issue.RandomAccess),
			Knowledge: `Storage servers and client caches are built for
locality: read-ahead prefetches forward, write-back coalesces adjacent
dirty data, and OSTs service contiguous extents cheaply. An access
stream that jumps around the file (offsets that move backwards or leap
far ahead relative to the previous access of the same rank) defeats all
three. Darshan's POSIX_SEQ_READS/POSIX_SEQ_WRITES count accesses at
non-decreasing offsets — note that a forward-strided pattern with gaps
still counts as "sequential" there, yet it cannot be coalesced; use
POSIX_CONSEC_* and the DXT per-rank offset deltas to distinguish truly
contiguous access from strided or random access. Severity scales with
how much data moves through non-contiguous requests and how many ranks
do it: a few random lookups per rank into a self-describing file format
are normal and harmless; thousands of random small accesses per rank are
a first-order bottleneck.`,
			KeyMetrics: []string{
				"POSIX_SEQ_READS", "POSIX_SEQ_WRITES", "POSIX_CONSEC_READS", "POSIX_CONSEC_WRITES",
				"POSIX_RW_SWITCHES", "DXT per-rank offset deltas",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableDXT},
			Mitigations: "low per-rank counts and low volume through non-contiguous accesses; random reads confined to metadata/header structures",
		},
		{
			Issue: issue.SharedFile,
			Title: issue.Title(issue.SharedFile),
			Knowledge: fmt.Sprintf(`When many ranks write one file, Lustre must
serialize conflicting writes within a stripe unit through extent locks:
two ranks touching the same %d-byte stripe unit force lock revocations
that ping-pong between clients, and misaligned or interleaved writes
magnify the conflict ranges. Shared-file access is NOT inherently bad —
it is the standard way to produce a single output — so do not flag mere
multi-rank access. Instead reconstruct per-rank byte ranges from the DXT
trace and check (1) whether different ranks' accesses fall into the same
stripe unit, and (2) whether such accesses overlap in time. Segmented
access (rank k owns bytes [k*B,(k+1)*B) with stripe-aligned B) produces
zero stripe sharing and needs no warning. Also consider the number of
ranks per file: hundreds of ranks behind one file stress a single OST
set even without conflicts.`, stripe),
			KeyMetrics: []string{
				"ranks per file (DXT)", "stripe-sharing between ranks (DXT offsets)",
				"temporal overlap of conflicting accesses", "LUSTRE_STRIPE_SIZE", "LUSTRE_STRIPE_WIDTH",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableLustre, extractor.TableDXT},
			Mitigations: "non-overlapping (segmented, stripe-aligned) access; read-only sharing; collective buffering funneling writes through aggregators",
		},
		{
			Issue: issue.LoadImbalance,
			Title: issue.Title(issue.LoadImbalance),
			Knowledge: `In a well-balanced parallel job every rank moves a
similar volume of data. When one rank (classically rank 0) or a small
subset performs most of the I/O, the job's I/O phase runs at the speed
of the overloaded ranks while the rest idle. Reconstruct per-rank bytes
and operation counts from the DXT trace (or, on the reduced shared-file
record, compare POSIX_SLOWEST_RANK_BYTES against POSIX_FASTEST_RANK_BYTES
and the variance counters). Quantify the imbalance as the share of total
bytes moved by the heaviest rank(s) and identify WHICH ranks carry the
load — naming the responsible rank is what lets a developer find the
code path (e.g. fill values, master-writes-all patterns). Distinguish
pathological imbalance from deliberate designs: a fixed subset of ranks
acting as I/O aggregators (e.g. 1 in 16, matching collective-buffering
node counts) is often intentional; note it and suggest verifying rather
than declaring a defect.`,
			KeyMetrics: []string{
				"per-rank bytes/ops (DXT)", "POSIX_SLOWEST_RANK_BYTES", "POSIX_FASTEST_RANK_BYTES",
				"POSIX_F_VARIANCE_RANK_BYTES", "POSIX_F_VARIANCE_RANK_TIME",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableDXT},
			Mitigations: "an even per-rank distribution, or a regular aggregator subset consistent with two-phase collective I/O",
		},
		{
			Issue: issue.Metadata,
			Title: issue.Title(issue.Metadata),
			Knowledge: `Every open, create, stat, and close is a round trip to
the metadata server (MDS), a resource shared by the whole machine and
much harder to scale than data bandwidth. Workloads that open/close a
file around every tiny access, stat files repeatedly, or churn through
very many small files shift their bottleneck from data to metadata.
Compare metadata operation counts (POSIX_OPENS, POSIX_STATS, POSIX_SEEKS,
POSIX_FSYNCS) against data operation counts (POSIX_READS+POSIX_WRITES),
and metadata time (POSIX_F_META_TIME) against read/write time. Also
count distinct files: thousands of small per-rank files multiply MDS
load. A metadata-to-data ratio near or above 1, or metadata time
dominating I/O time, indicates the MDS is the bottleneck.`,
			KeyMetrics: []string{
				"POSIX_OPENS", "POSIX_STATS", "POSIX_SEEKS", "POSIX_FSYNCS",
				"POSIX_F_META_TIME", "distinct file count",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableSTDIO},
			Mitigations: "metadata ops amortized over long data phases; file handles kept open across iterations",
		},
		{
			Issue: issue.Interface,
			Title: issue.Title(issue.Interface),
			Knowledge: `MPI applications that perform I/O from many ranks
through raw POSIX calls leave the MPI-IO layer's optimizations unused:
collective buffering (two-phase I/O through a few aggregator nodes),
data sieving, shared file pointers, and hint-driven tuning. The trace
makes this visible structurally: the job runs multiple ranks (nprocs in
the job table) and the POSIX module records parallel data access, while
the MPI-IO module is absent or empty. This is an opportunity rather than
an outright defect — a file-per-process POSIX pattern can perform well —
but shared-file POSIX access from many ranks almost always benefits from
MPI-IO collectives, and even file-per-process workloads gain portability
and tuning hooks. Report which interfaces the application used, per
module, and whether MPI-IO (and its collective operations) would apply.`,
			KeyMetrics: []string{
				"nprocs", "MPI-IO module presence", "MPIIO_INDEP_*", "MPIIO_COLL_*",
				"POSIX read/write counts",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableMPIIO, extractor.TableSTDIO},
			Mitigations: "single-rank jobs; I/O already flowing through a higher-level parallel library",
		},
		{
			Issue: issue.CollectiveIO,
			Title: issue.Title(issue.CollectiveIO),
			Knowledge: `When an application does use MPI-IO, the split between
collective (MPIIO_COLL_READS/WRITES) and independent
(MPIIO_INDEP_READS/WRITES) operations matters. Collective operations let
ROMIO aggregate many ranks' small, strided requests into few large,
aligned ones (two-phase I/O); independent operations hit the file system
one by one. Many small independent MPI-IO accesses from many ranks to a
shared file — especially when the file was opened collectively — signal
either a library bug or a missed optimization: the application paid for
MPI-IO but gets POSIX-like behavior. Check the collective share of data
operations, and correlate with the small-I/O and alignment analyses: if
independent accesses are large and aligned, independence is fine.`,
			KeyMetrics: []string{
				"MPIIO_COLL_READS", "MPIIO_COLL_WRITES", "MPIIO_INDEP_READS", "MPIIO_INDEP_WRITES",
				"MPIIO_COLL_OPENS", "MPIIO_SIZE_*_AGG_* histogram",
			},
			Modules:     []string{extractor.TableMPIIO, extractor.TablePOSIX},
			Mitigations: "independent accesses that are already large, aligned, and non-conflicting",
		},
		{
			Issue: issue.TimeImbalance,
			Title: issue.Title(issue.TimeImbalance),
			Knowledge: `Beyond byte-count imbalance, ranks can diverge in the
TIME they spend in I/O — stragglers stall every synchronization point
that follows. On shared-file records Darshan reduces per-rank times into
POSIX_F_FASTEST_RANK_TIME, POSIX_F_SLOWEST_RANK_TIME and
POSIX_F_VARIANCE_RANK_TIME; the DXT trace yields full per-rank busy
time. Compare the slowest rank's I/O time against the mean: a slowest/
mean ratio far above the byte-imbalance ratio points at contention
(lock conflicts, OST queueing) rather than workload skew, because equal
work is taking unequal time. Report both the magnitude and the likely
cause by cross-referencing the shared-file conflict analysis.`,
			KeyMetrics: []string{
				"POSIX_F_FASTEST_RANK_TIME", "POSIX_F_SLOWEST_RANK_TIME",
				"POSIX_F_VARIANCE_RANK_TIME", "per-rank busy time (DXT)",
			},
			Modules:     []string{extractor.TablePOSIX, extractor.TableDXT},
			Mitigations: "time spread proportional to deliberate work distribution; variance dominated by a single cold-start effect",
		},
	}
}
