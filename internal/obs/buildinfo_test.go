package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestGetBuildInfo(t *testing.T) {
	bi := GetBuildInfo()
	if bi.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", bi.GoVersion, runtime.Version())
	}
	if bi.OS != runtime.GOOS || bi.Arch != runtime.GOARCH {
		t.Errorf("target = %s/%s, want %s/%s", bi.OS, bi.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if bi.Version == "" {
		t.Error("Version is empty")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	bi := RegisterBuildInfo(reg)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ion_build_info{") {
		t.Fatalf("exposition missing ion_build_info:\n%s", out)
	}
	for _, label := range []string{
		`go_version="` + bi.GoVersion + `"`,
		`goos="` + bi.OS + `"`,
		`goarch="` + bi.Arch + `"`,
		`version="` + bi.Version + `"`,
	} {
		if !strings.Contains(out, label) {
			t.Errorf("exposition missing label %s:\n%s", label, out)
		}
	}

	// The gauge is a plain sample with value 1, so Gather (and the
	// series store behind it) can retain build identity alongside every
	// other metric.
	found := false
	for _, s := range reg.Gather() {
		if s.Name == "ion_build_info" {
			found = true
			if s.Value != 1 {
				t.Errorf("ion_build_info value = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Error("Gather missing ion_build_info")
	}
}
