package prof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Window is one decoded profile window: the journal record, the API
// payload, and the flamegraph input. CPU windows cover an actual
// profiling interval; snapshot kinds (heap, goroutine) are a point-in-
// time state stamped with the cycle that took them.
type Window struct {
	// ID is unique per window ("w-<kind>-<unix-ms>").
	ID string `json:"id"`
	// Kind is the profile family: "cpu", "heap", or "goroutine".
	Kind string `json:"kind"`
	// Start/End bound the capture (equal for snapshot kinds).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Unit is the meaning of the values: "nanoseconds", "bytes", "count".
	Unit string `json:"unit"`
	// Total is the sum over every sample in the window (before the
	// top-N truncation of Functions and Stacks).
	Total int64 `json:"total"`
	// Functions is the top-N per-function table, highest flat first.
	Functions []FuncStat `json:"functions"`
	// Stacks holds the heaviest folded stacks (root first) for the
	// flamegraph; KeptValue is their value sum (≤ Total when stacks
	// were dropped by the bound).
	Stacks    []Stack `json:"stacks,omitempty"`
	KeptValue int64   `json:"kept_value,omitempty"`
}

// DurationSeconds is the covered wall time (0 for snapshot kinds).
func (w Window) DurationSeconds() float64 { return w.End.Sub(w.Start).Seconds() }

// size estimates the retained bytes of a window (≈ its journal-line
// cost), used for the store's byte bound.
func (w Window) size() int64 {
	n := int64(len(w.ID)+len(w.Kind)+len(w.Unit)) + 160
	for _, f := range w.Functions {
		n += int64(len(f.Name)) + 96
	}
	for _, s := range w.Stacks {
		n += 32
		for _, fr := range s.Frames {
			n += int64(len(fr)) + 8
		}
	}
	return n
}

// Share returns the flat share of the named function, 0 when absent.
func (w Window) Share(fn string) float64 {
	for _, f := range w.Functions {
		if f.Name == fn {
			return f.FlatShare
		}
	}
	return 0
}

// StoreOptions configures a window Store.
type StoreOptions struct {
	// Path is the JSON-lines journal file; required.
	Path string
	// Retention drops windows older than this relative to the newest
	// (default 2h; negative disables the age bound).
	Retention time.Duration
	// MaxWindows bounds retained windows across all kinds (default 360;
	// negative disables).
	MaxWindows int
	// MaxBytes bounds the estimated retained bytes (default 64 MiB;
	// negative disables).
	MaxBytes int64
}

func (o *StoreOptions) applyDefaults() {
	if o.Retention == 0 {
		o.Retention = 2 * time.Hour
	}
	if o.MaxWindows == 0 {
		o.MaxWindows = 360
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 64 << 20
	}
}

// Store is the journaled, retention-bounded profile window store:
// windows append to a JSON-lines journal under the service data dir
// (same replay/compaction discipline as the semantic cache journal), so
// a restarted process keeps its profile history. All methods are safe
// for concurrent use and safe on a nil receiver.
type Store struct {
	mu   sync.Mutex
	opts StoreOptions
	file *os.File
	wins []storedWindow // oldest first
	size int64
	// lines counts journal records since the last compaction; evictions
	// are not journaled, so compaction triggers when dead lines
	// outnumber live windows.
	lines   int
	evicted int64
}

type storedWindow struct {
	w    Window
	size int64
}

// OpenStore loads (or creates) the journal at opts.Path, replaying it
// with the bounds enforced. Unreadable lines — including a torn final
// write from a crash — are skipped, never fatal.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.Path == "" {
		return nil, fmt.Errorf("prof: StoreOptions.Path is required")
	}
	opts.applyDefaults()
	if err := os.MkdirAll(filepath.Dir(opts.Path), 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	st := &Store{opts: opts}
	if err := st.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	// A crash can leave the journal without a final newline; terminate
	// the torn line so the next append starts a fresh record instead of
	// concatenating onto garbage.
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		tail := make([]byte, 1)
		if rf, err := os.Open(opts.Path); err == nil {
			if _, err := rf.ReadAt(tail, info.Size()-1); err == nil && tail[0] != '\n' {
				f.Write([]byte{'\n'})
			}
			rf.Close()
		}
	}
	st.file = f
	return st, nil
}

// replay loads the journal into memory, oldest first.
func (st *Store) replay() error {
	f, err := os.Open(st.opts.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		st.lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var w Window
		if err := json.Unmarshal(line, &w); err != nil {
			continue
		}
		if w.ID == "" || w.Kind == "" {
			continue
		}
		st.insertLocked(w)
	}
	// Scanner errors (a torn oversized tail) degrade to a partial load,
	// same policy as unreadable lines.
	return nil
}

// insertLocked appends a window and applies the bounds. A re-written
// ID (same window journaled twice) supersedes the earlier record.
func (st *Store) insertLocked(w Window) {
	for i := range st.wins {
		if st.wins[i].w.ID == w.ID {
			st.size -= st.wins[i].size
			st.wins = append(st.wins[:i], st.wins[i+1:]...)
			break
		}
	}
	sw := storedWindow{w: w, size: w.size()}
	st.wins = append(st.wins, sw)
	st.size += sw.size
	st.evictLocked(w.End)
}

// evictLocked drops oldest-first until the age, count, and byte bounds
// hold, keeping at least the newest window.
func (st *Store) evictLocked(now time.Time) {
	cutoff := time.Time{}
	if st.opts.Retention > 0 {
		cutoff = now.Add(-st.opts.Retention)
	}
	for len(st.wins) > 1 {
		victim := st.wins[0]
		over := (st.opts.MaxWindows > 0 && len(st.wins) > st.opts.MaxWindows) ||
			(st.opts.MaxBytes > 0 && st.size > st.opts.MaxBytes) ||
			(!cutoff.IsZero() && victim.w.End.Before(cutoff))
		if !over {
			return
		}
		st.size -= victim.size
		st.wins = st.wins[1:]
		st.evicted++
	}
}

// Add journals and retains one window.
func (st *Store) Add(w Window) error {
	if st == nil {
		return nil
	}
	if w.ID == "" || w.Kind == "" {
		return fmt.Errorf("prof: window needs an id and a kind")
	}
	line, err := json.Marshal(w)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	line = append(line, '\n')
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file != nil {
		if _, err := st.file.Write(line); err != nil {
			return fmt.Errorf("prof: journaling window: %w", err)
		}
		st.lines++
	}
	st.insertLocked(w)
	st.compactLocked()
	return nil
}

// compactLocked rewrites the journal when evicted lines outnumber live
// windows, via temp file + rename so a crash mid-compact leaves the
// old journal intact.
func (st *Store) compactLocked() {
	if st.file == nil || st.lines <= 2*len(st.wins)+16 {
		return
	}
	tmp := st.opts.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	n := 0
	for _, sw := range st.wins {
		line, err := json.Marshal(sw.w)
		if err != nil {
			continue
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
		n++
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, st.opts.Path); err != nil {
		os.Remove(tmp)
		return
	}
	old := st.file
	nf, err := os.OpenFile(st.opts.Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep appending to the renamed-over handle; only post-compaction
		// writes are lost on this degenerate path.
		return
	}
	old.Close()
	st.file = nf
	st.lines = n
}

// Windows returns retained windows newest first, filtered by kind
// (empty matches all) and bounded by limit (≤0 means all).
func (st *Store) Windows(kind string, limit int) []Window {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Window, 0, len(st.wins))
	for i := len(st.wins) - 1; i >= 0; i-- {
		if kind != "" && st.wins[i].w.Kind != kind {
			continue
		}
		out = append(out, st.wins[i].w)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Get returns one window by id.
func (st *Store) Get(id string) (Window, bool) {
	if st == nil {
		return Window{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.wins) - 1; i >= 0; i-- {
		if st.wins[i].w.ID == id {
			return st.wins[i].w, true
		}
	}
	return Window{}, false
}

// Latest returns the newest window of the given kind.
func (st *Store) Latest(kind string) (Window, bool) {
	ws := st.Windows(kind, 1)
	if len(ws) == 0 {
		return Window{}, false
	}
	return ws[0], true
}

// Len returns the number of retained windows (all kinds).
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.wins)
}

// Bytes returns the estimated retained bytes.
func (st *Store) Bytes() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.size
}

// Evicted returns how many windows retention has dropped.
func (st *Store) Evicted() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// Close flushes and closes the journal.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file == nil {
		return nil
	}
	err := st.file.Close()
	st.file = nil
	return err
}
