// Package prof is ionserve's continuous profiler: always-on, low-
// overhead capture of rolling CPU profile windows (N seconds of every
// M) plus periodic heap/goroutine snapshots, decoded from the runtime's
// gzipped pprof protobuf into per-function sample tables and folded
// stacks, journaled into a retention-bounded window store, diffed
// against a trailing baseline, and exported as registry gauges so the
// existing SLO rule grammar can fire on a hot function creeping up
// between builds. Where the series store answers "analyze p95
// regressed", this package answers "because darshan.ParseText went
// from 5% to 18% of CPU" — the same localization step Drishti applies
// to I/O cost, applied to the service itself.
//
// Like the rest of the telemetry layer the package is stdlib-only; the
// pprof wire format is decoded by a hand-rolled varint reader rather
// than a protobuf dependency.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType is one sample dimension of a profile: what the numbers
// mean ("cpu") and their unit ("nanoseconds").
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// ProfileSample is one decoded stack sample: the call stack (leaf
// first, as the wire format stores it) and one value per sample type.
type ProfileSample struct {
	// Stack holds function names, leaf first. Inlined frames are
	// expanded, innermost first, so the leaf attribution matches what
	// `go tool pprof` reports.
	Stack []string
	// Values holds one measurement per Profile.SampleTypes entry.
	Values []int64
}

// Profile is a decoded pprof profile: the subset of profile.proto the
// continuous profiler consumes (samples resolved to function names;
// mappings, addresses, and labels are parsed past, not retained).
type Profile struct {
	SampleTypes   []ValueType
	Samples       []ProfileSample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

// ValueIndex returns the index of the sample type named typ, or -1.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// DefaultValueIndex picks the conventional primary sample dimension:
// "cpu" (nanoseconds) for CPU profiles, "inuse_space" for heap
// profiles, falling back to the last sample type (the pprof default).
func (p *Profile) DefaultValueIndex() int {
	for _, typ := range []string{"cpu", "inuse_space"} {
		if i := p.ValueIndex(typ); i >= 0 {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// gzipMagic is the two-byte gzip header the runtime's pprof writer
// always emits with debug=0.
var gzipMagic = []byte{0x1f, 0x8b}

// Parse decodes a pprof profile as written by runtime/pprof with
// debug=0: an optionally-gzipped profile.proto message. Truncated or
// corrupt input returns an error; it never panics, so torn journal
// tails and half-written files degrade to a skipped record.
func Parse(data []byte) (*Profile, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gzip header: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, 256<<20))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data = raw
	}
	return parseProto(data)
}

// --- minimal protobuf wire-format reader -----------------------------

// errTruncated is the generic malformed-input error; the decoder cares
// only that decoding stops, not which byte offended.
var errTruncated = fmt.Errorf("prof: truncated or malformed protobuf")

// wire types of profile.proto fields (groups never appear).
const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

// pbuf is a cursor over an encoded message.
type pbuf struct {
	data []byte
	pos  int
}

func (b *pbuf) done() bool { return b.pos >= len(b.data) }

// varint reads one base-128 varint.
func (b *pbuf) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if b.pos >= len(b.data) {
			return 0, errTruncated
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errTruncated
}

// field reads the next field tag.
func (b *pbuf) field() (num int, wire int, err error) {
	tag, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads a length-delimited payload.
func (b *pbuf) bytes() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, errTruncated
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

// skip advances past a field of the given wire type.
func (b *pbuf) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := b.varint()
		return err
	case wireI64:
		if len(b.data)-b.pos < 8 {
			return errTruncated
		}
		b.pos += 8
		return nil
	case wireBytes:
		_, err := b.bytes()
		return err
	case wireI32:
		if len(b.data)-b.pos < 4 {
			return errTruncated
		}
		b.pos += 4
		return nil
	}
	return errTruncated
}

// packedUints decodes a repeated integer field: either one varint
// (unpacked encoding) or a length-delimited run of varints (packed).
func packedUints(b *pbuf, wire int, out []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := b.varint()
		if err != nil {
			return out, err
		}
		return append(out, v), nil
	}
	if wire != wireBytes {
		return out, errTruncated
	}
	payload, err := b.bytes()
	if err != nil {
		return out, err
	}
	p := &pbuf{data: payload}
	for !p.done() {
		v, err := p.varint()
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
	return out, nil
}

// --- profile.proto field numbers ------------------------------------

// rawValueType is ValueType before string-table resolution.
type rawValueType struct{ typ, unit int64 }

func parseValueType(data []byte) (rawValueType, error) {
	var vt rawValueType
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1: // type
			v, err := b.varint()
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2: // unit
			v, err := b.varint()
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

// rawSample is Sample before location resolution.
type rawSample struct {
	locs   []uint64
	values []int64
}

func parseSample(data []byte) (rawSample, error) {
	var s rawSample
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id (repeated, possibly packed)
			s.locs, err = packedUints(b, wire, s.locs)
			if err != nil {
				return s, err
			}
		case 2: // value (repeated, possibly packed)
			var vals []uint64
			vals, err = packedUints(b, wire, nil)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		default:
			if err := b.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// rawLocation resolves to a list of function ids (innermost inline
// frame first, matching the Line ordering of the wire format).
type rawLocation struct {
	id      uint64
	funcIDs []uint64
}

func parseLocation(data []byte) (rawLocation, error) {
	var l rawLocation
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return l, err
		}
		switch num {
		case 1: // id
			v, err := b.varint()
			if err != nil {
				return l, err
			}
			l.id = v
		case 4: // line (repeated message)
			payload, err := b.bytes()
			if err != nil {
				return l, err
			}
			fid, err := parseLineFunc(payload)
			if err != nil {
				return l, err
			}
			l.funcIDs = append(l.funcIDs, fid)
		default:
			if err := b.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLineFunc(data []byte) (uint64, error) {
	b := &pbuf{data: data}
	var fid uint64
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return 0, err
		}
		if num == 1 { // function_id
			fid, err = b.varint()
			if err != nil {
				return 0, err
			}
			continue
		}
		if err := b.skip(wire); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

// rawFunction maps a function id to its name string index.
type rawFunction struct {
	id   uint64
	name int64
}

func parseFunction(data []byte) (rawFunction, error) {
	var f rawFunction
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return f, err
		}
		switch num {
		case 1: // id
			v, err := b.varint()
			if err != nil {
				return f, err
			}
			f.id = v
		case 2: // name (string table index)
			v, err := b.varint()
			if err != nil {
				return f, err
			}
			f.name = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// parseProto decodes the top-level Profile message and resolves
// samples to function-name stacks.
func parseProto(data []byte) (*Profile, error) {
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   = map[uint64][]uint64{} // location id → function ids
		functions   = map[uint64]int64{}    // function id → name index
		strings     []string
		periodType  rawValueType
		p           = &Profile{}
	)
	b := &pbuf{data: data}
	for !b.done() {
		num, wire, err := b.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(payload)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			l, err := parseLocation(payload)
			if err != nil {
				return nil, err
			}
			locations[l.id] = l.funcIDs
		case 5: // function
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			f, err := parseFunction(payload)
			if err != nil {
				return nil, err
			}
			functions[f.id] = f.name
		case 6: // string_table
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(payload))
		case 9: // time_nanos
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			payload, err := b.bytes()
			if err != nil {
				return nil, err
			}
			periodType, err = parseValueType(payload)
			if err != nil {
				return nil, err
			}
		case 12: // period
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := b.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strings) {
			return ""
		}
		return strings[i]
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: profile has no sample types")
	}

	for _, rs := range samples {
		if len(rs.values) == 0 {
			continue
		}
		ps := ProfileSample{Values: rs.values, Stack: make([]string, 0, len(rs.locs))}
		for _, loc := range rs.locs {
			for _, fid := range locations[loc] {
				name := str(functions[fid])
				if name == "" {
					name = "unknown"
				}
				ps.Stack = append(ps.Stack, name)
			}
		}
		p.Samples = append(p.Samples, ps)
	}
	return p, nil
}

// --- aggregation -----------------------------------------------------

// FuncStat is one function's share of a profile: Flat is time (or
// bytes) sampled with the function on top of the stack, Cum includes
// time anywhere on the stack. Shares are fractions of the window total.
type FuncStat struct {
	Name      string  `json:"name"`
	Flat      int64   `json:"flat"`
	Cum       int64   `json:"cum"`
	FlatShare float64 `json:"flat_share"`
	CumShare  float64 `json:"cum_share"`
}

// Stack is one folded call stack (root first) with its aggregated
// value: the flamegraph input row.
type Stack struct {
	Frames []string `json:"frames"`
	Value  int64    `json:"value"`
}

// Aggregate folds a profile's samples at value index vi into the
// per-function table (sorted by Flat descending, Name ascending on
// ties) and deduplicated root-first stacks (sorted by Value
// descending). total is the sum over all samples — shares and the
// stacks are fractions of it even after top-N truncation upstream.
func Aggregate(p *Profile, vi int) (funcs []FuncStat, stacks []Stack, total int64) {
	if vi < 0 || len(p.SampleTypes) == 0 {
		return nil, nil, 0
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	folded := map[string]*Stack{}
	var keyBuf bytes.Buffer
	for _, s := range p.Samples {
		if vi >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		v := s.Values[vi]
		if v == 0 {
			continue
		}
		total += v
		flat[s.Stack[0]] += v
		seen := map[string]bool{}
		for _, fn := range s.Stack {
			if !seen[fn] {
				seen[fn] = true
				cum[fn] += v
			}
		}
		// Fold the (root-first) stack.
		keyBuf.Reset()
		for i := len(s.Stack) - 1; i >= 0; i-- {
			keyBuf.WriteString(s.Stack[i])
			keyBuf.WriteByte(';')
		}
		key := keyBuf.String()
		if st, ok := folded[key]; ok {
			st.Value += v
		} else {
			frames := make([]string, len(s.Stack))
			for i, fn := range s.Stack {
				frames[len(s.Stack)-1-i] = fn
			}
			folded[key] = &Stack{Frames: frames, Value: v}
		}
	}

	funcs = make([]FuncStat, 0, len(flat))
	for name, f := range flat {
		funcs = append(funcs, FuncStat{Name: name, Flat: f, Cum: cum[name]})
	}
	// Functions that never appear as a leaf still deserve a row when
	// they dominate cumulatively (e.g. the worker loop itself).
	for name, c := range cum {
		if _, ok := flat[name]; !ok {
			funcs = append(funcs, FuncStat{Name: name, Cum: c})
		}
	}
	if total > 0 {
		for i := range funcs {
			funcs[i].FlatShare = float64(funcs[i].Flat) / float64(total)
			funcs[i].CumShare = float64(funcs[i].Cum) / float64(total)
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].Flat != funcs[j].Flat {
			return funcs[i].Flat > funcs[j].Flat
		}
		if funcs[i].Cum != funcs[j].Cum {
			return funcs[i].Cum > funcs[j].Cum
		}
		return funcs[i].Name < funcs[j].Name
	})

	stacks = make([]Stack, 0, len(folded))
	for _, st := range folded {
		stacks = append(stacks, *st)
	}
	sort.Slice(stacks, func(i, j int) bool {
		if stacks[i].Value != stacks[j].Value {
			return stacks[i].Value > stacks[j].Value
		}
		return fmt.Sprint(stacks[i].Frames) < fmt.Sprint(stacks[j].Frames)
	})
	return funcs, stacks, total
}
