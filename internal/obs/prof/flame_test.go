package prof

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"time"
)

func flameTestWindow() Window {
	return Window{
		ID:    "w-cpu-1",
		Kind:  "cpu",
		Start: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		End:   time.Date(2026, 8, 7, 12, 0, 10, 0, time.UTC),
		Unit:  "nanoseconds",
		Total: 1600,
		Stacks: []Stack{
			{Frames: []string{"main.root", "main.mid", "main.leaf"}, Value: 1000},
			{Frames: []string{"main.root", "main.mid"}, Value: 500},
			{Frames: []string{"main.root", "runtime.gcBgMarkWorker"}, Value: 100},
		},
		KeptValue: 1600,
	}
}

// TestFlamegraphSVGWellFormed validates the rendered SVG as XML and
// checks the frames are present with proportional widths.
func TestFlamegraphSVGWellFormed(t *testing.T) {
	svg := FlamegraphSVG(flameTestWindow())

	dec := xml.NewDecoder(bytes.NewReader(svg))
	rects, texts, titles := 0, 0, 0
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
		if se, ok := tok.(xml.StartElement); ok {
			switch se.Name.Local {
			case "rect":
				rects++
			case "text":
				texts++
			case "title":
				titles++
			}
		}
	}
	// Background + 4 distinct frames (root, mid, leaf, gc worker).
	if rects < 5 {
		t.Fatalf("rects = %d, want ≥5", rects)
	}
	if titles < 4 {
		t.Fatalf("hover titles = %d, want ≥4 (one per frame)", titles)
	}
	if texts < 2 {
		t.Fatalf("texts = %d, want ≥2", texts)
	}
	out := string(svg)
	for _, frame := range []string{"main.root", "main.mid", "main.leaf"} {
		if !strings.Contains(out, frame) {
			t.Errorf("SVG missing frame %q", frame)
		}
	}
	if !strings.Contains(out, "100.0%") {
		t.Errorf("SVG missing root share tooltip:\n%s", out)
	}
	if !strings.Contains(out, `xmlns="http://www.w3.org/2000/svg"`) {
		t.Error("SVG missing namespace")
	}
	if strings.Contains(strings.ToLower(out), "<script") {
		t.Error("flamegraph must be JavaScript-free")
	}
}

// TestFlamegraphEscapesNames: generic Go function names carry XML
// metacharacters and must not break the document.
func TestFlamegraphEscapesNames(t *testing.T) {
	w := flameTestWindow()
	w.Stacks = []Stack{{Frames: []string{`main.Map[string]chan<- int "q&a"`}, Value: 10}}
	w.Total, w.KeptValue = 10, 10
	svg := FlamegraphSVG(w)
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("escaped SVG not well-formed: %v\n%s", err, svg)
		}
		_ = tok
	}
	if bytes.Contains(svg, []byte(`chan<- `)) {
		t.Error("raw '<' leaked into SVG")
	}
}

func TestFlamegraphEmptyWindow(t *testing.T) {
	w := Window{ID: "w-cpu-empty", Kind: "cpu", Unit: "nanoseconds"}
	svg := FlamegraphSVG(w)
	if !bytes.Contains(svg, []byte("no samples")) {
		t.Fatalf("empty window SVG missing placeholder:\n%s", svg)
	}
}

func TestFormatSampleValue(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		unit string
		want string
	}{
		{2_500_000_000, "nanoseconds", "2.50s"},
		{3_200_000, "nanoseconds", "3.2ms"},
		{4_500, "nanoseconds", "4.5µs"},
		{900, "nanoseconds", "900ns"},
		{3 << 30, "bytes", "3.00GiB"},
		{5 << 20, "bytes", "5.0MiB"},
		{2 << 10, "bytes", "2.0KiB"},
		{512, "bytes", "512B"},
		{42, "count", "42"},
	} {
		if got := formatSampleValue(tc.v, tc.unit); got != tc.want {
			t.Errorf("formatSampleValue(%d, %q) = %q, want %q", tc.v, tc.unit, got, tc.want)
		}
	}
}
