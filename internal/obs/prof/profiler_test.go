package prof

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ion/internal/obs"
	"ion/internal/obs/series"
)

func newTestProfiler(t *testing.T, opts Options) (*Profiler, *obs.Registry) {
	t.Helper()
	if opts.Store == nil {
		st, err := OpenStore(StoreOptions{Path: filepath.Join(t.TempDir(), "windows.jsonl")})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		opts.Store = st
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, opts.Registry
}

func gatherValue(t *testing.T, reg *obs.Registry, name string, labels map[string]string) (float64, bool) {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name != name {
			continue
		}
		match := true
		for k, want := range labels {
			got := ""
			for _, l := range s.Labels {
				if l.Key == k {
					got = l.Value
				}
			}
			if got != want {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// syntheticCPUWindow builds a CPU window whose function table carries
// the given name→flat-share map.
func syntheticCPUWindow(n int, at time.Time, shares map[string]float64) Window {
	w := Window{
		ID:    fmt.Sprintf("w-cpu-synth-%d", n),
		Kind:  KindCPU,
		Start: at.Add(-10 * time.Second),
		End:   at,
		Unit:  "nanoseconds",
		Total: 1_000_000,
	}
	for name, share := range shares {
		w.Functions = append(w.Functions, FuncStat{
			Name:      name,
			Flat:      int64(share * 1_000_000),
			Cum:       int64(share * 1_000_000),
			FlatShare: share,
			CumShare:  share,
		})
	}
	return w
}

// TestProfilerRegressionTripsRule is the end-to-end regression path:
// five quiet baseline windows, then a window where one function jumps
// from 5% to 60% of CPU — the delta gauge must move and a stock SLO
// rule over it must reach firing via the ordinary scrape path.
func TestProfilerRegressionTripsRule(t *testing.T) {
	p, reg := newTestProfiler(t, Options{BaselineWindows: 5})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	for i := 0; i < 5; i++ {
		w := syntheticCPUWindow(i, base.Add(time.Duration(i)*time.Minute),
			map[string]float64{"ion.ParseText": 0.05, "ion.Serve": 0.30})
		if err := p.AddWindow(w); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := gatherValue(t, reg, "ion_prof_hot_function_delta", map[string]string{"fn": "ion.ParseText"}); !ok || v > 0.01 || v < -0.01 {
		t.Fatalf("steady-state delta = %v ok=%v, want ≈0", v, ok)
	}

	spike := syntheticCPUWindow(9, base.Add(10*time.Minute),
		map[string]float64{"ion.ParseText": 0.60, "ion.Serve": 0.20})
	if err := p.AddWindow(spike); err != nil {
		t.Fatal(err)
	}

	v, ok := gatherValue(t, reg, "ion_prof_hot_function_delta", map[string]string{"fn": "ion.ParseText"})
	if !ok || v < 0.5 {
		t.Fatalf("regression delta = %v ok=%v, want ≈0.55", v, ok)
	}
	if v, _ := gatherValue(t, reg, "ion_prof_max_share_delta", nil); v < 0.5 {
		t.Fatalf("ion_prof_max_share_delta = %v, want ≈0.55", v)
	}
	hot := p.HotFunctions()
	if len(hot) == 0 || hot[0].Name != "ion.ParseText" || hot[0].Delta < 0.5 {
		t.Fatalf("HotFunctions = %+v, want ion.ParseText on top with delta ≈0.55", hot)
	}

	// The same registry scraped into a series store must trip the
	// hot-function rule.
	rules := series.MustRules([]byte(`[
	  {"name": "HotFunctionRegression", "expr": "max(ion_prof_hot_function_delta) > 0.25", "for": "0s", "severity": "warn"}
	]`))
	ss := series.New(reg, series.Options{Interval: time.Second, Rules: rules})
	ss.Scrape(base.Add(11 * time.Minute))
	var got series.AlertStatus
	for _, a := range ss.Alerts() {
		if a.Rule.Name == "HotFunctionRegression" {
			got = a
		}
	}
	if got.State != series.StateFiring {
		t.Fatalf("HotFunctionRegression state = %q (value %v), want firing", got.State, got.Value)
	}

	// Counter bookkeeping rode along.
	if v, ok := gatherValue(t, reg, "ion_prof_windows_total", map[string]string{"kind": "cpu"}); !ok || v != 6 {
		t.Fatalf("ion_prof_windows_total{kind=cpu} = %v ok=%v, want 6", v, ok)
	}
}

// TestProfilerFirstWindowHasNoDelta: with no trailing baseline the
// delta must stay zero — a fresh process is not a regression.
func TestProfilerFirstWindowHasNoDelta(t *testing.T) {
	p, reg := newTestProfiler(t, Options{})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	p.AddWindow(syntheticCPUWindow(0, base, map[string]float64{"ion.Hot": 0.9}))
	if v, ok := gatherValue(t, reg, "ion_prof_hot_function_share", map[string]string{"fn": "ion.Hot"}); !ok || v != 0.9 {
		t.Fatalf("share = %v ok=%v, want 0.9", v, ok)
	}
	if v, _ := gatherValue(t, reg, "ion_prof_hot_function_delta", map[string]string{"fn": "ion.Hot"}); v != 0 {
		t.Fatalf("delta = %v, want 0 without a baseline", v)
	}
	if v, _ := gatherValue(t, reg, "ion_prof_max_share_delta", nil); v != 0 {
		t.Fatalf("max delta = %v, want 0 without a baseline", v)
	}
}

// TestProfilerZeroesStaleGauges: a function that drops out of the top
// table must have its gauges reset so the rule stops seeing it.
func TestProfilerZeroesStaleGauges(t *testing.T) {
	p, reg := newTestProfiler(t, Options{})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	p.AddWindow(syntheticCPUWindow(0, base, map[string]float64{"ion.Gone": 0.7}))
	p.AddWindow(syntheticCPUWindow(1, base.Add(time.Minute), map[string]float64{"ion.Other": 0.6}))
	if v, ok := gatherValue(t, reg, "ion_prof_hot_function_share", map[string]string{"fn": "ion.Gone"}); !ok || v != 0 {
		t.Fatalf("stale share = %v ok=%v, want 0", v, ok)
	}
	if v, ok := gatherValue(t, reg, "ion_prof_hot_function_share", map[string]string{"fn": "ion.Other"}); !ok || v != 0.6 {
		t.Fatalf("live share = %v ok=%v, want 0.6", v, ok)
	}
}

// TestProfilerSkipsWhenGuardHeld: an incident capture owning the CPU
// profiler makes the continuous profiler skip its CPU window (counted)
// while the snapshot kinds still land.
func TestProfilerSkipsWhenGuardHeld(t *testing.T) {
	guard := obs.NewCPUProfileGuard()
	release, err := guard.Acquire("incident-capture", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	p, reg := newTestProfiler(t, Options{Guard: guard, Window: 50 * time.Millisecond})
	p.CaptureCycle(time.Now())

	if ws := p.Store().Windows(KindCPU, 0); len(ws) != 0 {
		t.Fatalf("cpu windows = %d, want 0 while the guard is held", len(ws))
	}
	if v, _ := gatherValue(t, reg, "ion_prof_skipped_total", nil); v != 1 {
		t.Fatalf("skipped = %v, want 1", v)
	}
	if ws := p.Store().Windows(KindHeap, 0); len(ws) == 0 {
		t.Fatal("heap snapshot should land even when the CPU guard is held")
	}
	if ws := p.Store().Windows(KindGoroutine, 0); len(ws) == 0 {
		t.Fatal("goroutine snapshot should land even when the CPU guard is held")
	}
}

// TestProfilerRealCaptureCycle drives one real cycle with a busy
// goroutine and checks a decoded CPU window lands naming the burner.
func TestProfilerRealCaptureCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("real profiling in -short mode")
	}
	p, reg := newTestProfiler(t, Options{Window: 300 * time.Millisecond, Interval: time.Minute})

	var stop atomic.Bool
	var sink atomic.Uint64
	done := make(chan struct{})
	go func() { defer close(done); cpuBurner(&stop, &sink) }()
	p.CaptureCycle(time.Now())
	stop.Store(true)
	<-done

	cpu, ok := p.Store().Latest(KindCPU)
	if !ok {
		t.Fatal("no CPU window after a capture cycle")
	}
	if cpu.Total <= 0 || len(cpu.Functions) == 0 {
		t.Fatalf("cpu window empty: total=%d funcs=%d", cpu.Total, len(cpu.Functions))
	}
	found := false
	for _, f := range cpu.Functions {
		if strings.Contains(f.Name, "cpuBurner") {
			found = true
		}
	}
	if !found {
		t.Fatalf("burner not in window functions: %+v", cpu.Functions[:min(len(cpu.Functions), 6)])
	}
	if len(cpu.Stacks) == 0 {
		t.Fatal("cpu window has no folded stacks for the flamegraph")
	}
	if _, ok := p.Store().Latest(KindHeap); !ok {
		t.Fatal("no heap snapshot after a capture cycle")
	}
	if p.LastWindowTime().IsZero() {
		t.Fatal("LastWindowTime still zero")
	}
	if v, ok := gatherValue(t, reg, "ion_prof_last_window_unix_seconds", nil); !ok || v <= 0 {
		t.Fatalf("ion_prof_last_window_unix_seconds = %v ok=%v", v, ok)
	}
	if len(p.HotFunctions()) == 0 {
		t.Fatal("HotFunctions empty after a real window")
	}
}

// TestProfilerResumesBaselineFromJournal: a restarted profiler over a
// replayed store starts with the previous hot-function table instead of
// an empty baseline.
func TestProfilerResumesBaselineFromJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "windows.jsonl")
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	st, err := OpenStore(StoreOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := newTestProfiler(t, Options{Store: st})
	for i := 0; i < 3; i++ {
		p1.AddWindow(syntheticCPUWindow(i, base.Add(time.Duration(i)*time.Minute),
			map[string]float64{"ion.Steady": 0.4}))
	}
	st.Close()

	st2, err := OpenStore(StoreOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	p2, reg2 := newTestProfiler(t, Options{Store: st2})
	hot := p2.HotFunctions()
	if len(hot) == 0 || hot[0].Name != "ion.Steady" {
		t.Fatalf("restarted profiler hot table = %+v, want ion.Steady", hot)
	}
	if v, ok := gatherValue(t, reg2, "ion_prof_hot_function_share", map[string]string{"fn": "ion.Steady"}); !ok || v != 0.4 {
		t.Fatalf("restarted share gauge = %v ok=%v, want 0.4", v, ok)
	}
	if p2.LastWindowTime().IsZero() {
		t.Fatal("restarted LastWindowTime zero despite replayed windows")
	}
}

// TestProfilerStartStop exercises the real loop briefly with a tiny
// interval and makes sure Stop interrupts an in-flight window.
func TestProfilerStartStop(t *testing.T) {
	if testing.Short() {
		t.Skip("real profiling in -short mode")
	}
	p, _ := newTestProfiler(t, Options{Window: 5 * time.Second, Interval: time.Hour})
	p.Start()
	p.Start() // idempotent
	time.Sleep(150 * time.Millisecond)
	stopDone := make(chan struct{})
	go func() { p.Stop(); close(stopDone) }()
	select {
	case <-stopDone:
	case <-time.After(3 * time.Second):
		t.Fatal("Stop did not interrupt the in-flight CPU window")
	}
	p.Stop() // idempotent
}

func TestProfilerWindowClamp(t *testing.T) {
	p, _ := newTestProfiler(t, Options{Window: time.Minute, Interval: 2 * time.Second})
	if p.Window() > time.Second {
		t.Fatalf("window = %v, want clamped to half the interval", p.Window())
	}
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without a store should error")
	}
}
