package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testWindow(kind string, n int, at time.Time) Window {
	return Window{
		ID:    fmt.Sprintf("w-%s-%d", kind, n),
		Kind:  kind,
		Start: at.Add(-10 * time.Second),
		End:   at,
		Unit:  "nanoseconds",
		Total: int64(1000 + n),
		Functions: []FuncStat{
			{Name: "main.work", Flat: 800, Cum: 900, FlatShare: 0.8, CumShare: 0.9},
			{Name: "main.idle", Flat: 200, Cum: 1000, FlatShare: 0.2, CumShare: 1.0},
		},
		Stacks:    []Stack{{Frames: []string{"main.main", "main.work"}, Value: 800}},
		KeptValue: 800,
	}
}

func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	if opts.Path == "" {
		opts.Path = filepath.Join(dir, "windows.jsonl")
	}
	st, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	st := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < 5; i++ {
		if err := st.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute))); err != nil {
			t.Fatal(err)
		}
	}
	st.Add(testWindow("heap", 0, base))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, StoreOptions{})
	if st2.Len() != 6 {
		t.Fatalf("replayed %d windows, want 6", st2.Len())
	}
	cpu := st2.Windows("cpu", 0)
	if len(cpu) != 5 {
		t.Fatalf("cpu windows = %d, want 5", len(cpu))
	}
	// Newest first.
	if cpu[0].ID != "w-cpu-4" || cpu[4].ID != "w-cpu-0" {
		t.Fatalf("order wrong: first=%s last=%s", cpu[0].ID, cpu[4].ID)
	}
	w, ok := st2.Get("w-cpu-2")
	if !ok || w.Total != 1002 || len(w.Functions) != 2 || w.Functions[0].Name != "main.work" {
		t.Fatalf("Get(w-cpu-2) = %+v ok=%v", w, ok)
	}
	if w.Stacks[0].Frames[0] != "main.main" {
		t.Fatalf("stack frames lost: %+v", w.Stacks)
	}
	if latest, ok := st2.Latest("heap"); !ok || latest.ID != "w-heap-0" {
		t.Fatalf("Latest(heap) = %+v ok=%v", latest, ok)
	}
}

func TestStoreSupersedeByID(t *testing.T) {
	st := openTestStore(t, t.TempDir(), StoreOptions{})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	w := testWindow("cpu", 1, base)
	st.Add(w)
	w.Total = 9999
	st.Add(w)
	if st.Len() != 1 {
		t.Fatalf("len = %d, want 1 (same ID supersedes)", st.Len())
	}
	got, _ := st.Get(w.ID)
	if got.Total != 9999 {
		t.Fatalf("total = %d, want the superseding record", got.Total)
	}
}

func TestStoreCountAndAgeEviction(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	st := openTestStore(t, t.TempDir(), StoreOptions{MaxWindows: 3, Retention: -1})
	for i := 0; i < 10; i++ {
		st.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute)))
	}
	if st.Len() != 3 {
		t.Fatalf("len = %d, want 3 (count bound)", st.Len())
	}
	if _, ok := st.Get("w-cpu-0"); ok {
		t.Fatal("oldest window survived the count bound")
	}
	if st.Evicted() != 7 {
		t.Fatalf("evicted = %d, want 7", st.Evicted())
	}

	// Age bound: a new window an hour later expires everything older
	// than the retention, measured against the newest End.
	st2 := openTestStore(t, t.TempDir(), StoreOptions{Retention: 10 * time.Minute, MaxWindows: -1})
	for i := 0; i < 5; i++ {
		st2.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute)))
	}
	if st2.Len() != 5 {
		t.Fatalf("len = %d, want 5 before the gap", st2.Len())
	}
	st2.Add(testWindow("cpu", 99, base.Add(time.Hour)))
	if st2.Len() != 1 {
		t.Fatalf("len = %d, want 1 after the age bound", st2.Len())
	}
}

func TestStoreByteBound(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	w := testWindow("cpu", 0, base)
	per := w.size()
	st := openTestStore(t, t.TempDir(), StoreOptions{MaxBytes: per * 3, MaxWindows: -1, Retention: -1})
	for i := 0; i < 10; i++ {
		st.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute)))
	}
	if st.Len() > 3 {
		t.Fatalf("len = %d, want ≤3 under the byte bound", st.Len())
	}
	if st.Bytes() > per*3 {
		t.Fatalf("bytes = %d, want ≤ %d", st.Bytes(), per*3)
	}
}

// TestStoreTornTailReplay mixes garbage, a half-written JSON line, and
// a blank line into the journal: replay must keep every intact record
// and keep the store appendable.
func TestStoreTornTailReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "windows.jsonl")
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	st := openTestStore(t, dir, StoreOptions{Path: path})
	for i := 0; i < 3; i++ {
		st.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute)))
	}
	st.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n")
	f.WriteString("{\"id\":\"w-cpu-valid\",\"kind\":\"cpu\",\"end\":\"2026-08-07T12:30:00Z\"}\n")
	f.WriteString("not json at all\n")
	f.WriteString(`{"id":"w-cpu-torn","kind":"cpu","total":12`) // no close, no newline
	f.Close()

	st2 := openTestStore(t, dir, StoreOptions{Path: path})
	if st2.Len() != 4 {
		t.Fatalf("replayed %d windows, want 4 (3 intact + 1 minimal)", st2.Len())
	}
	if _, ok := st2.Get("w-cpu-torn"); ok {
		t.Fatal("torn tail record should have been skipped")
	}
	if _, ok := st2.Get("w-cpu-valid"); !ok {
		t.Fatal("valid minimal record after garbage should replay")
	}
	// The store stays appendable after a dirty replay.
	if err := st2.Add(testWindow("cpu", 50, base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3 := openTestStore(t, dir, StoreOptions{Path: path})
	if _, ok := st3.Get("w-cpu-50"); !ok {
		t.Fatal("post-replay append lost on reopen")
	}
}

// TestStoreCompaction checks the journal is rewritten once dead lines
// outnumber live windows, and that the compacted journal replays.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "windows.jsonl")
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	st := openTestStore(t, dir, StoreOptions{Path: path, MaxWindows: 4, Retention: -1})
	for i := 0; i < 80; i++ {
		st.Add(testWindow("cpu", i, base.Add(time.Duration(i)*time.Minute)))
	}
	st.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines > 2*4+16 {
		t.Fatalf("journal has %d lines after compaction, want ≤ %d", lines, 2*4+16)
	}
	st2 := openTestStore(t, dir, StoreOptions{Path: path, MaxWindows: 4, Retention: -1})
	if st2.Len() != 4 {
		t.Fatalf("compacted journal replayed %d windows, want 4", st2.Len())
	}
	if _, ok := st2.Get("w-cpu-79"); !ok {
		t.Fatal("newest window missing after compaction")
	}
}

func TestStoreNilSafe(t *testing.T) {
	var st *Store
	if err := st.Add(Window{ID: "x", Kind: "cpu"}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.Bytes() != 0 || st.Evicted() != 0 {
		t.Fatal("nil store not empty")
	}
	if ws := st.Windows("", 0); ws != nil {
		t.Fatal("nil store returned windows")
	}
	if _, ok := st.Get("x"); ok {
		t.Fatal("nil store Get ok")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
