package prof

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"ion/internal/obs"
)

// Profile kinds the continuous profiler captures each cycle. Block and
// mutex profiles are also polled but only journaled when non-empty
// (their runtime sampling is off unless the operator enables it).
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
	KindBlock     = "block"
	KindMutex     = "mutex"
)

// Options configures a Profiler. The zero Options (plus Store) is a
// working profiler with the production duty cycle: 10s of CPU profile
// out of every 60s.
type Options struct {
	// Window is how long each CPU profile window runs; 0 means the
	// default (10s). Clamped to Interval/2 so a window always fits.
	Window time.Duration
	// Interval is the cycle period: one CPU window plus one set of
	// snapshots per interval; 0 means the default (60s).
	Interval time.Duration
	// Store receives the decoded windows; required.
	Store *Store
	// Registry receives the profiler's gauges and counters; nil uses a
	// private registry.
	Registry *obs.Registry
	// Guard coordinates CPU-profiler ownership with the flight
	// recorder; nil uses a private guard (no contention to manage).
	Guard *obs.CPUProfileGuard
	// TopFunctions bounds the per-function share/delta gauges exported
	// per window; 0 means the default (20).
	TopFunctions int
	// MaxFunctions bounds the per-window function table; 0 means the
	// default (40).
	MaxFunctions int
	// MaxStacks bounds the folded stacks kept per window for the
	// flamegraph; 0 means the default (96).
	MaxStacks int
	// BaselineWindows is how many trailing CPU windows form the diff
	// baseline; 0 means the default (5).
	BaselineWindows int
	// Logger receives profiler lifecycle logs; nil discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.Interval <= 0 {
		o.Interval = time.Minute
	}
	if o.Window > o.Interval/2 {
		o.Window = o.Interval / 2
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Guard == nil {
		o.Guard = obs.NewCPUProfileGuard()
	}
	if o.TopFunctions <= 0 {
		o.TopFunctions = 20
	}
	if o.MaxFunctions <= 0 {
		o.MaxFunctions = 40
	}
	if o.MaxStacks <= 0 {
		o.MaxStacks = 96
	}
	if o.BaselineWindows <= 0 {
		o.BaselineWindows = 5
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
}

// HotFunc is one function's standing in the latest CPU window against
// the trailing baseline: the /dashboard/profile table row and the
// source of the share/delta gauges.
type HotFunc struct {
	Name string `json:"name"`
	// Share is the flat share of the latest window.
	Share float64 `json:"share"`
	// CumShare is the cumulative share of the latest window.
	CumShare float64 `json:"cum_share"`
	// Baseline is the mean flat share over the trailing baseline
	// windows (0 when there is no baseline yet).
	Baseline float64 `json:"baseline"`
	// Delta is Share − Baseline: positive means the function got
	// hotter.
	Delta float64 `json:"delta"`
}

// Profiler runs the always-on capture loop. All methods are safe for
// concurrent use.
type Profiler struct {
	opts  Options
	store *Store

	skipped  *obs.Counter
	maxDelta *obs.Gauge

	mu         sync.Mutex
	lastWindow time.Time
	lastCPU    time.Time
	hot        []HotFunc
	exported   map[string]bool // fn labels with live share/delta gauges

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New builds a Profiler over the given window store and registers its
// metrics. Call Start to begin the capture loop, or drive CaptureCycle
// directly (tests, one-shot tools).
func New(opts Options) (*Profiler, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("prof: Options.Store is required")
	}
	opts.applyDefaults()
	p := &Profiler{
		opts:     opts,
		store:    opts.Store,
		exported: map[string]bool{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	reg := opts.Registry
	p.skipped = reg.Counter("ion_prof_skipped_total",
		"Profile windows skipped because the CPU profiler was owned elsewhere.")
	p.maxDelta = reg.Gauge("ion_prof_max_share_delta",
		"Largest positive flat-share delta of any hot function in the latest CPU window vs the trailing baseline.")
	reg.GaugeFunc("ion_prof_window_store_windows",
		"Profile windows retained by the window store.",
		func() float64 { return float64(p.store.Len()) })
	reg.GaugeFunc("ion_prof_window_store_bytes",
		"Estimated bytes retained by the profile window store.",
		func() float64 { return float64(p.store.Bytes()) })
	reg.GaugeFunc("ion_prof_last_window_unix_seconds",
		"Completion time of the most recent profile window (unix seconds; 0 before the first).",
		func() float64 {
			if t := p.LastWindowTime(); !t.IsZero() {
				return float64(t.UnixMilli()) / 1000
			}
			return 0
		})

	// A restarted process resumes its diff state from the replayed
	// journal, so the first new window diffs against history instead of
	// an empty baseline.
	if w, ok := p.store.Latest(KindCPU); ok {
		p.refreshDiff(w)
		p.mu.Lock()
		p.lastWindow, p.lastCPU = w.End, w.End
		p.mu.Unlock()
	}
	return p, nil
}

// Store returns the underlying window store.
func (p *Profiler) Store() *Store { return p.store }

// Interval returns the configured cycle period.
func (p *Profiler) Interval() time.Duration { return p.opts.Interval }

// Window returns the configured CPU window length.
func (p *Profiler) Window() time.Duration { return p.opts.Window }

// LastWindowTime returns when the most recent window (any kind)
// completed; zero before the first.
func (p *Profiler) LastWindowTime() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastWindow
}

// HotFunctions returns the latest CPU window's top functions with
// their baseline shares and deltas, hottest first.
func (p *Profiler) HotFunctions() []HotFunc {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]HotFunc(nil), p.hot...)
}

// Start launches the capture loop: one cycle immediately, then one per
// interval. Stop it with Stop; Start twice is a no-op.
func (p *Profiler) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		p.CaptureCycle(time.Now())
		for {
			select {
			case <-p.stop:
				return
			case now := <-t.C:
				p.CaptureCycle(now)
			}
		}
	}()
	p.opts.Logger.Info("continuous profiler running",
		"window", p.opts.Window.String(), "interval", p.opts.Interval.String(),
		"retention", p.opts.Store.opts.Retention.String())
}

// Stop halts the capture loop, interrupting an in-flight CPU window.
// Safe without Start and safe twice.
func (p *Profiler) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started {
		<-p.done
	}
}

// CaptureCycle runs one full cycle stamped at now: a CPU profile
// window (yielding to incident captures via the shared guard) followed
// by heap/goroutine/block/mutex snapshots. Exported so tests and
// one-shot tools can drive time explicitly.
func (p *Profiler) CaptureCycle(now time.Time) {
	p.captureCPUWindow(now)
	for _, kind := range []string{KindHeap, KindGoroutine, KindBlock, KindMutex} {
		p.captureSnapshot(kind, time.Now())
	}
}

// captureCPUWindow profiles the CPU for up to the configured window.
// The guard acquisition is opportunistic: when an incident capture
// owns the CPU profiler this cycle is skipped (counted), and when one
// arrives mid-window the window ends early but still lands — a short
// window is evidence, a stacked profiler is an error.
func (p *Profiler) captureCPUWindow(now time.Time) {
	yield := make(chan struct{})
	var yieldOnce sync.Once
	release, ok := p.opts.Guard.TryAcquire("continuous-profiler",
		func() { yieldOnce.Do(func() { close(yield) }) })
	if !ok {
		p.skipped.Inc()
		p.opts.Logger.Debug("cpu window skipped, profiler owned elsewhere",
			"holder", p.opts.Guard.Holder())
		return
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		release()
		p.skipped.Inc()
		p.opts.Logger.Warn("cpu window failed to start", "err", err)
		return
	}
	t := time.NewTimer(p.opts.Window)
	select {
	case <-t.C:
	case <-yield:
		p.opts.Logger.Debug("cpu window yielded to a preempting capture")
	case <-p.stop:
	}
	t.Stop()
	pprof.StopCPUProfile()
	release()

	end := time.Now()
	w, err := p.windowFromProfile(KindCPU, buf.Bytes(), now, end)
	if err != nil {
		p.opts.Logger.Warn("cpu window decode failed", "err", err)
		return
	}
	if err := p.AddWindow(w); err != nil {
		p.opts.Logger.Warn("cpu window not stored", "err", err)
	}
}

// captureSnapshot grabs one runtime profile (heap, goroutine, block,
// mutex) as a point-in-time window. Block and mutex snapshots are
// dropped while empty.
func (p *Profiler) captureSnapshot(kind string, now time.Time) {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.opts.Logger.Warn("profile snapshot failed", "kind", kind, "err", err)
		return
	}
	w, err := p.windowFromProfile(kind, buf.Bytes(), now, now)
	if err != nil {
		p.opts.Logger.Warn("profile snapshot decode failed", "kind", kind, "err", err)
		return
	}
	if (kind == KindBlock || kind == KindMutex) && w.Total == 0 {
		return
	}
	if err := p.AddWindow(w); err != nil {
		p.opts.Logger.Warn("profile snapshot not stored", "kind", kind, "err", err)
	}
}

// windowFromProfile decodes raw pprof bytes into a bounded Window.
func (p *Profiler) windowFromProfile(kind string, data []byte, start, end time.Time) (Window, error) {
	profile, err := Parse(data)
	if err != nil {
		return Window{}, err
	}
	vi := profile.DefaultValueIndex()
	funcs, stacks, total := Aggregate(profile, vi)
	unit := ""
	if vi >= 0 && vi < len(profile.SampleTypes) {
		unit = profile.SampleTypes[vi].Unit
	}
	if len(funcs) > p.opts.MaxFunctions {
		funcs = funcs[:p.opts.MaxFunctions]
	}
	var kept int64
	if len(stacks) > p.opts.MaxStacks {
		stacks = stacks[:p.opts.MaxStacks]
	}
	for _, s := range stacks {
		kept += s.Value
	}
	return Window{
		ID:        fmt.Sprintf("w-%s-%d", kind, end.UnixMilli()),
		Kind:      kind,
		Start:     start.UTC(),
		End:       end.UTC(),
		Unit:      unit,
		Total:     total,
		Functions: funcs,
		Stacks:    stacks,
		KeptValue: kept,
	}, nil
}

// AddWindow journals one window and, for CPU windows, recomputes the
// hot-function diff and its gauges. Exported so tests (and replayed
// journals) can inject synthetic windows.
func (p *Profiler) AddWindow(w Window) error {
	if err := p.store.Add(w); err != nil {
		return err
	}
	p.opts.Registry.Counter("ion_prof_windows_total",
		"Profile windows captured, by kind.", obs.L("kind", w.Kind)).Inc()
	p.mu.Lock()
	if w.End.After(p.lastWindow) {
		p.lastWindow = w.End
	}
	if w.Kind == KindCPU && w.End.After(p.lastCPU) {
		p.lastCPU = w.End
	}
	p.mu.Unlock()
	if w.Kind == KindCPU {
		p.refreshDiff(w)
	}
	return nil
}

// refreshDiff recomputes the hot-function table for the given (latest)
// CPU window against the trailing baseline and re-exports the
// per-function share/delta gauges, zeroing functions that dropped out
// so stale series decay instead of lying.
func (p *Profiler) refreshDiff(latest Window) {
	// Baseline: the mean flat share per function over the trailing
	// windows (excluding the latest itself).
	trailing := p.store.Windows(KindCPU, p.opts.BaselineWindows+1)
	var baseline []Window
	for _, w := range trailing {
		if w.ID != latest.ID {
			baseline = append(baseline, w)
		}
	}
	base := map[string]float64{}
	if len(baseline) > 0 {
		for _, w := range baseline {
			for _, f := range w.Functions {
				base[f.Name] += f.FlatShare
			}
		}
		for fn := range base {
			base[fn] /= float64(len(baseline))
		}
	}

	hot := make([]HotFunc, 0, len(latest.Functions))
	maxDelta := 0.0
	for _, f := range latest.Functions {
		h := HotFunc{Name: f.Name, Share: f.FlatShare, CumShare: f.CumShare}
		if len(baseline) > 0 {
			h.Baseline = base[f.Name]
			h.Delta = h.Share - h.Baseline
		}
		if h.Delta > maxDelta {
			maxDelta = h.Delta
		}
		hot = append(hot, h)
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Share != hot[j].Share {
			return hot[i].Share > hot[j].Share
		}
		return hot[i].Name < hot[j].Name
	})

	top := hot
	if len(top) > p.opts.TopFunctions {
		top = top[:p.opts.TopFunctions]
	}
	reg := p.opts.Registry
	p.mu.Lock()
	live := map[string]bool{}
	for _, h := range top {
		live[h.Name] = true
		reg.Gauge("ion_prof_hot_function_share",
			"Flat CPU share of a hot function in the latest profile window.",
			obs.L("fn", h.Name)).Set(h.Share)
		reg.Gauge("ion_prof_hot_function_delta",
			"Flat-share delta of a hot function vs the trailing-baseline mean.",
			obs.L("fn", h.Name)).Set(h.Delta)
	}
	for fn := range p.exported {
		if !live[fn] {
			reg.Gauge("ion_prof_hot_function_share", "", obs.L("fn", fn)).Set(0)
			reg.Gauge("ion_prof_hot_function_delta", "", obs.L("fn", fn)).Set(0)
		}
	}
	p.exported = live
	p.hot = hot
	p.mu.Unlock()
	p.maxDelta.Set(maxDelta)
}
