package prof

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// flameNode is one frame in the merged call tree.
type flameNode struct {
	name     string
	value    int64 // total under this frame (self + children)
	children map[string]*flameNode
}

func (n *flameNode) child(name string) *flameNode {
	if n.children == nil {
		n.children = map[string]*flameNode{}
	}
	c, ok := n.children[name]
	if !ok {
		c = &flameNode{name: name}
		n.children[name] = c
	}
	return c
}

// buildFlameTree merges root-first folded stacks into a tree.
func buildFlameTree(stacks []Stack) *flameNode {
	root := &flameNode{name: "root"}
	for _, s := range stacks {
		root.value += s.Value
		n := root
		for _, frame := range s.Frames {
			n = n.child(frame)
			n.value += s.Value
		}
	}
	return root
}

// Flamegraph geometry.
const (
	flameWidth      = 1200.0
	flameRowHeight  = 17.0
	flameFontSize   = 11
	flameMinPx      = 1.5 // frames narrower than this are dropped
	flameTextMinPx  = 30.0
	flameCharPx     = 6.5
	flameMaxDepth   = 64
	flameHeaderRows = 2
)

// frameColor picks a stable warm color for a function name, shading
// runtime/stdlib frames cooler so application frames pop.
func frameColor(name string) string {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	if strings.HasPrefix(name, "runtime.") || strings.HasPrefix(name, "runtime/") {
		// Muted blue-grays for the runtime.
		return fmt.Sprintf("rgb(%d,%d,%d)", 150+int(v%30), 160+int((v>>8)%30), 185+int((v>>16)%40))
	}
	// Flame palette: red-orange-yellow.
	return fmt.Sprintf("rgb(%d,%d,%d)", 205+int(v%50), 80+int((v>>8)%110), int((v>>16)%30))
}

// FlamegraphSVG renders a window's folded stacks as a self-contained
// SVG flamegraph: zero JavaScript, hover titles on every frame, widths
// proportional to sample value. The caller owns the Content-Type.
func FlamegraphSVG(w Window) []byte {
	root := buildFlameTree(w.Stacks)
	var b strings.Builder

	// First pass: depth, to size the image.
	depth := flameDepth(root, 0)
	if depth > flameMaxDepth {
		depth = flameMaxDepth
	}
	height := float64(depth+flameHeaderRows) * flameRowHeight
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.0f %.0f" width="%.0f" height="%.0f" font-family="ui-monospace, SFMono-Regular, Menlo, monospace" font-size="%d">`,
		flameWidth, height, flameWidth, height, flameFontSize)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="#fafafa"/>`)
	title := fmt.Sprintf("%s %s — %s of %s sampled", w.Kind, w.ID, formatSampleValue(root.value, w.Unit), formatSampleValue(w.Total, w.Unit))
	fmt.Fprintf(&b, `<text x="6" y="%.0f" fill="#333">%s</text>`, flameRowHeight-4, escapeXML(title))

	if root.value > 0 {
		renderFlameNode(&b, root, 0, flameWidth, 0, root.value, w.Unit)
	} else {
		fmt.Fprintf(&b, `<text x="6" y="%.0f" fill="#999">no samples in this window</text>`, 2*flameRowHeight)
	}
	b.WriteString(`</svg>`)
	return []byte(b.String())
}

func flameDepth(n *flameNode, d int) int {
	max := d
	for _, c := range n.children {
		if cd := flameDepth(c, d+1); cd > max {
			max = cd
		}
	}
	return max
}

// renderFlameNode emits one frame rect and recurses into children,
// laying them out left-to-right by descending value for a stable,
// readable image.
func renderFlameNode(b *strings.Builder, n *flameNode, x, width float64, depth int, total int64, unit string) {
	if depth > flameMaxDepth {
		return
	}
	if depth > 0 { // the synthetic root has no rect
		y := float64(depth-1+flameHeaderRows) * flameRowHeight
		share := 100 * float64(n.value) / float64(total)
		fmt.Fprintf(b, `<g><title>%s — %s (%.1f%%)</title><rect x="%.1f" y="%.1f" width="%.1f" height="%.0f" fill="%s" stroke="#fafafa" stroke-width="0.5" rx="1"/>`,
			escapeXML(n.name), formatSampleValue(n.value, unit), share,
			x, y, width, flameRowHeight-1, frameColor(n.name))
		if width >= flameTextMinPx {
			label := n.name
			if maxChars := int(width / flameCharPx); len(label) > maxChars {
				if maxChars > 2 {
					label = label[:maxChars-2] + ".."
				} else {
					label = ""
				}
			}
			if label != "" {
				fmt.Fprintf(b, `<text x="%.1f" y="%.1f" fill="#1a1a1a">%s</text>`,
					x+3, y+flameRowHeight-5, escapeXML(label))
			}
		}
		b.WriteString(`</g>`)
	}

	kids := make([]*flameNode, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].value != kids[j].value {
			return kids[i].value > kids[j].value
		}
		return kids[i].name < kids[j].name
	})
	cx := x
	for _, c := range kids {
		cw := width * float64(c.value) / float64(n.value)
		if cw < flameMinPx {
			continue
		}
		renderFlameNode(b, c, cx, cw, depth+1, total, unit)
		cx += cw
	}
}

// formatSampleValue renders a sample total in its unit.
func formatSampleValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", float64(v)/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.1fms", float64(v)/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fµs", float64(v)/1e3)
		}
		return fmt.Sprintf("%dns", v)
	case "bytes":
		switch {
		case v >= 1<<30:
			return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	default:
		return fmt.Sprint(v)
	}
}

// escapeXML escapes the five XML special characters for SVG text and
// title content.
func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
