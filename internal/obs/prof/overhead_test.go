package prof

import (
	"hash/fnv"
	"io"
	"runtime/pprof"
	"testing"
)

// benchWorkload is a stand-in for the service's hot path: hashing over
// a trace-sized buffer plus small allocations, the mix the profiler
// samples in production.
func benchWorkload(buf []byte) uint64 {
	h := fnv.New64a()
	h.Write(buf)
	m := make(map[uint64]int, 8)
	v := h.Sum64()
	for i := 0; i < 32; i++ {
		v ^= v << 13
		v ^= v >> 7
		v ^= v << 17
		m[v%8]++
	}
	return v + uint64(m[0])
}

// BenchmarkWorkloadBare is the baseline: the workload with no profiler.
func BenchmarkWorkloadBare(b *testing.B) {
	buf := make([]byte, 16<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += benchWorkload(buf)
	}
	_ = sink
}

// BenchmarkWorkloadProfiled runs the same workload with the CPU
// profiler actively sampling the whole time — the worst case, not the
// duty-cycled steady state. With the default 10s-of-60s window the
// steady-state cost is this measured overhead times 1/6; BENCH_7.json
// records both numbers against the <3% budget.
func BenchmarkWorkloadProfiled(b *testing.B) {
	if err := pprof.StartCPUProfile(io.Discard); err != nil {
		b.Skipf("cpu profiler unavailable: %v", err)
	}
	defer pprof.StopCPUProfile()
	buf := make([]byte, 16<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += benchWorkload(buf)
	}
	_ = sink
}

// BenchmarkParseCPUProfile measures the decode cost of a realistic
// profile — the per-cycle bookkeeping the profiler adds off the hot
// path.
func BenchmarkParseCPUProfile(b *testing.B) {
	data := goldenProfile(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlamegraphSVG(b *testing.B) {
	w := flameTestWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := FlamegraphSVG(w); len(out) == 0 {
			b.Fatal("empty SVG")
		}
	}
}
