package prof

import (
	"bytes"
	"compress/gzip"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- tiny protobuf writer for golden profiles ------------------------

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, num, wire int) []byte {
	return appendVarint(b, uint64(num)<<3|uint64(wire))
}

func appendVarintField(b []byte, num int, v uint64) []byte {
	b = appendTag(b, num, wireVarint)
	return appendVarint(b, v)
}

func appendBytesField(b []byte, num int, payload []byte) []byte {
	b = appendTag(b, num, wireBytes)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendPackedField(b []byte, num int, vals []uint64) []byte {
	var p []byte
	for _, v := range vals {
		p = appendVarint(p, v)
	}
	return appendBytesField(b, num, p)
}

// goldenProfile hand-encodes a two-dimension CPU profile:
//
//	strings: 0:"" 1:samples 2:count 3:cpu 4:nanoseconds
//	         5:main.leaf 6:main.mid 7:main.root 8:main.inline
//	stacks (leaf first): [leaf mid root]=10/1000, [mid root]=5/500, [root]=1/100
//
// With packed=false the repeated sample fields use the unpacked
// encoding, exercising both branches of packedUints.
func goldenProfile(packed bool) []byte {
	var out []byte
	valueType := func(typ, unit uint64) []byte {
		var vt []byte
		vt = appendVarintField(vt, 1, typ)
		vt = appendVarintField(vt, 2, unit)
		return vt
	}
	out = appendBytesField(out, 1, valueType(1, 2)) // samples/count
	out = appendBytesField(out, 1, valueType(3, 4)) // cpu/nanoseconds

	sample := func(locs, vals []uint64) []byte {
		var s []byte
		if packed {
			s = appendPackedField(s, 1, locs)
			s = appendPackedField(s, 2, vals)
		} else {
			for _, l := range locs {
				s = appendVarintField(s, 1, l)
			}
			for _, v := range vals {
				s = appendVarintField(s, 2, v)
			}
		}
		return s
	}
	out = appendBytesField(out, 2, sample([]uint64{1, 2, 3}, []uint64{10, 1000}))
	out = appendBytesField(out, 2, sample([]uint64{2, 3}, []uint64{5, 500}))
	out = appendBytesField(out, 2, sample([]uint64{3}, []uint64{1, 100}))

	location := func(id uint64, funcIDs ...uint64) []byte {
		var l []byte
		l = appendVarintField(l, 1, id)
		for _, fid := range funcIDs {
			var line []byte
			line = appendVarintField(line, 1, fid)
			l = appendBytesField(l, 4, line)
		}
		return l
	}
	out = appendBytesField(out, 4, location(1, 1))
	out = appendBytesField(out, 4, location(2, 2))
	out = appendBytesField(out, 4, location(3, 3))

	function := func(id, name uint64) []byte {
		var f []byte
		f = appendVarintField(f, 1, id)
		f = appendVarintField(f, 2, name)
		return f
	}
	out = appendBytesField(out, 5, function(1, 5))
	out = appendBytesField(out, 5, function(2, 6))
	out = appendBytesField(out, 5, function(3, 7))

	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds",
		"main.leaf", "main.mid", "main.root", "main.inline"} {
		out = appendBytesField(out, 6, []byte(s))
	}
	out = appendVarintField(out, 9, 1700000000000000000) // time_nanos
	out = appendVarintField(out, 10, 10_000_000_000)     // duration_nanos
	out = appendBytesField(out, 11, valueType(3, 4))     // period_type
	out = appendVarintField(out, 12, 10_000_000)         // period
	return out
}

func TestParseGoldenProfile(t *testing.T) {
	for _, tc := range []struct {
		name   string
		packed bool
	}{{"packed", true}, {"unpacked", false}} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Parse(goldenProfile(tc.packed))
			if err != nil {
				t.Fatal(err)
			}
			if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
				t.Fatalf("sample types = %+v", p.SampleTypes)
			}
			if got := p.DefaultValueIndex(); got != 1 {
				t.Fatalf("DefaultValueIndex = %d, want 1 (cpu)", got)
			}
			if len(p.Samples) != 3 {
				t.Fatalf("samples = %d, want 3", len(p.Samples))
			}
			want := []string{"main.leaf", "main.mid", "main.root"}
			if got := p.Samples[0].Stack; strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("stack = %v, want %v", got, want)
			}
			if p.Period != 10_000_000 || p.DurationNanos != 10_000_000_000 {
				t.Fatalf("period = %d, duration = %d", p.Period, p.DurationNanos)
			}

			funcs, stacks, total := Aggregate(p, 1)
			if total != 1600 {
				t.Fatalf("total = %d, want 1600", total)
			}
			byName := map[string]FuncStat{}
			for _, f := range funcs {
				byName[f.Name] = f
			}
			for _, exp := range []struct {
				name      string
				flat, cum int64
			}{
				{"main.leaf", 1000, 1000},
				{"main.mid", 500, 1500},
				{"main.root", 100, 1600},
			} {
				f := byName[exp.name]
				if f.Flat != exp.flat || f.Cum != exp.cum {
					t.Errorf("%s: flat=%d cum=%d, want flat=%d cum=%d",
						exp.name, f.Flat, f.Cum, exp.flat, exp.cum)
				}
			}
			if funcs[0].Name != "main.leaf" {
				t.Errorf("hottest flat = %s, want main.leaf", funcs[0].Name)
			}
			if w := byName["main.root"]; w.CumShare != 1.0 {
				t.Errorf("root cum share = %v, want 1", w.CumShare)
			}
			// Stacks come back root first, heaviest first.
			if len(stacks) != 3 {
				t.Fatalf("stacks = %d, want 3", len(stacks))
			}
			if got := strings.Join(stacks[0].Frames, ","); got != "main.root,main.mid,main.leaf" {
				t.Fatalf("top stack = %q (root first expected)", got)
			}
			if stacks[0].Value != 1000 {
				t.Fatalf("top stack value = %d, want 1000", stacks[0].Value)
			}
		})
	}
}

func TestParseGzipped(t *testing.T) {
	raw := goldenProfile(true)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw)
	zw.Close()
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Samples))
	}
}

func TestParseInlineFrames(t *testing.T) {
	// One location with two Line entries: the innermost inline frame
	// first, so the leaf attribution must go to main.inline.
	var out []byte
	vt := appendVarintField(appendVarintField(nil, 1, 3), 2, 4)
	out = appendBytesField(out, 1, vt)
	var s []byte
	s = appendPackedField(s, 1, []uint64{1})
	s = appendPackedField(s, 2, []uint64{7})
	out = appendBytesField(out, 2, s)
	var loc []byte
	loc = appendVarintField(loc, 1, 1)
	loc = appendBytesField(loc, 4, appendVarintField(nil, 1, 1)) // inline (innermost)
	loc = appendBytesField(loc, 4, appendVarintField(nil, 1, 2)) // caller
	out = appendBytesField(out, 4, loc)
	out = appendBytesField(out, 5, appendVarintField(appendVarintField(nil, 1, 1), 2, 5))
	out = appendBytesField(out, 5, appendVarintField(appendVarintField(nil, 1, 2), 2, 6))
	for _, str := range []string{"", "ignored", "ignored2", "cpu", "nanoseconds",
		"main.inline", "main.caller"} {
		out = appendBytesField(out, 6, []byte(str))
	}

	p, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(p.Samples))
	}
	want := []string{"main.inline", "main.caller"}
	if got := p.Samples[0].Stack; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("stack = %v, want %v (inline expanded innermost first)", got, want)
	}
	funcs, _, _ := Aggregate(p, 0)
	if funcs[0].Name != "main.inline" || funcs[0].Flat != 7 {
		t.Fatalf("flat leaf = %+v, want main.inline flat=7", funcs[0])
	}
}

// TestParseTruncated feeds every prefix of a golden profile (and of its
// gzipped form) to Parse: a torn journal tail or half-written capture
// must error or partially decode, never panic.
func TestParseTruncated(t *testing.T) {
	raw := goldenProfile(true)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw)
	zw.Close()
	for _, data := range [][]byte{raw, buf.Bytes()} {
		for i := 0; i <= len(data); i++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at prefix %d: %v", i, r)
					}
				}()
				Parse(data[:i])
			}()
		}
	}
}

func TestParseGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not a profile at all, just text"),
		{0x1f, 0x8b, 0xff, 0xff},       // gzip magic, bogus header
		bytes.Repeat([]byte{0xff}, 64), // endless varint continuation
	} {
		if _, err := Parse(data); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", data)
		}
	}
}

// cpuBurner spins so a real CPU profile has a named hot function.
//
//go:noinline
func cpuBurner(stop *atomic.Bool, sink *atomic.Uint64) {
	var acc uint64 = 0x9e3779b97f4a7c15
	for !stop.Load() {
		for i := 0; i < 1<<14; i++ {
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
		}
		sink.Add(acc)
	}
}

// TestParseRealCPUProfile runs the runtime profiler for real and checks
// that the hand-rolled decoder finds the burner on top of the profile.
func TestParseRealCPUProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("real profiling in -short mode")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profiler unavailable: %v", err)
	}
	var stop atomic.Bool
	var sink atomic.Uint64
	done := make(chan struct{})
	go func() { defer close(done); cpuBurner(&stop, &sink) }()
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	<-done
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding runtime cpu profile: %v", err)
	}
	vi := p.DefaultValueIndex()
	if p.SampleTypes[vi].Type != "cpu" {
		t.Fatalf("default value type = %q, want cpu", p.SampleTypes[vi].Type)
	}
	funcs, stacks, total := Aggregate(p, vi)
	if total <= 0 || len(funcs) == 0 {
		t.Fatalf("no samples decoded (total=%d funcs=%d)", total, len(funcs))
	}
	found := false
	for _, f := range funcs {
		if strings.Contains(f.Name, "cpuBurner") {
			found = true
			if f.FlatShare < 0.10 {
				t.Errorf("cpuBurner flat share = %.3f, expected the burner to dominate", f.FlatShare)
			}
		}
	}
	if !found {
		t.Fatalf("cpuBurner not in decoded function table: %+v", funcs[:min(len(funcs), 8)])
	}
	if len(stacks) == 0 {
		t.Fatal("no folded stacks decoded")
	}
}

// TestParseRealHeapProfile decodes a live heap profile and checks the
// conventional inuse_space dimension is found.
func TestParseRealHeapProfile(t *testing.T) {
	ballast := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		ballast = append(ballast, make([]byte, 128<<10))
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding runtime heap profile: %v", err)
	}
	vi := p.DefaultValueIndex()
	if p.SampleTypes[vi].Type != "inuse_space" {
		t.Fatalf("default value type = %q, want inuse_space (types %+v)",
			p.SampleTypes[vi].Type, p.SampleTypes)
	}
	if p.SampleTypes[vi].Unit != "bytes" {
		t.Fatalf("unit = %q, want bytes", p.SampleTypes[vi].Unit)
	}
	funcs, _, total := Aggregate(p, vi)
	if total <= 0 || len(funcs) == 0 {
		t.Fatalf("no heap samples decoded (total=%d)", total)
	}
	runtime.KeepAlive(ballast)
}

// TestParseRealGoroutineProfile decodes the goroutine profile.
func TestParseRealGoroutineProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding goroutine profile: %v", err)
	}
	_, _, total := Aggregate(p, p.DefaultValueIndex())
	if total < 1 {
		t.Fatalf("goroutine profile total = %d, want ≥1", total)
	}
}
