package obs

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"testing"
	"time"
)

// TestCPUGuardTryAcquire covers the opportunistic path: a free guard
// hands out the token, a held guard refuses without blocking, and
// release (even called twice) frees it again.
func TestCPUGuardTryAcquire(t *testing.T) {
	g := NewCPUProfileGuard()
	release, ok := g.TryAcquire("a", nil)
	if !ok {
		t.Fatal("TryAcquire on a free guard failed")
	}
	if got := g.Holder(); got != "a" {
		t.Fatalf("Holder = %q, want a", got)
	}
	if _, ok := g.TryAcquire("b", nil); ok {
		t.Fatal("TryAcquire succeeded while held")
	}
	release()
	release() // idempotent
	if got := g.Holder(); got != "" {
		t.Fatalf("Holder after release = %q, want empty", got)
	}
	release2, ok := g.TryAcquire("b", nil)
	if !ok {
		t.Fatal("TryAcquire after release failed")
	}
	release2()
}

// TestCPUGuardPreemption is the ownership-coordination contract: a
// yieldable holder (the continuous profiler) is asked to stop early
// when a preemptive Acquire (an incident capture) arrives, the
// preemptor gets the guard without error, and afterwards the yielded
// side can re-acquire — neither side errors or wedges.
func TestCPUGuardPreemption(t *testing.T) {
	g := NewCPUProfileGuard()

	yielded := make(chan struct{})
	release, ok := g.TryAcquire("continuous-profiler", func() { close(yielded) })
	if !ok {
		t.Fatal("profiler could not acquire a free guard")
	}
	// The holder releases when (and only when) asked to yield.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-yielded
		release()
	}()

	capRelease, err := g.Acquire("incident-capture", 5*time.Second)
	if err != nil {
		t.Fatalf("preemptive Acquire failed: %v", err)
	}
	wg.Wait()
	if got := g.Holder(); got != "incident-capture" {
		t.Fatalf("Holder = %q, want incident-capture", got)
	}

	// While a non-preemptible capture holds the guard, another capture
	// times out with an error naming the holder instead of wedging.
	if _, err := g.Acquire("second-capture", 30*time.Millisecond); err == nil {
		t.Fatal("second Acquire against a non-preemptible holder did not fail")
	}

	capRelease()
	// The yielded profiler resumes: the guard is free again.
	r, ok := g.TryAcquire("continuous-profiler", nil)
	if !ok {
		t.Fatal("profiler could not re-acquire after the capture released")
	}
	r()
}

// TestCPUGuardSerializesRuntimeProfiler drives the real runtime
// profiler through the guard from two goroutines: with the guard in
// the way, StartCPUProfile never observes the "already in use" error.
func TestCPUGuardSerializesRuntimeProfiler(t *testing.T) {
	g := NewCPUProfileGuard()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire("worker", 10*time.Second)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			defer release()
			var buf bytes.Buffer
			if err := pprof.StartCPUProfile(&buf); err != nil {
				t.Errorf("StartCPUProfile under guard: %v", err)
				return
			}
			time.Sleep(10 * time.Millisecond)
			pprof.StopCPUProfile()
		}()
	}
	wg.Wait()
}
