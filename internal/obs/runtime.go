package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeSampler reads the runtime/metrics samples the process-health
// gauges export, refreshing at most once per second so a burst of
// exposition or scrape requests costs one metrics.Read, not many.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample

	heapBytes float64
	gcCycles  float64
	gcPause   float64
	gorout    float64
	maxprocs  float64
}

const (
	rmHeapBytes = "/memory/classes/heap/objects:bytes"
	rmGCCycles  = "/gc/cycles/total:gc-cycles"
	rmGCPauses  = "/gc/pauses:seconds"
	rmGorout    = "/sched/goroutines:goroutines"
	rmMaxprocs  = "/sched/gomaxprocs:threads"
)

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{samples: []metrics.Sample{
		{Name: rmHeapBytes}, {Name: rmGCCycles}, {Name: rmGCPauses},
		{Name: rmGorout}, {Name: rmMaxprocs},
	}}
	return s
}

// refresh re-reads the runtime metrics if the cached values are older
// than a second, then returns the sampler locked values via get.
func (s *runtimeSampler) get(f func(*runtimeSampler) float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= time.Second || s.last.IsZero() {
		s.last = now
		metrics.Read(s.samples)
		for _, sm := range s.samples {
			switch sm.Name {
			case rmHeapBytes:
				s.heapBytes = uint64Value(sm)
			case rmGCCycles:
				s.gcCycles = uint64Value(sm)
			case rmGCPauses:
				s.gcPause = histTotal(sm)
			case rmGorout:
				s.gorout = uint64Value(sm)
			case rmMaxprocs:
				s.maxprocs = uint64Value(sm)
			}
		}
	}
	return f(s)
}

func uint64Value(sm metrics.Sample) float64 {
	switch sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	}
	return 0
}

// histTotal estimates the cumulative total of a runtime Float64Histogram
// (e.g. total GC pause seconds) by summing count × bucket midpoint,
// clamping the open-ended edge buckets to their finite bound.
func histTotal(sm metrics.Sample) float64 {
	if sm.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := sm.Value.Float64Histogram()
	if h == nil {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		switch {
		case lo < 0 || lo != lo: // -Inf or NaN edge
			mid = hi
		case hi > 1e18: // +Inf edge
			mid = lo
		}
		total += float64(count) * mid
	}
	return total
}

// RegisterRuntimeMetrics installs Go process-health collectors into the
// registry so runtime state lands in the same exposition and scrape
// stream as application metrics:
//
//	ion_go_goroutines             gauge    live goroutines
//	ion_go_gomaxprocs             gauge    scheduler parallelism
//	ion_go_heap_bytes             gauge    live heap object bytes
//	ion_go_gc_cycles_total        counter  completed GC cycles
//	ion_go_gc_pause_seconds_total counter  estimated total stop-the-world pause
//
// Values come from runtime/metrics, sampled at most once per second.
// Call it once per registry; registering twice panics like any other
// duplicate callback family.
func RegisterRuntimeMetrics(reg *Registry) {
	s := newRuntimeSampler()
	reg.GaugeFunc("ion_go_goroutines", "Live goroutines in the process.",
		func() float64 { return s.get(func(s *runtimeSampler) float64 { return s.gorout }) })
	reg.GaugeFunc("ion_go_gomaxprocs", "GOMAXPROCS scheduler parallelism.",
		func() float64 { return s.get(func(s *runtimeSampler) float64 { return s.maxprocs }) })
	reg.GaugeFunc("ion_go_heap_bytes", "Bytes of live heap objects.",
		func() float64 { return s.get(func(s *runtimeSampler) float64 { return s.heapBytes }) })
	reg.CounterFunc("ion_go_gc_cycles_total", "Completed garbage-collection cycles.",
		func() float64 { return s.get(func(s *runtimeSampler) float64 { return s.gcCycles }) })
	reg.CounterFunc("ion_go_gc_pause_seconds_total", "Estimated cumulative stop-the-world GC pause time.",
		func() float64 { return s.get(func(s *runtimeSampler) float64 { return s.gcPause }) })
	// Touch the runtime counters once so the first exposition after
	// registration is already populated.
	runtime.Gosched()
	s.get(func(s *runtimeSampler) float64 { return 0 })
}
