package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden locks the Prometheus text rendering: family and
// series ordering, counter/gauge/histogram layouts, callback families,
// and label-value escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ion_requests_total", "Requests served.", L("route", "/api/jobs"), L("code", "200"))
	c.Inc()
	c.Add(2)
	// Same family, second series; getter must return the same instrument
	// for an identical label set.
	r.Counter("ion_requests_total", "Requests served.", L("route", "/metrics"), L("code", "200")).Inc()
	if got := r.Counter("ion_requests_total", "Requests served.", L("code", "200"), L("route", "/api/jobs")); got != c {
		t.Error("counter getter did not return the existing series for reordered labels")
	}

	g := r.Gauge("ion_queue_depth", "Queued jobs.")
	g.Set(5)
	g.Dec()

	h := r.Histogram("ion_stage_seconds", "Stage latency.", []float64{0.1, 1, 10}, L("stage", "extract"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	r.GaugeFunc("ion_busy_workers", "Busy workers.", func() float64 { return 3 })
	r.Counter("ion_escapes_total", `Tricky "help" text`+"\nsecond line",
		L("path", `C:\tmp`+"\n"), L("quote", `say "hi"`)).Inc()

	const want = `# HELP ion_busy_workers Busy workers.
# TYPE ion_busy_workers gauge
ion_busy_workers 3
# HELP ion_escapes_total Tricky "help" text\nsecond line
# TYPE ion_escapes_total counter
ion_escapes_total{path="C:\\tmp\n",quote="say \"hi\""} 1
# HELP ion_queue_depth Queued jobs.
# TYPE ion_queue_depth gauge
ion_queue_depth 4
# HELP ion_requests_total Requests served.
# TYPE ion_requests_total counter
ion_requests_total{code="200",route="/api/jobs"} 3
ion_requests_total{code="200",route="/metrics"} 1
# HELP ion_stage_seconds Stage latency.
# TYPE ion_stage_seconds histogram
ion_stage_seconds_bucket{stage="extract",le="0.1"} 1
ion_stage_seconds_bucket{stage="extract",le="1"} 3
ion_stage_seconds_bucket{stage="extract",le="10"} 3
ion_stage_seconds_bucket{stage="extract",le="+Inf"} 4
ion_stage_seconds_sum{stage="extract"} 100.05
ion_stage_seconds_count{stage="extract"} 4
`
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestExpositionOrderingDeterministic registers series in deliberately
// unsorted order and checks the rendered family stays sorted and byte-
// identical across renders — the property scrapers and golden tests
// rely on.
func TestExpositionOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, route := range []string{"zzz", "aaa", "mmm", "bbb"} {
		r.Counter("ion_order_total", "Ordering.", L("route", route)).Inc()
	}
	var first strings.Builder
	if _, err := r.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	want := `ion_order_total{route="aaa"} 1
ion_order_total{route="bbb"} 1
ion_order_total{route="mmm"} 1
ion_order_total{route="zzz"} 1
`
	if !strings.HasSuffix(first.String(), want) {
		t.Errorf("series not in lexicographic order:\n%s", first.String())
	}
	for i := 0; i < 5; i++ {
		var again strings.Builder
		r.WriteTo(&again)
		if again.String() != first.String() {
			t.Fatalf("render %d differs from first render", i)
		}
	}
}

// TestGatherSnapshot locks the Gather flattening: deterministic order,
// kinds, histogram-derived samples, label escaping round-trip, and
// callback families.
func TestGatherSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("ion_b_total", "b", L("path", `C:\tmp`+"\n"), L("quote", `say "hi"`)).Add(3)
	r.Gauge("ion_a_depth", "a").Set(7)
	h := r.Histogram("ion_c_seconds", "c", []float64{1, 2, 4}, L("stage", "analyze"))
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	r.GaugeFunc("ion_d_busy", "d", func() float64 { return 2 })

	samples := r.Gather()
	var keys []string
	for _, s := range samples {
		keys = append(keys, s.SeriesKey()+" "+s.Kind)
	}
	want := []string{
		`ion_a_depth gauge`,
		`ion_b_total{path="C:\\tmp\n",quote="say \"hi\""} counter`,
		`ion_c_seconds_count{stage="analyze"} counter`,
		`ion_c_seconds_sum{stage="analyze"} counter`,
		`ion_c_seconds{quantile="0.5",stage="analyze"} gauge`,
		`ion_c_seconds{quantile="0.95",stage="analyze"} gauge`,
		`ion_c_seconds{quantile="0.99",stage="analyze"} gauge`,
		`ion_d_busy gauge`,
	}
	if len(keys) != len(want) {
		t.Fatalf("gathered %d samples %v, want %d", len(keys), keys, len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("sample %d = %q, want %q", i, keys[i], want[i])
		}
	}

	// Escaped label values decode back to the original strings.
	var escaped Sample
	for _, s := range samples {
		if s.Name == "ion_b_total" {
			escaped = s
		}
	}
	if len(escaped.Labels) != 2 || escaped.Labels[0].Value != "C:\\tmp\n" || escaped.Labels[1].Value != `say "hi"` {
		t.Errorf("escaping round-trip failed: %+v", escaped.Labels)
	}

	// Values: counter raw, histogram count/sum, quantile within bounds.
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.SeriesKey()] = s.Value
	}
	if byKey[`ion_c_seconds_count{stage="analyze"}`] != 3 {
		t.Errorf("_count = %v, want 3", byKey[`ion_c_seconds_count{stage="analyze"}`])
	}
	if byKey[`ion_c_seconds_sum{stage="analyze"}`] != 5 {
		t.Errorf("_sum = %v, want 5", byKey[`ion_c_seconds_sum{stage="analyze"}`])
	}
	if p95 := byKey[`ion_c_seconds{quantile="0.95",stage="analyze"}`]; p95 <= 0 || p95 > 4 {
		t.Errorf("p95 = %v, want in (0,4]", p95)
	}
}

func TestParseLabelKeyMalformed(t *testing.T) {
	// Unterminated values must not loop or panic; best-effort decode.
	for _, in := range []string{`{a="b}`, `{a=}`, `{}`, `{a="b",}`} {
		_ = parseLabelKey(in)
	}
	got := parseLabelKey(`{a="1",b="2"}`)
	if len(got) != 2 || got[0] != L("a", "1") || got[1] != L("b", "2") {
		t.Errorf("parseLabelKey = %v", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ion_llm_requests_total", "LLM calls.", L("backend", "expertsim")).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `ion_llm_requests_total{backend="expertsim"} 1`) {
		t.Errorf("handler body missing counter:\n%s", rec.Body.String())
	}
}

func TestRedeclaredTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ion_x", "x")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("ion_x", "x")
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 7, 7, 7} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got < 2 || got > 4 {
		t.Errorf("p50 = %v, want within (2,4]", got)
	}
	if got := h.Quantile(0.99); got < 4 || got > 8 {
		t.Errorf("p99 = %v, want within (4,8]", got)
	}
	var empty Histogram
	if got := (&empty).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
