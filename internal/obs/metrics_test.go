package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden locks the Prometheus text rendering: family and
// series ordering, counter/gauge/histogram layouts, callback families,
// and label-value escaping.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ion_requests_total", "Requests served.", L("route", "/api/jobs"), L("code", "200"))
	c.Inc()
	c.Add(2)
	// Same family, second series; getter must return the same instrument
	// for an identical label set.
	r.Counter("ion_requests_total", "Requests served.", L("route", "/metrics"), L("code", "200")).Inc()
	if got := r.Counter("ion_requests_total", "Requests served.", L("code", "200"), L("route", "/api/jobs")); got != c {
		t.Error("counter getter did not return the existing series for reordered labels")
	}

	g := r.Gauge("ion_queue_depth", "Queued jobs.")
	g.Set(5)
	g.Dec()

	h := r.Histogram("ion_stage_seconds", "Stage latency.", []float64{0.1, 1, 10}, L("stage", "extract"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	r.GaugeFunc("ion_busy_workers", "Busy workers.", func() float64 { return 3 })
	r.Counter("ion_escapes_total", `Tricky "help" text`+"\nsecond line",
		L("path", `C:\tmp`+"\n"), L("quote", `say "hi"`)).Inc()

	const want = `# HELP ion_busy_workers Busy workers.
# TYPE ion_busy_workers gauge
ion_busy_workers 3
# HELP ion_escapes_total Tricky "help" text\nsecond line
# TYPE ion_escapes_total counter
ion_escapes_total{path="C:\\tmp\n",quote="say \"hi\""} 1
# HELP ion_queue_depth Queued jobs.
# TYPE ion_queue_depth gauge
ion_queue_depth 4
# HELP ion_requests_total Requests served.
# TYPE ion_requests_total counter
ion_requests_total{code="200",route="/api/jobs"} 3
ion_requests_total{code="200",route="/metrics"} 1
# HELP ion_stage_seconds Stage latency.
# TYPE ion_stage_seconds histogram
ion_stage_seconds_bucket{stage="extract",le="0.1"} 1
ion_stage_seconds_bucket{stage="extract",le="1"} 3
ion_stage_seconds_bucket{stage="extract",le="10"} 3
ion_stage_seconds_bucket{stage="extract",le="+Inf"} 4
ion_stage_seconds_sum{stage="extract"} 100.05
ion_stage_seconds_count{stage="extract"} 4
`
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ion_llm_requests_total", "LLM calls.", L("backend", "expertsim")).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `ion_llm_requests_total{backend="expertsim"} 1`) {
		t.Errorf("handler body missing counter:\n%s", rec.Body.String())
	}
}

func TestRedeclaredTypePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ion_x", "x")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring a counter as a gauge did not panic")
		}
	}()
	r.Gauge("ion_x", "x")
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 7, 7, 7} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got < 2 || got > 4 {
		t.Errorf("p50 = %v, want within (2,4]", got)
	}
	if got := h.Quantile(0.99); got < 4 || got > 8 {
		t.Errorf("p99 = %v, want within (4,8]", got)
	}
	var empty Histogram
	if got := (&empty).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
