// Package obs is the zero-dependency telemetry layer of the ION
// reproduction: a concurrency-safe metrics registry with Prometheus
// text-format exposition, lightweight context-propagated tracing that
// renders per-report span timelines, and log/slog helpers for
// structured, leveled logging. Every layer of the pipeline — darshan
// parse, extractor CSV emit, per-issue diagnosis, LLM completions, the
// summarizer, and the jobs worker pool — is instrumented through this
// package, so a slow or failing diagnosis can be explained the same way
// ION explains a slow application: by looking at where the time went.
//
// The package is stdlib-only by design; nothing in it may import
// outside the standard library.
package obs

// Label is one metric label or span attribute: a key/value pair.
// Metric label values are escaped at exposition time, so any string is
// safe.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }
