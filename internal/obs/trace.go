package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	loggerKey
)

// Tracer collects spans for one pipeline run. It is safe for
// concurrent use: the parallel analyzer starts sibling spans from many
// goroutines. A Tracer travels in a context.Context (WithTracer), and
// instrumented code starts spans through StartSpan, which is a cheap
// no-op when no tracer is installed — so library code is always
// instrumented and the caller decides per run whether to trace.
type Tracer struct {
	mu     sync.Mutex
	spans  []*Span
	nextID int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// WithTracer installs the tracer into the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// StartSpan begins a span named name under the context's current span
// and returns a derived context carrying the new span as parent for
// its children. Without a tracer in ctx it returns ctx and a no-op
// span, so call sites never nil-check. The caller must End the span.
func StartSpan(ctx context.Context, name string, attrs ...Label) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, &Span{}
	}
	parent := 0
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		parent = p.id
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name, start: time.Now(), attrs: attrs}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey, s), s
}

// Span is one timed operation. The zero Span is a valid no-op.
type Span struct {
	t          *Tracer
	id, parent int
	name       string
	start, end time.Time
	attrs      []Label
	errMsg     string
}

// End marks the span finished. Calling End twice keeps the first time.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// SetError records a failure on the span; nil is ignored.
func (s *Span) SetError(err error) {
	if s.t == nil || err == nil {
		return
	}
	s.t.mu.Lock()
	s.errMsg = err.Error()
	s.t.mu.Unlock()
}

// Annotate attaches an attribute to the span after creation.
func (s *Span) Annotate(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.t.mu.Unlock()
}

// SpanRecord is the exported form of one span in a timeline.
type SpanRecord struct {
	ID     int       `json:"id"`
	Parent int       `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// Seconds is the span duration; open spans report the time elapsed
	// so far.
	Seconds float64           `json:"seconds"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// Timeline is a JSON-serializable snapshot of one traced run: the span
// tree, ordered by start time (ties break by id, so a parent always
// precedes the children it started).
type Timeline struct {
	Trace string       `json:"trace,omitempty"`
	Spans []SpanRecord `json:"spans"`
}

// Timeline snapshots the tracer. It may be called while spans are
// still being recorded; open spans report elapsed time and no end.
func (t *Tracer) Timeline() Timeline {
	now := time.Now()
	t.mu.Lock()
	recs := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		end := s.end
		if end.IsZero() {
			end = now
		}
		r := SpanRecord{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			Start:   s.start,
			Seconds: end.Sub(s.start).Seconds(),
			Error:   s.errMsg,
		}
		if len(s.attrs) > 0 {
			r.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				r.Attrs[a.Key] = a.Value
			}
		}
		recs = append(recs, r)
	}
	t.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Start.Equal(recs[j].Start) {
			return recs[i].Start.Before(recs[j].Start)
		}
		return recs[i].ID < recs[j].ID
	})
	return Timeline{Spans: recs}
}

// Roots returns the ids of spans with no parent, in timeline order.
func (tl Timeline) Roots() []int {
	var out []int
	for _, r := range tl.Spans {
		if r.Parent == 0 {
			out = append(out, r.ID)
		}
	}
	return out
}

// Children returns the records parented by id, in timeline order.
func (tl Timeline) Children(id int) []SpanRecord {
	var out []SpanRecord
	for _, r := range tl.Spans {
		if r.Parent == id {
			out = append(out, r)
		}
	}
	return out
}

// ObserveStages folds a timeline into the registry's
// ion_pipeline_stage_seconds histogram, one series per span name. Span
// names are the bounded stage vocabulary (parse, extract, diagnose,
// llm_complete, summarize, …); high-cardinality detail lives in span
// attributes, which are not exported as labels. When the timeline
// carries a trace id, each observation records it as the bucket's
// exemplar, so quantile queries can name the job behind the number.
func ObserveStages(reg *Registry, tl Timeline) {
	for _, r := range tl.Spans {
		h := reg.Histogram("ion_pipeline_stage_seconds",
			"Latency of each ION pipeline stage, labeled by span name.",
			nil, L("stage", r.Name))
		if tl.Trace != "" {
			h.ObserveExemplar(r.Seconds, tl.Trace)
		} else {
			h.Observe(r.Seconds)
		}
	}
}

// StageStat summarizes one stage's latency distribution.
type StageStat struct {
	Stage              string
	Count              int
	TotalSeconds       float64
	P50, P95, P99, Max float64
}

// Summarize computes per-stage latency statistics (exact nearest-rank
// percentiles) from a timeline, sorted by stage name for stable
// output. ionbench prints this after a run so the evaluation artifacts
// can track per-stage latency, not just end-to-end time.
func Summarize(tl Timeline) []StageStat {
	byStage := map[string][]float64{}
	for _, r := range tl.Spans {
		byStage[r.Name] = append(byStage[r.Name], r.Seconds)
	}
	names := make([]string, 0, len(byStage))
	for n := range byStage {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]StageStat, 0, len(names))
	for _, n := range names {
		ds := byStage[n]
		sort.Float64s(ds)
		st := StageStat{Stage: n, Count: len(ds), Max: ds[len(ds)-1]}
		for _, d := range ds {
			st.TotalSeconds += d
		}
		st.P50 = percentile(ds, 0.50)
		st.P95 = percentile(ds, 0.95)
		st.P99 = percentile(ds, 0.99)
		out = append(out, st)
	}
	return out
}

// percentile returns the nearest-rank percentile of sorted ds.
func percentile(ds []float64, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	i := int(q*float64(len(ds)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(ds) {
		i = len(ds)
	}
	return ds[i-1]
}
