package obs

import (
	"sort"
	"time"
)

// Exemplar pins one concrete observation to a histogram bucket: the
// observed value plus the trace (job id, request id) that produced it.
// Dashboards aggregate latency into quantiles and immediately lose the
// answer to "which job was the p99?"; exemplars keep it. One exemplar
// is retained per bucket — newest wins — so storage is bounded by the
// bucket layout, not by traffic.
type Exemplar struct {
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	Time    time.Time `json:"time"`
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, remembers it as the exemplar of the bucket the value lands
// in, replacing the bucket's previous exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.observe++
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.counts))
		}
		h.exemplars[i] = Exemplar{Value: v, TraceID: traceID, Time: time.Now()}
	}
	h.mu.Unlock()
}

// Exemplars returns this series' retained exemplars, largest value
// first — so the first entry answers "what was the slowest?".
func (h *Histogram) Exemplars() []Exemplar {
	h.mu.Lock()
	var out []Exemplar
	for _, e := range h.exemplars {
		if e.TraceID != "" {
			out = append(out, e)
		}
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// SeriesExemplars is the exemplar set of one labeled histogram series.
type SeriesExemplars struct {
	Labels    []Label    `json:"labels,omitempty"`
	Exemplars []Exemplar `json:"exemplars"`
}

// Exemplars returns every exemplar recorded under the named histogram
// family, one entry per labeled series (series in lexicographic order,
// exemplars largest-value first). Nil when the family does not exist,
// is not a histogram, or has recorded no exemplars.
func (r *Registry) Exemplars(name string) []SeriesExemplars {
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok || f.typ != "histogram" || f.fn != nil {
		r.mu.Unlock()
		return nil
	}
	keys := make([]string, 0, len(f.series))
	hists := make(map[string]*Histogram, len(f.series))
	for k, m := range f.series {
		if h, ok := m.(*Histogram); ok {
			keys = append(keys, k)
			hists[k] = h
		}
	}
	r.mu.Unlock()

	sort.Strings(keys)
	var out []SeriesExemplars
	for _, k := range keys {
		ex := hists[k].Exemplars()
		if len(ex) == 0 {
			continue
		}
		out = append(out, SeriesExemplars{Labels: parseLabelKey(k), Exemplars: ex})
	}
	return out
}
