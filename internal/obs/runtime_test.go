package obs

import (
	"strings"
	"testing"
)

// TestRegisterRuntimeMetrics checks the process-health collectors land
// in the exposition with plausible values.
func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)

	byName := map[string]Sample{}
	for _, s := range reg.Gather() {
		byName[s.Name] = s
	}
	for name, kind := range map[string]string{
		"ion_go_goroutines":             "gauge",
		"ion_go_gomaxprocs":             "gauge",
		"ion_go_heap_bytes":             "gauge",
		"ion_go_gc_cycles_total":        "counter",
		"ion_go_gc_pause_seconds_total": "counter",
	} {
		s, ok := byName[name]
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if s.Kind != kind {
			t.Errorf("%s kind = %s, want %s", name, s.Kind, kind)
		}
		if s.Value < 0 {
			t.Errorf("%s = %v, want >= 0", name, s.Value)
		}
	}
	if byName["ion_go_goroutines"].Value < 1 {
		t.Errorf("goroutines = %v, want >= 1", byName["ion_go_goroutines"].Value)
	}
	if byName["ion_go_gomaxprocs"].Value < 1 {
		t.Errorf("gomaxprocs = %v, want >= 1", byName["ion_go_gomaxprocs"].Value)
	}
	if byName["ion_go_heap_bytes"].Value <= 0 {
		t.Errorf("heap bytes = %v, want > 0", byName["ion_go_heap_bytes"].Value)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE ion_go_goroutines gauge",
		"# TYPE ion_go_gc_cycles_total counter",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
