// Package series is the always-on self-observation engine of the ION
// service: a lock-cheap in-process time-series store that scrapes an
// obs.Registry on a fixed interval into per-series ring buffers, plus a
// rule engine (rules.go) that evaluates SLO-style alert rules against
// those buffers and drives alert state machines. Like the rest of the
// telemetry layer it is stdlib-only and needs no external collector:
// the store IS the monitoring system, cheap enough to run forever,
// mirroring how Recorder keeps aggregate I/O views always-on instead of
// post-processing full traces.
//
// Counters are stored as per-second rates (computed between consecutive
// scrapes, reset-aware), gauges as raw values. Histogram families enter
// pre-flattened by obs.(*Registry).Gather as _count/_sum counters and
// per-quantile gauges, so p95-style rules are plain series lookups.
package series

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"ion/internal/obs"
)

// Point is one sample: unix-millisecond timestamp and value. It
// marshals as the JSON array [t, v], the compact wire form the query
// API and dashboard consume.
type Point struct {
	T int64
	V float64
}

// MarshalJSON renders the point as [t, v].
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%s]", p.T, formatFloat(p.V))), nil
}

// UnmarshalJSON accepts the [t, v] wire form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var pair [2]float64
	if err := json.Unmarshal(b, &pair); err != nil {
		return err
	}
	p.T = int64(pair[0])
	p.V = pair[1]
	return nil
}

func formatFloat(v float64) string {
	if v != v { // NaN has no JSON encoding
		return "null"
	}
	return trimFloat(v)
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// Options configures a Store.
type Options struct {
	// Interval is the scrape cadence; 0 means the default (5s).
	Interval time.Duration
	// Retention is how much history each series keeps; 0 means the
	// default (15m). Ring capacity is Retention/Interval points.
	Retention time.Duration
	// MaxSeries bounds distinct series; past it new series are dropped
	// (counted, logged once). 0 means the default (4096).
	MaxSeries int
	// Rules are the alert rules the engine evaluates after every
	// scrape; nil means no alerting.
	Rules []Rule
	// OnTransition, when set, receives every alert state change. It is
	// invoked synchronously from Scrape after the engine lock is
	// released, so it may safely call Alerts or Query; anything slow
	// (profiling, disk writes) should be handed to a goroutine.
	OnTransition func(RuleTransition)
	// Logger receives alert transitions and store lifecycle logs; nil
	// discards.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Retention <= 0 {
		o.Retention = 15 * time.Minute
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 4096
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
}

// memSeries is one named, labeled series: a fixed-capacity ring of
// points plus the counter state needed to turn cumulative values into
// rates.
type memSeries struct {
	name   string
	labels []obs.Label
	kind   string // "gauge", or "counter" (points hold per-second rates)

	pts  []Point // ring storage, len == capacity
	head int     // index of the oldest point
	n    int     // live points

	lastRaw float64 // counters: previous cumulative value
	lastT   int64   // counters: previous scrape time (ms)
	primed  bool    // counters: lastRaw valid
}

// push appends a point, evicting the oldest when full.
func (m *memSeries) push(p Point) {
	if m.n < len(m.pts) {
		m.pts[(m.head+m.n)%len(m.pts)] = p
		m.n++
		return
	}
	m.pts[m.head] = p
	m.head = (m.head + 1) % len(m.pts)
}

// window copies the points with from <= T <= to, oldest first.
func (m *memSeries) window(from, to int64) []Point {
	var out []Point
	for i := 0; i < m.n; i++ {
		p := m.pts[(m.head+i)%len(m.pts)]
		if p.T < from || p.T > to {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Store scrapes a registry into ring-buffered series and answers
// windowed queries over them. All methods are safe for concurrent use.
type Store struct {
	reg    *obs.Registry
	opts   Options
	cap    int // ring capacity in points
	engine *engine

	mu      sync.RWMutex
	series  map[string]*memSeries // obs.Sample.SeriesKey() → series
	order   []string              // insertion-independent sorted keys, rebuilt lazily
	stale   bool                  // order needs rebuild
	dropped int64                 // series rejected by MaxSeries
	scrapes int64
	lastAt  time.Time // stamp of the most recent scrape
	warned  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// New builds a Store over reg. It registers the engine's
// ion_alerts_firing gauge and the store's own bookkeeping gauges into
// the same registry, so the monitor monitors itself. Call Start to
// begin scraping, or Scrape directly (tests, single-shot tools).
func New(reg *obs.Registry, opts Options) *Store {
	opts.applyDefaults()
	capacity := int(opts.Retention / opts.Interval)
	if capacity < 2 {
		capacity = 2
	}
	s := &Store{
		reg:    reg,
		opts:   opts,
		cap:    capacity,
		series: make(map[string]*memSeries),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.engine = newEngine(opts.Rules, opts.Logger)
	s.engine.onTransition = opts.OnTransition
	reg.GaugeFunc("ion_alerts_firing", "Alert rules currently in the firing state.",
		func() float64 { return float64(s.engine.firingCount()) })
	reg.GaugeFunc("ion_series_count", "Distinct series retained by the in-process time-series store.",
		func() float64 { return float64(s.SeriesCount()) })
	reg.CounterFunc("ion_series_scrapes_total", "Registry scrapes performed by the time-series store.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.scrapes)
		})
	return s
}

// Interval returns the configured scrape cadence.
func (s *Store) Interval() time.Duration { return s.opts.Interval }

// Retention returns the configured history window.
func (s *Store) Retention() time.Duration { return s.opts.Retention }

// LastScrape returns the stamp of the most recent scrape (zero before
// the first), so dashboards can surface staleness.
func (s *Store) LastScrape() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastAt
}

// Start launches the scrape loop. Stop it with Stop; calling Start
// twice is a no-op, and Start after Stop exits immediately.
func (s *Store) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		s.Scrape(time.Now())
		for {
			select {
			case <-s.stop:
				return
			case now := <-t.C:
				s.Scrape(now)
			}
		}
	}()
	s.opts.Logger.Info("series store scraping",
		"interval", s.opts.Interval.String(), "retention", s.opts.Retention.String(),
		"capacity_points", s.cap, "rules", len(s.opts.Rules))
}

// Stop halts the scrape loop and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (s *Store) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.RLock()
	started := s.started
	s.mu.RUnlock()
	if started {
		<-s.done
	}
}

// Scrape ingests one registry snapshot stamped at now and then
// evaluates the alert rules against the updated series. Exported so
// tests and one-shot tools can drive time explicitly.
func (s *Store) Scrape(now time.Time) {
	samples := s.reg.Gather()
	ts := now.UnixMilli()

	s.mu.Lock()
	s.scrapes++
	if now.After(s.lastAt) {
		s.lastAt = now
	}
	for _, sm := range samples {
		key := sm.SeriesKey()
		m, ok := s.series[key]
		if !ok {
			if len(s.series) >= s.opts.MaxSeries {
				s.dropped++
				if !s.warned {
					s.warned = true
					s.opts.Logger.Warn("series store at MaxSeries, dropping new series",
						"max", s.opts.MaxSeries, "dropped_key", key)
				}
				continue
			}
			m = &memSeries{
				name:   sm.Name,
				labels: append([]obs.Label(nil), sm.Labels...),
				kind:   sm.Kind,
				pts:    make([]Point, s.cap),
			}
			s.series[key] = m
			s.stale = true
		}
		switch m.kind {
		case "counter":
			raw := sm.Value
			if !m.primed {
				m.lastRaw, m.lastT, m.primed = raw, ts, true
				continue
			}
			dt := float64(ts-m.lastT) / 1000
			if dt <= 0 {
				continue
			}
			delta := raw - m.lastRaw
			if delta < 0 {
				// Counter reset: rate from zero.
				delta = raw
			}
			m.lastRaw, m.lastT = raw, ts
			m.push(Point{T: ts, V: delta / dt})
		default:
			m.push(Point{T: ts, V: sm.Value})
		}
	}
	// Series are only ever added here, so rebuilding the sorted key
	// order under the same write lock keeps Query read-only.
	if s.stale {
		s.order = s.order[:0]
		for k := range s.series {
			s.order = append(s.order, k)
		}
		sort.Strings(s.order)
		s.stale = false
	}
	s.mu.Unlock()

	s.engine.eval(s, now)
}

// SeriesCount returns the number of distinct retained series.
func (s *Store) SeriesCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// Dropped returns how many new series were rejected by MaxSeries.
func (s *Store) Dropped() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// Names returns the distinct metric names with at least one retained
// series, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	set := map[string]bool{}
	for _, m := range s.series {
		set[m.name] = true
	}
	s.mu.RUnlock()
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query selects windowed points from the store.
type Query struct {
	// Name is the exact metric name (required). Histogram-derived
	// series use the flattened names: name{quantile="0.95"},
	// name_count, name_sum.
	Name string
	// Labels are equality filters; a series matches when every listed
	// key has the listed value (extra labels on the series are fine).
	Labels map[string]string
	// From/To bound the window; zero values mean the full retention.
	From, To time.Time
	// Step buckets points into fixed windows, keeping one aggregated
	// point per bucket; 0 returns raw points.
	Step time.Duration
	// Agg is the per-bucket aggregation when Step > 0: "avg" (default),
	// "max", "min", "sum", or "last".
	Agg string
}

// Result is one matched series with its windowed points.
type Result struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	Points []Point           `json:"points"`
}

// Query returns every retained series matching q, sorted by series key,
// each with its in-window points oldest-first (after optional step
// aggregation). A nil result means nothing matched.
func (s *Store) Query(q Query) []Result {
	// A step wider than the whole retention window cannot produce a
	// meaningful bucket: every retained point would collapse into one
	// aggregate pretending to be a trend. Return no data instead.
	if q.Step > 0 && q.Step > s.opts.Retention {
		return nil
	}
	from, to := int64(0), int64(1<<62)
	if !q.From.IsZero() {
		from = q.From.UnixMilli()
	}
	if !q.To.IsZero() {
		to = q.To.UnixMilli()
	}

	s.mu.RLock()
	var out []Result
	for _, key := range s.order {
		m := s.series[key]
		if m.name != q.Name || !labelsMatch(m.labels, q.Labels) {
			continue
		}
		pts := m.window(from, to)
		if q.Step > 0 {
			pts = downsample(pts, q.Step, q.Agg)
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, Result{Name: m.name, Labels: labelMap(m.labels), Kind: m.kind, Points: pts})
	}
	s.mu.RUnlock()
	return out
}

// Latest returns the most recent point of each series matching name and
// labels (no window), sorted by series key.
func (s *Store) Latest(name string, labels map[string]string) []Result {
	res := s.Query(Query{Name: name, Labels: labels})
	for i := range res {
		res[i].Points = res[i].Points[len(res[i].Points)-1:]
	}
	return res
}

func labelsMatch(have []obs.Label, want map[string]string) bool {
	for k, v := range want {
		found := false
		for _, l := range have {
			if l.Key == k {
				found = l.Value == v
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func labelMap(ls []obs.Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// downsample buckets pts (oldest first) into step-sized windows
// anchored at the first point, emitting one aggregated point per
// non-empty bucket, stamped at the bucket end.
func downsample(pts []Point, step time.Duration, agg string) []Point {
	if len(pts) == 0 {
		return pts
	}
	ms := step.Milliseconds()
	if ms <= 0 {
		return pts
	}
	var out []Point
	start := pts[0].T
	i := 0
	for i < len(pts) {
		bucketEnd := start + ms
		var vals []float64
		for i < len(pts) && pts[i].T < bucketEnd {
			vals = append(vals, pts[i].V)
			i++
		}
		if len(vals) > 0 {
			out = append(out, Point{T: bucketEnd - 1, V: aggregate(vals, agg)})
		}
		start = bucketEnd
	}
	return out
}

func aggregate(vals []float64, agg string) float64 {
	switch agg {
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case "sum":
		var t float64
		for _, v := range vals {
			t += v
		}
		return t
	case "last":
		return vals[len(vals)-1]
	default: // avg
		var t float64
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals))
	}
}

// Alerts returns a snapshot of every rule's alert status, rule order.
func (s *Store) Alerts() []AlertStatus { return s.engine.snapshot() }
