package series

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"ion/internal/obs"
)

// at returns a fixed base time plus a delta, so tests drive the scrape
// clock explicitly.
func at(d time.Duration) time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).Add(d)
}

func TestRingWraparound(t *testing.T) {
	m := &memSeries{kind: "gauge", pts: make([]Point, 4)}
	for i := 0; i < 10; i++ {
		m.push(Point{T: int64(i), V: float64(i)})
	}
	got := m.window(0, 1<<62)
	if len(got) != 4 {
		t.Fatalf("after 10 pushes into cap-4 ring, kept %d points, want 4", len(got))
	}
	for i, p := range got {
		if want := int64(6 + i); p.T != want {
			t.Errorf("point %d: T=%d, want %d (oldest-first, newest retained)", i, p.T, want)
		}
	}
	// Window narrowing: only the points inside [7, 8].
	if got := m.window(7, 8); len(got) != 2 || got[0].T != 7 || got[1].T != 8 {
		t.Errorf("window(7,8) = %v, want exactly T=7,8", got)
	}
}

func TestStoreScrapeGaugeAndWindowQuery(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_depth", "d")
	st := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})

	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		st.Scrape(at(time.Duration(i) * time.Second))
	}

	res := st.Query(Query{Name: "ion_test_depth"})
	if len(res) != 1 {
		t.Fatalf("query matched %d series, want 1", len(res))
	}
	if len(res[0].Points) != 5 || res[0].Points[4].V != 4 {
		t.Fatalf("points = %v, want 5 points ending at 4", res[0].Points)
	}
	if res[0].Kind != "gauge" {
		t.Errorf("kind = %q, want gauge", res[0].Kind)
	}

	// A window covering only the middle scrapes.
	res = st.Query(Query{Name: "ion_test_depth", From: at(time.Second), To: at(3 * time.Second)})
	if len(res) != 1 || len(res[0].Points) != 3 {
		t.Fatalf("windowed query = %+v, want 3 points", res)
	}

	// Unknown names and non-matching label filters match nothing.
	if res := st.Query(Query{Name: "ion_nope"}); res != nil {
		t.Errorf("unknown name matched %v", res)
	}
	if res := st.Query(Query{Name: "ion_test_depth", Labels: map[string]string{"x": "y"}}); res != nil {
		t.Errorf("bogus label filter matched %v", res)
	}
}

func TestCounterStoredAsRate(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ion_test_total", "t")
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute})

	c.Add(10)
	st.Scrape(at(0)) // primes the counter, no point yet
	if res := st.Query(Query{Name: "ion_test_total"}); res != nil {
		t.Fatalf("first scrape of a counter yielded points: %v", res)
	}

	c.Add(20) // +20 over 2s = 10/s
	st.Scrape(at(2 * time.Second))
	res := st.Query(Query{Name: "ion_test_total"})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("rate series = %+v, want one point", res)
	}
	if got := res[0].Points[0].V; got != 10 {
		t.Errorf("rate = %v, want 10/s", got)
	}

	// Steady counter → zero rate.
	st.Scrape(at(3 * time.Second))
	res = st.Query(Query{Name: "ion_test_total"})
	if got := res[0].Points[1].V; got != 0 {
		t.Errorf("steady-state rate = %v, want 0", got)
	}
}

func TestCounterReset(t *testing.T) {
	// Simulate a reset with a callback counter the test controls.
	reg := obs.NewRegistry()
	val := 100.0
	reg.CounterFunc("ion_resetting_total", "t", func() float64 { return val })
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute})

	st.Scrape(at(0))
	val = 5 // process restarted: cumulative value fell
	st.Scrape(at(time.Second))
	res := st.Query(Query{Name: "ion_resetting_total"})
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("series = %+v, want one point", res)
	}
	if got := res[0].Points[0].V; got != 5 {
		t.Errorf("post-reset rate = %v, want 5 (rate from zero)", got)
	}
}

func TestHistogramQuantileSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("ion_test_seconds", "t", []float64{1, 2, 4}, obs.L("stage", "analyze"))
	for _, v := range []float64{0.5, 1.5, 1.5, 3} {
		h.Observe(v)
	}
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute})
	st.Scrape(at(0))
	st.Scrape(at(time.Second))

	res := st.Query(Query{Name: "ion_test_seconds",
		Labels: map[string]string{"stage": "analyze", "quantile": "0.95"}})
	if len(res) != 1 || len(res[0].Points) != 2 {
		t.Fatalf("p95 series = %+v, want one series with two points", res)
	}
	if v := res[0].Points[0].V; v <= 0 {
		t.Errorf("p95 = %v, want > 0", v)
	}
	// The flattened _count counter is rate-converted.
	res = st.Query(Query{Name: "ion_test_seconds_count"})
	if len(res) != 1 || res[0].Points[0].V != 0 {
		t.Fatalf("_count rate series = %+v, want one zero-rate point", res)
	}
}

func TestDownsample(t *testing.T) {
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{T: int64(i * 1000), V: float64(i)}
	}
	got := downsample(pts, 5*time.Second, "avg")
	if len(got) != 2 {
		t.Fatalf("downsample to 5s buckets = %d points, want 2", len(got))
	}
	if got[0].V != 2 || got[1].V != 7 {
		t.Errorf("bucket means = %v,%v, want 2,7", got[0].V, got[1].V)
	}
	if mx := downsample(pts, 5*time.Second, "max"); mx[0].V != 4 || mx[1].V != 9 {
		t.Errorf("bucket maxes = %v,%v, want 4,9", mx[0].V, mx[1].V)
	}
}

func TestRetentionBoundsMemory(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_g", "g")
	// 10s retention at 1s cadence → 10-point rings.
	st := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	for i := 0; i < 100; i++ {
		g.Set(float64(i))
		st.Scrape(at(time.Duration(i) * time.Second))
	}
	res := st.Query(Query{Name: "ion_test_g"})
	if len(res[0].Points) != 10 {
		t.Fatalf("retained %d points, want 10 (retention/interval)", len(res[0].Points))
	}
	if first := res[0].Points[0].V; first != 90 {
		t.Errorf("oldest retained value = %v, want 90", first)
	}
}

func TestMaxSeriesBound(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Gauge("ion_test_g", "g", obs.L("i", fmt.Sprint(i))).Set(1)
	}
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute, MaxSeries: 5})
	st.Scrape(at(0))
	if n := st.SeriesCount(); n != 5 {
		t.Errorf("series count = %d, want capped at 5", n)
	}
	if st.Dropped() == 0 {
		t.Error("dropped counter did not record rejected series")
	}
}

func TestPointMarshalJSON(t *testing.T) {
	b, err := json.Marshal([]Point{{T: 1000, V: 2.5}, {T: 2000, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[[1000,2.5],[2000,3]]" {
		t.Errorf("points marshaled as %s", b)
	}
	var back []Point
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != (Point{T: 1000, V: 2.5}) || back[1] != (Point{T: 2000, V: 3}) {
		t.Errorf("round-trip = %+v", back)
	}
}

// TestScrapeQueryRace exercises concurrent scraping, registry updates,
// and queries under -race.
func TestScrapeQueryRace(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(reg, Options{Interval: 100 * time.Millisecond, Retention: 10 * time.Second,
		Rules: []Rule{{Name: "r", Expr: "ion_race_g > 100", For: Duration(time.Second)}}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Gauge("ion_race_g", "g", obs.L("w", fmt.Sprint(w))).Set(float64(i))
				reg.Counter("ion_race_total", "t", obs.L("w", fmt.Sprint(w))).Inc()
				reg.Histogram("ion_race_seconds", "h", nil, obs.L("w", fmt.Sprint(w))).Observe(0.01)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st.Scrape(at(time.Duration(i) * time.Second))
			st.Query(Query{Name: "ion_race_g"})
			st.Latest("ion_race_total", nil)
			st.Alerts()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("ion_test_g", "g").Set(1)
	st := New(reg, Options{Interval: 10 * time.Millisecond, Retention: time.Second})
	st.Start()
	deadline := time.Now().Add(5 * time.Second)
	for st.SeriesCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never ingested a series")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st.Stop()
	st.Stop() // idempotent

	// Stop without Start must not block either.
	st2 := New(obs.NewRegistry(), Options{})
	st2.Stop()
}

func TestQueryStepLargerThanRetention(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_depth", "d")
	st := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		st.Scrape(at(time.Duration(i) * time.Second))
	}

	// A step wider than the retention window would collapse every
	// retained point into one bucket masquerading as a trend; the query
	// must come back empty instead.
	res := st.Query(Query{Name: "ion_test_depth", Step: time.Minute})
	if len(res) != 0 {
		t.Fatalf("step > retention returned %d series (%v), want none", len(res), res)
	}
	// A step inside the retention window still downsamples normally.
	res = st.Query(Query{Name: "ion_test_depth", Step: 2 * time.Second, Agg: "max"})
	if len(res) != 1 || len(res[0].Points) == 0 {
		t.Fatalf("in-retention step query = %v, want points", res)
	}
}

func TestQueryWindowEntirelyInFuture(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_depth", "d")
	st := New(reg, Options{Interval: time.Second, Retention: 10 * time.Second})
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		st.Scrape(at(time.Duration(i) * time.Second))
	}

	// All retained points predate the window: no results, no panic.
	res := st.Query(Query{Name: "ion_test_depth", From: at(time.Hour), To: at(2 * time.Hour)})
	if len(res) != 0 {
		t.Fatalf("future window returned %d series (%v), want none", len(res), res)
	}
	// Same with a downsampling step, which exercises the empty-input
	// path of downsample.
	res = st.Query(Query{Name: "ion_test_depth", From: at(time.Hour), To: at(2 * time.Hour), Step: 2 * time.Second})
	if len(res) != 0 {
		t.Fatalf("future downsampled window returned %d series (%v), want none", len(res), res)
	}
}
