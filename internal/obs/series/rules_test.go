package series

import (
	"strings"
	"testing"
	"time"

	"ion/internal/obs"
)

func TestParseExpr(t *testing.T) {
	cases := []struct {
		in        string
		fn        string
		metric    string
		labels    map[string]string
		op        string
		threshold float64
	}{
		{"ion_jobs_failure_ratio > 0.1", "", "ion_jobs_failure_ratio", nil, ">", 0.1},
		{"ion_go_heap_bytes >= 4e+09", "", "ion_go_heap_bytes", nil, ">=", 4e9},
		{"ion_jobs_queue_depth<2", "", "ion_jobs_queue_depth", nil, "<", 2},
		{`p95(ion_pipeline_stage_seconds{stage="analyze"}) > 30`,
			"p95", "ion_pipeline_stage_seconds", map[string]string{"stage": "analyze"}, ">", 30},
		{`sum(ion_llm_requests_total{outcome="error"}) > 0.5`,
			"sum", "ion_llm_requests_total", map[string]string{"outcome": "error"}, ">", 0.5},
		{`avg(ion_go_goroutines) <= 100`, "avg", "ion_go_goroutines", nil, "<=", 100},
		{`ion_http_requests_total{route="GET /metrics",code="200"} > 5`,
			"", "ion_http_requests_total", map[string]string{"route": "GET /metrics", "code": "200"}, ">", 5},
	}
	for _, c := range cases {
		e, err := parseExpr(c.in)
		if err != nil {
			t.Errorf("parseExpr(%q): %v", c.in, err)
			continue
		}
		if e.fn != c.fn || e.metric != c.metric || e.op != c.op || e.threshold != c.threshold {
			t.Errorf("parseExpr(%q) = %+v", c.in, e)
		}
		for k, v := range c.labels {
			if e.labels[k] != v {
				t.Errorf("parseExpr(%q): label %s=%q, want %q", c.in, k, e.labels[k], v)
			}
		}
	}

	for _, bad := range []string{
		"", "ion_x", "> 3", "ion_x > abc", "p95(ion_x > 3", `ion_x{stage=} >`,
		"ion_x{unterminated > 3",
	} {
		if _, err := parseExpr(bad); err == nil {
			t.Errorf("parseExpr(%q) did not fail", bad)
		}
	}
}

func TestQuantileSelector(t *testing.T) {
	for _, c := range []struct{ fn, want string }{
		{"p50", "0.5"}, {"p95", "0.95"}, {"p99", "0.99"},
	} {
		e, err := parseExpr(c.fn + "(ion_x) > 1")
		if err != nil {
			t.Fatal(err)
		}
		if got := e.selector()["quantile"]; got != c.want {
			t.Errorf("%s selector quantile = %q, want %q", c.fn, got, c.want)
		}
	}
}

func TestParseRulesFormats(t *testing.T) {
	array := `[{"name":"A","expr":"ion_x > 1","for":"90s"}]`
	rules, err := ParseRules([]byte(array))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "A" || time.Duration(rules[0].For) != 90*time.Second {
		t.Fatalf("rules = %+v", rules)
	}
	if rules[0].Severity != "warn" {
		t.Errorf("default severity = %q, want warn", rules[0].Severity)
	}

	wrapped := `{"rules":[{"name":"B","expr":"ion_x > 1","for":30,"severity":"page"}]}`
	rules, err = ParseRules([]byte(wrapped))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || time.Duration(rules[0].For) != 30*time.Second || rules[0].Severity != "page" {
		t.Fatalf("wrapped rules = %+v", rules)
	}

	for _, bad := range []string{
		`[{"expr":"ion_x > 1"}]`,                                            // missing name
		`[{"name":"A","expr":"nope"}]`,                                      // bad expr
		`[{"name":"A","expr":"ion_x > 1"},{"name":"A","expr":"ion_x > 2"}]`, // dup
		`not json`,
		`[{"name":"A","expr":"ion_x > 1","for":"eternity"}]`, // bad duration
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Errorf("ParseRules(%s) did not fail", bad)
		}
	}
}

func TestDefaultRulesParse(t *testing.T) {
	rules := DefaultRules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	for _, r := range rules {
		if r.parsed.metric == "" {
			t.Errorf("rule %q did not parse", r.Name)
		}
	}
}

// TestAlertLifecycle drives a rule through every state: ok while the
// value is low, pending on the first breach, firing once the breach has
// been sustained for the rule's For, resolved when it clears, and
// pending again on a re-breach.
func TestAlertLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_ratio", "r")
	st := New(reg, Options{
		Interval:  time.Second,
		Retention: time.Minute,
		Rules:     []Rule{{Name: "RatioHigh", Expr: "ion_test_ratio > 0.5", For: Duration(2 * time.Second), Severity: "page"}},
	})

	state := func() AlertStatus { return st.Alerts()[0] }

	g.Set(0.1)
	st.Scrape(at(0))
	if s := state(); s.State != StateOK {
		t.Fatalf("below threshold: state = %s, want ok", s.State)
	}

	g.Set(0.9)
	st.Scrape(at(1 * time.Second))
	if s := state(); s.State != StatePending || s.Value != 0.9 {
		t.Fatalf("first breach: state = %s value = %v, want pending 0.9", s.State, s.Value)
	}

	// Sustained past For → firing; the ion_alerts_firing gauge follows.
	st.Scrape(at(4 * time.Second))
	if s := state(); s.State != StateFiring {
		t.Fatalf("sustained breach: state = %s, want firing", s.State)
	}
	found := false
	for _, sm := range reg.Gather() {
		if sm.Name == "ion_alerts_firing" {
			found = true
			if sm.Value != 1 {
				t.Errorf("ion_alerts_firing = %v, want 1", sm.Value)
			}
		}
	}
	if !found {
		t.Error("ion_alerts_firing not in registry")
	}

	g.Set(0.2)
	st.Scrape(at(5 * time.Second))
	if s := state(); s.State != StateResolved {
		t.Fatalf("cleared breach: state = %s, want resolved", s.State)
	}

	g.Set(0.8)
	st.Scrape(at(6 * time.Second))
	if s := state(); s.State != StatePending {
		t.Fatalf("re-breach after resolve: state = %s, want pending", s.State)
	}

	// The history records the full journey in order.
	hist := state().History
	var seq []string
	for _, tr := range hist {
		seq = append(seq, string(tr.From)+"->"+string(tr.To))
	}
	want := "ok->pending pending->firing firing->resolved resolved->pending"
	if strings.Join(seq, " ") != want {
		t.Errorf("transition history = %v, want %q", seq, want)
	}
}

func TestAlertPendingClearsToOK(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_v", "v")
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute,
		Rules: []Rule{{Name: "V", Expr: "ion_test_v > 1", For: Duration(time.Minute)}}})
	g.Set(5)
	st.Scrape(at(0))
	if s := st.Alerts()[0]; s.State != StatePending {
		t.Fatalf("state = %s, want pending", s.State)
	}
	g.Set(0)
	st.Scrape(at(time.Second))
	if s := st.Alerts()[0]; s.State != StateOK {
		t.Fatalf("blip cleared: state = %s, want ok (never fired)", s.State)
	}
}

func TestAlertZeroForFiresImmediately(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge("ion_test_v", "v").Set(5)
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute,
		Rules: []Rule{{Name: "V", Expr: "ion_test_v > 1"}}})
	st.Scrape(at(0))
	if s := st.Alerts()[0]; s.State != StateFiring {
		t.Fatalf("For=0 breach: state = %s, want firing", s.State)
	}
}

func TestAlertNoData(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute,
		Rules: []Rule{{Name: "Missing", Expr: "ion_never_exported > 1", For: Duration(time.Second)}}})
	st.Scrape(at(0))
	s := st.Alerts()[0]
	if s.State != StateOK || !s.NoData {
		t.Fatalf("missing series: state = %s nodata = %v, want ok/true", s.State, s.NoData)
	}
}

func TestInvalidLiteralRuleDropped(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(reg, Options{Interval: time.Second, Retention: time.Minute,
		Rules: []Rule{{Name: "Bad", Expr: "not an expression"}, {Name: "Good", Expr: "ion_x > 1"}}})
	alerts := st.Alerts()
	if len(alerts) != 1 || alerts[0].Rule.Name != "Good" {
		t.Fatalf("alerts = %+v, want only the valid rule", alerts)
	}
}

func TestOnTransitionCallback(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("ion_test_ratio", "r")
	var got []RuleTransition
	var st *Store
	st = New(reg, Options{
		Interval:  time.Second,
		Retention: time.Minute,
		Rules:     []Rule{{Name: "RatioHigh", Expr: "ion_test_ratio > 0.5", For: Duration(2 * time.Second), Severity: "page"}},
		OnTransition: func(tr RuleTransition) {
			// Re-entering the engine from the callback must not deadlock:
			// the incident capture path reads Alerts() mid-callback.
			_ = st.Alerts()
			got = append(got, tr)
		},
	})

	g.Set(0.9)
	st.Scrape(at(0))
	st.Scrape(at(3 * time.Second))
	g.Set(0.1)
	st.Scrape(at(4 * time.Second))

	var seq []string
	for _, tr := range got {
		seq = append(seq, string(tr.From)+"->"+string(tr.To))
	}
	want := "ok->pending pending->firing firing->resolved"
	if strings.Join(seq, " ") != want {
		t.Fatalf("callback transitions = %v, want %q", seq, want)
	}
	if got[1].Rule != "RatioHigh" || got[1].Severity != "page" || got[1].Value != 0.9 {
		t.Errorf("firing transition payload = %+v", got[1])
	}
	if !got[1].At.Equal(at(3 * time.Second)) {
		t.Errorf("firing At = %v, want scrape time", got[1].At)
	}
}
