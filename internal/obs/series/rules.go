package series

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rule is one SLO-style alert rule: a threshold expression that must
// hold for a sustained duration before the alert fires.
//
// The expression grammar is deliberately small:
//
//	expr     := [fn "("] metric [selector] [")"] op number
//	fn       := p50 | p95 | p99 | avg | min | max | sum | last
//	selector := "{" key="value" ("," key="value")* "}"
//	op       := ">" | ">=" | "<" | "<="
//
// Examples:
//
//	ion_jobs_failure_ratio > 0.1
//	p95(ion_pipeline_stage_seconds{stage="analyze"}) > 30
//	sum(ion_llm_requests_total{outcome="error"}) > 0.5
//
// p50/p95/p99 select the matching quantile series the registry derives
// from histograms and take the max across matches; avg/min/max/sum/last
// aggregate the latest value of every matching series; with no fn the
// max across matches is compared. Counter metrics evaluate their
// per-second scrape rate, the value the store retains.
type Rule struct {
	// Name identifies the rule in /api/alerts, logs, and history.
	Name string `json:"name"`
	// Expr is the threshold expression (grammar above).
	Expr string `json:"expr"`
	// For is how long the expression must hold before the alert moves
	// from pending to firing; 0 fires on the first true evaluation.
	For Duration `json:"for"`
	// Severity is a free-form label ("warn", "page", …) surfaced in
	// /api/alerts; empty means "warn".
	Severity string `json:"severity,omitempty"`

	parsed expr
}

// Duration is a time.Duration that marshals as a Go duration string
// ("90s", "1m30s") in rule files and API payloads.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string or a number of seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("series: bad duration %q: %v", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("series: duration must be a string like \"1m\" or seconds: %s", b)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// expr is a parsed rule expression.
type expr struct {
	fn        string // "", p50, p95, p99, avg, min, max, sum, last
	metric    string
	labels    map[string]string
	op        string // > >= < <=
	threshold float64
}

// parseExpr parses the rule expression grammar.
func parseExpr(s string) (expr, error) {
	var e expr
	rest := strings.TrimSpace(s)
	for _, fn := range []string{"p50", "p95", "p99", "avg", "min", "max", "sum", "last"} {
		if strings.HasPrefix(rest, fn+"(") {
			e.fn = fn
			rest = rest[len(fn)+1:]
			close := strings.IndexByte(rest, ')')
			if close < 0 {
				return e, fmt.Errorf("series: expression %q: missing ')'", s)
			}
			inner := rest[:close]
			rest = strings.TrimSpace(rest[close+1:])
			if err := e.parseSelector(inner); err != nil {
				return e, fmt.Errorf("series: expression %q: %v", s, err)
			}
			return e.parseComparison(s, rest)
		}
	}
	// No function: selector runs up to the comparison operator.
	opAt := strings.IndexAny(rest, "<>")
	if opAt < 0 {
		return e, fmt.Errorf("series: expression %q: missing comparison operator", s)
	}
	if err := e.parseSelector(strings.TrimSpace(rest[:opAt])); err != nil {
		return e, fmt.Errorf("series: expression %q: %v", s, err)
	}
	return e.parseComparison(s, rest[opAt:])
}

// parseSelector parses `metric` or `metric{k="v",...}`.
func (e *expr) parseSelector(s string) error {
	s = strings.TrimSpace(s)
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		if s == "" {
			return fmt.Errorf("empty metric name")
		}
		e.metric = s
		return nil
	}
	e.metric = strings.TrimSpace(s[:brace])
	if e.metric == "" {
		return fmt.Errorf("empty metric name")
	}
	body, ok := strings.CutSuffix(strings.TrimSpace(s[brace:]), "}")
	if !ok {
		return fmt.Errorf("unterminated selector")
	}
	body = strings.TrimPrefix(body, "{")
	e.labels = map[string]string{}
	for _, pair := range splitSelector(body) {
		k, v, found := strings.Cut(pair, "=")
		if !found {
			return fmt.Errorf("bad selector pair %q", pair)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if uq, err := strconv.Unquote(v); err == nil {
			v = uq
		}
		if k == "" {
			return fmt.Errorf("bad selector pair %q", pair)
		}
		e.labels[k] = v
	}
	return nil
}

// splitSelector splits label pairs on commas outside quotes.
func splitSelector(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			if p := strings.TrimSpace(b.String()); p != "" {
				out = append(out, p)
			}
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if p := strings.TrimSpace(b.String()); p != "" {
		out = append(out, p)
	}
	return out
}

// parseComparison parses the trailing `op number`.
func (e expr) parseComparison(whole, s string) (expr, error) {
	s = strings.TrimSpace(s)
	for _, op := range []string{">=", "<=", ">", "<"} {
		if strings.HasPrefix(s, op) {
			num := strings.TrimSpace(s[len(op):])
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return e, fmt.Errorf("series: expression %q: bad threshold %q", whole, num)
			}
			e.op, e.threshold = op, v
			return e, nil
		}
	}
	return e, fmt.Errorf("series: expression %q: missing comparison operator", whole)
}

// compare applies the expression's operator.
func (e expr) compare(v float64) bool {
	switch e.op {
	case ">":
		return v > e.threshold
	case ">=":
		return v >= e.threshold
	case "<":
		return v < e.threshold
	case "<=":
		return v <= e.threshold
	}
	return false
}

// selector returns the label filters the expression queries, folding
// the quantile label in for p50/p95/p99.
func (e expr) selector() map[string]string {
	switch e.fn {
	case "p50", "p95", "p99":
		sel := map[string]string{"quantile": "0." + e.fn[1:]}
		if sel["quantile"] == "0.50" {
			sel["quantile"] = "0.5"
		}
		for k, v := range e.labels {
			sel[k] = v
		}
		return sel
	default:
		return e.labels
	}
}

// ParseRules decodes a JSON rule file: either a top-level array of
// rules or {"rules": [...]}, validating every expression.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		var wrapped struct {
			Rules []Rule `json:"rules"`
		}
		if werr := json.Unmarshal(data, &wrapped); werr != nil {
			return nil, fmt.Errorf("series: rules file: %v", err)
		}
		rules = wrapped.Rules
	}
	seen := map[string]bool{}
	for i := range rules {
		r := &rules[i]
		if strings.TrimSpace(r.Name) == "" {
			return nil, fmt.Errorf("series: rule %d: missing name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("series: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		parsed, err := parseExpr(r.Expr)
		if err != nil {
			return nil, fmt.Errorf("series: rule %q: %v", r.Name, err)
		}
		r.parsed = parsed
		if r.Severity == "" {
			r.Severity = "warn"
		}
	}
	return rules, nil
}

// MustRules is ParseRules for compiled-in defaults; it panics on error.
func MustRules(data []byte) []Rule {
	rules, err := ParseRules(data)
	if err != nil {
		panic(err)
	}
	return rules
}

// DefaultRules are the built-in SLO rules ionserve evaluates when no
// -rules file is given: they watch the failure ratio, queue saturation,
// LLM backend errors and the ledger's rolling backend health score,
// analyze-stage latency, semantic-cache health, diagnosis quality, and
// process health. The semcache rule leans on the hit-ratio gauge's own
// traffic gate (it reports 1.0 until enough lookups have happened), so
// it only fires when the hit ratio collapses under real traffic; the
// verdict-drift rule leans on the agreement gauge's identical gate.
// VerdictDriftHigh takes the min across per-issue agreement gauges so a
// single drifting issue fires it; SemcacheFlipRateHigh takes the max
// across reuse modes.
func DefaultRules() []Rule {
	return MustRules([]byte(`[
  {"name": "JobFailureRatioHigh", "expr": "ion_jobs_failure_ratio > 0.1", "for": "1m", "severity": "page"},
  {"name": "QueueNearCapacity",   "expr": "ion_jobs_queue_utilization > 0.9", "for": "1m", "severity": "warn"},
  {"name": "LLMErrorRateHigh",    "expr": "sum(ion_llm_requests_total{outcome=\"error\"}) > 0.2", "for": "1m", "severity": "page"},
  {"name": "AnalyzeP95Slow",      "expr": "p95(ion_pipeline_stage_seconds{stage=\"analyze\"}) > 60", "for": "2m", "severity": "warn"},
  {"name": "SemcacheHitRatioCollapsed", "expr": "ion_semcache_hit_ratio < 0.05", "for": "2m", "severity": "warn"},
  {"name": "VerdictDriftHigh",    "expr": "min(ion_verdict_agreement_ratio) < 0.6", "for": "2m", "severity": "page"},
  {"name": "SemcacheFlipRateHigh", "expr": "max(ion_semcache_flip_ratio) > 0.25", "for": "2m", "severity": "warn"},
  {"name": "HeapLarge",           "expr": "ion_go_heap_bytes > 4e+09", "for": "2m", "severity": "warn"},
  {"name": "GoroutineLeak",       "expr": "ion_go_goroutines > 5000", "for": "2m", "severity": "warn"},
  {"name": "HotFunctionRegression", "expr": "max(ion_prof_hot_function_delta) > 0.25", "for": "2m", "severity": "warn"},
  {"name": "LLMBackendDegraded",  "expr": "min(ion_llm_backend_health) < 0.5", "for": "1m", "severity": "page"}
]`))
}

// AlertState is one position in the alert lifecycle:
//
//	ok → pending → firing → resolved → pending → …
//
// pending means the expression is true but has not yet held for the
// rule's For duration; resolved is ok with a firing episode behind it.
type AlertState string

// Alert lifecycle states.
const (
	StateOK       AlertState = "ok"
	StatePending  AlertState = "pending"
	StateFiring   AlertState = "firing"
	StateResolved AlertState = "resolved"
)

// Transition is one recorded state change of an alert.
type Transition struct {
	At    time.Time  `json:"at"`
	From  AlertState `json:"from"`
	To    AlertState `json:"to"`
	Value float64    `json:"value"`
}

// AlertStatus is the queryable state of one rule.
type AlertStatus struct {
	Rule AlertRuleView `json:"rule"`
	// State is the current lifecycle state.
	State AlertState `json:"state"`
	// Since is when the current state was entered.
	Since time.Time `json:"since,omitempty"`
	// ActiveSince is when the expression last became true (set while
	// pending or firing).
	ActiveSince time.Time `json:"active_since,omitempty"`
	// Value is the expression's value at the last evaluation.
	Value float64 `json:"value"`
	// LastEval is the time of the last evaluation.
	LastEval time.Time `json:"last_eval,omitempty"`
	// NoData is true when no series matched the expression at the last
	// evaluation (the rule holds in its current non-firing state).
	NoData bool `json:"no_data,omitempty"`
	// History holds the most recent state transitions, oldest first.
	History []Transition `json:"history,omitempty"`
}

// AlertRuleView is the rule as shown on the wire (parsed form elided).
type AlertRuleView struct {
	Name     string `json:"name"`
	Expr     string `json:"expr"`
	For      string `json:"for"`
	Severity string `json:"severity"`
}

// maxHistory bounds the per-rule transition history.
const maxHistory = 64

// alert is the engine-internal state machine for one rule.
type alert struct {
	rule        Rule
	state       AlertState
	since       time.Time
	activeSince time.Time
	value       float64
	lastEval    time.Time
	noData      bool
	history     []Transition
}

// RuleTransition is the payload delivered to an Options.OnTransition
// callback: one alert state change, with enough context to act on it
// without querying the engine back (which would deadlock).
type RuleTransition struct {
	Rule     string     `json:"rule"`
	Severity string     `json:"severity"`
	From     AlertState `json:"from"`
	To       AlertState `json:"to"`
	At       time.Time  `json:"at"`
	Value    float64    `json:"value"`
}

// engine evaluates rules against a Store after every scrape.
type engine struct {
	log *slog.Logger
	// onTransition, when set, receives every state change. It is invoked
	// AFTER the engine lock is released (see eval), so callbacks may call
	// back into the store or engine (Alerts, Query) safely.
	onTransition func(RuleTransition)

	mu      sync.Mutex
	alerts  []*alert
	pending []RuleTransition // transitions awaiting callback delivery
}

func newEngine(rules []Rule, log *slog.Logger) *engine {
	e := &engine{log: log}
	for _, r := range rules {
		if r.parsed.metric == "" {
			// Rules built literally rather than via ParseRules: parse
			// here, skipping (and logging) invalid expressions instead of
			// taking the service down.
			parsed, err := parseExpr(r.Expr)
			if err != nil {
				log.Error("dropping alert rule with invalid expression", "rule", r.Name, "err", err)
				continue
			}
			r.parsed = parsed
		}
		if r.Severity == "" {
			r.Severity = "warn"
		}
		e.alerts = append(e.alerts, &alert{rule: r, state: StateOK})
	}
	return e
}

// eval runs every rule against the store's current series at time now.
// Transition callbacks collected during the locked pass are delivered
// after the lock is released, so a callback that re-enters the engine
// (Store.Alerts inside an incident capture) cannot deadlock.
func (e *engine) eval(s *Store, now time.Time) {
	e.mu.Lock()
	for _, a := range e.alerts {
		value, ok := evalExpr(s, a.rule.parsed)
		a.lastEval = now
		a.noData = !ok
		if ok {
			a.value = value
		}
		active := ok && a.rule.parsed.compare(value)
		e.step(a, active, now)
	}
	pending := e.pending
	e.pending = nil
	e.mu.Unlock()
	for _, t := range pending {
		e.onTransition(t)
	}
}

// step advances one alert state machine given whether the condition is
// currently active.
func (e *engine) step(a *alert, active bool, now time.Time) {
	switch {
	case active && (a.state == StateOK || a.state == StateResolved):
		a.activeSince = now
		if time.Duration(a.rule.For) <= 0 {
			e.transition(a, StateFiring, now)
		} else {
			e.transition(a, StatePending, now)
		}
	case active && a.state == StatePending:
		if now.Sub(a.activeSince) >= time.Duration(a.rule.For) {
			e.transition(a, StateFiring, now)
		}
	case !active && a.state == StatePending:
		a.activeSince = time.Time{}
		e.transition(a, StateOK, now)
	case !active && a.state == StateFiring:
		a.activeSince = time.Time{}
		e.transition(a, StateResolved, now)
	}
}

// transition applies a state change, records it, and logs it.
func (e *engine) transition(a *alert, to AlertState, now time.Time) {
	from := a.state
	a.state = to
	a.since = now
	a.history = append(a.history, Transition{At: now, From: from, To: to, Value: a.value})
	if len(a.history) > maxHistory {
		a.history = a.history[len(a.history)-maxHistory:]
	}
	logAt := e.log.Info
	if to == StateFiring {
		logAt = e.log.Warn
	}
	logAt("alert transition", "rule", a.rule.Name, "from", string(from), "to", string(to),
		"value", a.value, "expr", a.rule.Expr, "severity", a.rule.Severity)
	if e.onTransition != nil {
		e.pending = append(e.pending, RuleTransition{
			Rule: a.rule.Name, Severity: a.rule.Severity,
			From: from, To: to, At: now, Value: a.value,
		})
	}
}

// evalExpr computes the expression's current value: the latest point of
// every matching series, folded by the expression's aggregation. ok is
// false when no series matched (no data).
func evalExpr(s *Store, e expr) (float64, bool) {
	results := s.Latest(e.metric, e.selector())
	if len(results) == 0 {
		return 0, false
	}
	vals := make([]float64, 0, len(results))
	for _, r := range results {
		vals = append(vals, r.Points[len(r.Points)-1].V)
	}
	switch e.fn {
	case "avg":
		return aggregate(vals, "avg"), true
	case "min":
		return aggregate(vals, "min"), true
	case "sum":
		return aggregate(vals, "sum"), true
	case "last":
		return aggregate(vals, "last"), true
	default: // max, p50/p95/p99 (already series-selected), and bare metrics
		return aggregate(vals, "max"), true
	}
}

// firingCount is the ion_alerts_firing gauge source.
func (e *engine) firingCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, a := range e.alerts {
		if a.state == StateFiring {
			n++
		}
	}
	return n
}

// snapshot renders every alert's wire status, sorted by rule name.
func (e *engine) snapshot() []AlertStatus {
	e.mu.Lock()
	out := make([]AlertStatus, 0, len(e.alerts))
	for _, a := range e.alerts {
		out = append(out, AlertStatus{
			Rule: AlertRuleView{
				Name:     a.rule.Name,
				Expr:     a.rule.Expr,
				For:      time.Duration(a.rule.For).String(),
				Severity: a.rule.Severity,
			},
			State:       a.state,
			Since:       a.since,
			ActiveSince: a.activeSince,
			Value:       a.value,
			LastEval:    a.lastEval,
			NoData:      a.noData,
			History:     append([]Transition(nil), a.history...),
		})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}
