package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger returns a leveled text-handler logger writing to w.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything; it is the
// default wherever a *slog.Logger is optional, so instrumented code
// logs unconditionally and the caller decides whether anything lands.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// WithLogger installs a logger into the context (per-request and
// per-job loggers carry their id attributes this way).
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or a NopLogger.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, _ := ctx.Value(loggerKey).(*slog.Logger); l != nil {
		return l
	}
	return NopLogger()
}
